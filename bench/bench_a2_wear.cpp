// A2 (ablation) — write wear: where do the algorithms' writes LAND?
//
// The AEM cost model prices every write the same (omega); real NVM also
// has per-cell write endurance, so two algorithms with equal Q_w can age
// the device very differently.  This ablation histograms writes per block
// for the library's algorithms: max-writes-per-block is the wear hot spot,
// mean is the leveled baseline.  Algorithms built from sequential passes
// (mergesorts) wear evenly (max ~ passes); pointer-maintenance and PQ
// cascades concentrate writes.
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "permute/dispatch.hpp"
#include "permute/permutation.hpp"
#include "pq/ext_pq.hpp"
#include "sort/em_mergesort.hpp"
#include "sort/mergesort.hpp"
#include "sort/samplesort.hpp"

namespace {

using namespace aem;
using namespace aem::bench;

enum class Algo {
  kAware,
  kOblivious,
  kSample,
  kHeap,
  kNaivePerm,
  kSortPerm
};

const char* name_of(Algo a) {
  switch (a) {
    case Algo::kAware: return "aem_mergesort";
    case Algo::kOblivious: return "em_mergesort";
    case Algo::kSample: return "samplesort";
    case Algo::kHeap: return "heapsort(pq)";
    case Algo::kNaivePerm: return "naive_permute";
    case Algo::kSortPerm: return "sort_permute";
  }
  return "?";
}

void run_case(Algo algo, std::size_t N, std::size_t M, std::size_t B,
              std::uint64_t w, harness::PointContext& ctx) {
  Machine mach(make_config(M, B, w));
  mach.enable_wear_tracking();
  auto keys = util::random_keys(N, ctx.rng());
  ExtArray<std::uint64_t> in(mach, N, "in");
  in.unsafe_host_fill(keys);
  ExtArray<std::uint64_t> out(mach, N, "out");
  mach.reset_stats();
  switch (algo) {
    case Algo::kAware:
      aem_merge_sort(in, out);
      break;
    case Algo::kOblivious:
      em_merge_sort(in, out);
      break;
    case Algo::kSample:
      aem_sample_sort(in, out);
      break;
    case Algo::kHeap:
      aem_heap_sort(in, out);
      break;
    case Algo::kNaivePerm: {
      auto dest = perm::random(in.size(), ctx.rng());
      naive_permute(in, std::span<const std::uint64_t>(dest), out);
      break;
    }
    case Algo::kSortPerm: {
      auto dest = perm::random(in.size(), ctx.rng());
      sort_permute(in, std::span<const std::uint64_t>(dest), out);
      break;
    }
  }
  ctx.metrics(mach, std::string("A2 ") + name_of(algo));
  const auto ws = mach.wear_stats();
  ctx.row({name_of(algo), util::fmt(mach.stats().writes),
           util::fmt(ws.blocks_written), util::fmt(ws.mean_writes, 2),
           util::fmt(ws.max_writes),
           util::fmt_ratio(double(ws.max_writes), ws.mean_writes, 2)});
}

}  // namespace

int main(int argc, char** argv) try {
  util::Cli cli(argc, argv);
  const BenchIo io = bench_io(cli, 12);

  banner("A2 (ablation)",
         "write-wear profiles: same cost model, very different endurance "
         "footprints");

  util::Table t({"algorithm", "writes", "blocks_touched", "mean/block",
                 "max/block", "skew"});
  const std::size_t N = 1 << 14, M = 256, B = 16;
  const std::uint64_t w = 8;
  const std::vector<Algo> algos = {Algo::kAware,    Algo::kOblivious,
                                   Algo::kSample,   Algo::kHeap,
                                   Algo::kNaivePerm, Algo::kSortPerm};
  sweep_table(io, algos.size(), t, [&](harness::PointContext& ctx) {
    run_case(algos[ctx.index()], N, M, B, w, ctx);
  });
  emit(t, "Wear profile at N=2^14, M=256, B=16, omega=8:", io.csv);

  std::cout
      << "Reading: 'skew' = hottest block vs average.  Pass-structured\n"
         "algorithms stay near skew ~ passes; the merge's externally stored\n"
         "b[i] pointer blocks and the PQ's cascade levels are the wear hot\n"
         "spots a device-level wear leveler would have to absorb.\n";
  return 0;
}
catch (const std::exception& e) {
  // CLI/env parse errors (and any other unhandled failure) exit with a
  // one-line diagnostic instead of an uncaught-exception abort.
  std::cerr << "error: " << e.what() << "\n";
  return 2;
}
