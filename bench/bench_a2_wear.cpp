// A2 (ablation) — write wear: where do the algorithms' writes LAND?
//
// The AEM cost model prices every write the same (omega); real NVM also
// has per-cell write endurance, so two algorithms with equal Q_w can age
// the device very differently.  This ablation histograms writes per block
// for the library's algorithms: max-writes-per-block is the wear hot spot,
// mean is the leveled baseline.  Algorithms built from sequential passes
// (mergesorts) wear evenly (max ~ passes); pointer-maintenance and PQ
// cascades concentrate writes.
#include <iostream>

#include "bench_common.hpp"
#include "permute/dispatch.hpp"
#include "permute/permutation.hpp"
#include "pq/ext_pq.hpp"
#include "sort/em_mergesort.hpp"
#include "sort/mergesort.hpp"
#include "sort/samplesort.hpp"

namespace {

using namespace aem;
using namespace aem::bench;

template <class F>
void run_case(const char* name, std::size_t N, std::size_t M, std::size_t B,
              std::uint64_t w, F&& body, util::Table& t, util::Rng& rng,
              const std::string& metrics) {
  Machine mach(make_config(M, B, w));
  mach.enable_wear_tracking();
  auto keys = util::random_keys(N, rng);
  ExtArray<std::uint64_t> in(mach, N, "in");
  in.unsafe_host_fill(keys);
  ExtArray<std::uint64_t> out(mach, N, "out");
  mach.reset_stats();
  body(in, out, rng);
  emit_metrics(mach, std::string("A2 ") + name, metrics);
  const auto ws = mach.wear_stats();
  t.add_row({name, util::fmt(mach.stats().writes), util::fmt(ws.blocks_written),
             util::fmt(ws.mean_writes, 2), util::fmt(ws.max_writes),
             util::fmt_ratio(double(ws.max_writes), ws.mean_writes, 2)});
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  const std::string csv = cli.str("csv", "");
  const std::string metrics = cli.str("metrics", "");
  util::Rng rng(cli.u64("seed", 12));

  banner("A2 (ablation)",
         "write-wear profiles: same cost model, very different endurance "
         "footprints");

  util::Table t({"algorithm", "writes", "blocks_touched", "mean/block",
                 "max/block", "skew"});
  const std::size_t N = 1 << 14, M = 256, B = 16;
  const std::uint64_t w = 8;
  run_case(
      "aem_mergesort", N, M, B, w,
      [](auto& in, auto& out, util::Rng&) { aem_merge_sort(in, out); }, t,
      rng, metrics);
  run_case(
      "em_mergesort", N, M, B, w,
      [](auto& in, auto& out, util::Rng&) { em_merge_sort(in, out); }, t,
      rng, metrics);
  run_case(
      "samplesort", N, M, B, w,
      [](auto& in, auto& out, util::Rng&) { aem_sample_sort(in, out); }, t,
      rng, metrics);
  run_case(
      "heapsort(pq)", N, M, B, w,
      [](auto& in, auto& out, util::Rng&) { aem_heap_sort(in, out); }, t,
      rng, metrics);
  run_case(
      "naive_permute", N, M, B, w,
      [](auto& in, auto& out, util::Rng& r) {
        auto dest = perm::random(in.size(), r);
        naive_permute(in, std::span<const std::uint64_t>(dest), out);
      },
      t, rng, metrics);
  run_case(
      "sort_permute", N, M, B, w,
      [](auto& in, auto& out, util::Rng& r) {
        auto dest = perm::random(in.size(), r);
        sort_permute(in, std::span<const std::uint64_t>(dest), out);
      },
      t, rng, metrics);
  emit(t, "Wear profile at N=2^14, M=256, B=16, omega=8:", csv);

  std::cout
      << "Reading: 'skew' = hottest block vs average.  Pass-structured\n"
         "algorithms stay near skew ~ passes; the merge's externally stored\n"
         "b[i] pointer blocks and the PQ's cascade levels are the wear hot\n"
         "spots a device-level wear leveler would have to absorb.\n";
  return 0;
}
