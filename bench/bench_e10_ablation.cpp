// E10 — simulator soundness and asymmetry ablation.
//
// Part 1 (table): at omega = 1 the AEM degenerates to the symmetric EM
// model of Aggarwal-Vitter; every cost identity must collapse accordingly
// (Q = reads + writes; the omega-aware and oblivious sorts converge to the
// same asymptotics; the permutation bound equals the classical one).
//
// Part 2 (google-benchmark): wall-clock throughput of the simulator
// primitives, so downstream users know what experiment scales are feasible.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <iostream>
#include <string_view>

#include "bench_common.hpp"
#include "bounds/permute_bounds.hpp"
#include "bounds/sort_bounds.hpp"
#include "io/scanner.hpp"
#include "io/writer.hpp"
#include "sort/em_mergesort.hpp"
#include "sort/mergesort.hpp"

namespace {

using namespace aem;
using namespace aem::bench;

void omega_one_table() {
  banner("E10", "omega = 1 degenerates to the symmetric EM model; simulator "
                "throughput");

  util::Table t({"N", "M", "B", "aware_Q", "oblivious_Q", "ratio",
                 "AV_perm_LB", "AEM_perm_LB", "LBs_equal"});
  util::Rng rng(10);
  for (std::size_t N : {1u << 13, 1u << 15}) {
    for (std::size_t M : {128u, 512u}) {
      const std::size_t B = 16;
      auto keys = util::random_keys(N, rng);
      std::uint64_t aware, oblivious;
      {
        Machine mach(make_config(M, B, 1));
        ExtArray<std::uint64_t> in(mach, N, "in");
        in.unsafe_host_fill(keys);
        ExtArray<std::uint64_t> out(mach, N, "out");
        mach.reset_stats();
        aem_merge_sort(in, out);
        aware = mach.cost();
        // At omega = 1, Q must equal plain I/O count.
        if (mach.cost() != mach.stats().total_ios())
          std::cout << "FAIL: omega=1 cost identity broken\n";
      }
      {
        Machine mach(make_config(M, B, 1));
        ExtArray<std::uint64_t> in(mach, N, "in");
        in.unsafe_host_fill(keys);
        ExtArray<std::uint64_t> out(mach, N, "out");
        mach.reset_stats();
        em_merge_sort(in, out);
        oblivious = mach.cost();
      }
      bounds::AemParams p{.N = N, .M = M, .B = B, .omega = 1};
      const double av = bounds::av_permute_bound_ios(N, M, B);
      const double aem = bounds::permute_lower_bound(p);
      t.add_row({util::fmt(std::uint64_t(N)), util::fmt(std::uint64_t(M)),
                 util::fmt(std::uint64_t(B)), util::fmt(aware),
                 util::fmt(oblivious),
                 util::fmt_ratio(double(aware), double(oblivious), 2),
                 util::fmt(av, 0), util::fmt(aem, 0),
                 std::abs(av - aem) < 1e-6 ? "yes" : "NO"});
    }
  }
  emit(t, "omega = 1 sanity (AEM == EM):", "");
  std::cout << "PASS criterion: LBs_equal = yes everywhere; aware and\n"
               "oblivious sorts within a small constant of each other.\n\n";
}

void bm_scan(benchmark::State& state) {
  const std::size_t N = static_cast<std::size_t>(state.range(0));
  Machine mach(make_config(1 << 12, 64, 4));
  util::Rng rng(11);
  auto arr = staged_keys(mach, N, rng);
  for (auto _ : state) {
    Scanner<std::uint64_t> sc(arr);
    std::uint64_t sum = 0;
    while (!sc.done()) sum += sc.next();
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * int64_t(N));
}

void bm_sort(benchmark::State& state) {
  const std::size_t N = static_cast<std::size_t>(state.range(0));
  Machine mach(make_config(1 << 10, 16, 8));
  util::Rng rng(12);
  auto in = staged_keys(mach, N, rng);
  ExtArray<std::uint64_t> out(mach, N, "out");
  for (auto _ : state) {
    aem_merge_sort(in, out);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * int64_t(N));
}

void bm_write(benchmark::State& state) {
  const std::size_t N = static_cast<std::size_t>(state.range(0));
  Machine mach(make_config(1 << 12, 64, 4));
  ExtArray<std::uint64_t> arr(mach, N, "out");
  for (auto _ : state) {
    Writer<std::uint64_t> w(arr);
    for (std::size_t i = 0; i < N; ++i) w.push(i);
    w.finish();
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * int64_t(N));
}

BENCHMARK(bm_scan)->Arg(1 << 14)->Arg(1 << 17);
BENCHMARK(bm_write)->Arg(1 << 14)->Arg(1 << 17);
BENCHMARK(bm_sort)->Arg(1 << 12)->Arg(1 << 14);

}  // namespace

int main(int argc, char** argv) try {
  omega_one_table();
  // E10's sweep is google-benchmark's, not the harness's: accept and drop
  // the fleet-wide --jobs flag (run_experiments.sh passes it to every
  // bench) before benchmark::Initialize rejects it as unknown.  Timing
  // benchmarks are inherently serial here.
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    if (arg.rfind("--jobs", 0) == 0) continue;
    argv[kept++] = argv[i];
  }
  argc = kept;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
catch (const std::exception& e) {
  // CLI/env parse errors (and any other unhandled failure) exit with a
  // one-line diagnostic instead of an uncaught-exception abort.
  std::cerr << "error: " << e.what() << "\n";
  return 2;
}
