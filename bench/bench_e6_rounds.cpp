// E6 — Lemma 4.1 / Corollary 4.2: any AEM program can be rewritten as a
// round-based program on a 2M machine at a constant-factor cost increase.
//
// We record real traces (mergesort, sample sort, both permutation
// programs), apply the rewrite, and report the measured cost factor — the
// lemma's constant — plus the round structure of the result.  The grid is
// program x omega; each point is one trace + rewrite on its own machine.
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "permute/naive.hpp"
#include "permute/permutation.hpp"
#include "permute/sort_permute.hpp"
#include "rounds/rounds.hpp"
#include "sort/em_mergesort.hpp"
#include "sort/mergesort.hpp"
#include "sort/samplesort.hpp"

namespace {

using namespace aem;
using namespace aem::bench;

enum class Prog { kAware, kOblivious, kSample, kNaivePerm, kSortPerm };

const char* name_of(Prog p) {
  switch (p) {
    case Prog::kAware: return "aem_mergesort";
    case Prog::kOblivious: return "em_mergesort";
    case Prog::kSample: return "samplesort";
    case Prog::kNaivePerm: return "naive_permute";
    case Prog::kSortPerm: return "sort_permute";
  }
  return "?";
}

struct Point {
  Prog prog;
  std::uint64_t w;
};

void run_case(const Point& pt, std::size_t N, std::size_t M, std::size_t B,
              harness::PointContext& ctx) {
  Machine mach(make_config(M, B, pt.w));
  auto keys = util::random_keys(N, ctx.rng());
  ExtArray<std::uint64_t> in(mach, N, "in");
  in.unsafe_host_fill(keys);
  ExtArray<std::uint64_t> out(mach, N, "out");
  mach.enable_trace();
  switch (pt.prog) {
    case Prog::kAware:
      aem_merge_sort(in, out);
      break;
    case Prog::kOblivious:
      em_merge_sort(in, out);
      break;
    case Prog::kSample:
      aem_sample_sort(in, out);
      break;
    case Prog::kNaivePerm: {
      auto dest = perm::random(in.size(), ctx.rng());
      naive_permute(in, std::span<const std::uint64_t>(dest), out);
      break;
    }
    case Prog::kSortPerm: {
      auto dest = perm::random(in.size(), ctx.rng());
      sort_permute(in, std::span<const std::uint64_t>(dest), out);
      break;
    }
  }
  auto trace = mach.take_trace();
  ctx.metrics(mach, "E6 " + std::string(name_of(pt.prog)) +
                        " N=" + std::to_string(N) +
                        " omega=" + std::to_string(pt.w));

  auto rb = rounds::make_round_based(*trace, mach.m(), pt.w);
  const bool valid = rounds::validate_rounds(rb.trace, rb.rounds, 2 * mach.m(),
                                             pt.w, /*check_lower=*/false);
  ctx.row({name_of(pt.prog), util::fmt(std::uint64_t(N)), util::fmt(pt.w),
           util::fmt(rb.original_cost), util::fmt(rb.transformed_cost),
           util::fmt(rb.cost_factor(), 3),
           util::fmt(std::uint64_t(rb.rounds.size())),
           valid ? "yes" : "NO"});
}

}  // namespace

int main(int argc, char** argv) try {
  util::Cli cli(argc, argv);
  const BenchIo io = bench_io(cli, 6);

  banner("E6", "Lemma 4.1: program -> round-based program on 2M at constant "
               "factor");

  util::Table t({"program", "N", "omega", "cost_P", "cost_P'", "factor",
                 "rounds", "valid"});
  const std::size_t N = 1 << 13, M = 128, B = 8;
  std::vector<Point> grid;
  for (std::uint64_t w : {1, 4, 16, 64})
    for (Prog p : {Prog::kAware, Prog::kOblivious, Prog::kSample,
                   Prog::kNaivePerm, Prog::kSortPerm})
      grid.push_back({p, w});
  sweep_table(io, grid.size(), t, [&](harness::PointContext& ctx) {
    run_case(grid[ctx.index()], N, M, B, ctx);
  });
  emit(t, "Round-based rewrite across programs and omega (M=128, B=8):",
       io.csv);

  std::cout << "PASS criterion: factor <= ~3 everywhere (the Lemma 4.1\n"
               "constant), valid = yes in every row.\n";
  return 0;
}
catch (const std::exception& e) {
  // CLI/env parse errors (and any other unhandled failure) exit with a
  // one-line diagnostic instead of an uncaught-exception abort.
  std::cerr << "error: " << e.what() << "\n";
  return 2;
}
