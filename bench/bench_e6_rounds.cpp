// E6 — Lemma 4.1 / Corollary 4.2: any AEM program can be rewritten as a
// round-based program on a 2M machine at a constant-factor cost increase.
//
// We record real traces (mergesort, sample sort, both permutation
// programs), apply the rewrite, and report the measured cost factor — the
// lemma's constant — plus the round structure of the result.
#include <iostream>

#include "bench_common.hpp"
#include "permute/naive.hpp"
#include "permute/permutation.hpp"
#include "permute/sort_permute.hpp"
#include "rounds/rounds.hpp"
#include "sort/em_mergesort.hpp"
#include "sort/mergesort.hpp"
#include "sort/samplesort.hpp"

namespace {

using namespace aem;
using namespace aem::bench;

template <class F>
void run_case(const char* program, std::size_t N, std::size_t M,
              std::size_t B, std::uint64_t w, F&& body, util::Table& t,
              util::Rng& rng, const std::string& metrics) {
  Machine mach(make_config(M, B, w));
  auto keys = util::random_keys(N, rng);
  ExtArray<std::uint64_t> in(mach, N, "in");
  in.unsafe_host_fill(keys);
  ExtArray<std::uint64_t> out(mach, N, "out");
  mach.enable_trace();
  body(in, out, rng);
  auto trace = mach.take_trace();
  emit_metrics(mach,
               "E6 " + std::string(program) + " N=" + std::to_string(N) +
                   " omega=" + std::to_string(w),
               metrics);

  auto rb = rounds::make_round_based(*trace, mach.m(), w);
  const bool valid = rounds::validate_rounds(rb.trace, rb.rounds, 2 * mach.m(),
                                             w, /*check_lower=*/false);
  t.add_row({program, util::fmt(std::uint64_t(N)), util::fmt(w),
             util::fmt(rb.original_cost), util::fmt(rb.transformed_cost),
             util::fmt(rb.cost_factor(), 3),
             util::fmt(std::uint64_t(rb.rounds.size())),
             valid ? "yes" : "NO"});
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  const std::string csv = cli.str("csv", "");
  const std::string metrics = cli.str("metrics", "");
  util::Rng rng(cli.u64("seed", 6));

  banner("E6", "Lemma 4.1: program -> round-based program on 2M at constant "
               "factor");

  util::Table t({"program", "N", "omega", "cost_P", "cost_P'", "factor",
                 "rounds", "valid"});
  const std::size_t M = 128, B = 8;
  for (std::uint64_t w : {1, 4, 16, 64}) {
    run_case(
        "aem_mergesort", 1 << 13, M, B, w,
        [](auto& in, auto& out, util::Rng&) { aem_merge_sort(in, out); }, t,
        rng, metrics);
    run_case(
        "em_mergesort", 1 << 13, M, B, w,
        [](auto& in, auto& out, util::Rng&) { em_merge_sort(in, out); }, t,
        rng, metrics);
    run_case(
        "samplesort", 1 << 13, M, B, w,
        [](auto& in, auto& out, util::Rng&) { aem_sample_sort(in, out); }, t,
        rng, metrics);
    run_case(
        "naive_permute", 1 << 13, M, B, w,
        [](auto& in, auto& out, util::Rng& r) {
          auto dest = perm::random(in.size(), r);
          naive_permute(in, std::span<const std::uint64_t>(dest), out);
        },
        t, rng, metrics);
    run_case(
        "sort_permute", 1 << 13, M, B, w,
        [](auto& in, auto& out, util::Rng& r) {
          auto dest = perm::random(in.size(), r);
          sort_permute(in, std::span<const std::uint64_t>(dest), out);
        },
        t, rng, metrics);
  }
  emit(t, "Round-based rewrite across programs and omega (M=128, B=8):", csv);

  std::cout << "PASS criterion: factor <= ~3 everywhere (the Lemma 4.1\n"
               "constant), valid = yes in every row.\n";
  return 0;
}
