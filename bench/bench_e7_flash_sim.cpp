// E7 — Lemma 4.3 / Corollary 4.4: a round-based AEM permutation program of
// cost Q yields a flash-model program of I/O volume <= 2N + 2QB/omega.
//
// We record both permutation programs with full atom tracking, replay them
// through the unit-cost flash model, and report measured volume against the
// lemma's bound, plus the classical flash permuting lower bound
// (Corollary 4.4's other ingredient).
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "bounds/permute_bounds.hpp"
#include "flash/simulate.hpp"
#include "permute/naive.hpp"
#include "permute/permutation.hpp"
#include "permute/sort_permute.hpp"

namespace {

using namespace aem;
using namespace aem::bench;

struct Point {
  bool use_sort;
  std::size_t N, M, B;
  std::uint64_t w;
};

void run_case(const Point& pt, harness::PointContext& ctx) {
  const auto [use_sort, N, M, B, w] = pt;
  Machine mach(make_config(M, B, w));
  auto atoms = util::distinct_keys(N, ctx.rng());
  auto dest = perm::random(N, ctx.rng());
  ExtArray<std::uint64_t> in(mach, N, "in");
  in.unsafe_host_fill(atoms);
  in.set_atom_extractor([](const std::uint64_t& v) { return v; });
  ExtArray<std::uint64_t> out(mach, N, "out");
  out.set_atom_extractor([](const std::uint64_t& v) { return v; });
  mach.enable_trace();
  if (use_sort) {
    sort_permute(in, std::span<const std::uint64_t>(dest), out);
  } else {
    naive_permute(in, std::span<const std::uint64_t>(dest), out);
  }
  auto trace = mach.take_trace();
  ctx.metrics(mach, std::string("E7 ") + (use_sort ? "sort" : "naive") +
                        " N=" + std::to_string(N) + " B=" + std::to_string(B) +
                        " omega=" + std::to_string(w));
  auto r = flash::simulate_permutation_trace(
      *trace, std::span<const std::uint64_t>(atoms), in.id(), B, w);

  const double bound = r.volume_bound(B, w);
  // Classical AV permuting bound in the flash model (volume units):
  // small-block I/Os times elements per small block.
  const double flash_lb =
      bounds::av_permute_bound_ios(N, M, B / w) * double(B / w);
  ctx.row({use_sort ? "sort" : "naive", util::fmt(std::uint64_t(N)),
           util::fmt(std::uint64_t(B)), util::fmt(w), util::fmt(r.aem_cost),
           util::fmt(r.total_volume()), util::fmt(bound, 0),
           util::fmt_ratio(double(r.total_volume()), bound, 3),
           util::fmt(flash_lb, 0), util::fmt(r.destroyed_atoms)});
}

}  // namespace

int main(int argc, char** argv) try {
  util::Cli cli(argc, argv);
  const BenchIo io = bench_io(cli, 7);

  banner("E7", "Lemma 4.3: AEM permutation program -> flash program of "
               "volume <= 2N + 2QB/omega");

  util::Table t({"program", "N", "B", "omega", "Q_aem", "flash_volume",
                 "lemma_bound", "vol/bound", "flash_LB", "destroyed"});
  std::vector<Point> grid;
  const std::size_t n_max = io.full ? (1u << 15) : (1u << 13);
  for (std::size_t N = 1 << 11; N <= n_max; N <<= 1) {
    for (std::uint64_t w : {2, 4, 8}) {
      grid.push_back({false, N, 128, 16, w});
      grid.push_back({true, N, 128, 16, w});
    }
  }
  // Larger blocks: B = 32 with omega up to 16 (B must be a multiple of
  // omega — the Lemma 4.3 precondition).
  for (std::uint64_t w : {4, 16})
    for (bool s : {false, true}) grid.push_back({s, 1 << 13, 256, 32, w});
  sweep_table(io, grid.size(), t, [&](harness::PointContext& ctx) {
    run_case(grid[ctx.index()], ctx);
  });
  emit(t, "Flash-model replay of permutation programs:", io.csv);

  std::cout << "PASS criterion: vol/bound <= 1 in every row (the lemma),\n"
               "destroyed = 0 (atom conservation), and flash_volume >=\n"
               "flash_LB (the classical bound the reduction transfers).\n";
  return 0;
}
catch (const std::exception& e) {
  // CLI/env parse errors (and any other unhandled failure) exit with a
  // one-line diagnostic instead of an uncaught-exception abort.
  std::cerr << "error: " << e.what() << "\n";
  return 2;
}
