// S1 — sharded multi-device machine: write-cost scaling and wear balance
// when one logical (M,B,omega)-AEM frontend stripes its blocks across D
// independent asymmetric devices (core/sharding.hpp, MODEL.md section 13).
//
// Four sections:
//
//  * uniform sweep   — workload {scatter, sort} x placement {round-robin,
//                      range} x D {1,2,4,8} x omega {1,16}, every cell on
//                      its own ShardedMachine through the parallel
//                      harness.  The frontend cost is the paper's Q; the
//                      device columns show where it lands.  The scatter
//                      workload's writes are block-distributed, so
//                      round-robin balances them (spread -> 1); the §3
//                      mergesort at omega=1 concentrates ~1/3 of its
//                      writes on ONE pointer block (the A2 wear skew), and
//                      no placement can spread a single hot block — the
//                      sweep shows both regimes side by side.
//  * hot-prefix      — a synthetic update loop hammering the first K
//                      logical blocks: round-robin spreads the hot writes
//                      across all D devices (wear spread ~1) while range
//                      placement concentrates them on the chunk owners
//                      (spread = 2 at D=4, chunk = K/2) — the wear
//                      argument for striping.
//  * heterogeneous   — D=4 devices with omega {1,4,16,64} under one
//                      frontend: per-device cost rows showing how the same
//                      balanced traffic prices out across unequal devices.
//  * cache           — a frontend cache over D devices: hits never reach
//                      any device, so counters and output are D-invariant.
//
// PASS criteria (hard guards, exit 1 on violation):
//  * facade invariance — every cell's frontend counters and output equal
//    the plain-Machine baseline at the same (workload, omega): D and
//    placement may change where cost LANDS, never the algorithm's Q;
//  * device conservation — per-cell, summed device transfers equal the
//    facade's (uniform devices, amplification 1);
//  * round-robin wear spread <= 1.25 on every scatter cell and on sort at
//    omega = 16 (block-distributed writes; the omega=1 sort rows document
//    the single-hot-block exception);
//  * hot-prefix: round-robin spread <= 1.25, range spread >= 1.9 at D=4;
//  * heterogeneous: the omega=64 device's cost dominates under balanced
//    round-robin traffic;
//  * cache integration — with a frontend cache installed, facade counters,
//    device transfers, and output are identical at D=1 and D=4.
#include <algorithm>
#include <iostream>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "core/sharding.hpp"
#include "permute/permutation.hpp"
#include "permute/scatter.hpp"
#include "sort/mergesort.hpp"

namespace {

using namespace aem;
using namespace aem::bench;

constexpr std::size_t kM = 1024;
constexpr std::size_t kB = 16;
constexpr std::size_t kChunk = 8;  // range-placement chunk (logical blocks)

enum class Workload { kScatter, kSort };

const char* name_of(Workload w) {
  return w == Workload::kScatter ? "scatter" : "sort";
}

struct Cell {
  Workload workload;
  Placement placement;
  std::size_t devices;
  std::uint64_t omega;
};

struct CellResult {
  IoStats facade_io;
  std::uint64_t facade_q = 0;
  IoStats devices_io;
  std::uint64_t devices_q = 0;
  double spread = 1.0;
  std::uint64_t dev_writes_min = 0;
  std::uint64_t dev_writes_max = 0;
  std::vector<std::uint64_t> output;  // for the facade-invariance guard
};

ShardConfig make_shard(std::size_t devices, Placement placement,
                       std::uint64_t omega) {
  ShardConfig sc;
  sc.frontend = make_config(kM, kB, omega);
  sc.devices.assign(devices, make_config(kM, kB, omega));
  sc.placement = placement;
  sc.range_chunk_blocks = kChunk;
  return sc;
}

void fill_device_columns(const ShardedMachine& mach, CellResult& r) {
  r.devices_io = mach.devices_stats();
  r.devices_q = mach.devices_cost();
  r.spread = mach.wear_spread();
  r.dev_writes_min = ~0ull;
  r.dev_writes_max = 0;
  for (std::size_t d = 0; d < mach.device_count(); ++d) {
    const std::uint64_t w = mach.device(d).stats().writes;
    r.dev_writes_min = std::min(r.dev_writes_min, w);
    r.dev_writes_max = std::max(r.dev_writes_max, w);
  }
}

struct Inputs {
  std::vector<std::uint64_t> keys;
  perm::Perm dest;
};

void run_workload(Machine& mach, Workload w, const Inputs& g,
                  std::vector<std::uint64_t>& output) {
  ExtArray<std::uint64_t> in(mach, g.keys.size(), "in");
  in.unsafe_host_fill(g.keys);
  ExtArray<std::uint64_t> out(mach, g.keys.size(), "out");
  mach.reset_stats();
  switch (w) {
    case Workload::kScatter:
      scatter_permute(in, std::span<const std::uint64_t>(g.dest), out);
      break;
    case Workload::kSort:
      aem_merge_sort(in, out);
      break;
  }
  mach.flush_cache();
  output = out.unsafe_host_view();
}

CellResult run_cell(const Inputs& g, const Cell& c,
                    harness::PointContext& ctx) {
  ShardedMachine mach(make_shard(c.devices, c.placement, c.omega));
  CellResult r;
  run_workload(mach, c.workload, g, r.output);
  r.facade_io = mach.stats();
  r.facade_q = mach.cost();
  fill_device_columns(mach, r);
  ctx.metrics(mach, std::string("S1 ") + name_of(c.workload) +
                        " placement=" + to_string(c.placement) +
                        " D=" + std::to_string(c.devices) +
                        " omega=" + std::to_string(c.omega));
  return r;
}

/// The synthetic hot-prefix update loop: rewrite the first `hot` logical
/// blocks `rounds` times each.  Pure writes, no RNG — the wear contrast
/// between placements is exact.
void hot_prefix(Machine& mach, std::size_t blocks, std::size_t hot,
                std::size_t rounds) {
  ExtArray<std::uint64_t> arr(mach, blocks * kB, "hot");
  Buffer<std::uint64_t> buf(mach, mach.B());
  for (std::size_t r = 0; r < rounds; ++r) {
    for (std::size_t b = 0; b < hot; ++b) {
      buf[0] = r * hot + b;
      arr.write_block(b, std::span<const std::uint64_t>(
                             buf.data(), arr.block_elems(b)));
    }
  }
}

}  // namespace

int main(int argc, char** argv) try {
  util::Cli cli(argc, argv);
  const BenchIo io = bench_io(cli, 13);
  util::Rng rng(io.seed);

  banner("S1",
         "sharded multi-device machine: placement x D x omega — frontend Q "
         "invariant, device cost and wear by placement");

  const std::size_t N = io.full ? (1u << 15) : (1u << 13);
  Inputs g;
  g.keys = util::random_keys(N, rng);
  g.dest = perm::random(N, rng);

  const Workload workloads[] = {Workload::kScatter, Workload::kSort};
  const Placement placements[] = {Placement::kRoundRobin, Placement::kRange};
  const std::size_t device_counts[] = {1, 2, 4, 8};
  const std::uint64_t omegas[] = {1, 16};

  std::vector<Cell> cells;
  for (Workload w : workloads)
    for (Placement p : placements)
      for (std::size_t d : device_counts)
        for (std::uint64_t omega : omegas) cells.push_back({w, p, d, omega});

  std::vector<CellResult> slots(cells.size());
  replay(harness::run_sweep(cells.size(), io.sweep,
                            [&](harness::PointContext& ctx) {
                              slots[ctx.index()] =
                                  run_cell(g, cells[ctx.index()], ctx);
                            }),
         nullptr, io.metrics);

  // Plain-machine baselines, one per (workload, omega): the facade of EVERY
  // cell must reproduce these counters and this output exactly.
  std::map<std::pair<int, std::uint64_t>, CellResult> baseline;
  for (Workload w : workloads) {
    for (std::uint64_t omega : omegas) {
      Machine mach(make_config(kM, kB, omega));
      CellResult b;
      run_workload(mach, w, g, b.output);
      b.facade_io = mach.stats();
      b.facade_q = mach.cost();
      baseline.emplace(std::pair<int, std::uint64_t>(static_cast<int>(w),
                                                     omega),
                       std::move(b));
    }
  }

  bool ok = true;
  for (Workload w : workloads) {
    util::Table t({"workload", "placement", "D", "omega", "Q_facade",
                   "Q_devices", "wear_spread", "dev_writes_min",
                   "dev_writes_max"});
    for (std::size_t i = 0; i < cells.size(); ++i) {
      const Cell& c = cells[i];
      if (c.workload != w) continue;
      const CellResult& r = slots[i];
      const CellResult& base =
          baseline.at({static_cast<int>(c.workload), c.omega});
      t.add_row({name_of(c.workload), to_string(c.placement),
                 util::fmt(std::uint64_t(c.devices)), util::fmt(c.omega),
                 util::fmt(r.facade_q), util::fmt(r.devices_q),
                 util::fmt(r.spread, 3), util::fmt(r.dev_writes_min),
                 util::fmt(r.dev_writes_max)});

      if (r.facade_q != base.facade_q || !(r.facade_io == base.facade_io) ||
          r.output != base.output) {
        std::cerr << "FAIL: " << name_of(c.workload) << " "
                  << to_string(c.placement) << " D=" << c.devices
                  << " omega=" << c.omega << ": facade diverged from the "
                  << "plain machine (Q " << r.facade_q << " vs "
                  << base.facade_q << ")\n";
        ok = false;
      }
      if (!(r.devices_io == r.facade_io) || r.devices_q != r.facade_q) {
        std::cerr << "FAIL: " << name_of(c.workload) << " "
                  << to_string(c.placement) << " D=" << c.devices
                  << " omega=" << c.omega << ": device transfers not "
                  << "conserved (devices Q " << r.devices_q
                  << " vs facade Q " << r.facade_q << ")\n";
        ok = false;
      }
      // Round-robin must balance block-distributed writes.  The sort rows
      // at omega=1 are the documented exception: the §3 merge concentrates
      // ~1/3 of its writes on one pointer block, and striping spreads
      // BLOCKS, not writes within a block.
      const bool distributed =
          c.workload == Workload::kScatter ||
          (c.workload == Workload::kSort && c.omega >= 16);
      if (c.placement == Placement::kRoundRobin && distributed &&
          r.spread > 1.25) {
        std::cerr << "FAIL: " << name_of(c.workload) << " round-robin D="
                  << c.devices << " omega=" << c.omega << ": wear spread "
                  << util::fmt(r.spread, 3) << " above the 1.25 ceiling\n";
        ok = false;
      }
    }
    emit(t, std::string("S1 uniform sweep, ") + name_of(w) + " (N=" +
                util::fmt(std::uint64_t(N)) +
                "): frontend Q vs device placement:",
         io.csv);
  }
  if (ok)
    std::cout << "facade-invariance guard: every cell matched the plain "
                 "machine's counters and output; device transfers conserved; "
                 "round-robin wear spread <= 1.25 on block-distributed "
                 "writes\n\n";

  // --- hot-prefix wear contrast ------------------------------------------
  {
    const std::size_t blocks = 64, hot = 16, rounds = 64;
    util::Table ht({"placement", "D", "writes", "wear_spread",
                    "dev_writes_min", "dev_writes_max"});
    std::map<int, double> spread_of;
    for (Placement p : placements) {
      ShardedMachine mach(make_shard(4, p, 16));
      mach.reset_stats();
      hot_prefix(mach, blocks, hot, rounds);
      CellResult r;
      fill_device_columns(mach, r);
      spread_of[static_cast<int>(p)] = r.spread;
      ht.add_row({to_string(p), "4", util::fmt(mach.stats().writes),
                  util::fmt(r.spread, 3), util::fmt(r.dev_writes_min),
                  util::fmt(r.dev_writes_max)});
      emit_metrics(mach, std::string("S1 hot-prefix placement=") +
                             to_string(p) + " D=4 omega=16",
                   io.metrics);
    }
    emit(ht, "S1 hot-prefix (first " + util::fmt(std::uint64_t(hot)) +
                 " of " + util::fmt(std::uint64_t(blocks)) +
                 " blocks rewritten x" + util::fmt(std::uint64_t(rounds)) +
                 "): wear by placement:",
         io.csv);
    const double rr = spread_of.at(static_cast<int>(Placement::kRoundRobin));
    const double rg = spread_of.at(static_cast<int>(Placement::kRange));
    if (rr > 1.25) {
      std::cerr << "FAIL: hot-prefix round-robin wear spread "
                << util::fmt(rr, 3) << " above the 1.25 ceiling\n";
      ok = false;
    }
    if (rg < 1.9) {
      std::cerr << "FAIL: hot-prefix range wear spread " << util::fmt(rg, 3)
                << " below 1.9 — the placement contrast vanished\n";
      ok = false;
    }
    if (ok)
      std::cout << "hot-prefix guard: round-robin spreads hot writes "
                   "(spread " << util::fmt(rr, 3) << "), range concentrates "
                   "them (spread " << util::fmt(rg, 3) << ")\n\n";
  }

  // --- heterogeneous devices ---------------------------------------------
  {
    ShardConfig sc = make_shard(4, Placement::kRoundRobin, 16);
    const std::uint64_t dev_omegas[] = {1, 4, 16, 64};
    for (std::size_t d = 0; d < 4; ++d)
      sc.devices[d].write_cost = dev_omegas[d];
    ShardedMachine mach(sc);
    std::vector<std::uint64_t> output;
    run_workload(mach, Workload::kSort, g, output);

    util::Table dt({"device", "omega", "reads", "writes", "cost",
                    "cost_share"});
    const double total = static_cast<double>(mach.devices_cost());
    std::uint64_t max_omega_cost = 0, other_max_cost = 0;
    for (std::size_t d = 0; d < mach.device_count(); ++d) {
      const Machine& dev = mach.device(d);
      dt.add_row({"dev" + std::to_string(d), util::fmt(dev.omega()),
                  util::fmt(dev.stats().reads), util::fmt(dev.stats().writes),
                  util::fmt(dev.cost()),
                  util::fmt(static_cast<double>(dev.cost()) / total, 3)});
      if (dev.omega() == 64) {
        max_omega_cost = dev.cost();
      } else {
        other_max_cost = std::max(other_max_cost, dev.cost());
      }
    }
    emit(dt, "S1 heterogeneous array (round-robin, D=4, device omega "
             "1/4/16/64, mergesort): per-device cost:",
         io.csv);
    emit_metrics(mach, "S1 heterogeneous D=4 omega=1,4,16,64", io.metrics);
    if (max_omega_cost <= other_max_cost) {
      std::cerr << "FAIL: heterogeneous array: the omega=64 device's cost "
                << max_omega_cost << " does not dominate (max other "
                << other_max_cost << ") despite balanced traffic\n";
      ok = false;
    }
  }

  // --- cache integration: hits never reach a device ----------------------
  {
    auto cached = [&](std::size_t devices) {
      ShardConfig sc = make_shard(devices, Placement::kRoundRobin, 16);
      sc.frontend.cache.capacity_blocks = 64;
      sc.frontend.cache.policy = CachePolicy::kCleanFirst;
      ShardedMachine mach(sc);
      CellResult r;
      run_workload(mach, Workload::kSort, g, r.output);
      r.facade_io = mach.stats();
      r.facade_q = mach.cost();
      fill_device_columns(mach, r);
      return r;
    };
    const CellResult one = cached(1);
    const CellResult four = cached(4);
    if (!(one.facade_io == four.facade_io) || one.facade_q != four.facade_q ||
        one.output != four.output || !(one.devices_io == four.devices_io)) {
      std::cerr << "FAIL: cached facade diverged between D=1 and D=4 "
                << "(Q " << one.facade_q << " vs " << four.facade_q << ")\n";
      ok = false;
    } else {
      std::cout << "cache-integration guard: frontend cache + sharding give "
                   "identical counters and output at D=1 and D=4 (Q = "
                << one.facade_q << ")\n";
    }
  }

  std::cout << "\nPASS criteria: facade invariance across D and placement; "
               "device conservation; round-robin wear spread <= 1.25 on "
               "block-distributed writes; hot-prefix placement contrast; "
               "heterogeneous cost dominance; cache integration.\n";
  return ok ? 0 : 1;
}
catch (const std::exception& e) {
  // CLI/env parse errors (and any other unhandled failure) exit with a
  // one-line diagnostic instead of an uncaught-exception abort.
  std::cerr << "error: " << e.what() << "\n";
  return 2;
}
