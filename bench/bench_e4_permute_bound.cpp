// E4 — Theorem 4.5: permuting N elements costs
// Omega(min{N, omega n log_{omega m} n}), and the two upper-bound programs
// (naive gather; tag-sort-strip) match it to within constants.
//
// For each parameter point we run BOTH programs plus the dispatcher and
// report measured cost against the lower bound: the tightness column
// best/LB is the empirical gap between the paper's upper and lower bounds.
#include <algorithm>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "bounds/permute_bounds.hpp"
#include "permute/dispatch.hpp"
#include "permute/permutation.hpp"

namespace {

using namespace aem;
using namespace aem::bench;

struct Point {
  std::size_t N, M, B;
  std::uint64_t w;
};

void run_case(const Point& pt, harness::PointContext& ctx) {
  const auto [N, M, B, w] = pt;
  const std::string tag = " N=" + std::to_string(N) + " M=" + std::to_string(M) +
                          " B=" + std::to_string(B) + " omega=" + std::to_string(w);
  auto keys = util::random_keys(N, ctx.rng());
  auto dest = perm::random(N, ctx.rng());

  std::uint64_t naive_cost, sort_cost;
  {
    Machine mach(make_config(M, B, w));
    ExtArray<std::uint64_t> in(mach, N, "in");
    in.unsafe_host_fill(keys);
    ExtArray<std::uint64_t> out(mach, N, "out");
    mach.reset_stats();
    naive_permute(in, std::span<const std::uint64_t>(dest), out);
    naive_cost = mach.cost();
    ctx.metrics(mach, "E4 naive" + tag);
  }
  {
    Machine mach(make_config(M, B, w));
    ExtArray<std::uint64_t> in(mach, N, "in");
    in.unsafe_host_fill(keys);
    ExtArray<std::uint64_t> out(mach, N, "out");
    mach.reset_stats();
    sort_permute(in, std::span<const std::uint64_t>(dest), out);
    sort_cost = mach.cost();
    ctx.metrics(mach, "E4 sort" + tag);
  }
  Machine chooser(make_config(M, B, w));
  const PermuteStrategy picked = choose_permute_strategy(chooser, N);

  bounds::AemParams p{.N = N, .M = M, .B = B, .omega = w};
  // Theorem 4.5's bound plus the trivial "write the output" bound omega*n
  // (which dominates once omega > B and the min picks the N branch).
  const double lb = bounds::permute_lower_bound_total(p);
  const std::uint64_t best = std::min(naive_cost, sort_cost);
  ctx.row({util::fmt(std::uint64_t(N)), util::fmt(std::uint64_t(M)),
           util::fmt(std::uint64_t(B)), util::fmt(w),
           util::fmt(naive_cost), util::fmt(sort_cost), util::fmt(lb, 0),
           util::fmt_ratio(double(best), lb, 2), to_string(picked),
           bounds::permute_bound_applicable(p) ? "yes" : "no"});
}

}  // namespace

int main(int argc, char** argv) try {
  util::Cli cli(argc, argv);
  const BenchIo io = bench_io(cli, 4);

  banner("E4",
         "Theorem 4.5: permutation cost >= min{N, omega n log_{omega m} n}; "
         "upper bounds match within constants");

  {
    util::Table t({"N", "M", "B", "omega", "naive", "sort", "lower_bound",
                   "best/LB", "dispatcher", "thm_applies"});
    std::vector<Point> grid;
    const std::size_t n_max = io.full ? (1u << 18) : (1u << 16);
    for (std::size_t N = 1 << 12; N <= n_max; N <<= 1)
      grid.push_back({N, 256, 16, 8});
    sweep_table(io, grid.size(), t, [&](harness::PointContext& ctx) {
      run_case(grid[ctx.index()], ctx);
    });
    emit(t, "Scaling in N (M=256, B=16, omega=8):", io.csv);
  }

  {
    util::Table t({"N", "M", "B", "omega", "naive", "sort", "lower_bound",
                   "best/LB", "dispatcher", "thm_applies"});
    std::vector<Point> grid;
    for (std::uint64_t w : {1, 4, 16, 64, 256, 1024})
      grid.push_back({1 << 14, 128, 8, w});
    sweep_table(io, grid.size(), t, [&](harness::PointContext& ctx) {
      run_case(grid[ctx.index()], ctx);
    });
    emit(t, "Scaling in omega (N=2^14, M=128, B=8):", io.csv);
  }

  std::cout << "PASS criterion: best/LB bounded (tightness); every row has\n"
               "measured cost >= the lower bound (soundness).\n";
  return 0;
}
catch (const std::exception& e) {
  // CLI/env parse errors (and any other unhandled failure) exit with a
  // one-line diagnostic instead of an uncaught-exception abort.
  std::cerr << "error: " << e.what() << "\n";
  return 2;
}
