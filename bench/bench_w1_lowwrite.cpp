// W1 — the low-write algorithm suite (docs/MODEL.md section 18): a phase
// diagram over omega x M/B x N mapping where each read-favoring variant
// beats its classical counterpart on charged Q, on writes alone, and on the
// wear horizon (reruns until the hottest block reaches a fixed endurance).
//
// Three sections, every cell its own Machine through the parallel harness:
//
//  * sort  — aem_lowwrite_sample_sort (external splitters, omega-scaled
//            fanout, Eytzinger window search) vs the omega-aware
//            aem_merge_sort on the same keys.  The variant pays windowed
//            re-scan reads to write each element exactly once per level;
//            the Section 3 merge pays block-pointer RMW writes instead.
//  * pq    — aem_heap_sort under PqTuning::kBuffered (merge-tree base
//            omega * m_eff) vs kLegacy (base m_eff) on the same stream:
//            the wider base absorbs cascades that cost the legacy queue
//            whole rewrite passes.
//  * puts  — KvStore::put_inline_batch vs per-op put_inline over the same
//            ops on identically built stores (fence index, io_batch_blocks
//            = 4, so construction and scans ride the batched submit path):
//            K ops absorbed into one page group charge 1 read + 1
//            omega-write for the group instead of K of each.
//
// Every cell appends a v8 metrics snapshot with the `lowwrite` section
// filled (variant vs baseline I/O, wear horizons, absorbed page groups).
//
// PASS criteria (hard guards, exit 1 on violation):
//  * both sorts produce the identical sorted permutation; at omega >= 16 on
//    every cell that actually distributes (N > omega * M/2) the variant
//    charges STRICTLY fewer writes and STRICTLY more reads than mergesort;
//  * at omega == 1 the variant delegates and is charge-identical to
//    aem_sample_sort (reads, writes, and Q all equal);
//  * both PQ tunings pop the same sorted stream; at omega >= 16 kBuffered
//    charges strictly fewer writes than kLegacy; at omega == 1 kBuffered
//    downgrades and is charge-identical to kLegacy;
//  * batched puts match per-op puts on hits, orphaned words, and every
//    subsequent get; they never charge more log reads or log writes, write
//    at most one page per absorbed group (put_writes <= put_log_reads),
//    absorb strictly (fewer log reads) once ops share pages, and a batch
//    of one is charge-identical to put_inline.
#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <iostream>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "pq/ext_pq.hpp"
#include "sort/budget.hpp"
#include "sort/lowwrite_samplesort.hpp"
#include "sort/mergesort.hpp"
#include "sort/samplesort.hpp"
#include "store/kv_store.hpp"

namespace {

using namespace aem;
using namespace aem::bench;
using store::IndexKind;
using store::KvStore;
using store::Slot;
using store::StoreConfig;

constexpr std::size_t kB = 16;
/// Per-block write endurance for the wear-horizon column: the run repeats
/// endurance / max_writes times before the hottest block retires (0 when no
/// writes were observed) — the same figure traffic/engine.hpp reports.
constexpr std::uint64_t kEndurance = 100000;

const char* winner(std::uint64_t variant, std::uint64_t baseline) {
  return variant < baseline ? "variant"
         : variant > baseline ? "baseline"
                              : "tie";
}

std::uint64_t wear_horizon(const Machine& mach) {
  const Machine::WearStats ws = mach.wear_stats();
  return ws.max_writes == 0 ? 0 : kEndurance / ws.max_writes;
}

LowwriteMetrics lowwrite_section(const std::string& family,
                                 const std::string& variant, std::uint64_t n,
                                 const IoStats& vio, std::uint64_t vcost,
                                 std::uint64_t vhorizon, const IoStats& bio,
                                 std::uint64_t bcost, std::uint64_t bhorizon,
                                 std::uint64_t absorbed_groups = 0) {
  LowwriteMetrics lw;
  lw.enabled = true;
  lw.family = family;
  lw.variant = variant;
  lw.n = n;
  lw.reads = vio.reads;
  lw.writes = vio.writes;
  lw.cost = vcost;
  lw.base_reads = bio.reads;
  lw.base_writes = bio.writes;
  lw.base_cost = bcost;
  lw.wear_horizon = vhorizon;
  lw.base_wear_horizon = bhorizon;
  lw.absorbed_groups = absorbed_groups;
  lw.q_winner = winner(vcost, bcost);
  lw.writes_winner = winner(vio.writes, bio.writes);
  return lw;
}

// --- sort section ----------------------------------------------------------

struct SortCell {
  std::uint64_t omega;
  std::size_t M;
  std::size_t N;
};

struct RunIo {
  IoStats io;
  std::uint64_t cost = 0;
  std::uint64_t horizon = 0;
  std::vector<std::uint64_t> out;
};

/// Stages `keys` on a fresh wear-tracked machine, runs `sort_fn(in, out)`,
/// and returns the charged I/O plus the host view of the output.  When
/// `snap` is non-null, also snapshots the machine under `label`.
template <class Fn>
RunIo run_sorter(const Config& cfg, const std::vector<std::uint64_t>& keys,
                 Fn&& sort_fn, MetricsSnapshot* snap = nullptr,
                 const std::string& label = "") {
  Machine mach(cfg);
  mach.enable_wear_tracking();
  ExtArray<std::uint64_t> in(mach, keys.size(), "w1.in");
  in.unsafe_host_fill(std::span<const std::uint64_t>(keys));
  ExtArray<std::uint64_t> out(mach, keys.size(), "w1.out");
  sort_fn(in, out);
  RunIo r;
  r.io = mach.stats();
  r.cost = mach.cost();
  r.horizon = wear_horizon(mach);
  r.out = out.unsafe_host_view();
  if (snap != nullptr) *snap = snapshot_metrics(mach, label);
  return r;
}

struct SortResult {
  RunIo base;     // omega-aware mergesort
  RunIo rf;       // read-favoring samplesort
  RunIo classic;  // aem_sample_sort, filled at omega == 1 for the identity
  bool distributes = false;  // N > base: both sorts actually recurse
  bool lowwrite_path = false;  // variant took the external-splitter path
};

SortResult run_sort_cell(const SortCell& c, harness::PointContext& ctx) {
  const Config cfg = make_config(c.M, kB, c.omega);
  const std::vector<std::uint64_t> keys = util::random_keys(c.N, ctx.rng());

  SortResult r;
  r.base = run_sorter(cfg, keys, [](const auto& in, auto& out) {
    aem_merge_sort(in, out);
  });
  const std::string label = "W1 sort omega=" + std::to_string(c.omega) +
                            " M=" + std::to_string(c.M) +
                            " N=" + std::to_string(c.N);
  MetricsSnapshot snap;
  r.rf = run_sorter(
      cfg, keys,
      [](const auto& in, auto& out) { aem_lowwrite_sample_sort(in, out); },
      &snap, label);
  if (c.omega == 1)
    r.classic = run_sorter(cfg, keys, [](const auto& in, auto& out) {
      aem_sample_sort(in, out);
    });

  {
    Machine probe(cfg);
    const SortBudget budget = SortBudget::from(probe);
    r.distributes = c.N > budget.base;
    const std::size_t resident_cap =
        std::max<std::size_t>(2, budget.out_batch / 4);
    r.lowwrite_path = c.omega != 1 && budget.fanout > resident_cap;
  }

  snap.lowwrite =
      lowwrite_section("sort", "samplesort_rf", c.N, r.rf.io, r.rf.cost,
                       r.rf.horizon, r.base.io, r.base.cost, r.base.horizon);
  ctx.snapshot(std::move(snap));
  ctx.row({util::fmt(c.omega), util::fmt(std::uint64_t(c.M)),
           util::fmt(std::uint64_t(c.N)),
           r.lowwrite_path ? (r.distributes ? "lowwrite" : "small") : "delegate",
           util::fmt(r.base.io.reads), util::fmt(r.base.io.writes),
           util::fmt(r.base.cost), util::fmt(r.rf.io.reads),
           util::fmt(r.rf.io.writes), util::fmt(r.rf.cost),
           winner(r.rf.cost, r.base.cost),
           winner(r.rf.io.writes, r.base.io.writes),
           util::fmt(r.rf.horizon), util::fmt(r.base.horizon)});
  return r;
}

// --- pq section ------------------------------------------------------------

struct PqCell {
  std::uint64_t omega;
  std::size_t N;
};

constexpr std::size_t kPqM = 4096;

SortResult run_pq_cell(const PqCell& c, harness::PointContext& ctx) {
  const Config cfg = make_config(kPqM, kB, c.omega);
  const std::vector<std::uint64_t> keys = util::random_keys(c.N, ctx.rng());

  SortResult r;
  r.base = run_sorter(cfg, keys, [](const auto& in, auto& out) {
    aem_heap_sort(in, out, std::less<std::uint64_t>{}, PqTuning::kLegacy);
  });
  const std::string label =
      "W1 pq omega=" + std::to_string(c.omega) + " N=" + std::to_string(c.N);
  MetricsSnapshot snap;
  r.rf = run_sorter(
      cfg, keys,
      [](const auto& in, auto& out) {
        aem_heap_sort(in, out, std::less<std::uint64_t>{},
                      PqTuning::kBuffered);
      },
      &snap, label);
  {
    Machine probe(cfg);
    const SortBudget budget = SortBudget::from(probe);
    r.lowwrite_path = budget.fanout > budget.m_eff;  // no downgrade
  }

  snap.lowwrite =
      lowwrite_section("pq", "pq_buffered", c.N, r.rf.io, r.rf.cost,
                       r.rf.horizon, r.base.io, r.base.cost, r.base.horizon);
  ctx.snapshot(std::move(snap));
  ctx.row({util::fmt(c.omega), util::fmt(std::uint64_t(c.N)),
           r.lowwrite_path ? "buffered" : "downgraded",
           util::fmt(r.base.io.reads), util::fmt(r.base.io.writes),
           util::fmt(r.base.cost), util::fmt(r.rf.io.reads),
           util::fmt(r.rf.io.writes), util::fmt(r.rf.cost),
           winner(r.rf.cost, r.base.cost),
           winner(r.rf.io.writes, r.base.io.writes),
           util::fmt(r.rf.horizon), util::fmt(r.base.horizon)});
  return r;
}

// --- puts section ----------------------------------------------------------

struct PutsCell {
  std::uint64_t omega;
  std::size_t nops;
};

constexpr std::size_t kPutRecords = 2048;

struct PutsWorkload {
  std::vector<Slot> slots;
  std::vector<std::uint64_t> payload;
  std::vector<std::uint64_t> keys;  // stored keys (even)
  std::vector<std::pair<std::uint64_t, std::uint64_t>> ops;
};

/// Store of kPutRecords records (~25% spilled, so overwrites orphan payload
/// words) plus `nops` put ops: ~75% against stored keys, ~25% guaranteed
/// misses (odd keys).  Deterministic in (seed, nops).
PutsWorkload make_puts_workload(std::size_t nops, std::uint64_t seed) {
  util::Rng rng(seed);
  PutsWorkload w;
  for (std::size_t i = 0; i < kPutRecords; ++i) {
    Slot s;
    s.key = rng.next() & ~1ull;
    w.keys.push_back(s.key);
    if (rng.below(100) < 25) {
      s.len = 2 + rng.below(2 * kB - 1);
      s.pos = w.payload.size();
      for (std::uint64_t j = 0; j < s.len; ++j) w.payload.push_back(rng.next());
    } else {
      s.len = 1;
      s.pos = rng.next();
    }
    w.slots.push_back(s);
  }
  for (std::size_t i = 0; i < nops; ++i) {
    const std::uint64_t key = rng.below(100) < 75
                                  ? w.keys[rng.below(w.keys.size())]
                                  : (rng.next() | 1);
    w.ops.emplace_back(key, rng.next());
  }
  return w;
}

struct PutsResult {
  store::StoreStats st;        // put counters only (fresh store)
  IoStats put_io;              // machine delta across the put phase
  std::uint64_t put_cost = 0;  // charged Q across the put phase
  std::uint64_t horizon = 0;   // wear across the put phase only
  std::vector<std::optional<std::vector<std::uint64_t>>> gets;
  StoreMetrics sm;
  MetricsSnapshot snap;
};

PutsResult run_puts(const Config& cfg, const PutsWorkload& w, bool batched,
                    const std::string& label) {
  Machine mach(cfg);
  ExtArray<Slot> slots(mach, w.slots.size(), "input.slots");
  slots.unsafe_host_fill(std::span<const Slot>(w.slots));
  ExtArray<std::uint64_t> payload(mach, w.payload.size(), "input.payload");
  payload.unsafe_host_fill(std::span<const std::uint64_t>(w.payload));

  StoreConfig sc;
  sc.index = IndexKind::kFence;
  sc.io_batch_blocks = 4;  // construction + scans ride the batched path
  KvStore kv(mach, sc);
  kv.build(slots, payload);

  mach.enable_wear_tracking();  // wear of the put phase alone
  const IoStats before = mach.stats();
  const std::uint64_t cost_before = mach.cost();
  if (batched) {
    kv.put_inline_batch(std::span<const std::pair<std::uint64_t,
                                                  std::uint64_t>>(w.ops));
  } else {
    for (const auto& [key, value] : w.ops) kv.put_inline(key, value);
  }
  PutsResult r;
  r.st = kv.stats();
  r.put_io = mach.stats() - before;
  r.put_cost = mach.cost() - cost_before;
  r.horizon = wear_horizon(mach);

  // Final-state probe: every op key plus a spread of untouched stored keys
  // must read back identically on both machines.
  for (const auto& [key, value] : w.ops) r.gets.push_back(kv.get(key));
  for (std::size_t i = 0; i < w.keys.size(); i += 7)
    r.gets.push_back(kv.get(w.keys[i]));
  const std::size_t scanned = kv.scan(0, ~0ull, [](auto, auto) {});
  if (scanned != kv.records())
    throw std::logic_error("W1 puts: full scan missed records");

  r.sm = kv.metrics_section();
  r.snap = snapshot_metrics(mach, label);
  r.snap.store = r.sm;
  return r;
}

struct PutsCellResult {
  PutsResult seq;
  PutsResult bat;
};

PutsCellResult run_puts_cell(const PutsCell& c, std::uint64_t seed,
                             harness::PointContext& ctx) {
  const PutsWorkload w =
      make_puts_workload(c.nops, seed * 1000003 + c.nops * 131 + c.omega);
  const Config cfg = make_config(kPqM, kB, c.omega);
  const std::string label = "W1 puts omega=" + std::to_string(c.omega) +
                            " nops=" + std::to_string(c.nops);
  PutsCellResult r;
  r.seq = run_puts(cfg, w, /*batched=*/false, label + " per-op");
  r.bat = run_puts(cfg, w, /*batched=*/true, label + " batched");

  r.bat.snap.lowwrite = lowwrite_section(
      "puts", "puts_batched", c.nops, r.bat.put_io, r.bat.put_cost,
      r.bat.horizon, r.seq.put_io, r.seq.put_cost, r.seq.horizon,
      /*absorbed_groups=*/r.bat.st.put_log_reads);
  ctx.snapshot(std::move(r.bat.snap));

  ctx.row({util::fmt(c.omega), util::fmt(std::uint64_t(c.nops)),
           util::fmt(r.seq.st.put_log_reads), util::fmt(r.seq.st.put_writes),
           util::fmt(r.bat.st.put_log_reads), util::fmt(r.bat.st.put_writes),
           util::fmt(r.bat.st.put_hits),
           winner(r.bat.put_cost, r.seq.put_cost),
           winner(r.bat.put_io.writes, r.seq.put_io.writes),
           util::fmt(r.bat.horizon), util::fmt(r.seq.horizon)});
  return r;
}

}  // namespace

int main(int argc, char** argv) try {
  util::Cli cli(argc, argv);
  const BenchIo io = bench_io(cli, 29);

  banner("W1",
         "low-write suite phase diagram: read-favoring samplesort, "
         "omega*m_eff-base priority queue, and batched store puts vs their "
         "classical counterparts on Q, writes alone, and wear horizon");

  bool ok = true;

  // --- sort sweep ----------------------------------------------------------
  {
    const std::uint64_t omegas[] = {1, 4, 16, 64};
    const std::size_t Ms[] = {1024, 4096};
    std::vector<std::size_t> Ns = {16384, 65536};
    if (io.full) Ns.push_back(262144);
    std::vector<SortCell> cells;
    for (std::uint64_t omega : omegas)
      for (std::size_t M : Ms)
        for (std::size_t N : Ns) cells.push_back({omega, M, N});

    util::Table t({"omega", "M", "N", "path", "ms_R", "ms_W", "ms_Q", "rf_R",
                   "rf_W", "rf_Q", "q_winner", "w_winner", "rf_horizon",
                   "ms_horizon"});
    std::vector<SortResult> slots(cells.size());
    replay(harness::run_sweep(cells.size(), io.sweep,
                              [&](harness::PointContext& ctx) {
                                slots[ctx.index()] =
                                    run_sort_cell(cells[ctx.index()], ctx);
                              }),
           &t, io.metrics);
    emit(t, "W1 sort phase diagram (B=" + util::fmt(std::uint64_t(kB)) +
                "): read-favoring samplesort vs omega-aware mergesort:",
         io.csv);

    for (std::size_t i = 0; i < cells.size(); ++i) {
      const SortCell& c = cells[i];
      const SortResult& r = slots[i];
      const std::string tag = "sort omega=" + std::to_string(c.omega) +
                              " M=" + std::to_string(c.M) +
                              " N=" + std::to_string(c.N);
      std::vector<std::uint64_t> want = r.base.out;
      if (r.rf.out != want) {
        std::cerr << "FAIL: " << tag
                  << ": variant output differs from mergesort's\n";
        ok = false;
      }
      if (!std::is_sorted(want.begin(), want.end())) {
        std::cerr << "FAIL: " << tag << ": mergesort output not sorted\n";
        ok = false;
      }
      if (c.omega >= 16 && r.distributes) {
        if (r.rf.io.writes >= r.base.io.writes) {
          std::cerr << "FAIL: " << tag << ": variant writes " << r.rf.io.writes
                    << " not strictly below mergesort's " << r.base.io.writes
                    << "\n";
          ok = false;
        }
        if (r.rf.io.reads <= r.base.io.reads) {
          std::cerr << "FAIL: " << tag << ": variant reads " << r.rf.io.reads
                    << " not strictly above mergesort's " << r.base.io.reads
                    << " (the read-for-write trade must show)\n";
          ok = false;
        }
      }
      if (c.omega == 1 &&
          (r.rf.io.reads != r.classic.io.reads ||
           r.rf.io.writes != r.classic.io.writes ||
           r.rf.cost != r.classic.cost || r.rf.out != r.classic.out)) {
        std::cerr << "FAIL: " << tag
                  << ": omega=1 variant not charge-identical to "
                     "aem_sample_sort (reads " << r.rf.io.reads << " vs "
                  << r.classic.io.reads << ", writes " << r.rf.io.writes
                  << " vs " << r.classic.io.writes << ")\n";
        ok = false;
      }
    }
    if (ok)
      std::cout << "sort guards: outputs identical; omega>=16 distributing "
                   "cells trade strictly more reads for strictly fewer "
                   "writes; omega=1 charge-identical to aem_sample_sort\n\n";
  }

  // --- pq sweep ------------------------------------------------------------
  {
    const std::uint64_t omegas[] = {1, 4, 16, 64};
    std::vector<PqCell> cells;
    for (std::uint64_t omega : omegas) cells.push_back({omega, 65536});

    util::Table t({"omega", "N", "tuning", "leg_R", "leg_W", "leg_Q", "buf_R",
                   "buf_W", "buf_Q", "q_winner", "w_winner", "buf_horizon",
                   "leg_horizon"});
    std::vector<SortResult> slots(cells.size());
    replay(harness::run_sweep(cells.size(), io.sweep,
                              [&](harness::PointContext& ctx) {
                                slots[ctx.index()] =
                                    run_pq_cell(cells[ctx.index()], ctx);
                              }),
           &t, io.metrics);
    emit(t, "W1 priority queue (M=" + util::fmt(std::uint64_t(kPqM)) + ", B=" +
                util::fmt(std::uint64_t(kB)) +
                "): buffered (base omega*m_eff) vs legacy (base m_eff):",
         io.csv);

    for (std::size_t i = 0; i < cells.size(); ++i) {
      const PqCell& c = cells[i];
      const SortResult& r = slots[i];
      const std::string tag = "pq omega=" + std::to_string(c.omega) +
                              " N=" + std::to_string(c.N);
      if (r.rf.out != r.base.out ||
          !std::is_sorted(r.base.out.begin(), r.base.out.end())) {
        std::cerr << "FAIL: " << tag << ": tunings popped different streams\n";
        ok = false;
      }
      if (c.omega >= 16 && r.rf.io.writes >= r.base.io.writes) {
        std::cerr << "FAIL: " << tag << ": buffered writes " << r.rf.io.writes
                  << " not strictly below legacy's " << r.base.io.writes
                  << "\n";
        ok = false;
      }
      if (c.omega == 1 &&
          (r.rf.io.reads != r.base.io.reads ||
           r.rf.io.writes != r.base.io.writes || r.rf.cost != r.base.cost)) {
        std::cerr << "FAIL: " << tag
                  << ": omega=1 buffered did not downgrade to the legacy "
                     "charges\n";
        ok = false;
      }
    }
    if (ok)
      std::cout << "pq guards: identical pop streams; omega>=16 buffered "
                   "strictly fewer writes; omega=1 downgrade is "
                   "charge-identical\n\n";
  }

  // --- puts sweep ----------------------------------------------------------
  {
    const std::uint64_t omegas[] = {1, 8, 64};
    const std::size_t nops[] = {1, 64, 256};
    std::vector<PutsCell> cells;
    for (std::uint64_t omega : omegas)
      for (std::size_t n : nops) cells.push_back({omega, n});

    util::Table t({"omega", "nops", "seq_log_R", "seq_log_W", "bat_log_R",
                   "bat_log_W", "hits", "q_winner", "w_winner", "bat_horizon",
                   "seq_horizon"});
    std::vector<PutsCellResult> slots(cells.size());
    replay(harness::run_sweep(cells.size(), io.sweep,
                              [&](harness::PointContext& ctx) {
                                slots[ctx.index()] = run_puts_cell(
                                    cells[ctx.index()], io.seed, ctx);
                              }),
           &t, io.metrics);
    emit(t, "W1 batched puts (fence index, " +
                util::fmt(std::uint64_t(kPutRecords)) +
                " records, io_batch_blocks=4): per-op vs page-group "
                "absorption:",
         io.csv);

    for (std::size_t i = 0; i < cells.size(); ++i) {
      const PutsCell& c = cells[i];
      const PutsCellResult& r = slots[i];
      const std::string tag = "puts omega=" + std::to_string(c.omega) +
                              " nops=" + std::to_string(c.nops);
      if (r.seq.st.puts != r.bat.st.puts ||
          r.seq.st.put_hits != r.bat.st.put_hits ||
          r.seq.st.orphaned_words != r.bat.st.orphaned_words) {
        std::cerr << "FAIL: " << tag
                  << ": batched put counters diverge from per-op (hits "
                  << r.bat.st.put_hits << " vs " << r.seq.st.put_hits
                  << ", orphaned " << r.bat.st.orphaned_words << " vs "
                  << r.seq.st.orphaned_words << ")\n";
        ok = false;
      }
      if (r.seq.gets != r.bat.gets) {
        std::cerr << "FAIL: " << tag
                  << ": final store contents diverge (a get disagrees)\n";
        ok = false;
      }
      if (r.bat.st.put_log_reads > r.seq.st.put_log_reads ||
          r.bat.st.put_writes > r.seq.st.put_writes) {
        std::cerr << "FAIL: " << tag << ": batched puts charged MORE ("
                  << r.bat.st.put_log_reads << "r+" << r.bat.st.put_writes
                  << "w vs " << r.seq.st.put_log_reads << "r+"
                  << r.seq.st.put_writes << "w)\n";
        ok = false;
      }
      if (r.bat.st.put_writes > r.bat.st.put_log_reads) {
        std::cerr << "FAIL: " << tag << ": " << r.bat.st.put_writes
                  << " page writes exceed " << r.bat.st.put_log_reads
                  << " page groups (each group is <= 1 read + 1 write)\n";
        ok = false;
      }
      if (c.nops >= 64 &&
          r.bat.st.put_log_reads >= r.seq.st.put_log_reads) {
        std::cerr << "FAIL: " << tag << ": no strict absorption ("
                  << r.bat.st.put_log_reads << " batched log reads vs "
                  << r.seq.st.put_log_reads << " per-op)\n";
        ok = false;
      }
      if (c.nops == 1 &&
          (r.bat.put_io.reads != r.seq.put_io.reads ||
           r.bat.put_io.writes != r.seq.put_io.writes ||
           r.bat.put_cost != r.seq.put_cost)) {
        std::cerr << "FAIL: " << tag
                  << ": a batch of one is not charge-identical to "
                     "put_inline\n";
        ok = false;
      }
    }
    if (ok)
      std::cout << "puts guards: counters, orphans, and final contents "
                   "match; <= 1 read + 1 write per absorbed group; strict "
                   "absorption at nops>=64; batch-of-1 identity\n";
  }

  std::cout << "\nPASS criteria: identical outputs everywhere; omega>=16 "
               "strictly fewer writes (sort: also strictly more reads); "
               "omega=1 variants charge-identical to their classical "
               "counterparts; batched puts absorb page groups at <= 1 read "
               "+ 1 omega-write each.\n";
  return ok ? 0 : 1;
}
catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << "\n";
  return 2;
}
