// E1 — Theorem 3.2: merging d = omega*m sorted runs of N total elements
// costs O(omega(n+m)) reads and O(n+m) writes, with no omega/B assumption.
//
// For each machine in the grid we build d sorted runs, merge them, and
// report measured reads/writes against the bound's closed form; the
// read/bound and write/bound columns must stay bounded (flat in N) for the
// theorem to hold, and must stay flat as omega crosses B (the paper's
// improvement over the omega < B mergesort of Blelloch et al.).
#include <algorithm>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "bounds/sort_bounds.hpp"
#include "sort/budget.hpp"
#include "sort/merge.hpp"

namespace {

using namespace aem;
using namespace aem::bench;

struct Row {
  std::size_t N, M, B;
  std::uint64_t omega;
};

void run_case(const Row& r, harness::PointContext& ctx) {
  Machine mach(make_config(r.M, r.B, r.omega));
  const SortBudget budget = SortBudget::from(mach);

  // d = fanout sorted runs covering N elements (block-aligned lengths).
  const std::size_t run_len =
      std::max<std::size_t>(r.B, (r.N / budget.fanout / r.B) * r.B);
  std::vector<std::uint64_t> host;
  std::vector<RunBounds> runs;
  while (host.size() + run_len <= r.N) {
    auto keys = util::random_keys(run_len, ctx.rng());
    std::sort(keys.begin(), keys.end());
    runs.push_back(RunBounds{host.size(), host.size() + run_len});
    host.insert(host.end(), keys.begin(), keys.end());
  }
  ExtArray<std::uint64_t> in(mach, host.size(), "runs");
  in.unsafe_host_fill(host);
  ExtArray<std::uint64_t> out(mach, host.size(), "out");

  mach.reset_stats();
  merge_runs(in, std::span<const RunBounds>(runs), out, 0,
             std::less<std::uint64_t>{});

  ctx.metrics(mach, "E1 N=" + std::to_string(host.size()) +
                        " M=" + std::to_string(r.M) +
                        " B=" + std::to_string(r.B) +
                        " omega=" + std::to_string(r.omega));

  bounds::AemParams p{.N = host.size(), .M = r.M, .B = r.B, .omega = r.omega};
  const double read_bound = bounds::aem_merge_read_bound(p);
  const double write_bound = bounds::aem_merge_write_bound(p);
  ctx.row({util::fmt(std::uint64_t(host.size())), util::fmt(std::uint64_t(r.M)),
           util::fmt(std::uint64_t(r.B)), util::fmt(r.omega),
           util::fmt(std::uint64_t(runs.size())),
           util::fmt(mach.stats().reads), util::fmt(mach.stats().writes),
           util::fmt_ratio(double(mach.stats().reads), read_bound),
           util::fmt_ratio(double(mach.stats().writes), write_bound)});
}

}  // namespace

int main(int argc, char** argv) try {
  util::Cli cli(argc, argv);
  const BenchIo io = bench_io(cli, 1);

  banner("E1",
         "Theorem 3.2: d-way merge costs O(omega(n+m)) reads, O(n+m) writes");

  {
    util::Table t({"N", "M", "B", "omega", "runs", "reads", "writes",
                   "reads/bound", "writes/bound"});
    std::vector<Row> grid;
    const std::size_t n_max = io.full ? (1u << 19) : (1u << 17);
    for (std::size_t N = 1 << 14; N <= n_max; N <<= 1)
      for (std::uint64_t w : {1, 4, 16, 64}) grid.push_back({N, 256, 16, w});
    sweep_table(io, grid.size(), t, [&](harness::PointContext& ctx) {
      run_case(grid[ctx.index()], ctx);
    });
    emit(t, "Scaling in N and omega (M=256, B=16):", io.csv);
  }

  {
    util::Table t({"N", "M", "B", "omega", "runs", "reads", "writes",
                   "reads/bound", "writes/bound"});
    std::vector<Row> grid;
    for (std::uint64_t w : {1, 2, 8, 16, 32, 64, 128, 256})
      grid.push_back({1 << 16, 128, 16, w});
    sweep_table(io, grid.size(), t, [&](harness::PointContext& ctx) {
      run_case(grid[ctx.index()], ctx);
    });
    emit(t,
         "Crossing omega = B = 16 (the regime the paper's merge newly "
         "covers):",
         io.csv);
  }

  {
    util::Table t({"N", "M", "B", "omega", "runs", "reads", "writes",
                   "reads/bound", "writes/bound"});
    std::vector<Row> grid;
    for (std::size_t M : {128, 256, 512, 1024})
      for (std::size_t B : {8, 16}) grid.push_back({1 << 16, M, B, 16});
    sweep_table(io, grid.size(), t, [&](harness::PointContext& ctx) {
      run_case(grid[ctx.index()], ctx);
    });
    emit(t, "Machine-shape sweep (N=2^16, omega=16):", io.csv);
  }

  {
    // Lemma 3.1, empirically: across machines, the maximum number of
    // simultaneously active runs observed in any round vs the bound m_eff.
    util::Table t({"M", "B", "omega", "runs", "rounds", "max_active",
                   "m_eff_bound"});
    struct Point {
      std::size_t M;
      std::uint64_t w;
    };
    std::vector<Point> grid;
    for (std::size_t M : {128, 256, 1024})
      for (std::uint64_t w : {1, 8, 64}) grid.push_back({M, w});
    sweep_table(io, grid.size(), t, [&](harness::PointContext& ctx) {
      const auto [M, w] = grid[ctx.index()];
      const std::size_t B = 16, N = 1 << 16;
      Machine mach(make_config(M, B, w));
      const SortBudget budget = SortBudget::from(mach);
      // Few LONG runs: the merge loop must extend runs well past the
      // initialization blocks, so the active set is genuinely exercised
      // (with many short runs nothing survives initialization).
      const std::size_t run_count =
          std::min<std::size_t>(budget.fanout, 2 * budget.m_eff);
      const std::size_t run_len = (N / run_count / B) * B;
      std::vector<std::uint64_t> host;
      std::vector<RunBounds> runs;
      while (host.size() + run_len <= N) {
        auto keys = util::random_keys(run_len, ctx.rng());
        std::sort(keys.begin(), keys.end());
        runs.push_back(RunBounds{host.size(), host.size() + run_len});
        host.insert(host.end(), keys.begin(), keys.end());
      }
      ExtArray<std::uint64_t> in(mach, host.size(), "runs");
      in.unsafe_host_fill(host);
      ExtArray<std::uint64_t> out(mach, host.size(), "out");
      MergeStats stats;
      merge_runs(in, std::span<const RunBounds>(runs), out, 0,
                 std::less<std::uint64_t>{}, std::nullptr_t{}, &stats);
      ctx.row({util::fmt(std::uint64_t(M)), util::fmt(std::uint64_t(B)),
               util::fmt(w), util::fmt(std::uint64_t(runs.size())),
               util::fmt(std::uint64_t(stats.rounds)),
               util::fmt(std::uint64_t(stats.max_active_runs)),
               util::fmt(std::uint64_t(budget.m_eff))});
    });
    emit(t, "Lemma 3.1 witnessed: active runs per round never exceed "
            "m_eff = Mout/B:", io.csv);
  }

  std::cout << "PASS criterion: ratio columns bounded by a small constant,\n"
               "flat in N, and flat across omega = B; max_active <= m_eff\n"
               "in every Lemma 3.1 row.\n";
  return 0;
}
catch (const std::exception& e) {
  // CLI/env parse errors (and any other unhandled failure) exit with a
  // one-line diagnostic instead of an uncaught-exception abort.
  std::cerr << "error: " << e.what() << "\n";
  return 2;
}
