// C1 — device-side block cache: how much Q a buffer pool absorbs, and when
// asymmetry-aware eviction (kCleanFirst) beats LRU.
//
// Sweeps eviction policy x omega x pool capacity over three workloads:
//
//  * sort             — the Section 3 AEM mergesort (streaming; the pool
//                       mostly coalesces the ping-pong traffic);
//  * scatter-random   — scatter_permute with a uniform random permutation:
//                       per-element read-modify-write of destination
//                       blocks, interleaved with a once-read input stream
//                       that pollutes the pool;
//  * scatter-cyclic   — scatter_permute with the matrix-transpose
//                       permutation: destination blocks are reused
//                       cyclically, so LRU falls off a cliff when the
//                       reuse distance (cyclic set + stream pollution)
//                       just exceeds capacity while clean-first reclaims
//                       the polluting stream blocks and keeps hitting.
//
// Every (workload, policy, omega, capacity) cell measures on its own
// machine, so the cells run through the harness into slots; the guards
// below compare ACROSS cells (cached vs uncached output, clean-first vs
// LRU) and run serially on the slots afterwards.  All cells share one
// staged input — the comparisons need like against like — so the input is
// generated once, before the sweep, from the base seed.
//
// PASS criteria (hard guards, exit 1 on violation):
//  * every cached run's output is identical to the uncached run's — the
//    pool may only change Q, never results;
//  * at omega = 1 clean-first degenerates to exact LRU (equal Q);
//  * at omega >= 16 clean-first is never above LRU on the scatter
//    workloads, and strictly below it on both.
#include <iostream>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "bench_common.hpp"
#include "permute/permutation.hpp"
#include "permute/scatter.hpp"
#include "sort/mergesort.hpp"

namespace {

using namespace aem;
using namespace aem::bench;

enum class Workload { kSort, kScatterRandom, kScatterCyclic };

const char* name_of(Workload w) {
  switch (w) {
    case Workload::kSort: return "sort";
    case Workload::kScatterRandom: return "scatter-random";
    case Workload::kScatterCyclic: return "scatter-cyclic";
  }
  return "?";
}

struct CaseResult {
  std::uint64_t q = 0;
  IoStats io;
  CacheStats cache;
  std::vector<std::uint64_t> output;  // for the invariance guard
};

struct Grid {
  std::size_t N, M, B;
  std::vector<std::uint64_t> keys;
  perm::Perm dest_random;
  perm::Perm dest_cyclic;
};

/// One measurement cell.  capacity 0 = the uncached baseline.
struct Cell {
  Workload w;
  CachePolicy policy;
  std::size_t cap;
  std::uint64_t omega;
};

/// Runs one cell.  The measured protocol is the documented one: stage,
/// reset_stats, run, flush_cache, read Q.
CaseResult run_case(const Grid& g, const Cell& c,
                    harness::PointContext& ctx) {
  Config cfg = make_config(g.M, g.B, c.omega);
  cfg.cache.capacity_blocks = c.cap;
  cfg.cache.policy = c.policy;
  Machine mach(cfg);

  ExtArray<std::uint64_t> in(mach, g.N, "in");
  in.unsafe_host_fill(g.keys);
  ExtArray<std::uint64_t> out(mach, g.N, "out");

  mach.reset_stats();
  switch (c.w) {
    case Workload::kSort:
      aem_merge_sort(in, out);
      break;
    case Workload::kScatterRandom:
      scatter_permute(in, std::span<const std::uint64_t>(g.dest_random), out);
      break;
    case Workload::kScatterCyclic:
      scatter_permute(in, std::span<const std::uint64_t>(g.dest_cyclic), out);
      break;
  }
  mach.flush_cache();

  CaseResult r;
  r.q = mach.cost();
  r.io = mach.stats();
  if (const BlockCache* bc = mach.cache()) r.cache = bc->stats();
  r.output = out.unsafe_host_view();
  ctx.metrics(mach, std::string("C1 ") + name_of(c.w) + " policy=" +
                        (c.cap == 0 ? "off" : to_string(c.policy)) +
                        " omega=" + std::to_string(c.omega) +
                        " cap=" + std::to_string(c.cap));
  return r;
}

}  // namespace

int main(int argc, char** argv) try {
  util::Cli cli(argc, argv);
  const BenchIo io = bench_io(cli, 11);
  util::Rng rng(io.seed);

  banner("C1",
         "write-back block cache: Q absorbed by policy x omega x capacity; "
         "clean-first (asymmetry-aware) vs LRU/CLOCK");

  Grid g;
  g.N = io.full ? (1u << 16) : (1u << 14);
  g.M = 1024;
  g.B = 16;
  g.keys = util::random_keys(g.N, rng);
  g.dest_random = perm::random(g.N, rng);
  // rows x cols with cols destination blocks reused once per row sweep:
  // the reuse distance is cols out-blocks + cols/B polluting in-blocks.
  const std::size_t rows = 128, cols = g.N / rows;
  g.dest_cyclic = perm::transpose(rows, cols);

  const std::uint64_t omegas[] = {1, 16, 64};
  // For each workload, capacities bracketing its interesting region.  The
  // cyclic workload's middle value is the LRU thrash cliff: one row sweep
  // touches cols destination blocks plus cols/B polluting stream blocks,
  // so LRU needs cols + cols/B frames to start hitting while clean-first
  // (which reclaims the stream blocks) needs only ~cols.
  const std::map<Workload, std::vector<std::size_t>> caps = {
      {Workload::kSort, {64, 256}},
      {Workload::kScatterRandom, {128, 256, 512}},
      {Workload::kScatterCyclic, {64, cols + 4, cols + 64}},
  };
  const CachePolicy policies[] = {CachePolicy::kLru, CachePolicy::kClock,
                                  CachePolicy::kCleanFirst};

  // The flat cell grid, in the (workload, omega, baseline-then-caps x
  // policies) order the tables and metrics log print in.
  std::vector<Cell> cells;
  for (Workload w :
       {Workload::kSort, Workload::kScatterRandom, Workload::kScatterCyclic}) {
    for (std::uint64_t omega : omegas) {
      cells.push_back({w, CachePolicy::kLru, 0, omega});
      for (std::size_t cap : caps.at(w))
        for (CachePolicy p : policies) cells.push_back({w, p, cap, omega});
    }
  }
  std::vector<CaseResult> slots(cells.size());
  replay(harness::run_sweep(cells.size(), io.sweep,
                            [&](harness::PointContext& ctx) {
                              slots[ctx.index()] =
                                  run_case(g, cells[ctx.index()], ctx);
                            }),
         nullptr, io.metrics);

  // results[(workload, omega, cap)][policy] = Q.
  std::map<std::tuple<int, std::uint64_t, std::size_t>,
           std::map<CachePolicy, std::uint64_t>> q_of;
  bool ok = true;

  std::size_t idx = 0;
  for (Workload w :
       {Workload::kSort, Workload::kScatterRandom, Workload::kScatterCyclic}) {
    util::Table t({"workload", "policy", "omega", "capacity", "Q", "Q/off",
                   "reads", "writes", "read_hits", "write_hits",
                   "write_backs"});
    for (std::uint64_t omega : omegas) {
      const CaseResult& base = slots[idx++];
      t.add_row({name_of(w), "off", util::fmt(omega), "0", util::fmt(base.q),
                 "1.00", util::fmt(base.io.reads), util::fmt(base.io.writes),
                 "-", "-", "-"});
      for (std::size_t cap : caps.at(w)) {
        for (CachePolicy p : policies) {
          const CaseResult& r = slots[idx++];
          q_of[{static_cast<int>(w), omega, cap}][p] = r.q;
          if (r.output != base.output) {
            std::cerr << "FAIL: " << name_of(w) << " policy=" << to_string(p)
                      << " omega=" << omega << " cap=" << cap
                      << ": cached output differs from uncached output\n";
            ok = false;
          }
          t.add_row({name_of(w), to_string(p), util::fmt(omega),
                     util::fmt(std::uint64_t(cap)), util::fmt(r.q),
                     util::fmt_ratio(double(r.q), double(base.q), 2),
                     util::fmt(r.io.reads), util::fmt(r.io.writes),
                     util::fmt(r.cache.read_hits),
                     util::fmt(r.cache.write_hits),
                     util::fmt(r.cache.write_backs)});
        }
      }
    }
    emit(t, std::string("C1 ") + name_of(w) + ": Q by policy/omega/capacity:",
         io.csv);
  }

  if (ok)
    std::cout << "output-invariance guard: every cached run produced the "
                 "uncached run's output\n";

  // Guard: at omega = 1 the auto clean-first window is 0, so the policy IS
  // exact LRU — Q must be equal, not merely close.
  for (const auto& [key, qs] : q_of) {
    const auto& [w, omega, cap] = key;
    if (omega != 1) continue;
    if (qs.at(CachePolicy::kCleanFirst) != qs.at(CachePolicy::kLru)) {
      std::cerr << "FAIL: " << name_of(static_cast<Workload>(w)) << " cap="
                << cap << ": clean-first Q " << qs.at(CachePolicy::kCleanFirst)
                << " != LRU Q " << qs.at(CachePolicy::kLru)
                << " at omega=1 (must degenerate to exact LRU)\n";
      ok = false;
    }
  }

  // Guard: at omega >= 16, clean-first never loses to LRU on the scatter
  // workloads (their streamed input blocks are pure pollution a clean-first
  // victim scan reclaims for free) and is strictly below it on BOTH.
  for (Workload w : {Workload::kScatterRandom, Workload::kScatterCyclic}) {
    for (std::uint64_t omega : omegas) {
      if (omega < 16) continue;
      bool strict = false;
      for (std::size_t cap : caps.at(w)) {
        const auto& qs = q_of.at({static_cast<int>(w), omega, cap});
        const std::uint64_t cf = qs.at(CachePolicy::kCleanFirst);
        const std::uint64_t lru = qs.at(CachePolicy::kLru);
        if (cf > lru) {
          std::cerr << "FAIL: " << name_of(w) << " omega=" << omega
                    << " cap=" << cap << ": clean-first Q " << cf
                    << " above LRU Q " << lru << "\n";
          ok = false;
        }
        strict |= (cf < lru);
      }
      if (!strict) {
        std::cerr << "FAIL: " << name_of(w) << " omega=" << omega
                  << ": clean-first never strictly below LRU at any "
                     "capacity\n";
        ok = false;
      }
    }
  }

  if (ok)
    std::cout << "asymmetry guard: clean-first == LRU at omega=1, <= LRU "
                 "(strictly < at both scatter workloads) at omega >= 16\n";
  std::cout << "\nPASS criteria: output invariance; omega=1 LRU "
               "degeneration; omega>=16 clean-first wins on scatters.\n";
  return ok ? 0 : 1;
}
catch (const std::exception& e) {
  // CLI/env parse errors (and any other unhandled failure) exit with a
  // one-line diagnostic instead of an uncaught-exception abort.
  std::cerr << "error: " << e.what() << "\n";
  return 2;
}
