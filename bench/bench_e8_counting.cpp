// E8 — Section 4.2's counting argument, evaluated exactly.
//
// Inequality (1) bounds the permutations a round-based program reaches per
// round; P(R) >= N!/B!^{N/B} forces a minimal round count R and hence cost
// >= (R-1) * omega * (m-1).  We compute R and the implied cost bound in
// log2 space across the parameter grid and compare with the paper's closed
// form min{N, omega n log_{omega m} n}: the two must agree to within a
// moderate, N-independent factor — which is exactly how the paper derives
// Theorem 4.5 from the counting bound.
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "bounds/counting.hpp"
#include "bounds/enumerate.hpp"
#include "bounds/permute_bounds.hpp"

namespace {

using namespace aem;
using namespace aem::bench;

struct Point {
  std::uint64_t N, M, B, w;
};

void run_case(const Point& pt, harness::PointContext& ctx) {
  const auto [N, M, B, w] = pt;
  // E8 is pure bound arithmetic — no I/O happens.  Emit the model machine
  // anyway so every bench's metrics log names its parameter grid.
  Machine model(make_config(M, B, w));
  ctx.metrics(model, "E8 N=" + std::to_string(N));
  bounds::AemParams p{.N = N, .M = M, .B = B, .omega = w};
  const double per_round = bounds::log2_perms_per_round(p);
  const double target = bounds::log2_target_permutations(p);
  const std::uint64_t R = bounds::min_rounds_counting(p);
  const double exact = bounds::counting_cost_bound_round_based(p);
  const double closed = bounds::permute_lower_bound(p);
  ctx.row({util::fmt(N), util::fmt(M), util::fmt(B), util::fmt(w),
           util::fmt(target, 0), util::fmt(per_round, 0), util::fmt(R),
           util::fmt(exact, 0), util::fmt(closed, 0),
           util::fmt_ratio(closed, exact, 2)});
}

void sweep_points(const BenchIo& io, const std::vector<Point>& grid,
                  util::Table& t) {
  sweep_table(io, grid.size(), t, [&](harness::PointContext& ctx) {
    run_case(grid[ctx.index()], ctx);
  });
}

}  // namespace

int main(int argc, char** argv) try {
  util::Cli cli(argc, argv);
  const BenchIo io = bench_io(cli, 8);

  banner("E8", "Section 4.2 counting bound: minimal rounds R from "
               "inequality (1) vs the closed form");

  {
    util::Table t({"N", "M", "B", "omega", "lg(target)", "lg(per_round)",
                   "R_min", "exact_LB", "closed_LB", "closed/exact"});
    std::vector<Point> grid;
    for (std::uint64_t N = 1 << 14; N <= (1ull << 26); N <<= 2)
      grid.push_back({N, 1 << 9, 16, 4});
    sweep_points(io, grid, t);
    emit(t, "Scaling in N (M=512, B=16, omega=4):", io.csv);
  }

  {
    util::Table t({"N", "M", "B", "omega", "lg(target)", "lg(per_round)",
                   "R_min", "exact_LB", "closed_LB", "closed/exact"});
    std::vector<Point> grid;
    for (std::uint64_t w : {1, 4, 16, 64, 256})
      grid.push_back({1 << 20, 1 << 9, 16, w});
    sweep_points(io, grid, t);
    emit(t, "Scaling in omega (N=2^20):", io.csv);
  }

  {
    util::Table t({"N", "M", "B", "omega", "lg(target)", "lg(per_round)",
                   "R_min", "exact_LB", "closed_LB", "closed/exact"});
    std::vector<Point> grid;
    for (std::uint64_t M : {1 << 7, 1 << 9, 1 << 11, 1 << 13})
      grid.push_back({1 << 20, M, 16, 8});
    for (std::uint64_t B : {8, 16, 32, 64, 128})
      grid.push_back({1 << 20, 1 << 10, B, 8});
    // B = 1: the (M, omega)-ARAM special case of Blelloch et al.
    for (std::uint64_t w : {1, 8, 64}) grid.push_back({1 << 20, 1 << 10, 1, w});
    sweep_points(io, grid, t);
    emit(t, "Machine-shape sweep (N=2^20; the B=1 rows are the ARAM):",
         io.csv);
  }

  {
    // Ground truth at toy scale: exhaustively enumerate everything a
    // round-based program can do (bounds/enumerate.hpp) and compare the
    // TRUE minimal round count R* with the counting bound's R_min.  The
    // counting argument is sound iff R_min <= R* in every row.
    util::Table t({"N", "M", "B", "omega", "target_perms", "states",
                   "true_R*", "counting_R_min", "sound"});
    struct Toy {
      std::uint32_t N, M, B, omega, max_rounds;
    };
    const std::vector<Toy> toys = {Toy{4, 8, 2, 1, 8}, Toy{4, 8, 2, 2, 8},
                                   Toy{4, 2, 1, 1, 12}, Toy{4, 2, 1, 2, 12},
                                   Toy{5, 8, 2, 1, 8}, Toy{6, 8, 2, 1, 6}};
    sweep_table(io, toys.size(), t, [&](harness::PointContext& ctx) {
      const Toy toy = toys[ctx.index()];
      bounds::EnumParams ep{.N = toy.N, .M = toy.M, .B = toy.B,
                            .omega = toy.omega, .locations = 0,
                            .max_rounds = toy.max_rounds};
      auto r = bounds::enumerate_reachable_permutations(ep);
      bounds::AemParams ap{.N = toy.N, .M = toy.M, .B = toy.B,
                           .omega = toy.omega};
      const std::uint64_t rmin = bounds::min_rounds_counting(ap);
      const bool complete = r.rounds_to_complete.has_value();
      const bool sound = !complete || rmin <= *r.rounds_to_complete;
      ctx.row({util::fmt(std::uint64_t(toy.N)), util::fmt(std::uint64_t(toy.M)),
               util::fmt(std::uint64_t(toy.B)),
               util::fmt(std::uint64_t(toy.omega)), util::fmt(r.target),
               util::fmt(r.states_explored),
               complete ? util::fmt(std::uint64_t(*r.rounds_to_complete))
                        : std::string(">max"),
               util::fmt(rmin), sound ? "yes" : "NO"});
    });
    emit(t, "Mechanized ground truth (exhaustive round-based program "
            "search at toy scale):", io.csv);
  }

  std::cout << "PASS criterion: closed/exact stays within a moderate band\n"
               "(N-independent), confirming the Section 4.2 derivation; and\n"
               "sound = yes in every mechanized row (the counting bound\n"
               "never exceeds the true optimum).\n";
  return 0;
}
catch (const std::exception& e) {
  // CLI/env parse errors (and any other unhandled failure) exit with a
  // one-line diagnostic instead of an uncaught-exception abort.
  std::cerr << "error: " << e.what() << "\n";
  return 2;
}
