// E5 — the min{N, omega n log_{omega m} n} crossover of Theorem 4.5.
//
// The bound's two branches trade places as omega (or B) moves: the naive
// gather wins once omega n log_{omega m} n > N, i.e. roughly once
// omega log_{omega m} n > B.  We sweep omega at fixed (N, M, B) and B at
// fixed (N, M, omega), locate the measured crossover, and compare with the
// point where the predicted curves cross.
//
// Crossover detection compares ADJACENT sweep points, so the per-point
// measurements run through the harness into slots and the scan for the
// flip happens serially afterwards — the located crossover is identical
// for every --jobs value.
#include <iostream>
#include <optional>
#include <vector>

#include "bench_common.hpp"
#include "bounds/permute_bounds.hpp"
#include "permute/dispatch.hpp"
#include "permute/permutation.hpp"

namespace {

using namespace aem;
using namespace aem::bench;

struct Outcome {
  std::uint64_t naive_cost, sort_cost;
};

Outcome measure(std::size_t N, std::size_t M, std::size_t B, std::uint64_t w,
                harness::PointContext& ctx) {
  const std::string tag = " N=" + std::to_string(N) + " M=" + std::to_string(M) +
                          " B=" + std::to_string(B) + " omega=" + std::to_string(w);
  auto keys = util::random_keys(N, ctx.rng());
  auto dest = perm::random(N, ctx.rng());
  Outcome o{};
  {
    Machine mach(make_config(M, B, w));
    ExtArray<std::uint64_t> in(mach, N, "in");
    in.unsafe_host_fill(keys);
    ExtArray<std::uint64_t> out(mach, N, "out");
    mach.reset_stats();
    naive_permute(in, std::span<const std::uint64_t>(dest), out);
    o.naive_cost = mach.cost();
    ctx.metrics(mach, "E5 naive" + tag);
  }
  {
    Machine mach(make_config(M, B, w));
    ExtArray<std::uint64_t> in(mach, N, "in");
    in.unsafe_host_fill(keys);
    ExtArray<std::uint64_t> out(mach, N, "out");
    mach.reset_stats();
    sort_permute(in, std::span<const std::uint64_t>(dest), out);
    o.sort_cost = mach.cost();
    ctx.metrics(mach, "E5 sort" + tag);
  }
  return o;
}

}  // namespace

int main(int argc, char** argv) try {
  util::Cli cli(argc, argv);
  const BenchIo io = bench_io(cli, 5);

  banner("E5", "Theorem 4.5's min{.,.}: naive/sort-based crossover in omega "
               "and B");

  std::optional<std::uint64_t> measured_cross, predicted_cross;
  {
    util::Table t({"omega", "naive", "sort", "measured_winner",
                   "naive_pred", "sort_pred", "predicted_winner"});
    // B = 64 makes element-granular gathering wasteful enough that sorting
    // wins at small omega; the min{} flips as omega grows.
    const std::size_t N = 1 << 14, M = 1024, B = 64;
    const std::vector<std::uint64_t> omegas = {1, 2, 4, 8, 16, 32, 64, 128,
                                               256};
    std::vector<Outcome> slots(omegas.size());
    std::vector<harness::PointResult> results = harness::run_sweep(
        omegas.size(), io.sweep, [&](harness::PointContext& ctx) {
          slots[ctx.index()] = measure(N, M, B, omegas[ctx.index()], ctx);
        });
    replay(std::move(results), nullptr, io.metrics);

    std::optional<bool> prev_sort_won, prev_pred_sort;
    for (std::size_t i = 0; i < omegas.size(); ++i) {
      const std::uint64_t w = omegas[i];
      const Outcome& o = slots[i];
      Machine model(make_config(M, B, w));
      const double nb = predicted_naive_cost(model, N);
      const double sb = predicted_sort_cost(model, N);
      const bool sort_wins = o.sort_cost < o.naive_cost;
      const bool pred_sort = sb < nb;
      if (prev_sort_won.has_value() && *prev_sort_won && !sort_wins &&
          !measured_cross)
        measured_cross = w;
      if (prev_pred_sort.has_value() && *prev_pred_sort && !pred_sort &&
          !predicted_cross)
        predicted_cross = w;
      prev_sort_won = sort_wins;
      prev_pred_sort = pred_sort;
      t.add_row({util::fmt(w), util::fmt(o.naive_cost), util::fmt(o.sort_cost),
                 sort_wins ? "sort" : "naive", util::fmt(nb, 0),
                 util::fmt(sb, 0), pred_sort ? "sort" : "naive"});
    }
    emit(t, "Sweep omega (N=2^14, M=1024, B=64):", io.csv);
    std::cout << "measured crossover omega  : "
              << (measured_cross ? util::fmt(*measured_cross) : "none")
              << "\npredicted crossover omega : "
              << (predicted_cross ? util::fmt(*predicted_cross) : "none")
              << "\n\n";
  }

  {
    util::Table t({"B", "naive", "sort", "measured_winner", "naive_pred",
                   "sort_pred", "predicted_winner"});
    const std::size_t N = 1 << 14;
    const std::uint64_t w = 16;
    const std::vector<std::size_t> blocks = {8, 16, 32, 64, 128};
    sweep_table(io, blocks.size(), t, [&](harness::PointContext& ctx) {
      const std::size_t B = blocks[ctx.index()];
      const std::size_t M = 16 * B;  // keep m fixed at 16
      Outcome o = measure(N, M, B, w, ctx);
      Machine model(make_config(M, B, w));
      const double nb = predicted_naive_cost(model, N);
      const double sb = predicted_sort_cost(model, N);
      ctx.row({util::fmt(std::uint64_t(B)), util::fmt(o.naive_cost),
               util::fmt(o.sort_cost),
               o.sort_cost < o.naive_cost ? "sort" : "naive",
               util::fmt(nb, 0), util::fmt(sb, 0),
               sb < nb ? "sort" : "naive"});
    });
    emit(t, "Sweep B at m=16, omega=16 (bigger blocks favour sorting):",
         io.csv);
  }

  std::cout << "PASS criterion: measured winners flip exactly once per\n"
               "sweep, within one grid step of the predicted flip.\n";
  return 0;
}
catch (const std::exception& e) {
  // CLI/env parse errors (and any other unhandled failure) exit with a
  // one-line diagnostic instead of an uncaught-exception abort.
  std::cerr << "error: " << e.what() << "\n";
  return 2;
}
