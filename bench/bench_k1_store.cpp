// K1 — external-memory KV object store (store/kv_store.hpp, MODEL.md
// section 14): construction cost, serving cost per get, and index size per
// log page for the two index flavors.
//
// Four sections:
//
//  * store sweep     — records {1k, 4k} x omega {1, 8, 64} x index {fence,
//                      compact} x cache capacity {0, 64}, every cell its
//                      own Machine through the parallel harness.  Columns:
//                      construction writes and Q, index bits per page,
//                      charged Q per get over a fixed hit/miss mix, and
//                      the log-read profile (avg / worst per get).
//  * inline-get      — the acceptance microbenchmark: an all-inline store
//                      under a fence index at cache capacity 0, where every
//                      get must cost at most 2 charged reads (it measures
//                      1: index lookup is host-side, the record is one log
//                      block).
//  * index shootout  — fence vs compact on the same log: the compact index
//                      must be strictly smaller in bits while keeping the
//                      average get at ~1 log read (quantization-collision
//                      walks are the rare exception, bounded here).
//  * sharded         — the same build + serve on a ShardedMachine (D=4,
//                      round-robin): facade counters and every get result
//                      must equal the plain machine's, and the sequential
//                      log/payload writes must stripe evenly (wear spread).
//
// PASS criteria (hard guards, exit 1 on violation):
//  * every fence get is exactly 1 log read; compact gets average <= 1.25
//    log reads with a bounded worst case (<= 4);
//  * inline-get: per-get charged read delta <= 2 at cache capacity 0;
//  * compact index strictly fewer bits than fence on every shared cell, at
//    the query-cost bound above;
//  * construction I/O is index-flavor-invariant (the index is built
//    host-side from one layout pass);
//  * a 64-block cache never makes serving dearer than cache-off;
//  * full scans visit every record;
//  * sharded: facade invariance, device conservation, wear spread <= 1.25.
#include <algorithm>
#include <iostream>
#include <map>
#include <optional>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "core/sharding.hpp"
#include "store/kv_store.hpp"

namespace {

using namespace aem;
using namespace aem::bench;
using store::IndexKind;
using store::KvStore;
using store::Slot;
using store::StoreConfig;

constexpr std::size_t kM = 4096;
constexpr std::size_t kB = 16;
constexpr std::size_t kGets = 256;  // per cell, alternating hit / miss

struct Cell {
  std::size_t records;
  std::uint64_t omega;
  IndexKind index;
  std::size_t cache_cap;
};

/// One store workload: headers + payload staged host-side, plus the even
/// keys actually present (odd keys are guaranteed misses).
struct Workload {
  std::vector<Slot> slots;
  std::vector<std::uint64_t> payload;
  std::vector<std::uint64_t> keys;  // one entry per record (with duplicates)
};

/// Mix: ~10% empty values, ~65% inline, ~25% spilled at 2..2B words; ~15%
/// of records overwrite an earlier key.  Deterministic in (seed, records)
/// only, so every cell of one records size serves the same store and the
/// cross-cell guards (index bits, construction I/O) compare like with like.
Workload make_workload(std::size_t records, std::uint64_t seed) {
  util::Rng rng(seed);
  Workload w;
  w.slots.reserve(records);
  w.keys.reserve(records);
  for (std::size_t i = 0; i < records; ++i) {
    std::uint64_t key;
    if (i > 0 && rng.below(100) < 15) {
      key = w.keys[rng.below(i)];
    } else {
      key = rng.next() & ~1ull;
    }
    w.keys.push_back(key);
    Slot s;
    s.key = key;
    const std::uint64_t kind = rng.below(100);
    if (kind < 10) {
      s.len = 0;
    } else if (kind < 75) {
      s.len = 1;
      s.pos = rng.next();
    } else {
      s.len = 2 + rng.below(2 * kB - 1);
      s.pos = w.payload.size();
      for (std::uint64_t j = 0; j < s.len; ++j) w.payload.push_back(rng.next());
    }
    w.slots.push_back(s);
  }
  return w;
}

Config cell_config(const Cell& c) {
  Config cfg = make_config(kM, kB, c.omega);
  cfg.cache.capacity_blocks = c.cache_cap;
  return cfg;
}

void stage(Machine& mach, const Workload& w, ExtArray<Slot>& slots,
           ExtArray<std::uint64_t>& payload) {
  slots = ExtArray<Slot>(mach, w.slots.size(), "input.slots");
  slots.unsafe_host_fill(std::span<const Slot>(w.slots));
  payload = ExtArray<std::uint64_t>(mach, w.payload.size(), "input.payload");
  payload.unsafe_host_fill(std::span<const std::uint64_t>(w.payload));
}

struct CellResult {
  StoreMetrics sm;
  std::uint64_t get_cost = 0;   // charged Q across the get loop
  std::uint64_t get_reads = 0;  // charged reads across the get loop
  bool full_scan_ok = false;    // full scan visited every record
};

CellResult run_cell(const Workload& w, const Cell& c,
                    harness::PointContext& ctx) {
  Machine mach(cell_config(c));
  ExtArray<Slot> slots;
  ExtArray<std::uint64_t> payload;
  stage(mach, w, slots, payload);

  KvStore kv(mach, StoreConfig{c.index, 8});
  kv.build(slots, payload);

  // Serve: kGets point queries, alternating present key / absent (odd) key,
  // drawn from the point's private generator.
  util::Rng& rng = ctx.rng();
  const IoStats serve_before = mach.stats();
  const std::uint64_t cost_before = mach.cost();
  for (std::size_t t = 0; t < kGets; ++t) {
    const std::uint64_t key = (t % 2 == 0)
                                  ? w.keys[rng.below(w.keys.size())]
                                  : (rng.next() | 1);
    kv.get(key);
  }
  mach.flush_cache();
  CellResult r;
  r.get_cost = mach.cost() - cost_before;
  r.get_reads = mach.stats().reads - serve_before.reads;

  // Scans: one full pass plus one random window.
  const std::size_t full = kv.scan(0, ~0ull, [](auto, auto) {});
  r.full_scan_ok = full == kv.records();
  std::uint64_t lo = rng.next(), hi = rng.next();
  if (lo > hi) std::swap(lo, hi);
  kv.scan(lo, hi, [](auto, auto) {});
  mach.flush_cache();

  r.sm = kv.metrics_section();
  const std::string label =
      "K1 records=" + std::to_string(c.records) +
      " omega=" + std::to_string(c.omega) + " index=" + to_string(c.index) +
      " cache=" + std::to_string(c.cache_cap);
  MetricsSnapshot snap = snapshot_metrics(mach, label);
  snap.store = r.sm;
  ctx.snapshot(std::move(snap));

  ctx.row({util::fmt(std::uint64_t(c.records)), util::fmt(c.omega),
           to_string(c.index), util::fmt(std::uint64_t(c.cache_cap)),
           util::fmt(r.sm.build_writes), util::fmt(r.sm.build_cost),
           util::fmt(r.sm.index_bits_per_page, 2),
           util::fmt(static_cast<double>(r.get_cost) / kGets, 3),
           util::fmt(static_cast<double>(r.sm.get_log_reads) / kGets, 3),
           util::fmt(r.sm.max_get_log_reads), util::fmt(r.sm.get_hits)});
  return r;
}

}  // namespace

int main(int argc, char** argv) try {
  util::Cli cli(argc, argv);
  const BenchIo io = bench_io(cli, 21);

  banner("K1",
         "external-memory KV store: construction writes, bits per page, and "
         "charged Q per get — fence vs Elias-Fano compact index");

  std::vector<std::size_t> record_sizes = {1024, 4096};
  if (io.full) record_sizes.push_back(16384);
  const std::uint64_t omegas[] = {1, 8, 64};
  const IndexKind kinds[] = {IndexKind::kFence, IndexKind::kCompact};
  const std::size_t caps[] = {0, 64};

  // One workload per records size, shared by every cell of that size.
  std::map<std::size_t, Workload> workloads;
  for (std::size_t n : record_sizes)
    workloads.emplace(n, make_workload(n, io.seed * 1000003 + n));

  std::vector<Cell> cells;
  for (std::size_t n : record_sizes)
    for (std::uint64_t omega : omegas)
      for (IndexKind k : kinds)
        for (std::size_t cap : caps) cells.push_back({n, omega, k, cap});

  util::Table t({"records", "omega", "index", "cache", "build_W", "build_Q",
                 "bits/page", "Q/get", "log_reads/get", "max_log_reads",
                 "hits"});
  std::vector<CellResult> slots(cells.size());
  replay(harness::run_sweep(cells.size(), io.sweep,
                            [&](harness::PointContext& ctx) {
                              const Cell& c = cells[ctx.index()];
                              slots[ctx.index()] =
                                  run_cell(workloads.at(c.records), c, ctx);
                            }),
         &t, io.metrics);
  emit(t, "K1 store sweep (M=" + util::fmt(std::uint64_t(kM)) + ", B=" +
              util::fmt(std::uint64_t(kB)) + ", " +
              util::fmt(std::uint64_t(kGets)) +
              " gets/cell, alternating hit/miss): serving cost by index:",
       io.csv);

  bool ok = true;
  // Per-cell guards + the fence/compact pairing by (records, omega, cap).
  std::map<std::tuple<std::size_t, std::uint64_t, std::size_t>,
           std::pair<const CellResult*, const CellResult*>>
      pairs;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    const CellResult& r = slots[i];
    const std::string tag = "records=" + std::to_string(c.records) +
                            " omega=" + std::to_string(c.omega) +
                            " index=" + to_string(c.index) +
                            " cache=" + std::to_string(c.cache_cap);
    if (!r.full_scan_ok) {
      std::cerr << "FAIL: " << tag << ": full scan missed records\n";
      ok = false;
    }
    if (r.sm.build_writes == 0) {
      std::cerr << "FAIL: " << tag << ": construction reported zero writes\n";
      ok = false;
    }
    if (c.index == IndexKind::kFence && r.sm.max_get_log_reads > 1) {
      std::cerr << "FAIL: " << tag << ": a fence get took "
                << r.sm.max_get_log_reads << " log reads (bound: 1)\n";
      ok = false;
    }
    if (c.index == IndexKind::kCompact) {
      if (r.sm.max_get_log_reads > 4) {
        std::cerr << "FAIL: " << tag << ": compact probe walk reached "
                  << r.sm.max_get_log_reads << " log reads (bound: 4)\n";
        ok = false;
      }
      if (r.sm.get_log_reads * 4 > r.sm.gets * 5) {
        std::cerr << "FAIL: " << tag << ": compact gets average "
                  << static_cast<double>(r.sm.get_log_reads) / r.sm.gets
                  << " log reads (bound: 1.25)\n";
        ok = false;
      }
    }
    auto& slot = pairs[{c.records, c.omega, c.cache_cap}];
    (c.index == IndexKind::kFence ? slot.first : slot.second) = &r;
  }
  for (const auto& [key, pr] : pairs) {
    const auto& [fence, compact] = pr;
    const std::string tag =
        "records=" + std::to_string(std::get<0>(key)) +
        " omega=" + std::to_string(std::get<1>(key)) +
        " cache=" + std::to_string(std::get<2>(key));
    if (compact->sm.index_bits >= fence->sm.index_bits) {
      std::cerr << "FAIL: " << tag << ": compact index ("
                << compact->sm.index_bits << " bits) not smaller than fence ("
                << fence->sm.index_bits << " bits)\n";
      ok = false;
    }
    if (compact->sm.build_reads != fence->sm.build_reads ||
        compact->sm.build_writes != fence->sm.build_writes) {
      std::cerr << "FAIL: " << tag << ": construction I/O depends on the "
                << "index flavor (host-side index build must be I/O-free)\n";
      ok = false;
    }
  }
  // The cache can only help a read-only serving phase.
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    if (c.cache_cap == 0) continue;
    for (std::size_t j = 0; j < cells.size(); ++j) {
      const Cell& o = cells[j];
      if (o.cache_cap == 0 && o.records == c.records && o.omega == c.omega &&
          o.index == c.index && slots[i].get_cost > slots[j].get_cost) {
        std::cerr << "FAIL: records=" << c.records << " omega=" << c.omega
                  << " index=" << to_string(c.index) << ": cache=64 serving Q "
                  << slots[i].get_cost << " exceeds cache-off "
                  << slots[j].get_cost << "\n";
        ok = false;
      }
    }
  }
  if (ok)
    std::cout << "store-sweep guards: fence gets = 1 log read, compact <= "
                 "1.25 avg / 4 worst; compact strictly smaller on every "
                 "cell; construction flavor-invariant; cache never dearer; "
                 "scans complete\n\n";

  // --- inline-get acceptance microbenchmark --------------------------------
  {
    const std::size_t n = 2048;
    util::Rng rng(io.seed + 77);
    Workload w;
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t key = rng.next() & ~1ull;
      w.keys.push_back(key);
      w.slots.push_back(Slot{key, 1, rng.next()});
    }
    Machine mach(make_config(kM, kB, 8));  // cache capacity 0: every read bills
    ExtArray<Slot> slots_arr;
    ExtArray<std::uint64_t> payload_arr;
    stage(mach, w, slots_arr, payload_arr);
    KvStore kv(mach, StoreConfig{IndexKind::kFence, 8});
    kv.build(slots_arr, payload_arr);

    std::uint64_t worst = 0;
    for (std::size_t t = 0; t < 256; ++t) {
      const std::uint64_t key = w.keys[rng.below(w.keys.size())];
      const std::uint64_t before = mach.stats().reads;
      kv.get(key);
      worst = std::max(worst, mach.stats().reads - before);
    }
    util::Table it({"records", "index", "cache", "gets", "worst_reads/get"});
    it.add_row({util::fmt(std::uint64_t(n)), "fence", "0", "256",
                util::fmt(worst)});
    emit(it, "K1 inline-value store (fence index, no cache): charged reads "
             "per get:",
         io.csv);
    emit_metrics(mach, "K1 inline fence cache=0", io.metrics);
    if (worst > 2) {
      std::cerr << "FAIL: inline-get: a get cost " << worst
                << " charged reads at cache capacity 0 (bound: 2)\n";
      ok = false;
    } else {
      std::cout << "inline-get guard: worst get = " << worst
                << " charged read(s), within the 2-read bound\n\n";
    }
  }

  // --- sharded build + serve ----------------------------------------------
  {
    const Workload& w = workloads.at(record_sizes.front());
    auto serve = [&](Machine& mach, KvStore& kv,
                     std::vector<std::optional<std::vector<std::uint64_t>>>&
                         out) {
      ExtArray<Slot> slots_arr;
      ExtArray<std::uint64_t> payload_arr;
      stage(mach, w, slots_arr, payload_arr);
      kv.build(slots_arr, payload_arr);
      util::Rng rng(io.seed + 99);
      for (std::size_t t = 0; t < 128; ++t)
        out.push_back(kv.get(w.keys[rng.below(w.keys.size())]));
    };

    Machine plain(make_config(kM, kB, 8));
    KvStore pkv(plain, StoreConfig{IndexKind::kFence, 8});
    std::vector<std::optional<std::vector<std::uint64_t>>> plain_out;
    serve(plain, pkv, plain_out);

    ShardConfig sc;
    sc.frontend = make_config(kM, kB, 8);
    sc.devices.assign(4, make_config(kM, kB, 8));
    sc.placement = Placement::kRoundRobin;
    ShardedMachine sharded(sc);
    KvStore skv(sharded, StoreConfig{IndexKind::kFence, 8});
    std::vector<std::optional<std::vector<std::uint64_t>>> shard_out;
    serve(sharded, skv, shard_out);

    util::Table st({"machine", "reads", "writes", "Q", "wear_spread"});
    st.add_row({"plain", util::fmt(plain.stats().reads),
                util::fmt(plain.stats().writes), util::fmt(plain.cost()),
                "-"});
    st.add_row({"sharded D=4", util::fmt(sharded.stats().reads),
                util::fmt(sharded.stats().writes), util::fmt(sharded.cost()),
                util::fmt(sharded.wear_spread(), 3)});
    emit(st, "K1 sharded serving (fence, round-robin, D=4): facade vs plain:",
         io.csv);
    MetricsSnapshot snap =
        snapshot_metrics(sharded, "K1 sharded fence D=4 omega=8");
    snap.store = skv.metrics_section();
    append_metrics(snap, io.metrics);

    if (!(plain.stats() == sharded.stats()) || plain.cost() != sharded.cost() ||
        plain_out != shard_out || !(pkv.stats() == skv.stats())) {
      std::cerr << "FAIL: sharded store diverged from the plain machine "
                << "(Q " << sharded.cost() << " vs " << plain.cost() << ")\n";
      ok = false;
    }
    if (!(sharded.devices_stats() == sharded.stats())) {
      std::cerr << "FAIL: sharded store: device transfers not conserved\n";
      ok = false;
    }
    const double spread = sharded.wear_spread();
    if (spread > 1.25) {
      std::cerr << "FAIL: sharded store: wear spread " << util::fmt(spread, 3)
                << " above the 1.25 ceiling (sequential log writes must "
                << "stripe evenly)\n";
      ok = false;
    }
    if (ok)
      std::cout << "sharded guard: facade counters, get results, and device "
                   "conservation hold; wear spread "
                << util::fmt(spread, 3) << " <= 1.25\n";
  }

  std::cout << "\nPASS criteria: fence gets = 1 log read; inline gets <= 2 "
               "charged reads at cache 0; compact index strictly smaller at "
               "<= 1.25 avg log reads; construction flavor-invariant; cache "
               "never dearer; full scans complete; sharded facade invariance "
               "with even wear.\n";
  return ok ? 0 : 1;
}
catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << "\n";
  return 2;
}
