// A1 (ablation) — why the paper's Section 5 fixes COLUMN-major layout.
//
// SpMxV produces its output row by row.  With the matrix stored row-major,
// the direct program's gathers become sequential scans (cost ~ h + omega n,
// essentially optimal) and nothing needs sorting.  Column-major storage is
// the adversarial layout: row gathers shatter into ~one read per entry,
// opening the gap between O(H) and O(omega h log ...) that Theorem 5.1
// formalizes.  This bench measures the same conformation in both layouts.
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "bounds/spmv_bounds.hpp"
#include "spmv/matrix.hpp"
#include "spmv/naive.hpp"
#include "spmv/sort_spmv.hpp"

namespace {

using namespace aem;
using namespace aem::bench;
using namespace aem::spmv;

// Both programs run in the Theorem 5.1 hard setting: multiply by the
// implicit all-ones vector (row sums) — no x reads.
std::uint64_t run_naive(const Conformation& conf, std::size_t M,
                        std::size_t B, std::uint64_t w,
                        harness::PointContext& ctx, const std::string& label) {
  Machine mach(make_config(M, B, w));
  SparseMatrix<std::uint64_t> A(mach, conf, [](Coord) { return 1ull; });
  ExtArray<std::uint64_t> y(mach, conf.n(), "y");
  mach.reset_stats();
  naive_row_sums(A, y, Counting{});
  ctx.metrics(mach, label);
  return mach.cost();
}

std::uint64_t run_sort(const Conformation& conf, std::size_t M, std::size_t B,
                       std::uint64_t w, harness::PointContext& ctx,
                       const std::string& label) {
  Machine mach(make_config(M, B, w));
  SparseMatrix<std::uint64_t> A(mach, conf, [](Coord) { return 1ull; });
  ExtArray<std::uint64_t> y(mach, conf.n(), "y");
  mach.reset_stats();
  sort_row_sums(A, y, Counting{});
  ctx.metrics(mach, label);
  return mach.cost();
}

struct Point {
  std::uint64_t delta, w;
};

}  // namespace

int main(int argc, char** argv) try {
  util::Cli cli(argc, argv);
  const BenchIo io = bench_io(cli, 11);

  banner("A1 (ablation)",
         "column-major is the adversarial layout of Section 5; row-major "
         "makes the direct program a scan");

  util::Table t({"N", "delta", "omega", "naive_colmajor", "naive_rowmajor",
                 "col/row", "sort_colmajor", "hard_case_gap"});
  const std::size_t M = 256, B = 16;
  std::vector<Point> grid;
  for (std::uint64_t delta : {2, 4, 8})
    for (std::uint64_t w : {1, 4, 16}) grid.push_back({delta, w});
  sweep_table(io, grid.size(), t, [&](harness::PointContext& ctx) {
    const auto [delta, w] = grid[ctx.index()];
    const std::uint64_t N = 1 << 13;
    auto col = Conformation::delta_regular(N, delta, ctx.rng());
    auto row = col.reordered(Layout::kRowMajor);
    const std::string tag = " delta=" + std::to_string(delta) +
                            " omega=" + std::to_string(w);
    const auto naive_col = run_naive(col, M, B, w, ctx,
                                     "A1 naive colmajor" + tag);
    const auto naive_row = run_naive(row, M, B, w, ctx,
                                     "A1 naive rowmajor" + tag);
    const auto sort_col = run_sort(col, M, B, w, ctx,
                                   "A1 sort colmajor" + tag);
    const std::uint64_t best_col = std::min(naive_col, sort_col);
    ctx.row({util::fmt(N), util::fmt(delta), util::fmt(w),
             util::fmt(naive_col), util::fmt(naive_row),
             util::fmt_ratio(double(naive_col), double(naive_row), 2),
             util::fmt(sort_col),
             util::fmt_ratio(double(best_col), double(naive_row), 2)});
  });
  emit(t, "Same conformation, both layouts (M=256, B=16):", io.csv);

  std::cout
      << "PASS criterion: col/row >> 1 and growing with delta (row-major\n"
         "gathers are scans; column-major shatters them); hard_case_gap\n"
         "shows how much of the column-major penalty even the best\n"
         "column-major program cannot avoid — the gap Theorem 5.1 bounds.\n";
  return 0;
}
catch (const std::exception& e) {
  // CLI/env parse errors (and any other unhandled failure) exit with a
  // one-line diagnostic instead of an uncaught-exception abort.
  std::cerr << "error: " << e.what() << "\n";
  return 2;
}
