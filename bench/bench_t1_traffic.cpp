// T1 — deterministic request-stream serving (traffic/engine.hpp, MODEL.md
// section 16): per-request charged-Q percentiles, placement-invariant
// frontend cost vs placement-DEPENDENT device load, and SLO admission
// control over a skewed open-loop stream.
//
// Three sections:
//
//  * traffic sweep      — dist {zipf, hotset} (+uniform under --full) x
//                         write mix {read-only, 50% puts} x placement
//                         {round-robin, range} x cache policy {lru,
//                         clean-first}, every cell its own ShardedMachine
//                         (D=4, omega=16) through the parallel harness.
//                         Columns: served Q, requests per 1000 Q, the
//                         p50/p99/p999/max/mean of per-request charged Q,
//                         device-load imbalance, and the wear-out horizon.
//                         The stream seed depends only on (dist, mix), so
//                         placement/policy cells serve the byte-identical
//                         request sequence.
//  * admission control  — a per-window Q budget on a plain machine: the
//                         engine rejects batches once a window's budget is
//                         spent (BudgetExceeded -> rejection, charging
//                         nothing), and an unbudgeted twin serves the whole
//                         stream.
//  * degraded serving   — the same stream against a calm array and one with
//                         a device outage window armed mid-stream: waiting
//                         reads charge backoff polls into the served tail.
//
// PASS criteria (hard guards, exit 1 on violation):
//  * served + rejected == generated on every cell; the unbudgeted sweep
//    rejects nothing;
//  * placement invariance: frontend engine counters and the whole
//    per-request Q histogram are byte-identical rr vs range on every
//    (dist, mix, policy) pair — placement moves cost between devices, never
//    into the stream;
//  * hot prefix: on every zipf pair, range placement's device-load
//    imbalance is STRICTLY worse than round-robin's;
//  * q percentiles are monotone (p50 <= p99 <= p999 <= max) and the wear
//    horizon is reported on every cell (endurance armed, wear tracked);
//  * admission control: the budgeted run rejects some batches and serves
//    the rest, identity intact; the unbudgeted twin rejects zero;
//  * degraded serving: the outage run charges at least the calm run's Q,
//    the surplus is exactly the charged backoff polls, and hit counts
//    match (rejections/waits never change WHAT is served).
#include <algorithm>
#include <iostream>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "bench_common.hpp"
#include "core/sharding.hpp"
#include "store/kv_store.hpp"
#include "traffic/engine.hpp"

namespace {

using namespace aem;
using namespace aem::bench;
using store::IndexKind;
using store::KvStore;
using store::Slot;
using store::StoreConfig;
using traffic::EngineConfig;
using traffic::KeyDist;
using traffic::TrafficConfig;
using traffic::TrafficEngine;

constexpr std::size_t kM = 4096;
constexpr std::size_t kB = 16;
constexpr std::uint64_t kOmega = 16;
constexpr std::size_t kRecords = 2048;      // keys 0, 2, 4, ... (stride 2)
constexpr std::uint64_t kRequests = 2048;   // per sweep cell
constexpr std::uint64_t kEndurance = 100000;

struct Cell {
  KeyDist dist;
  double write_fraction;
  Placement placement;
  CachePolicy policy;
};

/// The served store: kRecords records at keys {0, 2, ..., 2*(kRecords-1)}
/// — the generator's slot * stride mapping lands every request on a present
/// key.  ~10% of values spill (2..8 words) so puts orphan payload words;
/// the rest are inline.  Deterministic in `seed` alone: every sweep cell
/// serves the identical store.
struct Workload {
  std::vector<Slot> slots;
  std::vector<std::uint64_t> payload;
};

Workload make_workload(std::uint64_t seed) {
  util::Rng rng(seed);
  Workload w;
  w.slots.reserve(kRecords);
  for (std::size_t i = 0; i < kRecords; ++i) {
    Slot s;
    s.key = 2 * i;
    if (rng.below(100) < 10) {
      s.len = 2 + rng.below(7);
      s.pos = w.payload.size();
      for (std::uint64_t j = 0; j < s.len; ++j) w.payload.push_back(rng.next());
    } else {
      s.len = 1;
      s.pos = rng.next();
    }
    w.slots.push_back(s);
  }
  return w;
}

void stage(Machine& mach, const Workload& w, ExtArray<Slot>& slots,
           ExtArray<std::uint64_t>& payload) {
  slots = ExtArray<Slot>(mach, w.slots.size(), "input.slots");
  slots.unsafe_host_fill(std::span<const Slot>(w.slots));
  payload = ExtArray<std::uint64_t>(mach, w.payload.size(), "input.payload");
  payload.unsafe_host_fill(std::span<const std::uint64_t>(w.payload));
}

TrafficConfig stream_config(KeyDist dist, double write_fraction) {
  TrafficConfig tc;
  tc.requests = kRequests;
  tc.dist = dist;
  tc.zipf_theta = 0.99;
  tc.key_space = kRecords;
  tc.key_stride = 2;
  tc.write_fraction = write_fraction;
  tc.scan_fraction = 0.05;
  tc.scan_len = 8;
  tc.batch_size = 4;
  tc.hot_fraction = 0.1;
  tc.hot_weight = 0.9;
  tc.drift_every = 256;
  return tc;
}

/// The stream seed is a function of (dist, mix) ONLY — placement and cache
/// policy cells replay the byte-identical request sequence, which is what
/// the placement-invariance and imbalance guards compare.
std::uint64_t stream_seed(std::uint64_t base, const Cell& c) {
  return base * 1000003 +
         static_cast<std::uint64_t>(c.dist) * 16 +
         (c.write_fraction > 0.0 ? 1 : 0);
}

struct CellResult {
  traffic::EngineStats es;
  traffic::QHistogram hist;
  TrafficMetrics tm;
};

CellResult run_cell(const Workload& w, const Cell& c, std::uint64_t seed,
                    harness::PointContext& ctx) {
  ShardConfig sc;
  sc.frontend = make_config(kM, kB, kOmega);
  sc.frontend.cache.capacity_blocks = 16;
  sc.frontend.cache.policy = c.policy;
  sc.devices.assign(4, make_config(kM, kB, kOmega));
  sc.placement = c.placement;
  sc.range_chunk_blocks = 8;  // 128 log blocks / 8 = 16 chunks over D=4
  ShardedMachine mach(sc);
  mach.enable_device_wear_tracking();

  ExtArray<Slot> slots;
  ExtArray<std::uint64_t> payload;
  stage(mach, w, slots, payload);
  KvStore kv(mach, StoreConfig{IndexKind::kFence, 8});
  kv.build(slots, payload);
  mach.flush_cache();  // the build's write-backs are the build's, not ours

  EngineConfig ec;
  ec.traffic = stream_config(c.dist, c.write_fraction);
  ec.endurance = kEndurance;
  TrafficEngine eng(kv, mach, ec, stream_seed(seed, c));
  eng.run();

  CellResult r;
  r.es = eng.stats();
  r.hist = eng.histogram();
  r.tm = eng.metrics_section();

  const std::string label =
      "T1 dist=" + std::string(to_string(c.dist)) +
      " wmix=" + util::fmt(c.write_fraction, 2) +
      " placement=" + to_string(c.placement) +
      " policy=" + to_string(c.policy);
  MetricsSnapshot snap = snapshot_metrics(mach, label);
  snap.store = kv.metrics_section();
  snap.traffic = r.tm;
  ctx.snapshot(std::move(snap));

  ctx.row({to_string(c.dist), util::fmt(c.write_fraction, 2),
           to_string(c.placement), to_string(c.policy),
           util::fmt(r.es.cost), util::fmt(eng.throughput_mille()),
           util::fmt(r.tm.q_p50), util::fmt(r.tm.q_p99),
           util::fmt(r.tm.q_p999), util::fmt(r.tm.q_max),
           util::fmt(r.tm.q_mean, 2), util::fmt(r.tm.imbalance, 3),
           util::fmt(r.tm.wear_horizon)});
  return r;
}

}  // namespace

int main(int argc, char** argv) try {
  util::Cli cli(argc, argv);
  const BenchIo io = bench_io(cli, 29);

  banner("T1",
         "request-stream serving: per-request charged-Q percentiles, "
         "placement-invariant frontend cost vs device-load imbalance, and "
         "per-window SLO admission control");

  const Workload w = make_workload(io.seed * 7919 + 5);

  std::vector<KeyDist> dists = {KeyDist::kZipf, KeyDist::kHotSet};
  if (io.full) dists.push_back(KeyDist::kUniform);
  const double mixes[] = {0.0, 0.5};
  const Placement placements[] = {Placement::kRoundRobin, Placement::kRange};
  const CachePolicy policies[] = {CachePolicy::kLru, CachePolicy::kCleanFirst};

  std::vector<Cell> cells;
  for (KeyDist d : dists)
    for (double m : mixes)
      for (Placement p : placements)
        for (CachePolicy pol : policies) cells.push_back({d, m, p, pol});

  util::Table t({"dist", "wmix", "placement", "policy", "Q", "req/kQ", "p50",
                 "p99", "p999", "max", "mean", "imbalance", "horizon"});
  std::vector<CellResult> slots(cells.size());
  replay(harness::run_sweep(cells.size(), io.sweep,
                            [&](harness::PointContext& ctx) {
                              slots[ctx.index()] = run_cell(
                                  w, cells[ctx.index()], io.seed, ctx);
                            }),
         &t, io.metrics);
  emit(t, "T1 traffic sweep (D=4, omega=" + util::fmt(kOmega) + ", " +
              util::fmt(kRequests) + " requests/cell, cache 16 blocks): "
              "per-request charged Q by placement and policy:",
       io.csv);

  bool ok = true;
  // Per-cell identity + percentile monotonicity + wear horizon.
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    const CellResult& r = slots[i];
    const std::string tag = "dist=" + std::string(to_string(c.dist)) +
                            " wmix=" + util::fmt(c.write_fraction, 2) +
                            " placement=" + to_string(c.placement) +
                            " policy=" + to_string(c.policy);
    if (r.es.served + r.es.rejected != r.es.generated ||
        r.es.generated != kRequests || r.es.rejected != 0) {
      std::cerr << "FAIL: " << tag << ": served " << r.es.served
                << " + rejected " << r.es.rejected << " != generated "
                << r.es.generated << " (no budget: rejected must be 0)\n";
      ok = false;
    }
    if (r.tm.q_p50 > r.tm.q_p99 || r.tm.q_p99 > r.tm.q_p999 ||
        r.tm.q_p999 > r.tm.q_max) {
      std::cerr << "FAIL: " << tag << ": non-monotone percentiles p50="
                << r.tm.q_p50 << " p99=" << r.tm.q_p99 << " p999="
                << r.tm.q_p999 << " max=" << r.tm.q_max << "\n";
      ok = false;
    }
    if (r.tm.wear_horizon == 0) {
      std::cerr << "FAIL: " << tag << ": wear horizon unreported (endurance "
                << "armed and device wear tracked)\n";
      ok = false;
    }
  }

  // Placement invariance + the hot-prefix imbalance contrast, per
  // (dist, mix, policy) pair.
  std::map<std::tuple<int, int, int>,
           std::pair<const CellResult*, const CellResult*>>
      pairs;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    auto& slot = pairs[{static_cast<int>(c.dist),
                        c.write_fraction > 0.0 ? 1 : 0,
                        static_cast<int>(c.policy)}];
    (c.placement == Placement::kRoundRobin ? slot.first : slot.second) =
        &slots[i];
  }
  for (const auto& [key, pr] : pairs) {
    const auto& [rr, range] = pr;
    const std::string tag =
        "dist=" + std::string(to_string(static_cast<KeyDist>(
                      std::get<0>(key)))) +
        " wmix=" + std::to_string(std::get<1>(key)) +
        " policy=" + to_string(static_cast<CachePolicy>(std::get<2>(key)));
    if (!(rr->es == range->es) || !(rr->hist == range->hist)) {
      std::cerr << "FAIL: " << tag << ": frontend serving diverged between "
                << "placements (Q " << rr->es.cost << " vs " << range->es.cost
                << ") — placement may move cost between devices, never "
                << "change the stream's charged Q\n";
      ok = false;
    }
    if (static_cast<KeyDist>(std::get<0>(key)) == KeyDist::kZipf &&
        range->tm.imbalance <= rr->tm.imbalance) {
      std::cerr << "FAIL: " << tag << ": range imbalance "
                << util::fmt(range->tm.imbalance, 3)
                << " not strictly worse than round-robin "
                << util::fmt(rr->tm.imbalance, 3)
                << " under a zipf hot prefix\n";
      ok = false;
    }
  }
  if (ok)
    std::cout << "sweep guards: served+rejected==generated on every cell; "
                 "frontend counters and Q histogram placement-invariant; "
                 "range strictly worse than round-robin on zipf device "
                 "imbalance; percentiles monotone; wear horizon reported\n\n";

  // --- admission control ----------------------------------------------------
  {
    const auto serve = [&](std::uint64_t q_budget, std::uint64_t window) {
      Machine mach(make_config(kM, kB, kOmega));  // cache 0: every I/O bills
      ExtArray<Slot> slots_arr;
      ExtArray<std::uint64_t> payload_arr;
      stage(mach, w, slots_arr, payload_arr);
      KvStore kv(mach, StoreConfig{IndexKind::kFence, 8});
      kv.build(slots_arr, payload_arr);

      EngineConfig ec;
      ec.traffic = stream_config(KeyDist::kZipf, 0.25);
      ec.traffic.requests = 1024;
      ec.q_budget = q_budget;
      ec.window_requests = window;
      TrafficEngine eng(kv, mach, ec, io.seed * 1000003 + 777);
      eng.run();
      MetricsSnapshot snap = snapshot_metrics(
          mach, "T1 admission budget=" + util::fmt(q_budget) +
                    " window=" + util::fmt(window));
      snap.store = kv.metrics_section();
      snap.traffic = eng.metrics_section();
      append_metrics(snap, io.metrics);
      return std::pair<traffic::EngineStats, double>(eng.stats(),
                                                     eng.rejection_rate());
    };

    const auto [open, open_rate] = serve(0, 0);
    const std::uint64_t budget = 256;
    const auto [gated, gated_rate] = serve(budget, 256);

    util::Table at({"q_budget", "window", "generated", "served", "rejected",
                    "reject_rate", "windows", "Q"});
    at.add_row({"off", "-", util::fmt(open.generated), util::fmt(open.served),
                util::fmt(open.rejected), util::fmt(open_rate, 3),
                util::fmt(open.windows), util::fmt(open.cost)});
    at.add_row({util::fmt(budget), "256", util::fmt(gated.generated),
                util::fmt(gated.served), util::fmt(gated.rejected),
                util::fmt(gated_rate, 3), util::fmt(gated.windows),
                util::fmt(gated.cost)});
    emit(at, "T1 admission control (plain machine, zipf 25% puts, 1024 "
             "requests): per-window Q budget vs open serving:",
         io.csv);

    if (open.rejected != 0 || open.served != open.generated) {
      std::cerr << "FAIL: admission: the unbudgeted run rejected "
                << open.rejected << " of " << open.generated << "\n";
      ok = false;
    }
    if (gated.rejected == 0 || gated.served == 0 ||
        gated.served + gated.rejected != gated.generated) {
      std::cerr << "FAIL: admission: budget=" << budget << " served "
                << gated.served << " rejected " << gated.rejected
                << " of " << gated.generated
                << " (expect both nonzero, identity intact)\n";
      ok = false;
    }
    if (gated.cost >= open.cost) {
      std::cerr << "FAIL: admission: the gated run charged " << gated.cost
                << " Q, not less than the open run's " << open.cost
                << " (rejected batches must charge nothing)\n";
      ok = false;
    }
    if (ok)
      std::cout << "admission guards: open run serves everything; budget="
                << budget << "/window rejects " << gated.rejected
                << " requests (rate " << util::fmt(gated_rate, 3)
                << ") and charges " << gated.cost << " < " << open.cost
                << " Q\n\n";
  }

  // --- degraded serving under a device outage -------------------------------
  {
    const auto run = [&](std::vector<OutageSpec> outages,
                         std::uint64_t* clock_after_build) {
      ShardConfig sc;
      sc.frontend = make_config(kM, kB, kOmega);
      sc.devices.assign(4, make_config(kM, kB, kOmega));
      sc.placement = Placement::kRoundRobin;
      sc.outages = std::move(outages);
      auto mach = std::make_unique<ShardedMachine>(sc);
      ExtArray<Slot> slots_arr;
      ExtArray<std::uint64_t> payload_arr;
      stage(*mach, w, slots_arr, payload_arr);
      auto kv = std::make_unique<KvStore>(*mach, StoreConfig{IndexKind::kFence, 8});
      kv->build(slots_arr, payload_arr);
      if (clock_after_build != nullptr) *clock_after_build = mach->op_clock();

      EngineConfig ec;
      ec.traffic = stream_config(KeyDist::kZipf, 0.25);
      ec.traffic.requests = 512;
      TrafficEngine eng(*kv, *mach, ec, io.seed * 1000003 + 888);
      eng.run();
      mach->drain_recovered();
      return std::tuple<traffic::EngineStats, OutageStats, std::uint64_t>(
          eng.stats(), mach->outage_stats(1), mach->op_clock());
    };

    std::uint64_t build_clock = 0;
    const auto [calm, calm_ost, calm_clock] = run({}, &build_clock);
    // Device 1 goes dark for a 120-op window in the middle of the serving
    // phase (the build is already durable by then).  The window must stay
    // below the default outage-retry backoff budget (~191 polls) so a read
    // arriving right at down_at can still wait the outage out.
    const std::uint64_t down_at = (build_clock + calm_clock) / 2;
    const std::uint64_t up_at = down_at + 120;
    const auto [dark, dark_ost, dark_clock] =
        run({OutageSpec{1, down_at, up_at}}, nullptr);
    (void)calm_ost;
    (void)dark_clock;

    util::Table ot({"machine", "served", "Q", "wait_rounds", "backoff_R",
                    "queued_W", "drained_W"});
    ot.add_row({"calm", util::fmt(calm.served), util::fmt(calm.cost), "0", "0",
                "0", "0"});
    ot.add_row({"dev1 down [" + util::fmt(down_at) + "," + util::fmt(up_at) +
                    ")",
                util::fmt(dark.served), util::fmt(dark.cost),
                util::fmt(dark_ost.wait_rounds),
                util::fmt(dark_ost.backoff_ios),
                util::fmt(dark_ost.queued_writes),
                util::fmt(dark_ost.drained_writes)});
    emit(ot, "T1 degraded serving (D=4 round-robin, zipf 25% puts, dev1 "
             "outage mid-stream): backoff polls charged into the stream:",
         io.csv);

    if (dark_ost.wait_rounds == 0 || dark_ost.backoff_ios == 0) {
      std::cerr << "FAIL: degraded: the outage window was never hit "
                << "(wait_rounds=" << dark_ost.wait_rounds << ")\n";
      ok = false;
    }
    if (dark.cost != calm.cost + dark_ost.backoff_ios) {
      std::cerr << "FAIL: degraded: outage Q " << dark.cost
                << " != calm Q " << calm.cost << " + backoff polls "
                << dark_ost.backoff_ios << "\n";
      ok = false;
    }
    if (dark.get_hits != calm.get_hits || dark.put_hits != calm.put_hits ||
        dark.served != calm.served) {
      std::cerr << "FAIL: degraded: the outage changed WHAT was served "
                << "(hits " << dark.get_hits << "/" << dark.put_hits
                << " vs " << calm.get_hits << "/" << calm.put_hits << ")\n";
      ok = false;
    }
    if (ok)
      std::cout << "degraded-serving guards: identical served results; "
                   "outage Q = calm Q + " << dark_ost.backoff_ios
                << " charged backoff polls\n";
  }

  std::cout << "\nPASS criteria: served+rejected==generated everywhere; "
               "frontend Q placement-invariant while zipf device imbalance "
               "is strictly worse under range placement; monotone Q "
               "percentiles with a reported wear horizon; budgeted windows "
               "reject (charging nothing) where open serving pays; outage "
               "surplus = charged backoff polls.\n";
  return ok ? 0 : 1;
}
catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << "\n";
  return 2;
}
