// R1 (robustness) — what does surviving a faulty NVM actually cost in Q?
//
// The AEM model prices writes at omega because NVM cells wear and fail; a
// real device therefore runs its algorithms on top of a recovery layer
// (verify-after-write, checksum-verified reads, bounded retry, wear-level
// remap).  This experiment makes that price visible: mergesort runs under a
// deterministic fault schedule while every retry and verification read is
// charged through the normal accounting, and the table reports the
// Q-overhead over the fault-free run as the fault rate and omega sweep.
//
// Sweep 1: fault rate {0, 1e-4, 1e-3, 1e-2} x omega {1, 4, 16}.  The
//   rate-0 row doubles as the zero-overhead-when-off guard: its Q must be
//   byte-identical to a machine with no policy installed (exit 1 if not).
//   Each (omega, rate) cell measures on its own machine, so the sweep runs
//   through the harness into slots; the clean-vs-faulty comparisons (which
//   reach ACROSS points) happen serially afterwards.  All runs at one
//   omega share the same input (fixed input seed), by design — the
//   overhead column compares like with like.
// Sweep 2: endurance x spares — how far a write-hammering workload gets
//   before the spare pool runs dry, and what the migrations cost.
//
// Every output is verified against the host-side expectation; an
// unverified output is a hard failure (exit 1), because a recovery layer
// that silently loses data is worse than none.
#include <algorithm>
#include <iostream>
#include <optional>
#include <vector>

#include "bench_common.hpp"
#include "core/faults.hpp"
#include "core/remap.hpp"
#include "sort/mergesort.hpp"

namespace {

using namespace aem;
using namespace aem::bench;

struct FaultRunResult {
  std::uint64_t q = 0;
  IoStats io;
  FaultStats fs;
  bool verified = false;
};

FaultRunResult run_sort(std::size_t N, std::size_t M, std::size_t B,
                        std::uint64_t omega, const FaultConfig* fc,
                        std::uint64_t input_seed, harness::PointContext& ctx,
                        const std::string& label) {
  Machine mach(make_config(M, B, omega));
  if (fc != nullptr) mach.install_faults(*fc);
  util::Rng rng(input_seed);
  const auto host = util::random_keys(N, rng);
  ExtArray<std::uint64_t> in(mach, N, "in");
  in.unsafe_host_fill(host);
  ExtArray<std::uint64_t> out(mach, N, "out");
  mach.reset_stats();
  aem_merge_sort(in, out);

  auto expect = host;
  std::sort(expect.begin(), expect.end());
  FaultRunResult r;
  r.q = mach.cost();
  r.io = mach.stats();
  if (const FaultPolicy* fp = mach.faults()) r.fs = fp->stats();
  r.verified = out.unsafe_host_view() == expect;
  ctx.metrics(mach, label);
  return r;
}

}  // namespace

int main(int argc, char** argv) try {
  util::Cli cli(argc, argv);
  const BenchIo io = bench_io(cli, 2017);
  const std::uint64_t fault_seed = io.seed;

  banner("R1 (robustness)",
         "the omega-weighted price of recovery: Q overhead of running "
         "mergesort on a faulty device");

  const std::size_t N = io.full ? (1 << 16) : (1 << 13);
  const std::size_t M = 256, B = 16;
  bool ok = true;

  // --- Sweep 1: fault rate x omega ---------------------------------------
  // Point grid: for each omega, one clean run (rate = nullopt) followed by
  // the four faulty rates.  The grid order is also the table/metrics order.
  struct Point {
    std::uint64_t omega;
    std::optional<double> rate;  // nullopt: no policy installed (clean)
  };
  const std::vector<std::uint64_t> omegas = {1, 4, 16};
  const std::vector<double> rates = {0.0, 1e-4, 1e-3, 1e-2};
  std::vector<Point> grid;
  for (const std::uint64_t omega : omegas) {
    grid.push_back({omega, std::nullopt});
    for (const double rate : rates) grid.push_back({omega, rate});
  }

  std::vector<FaultRunResult> slots(grid.size());
  replay(harness::run_sweep(grid.size(), io.sweep,
                            [&](harness::PointContext& ctx) {
                              const Point& pt = grid[ctx.index()];
                              if (!pt.rate) {
                                slots[ctx.index()] = run_sort(
                                    N, M, B, pt.omega, nullptr, 42, ctx,
                                    "R1 clean w=" + std::to_string(pt.omega));
                                return;
                              }
                              FaultConfig fc;
                              fc.seed = fault_seed;
                              fc.read_fault_rate = *pt.rate;
                              fc.silent_write_rate = *pt.rate / 2;
                              fc.torn_write_rate = *pt.rate / 2;
                              fc.max_retries = 64;
                              slots[ctx.index()] = run_sort(
                                  N, M, B, pt.omega, &fc, 42, ctx,
                                  "R1 rate=" + util::fmt(*pt.rate, 6) +
                                      " w=" + std::to_string(pt.omega));
                            }),
         nullptr, io.metrics);

  util::Table t({"rate", "omega", "Q_clean", "Q_faulty", "overhead",
                 "rd_flt", "wr_flt", "retries", "verified"});
  const FaultRunResult* clean = nullptr;
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const Point& pt = grid[i];
    const FaultRunResult& r = slots[i];
    if (!pt.rate) {
      clean = &r;
      if (!r.verified) ok = false;
      continue;
    }
    if (!r.verified) {
      std::cerr << "FAIL: unverified output at rate=" << *pt.rate
                << " omega=" << pt.omega << "\n";
      ok = false;
    }
    if (*pt.rate == 0.0 && (r.q != clean->q || !(r.io == clean->io))) {
      std::cerr << "FAIL: zero-rate policy changed the cost: Q " << clean->q
                << " -> " << r.q << " (zero-overhead-when-off is broken)\n";
      ok = false;
    }
    t.add_row({util::fmt(*pt.rate, 6), util::fmt(pt.omega),
               util::fmt(clean->q), util::fmt(r.q),
               util::fmt_ratio(double(r.q), double(clean->q), 3),
               util::fmt(r.fs.read_faults),
               util::fmt(r.fs.silent_write_faults + r.fs.torn_write_faults),
               util::fmt(r.fs.read_retries + r.fs.write_retries),
               r.verified ? "yes" : "NO"});
  }
  emit(t,
       "Mergesort under injected faults, N=" + util::fmt(std::uint64_t(N)) +
           ", M=256, B=16 (overhead = Q_faulty/Q_clean):",
       io.csv);

  // --- Sweep 2: endurance and the spare pool ------------------------------
  // A write-hammering loop on one array: how many rewrites of the same
  // region does each (endurance, spares) budget survive, and what do the
  // migrations cost?  SparesExhausted is the expected graceful endpoint.
  util::Table t2({"endurance", "spares", "rewrites_survived", "remaps",
                  "retired", "Q"});
  struct HammerPoint {
    std::uint64_t endurance;
    std::size_t spares;
  };
  std::vector<HammerPoint> hammer;
  for (const std::uint64_t endurance : {4ull, 16ull})
    for (const std::size_t spares : {std::size_t(2), std::size_t(8)})
      hammer.push_back({endurance, spares});
  sweep_table(io, hammer.size(), t2, [&](harness::PointContext& ctx) {
    const auto [endurance, spares] = hammer[ctx.index()];
    Machine mach(make_config(M, B, 8));
    FaultConfig fc;
    fc.seed = fault_seed;
    fc.endurance = endurance;
    fc.spare_blocks = spares;
    mach.install_faults(fc);
    ExtArray<std::uint64_t> a(mach, 4 * B, "hammer");
    a.unsafe_host_fill(std::vector<std::uint64_t>(4 * B, 0));
    std::vector<std::uint64_t> payload(B);
    std::uint64_t survived = 0;
    try {
      for (std::uint64_t round = 0;; ++round) {
        for (std::size_t i = 0; i < B; ++i) payload[i] = round * B + i;
        a.write_block(round % 4, std::span<const std::uint64_t>(payload));
        ++survived;
      }
    } catch (const SparesExhausted&) {
      // the device wore out — exactly the endpoint being measured
    }
    const FaultStats& fs = mach.faults()->stats();
    ctx.row({util::fmt(endurance), util::fmt(std::uint64_t(spares)),
             util::fmt(survived), util::fmt(fs.remaps),
             util::fmt(fs.retired_blocks), util::fmt(mach.cost())});
    ctx.metrics(mach, "R1 hammer e=" + std::to_string(endurance) +
                          " s=" + std::to_string(spares));
  });
  emit(t2,
       "Write-hammering until the spare pool is exhausted (4-block array, "
       "round-robin rewrites, omega=8):",
       io.csv);

  if (!ok) {
    std::cerr << "bench_r1_faults: FAILED (unverified output or broken "
                 "zero-overhead guarantee)\n";
    return 1;
  }
  std::cout << "all outputs verified; zero-rate Q identical to no-policy Q\n";
  return 0;
}
catch (const std::exception& e) {
  // CLI/env parse errors (and any other unhandled failure) exit with a
  // one-line diagnostic instead of an uncaught-exception abort.
  std::cerr << "error: " << e.what() << "\n";
  return 2;
}
