// M0 (meta) — instrumentation overhead of the Machine hot path itself.
//
// Every experiment E1-E10 funnels each simulated block transfer through
// Machine::on_read/on_write, so simulated-I/Os-per-second bounds the
// (N, omega) grids we can afford.  This bench measures that throughput
// under each instrumentation feature (phases, wear, trace) and — the
// regression guard — against a faithful replica of the seed implementation
// (string-keyed std::map phase attribution with an O(depth^2) per-I/O
// duplicate check, and a std::map<(array,block)> wear histogram).
//
// PASS criterion: phase-attributed I/O >= 3x the legacy replica's
// throughput.  The bench prints the ratio and exits nonzero if it regresses
// below 3x, so a slow hot path fails loudly in CI.
//
// More wall-clock sections ride along (M0 is the one bench whose
// tables legitimately contain timings, so it is excluded from the --jobs
// byte-determinism check):
//  * batch-dispatch speedup — Machine::submit vs the per-op virtual loop
//    for the same op sequence at batch sizes {16, 64, 256, 1024}; guard:
//    >= --min-batch-speedup (default 2x) at batch >= 64, backed by
//    byte-identity guards (plain, ExtArray, sharded, store) proving the
//    batched path charges exactly what the per-op path charges;
//  * fence-lookup speedup — the branchless Eytzinger rank kernel vs
//    std::upper_bound on the same fence array (report-only: both are
//    host-side and charge nothing, so only the wall clock differs);
//  * merge-kernel speedup — em_merge_group with the loser-tree selection
//    kernel vs the reference O(k) scan at k in {4, 16, 64, 256}; guard:
//    >= --min-kernel-speedup (default 2x) at k >= 64;
//  * parallel-sweep speedup — a fixed grid of mergesort machines through
//    harness::run_sweep at --jobs=1 vs --jobs=N; guard:
//    >= --min-sweep-speedup, default 0 (report-only) because the measured
//    ratio is hardware-bound — on a single-core container it is ~1x no
//    matter how correct the harness is.  CI on a multi-core box passes
//    --jobs=8 --min-sweep-speedup=4.
#include <algorithm>
#include <chrono>
#include <iostream>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "core/sharding.hpp"
#include "sort/em_mergesort.hpp"
#include "sort/mergesort.hpp"
#include "store/kv_store.hpp"
#include "traffic/engine.hpp"
#include "util/search.hpp"

namespace {

using namespace aem;
using namespace aem::bench;

/// Keeps the compiler from proving the measured loop dead.
inline void keep(std::uint64_t v) { asm volatile("" : : "r"(v) : "memory"); }

/// Faithful replica of the SEED Machine instrumentation (pre-interning):
/// phase stack of strings, per-I/O duplicate scan comparing names, map
/// lookups per attributed phase, and an ordered map keyed by (array, block)
/// for wear.  Kept here — not in the library — purely as the baseline the
/// speedup is measured against.
class LegacyMachine {
 public:
  void push_phase(std::string name) { stack_.push_back(std::move(name)); }
  void pop_phase() { stack_.pop_back(); }
  void enable_wear() { wear_enabled_ = true; }

  void on_read(std::uint32_t, std::uint64_t) {
    ++stats_.reads;
    attribute(false);
  }
  void on_write(std::uint32_t array, std::uint64_t block) {
    ++stats_.writes;
    attribute(true);
    if (wear_enabled_) ++wear_[{array, block}];
  }

  const IoStats& stats() const { return stats_; }

 private:
  void attribute(bool is_write) {
    for (std::size_t i = 0; i < stack_.size(); ++i) {
      bool repeated = false;
      for (std::size_t j = 0; j < i; ++j) repeated |= (stack_[j] == stack_[i]);
      if (repeated) continue;
      IoStats& s = phases_[stack_[i]];
      if (is_write) {
        ++s.writes;
      } else {
        ++s.reads;
      }
    }
  }

  IoStats stats_;
  std::vector<std::string> stack_;
  std::map<std::string, IoStats> phases_;
  bool wear_enabled_ = false;
  std::map<std::pair<std::uint32_t, std::uint64_t>, std::uint64_t> wear_;
};

struct Measurement {
  std::uint64_t ops = 0;
  double seconds = 0.0;
  double mops() const { return ops / seconds / 1e6; }
};

/// Runs `body(ops)` enough times to fill ~`target_s` seconds of wall clock
/// and reports the best-of-3 rate (min wall time for the same op count).
template <class F>
Measurement measure(F&& body, std::uint64_t ops_per_batch,
                    double target_s = 0.15) {
  using clock = std::chrono::steady_clock;
  // Calibrate batch count.
  auto t0 = clock::now();
  body(ops_per_batch);
  double once = std::chrono::duration<double>(clock::now() - t0).count();
  const std::uint64_t batches =
      once >= target_s ? 1 : static_cast<std::uint64_t>(target_s / once) + 1;
  Measurement best;
  best.ops = batches * ops_per_batch;
  best.seconds = 1e30;
  for (int rep = 0; rep < 3; ++rep) {
    t0 = clock::now();
    for (std::uint64_t b = 0; b < batches; ++b) body(ops_per_batch);
    const double s = std::chrono::duration<double>(clock::now() - t0).count();
    if (s < best.seconds) best.seconds = s;
  }
  return best;
}

/// 3 reads + 1 write per iteration over a rolling block index — the access
/// mix of a merge pass, the library's dominant I/O pattern.
template <class M>
void io_mix(M& mach, std::uint32_t array, std::uint64_t ops) {
  std::uint64_t block = 0;
  for (std::uint64_t i = 0; i < ops / 4; ++i) {
    mach.on_read(array, block);
    mach.on_read(array, block + 1);
    mach.on_read(array, block + 2);
    mach.on_write(array, block);
    block = (block + 3) & 1023;
  }
}

}  // namespace

int main(int argc, char** argv) try {
  util::Cli cli(argc, argv);
  const BenchIo io = bench_io(cli, 0);
  const std::string& csv = io.csv;
  const std::string& metrics = io.metrics;
  const bool full = io.full;
  const double min_speedup = cli.f64("min-speedup", 3.0);
  const double min_kernel_speedup = cli.f64("min-kernel-speedup", 2.0);
  const double min_batch_speedup = cli.f64("min-batch-speedup", 2.0);
  const double min_sweep_speedup = cli.f64("min-sweep-speedup", 0.0);
  const std::uint64_t batch = full ? (1u << 22) : (1u << 20);

  banner("M0 (meta)",
         "simulator overhead: simulated I/Os per second by instrumentation "
         "feature, vs the seed implementation");

  util::Table t({"configuration", "ops", "seconds", "Mops/s", "vs_bare"});
  double bare_mops = 0.0;

  // The phase nesting used everywhere below: depth 3 with one duplicate
  // name, mirroring sort.merge -> recursion re-entering the same phase.
  const char* kOuter = "sort";
  const char* kMid = "sort.merge";
  const char* kDup = "sort.merge";  // duplicate: attributed once

  auto add_row = [&](const char* name, const Measurement& m) {
    if (bare_mops == 0.0) bare_mops = m.mops();
    t.add_row({name, util::fmt(m.ops), util::fmt(m.seconds, 3),
               util::fmt(m.mops(), 1),
               util::fmt_ratio(m.mops(), bare_mops, 2)});
    return m.mops();
  };

  Config cfg;
  cfg.memory_elems = 1024;
  cfg.block_elems = 16;
  cfg.write_cost = 8;

  {
    Machine mach(cfg);
    const std::uint32_t a = mach.register_array("hot");
    add_row("bare counters", measure([&](std::uint64_t ops) {
              io_mix(mach, a, ops);
              keep(mach.stats().reads);
            }, batch));
  }

  {
    // An installed-but-idle FaultPolicy (all rates zero) must cost one null
    // check plus the budget comparison — nowhere near a feature's price.
    Machine mach(cfg);
    FaultConfig fc;
    mach.install_faults(fc);
    const std::uint32_t a = mach.register_array("hot");
    add_row("faults: zero-rate policy", measure([&](std::uint64_t ops) {
              io_mix(mach, a, ops);
              keep(mach.stats().reads);
            }, batch));
  }

  {
    // A pure budget watchdog (huge ceiling, never trips).
    Machine mach(cfg);
    FaultConfig fc;
    fc.max_cost = ~0ull >> 1;
    fc.max_ios = ~0ull >> 1;
    mach.install_faults(fc);
    const std::uint32_t a = mach.register_array("hot");
    add_row("faults: ceiling armed", measure([&](std::uint64_t ops) {
              io_mix(mach, a, ops);
              keep(mach.stats().reads);
            }, batch));
  }

  {
    // The sharded facade's hot-path price: the same mix through a D=4
    // ShardedMachine is one virtual dispatch plus one routed device charge
    // per I/O.
    ShardConfig sc;
    sc.frontend = cfg;
    sc.devices.assign(4, cfg);
    ShardedMachine mach(sc);
    const std::uint32_t a = mach.register_array("hot");
    add_row("sharded facade (D=4, round-robin)",
            measure([&](std::uint64_t ops) {
              io_mix(mach, a, ops);
              keep(mach.stats().reads);
            }, batch / 2));
  }

  double phased_mops = 0.0;
  {
    Machine mach(cfg);
    const std::uint32_t a = mach.register_array("hot");
    auto p1 = mach.phase(kOuter);
    auto p2 = mach.phase(kMid);
    auto p3 = mach.phase(kDup);
    phased_mops = add_row("phases (depth 3, 1 dup)",
                          measure([&](std::uint64_t ops) {
                            io_mix(mach, a, ops);
                            keep(mach.stats().reads);
                          }, batch));
    emit_metrics(mach, "M0 phases", metrics);
  }

  {
    // Scope churn: enter/exit a nested phase per 64-op chunk, so the
    // PhaseScope construction cost (interning + dedup) is in the loop.
    Machine mach(cfg);
    const std::uint32_t a = mach.register_array("hot");
    auto p1 = mach.phase(kOuter);
    add_row("phases + scope churn", measure([&](std::uint64_t ops) {
              for (std::uint64_t done = 0; done < ops; done += 64) {
                auto p = mach.phase(kMid);
                io_mix(mach, a, 64);
              }
              keep(mach.stats().reads);
            }, batch));
  }

  {
    Machine mach(cfg);
    mach.enable_wear_tracking();
    const std::uint32_t a = mach.register_array("hot");
    add_row("wear histogram", measure([&](std::uint64_t ops) {
              io_mix(mach, a, ops);
              keep(mach.stats().writes);
            }, batch));
    emit_metrics(mach, "M0 wear", metrics);
  }

  {
    Machine mach(cfg);
    mach.enable_trace();
    const std::uint32_t a = mach.register_array("hot");
    add_row("trace recording", measure([&](std::uint64_t ops) {
              io_mix(mach, a, ops);
              mach.trace()->clear();  // keep memory bounded
              keep(mach.stats().reads);
            }, batch / 4));
  }

  double legacy_mops = 0.0;
  {
    LegacyMachine mach;
    mach.push_phase(kOuter);
    mach.push_phase(kMid);
    mach.push_phase(kDup);
    Measurement m = measure([&](std::uint64_t ops) {
      io_mix(mach, 0, ops);
      keep(mach.stats().reads);
    }, batch / 4);
    legacy_mops = add_row("SEED replica: string phases (depth 3, 1 dup)", m);
  }

  {
    LegacyMachine mach;
    mach.enable_wear();
    add_row("SEED replica: map wear", measure([&](std::uint64_t ops) {
              io_mix(mach, 0, ops);
              keep(mach.stats().writes);
            }, batch / 4));
  }

  emit(t, "Simulated-I/O throughput by instrumentation configuration:", csv);

  // Hard guard, not a timing: with a zero-rate policy installed the
  // counters after an identical op sequence must be byte-identical to a
  // machine with no policy at all.  Fault injection that is "off" must be
  // OFF — any drift here silently poisons every experiment's Q.
  {
    Machine plain(cfg);
    const std::uint32_t pa = plain.register_array("hot");
    io_mix(plain, pa, 1 << 16);
    Machine faulted(cfg);
    faulted.install_faults(FaultConfig{});
    const std::uint32_t fa = faulted.register_array("hot");
    io_mix(faulted, fa, 1 << 16);
    if (!(plain.stats() == faulted.stats()) ||
        plain.cost() != faulted.cost()) {
      std::cerr << "FAIL: zero-rate fault policy perturbed the counters "
                   "(reads " << plain.stats().reads << " vs "
                << faulted.stats().reads << ", cost " << plain.cost()
                << " vs " << faulted.cost() << ")\n";
      return 1;
    }
    std::cout << "zero-overhead guard: counters byte-identical with and "
                 "without a zero-rate policy\n\n";
  }

  // The same hard guard for the block cache's bypass mode: a config that
  // requests capacity 0 installs no pool at all, so ExtArray traffic — the
  // path the cache dispatch lives on — must be byte-identical to a machine
  // that never heard of caches.
  {
    auto drive = [](Machine& mach) {
      ExtArray<std::uint64_t> arr(mach, 1024, "hot");
      Buffer<std::uint64_t> buf(mach, mach.B());
      const std::uint64_t blocks = arr.blocks();
      for (std::uint64_t i = 0; i < 4 * blocks; ++i) {
        const std::uint64_t bi = (i * 7) % blocks;
        arr.read_block(bi, buf.span());
        buf[0] = i;
        arr.write_block(bi, std::span<const std::uint64_t>(
                                buf.data(), arr.block_elems(bi)));
      }
    };
    Machine plain(cfg);
    drive(plain);
    Config off = cfg;
    off.cache.capacity_blocks = 0;  // explicit bypass
    off.cache.policy = CachePolicy::kCleanFirst;
    Machine bypass(off);
    drive(bypass);
    if (bypass.cache() != nullptr || !(plain.stats() == bypass.stats()) ||
        plain.cost() != bypass.cost()) {
      std::cerr << "FAIL: capacity-0 cache config perturbed the counters "
                   "(reads " << plain.stats().reads << " vs "
                << bypass.stats().reads << ", cost " << plain.cost() << " vs "
                << bypass.cost() << ")\n";
      return 1;
    }
    std::cout << "cache bypass guard: counters byte-identical with and "
                 "without a capacity-0 cache config\n\n";
  }

  // Sharding degeneration guard: a ShardedMachine with ONE device whose
  // Config equals the frontend's must be byte-identical to a plain Machine
  // running the same program — counters, cost, trace op sequence, and the
  // full metrics JSON once the snapshot's sharding section (the one part
  // that legitimately differs) is cleared on both sides.  The single device
  // must additionally mirror the facade's counters exactly (amplification 1,
  // identity routing) — MODEL.md section 13's D=1 contract.
  {
    auto drive = [](Machine& mach) {
      auto phase = mach.phase("shard-guard");
      ExtArray<std::uint64_t> arr(mach, 1024, "hot");
      Buffer<std::uint64_t> buf(mach, mach.B());
      const std::uint64_t blocks = arr.blocks();
      for (std::uint64_t i = 0; i < 4 * blocks; ++i) {
        const std::uint64_t bi = (i * 7) % blocks;
        arr.read_block(bi, buf.span());
        buf[0] = i;
        arr.write_block(bi, std::span<const std::uint64_t>(
                                buf.data(), arr.block_elems(bi)));
      }
    };
    Machine plain(cfg);
    plain.enable_trace();
    drive(plain);

    ShardConfig sc;
    sc.frontend = cfg;
    sc.devices = {cfg};
    ShardedMachine sharded(sc);
    sharded.enable_trace();
    drive(sharded);

    bool ok = plain.stats() == sharded.stats() &&
              plain.cost() == sharded.cost() &&
              sharded.device(0).stats() == plain.stats() &&
              sharded.device(0).cost() == plain.cost();
    const auto& pa = plain.trace()->ops();
    const auto& sa = sharded.trace()->ops();
    ok = ok && pa.size() == sa.size();
    for (std::size_t i = 0; ok && i < pa.size(); ++i)
      ok = pa[i].kind == sa[i].kind && pa[i].array == sa[i].array &&
           pa[i].block == sa[i].block;
    MetricsSnapshot mp = snapshot_metrics(plain, "shard-guard");
    MetricsSnapshot ms = snapshot_metrics(sharded, "shard-guard");
    mp.sharding = ShardingMetrics{};
    ms.sharding = ShardingMetrics{};
    ok = ok && to_json(mp) == to_json(ms);
    if (!ok) {
      std::cerr << "FAIL: D=1 ShardedMachine diverged from the plain machine "
                   "(reads " << plain.stats().reads << " vs "
                << sharded.stats().reads << ", cost " << plain.cost()
                << " vs " << sharded.cost() << ", trace ops " << pa.size()
                << " vs " << sa.size() << ")\n";
      return 1;
    }
    std::cout << "sharding degeneration guard: D=1 ShardedMachine "
                 "byte-identical to the plain machine (counters, trace, "
                 "metrics)\n\n";
  }

  // Reliability zero-cost guard: an armed-but-never-hit crash point (plus a
  // configured retry backoff that no fault ever triggers) and an outage
  // window that never opens must leave every charged counter byte-identical
  // to a machine that never heard of either.  The insurance must be free
  // until the disaster happens.
  {
    Machine plain(cfg);
    const std::uint32_t pa = plain.register_array("hot");
    io_mix(plain, pa, 1 << 16);

    Machine armed(cfg);
    FaultConfig fc;
    fc.crash_after_writes = ~0ull >> 1;  // beyond any horizon here
    fc.retry_backoff_base = 4;           // priced only on actual retries
    armed.install_faults(fc);
    const std::uint32_t aa = armed.register_array("hot");
    io_mix(armed, aa, 1 << 16);
    if (!(plain.stats() == armed.stats()) || plain.cost() != armed.cost() ||
        armed.faults()->crashes_fired() != 0) {
      std::cerr << "FAIL: unarmed crash/backoff schedule perturbed the "
                   "counters (reads " << plain.stats().reads << " vs "
                << armed.stats().reads << ", cost " << plain.cost() << " vs "
                << armed.cost() << ")\n";
      return 1;
    }

    auto drive = [](Machine& mach) {
      ExtArray<std::uint64_t> arr(mach, 1024, "hot");
      Buffer<std::uint64_t> buf(mach, mach.B());
      const std::uint64_t blocks = arr.blocks();
      for (std::uint64_t i = 0; i < 4 * blocks; ++i) {
        const std::uint64_t bi = (i * 7) % blocks;
        arr.read_block(bi, buf.span());
        buf[0] = i;
        arr.write_block(bi, std::span<const std::uint64_t>(
                                buf.data(), arr.block_elems(bi)));
      }
    };
    ShardConfig calm_sc;
    calm_sc.frontend = cfg;
    calm_sc.devices.assign(2, cfg);
    ShardedMachine calm(calm_sc);
    drive(calm);

    ShardConfig far_sc = calm_sc;
    far_sc.outages = {OutageSpec{1, ~0ull >> 1, 0}};  // never reached
    ShardedMachine far(far_sc);
    drive(far);

    MetricsSnapshot mc = snapshot_metrics(calm, "reliability-guard");
    MetricsSnapshot mf = snapshot_metrics(far, "reliability-guard");
    // The configured (never-opened) window legitimately shows up as an
    // outage row; everything else must match to the byte.
    mc.reliability = ReliabilityMetrics{};
    mf.reliability = ReliabilityMetrics{};
    if (!(calm.stats() == far.stats()) || calm.cost() != far.cost() ||
        !(calm.devices_stats() == far.devices_stats()) ||
        to_json(mc) != to_json(mf)) {
      std::cerr << "FAIL: an unreached outage window perturbed the counters "
                   "(reads " << calm.stats().reads << " vs "
                << far.stats().reads << ", cost " << calm.cost() << " vs "
                << far.cost() << ")\n";
      return 1;
    }
    std::cout << "reliability zero-cost guard: armed-but-unhit crash point, "
                 "backoff schedule, and outage window leave counters and "
                 "metrics byte-identical\n\n";
  }

  // Traffic zero-cost guard: constructing a TrafficEngine and running a
  // zero-request stream must leave every charged counter — and the full
  // metrics JSON — byte-identical to a machine no engine ever touched.
  // Instrumenting a store for serving must be free until requests arrive.
  {
    auto build = [&](Machine& mach, std::vector<store::Slot>& slots_host) {
      ExtArray<store::Slot> slots(mach, slots_host.size(), "input.slots");
      slots.unsafe_host_fill(std::span<const store::Slot>(slots_host));
      ExtArray<std::uint64_t> payload(mach, 0, "input.payload");
      auto kv = std::make_unique<store::KvStore>(
          mach, store::StoreConfig{store::IndexKind::kFence, 8});
      kv->build(slots, payload);
      return kv;
    };
    std::vector<store::Slot> slots_host;
    util::Rng rng(io.seed + 31);
    for (std::size_t i = 0; i < 512; ++i)
      slots_host.push_back(store::Slot{2 * i, 1, rng.next()});

    Machine bare(cfg);
    auto bare_kv = build(bare, slots_host);

    Machine engined(cfg);
    auto engined_kv = build(engined, slots_host);
    traffic::EngineConfig ec;
    ec.traffic.requests = 0;
    ec.traffic.key_space = 512;
    ec.traffic.key_stride = 2;
    traffic::TrafficEngine idle(*engined_kv, engined, ec, io.seed + 32);
    idle.run();

    MetricsSnapshot mb = snapshot_metrics(bare, "traffic-guard");
    MetricsSnapshot me = snapshot_metrics(engined, "traffic-guard");
    if (!(bare.stats() == engined.stats()) || bare.cost() != engined.cost() ||
        to_json(mb) != to_json(me) || idle.stats().cost != 0 ||
        idle.histogram().total() != 0) {
      std::cerr << "FAIL: an idle TrafficEngine perturbed the machine "
                   "(reads " << bare.stats().reads << " vs "
                << engined.stats().reads << ", cost " << bare.cost() << " vs "
                << engined.cost() << ", engine Q " << idle.stats().cost
                << ")\n";
      return 1;
    }
    std::cout << "traffic zero-cost guard: an idle TrafficEngine (0 "
                 "requests) leaves counters and metrics JSON "
                 "byte-identical\n\n";
  }

  // --- Batch submission: byte-identity guards, then the speedup table ----
  // The mixed op sequence every batch guard replays: writes every third op,
  // block churn across a small working set.
  auto mixed_ops = [](std::uint32_t array, std::size_t n) {
    std::vector<BlockOp> ops;
    ops.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
      ops.push_back(BlockOp{i % 3 == 2 ? OpKind::kWrite : OpKind::kRead,
                            array, (i * 7) % 97});
    return ops;
  };
  auto replay_per_op = [](Machine& m, std::span<const BlockOp> ops) {
    for (const BlockOp& op : ops) {
      if (op.kind == OpKind::kWrite) {
        m.on_write(op.array, op.block);
      } else {
        m.on_read(op.array, op.block);
      }
    }
  };
  auto traces_equal = [](const Machine& a, const Machine& b) {
    const auto& ao = a.trace()->ops();
    const auto& bo = b.trace()->ops();
    if (ao.size() != bo.size()) return false;
    for (std::size_t i = 0; i < ao.size(); ++i) {
      if (ao[i].kind != bo[i].kind || ao[i].array != bo[i].array ||
          ao[i].block != bo[i].block)
        return false;
    }
    return true;
  };

  // Batch equivalence guard #1 (machine): one submit() must charge exactly
  // what the per-op loop charges — counters, cost, phases, wear, trace, and
  // the full metrics JSON — and an armed crash schedule must fire on the
  // same Nth charged write whether that write arrives alone or mid-batch.
  {
    Machine per_op(cfg);
    per_op.enable_wear_tracking();
    per_op.enable_trace();
    Machine batched(cfg);
    batched.enable_wear_tracking();
    batched.enable_trace();
    const std::uint32_t pa = per_op.register_array("hot");
    const std::uint32_t ba = batched.register_array("hot");
    {
      auto p1 = per_op.phase("batch-guard");
      replay_per_op(per_op, mixed_ops(pa, 512));
      auto p2 = batched.phase("batch-guard");
      const auto ops = mixed_ops(ba, 512);
      batched.submit(std::span<const BlockOp>(ops));
    }
    MetricsSnapshot mp = snapshot_metrics(per_op, "batch-guard");
    MetricsSnapshot mb = snapshot_metrics(batched, "batch-guard");
    bool ok = per_op.stats() == batched.stats() &&
              per_op.cost() == batched.cost() &&
              traces_equal(per_op, batched) && to_json(mp) == to_json(mb);

    auto crash_stats = [&](bool use_submit) {
      Machine m(cfg);
      FaultConfig fc;
      fc.crash_after_writes = 100;
      m.install_faults(fc);
      const std::uint32_t a = m.register_array("hot");
      const auto ops = mixed_ops(a, 512);
      try {
        for (int round = 0; round < 8; ++round) {
          if (use_submit) {
            m.submit(std::span<const BlockOp>(ops));
          } else {
            replay_per_op(m, ops);
          }
        }
      } catch (const CrashError&) {
      }
      return m.stats();
    };
    const IoStats crash_batched = crash_stats(true);
    const IoStats crash_per_op = crash_stats(false);
    ok = ok && crash_batched == crash_per_op && crash_batched.writes == 100;
    if (!ok) {
      std::cerr << "FAIL: Machine::submit diverged from the per-op loop "
                   "(reads " << per_op.stats().reads << " vs "
                << batched.stats().reads << ", cost " << per_op.cost()
                << " vs " << batched.cost() << ", crash writes "
                << crash_per_op.writes << " vs " << crash_batched.writes
                << ")\n";
      return 1;
    }
    std::cout << "batch equivalence guard: submit() byte-identical to the "
                 "per-op loop (counters, phases, wear, trace, metrics), "
                 "crash schedule fires on the same Nth charged write\n\n";
  }

  // Batch equivalence guard #2 (ExtArray): the multi-block read_blocks /
  // write_blocks entry points must charge exactly what a per-block loop
  // charges, in the same order.
  {
    auto drive = [](Machine& mach, bool bulk) {
      ExtArray<std::uint64_t> arr(mach, 64 * mach.B(), "hot");
      Buffer<std::uint64_t> buf(mach, 8 * mach.B());
      for (std::uint64_t b = 0; b + 8 <= arr.blocks(); b += 8) {
        if (bulk) {
          arr.read_blocks(b, 8, buf.span());
          arr.write_blocks(b, 8,
                           std::span<const std::uint64_t>(buf.data(),
                                                          8 * mach.B()));
        } else {
          for (std::uint64_t i = 0; i < 8; ++i) {
            arr.read_block(b + i, std::span<std::uint64_t>(
                                      buf.data() + i * mach.B(), mach.B()));
          }
          for (std::uint64_t i = 0; i < 8; ++i) {
            arr.write_block(b + i, std::span<const std::uint64_t>(
                                       buf.data() + i * mach.B(), mach.B()));
          }
        }
      }
    };
    Machine per_block(cfg);
    per_block.enable_trace();
    drive(per_block, false);
    Machine bulk(cfg);
    bulk.enable_trace();
    drive(bulk, true);
    if (!(per_block.stats() == bulk.stats()) ||
        per_block.cost() != bulk.cost() || !traces_equal(per_block, bulk)) {
      std::cerr << "FAIL: ExtArray bulk transfers diverged from the "
                   "per-block loop (reads " << per_block.stats().reads
                << " vs " << bulk.stats().reads << ", cost "
                << per_block.cost() << " vs " << bulk.cost() << ")\n";
      return 1;
    }
    std::cout << "batch equivalence guard: ExtArray read_blocks/write_blocks "
                 "byte-identical to the per-block loop\n\n";
  }

  // Batch equivalence guard #3 (sharded): a whole batch routed per device
  // must leave the facade AND every member device byte-identical to the
  // per-op routed path.
  {
    ShardConfig sc;
    sc.frontend = cfg;
    sc.devices.assign(4, cfg);
    ShardedMachine per_op(sc);
    per_op.enable_trace();
    ShardedMachine batched(sc);
    batched.enable_trace();
    const std::uint32_t pa = per_op.register_array("hot");
    const std::uint32_t ba = batched.register_array("hot");
    replay_per_op(per_op, mixed_ops(pa, 512));
    const auto ops = mixed_ops(ba, 512);
    batched.submit(std::span<const BlockOp>(ops));
    bool ok = per_op.stats() == batched.stats() &&
              per_op.cost() == batched.cost() &&
              per_op.devices_stats() == batched.devices_stats() &&
              traces_equal(per_op, batched);
    if (!ok) {
      std::cerr << "FAIL: ShardedMachine batch submit diverged from the "
                   "per-op routed path (reads " << per_op.stats().reads
                << " vs " << batched.stats().reads << ", cost "
                << per_op.cost() << " vs " << batched.cost() << ")\n";
      return 1;
    }
    std::cout << "batch equivalence guard: ShardedMachine submit "
                 "byte-identical to per-op routing on the facade and every "
                 "device\n\n";
  }

  // Batch equivalence guard #4 (store): a KvStore built and scanned with
  // io_batch_blocks=8 must charge exactly what the io_batch_blocks=1
  // (legacy per-block) configuration charges — counters, cost, scan
  // results, and the metrics JSON once ledger_used/ledger_high_water (the
  // two fields batching legitimately moves: chunk buffers are transient
  // ledger tenants) are cleared on both sides.
  {
    auto run_store = [&](std::size_t io_batch, std::string& json) {
      Machine mach(cfg);
      std::vector<store::Slot> slots_host;
      util::Rng rng(io.seed + 77);
      for (std::size_t i = 0; i < 600; ++i)
        slots_host.push_back(store::Slot{3 * i, 1, rng.next()});
      ExtArray<store::Slot> slots(mach, slots_host.size(), "input.slots");
      slots.unsafe_host_fill(std::span<const store::Slot>(slots_host));
      ExtArray<std::uint64_t> payload(mach, 0, "input.payload");
      store::StoreConfig scfg{store::IndexKind::kFence, 8};
      scfg.io_batch_blocks = io_batch;
      store::KvStore kv(mach, scfg);
      kv.build(slots, payload);
      std::uint64_t sum = 0;
      auto visit = [&](std::uint64_t k, std::span<const std::uint64_t> v) {
        sum += k + (v.empty() ? 0 : v[0]);
      };
      sum += kv.scan(100, 1500, visit);
      sum += kv.scan(0, ~0ull, visit);         // full range
      sum += kv.scan(3 * 600 + 10, ~0ull, visit);  // empty tail
      MetricsSnapshot ms = snapshot_metrics(mach, "store-batch-guard");
      ms.ledger_used = 0;
      ms.ledger_high_water = 0;
      json = to_json(ms);
      return std::pair<IoStats, std::uint64_t>(mach.stats(),
                                               mach.cost() + sum);
    };
    std::string legacy_json, batched_json;
    const auto legacy = run_store(1, legacy_json);
    const auto batched = run_store(8, batched_json);
    if (!(legacy.first == batched.first) || legacy.second != batched.second ||
        legacy_json != batched_json) {
      std::cerr << "FAIL: KvStore io_batch_blocks=8 diverged from the "
                   "per-block build/scan (reads " << legacy.first.reads
                << " vs " << batched.first.reads << ", cost+sum "
                << legacy.second << " vs " << batched.second << ")\n";
      return 1;
    }
    std::cout << "batch equivalence guard: KvStore build+scan at "
                 "io_batch_blocks=8 byte-identical to the per-block path "
                 "(counters, results, metrics sans ledger water marks)\n\n";
  }

  // --- Batch-dispatch speedup: submit() vs the per-op virtual loop -------
  // The same phase-attributed op mix dispatched both ways.  One submit is a
  // single virtual call with counters and phase attribution charged once
  // per batch, so the gap must widen with the batch size.
  bool batch_ok = true;
  {
    util::Table bt({"batch", "ops", "per_op_Mops/s", "submit_Mops/s",
                    "speedup"});
    for (const std::size_t bs : {16u, 64u, 256u, 1024u}) {
      Machine per_op(cfg);
      const std::uint32_t pa = per_op.register_array("hot");
      auto pp1 = per_op.phase(kOuter);
      auto pp2 = per_op.phase(kMid);
      auto pp3 = per_op.phase(kDup);
      const auto per_ops = mixed_ops(pa, bs);
      const Measurement per = measure(
          [&](std::uint64_t n) {
            for (std::uint64_t done = 0; done < n; done += bs)
              replay_per_op(per_op, per_ops);
            keep(per_op.stats().reads);
          },
          batch / 4);

      Machine batched(cfg);
      const std::uint32_t ba = batched.register_array("hot");
      auto bp1 = batched.phase(kOuter);
      auto bp2 = batched.phase(kMid);
      auto bp3 = batched.phase(kDup);
      const auto sub_ops = mixed_ops(ba, bs);
      const Measurement sub = measure(
          [&](std::uint64_t n) {
            for (std::uint64_t done = 0; done < n; done += bs)
              batched.submit(std::span<const BlockOp>(sub_ops));
            keep(batched.stats().reads);
          },
          batch / 4);

      const double ratio = sub.mops() / per.mops();
      bt.add_row({util::fmt(std::uint64_t(bs)), util::fmt(sub.ops),
                  util::fmt(per.mops(), 1), util::fmt(sub.mops(), 1),
                  util::fmt(ratio, 2)});
      if (bs >= 64 && ratio < min_batch_speedup) {
        std::cerr << "FAIL: batch-dispatch speedup " << util::fmt(ratio, 2)
                  << "x below the " << util::fmt(min_batch_speedup, 1)
                  << "x floor at batch=" << bs << "\n";
        batch_ok = false;
      }
    }
    emit(bt, "Batch dispatch: Machine::submit vs per-op virtual loop "
             "(same charge sequence; phases depth 3):", csv);
  }

  // --- Fence-lookup speedup: Eytzinger rank kernel vs std::upper_bound ---
  // Report-only: both kernels are host-side (zero charged I/O — the store
  // tests pin that), so only the wall clock differs.  On sorted arrays past
  // L1 the branchless layout wins on comparisons resolved per cache line.
  {
    util::Table et({"fences", "probes", "upper_bound_Mops/s",
                    "eytzinger_Mops/s", "speedup"});
    util::Rng rng(io.seed + 91);
    for (const std::size_t n : {1u << 12, 1u << 16, 1u << 20}) {
      std::vector<std::uint64_t> fences;
      fences.reserve(n);
      for (std::size_t i = 0; i < n; ++i) fences.push_back(rng.next() >> 8);
      std::sort(fences.begin(), fences.end());
      const util::EytzingerSearch idx(fences);
      std::vector<std::uint64_t> probes(full ? 1u << 16 : 1u << 14);
      for (auto& p : probes) p = rng.next() >> 8;

      std::uint64_t sink = 0;
      const Measurement ub = measure(
          [&](std::uint64_t) {
            for (const std::uint64_t p : probes)
              sink += util::sorted_rank_upper(fences, p);
            keep(sink);
          },
          probes.size());
      const Measurement ey = measure(
          [&](std::uint64_t) {
            for (const std::uint64_t p : probes) sink += idx.rank_upper(p);
            keep(sink);
          },
          probes.size());
      et.add_row({util::fmt(std::uint64_t(n)),
                  util::fmt(std::uint64_t(probes.size())),
                  util::fmt(ub.mops(), 1), util::fmt(ey.mops(), 1),
                  util::fmt_ratio(ey.mops(), ub.mops(), 2)});
    }
    emit(et, "Fence lookup: branchless Eytzinger rank vs std::upper_bound "
             "(host-side, charges nothing; report-only):", csv);
  }

  // --- Merge-kernel speedup: loser tree vs the reference O(k) scan -------
  // The same merge (same runs, same machine, byte-identical I/O charge
  // sequence — tests/test_loser_tree.cpp proves Q equality) timed with both
  // selection kernels.  The loser tree does ceil(log2 k) comparisons per
  // output element where the scan does k, so the gap must widen with k.
  bool kernel_ok = true;
  {
    util::Table kt({"k", "N", "scan_Melem/s", "loser_Melem/s", "speedup"});
    for (const std::size_t k : {4, 16, 64, 256}) {
      const std::size_t B = 16;
      const std::size_t run_len = full ? 4096 : 1024;
      const std::size_t N = k * run_len;
      // Enough memory for k scanner blocks + the writer block + the 2k-word
      // head state em_merge_group reserves, with headroom.
      Config mcfg = make_config((k + 2) * B + 4 * k, B, 8);
      Machine mach(mcfg);
      util::Rng rng(io.seed + k);
      std::vector<std::uint64_t> host;
      std::vector<RunBounds> runs;
      host.reserve(N);
      for (std::size_t r = 0; r < k; ++r) {
        auto keys = util::random_keys(run_len, rng);
        std::sort(keys.begin(), keys.end());
        runs.push_back(RunBounds{host.size(), host.size() + run_len});
        host.insert(host.end(), keys.begin(), keys.end());
      }
      ExtArray<std::uint64_t> in(mach, N, "runs");
      in.unsafe_host_fill(host);
      ExtArray<std::uint64_t> out(mach, N, "out");
      auto time_kernel = [&](MergeKernel kernel) {
        return measure(
            [&](std::uint64_t) {
              sort_detail::em_merge_group(
                  in, std::span<const RunBounds>(runs), out, 0,
                  std::less<std::uint64_t>{}, kernel);
              keep(mach.stats().reads);
            },
            N);
      };
      const Measurement scan = time_kernel(MergeKernel::kScanSelect);
      const Measurement loser = time_kernel(MergeKernel::kLoserTree);
      const double ratio = loser.mops() / scan.mops();
      kt.add_row({util::fmt(std::uint64_t(k)), util::fmt(std::uint64_t(N)),
                  util::fmt(scan.mops(), 1), util::fmt(loser.mops(), 1),
                  util::fmt(ratio, 2)});
      if (k >= 64 && ratio < min_kernel_speedup) {
        std::cerr << "FAIL: loser-tree kernel speedup " << util::fmt(ratio, 2)
                  << "x below the " << util::fmt(min_kernel_speedup, 1)
                  << "x floor at k=" << k << "\n";
        kernel_ok = false;
      }
    }
    emit(kt, "Merge selection kernel: loser tree vs O(k) scan "
             "(same I/O charge sequence):", csv);
  }

  // --- Parallel-sweep wall clock: --jobs=1 vs --jobs=N --------------------
  // A fixed 8-point grid of independent mergesort machines through
  // harness::run_sweep.  The results are byte-identical for any jobs value
  // (that is the harness contract); this section measures only the wall
  // clock.  The speedup ceiling is min(jobs, hardware threads).
  {
    const std::size_t points = 8;
    const std::size_t sweep_n = full ? (1u << 15) : (1u << 13);
    auto sweep_once = [&](std::size_t jobs) {
      harness::SweepConfig sc;
      sc.jobs = jobs;
      sc.base_seed = io.seed;
      const auto t0 = std::chrono::steady_clock::now();
      auto results = harness::run_sweep(
          points, sc, [&](harness::PointContext& ctx) {
            Machine mach(make_config(256, 16, 8));
            auto in = staged_keys(mach, sweep_n, ctx.rng());
            ExtArray<std::uint64_t> out(mach, sweep_n, "out");
            aem_merge_sort(in, out);
            ctx.row({util::fmt(mach.cost())});
          });
      const double s = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
      return std::pair<double, std::size_t>(s, results.size());
    };
    const std::size_t jobs = harness::resolve_jobs(io.sweep.jobs);
    const auto [serial_s, n1] = sweep_once(1);
    const auto [parallel_s, n2] = sweep_once(jobs);
    const double sweep_speedup = serial_s / parallel_s;
    util::Table st({"points", "N/point", "jobs", "serial_s", "parallel_s",
                    "speedup"});
    st.add_row({util::fmt(std::uint64_t(points)),
                util::fmt(std::uint64_t(sweep_n)),
                util::fmt(std::uint64_t(jobs)), util::fmt(serial_s, 3),
                util::fmt(parallel_s, 3), util::fmt(sweep_speedup, 2)});
    emit(st, "Parallel sweep wall clock (" + util::fmt(std::uint64_t(n1)) +
                 "+" + util::fmt(std::uint64_t(n2)) +
                 " points; ceiling = min(jobs, hardware threads)):",
         csv);
    if (min_sweep_speedup > 0.0 && sweep_speedup < min_sweep_speedup) {
      std::cerr << "FAIL: sweep speedup " << util::fmt(sweep_speedup, 2)
                << "x below the " << util::fmt(min_sweep_speedup, 1)
                << "x floor at --jobs=" << jobs << "\n";
      return 1;
    }
  }

  if (!kernel_ok || !batch_ok) return 1;

  const double speedup = phased_mops / legacy_mops;
  std::cout << "phase-attributed I/O speedup vs seed: " << util::fmt(speedup, 2)
            << "x  (floor " << util::fmt(min_speedup, 1) << "x)\n\n";
  std::cout << "PASS criterion: speedup >= " << util::fmt(min_speedup, 1)
            << "x; phases/wear rows within a small factor of bare counters.\n";
  if (speedup < min_speedup) {
    std::cerr << "FAIL: hot-path speedup " << util::fmt(speedup, 2)
              << "x below the " << util::fmt(min_speedup, 1) << "x floor\n";
    return 1;
  }
  return 0;
}
catch (const std::exception& e) {
  // CLI/env parse errors (and any other unhandled failure) exit with a
  // one-line diagnostic instead of an uncaught-exception abort.
  std::cerr << "error: " << e.what() << "\n";
  return 2;
}
