// F1 — crash-consistent store builds and degraded serving (store/kv_store
// manifest discipline + core/faults crash points + core/sharding outage
// windows; MODEL.md section 15).
//
// Three sections:
//
//  * crash sweep      — omega {1, 8, 64} x index {fence, compact} x crash
//                       point {2%, 35%, 75%, 100%} of the uncrashed build's
//                       write count.  Each cell builds an uncrashed durable
//                       reference, repeats the build on a machine armed
//                       with AEM-style "power cut after N charged writes"
//                       (FaultConfig::crash_after_writes), catches the
//                       CrashError, runs KvStore::recover(), and checks the
//                       result against the reference.
//  * checkpoint cost  — durable vs non-durable builds of the same store at
//                       manifest intervals {2, 8}: what the crash insurance
//                       costs in charged writes and Q when nothing crashes.
//  * degraded serving — the same store on a ShardedMachine (D=4) with one
//                       device down for a 120-op window mid-build: reads
//                       wait out the window (charged backoff polls), writes
//                       queue and drain on recovery, and the run must end
//                       with the same served results as the outage-free run.
//
// PASS criteria (hard guards, exit 1 on violation):
//  * every crash cell recovers to a store whose log and payload arrays are
//    BYTE-IDENTICAL to the uncrashed reference (and serves identically);
//  * the recovery write bill is honest and bounded: total writes of the
//    crashed-then-recovered run exceed the uncrashed run by at most
//    2 x (crash point - write clock at the last committed manifest) plus a
//    fixed manifest slack;
//  * a 2% crash point recovers by restart, a 100% one by reindex only, and
//    the sweep exercises resume as well;
//  * the metrics v6 reliability section is live: 1 crash, 1 recovery scan,
//    and the recovery bill of the report;
//  * unarmed durable builds serve identically to non-durable ones, with
//    checkpoint overhead under 2x in Q;
//  * degraded serving: identical results, identical charged writes, reads
//    exceed the outage-free run by exactly the charged backoff polls, and
//    every queued write drains by the end.
#include <algorithm>
#include <iostream>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "core/sharding.hpp"
#include "store/kv_store.hpp"

namespace {

using namespace aem;
using namespace aem::bench;
using store::IndexKind;
using store::KvStore;
using store::RecoveryReport;
using store::Slot;
using store::StoreConfig;

constexpr std::size_t kM = 4096;
constexpr std::size_t kB = 16;
constexpr std::size_t kRecords = 2048;
constexpr std::size_t kInterval = 4;  // manifest checkpoint, in log pages

struct Cell {
  std::uint64_t omega;
  IndexKind index;
  std::uint64_t pct;  // crash point as % of the uncrashed build's writes
};

struct Workload {
  std::vector<Slot> slots;
  std::vector<std::uint64_t> payload;
  std::vector<std::uint64_t> keys;
};

/// Same mix as bench_k1_store: ~10% empty, ~65% inline, ~25% spilled,
/// ~15% overwrites.
Workload make_workload(std::size_t records, std::uint64_t seed) {
  util::Rng rng(seed);
  Workload w;
  w.slots.reserve(records);
  w.keys.reserve(records);
  for (std::size_t i = 0; i < records; ++i) {
    std::uint64_t key;
    if (i > 0 && rng.below(100) < 15) {
      key = w.keys[rng.below(i)];
    } else {
      key = rng.next() & ~1ull;
    }
    w.keys.push_back(key);
    Slot s;
    s.key = key;
    const std::uint64_t kind = rng.below(100);
    if (kind < 10) {
      s.len = 0;
    } else if (kind < 75) {
      s.len = 1;
      s.pos = rng.next();
    } else {
      s.len = 2 + rng.below(2 * kB - 1);
      s.pos = w.payload.size();
      for (std::uint64_t j = 0; j < s.len; ++j) w.payload.push_back(rng.next());
    }
    w.slots.push_back(s);
  }
  return w;
}

void stage(Machine& mach, const Workload& w, ExtArray<Slot>& slots,
           ExtArray<std::uint64_t>& payload) {
  slots = ExtArray<Slot>(mach, w.slots.size(), "input.slots");
  slots.unsafe_host_fill(std::span<const Slot>(w.slots));
  payload = ExtArray<std::uint64_t>(mach, w.payload.size(), "input.payload");
  payload.unsafe_host_fill(std::span<const std::uint64_t>(w.payload));
}

StoreConfig durable_cfg(IndexKind index, std::size_t interval = kInterval) {
  StoreConfig cfg;
  cfg.index = index;
  cfg.compact_extra_bits = 8;
  cfg.manifest_interval = interval;
  return cfg;
}

std::vector<std::optional<std::vector<std::uint64_t>>> serve(
    KvStore& kv, const std::vector<std::uint64_t>& keys) {
  std::vector<std::optional<std::vector<std::uint64_t>>> out;
  out.reserve(keys.size());
  for (std::uint64_t k : keys) out.push_back(kv.get(k));
  return out;
}

struct CellResult {
  RecoveryReport::Outcome outcome = RecoveryReport::Outcome::kRestarted;
  bool crashed = false;
  bool identical = false;       // log + payload bytes match the reference
  bool serves_equal = false;    // sampled gets match the reference
  bool metrics_live = false;    // reliability section reflects the episode
  std::uint64_t crash_at = 0;   // armed crash point (charged writes)
  std::uint64_t ckpt_writes = 0;
  std::uint64_t extra_writes = 0;
  std::uint64_t bound = 0;
  std::uint64_t rec_reads = 0;
  std::uint64_t rec_writes = 0;
};

CellResult run_cell(const Workload& w, const Cell& c,
                    harness::PointContext& ctx) {
  CellResult r;

  // Uncrashed durable reference.
  Machine ref(make_config(kM, kB, c.omega));
  ExtArray<Slot> ref_slots;
  ExtArray<std::uint64_t> ref_payload;
  stage(ref, w, ref_slots, ref_payload);
  KvStore ref_kv(ref, durable_cfg(c.index));
  ref_kv.build(ref_slots, ref_payload);
  const std::uint64_t ref_writes = ref.stats().writes;

  // The same build under a power cut after pct% of those writes.
  Machine mach(make_config(kM, kB, c.omega));
  FaultConfig fc;
  fc.crash_after_writes = std::max<std::uint64_t>(1, ref_writes * c.pct / 100);
  mach.install_faults(fc);
  r.crash_at = fc.crash_after_writes;

  ExtArray<Slot> slots;
  ExtArray<std::uint64_t> payload;
  stage(mach, w, slots, payload);
  KvStore kv(mach, durable_cfg(c.index));
  try {
    kv.build(slots, payload);
  } catch (const CrashError&) {
    r.crashed = true;
  }
  if (!r.crashed) return r;

  const RecoveryReport rep = kv.recover(slots, payload);
  r.outcome = rep.outcome;
  r.ckpt_writes = rep.writes_at_checkpoint;
  r.rec_reads = rep.reads;
  r.rec_writes = rep.writes;

  // Honest-bill bound: the crashed run may redo at most the work between
  // the surviving checkpoint and the cut, twice over (redone writes plus
  // their checkpoint commits), plus the manifest slots and partial-block
  // resyncs of recovery itself.
  r.extra_writes = mach.stats().writes - ref_writes;
  const std::uint64_t redone = r.crash_at - rep.writes_at_checkpoint;
  r.bound = 2 * redone + kv.manifest_blocks() + 8;

  r.identical = kv.log_array().unsafe_host_view() ==
                    ref_kv.log_array().unsafe_host_view() &&
                kv.payload_array().unsafe_host_view() ==
                    ref_kv.payload_array().unsafe_host_view() &&
                kv.records() == ref_kv.records() &&
                kv.payload_words() == ref_kv.payload_words() &&
                kv.index_bits() == ref_kv.index_bits();

  std::vector<std::uint64_t> probe;
  util::Rng& rng = ctx.rng();
  for (std::size_t t = 0; t < 64; ++t)
    probe.push_back(t % 2 == 0 ? w.keys[rng.below(w.keys.size())]
                               : (rng.next() | 1));
  r.serves_equal = serve(kv, probe) == serve(ref_kv, probe);

  const std::string label = "F1 omega=" + std::to_string(c.omega) +
                            " index=" + to_string(c.index) +
                            " crash_pct=" + std::to_string(c.pct);
  MetricsSnapshot snap = snapshot_metrics(mach, label);
  snap.store = kv.metrics_section();
  r.metrics_live = snap.reliability.enabled && snap.reliability.crashes == 1 &&
                   snap.reliability.crash_after_writes == r.crash_at &&
                   snap.reliability.recovery.scans == 1 &&
                   snap.reliability.recovery.reads == rep.reads &&
                   snap.reliability.recovery.writes == rep.writes &&
                   snap.reliability.recovery.cost == rep.cost;
  ctx.snapshot(std::move(snap));

  ctx.row({util::fmt(c.omega), to_string(c.index), util::fmt(c.pct),
           util::fmt(r.crash_at), to_string(r.outcome),
           util::fmt(r.ckpt_writes), util::fmt(r.extra_writes),
           util::fmt(r.bound), util::fmt(r.rec_reads),
           util::fmt(r.rec_writes), r.identical ? "yes" : "NO"});
  return r;
}

}  // namespace

int main(int argc, char** argv) try {
  util::Cli cli(argc, argv);
  const BenchIo io = bench_io(cli, 29);

  banner("F1",
         "crash-consistent store builds: power cut after N charged writes, "
         "manifest recovery at a bounded write bill, and outage-degraded "
         "serving");

  const Workload w = make_workload(kRecords, io.seed * 1000003 + kRecords);

  const std::uint64_t omegas[] = {1, 8, 64};
  const IndexKind kinds[] = {IndexKind::kFence, IndexKind::kCompact};
  const std::uint64_t pcts[] = {2, 35, 75, 100};
  std::vector<Cell> cells;
  for (std::uint64_t omega : omegas)
    for (IndexKind k : kinds)
      for (std::uint64_t pct : pcts) cells.push_back({omega, k, pct});

  util::Table t({"omega", "index", "crash%", "crash_at", "outcome", "ckpt_W",
                 "extra_W", "bound", "rec_R", "rec_W", "identical"});
  std::vector<CellResult> results(cells.size());
  replay(harness::run_sweep(cells.size(), io.sweep,
                            [&](harness::PointContext& ctx) {
                              results[ctx.index()] =
                                  run_cell(w, cells[ctx.index()], ctx);
                            }),
         &t, io.metrics);
  emit(t, "F1 crash sweep (records=" + util::fmt(std::uint64_t(kRecords)) +
              ", B=" + util::fmt(std::uint64_t(kB)) + ", manifest every " +
              util::fmt(std::uint64_t(kInterval)) +
              " pages): recovery outcome and write bill:",
       io.csv);

  bool ok = true;
  bool saw_resumed = false;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    const CellResult& r = results[i];
    const std::string tag = "omega=" + std::to_string(c.omega) +
                            " index=" + to_string(c.index) +
                            " crash%=" + std::to_string(c.pct);
    if (!r.crashed) {
      std::cerr << "FAIL: " << tag << ": armed crash point never fired\n";
      ok = false;
      continue;
    }
    if (!r.identical) {
      std::cerr << "FAIL: " << tag << ": recovered store is not "
                << "byte-identical to the uncrashed build\n";
      ok = false;
    }
    if (!r.serves_equal) {
      std::cerr << "FAIL: " << tag << ": recovered store served different "
                << "results\n";
      ok = false;
    }
    if (!r.metrics_live) {
      std::cerr << "FAIL: " << tag << ": reliability metrics section does "
                << "not reflect the crash/recovery episode\n";
      ok = false;
    }
    if (r.extra_writes > r.bound) {
      std::cerr << "FAIL: " << tag << ": recovery write bill " << r.extra_writes
                << " exceeds 2 x redone + slack = " << r.bound << "\n";
      ok = false;
    }
    if (c.pct == 2 && r.outcome != RecoveryReport::Outcome::kRestarted) {
      std::cerr << "FAIL: " << tag << ": a pre-checkpoint crash must restart "
                << "(got " << to_string(r.outcome) << ")\n";
      ok = false;
    }
    if (c.pct == 100 && r.outcome != RecoveryReport::Outcome::kReindexed) {
      std::cerr << "FAIL: " << tag << ": a post-commit crash must only "
                << "reindex (got " << to_string(r.outcome) << ")\n";
      ok = false;
    }
    if (r.outcome == RecoveryReport::Outcome::kResumed) saw_resumed = true;
  }
  if (!saw_resumed) {
    std::cerr << "FAIL: no cell exercised checkpoint resume\n";
    ok = false;
  }
  if (ok)
    std::cout << "crash-sweep guards: every cell recovered byte-identical "
                 "within the write-bill bound; restart/resume/reindex all "
                 "exercised; reliability metrics live\n\n";

  // --- checkpoint cost when nothing crashes --------------------------------
  {
    util::Table ct({"interval", "build_W", "build_Q", "commits", "overhead_Q"});
    std::uint64_t plain_cost = 0;
    std::vector<std::optional<std::vector<std::uint64_t>>> plain_out;
    util::Rng rng(io.seed + 7);
    std::vector<std::uint64_t> probe;
    for (std::size_t t = 0; t < 64; ++t)
      probe.push_back(w.keys[rng.below(w.keys.size())]);
    for (const std::size_t interval : {std::size_t{0}, std::size_t{2},
                                       std::size_t{8}}) {
      Machine mach(make_config(kM, kB, 8));
      ExtArray<Slot> slots;
      ExtArray<std::uint64_t> payload;
      stage(mach, w, slots, payload);
      KvStore kv(mach, durable_cfg(IndexKind::kFence, interval));
      kv.build(slots, payload);
      const auto out = serve(kv, probe);
      if (interval == 0) {
        plain_cost = kv.build_cost();
        plain_out = out;
      } else if (out != plain_out) {
        std::cerr << "FAIL: interval=" << interval
                  << ": durable store served different results\n";
        ok = false;
      }
      const double overhead =
          plain_cost == 0 ? 0.0
                          : static_cast<double>(kv.build_cost()) /
                                    static_cast<double>(plain_cost) -
                                1.0;
      ct.add_row({util::fmt(std::uint64_t(interval)),
                  util::fmt(kv.build_writes()), util::fmt(kv.build_cost()),
                  util::fmt(kv.manifest_commits()), util::fmt(overhead, 3)});
      emit_metrics(mach, "F1 checkpoint interval=" + std::to_string(interval),
                   io.metrics);
      if (interval != 0 && kv.build_cost() >= 2 * plain_cost) {
        std::cerr << "FAIL: interval=" << interval << ": checkpointing "
                  << "doubled the build cost (" << kv.build_cost() << " vs "
                  << plain_cost << ")\n";
        ok = false;
      }
    }
    emit(ct, "F1 checkpoint cost (fence, omega=8, uncrashed): durable-build "
             "overhead by manifest interval (0 = non-durable):",
         io.csv);
    if (ok)
      std::cout << "checkpoint-cost guards: unarmed durable builds serve "
                   "identically at < 2x build Q\n\n";
  }

  // --- degraded serving under a device outage ------------------------------
  {
    const auto shard_cfg = [&](std::vector<OutageSpec> outages) {
      ShardConfig sc;
      sc.frontend = make_config(kM, kB, 8);
      sc.devices.assign(4, make_config(kM, kB, 8));
      sc.placement = Placement::kRoundRobin;
      sc.outages = std::move(outages);
      return sc;
    };
    util::Rng rng(io.seed + 13);
    std::vector<std::uint64_t> probe;
    for (std::size_t t = 0; t < 128; ++t)
      probe.push_back(w.keys[rng.below(w.keys.size())]);

    const auto run = [&](ShardedMachine& mach) {
      ExtArray<Slot> slots;
      ExtArray<std::uint64_t> payload;
      stage(mach, w, slots, payload);
      KvStore kv(mach, durable_cfg(IndexKind::kFence));
      kv.build(slots, payload);
      auto out = serve(kv, probe);
      mach.drain_recovered();
      return out;
    };

    ShardedMachine calm(shard_cfg({}));
    const auto calm_out = run(calm);

    // One device goes dark for a 120-op window in the middle of the build.
    const std::uint64_t down_at = calm.op_clock() / 4;
    const std::uint64_t up_at = down_at + 120;
    ShardedMachine dark(shard_cfg({OutageSpec{1, down_at, up_at}}));
    const auto dark_out = run(dark);

    const OutageStats& ost = dark.outage_stats(1);
    util::Table ot({"machine", "reads", "writes", "wait_rounds", "backoff_R",
                    "queued_W", "drained_W"});
    ot.add_row({"calm", util::fmt(calm.stats().reads),
                util::fmt(calm.stats().writes), "0", "0", "0", "0"});
    ot.add_row({"dev1 down [" + util::fmt(down_at) + "," + util::fmt(up_at) +
                    ")",
                util::fmt(dark.stats().reads), util::fmt(dark.stats().writes),
                util::fmt(ost.wait_rounds), util::fmt(ost.backoff_ios),
                util::fmt(ost.queued_writes), util::fmt(ost.drained_writes)});
    emit(ot, "F1 degraded serving (fence, D=4 round-robin, dev1 outage "
             "mid-build): waiting reads and deferred writes:",
         io.csv);
    emit_metrics(dark, "F1 outage D=4 dev1", io.metrics);

    if (dark_out != calm_out) {
      std::cerr << "FAIL: outage run served different results\n";
      ok = false;
    }
    if (dark.stats().writes != calm.stats().writes) {
      std::cerr << "FAIL: outage run changed the charged write count ("
                << dark.stats().writes << " vs " << calm.stats().writes
                << ")\n";
      ok = false;
    }
    if (dark.stats().reads != calm.stats().reads + ost.backoff_ios) {
      std::cerr << "FAIL: outage run's extra reads (" << dark.stats().reads
                << " vs " << calm.stats().reads << ") are not exactly the "
                << "charged backoff polls (" << ost.backoff_ios << ")\n";
      ok = false;
    }
    if (ost.wait_rounds == 0 || ost.queued_writes == 0) {
      std::cerr << "FAIL: the outage window was never hit (wait_rounds="
                << ost.wait_rounds << ", queued=" << ost.queued_writes
                << ")\n";
      ok = false;
    }
    if (ost.drained_writes != ost.queued_writes ||
        dark.pending_writes(1) != 0) {
      std::cerr << "FAIL: " << dark.pending_writes(1) << " deferred writes "
                << "never drained (queued " << ost.queued_writes
                << ", drained " << ost.drained_writes << ")\n";
      ok = false;
    }
    if (dark.devices_stats().writes != dark.stats().writes) {
      std::cerr << "FAIL: device writes not conserved after the drain\n";
      ok = false;
    }
    if (ok)
      std::cout << "degraded-serving guards: identical results and writes; "
                   "extra reads = backoff polls (" << ost.backoff_ios
                << "); all " << ost.queued_writes
                << " deferred writes drained\n";
  }

  std::cout << "\nPASS criteria: byte-identical recovery within the "
               "2 x redone + slack write bound; restart/resume/reindex all "
               "exercised; unarmed durable builds < 2x Q; outage runs serve "
               "identically with reads inflated by exactly the charged "
               "backoff polls.\n";
  return ok ? 0 : 1;
}
catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << "\n";
  return 2;
}
