// E2 — Section 3 recurrence: the AEM mergesort costs
// O(omega * n * log_{omega m} n), split as O(omega n log_{omega m} n) reads
// and O(n log_{omega m} n) writes.
//
// We sort random arrays across N, omega, M, B and report measured cost and
// read/write split against the closed forms.  The theorem predicts the
// ratio columns stay bounded as N grows (per machine).
#include <iostream>

#include "bench_common.hpp"
#include "bounds/sort_bounds.hpp"
#include "sort/mergesort.hpp"

namespace {

using namespace aem;
using namespace aem::bench;

void run_case(std::size_t N, std::size_t M, std::size_t B, std::uint64_t w,
              util::Table& t, util::Rng& rng, const std::string& metrics) {
  Machine mach(make_config(M, B, w));
  auto in = staged_keys(mach, N, rng);
  ExtArray<std::uint64_t> out(mach, N, "out");
  mach.reset_stats();
  aem_merge_sort(in, out);

  emit_metrics(mach,
               "E2 N=" + std::to_string(N) + " M=" + std::to_string(M) +
                   " B=" + std::to_string(B) + " omega=" + std::to_string(w),
               metrics);

  bounds::AemParams p{.N = N, .M = M, .B = B, .omega = w};
  const double q_bound = bounds::aem_sort_upper_bound(p);
  const double w_bound = bounds::aem_sort_write_bound(p);
  t.add_row({util::fmt(std::uint64_t(N)), util::fmt(std::uint64_t(M)),
             util::fmt(std::uint64_t(B)), util::fmt(w),
             util::fmt(mach.stats().reads), util::fmt(mach.stats().writes),
             util::fmt(mach.cost()),
             util::fmt(q_bound, 0),
             util::fmt_ratio(double(mach.cost()), q_bound),
             util::fmt_ratio(double(mach.stats().writes), w_bound)});
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  const std::string csv = cli.str("csv", "");
  const std::string metrics = cli.str("metrics", "");
  const bool full = cli.flag("full");
  util::Rng rng(cli.u64("seed", 2));

  banner("E2",
         "Section 3: AEM mergesort Q = O(omega n log_{omega m} n), writes a "
         "factor omega below reads");

  {
    util::Table t({"N", "M", "B", "omega", "reads", "writes", "Q",
                   "bound", "Q/bound", "writes/wbound"});
    const std::size_t n_max = full ? (1u << 19) : (1u << 17);
    for (std::size_t N = 1 << 13; N <= n_max; N <<= 1)
      run_case(N, 256, 16, 8, t, rng, metrics);
    emit(t, "Scaling in N (M=256, B=16, omega=8):", csv);
  }

  {
    util::Table t({"N", "M", "B", "omega", "reads", "writes", "Q",
                   "bound", "Q/bound", "writes/wbound"});
    for (std::uint64_t w : {1, 2, 4, 8, 16, 32, 64, 128})
      run_case(1 << 16, 256, 16, w, t, rng, metrics);
    emit(t, "Scaling in omega (N=2^16, M=256, B=16; note omega crosses B):",
         csv);
  }

  {
    util::Table t({"N", "M", "B", "omega", "reads", "writes", "Q",
                   "bound", "Q/bound", "writes/wbound"});
    for (std::size_t M : {128, 256, 512, 1024, 2048})
      run_case(1 << 16, M, 16, 8, t, rng, metrics);
    for (std::size_t B : {8, 16, 32, 64})
      run_case(1 << 16, 512, B, 8, t, rng, metrics);
    emit(t, "Machine-shape sweep (N=2^16, omega=8):", csv);
  }

  std::cout << "PASS criterion: Q/bound bounded and flat in N; writes a\n"
               "factor ~omega below reads throughout.\n";
  return 0;
}
