// E2 — Section 3 recurrence: the AEM mergesort costs
// O(omega * n * log_{omega m} n), split as O(omega n log_{omega m} n) reads
// and O(n log_{omega m} n) writes.
//
// We sort random arrays across N, omega, M, B and report measured cost and
// read/write split against the closed forms.  The theorem predicts the
// ratio columns stay bounded as N grows (per machine).
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "bounds/sort_bounds.hpp"
#include "sort/mergesort.hpp"

namespace {

using namespace aem;
using namespace aem::bench;

struct Point {
  std::size_t N, M, B;
  std::uint64_t w;
};

void run_case(const Point& p0, harness::PointContext& ctx) {
  const auto [N, M, B, w] = p0;
  Machine mach(make_config(M, B, w));
  auto in = staged_keys(mach, N, ctx.rng());
  ExtArray<std::uint64_t> out(mach, N, "out");
  mach.reset_stats();
  aem_merge_sort(in, out);

  ctx.metrics(mach, "E2 N=" + std::to_string(N) + " M=" + std::to_string(M) +
                        " B=" + std::to_string(B) +
                        " omega=" + std::to_string(w));

  bounds::AemParams p{.N = N, .M = M, .B = B, .omega = w};
  const double q_bound = bounds::aem_sort_upper_bound(p);
  const double w_bound = bounds::aem_sort_write_bound(p);
  ctx.row({util::fmt(std::uint64_t(N)), util::fmt(std::uint64_t(M)),
           util::fmt(std::uint64_t(B)), util::fmt(w),
           util::fmt(mach.stats().reads), util::fmt(mach.stats().writes),
           util::fmt(mach.cost()),
           util::fmt(q_bound, 0),
           util::fmt_ratio(double(mach.cost()), q_bound),
           util::fmt_ratio(double(mach.stats().writes), w_bound)});
}

void sweep_points(const BenchIo& io, const std::vector<Point>& grid,
                  util::Table& t) {
  sweep_table(io, grid.size(), t, [&](harness::PointContext& ctx) {
    run_case(grid[ctx.index()], ctx);
  });
}

}  // namespace

int main(int argc, char** argv) try {
  util::Cli cli(argc, argv);
  const BenchIo io = bench_io(cli, 2);

  banner("E2",
         "Section 3: AEM mergesort Q = O(omega n log_{omega m} n), writes a "
         "factor omega below reads");

  {
    util::Table t({"N", "M", "B", "omega", "reads", "writes", "Q",
                   "bound", "Q/bound", "writes/wbound"});
    std::vector<Point> grid;
    const std::size_t n_max = io.full ? (1u << 19) : (1u << 17);
    for (std::size_t N = 1 << 13; N <= n_max; N <<= 1)
      grid.push_back({N, 256, 16, 8});
    sweep_points(io, grid, t);
    emit(t, "Scaling in N (M=256, B=16, omega=8):", io.csv);
  }

  {
    util::Table t({"N", "M", "B", "omega", "reads", "writes", "Q",
                   "bound", "Q/bound", "writes/wbound"});
    std::vector<Point> grid;
    for (std::uint64_t w : {1, 2, 4, 8, 16, 32, 64, 128})
      grid.push_back({1 << 16, 256, 16, w});
    sweep_points(io, grid, t);
    emit(t, "Scaling in omega (N=2^16, M=256, B=16; note omega crosses B):",
         io.csv);
  }

  {
    util::Table t({"N", "M", "B", "omega", "reads", "writes", "Q",
                   "bound", "Q/bound", "writes/wbound"});
    std::vector<Point> grid;
    for (std::size_t M : {128, 256, 512, 1024, 2048})
      grid.push_back({1 << 16, M, 16, 8});
    for (std::size_t B : {8, 16, 32, 64}) grid.push_back({1 << 16, 512, B, 8});
    sweep_points(io, grid, t);
    emit(t, "Machine-shape sweep (N=2^16, omega=8):", io.csv);
  }

  std::cout << "PASS criterion: Q/bound bounded and flat in N; writes a\n"
               "factor ~omega below reads throughout.\n";
  return 0;
}
catch (const std::exception& e) {
  // CLI/env parse errors (and any other unhandled failure) exit with a
  // one-line diagnostic instead of an uncaught-exception abort.
  std::cerr << "error: " << e.what() << "\n";
  return 2;
}
