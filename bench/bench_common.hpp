// Shared scaffolding for the experiment binaries (see DESIGN.md section 3).
//
// Every binary prints a header naming the paper claim it reproduces, one or
// more tables in paper style, and (with --csv=FILE) a machine-readable
// duplicate.  Default grids are sized to finish in seconds on one core;
// --full enlarges them, and --jobs=N (or AEM_JOBS) runs the sweep grid on N
// worker threads via harness/parallel_sweep with BYTE-IDENTICAL output for
// every N (tables, CSVs, and metrics logs; see docs/MODEL.md section 12).
#pragma once

#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <mutex>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "core/config.hpp"
#include "core/ext_array.hpp"
#include "core/machine.hpp"
#include "core/metrics.hpp"
#include "harness/parallel_sweep.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace aem::bench {

inline Config make_config(std::size_t M, std::size_t B, std::uint64_t omega) {
  Config cfg;
  cfg.memory_elems = M;
  cfg.block_elems = B;
  cfg.write_cost = omega;
  return cfg;
}

/// Stages n random keys into a fresh external array.  The Rng should be the
/// sweep point's PRIVATE generator (PointContext::rng()): per-point seeds
/// derive from (base seed, point index) alone, so the staged data — and
/// therefore every table — is independent of grid iteration order and of
/// --jobs.  Threading one shared Rng through a sweep would make each
/// point's input depend on how many points ran before it.
inline ExtArray<std::uint64_t> staged_keys(Machine& mach, std::size_t n,
                                           util::Rng& rng,
                                           const char* name = "in") {
  ExtArray<std::uint64_t> arr(mach, n, name);
  arr.unsafe_host_fill(util::random_keys(n, rng));
  return arr;
}

/// Prints the experiment banner.
inline void banner(const std::string& id, const std::string& claim) {
  std::cout << "=== " << id << " — " << claim << " ===\n\n";
}

/// Append-semantics file sink that is also crash-safe: the first append to
/// a path in this process starts its content fresh (so re-running a bench
/// replaces its CSV/metrics log instead of growing it), later appends
/// extend it.  Every append rewrites the file's full accumulated content to
/// `path + ".tmp"` and atomically renames it over `path`, so a reader (or a
/// crash — the failure mode this library spends a whole bench simulating)
/// never observes a half-written file: the old content stays intact until
/// the new content is durably in place.  Mutex-guarded, so concurrent
/// emitters can neither interleave partial payloads nor double-truncate —
/// the hazard the old function-local `static std::vector<std::string>
/// seen` in emit() had baked in.
class CsvSink {
 public:
  void append(const std::string& path, const std::string& payload) {
    if (path.empty()) return;
    const std::lock_guard<std::mutex> lock(mu_);
    std::string& content = files_[path];  // fresh paths start empty
    content += payload;
    const std::string tmp = path + ".tmp";
    {
      std::ofstream os(tmp, std::ios::trunc | std::ios::binary);
      os << content;
      if (!os) return;  // keep the last good version of `path` intact
    }
    std::rename(tmp.c_str(), path.c_str());
  }

 private:
  std::mutex mu_;
  std::map<std::string, std::string> files_;  // accumulated content per path
};

/// The process-wide sink all emit helpers share.
inline CsvSink& csv_sink() {
  static CsvSink sink;
  return sink;
}

/// Prints a table and optionally appends it as CSV to `csv_path` (first
/// emit of a run truncates the file; several tables per binary).
inline void emit(const util::Table& t, const std::string& title,
                 const std::string& csv_path) {
  std::cout << title << "\n";
  t.print(std::cout);
  std::cout << "\n";
  if (!csv_path.empty()) {
    std::ostringstream os;
    os << "# " << title << "\n";
    t.print_csv(os);
    csv_sink().append(csv_path, os.str());
  }
}

/// Appends one already-taken metrics snapshot (one line, schema
/// aem.machine.metrics/v8) to `path` through the sink.  No-op when `path`
/// is empty, so benches can call it unconditionally and let --metrics=FILE
/// opt in.
inline void append_metrics(const MetricsSnapshot& snap,
                           const std::string& path) {
  if (path.empty()) return;
  std::ostringstream os;
  write_json(os, snap);
  os << "\n";
  csv_sink().append(path, os.str());
}

/// Snapshots `mach` now and appends it to `path` (serial convenience for
/// code outside a sweep; inside a sweep use PointContext::metrics so
/// snapshots replay in point order).
inline void emit_metrics(const Machine& mach, const std::string& label,
                         const std::string& path) {
  if (path.empty()) return;
  append_metrics(snapshot_metrics(mach, label), path);
}

/// The flags every experiment binary shares, parsed once.
struct BenchIo {
  std::string csv;              ///< --csv=FILE (empty: no CSV)
  std::string metrics;          ///< --metrics=FILE (empty: no metrics log)
  bool full = false;            ///< --full: larger grids
  std::uint64_t seed = 0;       ///< --seed: the sweep's base seed
  harness::SweepConfig sweep;   ///< jobs (--jobs / AEM_JOBS) + base_seed
};

inline BenchIo bench_io(const util::Cli& cli, std::uint64_t default_seed) {
  BenchIo io;
  io.csv = cli.str("csv", "");
  io.metrics = cli.str("metrics", "");
  io.full = cli.flag("full");
  io.seed = cli.u64("seed", default_seed);
  io.sweep.jobs = cli.jobs();
  io.sweep.base_seed = io.seed;
  return io;
}

/// Replays per-point results in point order: rows into `t` (when non-null)
/// and snapshots into the metrics log.  Called after run_sweep drains, on
/// the calling thread — emission order is the grid order, never the
/// scheduling order.
inline void replay(std::vector<harness::PointResult> results, util::Table* t,
                   const std::string& metrics_path) {
  for (harness::PointResult& r : results) {
    if (t != nullptr)
      for (std::vector<std::string>& row : r.rows) t->add_row(std::move(row));
    for (const MetricsSnapshot& s : r.snapshots)
      append_metrics(s, metrics_path);
  }
}

/// Runs `fn` over `points` sweep points on io.sweep.jobs workers and
/// replays rows/metrics in point order.  The one-liner for benches whose
/// rows are computed entirely within a point; benches with cross-point
/// logic call harness::run_sweep directly and post-process the results.
template <class Fn>
void sweep_table(const BenchIo& io, std::size_t points, util::Table& t,
                 Fn&& fn) {
  replay(harness::run_sweep(points, io.sweep, std::forward<Fn>(fn)), &t,
         io.metrics);
}

}  // namespace aem::bench
