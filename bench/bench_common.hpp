// Shared scaffolding for the experiment binaries (see DESIGN.md section 3).
//
// Every binary prints a header naming the paper claim it reproduces, one or
// more tables in paper style, and (with --csv=FILE) a machine-readable
// duplicate.  Default grids are sized to finish in seconds on one core;
// --full enlarges them.
#pragma once

#include <algorithm>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "core/ext_array.hpp"
#include "core/machine.hpp"
#include "core/metrics.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace aem::bench {

inline Config make_config(std::size_t M, std::size_t B, std::uint64_t omega) {
  Config cfg;
  cfg.memory_elems = M;
  cfg.block_elems = B;
  cfg.write_cost = omega;
  return cfg;
}

inline ExtArray<std::uint64_t> staged_keys(Machine& mach, std::size_t n,
                                           util::Rng& rng,
                                           const char* name = "in") {
  ExtArray<std::uint64_t> arr(mach, n, name);
  arr.unsafe_host_fill(util::random_keys(n, rng));
  return arr;
}

/// Prints the experiment banner.
inline void banner(const std::string& id, const std::string& claim) {
  std::cout << "=== " << id << " — " << claim << " ===\n\n";
}

/// Prints a table and optionally writes it as CSV to `csv_path`.  The first
/// emit of a run truncates the file; later emits append (several tables per
/// binary), so re-running a bench replaces its CSV instead of growing it.
inline void emit(const util::Table& t, const std::string& title,
                 const std::string& csv_path) {
  std::cout << title << "\n";
  t.print(std::cout);
  std::cout << "\n";
  if (!csv_path.empty()) {
    static std::vector<std::string> seen;
    const bool first =
        std::find(seen.begin(), seen.end(), csv_path) == seen.end();
    if (first) seen.push_back(csv_path);
    std::ofstream os(csv_path, first ? std::ios::trunc : std::ios::app);
    os << "# " << title << "\n";
    t.print_csv(os);
  }
}

/// Appends one machine-metrics JSON snapshot (one line, schema
/// aem.machine.metrics/v3) to `path`.  Like emit(), the first use of a path
/// in a run truncates the file, so re-running a bench replaces its metrics
/// log instead of growing it.  No-op when `path` is empty, so benches can
/// call it unconditionally and let --metrics=FILE opt in.
inline void emit_metrics(const Machine& mach, const std::string& label,
                         const std::string& path) {
  if (path.empty()) return;
  static std::vector<std::string> seen;
  const bool first =
      std::find(seen.begin(), seen.end(), path) == seen.end();
  if (first) seen.push_back(path);
  std::ofstream os(path, first ? std::ios::trunc : std::ios::app);
  write_json(os, snapshot_metrics(mach, label));
  os << "\n";
}

}  // namespace aem::bench
