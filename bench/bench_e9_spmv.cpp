// E9 — Section 5: SpMxV in column-major layout.
//
// Upper bounds: direct program O(H + omega n) vs sorting-based program
// O(omega h log_{omega m}(N/max{delta,B}) + omega n); Theorem 5.1's lower
// bound min{H, omega h log_{omega m}(N/max{delta,B})}.  We sweep delta and
// omega on delta-regular hard instances (all-ones vector, counting
// semiring — exactly the Theorem 5.1 setting), report both programs'
// measured costs against the bound, and locate the crossover.
#include <algorithm>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "bounds/spmv_bounds.hpp"
#include "spmv/dispatch.hpp"
#include "spmv/matrix.hpp"
#include "spmv/naive.hpp"
#include "spmv/sort_spmv.hpp"

namespace {

using namespace aem;
using namespace aem::bench;
using namespace aem::spmv;

struct Point {
  std::uint64_t N, delta;
  std::size_t M, B;
  std::uint64_t w;
};

struct Costs {
  std::uint64_t naive, sorted;
};

Costs run_both(const Point& pt, harness::PointContext& ctx) {
  const auto [N, delta, M, B, w] = pt;
  const std::string tag = " N=" + std::to_string(N) +
                          " delta=" + std::to_string(delta) +
                          " omega=" + std::to_string(w);
  auto conf = Conformation::delta_regular(N, delta, ctx.rng());
  Costs c{};
  // The Theorem 5.1 setting exactly: the all-ones vector is implicit
  // (row sums) — no x reads for either program.
  {
    Machine mach(make_config(M, B, w));
    SparseMatrix<std::uint64_t> A(mach, conf, [](Coord) { return 1ull; });
    ExtArray<std::uint64_t> y(mach, N, "y");
    mach.reset_stats();
    naive_row_sums(A, y, Counting{});
    c.naive = mach.cost();
    ctx.metrics(mach, "E9 naive" + tag);
  }
  {
    Machine mach(make_config(M, B, w));
    SparseMatrix<std::uint64_t> A(mach, conf, [](Coord) { return 1ull; });
    ExtArray<std::uint64_t> y(mach, N, "y");
    mach.reset_stats();
    sort_row_sums(A, y, Counting{});
    c.sorted = mach.cost();
    ctx.metrics(mach, "E9 sort" + tag);
  }
  return c;
}

void run_case(const Point& pt, harness::PointContext& ctx) {
  Costs c = run_both(pt, ctx);
  bounds::SpmvParams p{.N = pt.N, .delta = pt.delta, .M = pt.M, .B = pt.B,
                       .omega = pt.w};
  // Theorem 5.1 plus the trivial "write the output vector" bound omega*n.
  const double lb = bounds::spmv_lower_bound_total(p);
  const std::uint64_t best = std::min(c.naive, c.sorted);
  ctx.row({util::fmt(pt.N), util::fmt(pt.delta), util::fmt(pt.w),
           util::fmt(c.naive), util::fmt(c.sorted),
           c.sorted < c.naive ? "sort" : "naive", util::fmt(lb, 0),
           util::fmt_ratio(double(best), lb, 2),
           bounds::spmv_bound_applicable(p) ? "yes" : "no"});
}

void sweep_points(const BenchIo& io, const std::vector<Point>& grid,
                  util::Table& t) {
  sweep_table(io, grid.size(), t, [&](harness::PointContext& ctx) {
    run_case(grid[ctx.index()], ctx);
  });
}

}  // namespace

int main(int argc, char** argv) try {
  util::Cli cli(argc, argv);
  const BenchIo io = bench_io(cli, 9);

  banner("E9", "Section 5: SpMxV naive O(H + omega n) vs sorting-based "
               "O(omega h log_{omega m}(N/max{delta,B}) + omega n) vs "
               "Theorem 5.1");

  {
    util::Table t({"N", "delta", "omega", "naive", "sort", "winner",
                   "Thm5.1_LB", "best/LB", "thm_applies"});
    const std::uint64_t N = io.full ? (1 << 15) : (1 << 13);
    std::vector<Point> grid;
    for (std::uint64_t delta : {1, 2, 4, 8, 16, 32})
      grid.push_back({N, delta, 256, 16, 4});
    sweep_points(io, grid, t);
    emit(t, "Sweep delta (M=256, B=16, omega=4):", io.csv);
  }

  {
    // Large blocks make element-granular gathering expensive (each of the
    // H scattered entries costs a whole-block read), so the sorting-based
    // program wins at small omega; the min{} flips as omega grows.
    util::Table t({"N", "delta", "omega", "naive", "sort", "winner",
                   "Thm5.1_LB", "best/LB", "thm_applies"});
    std::vector<Point> grid;
    for (std::uint64_t w : {1, 2, 4, 8, 16, 64, 256})
      grid.push_back({1 << 13, 4, 1024, 64, w});
    sweep_points(io, grid, t);
    emit(t, "Sweep omega (N=2^13, delta=4, B=64): naive takes over as "
            "writes dominate:", io.csv);
  }

  {
    util::Table t({"N", "delta", "omega", "naive", "sort", "winner",
                   "Thm5.1_LB", "best/LB", "thm_applies"});
    std::vector<Point> grid;
    const std::uint64_t n_max = io.full ? (1 << 16) : (1 << 14);
    for (std::uint64_t N = 1 << 11; N <= n_max; N <<= 1)
      grid.push_back({N, 4, 256, 16, 4});
    sweep_points(io, grid, t);
    emit(t, "Scaling in N (delta=4, omega=4):", io.csv);
  }

  std::cout << "PASS criterion: best/LB bounded; winner flips from sort to\n"
               "naive as omega grows; every measured cost >= the bound.\n";
  return 0;
}
catch (const std::exception& e) {
  // CLI/env parse errors (and any other unhandled failure) exit with a
  // one-line diagnostic instead of an uncaught-exception abort.
  std::cerr << "error: " << e.what() << "\n";
  return 2;
}
