// E3 — the sorting-algorithm comparison the paper's Sections 1 and 3 set
// up: the omega-aware mergesort (Section 3, no omega/B assumption) vs the
// omega-oblivious Aggarwal-Vitter mergesort vs AEM sample sort [7].
//
// The paper predicts the oblivious sort pays a factor
// ((1+omega)/omega) * log(omega m)/log m over the aware one, growing with
// omega; and that the Section 3 merge keeps its bound for omega > B where
// the earlier mergesort's analysis broke down.
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "bounds/sort_bounds.hpp"
#include "sort/em_mergesort.hpp"
#include "sort/mergesort.hpp"
#include "pq/ext_pq.hpp"
#include "sort/samplesort.hpp"

namespace {

using namespace aem;
using namespace aem::bench;

struct Costs {
  std::uint64_t aware = 0, oblivious = 0, sample = 0;
  std::uint64_t heap = 0;  // 0 = skipped (machine below the PQ's M >= 16B)
};

Costs run_all(std::size_t N, std::size_t M, std::size_t B, std::uint64_t w,
              harness::PointContext& ctx) {
  const std::string tag = " N=" + std::to_string(N) + " M=" + std::to_string(M) +
                          " B=" + std::to_string(B) + " omega=" + std::to_string(w);
  auto keys = util::random_keys(N, ctx.rng());
  Costs c{};
  {
    Machine mach(make_config(M, B, w));
    ExtArray<std::uint64_t> in(mach, N, "in");
    in.unsafe_host_fill(keys);
    ExtArray<std::uint64_t> out(mach, N, "out");
    mach.reset_stats();
    aem_merge_sort(in, out);
    c.aware = mach.cost();
    ctx.metrics(mach, "E3 aware" + tag);
  }
  {
    Machine mach(make_config(M, B, w));
    ExtArray<std::uint64_t> in(mach, N, "in");
    in.unsafe_host_fill(keys);
    ExtArray<std::uint64_t> out(mach, N, "out");
    mach.reset_stats();
    em_merge_sort(in, out);
    c.oblivious = mach.cost();
    ctx.metrics(mach, "E3 oblivious" + tag);
  }
  {
    Machine mach(make_config(M, B, w));
    ExtArray<std::uint64_t> in(mach, N, "in");
    in.unsafe_host_fill(keys);
    ExtArray<std::uint64_t> out(mach, N, "out");
    mach.reset_stats();
    aem_sample_sort(in, out);
    c.sample = mach.cost();
    ctx.metrics(mach, "E3 sample" + tag);
  }
  if (M >= 16 * B) {  // the external PQ's memory requirement
    Machine mach(make_config(M, B, w));
    ExtArray<std::uint64_t> in(mach, N, "in");
    in.unsafe_host_fill(keys);
    ExtArray<std::uint64_t> out(mach, N, "out");
    mach.reset_stats();
    aem_heap_sort(in, out);
    c.heap = mach.cost();
    ctx.metrics(mach, "E3 heap" + tag);
  }
  return c;
}

void shootout_row(std::size_t N, std::size_t M, std::size_t B, std::uint64_t w,
                  harness::PointContext& ctx) {
  Costs c = run_all(N, M, B, w, ctx);
  bounds::AemParams p{.N = N, .M = M, .B = B, .omega = w};
  const char* winner = c.aware <= c.oblivious && c.aware <= c.sample
                           ? "aware"
                           : (c.oblivious <= c.sample ? "oblivious" : "sample");
  ctx.row({util::fmt(w), util::fmt(c.aware), util::fmt(c.oblivious),
           util::fmt(c.sample), c.heap ? util::fmt(c.heap) : std::string("-"),
           util::fmt_ratio(double(c.oblivious), double(c.aware), 2),
           util::fmt(bounds::predicted_oblivious_penalty(p), 2), winner});
}

}  // namespace

int main(int argc, char** argv) try {
  util::Cli cli(argc, argv);
  const BenchIo io = bench_io(cli, 3);

  banner("E3",
         "omega-aware mergesort (Sec. 3) vs omega-oblivious EM mergesort vs "
         "sample sort [7]");

  {
    util::Table t({"omega", "aware", "oblivious", "sample", "heap",
                   "obl/aware", "predicted", "winner"});
    const std::size_t N = io.full ? (1 << 17) : (1 << 15);
    const std::size_t M = 64, B = 8;
    const std::vector<std::uint64_t> omegas = {1, 4, 16, 64, 256, 1024};
    sweep_table(io, omegas.size(), t, [&](harness::PointContext& ctx) {
      shootout_row(N, M, B, omegas[ctx.index()], ctx);
    });
    emit(t, "Sweep omega at N=2^15, M=64, B=8 (small m: deep oblivious "
            "recursion):", io.csv);
  }

  {
    util::Table t({"omega", "aware", "oblivious", "sample", "heap",
                   "obl/aware", "predicted", "winner"});
    const std::size_t N = 1 << 15, M = 256, B = 16;
    const std::vector<std::uint64_t> omegas = {1, 8, 16, 32, 128, 512};
    sweep_table(io, omegas.size(), t, [&](harness::PointContext& ctx) {
      shootout_row(N, M, B, omegas[ctx.index()], ctx);
    });
    emit(t, "Sweep omega across omega = B = 16 (M=256): the aware merge "
            "needs no omega < B assumption:", io.csv);
  }

  std::cout
      << "PASS criterion: obl/aware grows with omega and tracks the\n"
         "predicted penalty's trend; the aware sort never loses badly and\n"
         "wins decisively for omega >> m.\n";
  return 0;
}
catch (const std::exception& e) {
  // CLI/env parse errors (and any other unhandled failure) exit with a
  // one-line diagnostic instead of an uncaught-exception abort.
  std::cerr << "error: " << e.what() << "\n";
  return 2;
}
