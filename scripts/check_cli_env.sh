#!/usr/bin/env bash
# CLI/env robustness contract: a malformed AEM_JOBS value (or integer flag)
# must make a bench binary exit with a ONE-LINE diagnostic and a clean
# nonzero status — never an uncaught-exception std::terminate (which shows
# up as SIGABRT, exit code 134).  Registered as the `cli_env_guard` ctest.
#
# Usage: scripts/check_cli_env.sh [build-dir] [bench ...]
set -euo pipefail

BUILD_DIR="${1:-build}"
shift || true
BENCHES=("${@:-bench_e1_merge}")

fail() { echo "FAIL: $*" >&2; exit 1; }

check_rejected() {
  # $1 = description, $2 = expected-diagnostic substring; the command to run
  # follows.  Asserts: nonzero exit, NOT a signal death, diagnostic present.
  local desc="$1" needle="$2"
  shift 2
  local out status=0
  out="$("$@" 2>&1 >/dev/null)" || status=$?
  [[ "$status" -ne 0 ]] || fail "$desc: accepted (exit 0)"
  [[ "$status" -lt 128 ]] || fail "$desc: died on a signal (exit $status) — uncaught exception?"
  [[ "$out" == *"$needle"* ]] || fail "$desc: diagnostic missing '$needle' (got: $out)"
  echo "ok: $desc -> exit $status, diagnostic mentions '$needle'"
}

for name in "${BENCHES[@]}"; do
  bench="$BUILD_DIR/bench/$name"
  [[ -x "$bench" ]] || fail "$bench not built"

  # Malformed AEM_JOBS in every shape std::stoull used to mis-handle.
  for bad in "abc" "12abc" "-4" "+4" " 3" "0x10" "99999999999999999999" "järn"; do
    check_rejected "$name AEM_JOBS='$bad'" "AEM_JOBS" \
      env AEM_JOBS="$bad" "$bench"
  done

  # A well-formed AEM_JOBS must still work.
  env AEM_JOBS=2 "$bench" > /dev/null \
    || fail "$name AEM_JOBS=2: rejected a valid value"
  echo "ok: $name AEM_JOBS=2 accepted"

  # Malformed integer flags go through the same strict parser.
  check_rejected "$name --seed=junk" "--seed" "$bench" --seed=junk
  check_rejected "$name --jobs=-1" "--jobs" "$bench" --jobs=-1
done

echo "cli_env_guard passed: malformed AEM_JOBS/flags exit nonzero with diagnostics"
