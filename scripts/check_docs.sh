#!/usr/bin/env bash
# Docs <-> code consistency check.  Docs rot silently: a renamed bench
# binary, a bumped metrics schema, or a new src/ subsystem leaves stale
# references nothing else catches.  This script makes the documented
# surface a CI invariant:
#
#   1. every bench binary a doc names exists in the build tree;
#   2. every scripts/*.sh path a doc names exists (and is executable);
#   3. every example/tool source a doc names exists in the repo;
#   4. every aem.machine.metrics/v* schema string in the docs matches the
#      single source of truth, MetricsSnapshot::kSchema in
#      src/core/metrics.hpp;
#   5. docs/ARCHITECTURE.md covers EVERY src/ subdirectory;
#   6. the serving/traffic layer is documented end to end: EXPERIMENTS.md
#      has a T1 section, docs/MODEL.md documents the traffic metrics
#      section, and the T1 bench binary is referenced from the docs;
#   7. the low-write suite is documented end to end: EXPERIMENTS.md has a
#      W1 section, docs/MODEL.md documents the low-write cost model and the
#      metrics "lowwrite" section, and ARCHITECTURE.md covers the suite's
#      code paths.
#
# Scope: the maintained doc set (README, DESIGN, EXPERIMENTS, docs/*).
# CHANGES.md / ISSUE.md / ROADMAP.md are historical logs and exempt.
#
# Usage: scripts/check_docs.sh [build-dir]     (default: build)
set -euo pipefail

REPO="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${1:-build}"
# Accept absolute, cwd-relative (how ci_sanitize.sh invokes cmake), or
# repo-relative build dirs.
if [[ "$BUILD_DIR" != /* ]]; then
  if [[ -d "$BUILD_DIR" ]]; then BUILD_DIR="$(cd "$BUILD_DIR" && pwd)"
  else BUILD_DIR="$REPO/$BUILD_DIR"; fi
fi

DOCS=(
  "$REPO/README.md"
  "$REPO/DESIGN.md"
  "$REPO/EXPERIMENTS.md"
  "$REPO/docs/MODEL.md"
  "$REPO/docs/ARCHITECTURE.md"
)

fail=0
err() { echo "check_docs FAIL: $*" >&2; fail=1; }

for d in "${DOCS[@]}"; do
  [[ -f "$d" ]] || err "doc missing: ${d#"$REPO"/}"
done

if [[ ! -d "$BUILD_DIR/bench" ]]; then
  err "build dir $BUILD_DIR has no bench/ — build the tree first"
  exit 1
fi

# --- 1. bench binaries -----------------------------------------------------
# Binary names follow bench_<letter><digits>_<suffix> (bench_e1_merge,
# bench_m0_overhead, ...); the pattern deliberately misses bench_common.hpp
# and bench_output.txt.
mapfile -t bench_refs < <(grep -hoE 'bench_[a-z][0-9]+_[a-z_]+' "${DOCS[@]}" | sort -u)
[[ ${#bench_refs[@]} -gt 0 ]] || err "no bench binary references found in docs (pattern broke?)"
for b in "${bench_refs[@]}"; do
  [[ -x "$BUILD_DIR/bench/$b" ]] || err "docs reference $b but $BUILD_DIR/bench/$b is not built"
done

# --- 2. script paths -------------------------------------------------------
mapfile -t script_refs < <(grep -hoE 'scripts/[A-Za-z0-9_]+\.sh' "${DOCS[@]}" | sort -u)
for s in "${script_refs[@]}"; do
  [[ -x "$REPO/$s" ]] || err "docs reference $s but it does not exist (or is not executable)"
done

# --- 3. example / tool sources ---------------------------------------------
mapfile -t src_refs < <(grep -hoE '(examples|tools)/[A-Za-z0-9_]+\.(cpp|hpp)' "${DOCS[@]}" | sort -u)
for f in "${src_refs[@]}"; do
  [[ -f "$REPO/$f" ]] || err "docs reference $f but it does not exist"
done

# --- 4. metrics schema string ----------------------------------------------
schema="$(grep -oE 'aem\.machine\.metrics/v[0-9]+' "$REPO/src/core/metrics.hpp" | head -1)"
[[ -n "$schema" ]] || { err "cannot find kSchema in src/core/metrics.hpp"; exit 1; }
while read -r ref; do
  [[ "$ref" == "$schema" ]] || err "docs mention schema $ref but code says $schema"
done < <(grep -hoE 'aem\.machine\.metrics/v[0-9]+' "${DOCS[@]}" | sort -u)

# --- 5. ARCHITECTURE.md covers every src/ subdirectory ----------------------
for dir in "$REPO"/src/*/; do
  name="$(basename "$dir")"
  grep -q "src/$name" "$REPO/docs/ARCHITECTURE.md" ||
    err "docs/ARCHITECTURE.md does not cover src/$name"
done

# --- 6. serving/traffic layer documented end to end --------------------------
# A doc section can rot away entirely (deleted in a refactor) without any
# reference above breaking; pin the load-bearing traffic docs explicitly.
grep -qE '^## T1' "$REPO/EXPERIMENTS.md" ||
  err "EXPERIMENTS.md has no '## T1' section for the traffic bench"
grep -q 'Request-stream traffic' "$REPO/docs/MODEL.md" ||
  err "docs/MODEL.md lost its request-stream traffic section"
grep -q '"traffic"' "$REPO/docs/MODEL.md" ||
  err "docs/MODEL.md does not document the metrics \"traffic\" section"
grep -q 'bench_t1_traffic' "$REPO/EXPERIMENTS.md" ||
  err "EXPERIMENTS.md does not reference bench_t1_traffic"
grep -q 'src/traffic' "$REPO/docs/ARCHITECTURE.md" ||
  err "docs/ARCHITECTURE.md does not cover src/traffic"

# --- 7. low-write suite documented end to end --------------------------------
grep -qE '^## W1' "$REPO/EXPERIMENTS.md" ||
  err "EXPERIMENTS.md has no '## W1' section for the low-write bench"
grep -q 'Low-write' "$REPO/docs/MODEL.md" ||
  err "docs/MODEL.md lost its low-write suite section"
grep -q '"lowwrite"' "$REPO/docs/MODEL.md" ||
  err "docs/MODEL.md does not document the metrics \"lowwrite\" section"
grep -q 'bench_w1_lowwrite' "$REPO/EXPERIMENTS.md" ||
  err "EXPERIMENTS.md does not reference bench_w1_lowwrite"
grep -q 'lowwrite_samplesort' "$REPO/docs/ARCHITECTURE.md" ||
  err "docs/ARCHITECTURE.md does not cover the low-write samplesort path"

if [[ $fail -ne 0 ]]; then
  echo "check_docs: FAILED" >&2
  exit 1
fi
echo "check_docs passed: ${#bench_refs[@]} bench binaries, ${#script_refs[@]} scripts," \
     "${#src_refs[@]} example/tool sources, schema $schema, all src/ subdirs covered," \
     "traffic layer documented, low-write suite documented"
