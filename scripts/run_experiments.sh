#!/usr/bin/env bash
# Regenerates every experiment table (E1-E10, A1-A2) and collects CSVs.
#
# Usage: scripts/run_experiments.sh [build-dir] [out-dir] [--full]
set -euo pipefail

BUILD_DIR="${1:-build}"
OUT_DIR="${2:-results}"
FULL_FLAG="${3:-}"

mkdir -p "$OUT_DIR"

for bench in "$BUILD_DIR"/bench/bench_*; do
  [[ -f "$bench" && -x "$bench" ]] || continue
  name="$(basename "$bench")"
  echo "=== running $name ==="
  if [[ "$name" == "bench_e10_ablation" ]]; then
    # google-benchmark binary: no custom flags.
    "$bench" | tee "$OUT_DIR/$name.txt"
  else
    "$bench" --csv="$OUT_DIR/$name.csv" $FULL_FLAG | tee "$OUT_DIR/$name.txt"
  fi
  echo
done

echo "All experiment outputs are in $OUT_DIR/"
