#!/usr/bin/env bash
# Regenerates every experiment table (E1-E10, A1-A2, M0, R1, C1, S1, K1,
# F1, T1, W1) and
# collects CSVs plus machine-metrics JSON snapshots (schema
# aem.machine.metrics/v8, one JSON object per line in
# $OUT_DIR/<bench>.metrics.jsonl).
#
# Usage: scripts/run_experiments.sh [build-dir] [out-dir] [--full]
#
# Parallelism: AEM_JOBS=N runs each bench's sweep grid on N worker threads
# (0 = one per hardware thread).  Outputs are byte-identical for every N —
# the harness contract, enforced by scripts/check_jobs_determinism.sh — so
# cranking AEM_JOBS only changes the wall clock.
set -euo pipefail

BUILD_DIR="${1:-build}"
OUT_DIR="${2:-results}"
FULL_FLAG="${3:-}"
JOBS="${AEM_JOBS:-1}"

mkdir -p "$OUT_DIR"

for bench in "$BUILD_DIR"/bench/bench_*; do
  [[ -f "$bench" && -x "$bench" ]] || continue
  name="$(basename "$bench")"
  echo "=== running $name ==="
  if [[ "$name" == "bench_e10_ablation" ]]; then
    # google-benchmark binary: accepts (and ignores) --jobs, no other
    # custom flags.
    "$bench" | tee "$OUT_DIR/$name.txt"
  else
    "$bench" --csv="$OUT_DIR/$name.csv" \
             --metrics="$OUT_DIR/$name.metrics.jsonl" \
             --jobs="$JOBS" \
             $FULL_FLAG | tee "$OUT_DIR/$name.txt"
  fi
  echo
done

# Sanity-check the collected metrics: every line must be a JSON object of
# the expected schema (python3 is present on any box that runs these
# scripts; skip quietly if not).
if command -v python3 >/dev/null 2>&1; then
  python3 - "$OUT_DIR" <<'EOF'
import json, pathlib, sys
out = pathlib.Path(sys.argv[1])
FAULT_KEYS = {"enabled", "seed", "read_fault_rate", "silent_write_rate",
              "torn_write_rate", "endurance", "spare_blocks", "max_retries",
              "verify_writes", "checksum_reads", "max_cost", "max_ios",
              "injected", "recovery"}
CACHE_KEYS = {"enabled", "policy", "capacity_blocks", "clean_window",
              "read_hits", "read_misses", "write_hits", "write_misses",
              "evictions_clean", "evictions_dirty", "write_backs", "flushes",
              "invalidated_dirty", "resident", "resident_dirty"}
SHARD_KEYS = {"enabled", "placement", "devices", "chunk_blocks", "total",
              "wear_spread", "per_device"}
SHARD_DEV_KEYS = {"name", "memory_elems", "block_elems", "write_cost",
                  "amplification", "io", "wear"}
STORE_KEYS = {"enabled", "index", "records", "log_blocks", "payload_words",
              "payload_blocks", "index_bits", "index_bits_per_page", "gets",
              "get_hits", "get_log_reads", "get_payload_reads",
              "max_get_log_reads", "scans", "scan_records", "puts",
              "put_hits", "put_log_reads", "put_writes", "orphaned_words",
              "build"}
RELIABILITY_KEYS = {"enabled", "crash_after_writes", "crashes",
                    "retry_attempts", "backoff_ios", "recovery", "outages"}
OUTAGE_KEYS = {"name", "device", "down_at", "up_at", "down_now",
               "wait_rounds", "backoff_ios", "failed_reads", "queued_writes",
               "drained_writes", "pending_writes"}
TRAFFIC_KEYS = {"enabled", "dist", "generated", "served", "rejected",
                "rejection_rate", "gets", "puts", "scans", "io", "q",
                "imbalance", "wear_horizon", "windows", "q_budget"}
LOWWRITE_KEYS = {"enabled", "family", "variant", "n", "io", "baseline",
                 "wear_horizon", "baseline_wear_horizon", "absorbed_groups",
                 "q_winner", "writes_winner"}
total = 0
faulty_runs = 0
cached_runs = 0
sharded_runs = 0
store_runs = 0
reliability_runs = 0
traffic_runs = 0
lowwrite_runs = 0
for f in sorted(out.glob("*.metrics.jsonl")):
    for i, line in enumerate(f.read_text().splitlines(), 1):
        snap = json.loads(line)
        assert snap.get("schema") == "aem.machine.metrics/v8", \
            f"{f.name}:{i}: unexpected schema {snap.get('schema')!r}"
        faults = snap.get("faults")
        assert isinstance(faults, dict) and FAULT_KEYS <= faults.keys(), \
            f"{f.name}:{i}: malformed faults section {faults!r}"
        cache = snap.get("cache")
        assert isinstance(cache, dict) and CACHE_KEYS <= cache.keys(), \
            f"{f.name}:{i}: malformed cache section {cache!r}"
        shard = snap.get("sharding")
        assert isinstance(shard, dict) and SHARD_KEYS <= shard.keys(), \
            f"{f.name}:{i}: malformed sharding section {shard!r}"
        if shard["enabled"]:
            sharded_runs += 1
            assert shard["devices"] > 0 and \
                shard["devices"] == len(shard["per_device"]), \
                f"{f.name}:{i}: sharding device count mismatch"
            assert all(SHARD_DEV_KEYS <= d.keys()
                       for d in shard["per_device"]), \
                f"{f.name}:{i}: malformed per_device row"
            # Device conservation: summed native transfers must equal the
            # facade totals the section reports (docs/MODEL.md section 13).
            for k in ("reads", "writes"):
                assert sum(d["io"][k] for d in shard["per_device"]) == \
                    shard["total"][k], \
                    f"{f.name}:{i}: per-device {k} do not sum to the total"
        if cache["enabled"]:
            cached_runs += 1
            # Deferred writes must have been flushed before the snapshot
            # was taken, or Q under-reports the algorithm's writes.
            assert cache["resident_dirty"] == 0, \
                f"{f.name}:{i}: snapshot taken with unflushed dirty blocks"
        store = snap.get("store")
        assert isinstance(store, dict) and STORE_KEYS <= store.keys(), \
            f"{f.name}:{i}: malformed store section {store!r}"
        if store["enabled"]:
            store_runs += 1
            assert store["index"] in ("fence", "compact"), \
                f"{f.name}:{i}: unknown store index {store['index']!r}"
            assert {"reads", "writes", "cost"} <= store["build"].keys(), \
                f"{f.name}:{i}: malformed store build section"
        rel = snap.get("reliability")
        assert isinstance(rel, dict) and RELIABILITY_KEYS <= rel.keys(), \
            f"{f.name}:{i}: malformed reliability section {rel!r}"
        assert {"scans", "reads", "writes", "cost"} <= \
            rel["recovery"].keys(), \
            f"{f.name}:{i}: malformed reliability recovery section"
        assert all(OUTAGE_KEYS <= o.keys() for o in rel["outages"]), \
            f"{f.name}:{i}: malformed outage row"
        if rel["enabled"]:
            reliability_runs += 1
        else:
            # The zero-cost contract: an idle reliability layer reports all
            # zeros, never residue from another run.
            assert rel["crashes"] == 0 and rel["backoff_ios"] == 0 and \
                rel["recovery"]["scans"] == 0 and not rel["outages"], \
                f"{f.name}:{i}: disabled reliability section has residue"
        traffic = snap.get("traffic")
        assert isinstance(traffic, dict) and TRAFFIC_KEYS <= traffic.keys(), \
            f"{f.name}:{i}: malformed traffic section {traffic!r}"
        assert {"reads", "writes", "cost"} <= traffic["io"].keys(), \
            f"{f.name}:{i}: malformed traffic io section"
        assert {"p50", "p99", "p999", "max", "mean"} <= \
            traffic["q"].keys(), \
            f"{f.name}:{i}: malformed traffic q section"
        if traffic["enabled"]:
            traffic_runs += 1
            # Admission books must balance: every generated request was
            # either served (and charged into the histogram) or rejected
            # (and charged nothing).
            assert traffic["served"] + traffic["rejected"] == \
                traffic["generated"], \
                f"{f.name}:{i}: served + rejected != generated"
            q = traffic["q"]
            assert q["p50"] <= q["p99"] <= q["p999"] <= q["max"], \
                f"{f.name}:{i}: traffic Q percentiles not monotone"
        else:
            # The zero-cost contract: an idle traffic section reports all
            # zeros, never residue from another run.
            assert traffic["generated"] == 0 and \
                traffic["io"]["cost"] == 0, \
                f"{f.name}:{i}: disabled traffic section has residue"
        lowwrite = snap.get("lowwrite")
        assert isinstance(lowwrite, dict) and \
            LOWWRITE_KEYS <= lowwrite.keys(), \
            f"{f.name}:{i}: malformed lowwrite section {lowwrite!r}"
        assert {"reads", "writes", "cost"} <= lowwrite["io"].keys(), \
            f"{f.name}:{i}: malformed lowwrite io section"
        assert {"reads", "writes", "cost"} <= lowwrite["baseline"].keys(), \
            f"{f.name}:{i}: malformed lowwrite baseline section"
        if lowwrite["enabled"]:
            lowwrite_runs += 1
            assert lowwrite["family"] in ("sort", "pq", "puts"), \
                f"{f.name}:{i}: unknown lowwrite family {lowwrite['family']!r}"
            assert lowwrite["q_winner"] in ("variant", "baseline", "tie") \
                and lowwrite["writes_winner"] in ("variant", "baseline",
                                                  "tie"), \
                f"{f.name}:{i}: malformed lowwrite winner verdicts"
        else:
            # The zero-cost contract: an idle lowwrite section reports all
            # zeros, never residue from another run.
            assert lowwrite["n"] == 0 and lowwrite["io"]["cost"] == 0 and \
                lowwrite["baseline"]["cost"] == 0 and \
                lowwrite["family"] == "", \
                f"{f.name}:{i}: disabled lowwrite section has residue"
        if faults["enabled"]:
            faulty_runs += 1
        total += 1
# bench_r1_faults must have produced fault-enabled snapshots with live
# injected/recovery counters.
r1 = out / "bench_r1_faults.metrics.jsonl"
assert r1.exists(), "bench_r1_faults produced no metrics file"
r1_active = [json.loads(l) for l in r1.read_text().splitlines()
             if json.loads(l)["faults"]["enabled"]]
assert r1_active, "bench_r1_faults: no fault-enabled snapshots"
assert any(s["faults"]["injected"]["read"] > 0 or
           s["faults"]["recovery"]["write_retries"] > 0
           for s in r1_active), \
    "bench_r1_faults: fault schedules never fired"
# bench_c1_cache must have produced cache-enabled snapshots whose pools
# actually absorbed traffic (hits + coalesced writes).
c1 = out / "bench_c1_cache.metrics.jsonl"
assert c1.exists(), "bench_c1_cache produced no metrics file"
c1_active = [json.loads(l) for l in c1.read_text().splitlines()
             if json.loads(l)["cache"]["enabled"]]
assert c1_active, "bench_c1_cache: no cache-enabled snapshots"
assert any(s["cache"]["read_hits"] > 0 and s["cache"]["write_hits"] > 0
           for s in c1_active), \
    "bench_c1_cache: the pool never absorbed any traffic"
# bench_s1_shard must have produced sharding-enabled snapshots with live
# per-device traffic and a computed wear-spread ratio.
s1 = out / "bench_s1_shard.metrics.jsonl"
assert s1.exists(), "bench_s1_shard produced no metrics file"
s1_active = [json.loads(l) for l in s1.read_text().splitlines()
             if json.loads(l)["sharding"]["enabled"]]
assert s1_active, "bench_s1_shard: no sharding-enabled snapshots"
assert any(s["sharding"]["devices"] > 1 and
           s["sharding"]["total"]["writes"] > 0 and
           s["sharding"]["wear_spread"] >= 1.0
           for s in s1_active), \
    "bench_s1_shard: no multi-device snapshot with live write traffic"
# bench_k1_store must have produced store-enabled snapshots of BOTH index
# flavors, with live serving traffic and real construction writes.
k1 = out / "bench_k1_store.metrics.jsonl"
assert k1.exists(), "bench_k1_store produced no metrics file"
k1_active = [json.loads(l) for l in k1.read_text().splitlines()
             if json.loads(l)["store"]["enabled"]]
assert k1_active, "bench_k1_store: no store-enabled snapshots"
assert {"fence", "compact"} <= {s["store"]["index"] for s in k1_active}, \
    "bench_k1_store: missing an index flavor"
assert all(s["store"]["gets"] > 0 and s["store"]["index_bits"] > 0
           for s in k1_active), \
    "bench_k1_store: a store snapshot served no gets or has an empty index"
assert any(s["store"]["build"]["writes"] > 0 for s in k1_active), \
    "bench_k1_store: construction reported zero writes"
# bench_f1_recovery must have produced reliability-enabled snapshots: crash
# episodes with a billed recovery scan, and an outage row whose deferred
# writes all drained.
f1 = out / "bench_f1_recovery.metrics.jsonl"
assert f1.exists(), "bench_f1_recovery produced no metrics file"
f1_active = [json.loads(l) for l in f1.read_text().splitlines()
             if json.loads(l)["reliability"]["enabled"]]
assert f1_active, "bench_f1_recovery: no reliability-enabled snapshots"
assert any(s["reliability"]["crashes"] == 1 and
           s["reliability"]["recovery"]["scans"] == 1 and
           s["reliability"]["recovery"]["reads"] > 0
           for s in f1_active), \
    "bench_f1_recovery: no crash episode with a billed recovery scan"
assert any(o["drained_writes"] > 0 and
           o["drained_writes"] == o["queued_writes"] and
           o["pending_writes"] == 0
           for s in f1_active for o in s["reliability"]["outages"]), \
    "bench_f1_recovery: no outage snapshot with fully drained writes"
# bench_t1_traffic must have produced traffic-enabled snapshots with live
# serving traffic, and its admission-control cells must actually have
# exercised the per-window budget (some rejections with charged Q below the
# open run's).
t1 = out / "bench_t1_traffic.metrics.jsonl"
assert t1.exists(), "bench_t1_traffic produced no metrics file"
t1_active = [json.loads(l) for l in t1.read_text().splitlines()
             if json.loads(l)["traffic"]["enabled"]]
assert t1_active, "bench_t1_traffic: no traffic-enabled snapshots"
assert all(s["traffic"]["served"] > 0 and s["traffic"]["io"]["cost"] > 0
           for s in t1_active), \
    "bench_t1_traffic: a traffic snapshot served nothing or charged no Q"
assert any(s["traffic"]["rejected"] > 0 and s["traffic"]["q_budget"] > 0
           for s in t1_active), \
    "bench_t1_traffic: the admission budget never rejected a batch"
# bench_w1_lowwrite must have produced lowwrite-enabled snapshots covering
# all three families, with the variant strictly winning on writes somewhere
# (the whole point of the suite) and the puts family absorbing page groups.
w1 = out / "bench_w1_lowwrite.metrics.jsonl"
assert w1.exists(), "bench_w1_lowwrite produced no metrics file"
w1_active = [json.loads(l) for l in w1.read_text().splitlines()
             if json.loads(l)["lowwrite"]["enabled"]]
assert w1_active, "bench_w1_lowwrite: no lowwrite-enabled snapshots"
assert {"sort", "pq", "puts"} <= \
    {s["lowwrite"]["family"] for s in w1_active}, \
    "bench_w1_lowwrite: missing a suite family"
assert any(s["lowwrite"]["writes_winner"] == "variant"
           for s in w1_active), \
    "bench_w1_lowwrite: no cell where the variant wins on writes"
assert any(s["lowwrite"]["family"] == "puts" and
           s["lowwrite"]["absorbed_groups"] > 0
           for s in w1_active), \
    "bench_w1_lowwrite: batched puts never absorbed a page group"
print(f"validated {total} machine-metrics snapshots "
      f"({faulty_runs} fault-enabled, {cached_runs} cache-enabled, "
      f"{sharded_runs} sharding-enabled, {store_runs} store-enabled, "
      f"{reliability_runs} reliability-enabled, "
      f"{traffic_runs} traffic-enabled, "
      f"{lowwrite_runs} lowwrite-enabled) "
      f"across {len(list(out.glob('*.metrics.jsonl')))} files")
EOF
fi

echo "All experiment outputs are in $OUT_DIR/"
