#!/usr/bin/env bash
# ASan + UBSan build-and-ctest job: builds the whole tree with
# -fsanitize=address,undefined (-fno-sanitize-recover=all, so any finding is
# a hard failure) and runs the full test suite.  This keeps the ledger /
# reservation lifetime fixes honest: a double-release, use-after-move, or
# signed overflow in the accounting layer fails this job even when the
# release build happens to pass.
#
# Usage: scripts/ci_sanitize.sh [build-dir]
set -euo pipefail

BUILD_DIR="${1:-build-asan}"
JOBS="$(nproc 2>/dev/null || echo 4)"

cmake -B "$BUILD_DIR" -S "$(dirname "$0")/.." \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DAEM_SANITIZE=ON
cmake --build "$BUILD_DIR" -j "$JOBS"

# halt_on_error: first ASan report aborts; UBSan already aborts via
# -fno-sanitize-recover=all.
ASAN_OPTIONS="halt_on_error=1:detect_leaks=1" \
UBSAN_OPTIONS="print_stacktrace=1" \
  ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS"

echo "sanitizer job passed (ASan + UBSan clean)"
