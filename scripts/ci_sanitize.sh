#!/usr/bin/env bash
# ASan + UBSan build-and-ctest job: builds the whole tree with
# -fsanitize=address,undefined (-fno-sanitize-recover=all, so any finding is
# a hard failure) and runs the full test suite.  This keeps the ledger /
# reservation lifetime fixes honest: a double-release, use-after-move, or
# signed overflow in the accounting layer fails this job even when the
# release build happens to pass.
#
# Usage: scripts/ci_sanitize.sh [build-dir]
set -euo pipefail

BUILD_DIR="${1:-build-asan}"
JOBS="$(nproc 2>/dev/null || echo 4)"

cmake -B "$BUILD_DIR" -S "$(dirname "$0")/.." \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DAEM_SANITIZE=ON
cmake --build "$BUILD_DIR" -j "$JOBS"

# halt_on_error: first ASan report aborts; UBSan already aborts via
# -fno-sanitize-recover=all.
ASAN_OPTIONS="halt_on_error=1:detect_leaks=1" \
UBSAN_OPTIONS="print_stacktrace=1" \
  ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS"

# Second pass: the fault-injection run.  AEM_FAULT_RATE cranks the fault
# schedules of the fault-aware suite tests (test_recovery builds its
# FaultConfig via from_env), so the recovery layer's retry/remap/corruption
# paths — the code most likely to hide a use-after-move or off-by-one in
# byte twiddling — execute under ASan+UBSan too.  Exact-cost tests build
# their configs directly and are unaffected.
echo "=== fault-injection pass (AEM_FAULT_RATE=0.02) ==="
ASAN_OPTIONS="halt_on_error=1:detect_leaks=1" \
UBSAN_OPTIONS="print_stacktrace=1" \
AEM_FAULT_RATE=0.02 AEM_FAULT_SEED=7 \
  ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS"

# Sharding pass: bench_s1_shard exercises the ShardedMachine fan-out
# (per-device Machine lifetimes, amplified native transfers, wear vectors,
# metrics aggregation) far harder than the unit tests; its internal guards
# (facade invariance, device conservation, wear spread) double as asserts
# under the sanitizers.
echo "=== sharding pass (bench_s1_shard under ASan+UBSan) ==="
ASAN_OPTIONS="halt_on_error=1:detect_leaks=1" \
UBSAN_OPTIONS="print_stacktrace=1" \
  "$BUILD_DIR/bench/bench_s1_shard" --jobs=2 > /dev/null
echo "bench_s1_shard clean under ASan+UBSan"

# Store pass: the KV store's bit-packed Elias-Fano index, payload gather,
# and probe walks are exactly the byte-twiddling code the sanitizers exist
# for.  Run the store gtests under an injected fault schedule (the store
# must round-trip through the recovery layer) and the K1 bench with its
# internal guards as asserts.
echo "=== store pass (store tests + bench_k1_store under ASan+UBSan) ==="
ASAN_OPTIONS="halt_on_error=1:detect_leaks=1" \
UBSAN_OPTIONS="print_stacktrace=1" \
AEM_FAULT_RATE=0.02 AEM_FAULT_SEED=11 \
  "$BUILD_DIR/tests/aem_tests" --gtest_filter='EliasFano*:KvStore*' > /dev/null
ASAN_OPTIONS="halt_on_error=1:detect_leaks=1" \
UBSAN_OPTIONS="print_stacktrace=1" \
  "$BUILD_DIR/bench/bench_k1_store" --jobs=2 > /dev/null
echo "store tests + bench_k1_store clean under ASan+UBSan"

# Crash-injection pass: cut a durable store build at an env-chosen write
# (CrashEnvRecoveryTest builds its FaultConfig via from_env and must recover
# to a byte-identical store), then run bench_f1_recovery, whose internal
# guards (recovered-store identity, recovery write-bill bound, outage
# accounting) double as asserts — manifest recovery and the outage
# queue/drain path are exactly where a torn-state bug would hide from the
# release build.
echo "=== crash-injection pass (AEM_CRASH_AFTER_WRITES=45 + bench_f1_recovery under ASan+UBSan) ==="
ASAN_OPTIONS="halt_on_error=1:detect_leaks=1" \
UBSAN_OPTIONS="print_stacktrace=1" \
AEM_CRASH_AFTER_WRITES=45 \
  "$BUILD_DIR/tests/aem_tests" \
  --gtest_filter='CrashEnvRecoveryTest.*' > /dev/null
ASAN_OPTIONS="halt_on_error=1:detect_leaks=1" \
UBSAN_OPTIONS="print_stacktrace=1" \
  "$BUILD_DIR/bench/bench_f1_recovery" --jobs=2 > /dev/null
echo "crash-injection pass clean (env-armed cut recovered; bench_f1_recovery guards hold)"

# Traffic pass: the TrafficEngine's per-request cost deltas, histogram
# bucketing, and admission bookkeeping sit on top of every other layer, so
# run the traffic gtests under an env-armed fault schedule (requests must
# survive the recovery layer's retries with the books still balancing) and
# the T1 bench, whose serial sections arm a device outage window and whose
# internal guards (stream identity, placement invariance, charge-nothing
# rejections, degraded-serving cost accounting) double as asserts.
echo "=== traffic pass (traffic tests + bench_t1_traffic under ASan+UBSan) ==="
ASAN_OPTIONS="halt_on_error=1:detect_leaks=1" \
UBSAN_OPTIONS="print_stacktrace=1" \
AEM_FAULT_RATE=0.02 AEM_FAULT_SEED=13 \
  "$BUILD_DIR/tests/aem_tests" \
  --gtest_filter='QHistogram*:RequestGen*:TrafficEngine*' > /dev/null
ASAN_OPTIONS="halt_on_error=1:detect_leaks=1" \
UBSAN_OPTIONS="print_stacktrace=1" \
  "$BUILD_DIR/bench/bench_t1_traffic" --jobs=2 > /dev/null
echo "traffic tests + bench_t1_traffic clean under ASan+UBSan"

# Batch pass: Machine::submit's bulk_charge, the ExtArray multi-block
# span plumbing, the cache's grouped flush runs, and the KV store's
# chunked scan buffers all move whole spans at once — exactly where an
# off-by-one block count or a stale scratch-vector reuse would corrupt
# memory without failing a release-build equality check.  Run the batch
# gtests under ASan+UBSan, then bench_t1_traffic (whose per-request
# batches now settle through the batched engine path) and bench_m0 with
# its batch byte-identity guards as asserts (speedup floors zeroed: a
# sanitized build proves memory safety, not throughput).
echo "=== batch pass (submit/search tests + bench_t1_traffic + bench_m0 guards under ASan+UBSan) ==="
ASAN_OPTIONS="halt_on_error=1:detect_leaks=1" \
UBSAN_OPTIONS="print_stacktrace=1" \
  "$BUILD_DIR/tests/aem_tests" \
  --gtest_filter='Submit*:Eytzinger*:FastDiv*:ShardRoute*' > /dev/null
ASAN_OPTIONS="halt_on_error=1:detect_leaks=1" \
UBSAN_OPTIONS="print_stacktrace=1" \
  "$BUILD_DIR/bench/bench_t1_traffic" --jobs=2 > /dev/null
ASAN_OPTIONS="halt_on_error=1:detect_leaks=1" \
UBSAN_OPTIONS="print_stacktrace=1" \
  "$BUILD_DIR/bench/bench_m0_overhead" \
  --min-speedup=0 --min-kernel-speedup=0 --min-batch-speedup=0 > /dev/null
echo "batch pass clean (submit/search tests, bench_t1_traffic, bench_m0 byte-identity guards)"

# Low-write pass: the read-favoring samplesort's windowed distribution, the
# buffered PQ's widened merge cascade, and the store's page-grouped batch
# puts all juggle bounded resident sets and saturating size arithmetic —
# exactly where a reservation-lifetime slip or an overflow-adjacent index
# would corrupt memory while the release build's charge identities still
# hold.  Run the low-write gtests (incl. the SortBudget saturation edges and
# the degenerate mergesort/percentile boundary sweeps) under ASan+UBSan,
# then bench_w1_lowwrite with its internal guards as asserts.
echo "=== low-write pass (lowwrite tests + bench_w1_lowwrite under ASan+UBSan) ==="
ASAN_OPTIONS="halt_on_error=1:detect_leaks=1" \
UBSAN_OPTIONS="print_stacktrace=1" \
  "$BUILD_DIR/tests/aem_tests" \
  --gtest_filter='MulSat*:SortBudgetTest.*:LowWriteSampleSort*:BufferedPq*:KvStorePutBatch*:QHistogramTest.PercentileBoundariesPinned:MergeSortTest.DegenerateBaseBoundary:MergeSortTest.MinimumFanoutLadder' > /dev/null
ASAN_OPTIONS="halt_on_error=1:detect_leaks=1" \
UBSAN_OPTIONS="print_stacktrace=1" \
  "$BUILD_DIR/bench/bench_w1_lowwrite" --jobs=2 > /dev/null
echo "lowwrite tests + bench_w1_lowwrite clean under ASan+UBSan"

# Third pass: docs consistency.  The sanitize build compiles every bench
# target, so the freshly built tree is exactly what the docs checker needs
# to verify that documented binaries/scripts/schema strings are real.
echo "=== docs consistency pass (scripts/check_docs.sh) ==="
"$(dirname "$0")/check_docs.sh" "$BUILD_DIR"

# Fourth pass: ThreadSanitizer over the parallel sweep harness.  TSan cannot
# combine with ASan, so this is a separate build; it runs the harness
# determinism tests (worker pool + slot writes + exception funnel) and one
# real multi-threaded bench sweep, the code paths with actual cross-thread
# traffic.
TSAN_BUILD_DIR="${BUILD_DIR}-tsan"
echo "=== ThreadSanitizer pass (build dir $TSAN_BUILD_DIR) ==="
cmake -B "$TSAN_BUILD_DIR" -S "$(dirname "$0")/.." \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DAEM_SANITIZE_THREAD=ON
cmake --build "$TSAN_BUILD_DIR" -j "$JOBS" --target aem_tests bench_e3_sort_shootout
TSAN_OPTIONS="halt_on_error=1" \
  "$TSAN_BUILD_DIR/tests/aem_tests" --gtest_filter='ParallelSweep*'
TSAN_OPTIONS="halt_on_error=1" \
  "$TSAN_BUILD_DIR/bench/bench_e3_sort_shootout" --jobs=4 > /dev/null
echo "ThreadSanitizer pass clean (harness tests + bench_e3 --jobs=4 smoke)"

echo "sanitizer job passed (ASan + UBSan clean, incl. fault-injection, sharding, store, crash-injection, traffic, batch, low-write, docs, and TSan passes)"
