#!/usr/bin/env bash
# The harness's observable contract, checked end-to-end on real binaries:
# every experiment's stdout, CSV, and metrics log must be BYTE-identical at
# --jobs=1 and --jobs=4 (docs/MODEL.md section 12).  bench_m0_overhead is
# excluded — it is the one bench whose tables legitimately contain wall-clock
# timings — and bench_e10_ablation is excluded because its google-benchmark
# half prints timings too.
#
# Usage: scripts/check_jobs_determinism.sh [build-dir] [bench ...]
#   With no bench names, checks a representative fast subset.
set -euo pipefail

BUILD_DIR="${1:-build}"
shift || true
BENCHES=("$@")
if [[ ${#BENCHES[@]} -eq 0 ]]; then
  BENCHES=(bench_e1_merge bench_e3_sort_shootout bench_e5_crossover
           bench_e8_counting bench_r1_faults bench_c1_cache bench_s1_shard
           bench_k1_store bench_f1_recovery bench_t1_traffic
           bench_w1_lowwrite)
fi

WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

fail=0
for name in "${BENCHES[@]}"; do
  bin="$BUILD_DIR/bench/$name"
  if [[ ! -x "$bin" ]]; then
    echo "SKIP $name (not built)"
    continue
  fi
  for jobs in 1 4; do
    "$bin" --jobs="$jobs" \
           --csv="$WORK/$name.$jobs.csv" \
           --metrics="$WORK/$name.$jobs.jsonl" \
           > "$WORK/$name.$jobs.out"
  done
  ok=1
  for ext in csv jsonl out; do
    if ! cmp -s "$WORK/$name.1.$ext" "$WORK/$name.4.$ext"; then
      echo "FAIL $name: $ext differs between --jobs=1 and --jobs=4"
      diff "$WORK/$name.1.$ext" "$WORK/$name.4.$ext" | head -10 || true
      ok=0
      fail=1
    fi
  done
  [[ $ok -eq 1 ]] && echo "OK   $name (stdout, csv, metrics byte-identical)"
done

# Batched-path phase: bench_t1_traffic settles its request batches through
# Machine::submit (MODEL.md section 17), and bench_w1_lowwrite drives its
# store puts through the same path (io_batch_blocks > 1), so their batch
# sizing must never leak into the output.  Deeper jobs fan-out than the
# sweep above: 1 vs 4 vs 16.
for batched in bench_t1_traffic bench_w1_lowwrite; do
  bin="$BUILD_DIR/bench/$batched"
  if [[ ! -x "$bin" ]]; then
    echo "SKIP $batched 1/4/16 phase (not built)"
    continue
  fi
  for jobs in 1 4 16; do
    "$bin" --jobs="$jobs" \
           --csv="$WORK/$batched.batched.$jobs.csv" \
           --metrics="$WORK/$batched.batched.$jobs.jsonl" \
           > "$WORK/$batched.batched.$jobs.out"
  done
  ok=1
  for jobs in 4 16; do
    for ext in csv jsonl out; do
      if ! cmp -s "$WORK/$batched.batched.1.$ext" \
                  "$WORK/$batched.batched.$jobs.$ext"; then
        echo "FAIL $batched: $ext differs between --jobs=1 and --jobs=$jobs"
        diff "$WORK/$batched.batched.1.$ext" \
             "$WORK/$batched.batched.$jobs.$ext" | head -10 || true
        ok=0
        fail=1
      fi
    done
  done
  [[ $ok -eq 1 ]] && echo "OK   $batched (batched path byte-identical at --jobs=1/4/16)"
done

if [[ $fail -ne 0 ]]; then
  echo "jobs-determinism check FAILED"
  exit 1
fi
echo "jobs-determinism check passed"
