// Tests for rounds/: the Section 4 round decomposition and the Lemma 4.1
// round-based rewrite — structure validity and the constant cost factor,
// on synthetic traces and on real recorded programs.
#include <gtest/gtest.h>

#include "core/ext_array.hpp"
#include "core/machine.hpp"
#include "permute/permutation.hpp"
#include "permute/sort_permute.hpp"
#include "rounds/rounds.hpp"
#include "sort/mergesort.hpp"
#include "util/rng.hpp"

namespace {

using namespace aem;
using namespace aem::rounds;

Trace synthetic_trace(std::size_t reads, std::size_t writes) {
  Trace t;
  for (std::size_t i = 0; i < reads; ++i)
    t.add(OpKind::kRead, 0, i % 7);
  for (std::size_t i = 0; i < writes; ++i)
    t.add(OpKind::kWrite, 1, i % 5);
  return t;
}

TEST(SplitRoundsTest, RespectsBudgetAndLowerWindow) {
  Trace t = synthetic_trace(100, 30);
  const std::size_t m = 4;
  const std::uint64_t omega = 3;
  auto rounds = split_rounds(t, m, omega);
  EXPECT_TRUE(validate_rounds(t, rounds, m, omega, /*check_lower=*/true));
  // Total cost preserved.
  std::uint64_t total = 0;
  for (const auto& r : rounds) total += r.cost;
  EXPECT_EQ(total, t.cost(omega));
}

TEST(SplitRoundsTest, EmptyAndTinyTraces) {
  Trace empty;
  auto r0 = split_rounds(empty, 4, 2);
  EXPECT_TRUE(validate_rounds(empty, r0, 4, 2));
  Trace one;
  one.add(OpKind::kWrite, 0, 0);
  auto r1 = split_rounds(one, 4, 2);
  ASSERT_EQ(r1.size(), 1u);
  EXPECT_EQ(r1[0].cost, 2u);
}

TEST(SplitRoundsTest, SingleOpPerRoundWhenMIsOne) {
  // m = 1: a round holds cost <= omega, so each write is its own round.
  Trace t = synthetic_trace(0, 5);
  auto rounds = split_rounds(t, 1, 4);
  EXPECT_EQ(rounds.size(), 5u);
  EXPECT_TRUE(validate_rounds(t, rounds, 1, 4));
}

TEST(SplitRoundsTest, ValidatorCatchesCorruption) {
  Trace t = synthetic_trace(20, 5);
  auto rounds = split_rounds(t, 4, 2);
  ASSERT_GE(rounds.size(), 2u);
  auto bad = rounds;
  bad[0].cost += 1;  // wrong cost
  EXPECT_FALSE(validate_rounds(t, bad, 4, 2));
  bad = rounds;
  bad.pop_back();  // incomplete coverage
  EXPECT_FALSE(validate_rounds(t, bad, 4, 2));
  EXPECT_FALSE(validate_rounds(t, rounds, 2, 2));  // tighter budget violated
}

TEST(MakeRoundBasedTest, SyntheticCostFactorBounded) {
  Trace t = synthetic_trace(200, 50);
  const std::size_t m = 8;
  const std::uint64_t omega = 4;
  auto rb = make_round_based(t, m, omega);
  EXPECT_EQ(rb.original_cost, t.cost(omega));
  // Lemma 4.1: constant-factor increase.  Our rewrite adds at most m state
  // reads + m state writes per round against rounds of cost ~omega*(m-1):
  // factor <= 1 + (m + omega*m)/(omega*(m-1)) ~ 2 + 1/omega + slack.
  EXPECT_LE(rb.cost_factor(), 3.5);
  EXPECT_GE(rb.cost_factor(), 1.0 - 1e-9);
  // P' is round-based on a 2M machine: upper window must hold.
  EXPECT_TRUE(validate_rounds(rb.trace, rb.rounds, 2 * m, omega,
                              /*check_lower=*/false));
}

TEST(MakeRoundBasedTest, ReReadsServedFromBuffer) {
  // P writes block X then reads it twice in the same round: P' should keep
  // it in M'' and never re-read it from external memory.
  Trace t;
  t.add(OpKind::kWrite, 0, 7);
  t.add(OpKind::kRead, 0, 7);
  t.add(OpKind::kRead, 0, 7);
  auto rb = make_round_based(t, /*m=*/8, /*omega=*/2);
  EXPECT_EQ(rb.transformed.reads, 0u);
  EXPECT_EQ(rb.transformed.writes, 1u);
}

TEST(MakeRoundBasedTest, DuplicateWritesCollapse) {
  Trace t;
  t.add(OpKind::kWrite, 0, 3);
  t.add(OpKind::kWrite, 0, 3);
  t.add(OpKind::kWrite, 0, 3);
  auto rb = make_round_based(t, 8, 2);
  EXPECT_EQ(rb.transformed.writes, 1u);
}

TEST(MakeRoundBasedTest, StateIoAppearsBetweenRounds) {
  // A trace long enough for several rounds must persist/reload state.
  Trace t = synthetic_trace(300, 100);
  const std::size_t m = 4;
  auto rb = make_round_based(t, m, 2);
  std::size_t state_reads = 0, state_writes = 0;
  for (const auto& op : rb.trace.ops()) {
    if (op.array != kStateArray) continue;
    if (op.kind == OpKind::kRead) {
      ++state_reads;
    } else {
      ++state_writes;
    }
  }
  EXPECT_GT(state_writes, 0u);
  EXPECT_EQ(state_reads, state_writes);  // every persisted image reloaded
  EXPECT_EQ(state_reads % m, 0u);
}

TEST(MakeRoundBasedTest, RealSortTraceFactor) {
  // Record a real mergesort and verify the Lemma 4.1 factor is a small
  // constant on it too.
  Config cfg;
  cfg.memory_elems = 128;
  cfg.block_elems = 8;
  cfg.write_cost = 4;
  Machine mach(cfg);
  util::Rng rng(87);
  const std::size_t N = 4096;
  auto keys = util::random_keys(N, rng);
  ExtArray<std::uint64_t> in(mach, N, "in");
  in.unsafe_host_fill(keys);
  ExtArray<std::uint64_t> out(mach, N, "out");
  mach.enable_trace();
  aem_merge_sort(in, out);
  auto trace = mach.take_trace();
  ASSERT_NE(trace, nullptr);
  auto rb = make_round_based(*trace, mach.m(), mach.omega());
  EXPECT_LE(rb.cost_factor(), 3.5) << "factor=" << rb.cost_factor();
  EXPECT_TRUE(validate_rounds(rb.trace, rb.rounds, 2 * mach.m(), mach.omega(),
                              false));
}

TEST(MakeRoundBasedTest, RealPermuteTraceFactor) {
  Config cfg;
  cfg.memory_elems = 128;
  cfg.block_elems = 8;
  cfg.write_cost = 8;
  Machine mach(cfg);
  util::Rng rng(89);
  const std::size_t N = 2048;
  auto dest = perm::random(N, rng);
  ExtArray<std::uint64_t> in(mach, N, "in");
  in.unsafe_host_fill(util::distinct_keys(N, rng));
  ExtArray<std::uint64_t> out(mach, N, "out");
  mach.enable_trace();
  sort_permute(in, std::span<const std::uint64_t>(dest), out);
  auto trace = mach.take_trace();
  auto rb = make_round_based(*trace, mach.m(), mach.omega());
  EXPECT_LE(rb.cost_factor(), 3.5) << "factor=" << rb.cost_factor();
}

}  // namespace
