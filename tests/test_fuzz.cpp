// Randomized property tests ("fuzz"): the streaming primitives, merges and
// sorts are driven with randomized geometries and inputs and checked
// against host-side reference models.  Seeds are fixed, so failures are
// reproducible.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <sstream>
#include <vector>

#include "core/ext_array.hpp"
#include "core/machine.hpp"
#include "core/trace_io.hpp"
#include "io/ext_pointer_array.hpp"
#include "io/scanner.hpp"
#include "io/writer.hpp"
#include "permute/transpose.hpp"
#include "sort/merge.hpp"
#include "sort/mergesort.hpp"
#include "sort/samplesort.hpp"
#include "sort/small_sort.hpp"
#include "util/rng.hpp"

namespace {

using namespace aem;

Config cfg(std::size_t M, std::size_t B, std::uint64_t w) {
  Config c;
  c.memory_elems = M;
  c.block_elems = B;
  c.write_cost = w;
  return c;
}

TEST(FuzzScannerWriter, RandomRangesRoundTrip) {
  util::Rng rng(501);
  for (int iter = 0; iter < 60; ++iter) {
    const std::size_t B = 1 + rng.below(16);
    const std::size_t M = 8 * B + rng.below(64);
    Machine mach(cfg(M, B, 1));
    const std::size_t n = 1 + rng.below(300);
    std::vector<std::uint64_t> host(n);
    for (auto& v : host) v = rng.next();
    ExtArray<std::uint64_t> arr(mach, n, "a");
    arr.unsafe_host_fill(host);

    // Random subrange: overwrite through a Writer, mirror on the host.
    const std::size_t lo = rng.below(n + 1);
    const std::size_t hi = lo + rng.below(n - lo + 1);
    {
      Writer<std::uint64_t> w(arr, lo, hi);
      for (std::size_t i = lo; i < hi; ++i) {
        host[i] = rng.next();
        w.push(host[i]);
      }
      w.finish();
    }
    // Random subrange scan must agree with the host mirror.
    const std::size_t slo = rng.below(n + 1);
    const std::size_t shi = slo + rng.below(n - slo + 1);
    Scanner<std::uint64_t> sc(arr, slo, shi);
    for (std::size_t i = slo; i < shi; ++i)
      ASSERT_EQ(sc.next(), host[i]) << "iter " << iter << " pos " << i;
    ASSERT_TRUE(sc.done());
  }
}

TEST(FuzzScannerWriter, InterleavedWritersPreserveNeighbours) {
  // Multiple writers with adjacent unaligned ranges flushed in arbitrary
  // order must never clobber each other's data (the RMW path).
  util::Rng rng(503);
  for (int iter = 0; iter < 40; ++iter) {
    const std::size_t B = 2 + rng.below(15);
    Machine mach(cfg(16 * B, B, 1));
    const std::size_t n = 4 * B + rng.below(6 * B);
    std::vector<std::uint64_t> host(n, 7);
    ExtArray<std::uint64_t> arr(mach, n, "a");
    arr.unsafe_host_fill(host);

    // Split [0, n) into three consecutive ranges at random cut points.
    std::size_t c1 = rng.below(n + 1), c2 = rng.below(n + 1);
    if (c1 > c2) std::swap(c1, c2);
    std::vector<Writer<std::uint64_t>> writers;
    writers.emplace_back(arr, 0, c1);
    writers.emplace_back(arr, c1, c2);
    writers.emplace_back(arr, c2, n);
    std::size_t pos[3] = {0, c1, c2};
    const std::size_t end[3] = {c1, c2, n};
    // Random round-robin pushes.
    while (pos[0] < end[0] || pos[1] < end[1] || pos[2] < end[2]) {
      const std::size_t w = rng.below(3);
      if (pos[w] >= end[w]) continue;
      host[pos[w]] = rng.next();
      writers[w].push(host[pos[w]]);
      ++pos[w];
    }
    for (auto& w : writers) w.finish();
    ASSERT_EQ(arr.unsafe_host_view(), host) << "iter " << iter;
  }
}

TEST(FuzzMerge, RandomRunsAgainstStdMerge) {
  util::Rng rng(507);
  for (int iter = 0; iter < 30; ++iter) {
    const std::size_t B = 4 + rng.below(13);
    const std::size_t M = 8 * B * (1 + rng.below(4));
    const std::uint64_t w = 1 + rng.below(32);
    Machine mach(cfg(M, B, w));

    // Random runs with block-aligned begins: lengths multiple of B except
    // possibly the last, some empty.
    const std::size_t k = 1 + rng.below(12);
    std::vector<std::uint64_t> host;
    std::vector<RunBounds> bounds;
    for (std::size_t r = 0; r < k; ++r) {
      std::size_t len = rng.below(8) * B;
      if (r + 1 == k) len += rng.below(B);  // final partial block
      std::vector<std::uint64_t> run(len);
      for (auto& v : run) v = rng.below(1000);  // duplicates likely
      std::sort(run.begin(), run.end());
      bounds.push_back(RunBounds{host.size(), host.size() + len});
      host.insert(host.end(), run.begin(), run.end());
    }
    if (host.empty()) continue;
    ExtArray<std::uint64_t> in(mach, host.size(), "in");
    in.unsafe_host_fill(host);
    ExtArray<std::uint64_t> out(mach, host.size(), "out");
    merge_runs(in, std::span<const RunBounds>(bounds), out, 0,
               std::less<std::uint64_t>{});
    auto expect = host;
    std::sort(expect.begin(), expect.end());
    ASSERT_EQ(out.unsafe_host_view(), expect) << "iter " << iter;
    ASSERT_LE(mach.ledger().high_water(), M) << "iter " << iter;
  }
}

TEST(FuzzMerge, CombineAgainstHostFold) {
  // Merge with a sum-combiner vs a host map accumulation.
  util::Rng rng(509);
  for (int iter = 0; iter < 20; ++iter) {
    const std::size_t B = 8;
    Machine mach(cfg(128, B, 2));
    const std::size_t k = 1 + rng.below(6);
    std::vector<std::uint64_t> host;
    std::vector<RunBounds> bounds;
    for (std::size_t r = 0; r < k; ++r) {
      const std::size_t len = rng.below(6) * B;
      std::vector<std::uint64_t> keys(len);
      for (auto& v : keys) v = rng.below(40);
      std::sort(keys.begin(), keys.end());
      bounds.push_back(RunBounds{host.size(), host.size() + len});
      for (auto kk : keys) host.push_back((kk << 32) | 1);
    }
    if (host.empty()) continue;
    ExtArray<std::uint64_t> in(mach, host.size(), "in");
    in.unsafe_host_fill(host);
    ExtArray<std::uint64_t> out(mach, host.size(), "out");
    auto by_key = [](std::uint64_t a, std::uint64_t b) {
      return (a >> 32) < (b >> 32);
    };
    auto add = [](std::uint64_t& acc, const std::uint64_t& x) {
      acc += x & 0xffffffff;
    };
    const std::size_t written = merge_runs(
        in, std::span<const RunBounds>(bounds), out, 0, by_key, add);

    std::map<std::uint64_t, std::uint64_t> ref;
    for (auto v : host) ref[v >> 32] += v & 0xffffffff;
    ASSERT_EQ(written, ref.size()) << "iter " << iter;
    std::size_t i = 0;
    for (const auto& [key, count] : ref) {
      ASSERT_EQ(out.unsafe_host_view()[i] >> 32, key);
      ASSERT_EQ(out.unsafe_host_view()[i] & 0xffffffff, count);
      ++i;
    }
  }
}

TEST(FuzzSort, AdversarialShapes) {
  // Sorted, reverse, organ-pipe, constant, and near-sorted inputs through
  // all three sorters on a random machine.
  util::Rng rng(511);
  for (int iter = 0; iter < 10; ++iter) {
    const std::size_t B = 8 << rng.below(2);
    const std::size_t M = 16 * B << rng.below(2);
    const std::uint64_t w = 1 << rng.below(7);
    const std::size_t n = 512 + rng.below(2048);
    std::vector<std::vector<std::uint64_t>> shapes;
    std::vector<std::uint64_t> v(n);
    for (std::size_t i = 0; i < n; ++i) v[i] = i;
    shapes.push_back(v);                                   // sorted
    std::reverse(v.begin(), v.end());
    shapes.push_back(v);                                   // reverse
    for (std::size_t i = 0; i < n; ++i) v[i] = std::min(i, n - i);
    shapes.push_back(v);                                   // organ pipe
    shapes.push_back(std::vector<std::uint64_t>(n, 42));   // constant
    for (std::size_t i = 0; i < n; ++i) v[i] = i ^ (rng.below(4));
    shapes.push_back(v);                                   // near-sorted

    for (const auto& shape : shapes) {
      auto expect = shape;
      std::sort(expect.begin(), expect.end());
      {
        Machine mach(cfg(M, B, w));
        ExtArray<std::uint64_t> in(mach, n, "in");
        in.unsafe_host_fill(shape);
        ExtArray<std::uint64_t> out(mach, n, "out");
        aem_merge_sort(in, out);
        ASSERT_EQ(out.unsafe_host_view(), expect);
      }
      {
        Machine mach(cfg(M, B, w));
        ExtArray<std::uint64_t> in(mach, n, "in");
        in.unsafe_host_fill(shape);
        ExtArray<std::uint64_t> out(mach, n, "out");
        aem_sample_sort(in, out);
        ASSERT_EQ(out.unsafe_host_view(), expect);
      }
    }
  }
}

TEST(FuzzPointerArray, AgainstHostVector) {
  util::Rng rng(513);
  for (int iter = 0; iter < 30; ++iter) {
    const std::size_t B = 1 + rng.below(16);
    Machine mach(cfg(8 * B + 64, B, 2));
    const std::size_t n = 1 + rng.below(120);
    ExtPointerArray ptrs(mach, n, "p");
    std::vector<std::uint64_t> ref(n, 0);
    for (int op = 0; op < 80; ++op) {
      const std::size_t i = rng.below(n);
      switch (rng.below(3)) {
        case 0: {
          const std::uint64_t v = rng.next();
          ptrs.set(i, v);
          ref[i] = v;
          break;
        }
        case 1:
          ASSERT_EQ(ptrs.get(i), ref[i]);
          break;
        default: {
          const std::size_t hi = i + rng.below(n - i + 1);
          ptrs.update_range(i, hi, [&](std::size_t j, std::uint64_t& v) {
            EXPECT_EQ(v, ref[j]);
            if (j % 2 == 0) {
              v += 1;
              ref[j] += 1;
              return true;
            }
            return false;
          });
        }
      }
    }
    for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(ptrs.get(i), ref[i]);
  }
}

TEST(TransposeTest, MatchesHostTranspose) {
  util::Rng rng(517);
  for (auto [rows, cols] : {std::pair<std::size_t, std::size_t>{16, 64},
                            {64, 16},
                            {37, 11},
                            {1, 128}}) {
    Machine mach(cfg(256, 16, 8));
    const std::size_t n = rows * cols;
    std::vector<std::uint64_t> host(n);
    for (auto& v : host) v = rng.next();
    ExtArray<std::uint64_t> in(mach, n, "in");
    in.unsafe_host_fill(host);
    ExtArray<std::uint64_t> out(mach, n, "out");
    transpose_ext(in, rows, cols, out);
    for (std::size_t r = 0; r < rows; ++r)
      for (std::size_t c = 0; c < cols; ++c)
        ASSERT_EQ(out.unsafe_host_view()[c * rows + r], host[r * cols + c])
            << rows << "x" << cols << " at (" << r << "," << c << ")";
  }
}

TEST(TransposeTest, DoubleTransposeIsIdentity) {
  Machine mach(cfg(128, 8, 4));
  util::Rng rng(519);
  const std::size_t rows = 24, cols = 40;
  std::vector<std::uint64_t> host(rows * cols);
  for (auto& v : host) v = rng.next();
  ExtArray<std::uint64_t> a(mach, host.size(), "a");
  a.unsafe_host_fill(host);
  ExtArray<std::uint64_t> b(mach, host.size(), "b");
  ExtArray<std::uint64_t> c(mach, host.size(), "c");
  transpose_ext(a, rows, cols, b);
  transpose_ext(b, cols, rows, c);
  EXPECT_EQ(c.unsafe_host_view(), host);
}

TEST(TraceIoTest, RoundTrip) {
  Trace t;
  IoTicket w = t.add(OpKind::kWrite, 3, 17);
  t.set_atoms(w, {100, 101, 102});
  t.add(OpKind::kRead, 3, 17);
  IoTicket r = t.add(OpKind::kRead, 4, 2);
  t.mark_used(r, 101);
  t.mark_used(r, 100);

  std::stringstream ss;
  write_trace(ss, t);
  Trace back = read_trace(ss);
  ASSERT_EQ(back.size(), t.size());
  for (std::size_t i = 0; i < t.size(); ++i) {
    EXPECT_EQ(back.op(i).kind, t.op(i).kind);
    EXPECT_EQ(back.op(i).array, t.op(i).array);
    EXPECT_EQ(back.op(i).block, t.op(i).block);
    EXPECT_EQ(back.op(i).atoms, t.op(i).atoms);
    EXPECT_EQ(back.op(i).used, t.op(i).used);
  }
}

TEST(TraceIoTest, RejectsMalformedInput) {
  const std::string hdr = "# aem trace v1, ops=1\n";
  {
    std::stringstream ss(hdr + "X 0 0\n");
    EXPECT_THROW(read_trace(ss), std::invalid_argument);
  }
  {
    std::stringstream ss(hdr + "R 0\n");
    EXPECT_THROW(read_trace(ss), std::invalid_argument);
  }
  {
    std::stringstream ss(hdr + "R 0 0 a 1 2\n");  // 'a' tag on a read
    EXPECT_THROW(read_trace(ss), std::invalid_argument);
  }
  {
    std::stringstream ss(hdr + "W 0 0 a 1 x\n");  // non-numeric id
    EXPECT_THROW(read_trace(ss), std::invalid_argument);
  }
  {
    // Magic-less files (old behavior: silently empty) are now rejected.
    std::stringstream ss("# only comments\n\n");
    EXPECT_THROW(read_trace(ss), std::invalid_argument);
  }
  {
    std::stringstream ss("");  // empty input
    EXPECT_THROW(read_trace(ss), std::invalid_argument);
  }
  {
    std::stringstream ss("R 0 0\n");  // body without header
    EXPECT_THROW(read_trace(ss), std::invalid_argument);
  }
  {
    // Truncated: header declares more ops than the body holds.
    std::stringstream ss("# aem trace v1, ops=3\nR 0 0\n");
    EXPECT_THROW(read_trace(ss), std::invalid_argument);
  }
  {
    // Oversized: body holds more ops than the header declares.
    std::stringstream ss("# aem trace v1, ops=1\nR 0 0\nW 0 1\n");
    EXPECT_THROW(read_trace(ss), std::invalid_argument);
  }
  {
    // Corrupted length field must error, not allocate.
    std::stringstream ss("# aem trace v1, ops=banana\nR 0 0\n");
    EXPECT_THROW(read_trace(ss), std::invalid_argument);
  }
  {
    // Header without ops= is accepted (the count check is then skipped).
    std::stringstream ss("# aem trace v1\nR 0 0\n");
    EXPECT_EQ(read_trace(ss).size(), 1u);
  }
}

TEST(TraceIoTest, CorruptedRoundTripFuzz) {
  // Serialize random traces, mutilate the bytes (truncate, flip, splice),
  // and re-parse: every outcome must be either a clean parse or
  // std::invalid_argument — never a crash, hang, or huge allocation.
  util::Rng rng(541);
  for (int iter = 0; iter < 50; ++iter) {
    Trace t;
    const std::size_t ops = 1 + rng.below(40);
    for (std::size_t i = 0; i < ops; ++i) {
      const bool rd = rng.below(2) == 0;
      IoTicket tk = t.add(rd ? OpKind::kRead : OpKind::kWrite,
                          static_cast<std::uint32_t>(rng.below(8)),
                          rng.below(1000));
      const std::size_t nids = rng.below(4);
      if (rd) {
        for (std::size_t j = 0; j < nids; ++j) t.mark_used(tk, rng.below(500));
      } else if (nids > 0) {
        std::vector<std::uint64_t> atoms;
        for (std::size_t j = 0; j < nids; ++j) atoms.push_back(rng.below(500));
        t.set_atoms(tk, std::move(atoms));
      }
    }
    std::stringstream clean;
    write_trace(clean, t);
    std::string bytes = clean.str();

    switch (rng.below(4)) {
      case 0:  // truncate at a random byte
        bytes.resize(rng.below(bytes.size() + 1));
        break;
      case 1: {  // flip a random printable byte
        if (!bytes.empty())
          bytes[rng.below(bytes.size())] =
              static_cast<char>('!' + rng.below(90));
        break;
      }
      case 2: {  // splice a random chunk out of the middle
        const std::size_t from = rng.below(bytes.size() + 1);
        const std::size_t len = rng.below(bytes.size() - from + 1);
        bytes.erase(from, len);
        break;
      }
      default:  // leave intact: must round-trip exactly
        break;
    }

    std::stringstream ss(bytes);
    try {
      Trace back = read_trace(ss);
      // Parsed cleanly: re-serializing must be self-consistent.
      std::stringstream again;
      write_trace(again, back);
      std::stringstream ss2(again.str());
      Trace twice = read_trace(ss2);
      EXPECT_EQ(twice.size(), back.size()) << "iter " << iter;
      EXPECT_EQ(twice.stats(), back.stats()) << "iter " << iter;
    } catch (const std::invalid_argument&) {
      // Rejection with a typed error is the other acceptable outcome.
    }
  }
}

TEST(TraceIoTest, RealTraceRoundTrips) {
  Machine mach(cfg(128, 8, 4));
  util::Rng rng(523);
  const std::size_t N = 512;
  ExtArray<std::uint64_t> in(mach, N, "in");
  in.unsafe_host_fill(util::distinct_keys(N, rng));
  in.set_atom_extractor([](const std::uint64_t& v) { return v; });
  ExtArray<std::uint64_t> out(mach, N, "out");
  out.set_atom_extractor([](const std::uint64_t& v) { return v; });
  mach.enable_trace();
  aem_merge_sort(in, out);
  auto trace = mach.take_trace();

  std::stringstream ss;
  write_trace(ss, *trace);
  Trace back = read_trace(ss);
  EXPECT_EQ(back.size(), trace->size());
  EXPECT_EQ(back.cost(4), trace->cost(4));
  EXPECT_EQ(back.stats(), trace->stats());
}

}  // namespace
