// Tests for core/faults + core/remap: deterministic fault schedules,
// endurance bookkeeping, budget ceilings, config validation/env overrides,
// metrics/v7 surfacing, the zero-overhead-when-off guarantee, and the
// descriptive-misuse errors on machine-less arrays and buffers.
#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <vector>

#include "core/ext_array.hpp"
#include "core/faults.hpp"
#include "core/machine.hpp"
#include "core/metrics.hpp"
#include "core/remap.hpp"
#include "core/trace_io.hpp"
#include "sort/mergesort.hpp"
#include "util/rng.hpp"

namespace {

using namespace aem;

Config cfg(std::size_t M, std::size_t B, std::uint64_t w) {
  Config c;
  c.memory_elems = M;
  c.block_elems = B;
  c.write_cost = w;
  return c;
}

// Restores (or clears) an environment variable on scope exit.
struct EnvGuard {
  explicit EnvGuard(const char* name) : name_(name) {
    if (const char* v = std::getenv(name)) old_ = v;
  }
  ~EnvGuard() {
    if (old_.empty())
      ::unsetenv(name_);
    else
      ::setenv(name_, old_.c_str(), 1);
  }
  const char* name_;
  std::string old_;
};

TEST(FaultConfigTest, ValidateRejectsBadRates) {
  FaultConfig c;
  c.read_fault_rate = 1.5;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c.read_fault_rate = -0.1;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c.read_fault_rate = 0.0;
  c.silent_write_rate = 0.7;
  c.torn_write_rate = 0.6;  // sum > 1: one draw cannot decide
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c.torn_write_rate = 0.3;
  EXPECT_NO_THROW(c.validate());
  // The constructor validates too.
  FaultConfig bad;
  bad.torn_write_rate = 2.0;
  EXPECT_THROW(FaultPolicy{bad}, std::invalid_argument);
}

TEST(FaultConfigTest, FromEnvOverrides) {
  EnvGuard g1("AEM_FAULT_RATE");
  EnvGuard g2("AEM_FAULT_SEED");
  ::setenv("AEM_FAULT_RATE", "0.5", 1);
  ::setenv("AEM_FAULT_SEED", "42", 1);
  FaultConfig c = FaultConfig::from_env();
  EXPECT_DOUBLE_EQ(c.read_fault_rate, 0.5);
  EXPECT_DOUBLE_EQ(c.silent_write_rate, 0.25);
  EXPECT_DOUBLE_EQ(c.torn_write_rate, 0.25);
  EXPECT_EQ(c.seed, 42u);

  ::setenv("AEM_FAULT_RATE", "2.0", 1);
  EXPECT_THROW(FaultConfig::from_env(), std::invalid_argument);
  ::setenv("AEM_FAULT_RATE", "banana", 1);
  EXPECT_THROW(FaultConfig::from_env(), std::invalid_argument);
  ::setenv("AEM_FAULT_RATE", "0.01", 1);
  ::setenv("AEM_FAULT_SEED", "not-a-number", 1);
  EXPECT_THROW(FaultConfig::from_env(), std::invalid_argument);

  ::unsetenv("AEM_FAULT_RATE");
  ::unsetenv("AEM_FAULT_SEED");
  FaultConfig base;
  base.read_fault_rate = 0.125;
  base.seed = 9;
  FaultConfig same = FaultConfig::from_env(base);
  EXPECT_DOUBLE_EQ(same.read_fault_rate, 0.125);
  EXPECT_EQ(same.seed, 9u);
}

TEST(FaultPolicyTest, ScheduleIsDeterministic) {
  FaultConfig c;
  c.seed = 777;
  c.read_fault_rate = 0.3;
  c.silent_write_rate = 0.2;
  c.torn_write_rate = 0.1;
  FaultPolicy a(c), b(c);
  for (int i = 0; i < 2000; ++i) {
    ASSERT_EQ(a.draw_read_fault(), b.draw_read_fault()) << "draw " << i;
    ASSERT_EQ(a.draw_write_fault(), b.draw_write_fault()) << "draw " << i;
    ASSERT_EQ(a.draw_u64(), b.draw_u64()) << "draw " << i;
  }
  EXPECT_EQ(a.stats(), b.stats());
  // reset() rewinds to the same stream.
  const std::uint64_t first = a.draw_u64();
  a.reset();
  b.reset();
  EXPECT_EQ(a.draw_u64(), b.draw_u64());
  (void)first;
}

TEST(FaultPolicyTest, RatesAreHonoured) {
  {
    FaultConfig c;  // all-zero rates: nothing ever fires
    FaultPolicy p(c);
    EXPECT_FALSE(p.injects_faults());
    for (int i = 0; i < 100; ++i) {
      EXPECT_FALSE(p.draw_read_fault());
      EXPECT_EQ(p.draw_write_fault(), FaultKind::kNone);
    }
    EXPECT_EQ(p.stats(), FaultStats{});
  }
  {
    FaultConfig c;
    c.read_fault_rate = 1.0;
    c.silent_write_rate = 1.0;
    FaultPolicy p(c);
    EXPECT_TRUE(p.injects_faults());
    for (int i = 0; i < 50; ++i) {
      EXPECT_TRUE(p.draw_read_fault());
      EXPECT_EQ(p.draw_write_fault(), FaultKind::kSilentWrite);
    }
    EXPECT_EQ(p.stats().read_faults, 50u);
    EXPECT_EQ(p.stats().silent_write_faults, 50u);
  }
  {
    FaultConfig c;
    c.torn_write_rate = 1.0;
    FaultPolicy p(c);
    for (int i = 0; i < 50; ++i)
      EXPECT_EQ(p.draw_write_fault(), FaultKind::kTornWrite);
  }
  {
    // A moderate rate lands near its expectation over many draws.
    FaultConfig c;
    c.read_fault_rate = 0.25;
    FaultPolicy p(c);
    int fired = 0;
    for (int i = 0; i < 10000; ++i) fired += p.draw_read_fault() ? 1 : 0;
    EXPECT_GT(fired, 2200);
    EXPECT_LT(fired, 2800);
  }
}

TEST(FaultPolicyTest, EnduranceRetirement) {
  FaultConfig c;
  c.endurance = 3;
  FaultPolicy p(c);
  EXPECT_TRUE(p.injects_faults());
  EXPECT_FALSE(p.record_write(0, 5));
  EXPECT_FALSE(p.record_write(0, 5));
  EXPECT_FALSE(p.record_write(0, 5));
  EXPECT_FALSE(p.retired(0, 5));
  EXPECT_TRUE(p.record_write(0, 5));  // 4th write: past the budget
  EXPECT_TRUE(p.retired(0, 5));
  EXPECT_EQ(p.lifetime_writes(0, 5), 4u);
  EXPECT_EQ(p.stats().retired_blocks, 1u);
  EXPECT_EQ(p.stats().retired_writes, 1u);
  // Other blocks are unaffected; unlimited endurance never retires.
  EXPECT_FALSE(p.retired(0, 4));
  EXPECT_FALSE(p.retired(1, 5));
  FaultPolicy unlimited{FaultConfig{}};
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(unlimited.record_write(0, 0));
}

TEST(RemapTableTest, AssignsSparesInOrderAndExhausts) {
  RemapTable t(2);
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.slot_of(7), RemapTable::npos);
  EXPECT_EQ(t.remap(7), 0u);
  EXPECT_EQ(t.remap(3), 1u);
  EXPECT_FALSE(t.empty());
  EXPECT_EQ(t.active(), 2u);
  EXPECT_EQ(t.spares_used(), 2u);
  EXPECT_EQ(t.slot_of(7), 0u);
  EXPECT_EQ(t.slot_of(3), 1u);
  try {
    t.remap(9);
    FAIL() << "expected SparesExhausted";
  } catch (const SparesExhausted& e) {
    EXPECT_EQ(e.logical_block(), 9u);
    EXPECT_EQ(e.spare_capacity(), 2u);
  }
}

TEST(FaultChecksumTest, SensitiveToEveryByte) {
  const unsigned char a[4] = {1, 2, 3, 4};
  const unsigned char b[4] = {1, 2, 3, 5};
  EXPECT_NE(fault_checksum(a, 4), fault_checksum(b, 4));
  EXPECT_NE(fault_checksum(a, 4), fault_checksum(a, 3));
  EXPECT_EQ(fault_checksum(a, 4), fault_checksum(a, 4));
  EXPECT_EQ(fault_checksum(a, 0), 0xCBF29CE484222325ull);  // FNV basis
}

TEST(BudgetTest, CostCeilingThrowsStructuredError) {
  Machine mach(cfg(64, 8, 4));
  FaultConfig c;
  c.max_cost = 10;
  mach.install_faults(c);
  EXPECT_TRUE(mach.faults()->has_ceiling());
  EXPECT_FALSE(mach.faults()->injects_faults());
  mach.on_write(0, 0);  // Q = 4
  mach.on_write(0, 1);  // Q = 8
  try {
    mach.on_write(0, 2);  // Q = 12 > 10
    FAIL() << "expected BudgetExceeded";
  } catch (const BudgetExceeded& e) {
    EXPECT_EQ(e.kind(), BudgetExceeded::Kind::kCost);
    EXPECT_EQ(e.limit(), 10u);
    EXPECT_EQ(e.observed(), 12u);
    EXPECT_EQ(e.at().writes, 3u);
    EXPECT_EQ(e.at().reads, 0u);
  }
  // The machine's counters stay valid and include the crossing op.
  EXPECT_EQ(mach.stats().writes, 3u);
  EXPECT_EQ(mach.cost(), 12u);
}

TEST(BudgetTest, IoCeilingThrowsStructuredError) {
  Machine mach(cfg(64, 8, 1));
  FaultConfig c;
  c.max_ios = 2;
  mach.install_faults(c);
  mach.on_read(0, 0);
  mach.on_read(0, 1);
  try {
    mach.on_read(0, 2);
    FAIL() << "expected BudgetExceeded";
  } catch (const BudgetExceeded& e) {
    EXPECT_EQ(e.kind(), BudgetExceeded::Kind::kIos);
    EXPECT_EQ(e.limit(), 2u);
    EXPECT_EQ(e.observed(), 3u);
  }
  // reset_stats rewinds the counters, so the machine is reusable.
  mach.reset_stats();
  EXPECT_NO_THROW(mach.on_read(0, 0));
}

TEST(BudgetTest, CeilingAbortsARealSort) {
  const std::size_t N = 1 << 10;
  util::Rng rng(29);
  auto host = util::random_keys(N, rng);

  // Clean run to learn the true cost.
  Machine clean(cfg(256, 16, 8));
  ExtArray<std::uint64_t> in0(clean, N, "in");
  in0.unsafe_host_fill(host);
  ExtArray<std::uint64_t> out0(clean, N, "out");
  aem_merge_sort(in0, out0);
  const std::uint64_t q = clean.cost();
  ASSERT_GT(q, 2u);

  Machine capped(cfg(256, 16, 8));
  FaultConfig c;
  c.max_cost = q / 2;
  capped.install_faults(c);
  ExtArray<std::uint64_t> in1(capped, N, "in");
  in1.unsafe_host_fill(host);
  ExtArray<std::uint64_t> out1(capped, N, "out");
  EXPECT_THROW(aem_merge_sort(in1, out1), BudgetExceeded);
  EXPECT_GT(capped.cost(), q / 2);  // counters survive the abort
}

// The zero-overhead-when-off guarantee: an installed policy whose rates are
// all zero (or that is a pure budget watchdog) must leave Q byte-identical
// to a machine with no policy at all.
TEST(FaultOverheadTest, ZeroRatePolicyLeavesCostsIdentical) {
  const std::size_t N = 1 << 11;
  util::Rng rng(31);
  const auto host = util::random_keys(N, rng);

  auto run = [&](bool install, std::uint64_t max_cost) {
    Machine mach(cfg(256, 16, 8));
    if (install) {
      FaultConfig c;
      c.max_cost = max_cost;
      mach.install_faults(c);
    }
    ExtArray<std::uint64_t> in(mach, N, "in");
    in.unsafe_host_fill(host);
    ExtArray<std::uint64_t> out(mach, N, "out");
    aem_merge_sort(in, out);
    return std::pair<IoStats, std::uint64_t>(mach.stats(), mach.cost());
  };

  const auto clean = run(false, 0);
  const auto zero_rate = run(true, 0);
  const auto watchdog = run(true, 1ull << 60);
  EXPECT_EQ(clean.first, zero_rate.first);
  EXPECT_EQ(clean.second, zero_rate.second);
  EXPECT_EQ(clean.first, watchdog.first);
  EXPECT_EQ(clean.second, watchdog.second);
}

TEST(FaultMetricsTest, V2SchemaCarriesFaultCounters) {
  Machine mach(cfg(128, 8, 4));
  FaultConfig c;
  c.seed = 5;
  c.read_fault_rate = 0.5;  // high enough that retries certainly happen
  c.max_retries = 64;
  mach.install_faults(c);

  const std::size_t N = 256;
  util::Rng rng(37);
  const auto host = util::random_keys(N, rng);
  ExtArray<std::uint64_t> in(mach, N, "in");
  in.unsafe_host_fill(host);
  ExtArray<std::uint64_t> out(mach, N, "out");
  aem_merge_sort(in, out);

  auto expect = host;
  std::sort(expect.begin(), expect.end());
  EXPECT_EQ(out.unsafe_host_view(), expect);

  const MetricsSnapshot s = snapshot_metrics(mach, "faulty");
  EXPECT_TRUE(s.faults_enabled);
  EXPECT_EQ(s.fault_config.seed, 5u);
  EXPECT_GT(s.fault_stats.read_faults, 0u);
  EXPECT_GT(s.fault_stats.checksum_failures, 0u);
  EXPECT_GT(s.fault_stats.read_retries, 0u);

  const std::string j = to_json(s);
  EXPECT_NE(j.find("\"schema\":\"aem.machine.metrics/v8\""),
            std::string::npos);
  EXPECT_NE(j.find("\"faults\":{\"enabled\":true,\"seed\":5"),
            std::string::npos);
  EXPECT_NE(j.find("\"injected\":{\"read\":" +
                   std::to_string(s.fault_stats.read_faults)),
            std::string::npos);
  EXPECT_NE(j.find("\"recovery\":{\"read_retries\":" +
                   std::to_string(s.fault_stats.read_retries)),
            std::string::npos);
}

// Satellite: identical (seed, config, program) must reproduce the identical
// fault schedule, metrics snapshot, and recorded trace — bit for bit.
TEST(FaultDeterminismTest, IdenticalSeedGivesIdenticalRun) {
  auto run = [] {
    Machine mach(cfg(256, 16, 8));
    FaultConfig c;
    c.seed = 1234;
    c.read_fault_rate = 0.05;
    c.silent_write_rate = 0.02;
    c.torn_write_rate = 0.02;
    c.max_retries = 64;
    mach.install_faults(c);
    mach.enable_trace();

    const std::size_t N = 1 << 10;
    util::Rng rng(41);
    const auto host = util::random_keys(N, rng);
    ExtArray<std::uint64_t> in(mach, N, "in");
    in.unsafe_host_fill(host);
    ExtArray<std::uint64_t> out(mach, N, "out");
    aem_merge_sort(in, out);

    const std::string json = to_json(snapshot_metrics(mach, "det"));
    std::ostringstream tr;
    write_trace(tr, *mach.trace());
    return std::pair<std::string, std::string>(json, tr.str());
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a.first, b.first);    // metrics snapshot, including fault stats
  EXPECT_EQ(a.second, b.second);  // full I/O trace
}

TEST(FaultDeterminismTest, DifferentSeedsDiverge) {
  auto stats_for = [](std::uint64_t seed) {
    Machine mach(cfg(128, 8, 4));
    FaultConfig c;
    c.seed = seed;
    c.read_fault_rate = 0.2;
    c.max_retries = 64;
    mach.install_faults(c);
    const std::size_t N = 512;
    util::Rng rng(43);
    const auto host = util::random_keys(N, rng);
    ExtArray<std::uint64_t> in(mach, N, "in");
    in.unsafe_host_fill(host);
    ExtArray<std::uint64_t> out(mach, N, "out");
    aem_merge_sort(in, out);
    return mach.faults()->stats();
  };
  EXPECT_NE(stats_for(1), stats_for(2));
}

TEST(MisuseTest, MachinelessExtArrayThrowsDescriptively) {
  ExtArray<std::uint64_t> fresh;  // default-constructed: no machine
  EXPECT_THROW(fresh.machine(), std::logic_error);
  std::vector<std::uint64_t> buf(8);
  EXPECT_THROW(fresh.read_block(0, std::span<std::uint64_t>(buf)),
               std::logic_error);

  Machine mach(cfg(64, 8, 1));
  ExtArray<std::uint64_t> a(mach, 16, "a");
  ExtArray<std::uint64_t> b(std::move(a));
  EXPECT_EQ(b.size(), 16u);
  EXPECT_NO_THROW(b.machine());
  // The moved-from array is a machine-less placeholder, not a live alias.
  EXPECT_THROW(a.machine(), std::logic_error);
  EXPECT_THROW(a.read_block(0, std::span<std::uint64_t>(buf)),
               std::logic_error);
  EXPECT_THROW(a.write_block(0, std::span<const std::uint64_t>(buf)),
               std::logic_error);
  a = std::move(b);  // move-assign revives it
  EXPECT_NO_THROW(a.machine());
  EXPECT_THROW(b.machine(), std::logic_error);
}

TEST(MisuseTest, DetachedBufferResizeThrows) {
  Buffer<int> detached;
  EXPECT_NO_THROW(detached.resize(0));  // no allocation, nothing to account
  EXPECT_THROW(detached.resize(8), std::logic_error);

  Machine mach(cfg(64, 8, 1));
  Buffer<int> live(mach, 8);
  Buffer<int> taken(std::move(live));
  EXPECT_NO_THROW(taken.resize(16));
  EXPECT_THROW(live.resize(4), std::logic_error);
}

TEST(MisuseTest, OutOfRangeBlockNamesTheBounds) {
  Machine mach(cfg(64, 8, 1));
  ExtArray<std::uint64_t> a(mach, 16, "a");  // 2 blocks
  std::vector<std::uint64_t> buf(8);
  try {
    a.read_block(5, std::span<std::uint64_t>(buf));
    FAIL() << "expected out_of_range";
  } catch (const std::out_of_range& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("block index 5"), std::string::npos) << msg;
    EXPECT_NE(msg.find("2 blocks"), std::string::npos) << msg;
  }
}

}  // namespace
