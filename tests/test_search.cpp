// Tests for util/search (the branchless Eytzinger rank kernel) and
// util::FastDiv64 (the divisor-reciprocal micro-optimization behind
// ShardedMachine::route), plus a routing regression pinning route() to its
// naive divide/modulo definition.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <map>
#include <utility>
#include <vector>

#include "core/sharding.hpp"
#include "util/math.hpp"
#include "util/rng.hpp"
#include "util/search.hpp"

namespace {

using namespace aem;

constexpr std::uint64_t kMax = std::numeric_limits<std::uint64_t>::max();

// Every query key that can change the answer for `sorted`: the elements
// themselves, their neighbours, and the domain edges.
std::vector<std::uint64_t> boundary_keys(
    const std::vector<std::uint64_t>& sorted) {
  std::vector<std::uint64_t> keys = {0, 1, kMax - 1, kMax};
  for (std::uint64_t v : sorted) {
    keys.push_back(v);
    if (v > 0) keys.push_back(v - 1);
    if (v < kMax) keys.push_back(v + 1);
  }
  return keys;
}

void expect_matches_sorted(const std::vector<std::uint64_t>& sorted) {
  const util::EytzingerSearch idx(sorted);
  ASSERT_EQ(idx.size(), sorted.size());
  for (std::uint64_t key : boundary_keys(sorted)) {
    ASSERT_EQ(idx.rank_upper(key), util::sorted_rank_upper(sorted, key))
        << "n=" << sorted.size() << " key=" << key;
  }
}

TEST(EytzingerSearchTest, MatchesUpperBoundExhaustiveSmall) {
  // Every size through a few levels of the tree, spaced keys so each
  // element has distinct neighbours.
  for (std::size_t n = 0; n <= 70; ++n) {
    std::vector<std::uint64_t> sorted;
    for (std::size_t i = 0; i < n; ++i)
      sorted.push_back(10 + 3 * static_cast<std::uint64_t>(i));
    expect_matches_sorted(sorted);
  }
}

TEST(EytzingerSearchTest, MatchesUpperBoundWithDuplicates) {
  expect_matches_sorted({5, 5, 5, 5});
  expect_matches_sorted({0, 0, 7, 7, 7, 9, kMax, kMax});
  expect_matches_sorted({kMax, kMax, kMax});
  expect_matches_sorted({0});
  expect_matches_sorted({0, kMax});
}

TEST(EytzingerSearchTest, MatchesUpperBoundRandomLarge) {
  util::Rng rng(2024);
  for (std::size_t n : {513u, 1024u, 4095u}) {
    std::vector<std::uint64_t> sorted;
    sorted.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
      sorted.push_back(rng.next() >> 16);  // leave headroom for +1 probes
    std::sort(sorted.begin(), sorted.end());
    const util::EytzingerSearch idx(sorted);
    for (int t = 0; t < 4000; ++t) {
      const std::uint64_t key = rng.next() >> 16;
      ASSERT_EQ(idx.rank_upper(key), util::sorted_rank_upper(sorted, key))
          << "n=" << n << " key=" << key;
    }
  }
}

TEST(EytzingerSearchTest, FootprintIsPaddedPerfectTree) {
  // footprint = 2^L - 1 with L = ceil(log2(n+1)): >= n, < 2n + 2.
  for (std::size_t n = 0; n <= 300; ++n) {
    std::vector<std::uint64_t> sorted(n);
    for (std::size_t i = 0; i < n; ++i)
      sorted[i] = static_cast<std::uint64_t>(i);
    const util::EytzingerSearch idx(sorted);
    EXPECT_GE(idx.footprint(), n);
    EXPECT_LT(idx.footprint(), 2 * n + 2);
    // A perfect-tree node count.
    EXPECT_EQ((idx.footprint() + 1) & idx.footprint(), 0u);
  }
}

TEST(FastDiv64Test, RejectsZeroDivisor) {
  EXPECT_THROW(util::FastDiv64(0), std::invalid_argument);
}

TEST(FastDiv64Test, ExhaustiveSmallNumerators) {
  for (std::uint64_t d = 1; d <= 100; ++d) {
    const util::FastDiv64 fd(d);
    EXPECT_EQ(fd.divisor(), d);
    for (std::uint64_t n = 0; n <= 3 * 100 + 17; ++n) {
      ASSERT_EQ(fd.div(n), n / d) << "n=" << n << " d=" << d;
      ASSERT_EQ(fd.mod(n), n % d) << "n=" << n << " d=" << d;
      const auto qr = fd.divmod(n);
      ASSERT_EQ(qr.quot, n / d);
      ASSERT_EQ(qr.rem, n % d);
    }
  }
}

TEST(FastDiv64Test, BoundaryAndRandomNumerators) {
  util::Rng rng(77);
  std::vector<std::uint64_t> divisors = {1, 2, 3, 5, 7, 16, 63, 64, 65, 1000,
                                         (1ull << 32) - 1, (1ull << 32) + 1,
                                         kMax - 1, kMax};
  std::vector<std::uint64_t> edges = {0, 1, 2, kMax - 2, kMax - 1, kMax};
  for (std::uint64_t d : divisors) {
    const util::FastDiv64 fd(d);
    for (std::uint64_t n : edges) {
      ASSERT_EQ(fd.div(n), n / d) << "n=" << n << " d=" << d;
      ASSERT_EQ(fd.mod(n), n % d) << "n=" << n << " d=" << d;
    }
    for (int t = 0; t < 5000; ++t) {
      const std::uint64_t n = rng.next();
      ASSERT_EQ(fd.div(n), n / d) << "n=" << n << " d=" << d;
    }
  }
}

// --- ShardedMachine::route regression ---------------------------------------

ShardConfig shard_cfg(std::size_t devices, Placement placement,
                      std::size_t chunk) {
  ShardConfig sc;
  sc.frontend.memory_elems = 1024;
  sc.frontend.block_elems = 16;
  sc.frontend.write_cost = 8;
  for (std::size_t d = 0; d < devices; ++d) {
    Config dev;
    dev.memory_elems = 1024;
    dev.block_elems = 16;
    dev.write_cost = 8;
    sc.devices.push_back(dev);
  }
  sc.placement = placement;
  sc.range_chunk_blocks = chunk;
  return sc;
}

TEST(ShardRouteTest, MatchesNaiveFormulaAndIsBijective) {
  for (std::size_t D : {1u, 2u, 3u, 4u, 7u}) {
    for (std::size_t chunk : {1u, 3u, 8u, 64u}) {
      ShardedMachine rr(shard_cfg(D, Placement::kRoundRobin, chunk));
      ShardedMachine rg(shard_cfg(D, Placement::kRange, chunk));
      std::map<std::pair<std::size_t, std::uint64_t>, std::uint64_t> seen_rr;
      std::map<std::pair<std::size_t, std::uint64_t>, std::uint64_t> seen_rg;
      for (std::uint64_t b = 0; b < 2000; ++b) {
        const auto r1 = rr.route(b);
        ASSERT_EQ(r1.device, b % D) << "b=" << b << " D=" << D;
        ASSERT_EQ(r1.local, b / D) << "b=" << b << " D=" << D;
        ASSERT_TRUE(seen_rr.emplace(std::make_pair(r1.device, r1.local), b)
                        .second)
            << "round-robin collision at b=" << b;

        const auto r2 = rg.route(b);
        const std::uint64_t c = b / chunk;
        ASSERT_EQ(r2.device, c % D) << "b=" << b << " D=" << D;
        ASSERT_EQ(r2.local, (c / D) * chunk + b % chunk)
            << "b=" << b << " D=" << D << " chunk=" << chunk;
        ASSERT_TRUE(seen_rg.emplace(std::make_pair(r2.device, r2.local), b)
                        .second)
            << "range collision at b=" << b;
      }
    }
  }
}

TEST(ShardRouteTest, HugeBlockIndicesStayExact) {
  // The reciprocal path must stay exact far beyond any bench's range.
  for (std::size_t D : {3u, 7u}) {
    ShardedMachine m(shard_cfg(D, Placement::kRoundRobin, 64));
    for (std::uint64_t b : {kMax, kMax - 1, kMax / 3,
                            (std::uint64_t{1} << 53) + 12345}) {
      const auto r = m.route(b);
      EXPECT_EQ(r.device, b % D);
      EXPECT_EQ(r.local, b / D);
    }
  }
}

}  // namespace
