// Unit tests for util/: math helpers, RNG determinism, tables, CLI parsing.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <optional>
#include <set>
#include <sstream>
#include <string>

#include "util/cli.hpp"
#include "util/math.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

using namespace aem::util;

TEST(MathTest, CeilDiv) {
  EXPECT_EQ(ceil_div(0, 4), 0u);
  EXPECT_EQ(ceil_div(1, 4), 1u);
  EXPECT_EQ(ceil_div(4, 4), 1u);
  EXPECT_EQ(ceil_div(5, 4), 2u);
  EXPECT_EQ(ceil_div(8, 4), 2u);
  EXPECT_EQ(ceil_div(UINT64_MAX - 3, UINT64_MAX), 1u);
}

TEST(MathTest, RoundUp) {
  EXPECT_EQ(round_up(0, 8), 0u);
  EXPECT_EQ(round_up(1, 8), 8u);
  EXPECT_EQ(round_up(8, 8), 8u);
  EXPECT_EQ(round_up(9, 8), 16u);
}

// Regression: near UINT64_MAX the old ceil_div(a, b) * b silently wrapped,
// so round_up(UINT64_MAX, 2) returned 0.  Exact multiples at the top of the
// range must still round to themselves; anything whose next multiple does
// not exist must throw instead of wrapping.
TEST(MathTest, RoundUpSaturationBoundary) {
  EXPECT_EQ(round_up(UINT64_MAX, 1), UINT64_MAX);
  EXPECT_EQ(round_up(UINT64_MAX - 1, UINT64_MAX), UINT64_MAX);
  EXPECT_EQ(round_up(UINT64_MAX, UINT64_MAX), UINT64_MAX);
  EXPECT_EQ(round_up(1ull << 63, 1ull << 63), 1ull << 63);
  // 2 * (2^63 - 1) = 2^64 - 2: the largest even value still representable.
  EXPECT_EQ(round_up(UINT64_MAX - 1, UINT64_MAX / 2), UINT64_MAX - 1);

  EXPECT_THROW(round_up(UINT64_MAX, 2), std::overflow_error);
  EXPECT_THROW(round_up((1ull << 63) + 1, 1ull << 63), std::overflow_error);
  EXPECT_THROW(round_up(UINT64_MAX, UINT64_MAX / 2), std::overflow_error);
  EXPECT_THROW(round_up(UINT64_MAX, UINT64_MAX - 1), std::overflow_error);
}

TEST(MathTest, Ilog2) {
  EXPECT_EQ(ilog2(1), 0u);
  EXPECT_EQ(ilog2(2), 1u);
  EXPECT_EQ(ilog2(3), 1u);
  EXPECT_EQ(ilog2(4), 2u);
  EXPECT_EQ(ilog2(1024), 10u);
  EXPECT_EQ(ilog2_ceil(1), 0u);
  EXPECT_EQ(ilog2_ceil(2), 1u);
  EXPECT_EQ(ilog2_ceil(3), 2u);
  EXPECT_EQ(ilog2_ceil(1025), 11u);
}

TEST(MathTest, IsPow2) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(64));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(48));
}

TEST(MathTest, IpowSaturates) {
  EXPECT_EQ(ipow_sat(2, 10), 1024u);
  EXPECT_EQ(ipow_sat(2, 64), UINT64_MAX);
  EXPECT_EQ(ipow_sat(10, 30), UINT64_MAX);
  EXPECT_EQ(ipow_sat(7, 0), 1u);
}

TEST(MathTest, IlogBaseCeil) {
  // Merge levels: 16 runs, fanout 4 -> 2 levels; 17 runs -> 3 levels.
  EXPECT_EQ(ilog_base_ceil(1, 4), 0u);
  EXPECT_EQ(ilog_base_ceil(4, 4), 1u);
  EXPECT_EQ(ilog_base_ceil(16, 4), 2u);
  EXPECT_EQ(ilog_base_ceil(17, 4), 3u);
  EXPECT_EQ(ilog_base_ceil(1000, 2), 10u);
}

TEST(RngTest, Deterministic) {
  Rng a(42), b(42), c(43);
  EXPECT_EQ(a.next(), b.next());
  EXPECT_EQ(a.next(), b.next());
  Rng a2(42);
  EXPECT_NE(a2.next(), c.next());
}

TEST(RngTest, BelowInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
    std::uint64_t r = rng.range(5, 9);
    EXPECT_GE(r, 5u);
    EXPECT_LE(r, 9u);
  }
}

TEST(RngTest, Uniform01InRange) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double u = rng.uniform01();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  // Mean of 10k uniforms should be near 0.5.
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, RandomPermutationIsPermutation) {
  Rng rng(3);
  auto p = random_permutation(257, rng);
  ASSERT_EQ(p.size(), 257u);
  std::set<std::uint64_t> seen(p.begin(), p.end());
  EXPECT_EQ(seen.size(), 257u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 256u);
}

TEST(RngTest, RandomPermutationNotIdentity) {
  Rng rng(5);
  auto p = random_permutation(1000, rng);
  std::uint64_t fixed = 0;
  for (std::uint64_t i = 0; i < p.size(); ++i) fixed += (p[i] == i);
  EXPECT_LT(fixed, 20u);  // expected ~1 fixed point
}

TEST(RngTest, DistinctKeysAreDistinct) {
  Rng rng(9);
  auto k = distinct_keys(512, rng, 3);
  std::set<std::uint64_t> seen(k.begin(), k.end());
  EXPECT_EQ(seen.size(), 512u);
  for (auto v : k) EXPECT_EQ(v % 3, 0u);
}

TEST(TableTest, PrintAlignsColumns) {
  Table t({"a", "long_header"});
  t.add_row({"1", "2"});
  t.add_row({"123456", "7"});
  std::ostringstream os;
  t.print(os);
  std::string s = os.str();
  EXPECT_NE(s.find("long_header"), std::string::npos);
  EXPECT_NE(s.find("123456"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_EQ(t.cols(), 2u);
}

TEST(TableTest, Csv) {
  Table t({"x", "y"});
  t.add_row({"1", "2"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "x,y\n1,2\n");
}

TEST(TableTest, Formatters) {
  EXPECT_EQ(fmt(std::uint64_t{42}), "42");
  EXPECT_EQ(fmt(std::int64_t{-7}), "-7");
  EXPECT_EQ(fmt(1.5, 2), "1.50");
  EXPECT_EQ(fmt_ratio(3.0, 2.0, 1), "1.5");
  EXPECT_EQ(fmt_ratio(1.0, 0.0), "inf");
  EXPECT_EQ(fmt_sep(1234567), "1,234,567");
  EXPECT_EQ(fmt_sep(123), "123");
  EXPECT_EQ(fmt_sep(1000), "1,000");
}

TEST(CliTest, ParsesEqualsAndSpaceForms) {
  const char* argv[] = {"prog", "--n=100", "--omega", "4", "--verbose"};
  Cli cli(5, const_cast<char**>(argv));
  EXPECT_EQ(cli.u64("n", 0), 100u);
  EXPECT_EQ(cli.u64("omega", 0), 4u);
  EXPECT_TRUE(cli.flag("verbose"));
  EXPECT_FALSE(cli.flag("quiet"));
  EXPECT_EQ(cli.u64("missing", 7), 7u);
}

TEST(CliTest, ParsesLists) {
  const char* argv[] = {"prog", "--omega=1,4,16"};
  Cli cli(2, const_cast<char**>(argv));
  auto v = cli.u64_list("omega", {});
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[0], 1u);
  EXPECT_EQ(v[2], 16u);
  auto d = cli.u64_list("other", {2, 3});
  EXPECT_EQ(d.size(), 2u);
}

TEST(CliTest, RejectsMalformedInput) {
  const char* argv1[] = {"prog", "positional"};
  EXPECT_THROW(Cli(2, const_cast<char**>(argv1)), std::invalid_argument);
  const char* argv2[] = {"prog", "--n=abc"};
  Cli cli(2, const_cast<char**>(argv2));
  EXPECT_THROW(cli.u64("n", 0), std::invalid_argument);
}

TEST(CliTest, EmptyListRejected) {
  const char* argv[] = {"prog", "--omega="};
  Cli cli(2, const_cast<char**>(argv));
  EXPECT_THROW(cli.u64_list("omega", {1}), std::invalid_argument);
}

TEST(CliTest, StringAndDouble) {
  const char* argv[] = {"prog", "--out=results.csv", "--eps=0.25"};
  Cli cli(3, const_cast<char**>(argv));
  EXPECT_EQ(cli.str("out", ""), "results.csv");
  EXPECT_DOUBLE_EQ(cli.f64("eps", 0.0), 0.25);
  EXPECT_EQ(cli.str("missing", "def"), "def");
}

// --- strict integer parsing (parse_u64 + the flag/env paths built on it) ---

TEST(ParseU64Test, AcceptsPlainDecimal) {
  EXPECT_EQ(parse_u64("0"), 0u);
  EXPECT_EQ(parse_u64("1"), 1u);
  EXPECT_EQ(parse_u64("007"), 7u);  // leading zeros are still base 10
  EXPECT_EQ(parse_u64("18446744073709551615"), UINT64_MAX);
}

TEST(ParseU64Test, RejectsEverythingStoullAccepted) {
  // Every shape std::stoull mis-handles: whitespace, signs, hex, trailing
  // garbage, overflow, and non-ASCII junk.
  const char* bad[] = {
      "",       " ",      "\t",    "+1",     "-1",   "- 1",
      "0x10",   "abc",    "12abc", " 3",     "3 ",   "1.5",
      "1e3",    "18446744073709551616",      // UINT64_MAX + 1
      "99999999999999999999",                // way past 2^64
      "järn",   "１２",                      // UTF-8 junk, full-width digits
  };
  for (const char* s : bad)
    EXPECT_FALSE(parse_u64(s).has_value()) << "accepted '" << s << "'";
}

TEST(CliTest, U64FlagRejectsFuzzedValues) {
  const char* junk[] = {"",   " ",     "+4",  "-4",    "0x10", "12abc",
                        "99999999999999999999", "järn", "4 "};
  for (const char* v : junk) {
    const std::string arg = std::string("--n=") + v;
    const char* argv[] = {"prog", arg.c_str()};
    Cli cli(2, const_cast<char**>(argv));
    EXPECT_THROW(cli.u64("n", 0), std::invalid_argument) << arg;
    // The diagnostic names the flag so the user knows what to fix.
    try {
      cli.u64("n", 0);
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find("--n"), std::string::npos) << arg;
    }
  }
}

TEST(CliTest, U64ListRejectsFuzzedElements) {
  for (const char* v : {"1,abc", "1,,2", "1,+2", "1,2 ", "0x1,2"}) {
    const std::string arg = std::string("--omega=") + v;
    const char* argv[] = {"prog", arg.c_str()};
    Cli cli(2, const_cast<char**>(argv));
    EXPECT_THROW(cli.u64_list("omega", {}), std::invalid_argument) << arg;
  }
}

TEST(CliTest, U64AcceptsBoundaryValues) {
  const char* argv[] = {"prog", "--n=18446744073709551615", "--z=0"};
  Cli cli(3, const_cast<char**>(argv));
  EXPECT_EQ(cli.u64("n", 0), UINT64_MAX);
  EXPECT_EQ(cli.u64("z", 9), 0u);
}

/// Scoped AEM_JOBS override so fuzzing the env can't leak into other tests.
class JobsEnvTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const char* old = std::getenv("AEM_JOBS");
    if (old != nullptr) saved_ = old;
  }
  void TearDown() override {
    if (saved_.has_value()) {
      ::setenv("AEM_JOBS", saved_->c_str(), 1);
    } else {
      ::unsetenv("AEM_JOBS");
    }
  }
  static Cli make_cli() {
    static const char* argv[] = {"prog"};
    return Cli(1, const_cast<char**>(argv));
  }

 private:
  std::optional<std::string> saved_;
};

TEST_F(JobsEnvTest, UnsetDefaultsToOne) {
  ::unsetenv("AEM_JOBS");
  EXPECT_EQ(make_cli().jobs(), 1u);
}

TEST_F(JobsEnvTest, ValidValuesParse) {
  ::setenv("AEM_JOBS", "4", 1);
  EXPECT_EQ(make_cli().jobs(), 4u);
  ::setenv("AEM_JOBS", "1", 1);
  EXPECT_EQ(make_cli().jobs(), 1u);
}

TEST_F(JobsEnvTest, EmptyIsTreatedAsUnset) {
  // `export AEM_JOBS=` (empty) means "no preference", same as unset.
  ::setenv("AEM_JOBS", "", 1);
  EXPECT_EQ(make_cli().jobs(), 1u);
}

TEST_F(JobsEnvTest, ZeroPassesThroughForTheHarnessToResolve) {
  // 0 = "one worker per hardware thread"; Cli reports it verbatim and
  // harness/parallel_sweep resolves it to the actual thread count.
  ::setenv("AEM_JOBS", "0", 1);
  EXPECT_EQ(make_cli().jobs(), 0u);
}

TEST_F(JobsEnvTest, MalformedValuesThrowWithActionableMessage) {
  const char* junk[] = {"abc", "12abc", "-4",   "+4",
                        " 3",  "3 ",    "0x10", "99999999999999999999",
                        " ",   "järn"};
  for (const char* v : junk) {
    ::setenv("AEM_JOBS", v, 1);
    Cli cli = make_cli();
    EXPECT_THROW(cli.jobs(), std::invalid_argument) << "AEM_JOBS='" << v << "'";
    try {
      cli.jobs();
    } catch (const std::invalid_argument& e) {
      // The message must name the variable and tell the user what to do.
      EXPECT_NE(std::string(e.what()).find("AEM_JOBS"), std::string::npos)
          << "AEM_JOBS='" << v << "'";
    }
  }
}

TEST_F(JobsEnvTest, FlagWinsOverEnvironment) {
  // An explicit --jobs flag must shadow even a malformed environment value
  // (the env is never consulted when the flag is present).
  ::setenv("AEM_JOBS", "garbage", 1);
  const char* argv[] = {"prog", "--jobs=3"};
  Cli cli(2, const_cast<char**>(argv));
  EXPECT_EQ(cli.jobs(), 3u);
}

}  // namespace
