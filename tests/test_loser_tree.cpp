// Unit tests for sort/loser_tree.hpp and the I/O-invariance property the
// merge kernels promise: switching MergeKernel moves host comparisons only,
// never a charged read or write.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <string>
#include <vector>

#include "core/ext_array.hpp"
#include "core/machine.hpp"
#include "sort/budget.hpp"
#include "sort/em_mergesort.hpp"
#include "sort/loser_tree.hpp"
#include "sort/merge.hpp"
#include "util/rng.hpp"

namespace aem {
namespace {

using Tree = LoserTree<std::uint64_t, std::less<std::uint64_t>>;

Config cfg_of(std::size_t M, std::size_t B, std::uint64_t omega) {
  Config cfg;
  cfg.memory_elems = M;
  cfg.block_elems = B;
  cfg.write_cost = omega;
  return cfg;
}

/// Drains the tree as a k-way merge over in-memory runs and returns the
/// output sequence; the reference for every selection test.
std::vector<std::uint64_t> drain(std::vector<std::vector<std::uint64_t>> runs) {
  Tree tree(runs.size());
  std::vector<std::size_t> pos(runs.size(), 0);
  for (std::size_t i = 0; i < runs.size(); ++i) {
    if (runs[i].empty()) {
      tree.set_exhausted(i);
    } else {
      tree.set_key(i, runs[i][0]);
    }
  }
  tree.rebuild();
  std::vector<std::uint64_t> out;
  for (std::size_t i = tree.winner(); i != Tree::npos; i = tree.winner()) {
    out.push_back(runs[i][pos[i]]);
    ++pos[i];
    if (pos[i] == runs[i].size()) {
      tree.set_exhausted(i);
    } else {
      tree.set_key(i, runs[i][pos[i]]);
    }
    tree.update(i);
  }
  return out;
}

TEST(LoserTree, SingleContestant) {
  auto out = drain({{3, 1, 4, 1, 5}});  // k = 1: passthrough, any order
  EXPECT_EQ(out, (std::vector<std::uint64_t>{3, 1, 4, 1, 5}));
}

TEST(LoserTree, EmptyAndZeroContestants) {
  EXPECT_TRUE(drain({}).empty());
  EXPECT_TRUE(drain({{}}).empty());
  EXPECT_TRUE(drain({{}, {}, {}}).empty());
}

TEST(LoserTree, TwoContestants) {
  auto out = drain({{1, 3, 5}, {2, 4, 6}});
  EXPECT_EQ(out, (std::vector<std::uint64_t>{1, 2, 3, 4, 5, 6}));
}

TEST(LoserTree, NonPowerOfTwoContestants) {
  // k = 5 pads to 8; the 3 padding leaves must never win.
  auto out = drain({{10, 20}, {5, 25}, {1, 30}, {15}, {2, 3}});
  std::vector<std::uint64_t> expect = {1, 2, 3, 5, 10, 15, 20, 25, 30};
  EXPECT_EQ(out, expect);
}

TEST(LoserTree, DuplicatesAcrossRunsAreStableByRunIndex) {
  // Equal keys must drain in run-index order — exactly what a stable
  // "first strictly-smallest head" scan produces.
  Tree tree(3);
  std::vector<std::vector<std::uint64_t>> runs = {{7, 7}, {7}, {7, 7}};
  std::vector<std::size_t> pos(3, 0);
  for (std::size_t i = 0; i < 3; ++i) tree.set_key(i, runs[i][0]);
  tree.rebuild();
  std::vector<std::size_t> order;
  for (std::size_t i = tree.winner(); i != Tree::npos; i = tree.winner()) {
    order.push_back(i);
    ++pos[i];
    if (pos[i] == runs[i].size()) {
      tree.set_exhausted(i);
    } else {
      tree.set_key(i, runs[i][pos[i]]);
    }
    tree.update(i);
  }
  // Run 0's two 7s first, then run 1's, then run 2's.
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 0, 1, 2, 2}));
}

TEST(LoserTree, ExhaustedRunRevivesOnRestage) {
  // A refilled contestant (set_key after set_exhausted + update) rejoins.
  Tree tree(2);
  tree.set_key(0, 5);
  tree.set_key(1, 9);
  tree.rebuild();
  EXPECT_EQ(tree.winner(), 0u);
  tree.set_exhausted(0);
  tree.update(0);
  EXPECT_EQ(tree.winner(), 1u);
  tree.set_key(0, 1);  // the "exhausted run refill" of a staged merge
  tree.update(0);
  EXPECT_EQ(tree.winner(), 0u);
  EXPECT_EQ(tree.winner_key(), 1u);
}

TEST(LoserTree, MatchesSortAcrossShapes) {
  util::Rng rng(99);
  for (std::size_t k : {1u, 2u, 3u, 5u, 7u, 8u, 13u, 64u}) {
    std::vector<std::vector<std::uint64_t>> runs(k);
    std::vector<std::uint64_t> expect;
    for (auto& r : runs) {
      const std::size_t len = rng.next() % 17;  // includes empty runs
      for (std::size_t j = 0; j < len; ++j) r.push_back(rng.next() % 50);
      std::sort(r.begin(), r.end());
      expect.insert(expect.end(), r.begin(), r.end());
    }
    std::sort(expect.begin(), expect.end());
    EXPECT_EQ(drain(runs), expect) << "k=" << k;
  }
}

// --- I/O invariance: the kernel choice never moves a charged I/O ----------

struct KernelRun {
  std::uint64_t reads, writes, cost;
  std::vector<std::uint64_t> output;
};

KernelRun run_merge_runs(std::size_t k, std::size_t M, std::size_t B,
                         std::uint64_t omega, MergeKernel kernel,
                         std::uint64_t seed) {
  Machine mach(cfg_of(M, B, omega));
  util::Rng rng(seed);
  std::vector<std::uint64_t> host;
  std::vector<RunBounds> runs;
  const std::size_t run_len = 4 * B;
  for (std::size_t r = 0; r < k; ++r) {
    auto keys = util::random_keys(run_len, rng);
    std::sort(keys.begin(), keys.end());
    runs.push_back(RunBounds{host.size(), host.size() + run_len});
    host.insert(host.end(), keys.begin(), keys.end());
  }
  ExtArray<std::uint64_t> in(mach, host.size(), "runs");
  in.unsafe_host_fill(host);
  ExtArray<std::uint64_t> out(mach, host.size(), "out");
  mach.reset_stats();
  merge_runs(in, std::span<const RunBounds>(runs), out, 0,
             std::less<std::uint64_t>{}, std::nullptr_t{}, nullptr, kernel);
  return {mach.stats().reads, mach.stats().writes, mach.cost(),
          out.unsafe_host_view()};
}

TEST(MergeKernelInvariance, MergeRunsQExactlyUnchangedAcrossGrid) {
  // Property: for every (k, B, omega) point, the loser-tree merge charges
  // EXACTLY the reads, writes, and Q of the reference scan — and writes the
  // same output.  Not "close": equal.
  for (std::size_t k : {1u, 2u, 3u, 5u, 8u, 16u}) {
    for (std::size_t B : {8u, 16u}) {
      for (std::uint64_t omega : {1u, 8u, 64u}) {
        const std::size_t M = std::max<std::size_t>(16 * B, 4 * k * B);
        const std::uint64_t seed = 1000 * k + 10 * B + omega;
        const KernelRun scan =
            run_merge_runs(k, M, B, omega, MergeKernel::kScanSelect, seed);
        const KernelRun loser =
            run_merge_runs(k, M, B, omega, MergeKernel::kLoserTree, seed);
        EXPECT_EQ(scan.reads, loser.reads)
            << "k=" << k << " B=" << B << " omega=" << omega;
        EXPECT_EQ(scan.writes, loser.writes)
            << "k=" << k << " B=" << B << " omega=" << omega;
        EXPECT_EQ(scan.cost, loser.cost)
            << "k=" << k << " B=" << B << " omega=" << omega;
        EXPECT_EQ(scan.output, loser.output)
            << "k=" << k << " B=" << B << " omega=" << omega;
      }
    }
  }
}

KernelRun run_em_group(std::size_t k, std::size_t B, std::uint64_t omega,
                       MergeKernel kernel, std::uint64_t seed) {
  const std::size_t M = (k + 2) * B + 4 * k;
  Machine mach(cfg_of(M, B, omega));
  util::Rng rng(seed);
  std::vector<std::uint64_t> host;
  std::vector<RunBounds> runs;
  for (std::size_t r = 0; r < k; ++r) {
    const std::size_t run_len = (1 + rng.next() % 4) * B;
    auto keys = util::random_keys(run_len, rng);
    std::sort(keys.begin(), keys.end());
    runs.push_back(RunBounds{host.size(), host.size() + run_len});
    host.insert(host.end(), keys.begin(), keys.end());
  }
  ExtArray<std::uint64_t> in(mach, host.size(), "runs");
  in.unsafe_host_fill(host);
  ExtArray<std::uint64_t> out(mach, host.size(), "out");
  mach.reset_stats();
  sort_detail::em_merge_group(in, std::span<const RunBounds>(runs), out, 0,
                              std::less<std::uint64_t>{}, kernel);
  return {mach.stats().reads, mach.stats().writes, mach.cost(),
          out.unsafe_host_view()};
}

TEST(MergeKernelInvariance, EmMergeGroupQExactlyUnchangedAcrossGrid) {
  for (std::size_t k : {1u, 2u, 3u, 6u, 9u, 16u}) {
    for (std::size_t B : {8u, 16u}) {
      for (std::uint64_t omega : {1u, 16u}) {
        const std::uint64_t seed = 2000 * k + 10 * B + omega;
        const KernelRun scan =
            run_em_group(k, B, omega, MergeKernel::kScanSelect, seed);
        const KernelRun loser =
            run_em_group(k, B, omega, MergeKernel::kLoserTree, seed);
        EXPECT_EQ(scan.reads, loser.reads)
            << "k=" << k << " B=" << B << " omega=" << omega;
        EXPECT_EQ(scan.writes, loser.writes)
            << "k=" << k << " B=" << B << " omega=" << omega;
        EXPECT_EQ(scan.cost, loser.cost)
            << "k=" << k << " B=" << B << " omega=" << omega;
        EXPECT_EQ(scan.output, loser.output)
            << "k=" << k << " B=" << B << " omega=" << omega;
      }
    }
  }
}

TEST(MergeKernelInvariance, FullSortsAgreeAcrossKernels) {
  // End-to-end: both sorts produce sorted output with the default
  // (loser-tree) kernel — the kernels are exercised through their real
  // call sites, not just the unit harness above.
  Machine mach(cfg_of(256, 16, 8));
  util::Rng rng(7);
  const std::size_t N = 1 << 12;
  auto keys = util::random_keys(N, rng);
  ExtArray<std::uint64_t> in(mach, N, "in");
  in.unsafe_host_fill(keys);
  ExtArray<std::uint64_t> out(mach, N, "out");
  aem_merge_sort(in, out);
  auto expect = keys;
  std::sort(expect.begin(), expect.end());
  EXPECT_EQ(out.unsafe_host_view(), expect);

  Machine mach2(cfg_of(256, 16, 8));
  ExtArray<std::uint64_t> in2(mach2, N, "in");
  in2.unsafe_host_fill(keys);
  ExtArray<std::uint64_t> out2(mach2, N, "out");
  em_merge_sort(in2, out2);
  EXPECT_EQ(out2.unsafe_host_view(), expect);
}

}  // namespace
}  // namespace aem
