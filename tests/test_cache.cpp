// Tests for core/cache: eviction-policy mechanics (BlockCache directly),
// charged-cost accounting and write coalescing through ExtArray, the
// omega-derived clean-first window, lifetime edges (moves, destruction,
// restaging), interaction with fault injection (write-back retry /
// retirement / remap, flush under BudgetExceeded), and the property that
// caching never changes outputs — only Q.
#include <gtest/gtest.h>

#include <algorithm>
#include <span>
#include <vector>

#include "core/cache.hpp"
#include "core/ext_array.hpp"
#include "core/faults.hpp"
#include "core/machine.hpp"
#include "permute/permutation.hpp"
#include "permute/scatter.hpp"
#include "sort/mergesort.hpp"
#include "util/rng.hpp"

namespace {

using namespace aem;

Config cfg(std::size_t M, std::size_t B, std::uint64_t w) {
  Config c;
  c.memory_elems = M;
  c.block_elems = B;
  c.write_cost = w;
  return c;
}

Config cached_cfg(std::size_t M, std::size_t B, std::uint64_t w,
                  std::size_t capacity, CachePolicy p = CachePolicy::kLru) {
  Config c = cfg(M, B, w);
  c.cache.capacity_blocks = capacity;
  c.cache.policy = p;
  return c;
}

/// Records the order of write-backs the cache requested.
struct RecordingSink : BlockCache::Sink {
  std::vector<std::uint64_t> written;
  void cache_write_back(std::uint64_t block) override {
    written.push_back(block);
  }
};

/// Sink that throws on the Nth write-back (1-based), modeling a
/// BudgetExceeded / FaultError escaping mid-eviction.
struct ThrowingSink : BlockCache::Sink {
  explicit ThrowingSink(std::size_t fail_at) : fail_at_(fail_at) {}
  std::size_t fail_at_;
  std::size_t calls = 0;
  void cache_write_back(std::uint64_t) override {
    if (++calls == fail_at_) throw std::runtime_error("write-back failed");
  }
};

// --- config & construction -----------------------------------------------

TEST(CacheConfigTest, ValidateRejectsWindowBeyondCapacity) {
  CacheConfig c;
  c.capacity_blocks = 4;
  c.clean_window = 5;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c.clean_window = 4;
  EXPECT_NO_THROW(c.validate());
}

TEST(BlockCacheTest, ConstructorRejectsZeroCapacity) {
  CacheConfig c;  // capacity 0 = bypass, not a constructible cache
  EXPECT_THROW(BlockCache(c, 8), std::invalid_argument);
}

TEST(BlockCacheTest, CleanFirstWindowDerivesFromOmega) {
  CacheConfig c;
  c.capacity_blocks = 64;
  c.policy = CachePolicy::kCleanFirst;
  // omega = 1: window 0 — the policy IS exact LRU.
  EXPECT_EQ(BlockCache(c, 1).window(), 0u);
  // omega = 8: 64 - max(1, 64/8) = 56.
  EXPECT_EQ(BlockCache(c, 8).window(), 56u);
  // omega >= capacity: 64 - max(1, 64/64) = 63 (protect only the MRU).
  EXPECT_EQ(BlockCache(c, 1024).window(), 63u);
  // Explicit window wins over the derivation.
  c.clean_window = 10;
  EXPECT_EQ(BlockCache(c, 8).window(), 10u);
  // Other policies have no window.
  c.policy = CachePolicy::kLru;
  c.clean_window = 0;
  EXPECT_EQ(BlockCache(c, 8).window(), 0u);
}

// --- eviction-policy mechanics (BlockCache directly) ----------------------

TEST(BlockCacheTest, LruEvictsLeastRecentlyTouched) {
  CacheConfig c;
  c.capacity_blocks = 3;
  BlockCache bc(c, 8);
  RecordingSink sink;
  bc.insert(0, 0, true, &sink);
  bc.insert(0, 1, true, &sink);
  bc.insert(0, 2, true, &sink);
  ASSERT_TRUE(bc.find_read(0, 0));  // 0 becomes MRU; LRU order: 1, 2, 0
  bc.insert(0, 3, true, &sink);     // evicts 1
  EXPECT_EQ(sink.written, (std::vector<std::uint64_t>{1}));
  EXPECT_FALSE(bc.contains(0, 1));
  EXPECT_TRUE(bc.contains(0, 0));
  bc.insert(0, 4, true, &sink);  // evicts 2
  EXPECT_EQ(sink.written, (std::vector<std::uint64_t>{1, 2}));
}

TEST(BlockCacheTest, ClockGivesSecondChanceToReferencedFrames) {
  CacheConfig c;
  c.capacity_blocks = 3;
  c.policy = CachePolicy::kClock;
  BlockCache bc(c, 8);
  RecordingSink sink;
  bc.insert(0, 0, true, &sink);  // frame 0
  bc.insert(0, 1, true, &sink);  // frame 1
  bc.insert(0, 2, true, &sink);  // frame 2
  // All ref bits set at insert; the first eviction sweep clears them all
  // and wraps to frame 0: block 0 is the victim despite being "oldest by
  // hand position" — but re-reference block 0 first so its bit survives
  // one extra clear and the hand settles on block 1.
  ASSERT_TRUE(bc.find_read(0, 0));
  bc.insert(0, 3, true, &sink);
  // Sweep: f0 ref->clear, f1 ref->clear, f2 ref->clear, f0 ref(set by
  // find_read? no: find_read sets ref, then cleared once)... the victim is
  // the first frame reached twice with a clear bit: frame 0.
  ASSERT_EQ(sink.written.size(), 1u);
  // Whichever frame was chosen, exactly two of the original three remain
  // and the cache is full again.
  EXPECT_EQ(bc.resident(), 3u);
  EXPECT_TRUE(bc.contains(0, 3));
}

TEST(BlockCacheTest, CleanFirstPrefersCleanVictimInWindow) {
  CacheConfig c;
  c.capacity_blocks = 3;
  c.policy = CachePolicy::kCleanFirst;
  c.clean_window = 3;
  BlockCache bc(c, 8);
  RecordingSink sink;
  bc.insert(0, 0, true, &sink);   // dirty
  bc.insert(0, 1, false, &sink);  // clean
  bc.insert(0, 2, true, &sink);   // dirty; LRU order: 0, 1, 2
  bc.insert(0, 3, true, &sink);
  // Plain LRU would evict dirty block 0 (a charged write-back); the clean
  // scan skips it and evicts clean block 1 for free.
  EXPECT_TRUE(sink.written.empty());
  EXPECT_FALSE(bc.contains(0, 1));
  EXPECT_TRUE(bc.contains(0, 0));
  EXPECT_EQ(bc.stats().evictions_clean, 1u);
  EXPECT_EQ(bc.stats().evictions_dirty, 0u);
}

TEST(BlockCacheTest, CleanFirstFallsBackToLruWhenWindowIsAllDirty) {
  CacheConfig c;
  c.capacity_blocks = 3;
  c.policy = CachePolicy::kCleanFirst;
  c.clean_window = 1;  // only the tail block is scanned
  BlockCache bc(c, 8);
  RecordingSink sink;
  bc.insert(0, 0, true, &sink);
  bc.insert(0, 1, false, &sink);  // clean, but OUTSIDE the 1-block window
  bc.insert(0, 2, true, &sink);
  bc.insert(0, 3, true, &sink);  // window = {0} (dirty): LRU fallback
  EXPECT_EQ(sink.written, (std::vector<std::uint64_t>{0}));
  EXPECT_EQ(bc.stats().evictions_dirty, 1u);
}

TEST(BlockCacheTest, FindWriteMarksDirtyAndEvictionWritesBackOnce) {
  CacheConfig c;
  c.capacity_blocks = 2;
  BlockCache bc(c, 8);
  RecordingSink sink;
  bc.insert(0, 7, false, &sink);
  EXPECT_FALSE(bc.dirty(0, 7));
  ASSERT_TRUE(bc.find_write(0, 7));
  ASSERT_TRUE(bc.find_write(0, 7));  // second dirtying is a no-op
  EXPECT_TRUE(bc.dirty(0, 7));
  EXPECT_EQ(bc.resident_dirty(), 1u);
  bc.insert(0, 8, false, &sink);
  bc.insert(0, 9, false, &sink);  // evicts 7: exactly one write-back
  EXPECT_EQ(sink.written, (std::vector<std::uint64_t>{7}));
  EXPECT_EQ(bc.stats().write_hits, 2u);
  EXPECT_EQ(bc.stats().write_backs, 1u);
}

TEST(BlockCacheTest, FlushWritesDirtyBlocksInDeterministicOrderAndKeepsThem) {
  CacheConfig c;
  c.capacity_blocks = 8;
  BlockCache bc(c, 8);
  RecordingSink sink;
  bc.insert(0, 5, true, &sink);
  bc.insert(0, 2, true, &sink);
  bc.insert(0, 9, false, &sink);
  bc.insert(0, 7, true, &sink);
  EXPECT_EQ(bc.flush(), 3u);
  EXPECT_EQ(sink.written, (std::vector<std::uint64_t>{2, 5, 7}));  // sorted
  EXPECT_EQ(bc.resident(), 4u);  // flush cleans, it does not evict
  EXPECT_EQ(bc.resident_dirty(), 0u);
  EXPECT_EQ(bc.flush(), 0u);  // nothing left to write
  EXPECT_EQ(bc.stats().flushes, 2u);
}

TEST(BlockCacheTest, ExceptionDuringEvictionLeavesVictimResidentAndDirty) {
  CacheConfig c;
  c.capacity_blocks = 2;
  BlockCache bc(c, 8);
  ThrowingSink sink(1);
  bc.insert(0, 0, true, &sink);
  bc.insert(0, 1, true, &sink);
  EXPECT_THROW(bc.insert(0, 2, true, &sink), std::runtime_error);
  // The victim (block 0) is untouched; the new block was never inserted.
  EXPECT_TRUE(bc.contains(0, 0));
  EXPECT_TRUE(bc.dirty(0, 0));
  EXPECT_FALSE(bc.contains(0, 2));
  EXPECT_EQ(bc.resident(), 2u);
  EXPECT_EQ(bc.resident_dirty(), 2u);
}

TEST(BlockCacheTest, ExceptionMidFlushKeepsRemainderDirtyAndIsRetryable) {
  CacheConfig c;
  c.capacity_blocks = 4;
  BlockCache bc(c, 8);
  ThrowingSink sink(2);  // second write-back (block 1) fails
  bc.insert(0, 0, true, &sink);
  bc.insert(0, 1, true, &sink);
  bc.insert(0, 2, true, &sink);
  EXPECT_THROW(bc.flush(), std::runtime_error);
  EXPECT_FALSE(bc.dirty(0, 0));  // flushed before the failure
  EXPECT_TRUE(bc.dirty(0, 1));   // the failing block stays dirty
  EXPECT_TRUE(bc.dirty(0, 2));   // never reached
  EXPECT_EQ(bc.flush(), 2u);     // simply call again
  EXPECT_EQ(bc.resident_dirty(), 0u);
}

TEST(BlockCacheTest, InvalidateArrayDropsDirtyUnchargedAndCountsThem) {
  CacheConfig c;
  c.capacity_blocks = 4;
  BlockCache bc(c, 8);
  RecordingSink a, b;
  bc.insert(0, 0, true, &a);
  bc.insert(1, 0, true, &b);
  bc.insert(0, 1, false, &a);
  bc.invalidate_array(0);
  EXPECT_TRUE(a.written.empty());  // no write-backs on invalidation
  EXPECT_EQ(bc.stats().invalidated_dirty, 1u);
  EXPECT_FALSE(bc.contains(0, 0));
  EXPECT_TRUE(bc.contains(1, 0));  // other arrays untouched
  EXPECT_EQ(bc.resident(), 1u);
  EXPECT_EQ(bc.resident_dirty(), 1u);
}

// --- accounting through ExtArray / Machine --------------------------------

TEST(CachedMachineTest, HitsAreFreeMissesChargeOneRead) {
  Machine mach(cached_cfg(64, 8, 4, 4));
  ExtArray<int> arr(mach, 32, "a");
  std::vector<int> buf(8);
  arr.read_block(0, std::span<int>(buf));  // miss: 1 charged read
  EXPECT_EQ(mach.stats().reads, 1u);
  arr.read_block(0, std::span<int>(buf));  // hit: free
  arr.read_block(0, std::span<int>(buf));
  EXPECT_EQ(mach.stats().reads, 1u);
  EXPECT_EQ(mach.stats().writes, 0u);
  EXPECT_EQ(mach.cache()->stats().read_hits, 2u);
  EXPECT_EQ(mach.cache()->stats().read_misses, 1u);
}

TEST(CachedMachineTest, WritesAreDeferredAndCoalescedUntilFlush) {
  Machine mach(cached_cfg(64, 8, 4, 4));
  ExtArray<int> arr(mach, 32, "a");
  std::vector<int> buf(8, 1);
  for (int rep = 0; rep < 10; ++rep) {
    buf[0] = rep;
    arr.write_block(2, std::span<const int>(buf));
  }
  EXPECT_EQ(mach.stats().writes, 0u);  // nothing charged yet
  EXPECT_EQ(mach.cost(), 0u);
  EXPECT_EQ(mach.flush_cache(), 1u);  // 10 rewrites -> ONE device write
  EXPECT_EQ(mach.stats().writes, 1u);
  EXPECT_EQ(mach.cost(), 4u);  // omega = 4
  // The stored data is the last version.
  std::vector<int> back(8);
  arr.read_block(2, std::span<int>(back));
  EXPECT_EQ(back[0], 9);
}

TEST(CachedMachineTest, HitsProduceNoTraceOpsAndNoWear) {
  Machine mach(cached_cfg(64, 8, 4, 4));
  mach.enable_trace();
  mach.enable_wear_tracking();
  ExtArray<int> arr(mach, 32, "a");
  std::vector<int> buf(8, 3);
  arr.write_block(0, std::span<const int>(buf));  // resident, deferred
  arr.write_block(0, std::span<const int>(buf));
  arr.read_block(0, std::span<int>(buf));
  EXPECT_EQ(mach.trace()->size(), 0u);  // the device saw nothing
  EXPECT_EQ(mach.wear_stats().blocks_written, 0u);
  mach.flush_cache();
  EXPECT_EQ(mach.trace()->size(), 1u);  // exactly the one real write
  EXPECT_EQ(mach.wear_stats().blocks_written, 1u);
  EXPECT_EQ(mach.wear_stats().max_writes, 1u);
}

TEST(CachedMachineTest, HitTicketsAreInvalid) {
  Machine mach(cached_cfg(64, 8, 4, 4));
  mach.enable_trace();
  ExtArray<int> arr(mach, 32, "a");
  std::vector<int> buf(8);
  BlockIo miss = arr.read_block(1, std::span<int>(buf));
  EXPECT_TRUE(miss.ticket.valid());
  BlockIo hit = arr.read_block(1, std::span<int>(buf));
  EXPECT_FALSE(hit.ticket.valid());
}

TEST(CachedMachineTest, ResetStatsKeepsResidencyAndDirtiness) {
  Machine mach(cached_cfg(64, 8, 4, 4));
  ExtArray<int> arr(mach, 32, "a");
  std::vector<int> buf(8, 5);
  arr.write_block(0, std::span<const int>(buf));
  mach.reset_stats();
  EXPECT_EQ(mach.cache()->stats(), CacheStats{});
  EXPECT_EQ(mach.cache()->resident(), 1u);
  EXPECT_EQ(mach.cache()->resident_dirty(), 1u);
  // The deferred write is still owed — and charged to the fresh counters.
  EXPECT_EQ(mach.flush_cache(), 1u);
  EXPECT_EQ(mach.stats().writes, 1u);
}

TEST(CachedMachineTest, MovedArrayKeepsCacheWorking) {
  Machine mach(cached_cfg(64, 8, 4, 4));
  ExtArray<int> a(mach, 32, "a");
  std::vector<int> buf(8, 7);
  a.write_block(3, std::span<const int>(buf));
  ExtArray<int> b = std::move(a);  // sink must be re-pointed at b
  EXPECT_EQ(mach.flush_cache(), 1u);
  std::vector<int> back(8);
  b.read_block(3, std::span<int>(back));
  EXPECT_EQ(back[0], 7);
}

TEST(CachedMachineTest, DestructionDropsDirtyBlocksUncharged) {
  Machine mach(cached_cfg(64, 8, 4, 4));
  {
    ExtArray<int> a(mach, 32, "doomed");
    std::vector<int> buf(8, 7);
    a.write_block(0, std::span<const int>(buf));
  }
  EXPECT_EQ(mach.stats().writes, 0u);  // dropped, not written back
  EXPECT_EQ(mach.cache()->stats().invalidated_dirty, 1u);
  EXPECT_EQ(mach.cache()->resident(), 0u);
  EXPECT_EQ(mach.flush_cache(), 0u);
}

TEST(CachedMachineTest, HostFillDropsStaleCachedBlocks) {
  Machine mach(cached_cfg(64, 8, 4, 4));
  ExtArray<int> a(mach, 32, "a");
  std::vector<int> buf(8);
  a.read_block(0, std::span<int>(buf));  // default-initialized zeros
  std::vector<int> fresh(32);
  for (int i = 0; i < 32; ++i) fresh[i] = 100 + i;
  a.unsafe_host_fill(std::span<const int>(fresh));
  a.read_block(0, std::span<int>(buf));  // must NOT serve the stale zeros
  EXPECT_EQ(buf[0], 100);
}

TEST(CachedMachineTest, InstallAndRemoveAtRuntime) {
  Machine mach(cfg(64, 8, 4));
  EXPECT_EQ(mach.cache(), nullptr);
  EXPECT_EQ(mach.flush_cache(), 0u);  // no-op without a cache
  CacheConfig cc;
  cc.capacity_blocks = 2;
  mach.install_cache(cc);
  ASSERT_NE(mach.cache(), nullptr);
  EXPECT_EQ(mach.cache()->capacity(), 2u);
  mach.remove_cache();
  EXPECT_EQ(mach.cache(), nullptr);
  // Capacity 0 through install_cache is bypass, not an error.
  cc.capacity_blocks = 0;
  mach.install_cache(cc);
  EXPECT_EQ(mach.cache(), nullptr);
}

// --- interaction with fault injection -------------------------------------

TEST(CacheFaultTest, WriteBackRetriesThroughFaultPolicy) {
  Machine mach(cached_cfg(64, 8, 4, 2));
  FaultConfig fc;
  fc.seed = 7;
  fc.silent_write_rate = 0.5;  // every other write-back attempt corrupts
  fc.max_retries = 50;
  mach.install_faults(fc);
  ExtArray<int> arr(mach, 64, "a");
  std::vector<int> buf(8);
  for (int bi = 0; bi < 8; ++bi) {
    for (int i = 0; i < 8; ++i) buf[i] = bi * 8 + i;
    arr.write_block(bi, std::span<const int>(buf));  // evictions write back
  }
  mach.flush_cache();
  const FaultStats& fs = mach.faults()->stats();
  EXPECT_GT(fs.silent_write_faults, 0u);  // faults really fired
  EXPECT_GT(fs.write_retries, 0u);        // and were retried, charged
  // Every retry was a real omega-write on top of the 8 logical ones.
  EXPECT_GT(mach.stats().writes, 8u);
  // The stored data survived the faulty write-backs.
  mach.clear_faults();
  for (int bi = 0; bi < 8; ++bi) {
    arr.read_block(bi, std::span<int>(buf));
    for (int i = 0; i < 8; ++i) EXPECT_EQ(buf[i], bi * 8 + i);
  }
}

TEST(CacheFaultTest, WriteBackRetirementMigratesToSpareTransparently) {
  Machine mach(cached_cfg(64, 8, 4, 2));
  FaultConfig fc;
  fc.endurance = 3;  // blocks die after 3 lifetime writes
  fc.spare_blocks = 16;
  mach.install_faults(fc);
  ExtArray<int> arr(mach, 32, "a");
  std::vector<int> buf(8);
  // Hammer block 0 with flushed write-backs until it retires and remaps.
  for (int rep = 0; rep < 6; ++rep) {
    for (int i = 0; i < 8; ++i) buf[i] = rep * 10 + i;
    arr.write_block(0, std::span<const int>(buf));
    mach.flush_cache();
  }
  EXPECT_GT(arr.remapped_blocks(), 0u);
  EXPECT_GT(mach.faults()->stats().remaps, 0u);
  // Reads — cached or not — still deliver the latest data.
  std::vector<int> back(8);
  arr.read_block(0, std::span<int>(back));
  EXPECT_EQ(back[0], 50);
  arr.read_block(0, std::span<int>(back));  // pool hit on a remapped block
  EXPECT_EQ(back[7], 57);
  EXPECT_GT(mach.cache()->stats().read_hits, 0u);
}

TEST(CacheFaultTest, ReadMissOfRemappedBlockRefreshesPoolFrame) {
  // After a block migrates to a spare, the native region holds stale
  // pre-remap bytes; a cached read miss must adopt the DELIVERED (spare)
  // copy so later pool hits serve current data.
  Machine mach(cached_cfg(64, 8, 4, 2));
  FaultConfig fc;
  fc.endurance = 2;
  fc.spare_blocks = 8;
  mach.install_faults(fc);
  ExtArray<int> arr(mach, 32, "a");
  std::vector<int> buf(8);
  for (int rep = 0; rep < 5; ++rep) {
    for (int i = 0; i < 8; ++i) buf[i] = rep * 10 + i;
    arr.write_block(0, std::span<const int>(buf));
    mach.flush_cache();
    // Push block 0 out of the pool so the next read is a true miss.
    arr.write_block(1, std::span<const int>(buf));
    arr.write_block(2, std::span<const int>(buf));
    mach.flush_cache();
  }
  ASSERT_GT(arr.remapped_blocks(), 0u);
  std::vector<int> back(8);
  arr.read_block(0, std::span<int>(back));  // miss: reads the spare
  EXPECT_EQ(back[0], 40);
  arr.read_block(0, std::span<int>(back));  // hit: pool frame must agree
  EXPECT_EQ(back[0], 40);
}

TEST(CacheFaultTest, BudgetExceededDuringFlushLeavesConsistentStateAndRetries) {
  Machine mach(cached_cfg(64, 8, 4, 8));
  FaultConfig fc;
  fc.max_cost = 6;  // one omega-write (4) fits, the second (8) trips
  mach.install_faults(fc);
  ExtArray<int> arr(mach, 64, "a");
  std::vector<int> buf(8, 1);
  arr.write_block(0, std::span<const int>(buf));
  arr.write_block(1, std::span<const int>(buf));
  arr.write_block(2, std::span<const int>(buf));
  EXPECT_THROW(mach.flush_cache(), BudgetExceeded);
  // One block was flushed (the one whose write tripped the ceiling is
  // charged but stays dirty only if the charge threw BEFORE the sink
  // marked it clean — either way the invariant is: dirty blocks left are
  // exactly the writes Q has not (fully) accounted.  Retrying after the
  // ceiling is lifted completes the flush.
  mach.clear_faults();
  mach.flush_cache();
  EXPECT_EQ(mach.cache()->resident_dirty(), 0u);
  // All three blocks hold their data.
  for (int bi = 0; bi < 3; ++bi) {
    std::vector<int> back(8);
    arr.read_block(bi, std::span<int>(back));
    EXPECT_EQ(back[0], 1);
  }
}

TEST(CacheFaultTest, EvictionBudgetFailureKeepsVictimAndDataIntact) {
  Machine mach(cached_cfg(64, 8, 4, 2));
  FaultConfig fc;
  fc.max_cost = 2;  // any omega-write (4) trips the ceiling
  mach.install_faults(fc);
  ExtArray<int> arr(mach, 64, "a");
  std::vector<int> one(8, 1), two(8, 2), three(8, 3);
  arr.write_block(0, std::span<const int>(one));
  arr.write_block(1, std::span<const int>(two));
  // The third write must evict a dirty victim; the write-back trips the
  // budget and the victim must stay resident + dirty.
  EXPECT_THROW(arr.write_block(2, std::span<const int>(three)),
               BudgetExceeded);
  EXPECT_EQ(mach.cache()->resident(), 2u);
  EXPECT_EQ(mach.cache()->resident_dirty(), 2u);
  mach.clear_faults();
  std::vector<int> back(8);
  arr.read_block(0, std::span<int>(back));
  EXPECT_EQ(back[0], 1);
  arr.read_block(1, std::span<int>(back));
  EXPECT_EQ(back[0], 2);
}

TEST(CacheFaultTest, TornWriteDuringFlushPinsExactCharges) {
  // Regression guard for the write-back/retry accounting audit: a torn
  // write injected during flush() must charge EXACTLY one extra write and
  // the two verify reads — nothing double-charged, nothing dropped, and the
  // block must come out clean and correct.
  //
  // Find a schedule whose first write draw tears and whose second is clean.
  // The probe replays the exact draw sequence of one flushed block under
  // verify_writes (read_fault_rate = 0, so verify reads draw nothing):
  //   attempt 1: draw_write_fault -> torn, draw_u64 (torn prefix length)
  //   attempt 2: draw_write_fault -> clean
  FaultConfig fc;
  fc.torn_write_rate = 0.5;
  fc.verify_writes = true;
  fc.checksum_reads = true;
  bool found = false;
  for (std::uint64_t seed = 1; seed < 256 && !found; ++seed) {
    fc.seed = seed;
    FaultPolicy probe(fc);
    if (probe.draw_write_fault() == FaultKind::kTornWrite) {
      probe.draw_u64();
      found = probe.draw_write_fault() == FaultKind::kNone;
    }
  }
  ASSERT_TRUE(found) << "no seed < 256 gives torn-then-clean (rate 0.5?)";

  const std::uint64_t omega = 4;
  Machine mach(cached_cfg(64, 8, omega, /*capacity=*/8));
  mach.install_faults(fc);
  ExtArray<int> arr(mach, 64, "a");
  std::vector<int> buf(8);
  for (int i = 0; i < 8; ++i) buf[i] = 30 + i;

  // The write itself is absorbed by the pool: zero device I/O so far.
  arr.write_block(3, std::span<const int>(buf));
  ASSERT_EQ(mach.stats(), (IoStats{0, 0}));
  ASSERT_EQ(mach.cache()->resident_dirty(), 1u);

  EXPECT_EQ(mach.flush_cache(), 1u);

  // Exact charges: write attempt (torn) + verify read + rewrite + verify
  // read = 2 reads, 2 writes, Q = 2 + 2*omega.
  EXPECT_EQ(mach.stats(), (IoStats{2, 2}));
  EXPECT_EQ(mach.cost(), 2 + 2 * omega);
  const FaultStats& fs = mach.faults()->stats();
  EXPECT_EQ(fs.torn_write_faults, 1u);
  EXPECT_EQ(fs.verify_failures, 1u);
  EXPECT_EQ(fs.write_retries, 1u);
  EXPECT_EQ(fs.silent_write_faults, 0u);
  EXPECT_EQ(fs.read_faults, 0u);
  const CacheStats cs = mach.cache()->stats();
  EXPECT_EQ(cs.write_backs, 1u);
  EXPECT_EQ(cs.flushes, 1u);
  EXPECT_EQ(mach.cache()->resident_dirty(), 0u);

  // The block is clean: a second flush writes back nothing and charges
  // nothing (the retry did not leave a phantom dirty bit).
  EXPECT_EQ(mach.flush_cache(), 0u);
  EXPECT_EQ(mach.stats(), (IoStats{2, 2}));
  EXPECT_EQ(mach.cache()->stats().write_backs, 1u);

  // And the stored data survived the torn first attempt.
  std::vector<int> back(8);
  arr.read_block(3, std::span<int>(back));  // pool hit: free
  for (int i = 0; i < 8; ++i) EXPECT_EQ(back[i], 30 + i);
  EXPECT_EQ(mach.stats(), (IoStats{2, 2}));
}

// --- the cache changes Q, never results -----------------------------------

TEST(CacheInvarianceTest, SortAndScatterOutputsMatchUncachedRuns) {
  const std::size_t N = 2048, M = 256, B = 16;
  util::Rng rng(99);
  const std::vector<std::uint64_t> keys = util::random_keys(N, rng);
  const perm::Perm dest = perm::random(N, rng);

  auto run = [&](Config c, bool sort) {
    Machine mach(c);
    ExtArray<std::uint64_t> in(mach, N, "in");
    in.unsafe_host_fill(keys);
    ExtArray<std::uint64_t> out(mach, N, "out");
    mach.reset_stats();
    if (sort) {
      aem_merge_sort(in, out);
    } else {
      scatter_permute(in, std::span<const std::uint64_t>(dest), out);
    }
    mach.flush_cache();
    return std::pair(out.unsafe_host_view(), mach.cost());
  };

  for (bool sort : {true, false}) {
    const auto [expect, q_off] = run(cfg(M, B, 16), sort);
    for (CachePolicy p : {CachePolicy::kLru, CachePolicy::kClock,
                          CachePolicy::kCleanFirst}) {
      for (std::size_t cap : {4u, 32u, 256u}) {
        const auto [got, q] = run(cached_cfg(M, B, 16, cap, p), sort);
        EXPECT_EQ(got, expect)
            << (sort ? "sort" : "scatter") << " policy=" << to_string(p)
            << " cap=" << cap;
        // A flushed pool can only remove I/Os, never add them.
        EXPECT_LE(q, q_off) << (sort ? "sort" : "scatter")
                            << " policy=" << to_string(p) << " cap=" << cap;
      }
    }
  }
}

TEST(CacheInvarianceTest, CleanFirstAtOmegaOneIsExactlyLru) {
  const std::size_t N = 1024, M = 128, B = 8;
  util::Rng rng(5);
  const std::vector<std::uint64_t> keys = util::random_keys(N, rng);
  const perm::Perm dest = perm::random(N, rng);
  auto run = [&](CachePolicy p) {
    Machine mach(cached_cfg(M, B, 1, 16, p));
    ExtArray<std::uint64_t> in(mach, N, "in");
    in.unsafe_host_fill(keys);
    ExtArray<std::uint64_t> out(mach, N, "out");
    mach.reset_stats();
    scatter_permute(in, std::span<const std::uint64_t>(dest), out);
    mach.flush_cache();
    return std::tuple(mach.stats().reads, mach.stats().writes,
                      mach.cache()->stats());
  };
  // Identical counters bit for bit: at omega = 1 the derived window is 0.
  EXPECT_EQ(run(CachePolicy::kCleanFirst), run(CachePolicy::kLru));
}

// --- dangling-sink regression --------------------------------------------
// invalidate_array used to return early when the array had no RESIDENT
// blocks, leaving its Sink pointer registered — a pointer into the ExtArray
// being destroyed.  Any later dirty write-back touching that slot would
// call through freed memory.  The fix forgets the sink unconditionally, and
// evict_one()/flush() refuse (std::logic_error) to dereference a missing
// sink instead of crashing.

TEST(BlockCacheTest, DirtyEvictionWithoutSinkThrowsLogicError) {
  CacheConfig cc;
  cc.capacity_blocks = 1;
  BlockCache bc(cc, 1);
  bc.insert(0, 0, /*dirty=*/true, nullptr);
  // The pool is full, so this insert must evict the sink-less dirty block.
  EXPECT_THROW(bc.insert(0, 1, /*dirty=*/false, nullptr), std::logic_error);
}

TEST(BlockCacheTest, DirtyFlushWithoutSinkThrowsLogicError) {
  CacheConfig cc;
  cc.capacity_blocks = 2;
  BlockCache bc(cc, 1);
  bc.insert(0, 0, /*dirty=*/true, nullptr);
  EXPECT_THROW(bc.flush(), std::logic_error);
}

TEST(BlockCacheTest, InvalidateArrayForgetsSinkEvenWithNoResidentBlocks) {
  RecordingSink sink;
  CacheConfig cc;
  cc.capacity_blocks = 1;
  BlockCache bc(cc, 1);
  bc.insert(0, 0, /*dirty=*/false, &sink);
  EXPECT_TRUE(bc.has_sink(0));
  // Evict array 0's only (clean) block: registration must outlive residency
  // (that is what write-allocate of a later block relies on) ...
  bc.insert(1, 0, /*dirty=*/false, &sink);
  EXPECT_FALSE(bc.contains(0, 0));
  EXPECT_TRUE(bc.has_sink(0));
  // ... but invalidation must clear it even though no block is resident —
  // this is exactly the early-return path that used to leave it dangling.
  bc.invalidate_array(0);
  EXPECT_FALSE(bc.has_sink(0));
  bc.invalidate_array(1);  // resident-block path clears it too
  EXPECT_FALSE(bc.has_sink(1));
}

TEST(CachedMachineTest, DestroyingArrayWithResidentBlocksThenFlushingIsSafe) {
  Machine mach(cached_cfg(4096, 8, 4, 8));
  std::uint32_t dead_id = 0;
  {
    ExtArray<std::uint64_t> doomed(mach, 32, "doomed");
    std::vector<std::uint64_t> blk(8, 7);
    for (std::uint64_t bi = 0; bi < 4; ++bi)
      doomed.write_block(bi, std::span<const std::uint64_t>(blk));
    dead_id = doomed.id();
    EXPECT_EQ(mach.cache()->resident_dirty(), 4u);
    EXPECT_TRUE(mach.cache()->has_sink(dead_id));
  }
  // Destruction dropped the entries AND the sink registration.
  EXPECT_EQ(mach.cache()->resident_dirty(), 0u);
  EXPECT_FALSE(mach.cache()->has_sink(dead_id));
  EXPECT_EQ(mach.cache()->stats().invalidated_dirty, 4u);
  EXPECT_NO_THROW(mach.flush_cache());
  // The pool keeps serving fresh arrays normally afterwards.
  ExtArray<std::uint64_t> fresh(mach, 8, "fresh");
  std::vector<std::uint64_t> blk(8, 9);
  fresh.write_block(0, std::span<const std::uint64_t>(blk));
  EXPECT_EQ(mach.flush_cache(), 1u);
  std::vector<std::uint64_t> back(8, 0);
  fresh.read_block(0, std::span<std::uint64_t>(back));
  EXPECT_EQ(back, blk);
}

}  // namespace
