// Tests for permute/: host permutation utilities, the naive and sort-based
// permutation programs (correctness + Theorem 4.5 cost branches + atom
// conservation), and the dispatcher's crossover behaviour.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "bounds/permute_bounds.hpp"
#include "core/ext_array.hpp"
#include "core/machine.hpp"
#include "permute/dispatch.hpp"
#include "permute/naive.hpp"
#include "permute/permutation.hpp"
#include "permute/sort_permute.hpp"
#include "util/rng.hpp"

namespace {

using namespace aem;

Config cfg(std::size_t M, std::size_t B, std::uint64_t w) {
  Config c;
  c.memory_elems = M;
  c.block_elems = B;
  c.write_cost = w;
  return c;
}

std::vector<std::uint64_t> apply_host(const perm::Perm& dest,
                                      const std::vector<std::uint64_t>& in) {
  std::vector<std::uint64_t> out(in.size());
  for (std::size_t i = 0; i < in.size(); ++i) out[dest[i]] = in[i];
  return out;
}

TEST(PermutationTest, Validation) {
  EXPECT_TRUE(perm::is_permutation({2, 0, 1}));
  EXPECT_FALSE(perm::is_permutation({0, 0, 1}));
  EXPECT_FALSE(perm::is_permutation({0, 3, 1}));
  EXPECT_TRUE(perm::is_permutation({}));
}

TEST(PermutationTest, InverseAndCompose) {
  perm::Perm p{2, 0, 3, 1};
  auto inv = perm::inverse(p);
  EXPECT_EQ(perm::compose(p, inv), perm::identity(4));
  EXPECT_EQ(perm::compose(inv, p), perm::identity(4));
}

TEST(PermutationTest, CycleCount) {
  EXPECT_EQ(perm::cycle_count(perm::identity(5)), 5u);
  EXPECT_EQ(perm::cycle_count({1, 2, 0}), 1u);
  EXPECT_EQ(perm::cycle_count({1, 0, 3, 2}), 2u);
}

TEST(PermutationTest, NamedFamilies) {
  EXPECT_EQ(perm::reversal(4), (perm::Perm{3, 2, 1, 0}));
  EXPECT_EQ(perm::cyclic_shift(4, 1), (perm::Perm{1, 2, 3, 0}));
  // transpose of 2x3: index r*3+c -> c*2+r.
  EXPECT_EQ(perm::transpose(2, 3), (perm::Perm{0, 2, 4, 1, 3, 5}));
  EXPECT_TRUE(perm::is_permutation(perm::bit_reversal(16)));
  EXPECT_EQ(perm::bit_reversal(8)[1], 4u);  // 001 -> 100
  EXPECT_THROW(perm::bit_reversal(6), std::invalid_argument);
  util::Rng rng(1);
  EXPECT_TRUE(perm::is_permutation(perm::random(100, rng)));
}

TEST(NaivePermuteTest, CorrectOnRandom) {
  Machine mach(cfg(128, 8, 4));
  util::Rng rng(41);
  const std::size_t N = 1 << 10;
  auto keys = util::random_keys(N, rng);
  auto dest = perm::random(N, rng);
  ExtArray<std::uint64_t> in(mach, N, "in");
  in.unsafe_host_fill(keys);
  ExtArray<std::uint64_t> out(mach, N, "out");
  naive_permute(in, std::span<const std::uint64_t>(dest), out);
  EXPECT_EQ(out.unsafe_host_view(), apply_host(dest, keys));
  EXPECT_LE(mach.ledger().high_water(), 128u);
}

TEST(NaivePermuteTest, CostAtMostNPlusOmegaN) {
  Machine mach(cfg(128, 8, 16));
  util::Rng rng(43);
  const std::size_t N = 1 << 12;
  auto dest = perm::random(N, rng);
  ExtArray<std::uint64_t> in(mach, N, "in");
  in.unsafe_host_fill(util::random_keys(N, rng));
  ExtArray<std::uint64_t> out(mach, N, "out");
  mach.reset_stats();
  naive_permute(in, std::span<const std::uint64_t>(dest), out);
  EXPECT_LE(mach.stats().reads, N);
  EXPECT_EQ(mach.stats().writes, N / 8);  // exactly n block writes
}

TEST(NaivePermuteTest, IdentityIsScanCheap) {
  // The identity permutation clusters perfectly: n reads + n writes.
  Machine mach(cfg(128, 8, 4));
  const std::size_t N = 1 << 10;
  auto dest = perm::identity(N);
  ExtArray<std::uint64_t> in(mach, N, "in");
  std::vector<std::uint64_t> keys(N);
  for (std::size_t i = 0; i < N; ++i) keys[i] = i;
  in.unsafe_host_fill(keys);
  ExtArray<std::uint64_t> out(mach, N, "out");
  mach.reset_stats();
  naive_permute(in, std::span<const std::uint64_t>(dest), out);
  EXPECT_EQ(mach.stats().reads, N / 8);
  EXPECT_EQ(mach.stats().writes, N / 8);
}

TEST(NaivePermuteTest, RejectsBadInput) {
  Machine mach(cfg(128, 8, 1));
  ExtArray<std::uint64_t> in(mach, 8, "in");
  ExtArray<std::uint64_t> out(mach, 8, "out");
  std::vector<std::uint64_t> wrong_size(4);
  EXPECT_THROW(
      naive_permute(in, std::span<const std::uint64_t>(wrong_size), out),
      std::invalid_argument);
  std::vector<std::uint64_t> oob(8, 99);
  EXPECT_THROW(naive_permute(in, std::span<const std::uint64_t>(oob), out),
               std::invalid_argument);
}

TEST(SortPermuteTest, CorrectOnRandom) {
  Machine mach(cfg(256, 16, 4));
  util::Rng rng(47);
  const std::size_t N = 1 << 12;
  auto keys = util::random_keys(N, rng);
  auto dest = perm::random(N, rng);
  ExtArray<std::uint64_t> in(mach, N, "in");
  in.unsafe_host_fill(keys);
  ExtArray<std::uint64_t> out(mach, N, "out");
  sort_permute(in, std::span<const std::uint64_t>(dest), out);
  EXPECT_EQ(out.unsafe_host_view(), apply_host(dest, keys));
  EXPECT_LE(mach.ledger().high_water(), 256u);
}

TEST(SortPermuteTest, CostTracksSortBranch) {
  const std::size_t N = 1 << 14, M = 256, B = 16;
  const std::uint64_t w = 4;
  Machine mach(cfg(M, B, w));
  util::Rng rng(53);
  auto dest = perm::random(N, rng);
  ExtArray<std::uint64_t> in(mach, N, "in");
  in.unsafe_host_fill(util::random_keys(N, rng));
  ExtArray<std::uint64_t> out(mach, N, "out");
  mach.reset_stats();
  sort_permute(in, std::span<const std::uint64_t>(dest), out);
  bounds::AemParams p{.N = N, .M = M, .B = B, .omega = w};
  const double branch = bounds::permute_bound_sort_branch(p);
  EXPECT_LE(double(mach.cost()), 60.0 * branch);
  // And it must respect the lower bound (sanity of the simulator).
  EXPECT_GE(double(mach.cost()), bounds::permute_lower_bound(p));
}

TEST(SortPermuteTest, PhasesAttributed) {
  Machine mach(cfg(128, 8, 2));
  util::Rng rng(57);
  const std::size_t N = 512;
  auto dest = perm::random(N, rng);
  ExtArray<std::uint64_t> in(mach, N, "in");
  in.unsafe_host_fill(util::random_keys(N, rng));
  ExtArray<std::uint64_t> out(mach, N, "out");
  sort_permute(in, std::span<const std::uint64_t>(dest), out);
  const auto& ps = mach.phase_stats();
  ASSERT_TRUE(ps.count("permute.tag"));
  ASSERT_TRUE(ps.count("permute.sort"));
  ASSERT_TRUE(ps.count("permute.strip"));
  EXPECT_EQ(ps.at("permute.tag").reads, N / 8);
  EXPECT_EQ(ps.at("permute.strip").writes, N / 8);
}

TEST(DispatchTest, PicksNaiveForHugeOmega) {
  Machine mach(cfg(256, 16, 1 << 12));
  EXPECT_EQ(choose_permute_strategy(mach, 1 << 14), PermuteStrategy::kNaive);
}

TEST(DispatchTest, PicksSortForSymmetricMachine) {
  // A regime where sorting genuinely beats the naive gather even with the
  // implementation's constants: large B (element-granular gathering is
  // wasteful) and few merge levels.
  Machine mach(cfg(4096, 64, 1));
  EXPECT_EQ(choose_permute_strategy(mach, 1 << 18),
            PermuteStrategy::kSortBased);
}

TEST(DispatchTest, DispatcherMatchesMeasuredWinner) {
  // For a few machines, run BOTH programs and check the dispatcher picked
  // the one with the lower measured cost (ties/small margins excused by a
  // 1.5x grace factor).
  struct Case {
    std::size_t M, B;
    std::uint64_t w;
  };
  const std::size_t N = 1 << 12;
  for (const Case c : {Case{128, 8, 1}, Case{128, 8, 256}, Case{256, 16, 16}}) {
    util::Rng rng(61 + c.w);
    auto keys = util::random_keys(N, rng);
    auto dest = perm::random(N, rng);

    Machine m1(cfg(c.M, c.B, c.w));
    ExtArray<std::uint64_t> in1(m1, N, "in");
    in1.unsafe_host_fill(keys);
    ExtArray<std::uint64_t> out1(m1, N, "out");
    m1.reset_stats();
    naive_permute(in1, std::span<const std::uint64_t>(dest), out1);
    const double naive_cost = double(m1.cost());

    Machine m2(cfg(c.M, c.B, c.w));
    ExtArray<std::uint64_t> in2(m2, N, "in");
    in2.unsafe_host_fill(keys);
    ExtArray<std::uint64_t> out2(m2, N, "out");
    m2.reset_stats();
    sort_permute(in2, std::span<const std::uint64_t>(dest), out2);
    const double sort_cost = double(m2.cost());

    Machine m3(cfg(c.M, c.B, c.w));
    const PermuteStrategy picked = choose_permute_strategy(m3, N);
    const double picked_cost =
        picked == PermuteStrategy::kNaive ? naive_cost : sort_cost;
    EXPECT_LE(picked_cost, 1.5 * std::min(naive_cost, sort_cost))
        << "M=" << c.M << " B=" << c.B << " w=" << c.w << " naive="
        << naive_cost << " sort=" << sort_cost;
  }
}

TEST(DispatchTest, RunsAndIsCorrect) {
  Machine mach(cfg(128, 8, 8));
  util::Rng rng(67);
  const std::size_t N = 2048;
  auto keys = util::random_keys(N, rng);
  auto dest = perm::random(N, rng);
  ExtArray<std::uint64_t> in(mach, N, "in");
  in.unsafe_host_fill(keys);
  ExtArray<std::uint64_t> out(mach, N, "out");
  permute(in, std::span<const std::uint64_t>(dest), out);
  EXPECT_EQ(out.unsafe_host_view(), apply_host(dest, keys));
}

// Atom conservation: with tracing + atom extraction on, every traced write
// carries atoms, every atom of the input appears in the output exactly once,
// and marked use-sets reference only atoms actually present in the source
// block at read time.  This is the indivisibility discipline of Section 4.
class AtomTrackingTest : public ::testing::TestWithParam<int> {};

TEST_P(AtomTrackingTest, UseSetsAreConsistent) {
  const bool use_sort = GetParam() == 1;
  Machine mach(cfg(128, 8, 4));
  util::Rng rng(71);
  const std::size_t N = 512;
  auto keys = util::distinct_keys(N, rng);  // atom id == value, unique
  auto dest = perm::random(N, rng);
  ExtArray<std::uint64_t> in(mach, N, "in");
  in.unsafe_host_fill(keys);
  in.set_atom_extractor([](const std::uint64_t& v) { return v; });
  ExtArray<std::uint64_t> out(mach, N, "out");
  out.set_atom_extractor([](const std::uint64_t& v) { return v; });
  mach.enable_trace();
  if (use_sort) {
    sort_permute(in, std::span<const std::uint64_t>(dest), out);
  } else {
    naive_permute(in, std::span<const std::uint64_t>(dest), out);
  }
  auto trace = mach.take_trace();
  ASSERT_NE(trace, nullptr);

  // Every read's use-set is non-duplicated within the op.
  std::size_t used_total = 0;
  for (const auto& op : trace->ops()) {
    if (op.kind != OpKind::kRead) continue;
    std::set<std::uint64_t> uniq(op.used.begin(), op.used.end());
    EXPECT_EQ(uniq.size(), op.used.size());
    used_total += op.used.size();
  }
  // Every atom is consumed at least once over the program (naive: exactly
  // once; sort-based: once per level it moves through).
  EXPECT_GE(used_total, N);
}

INSTANTIATE_TEST_SUITE_P(Programs, AtomTrackingTest, ::testing::Values(0, 1),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return info.param == 0 ? std::string("naive")
                                                  : std::string("sort");
                         });

}  // namespace
