// Tests for Machine::submit, the io_uring-shaped batched submission path
// (docs/MODEL.md section 17): byte-identity of counters / phases / wear /
// trace with the per-op hooks, completion tickets, per-op degradation under
// armed crash points and fault injection, all-or-nothing ceiling admission,
// the sharded per-device batch routing, the batched cache flush, and the
// batch-aware Writer / KvStore bulk paths.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/ext_array.hpp"
#include "core/faults.hpp"
#include "core/machine.hpp"
#include "core/metrics.hpp"
#include "core/sharding.hpp"
#include "core/trace.hpp"
#include "io/writer.hpp"
#include "store/kv_store.hpp"
#include "util/rng.hpp"

namespace {

using namespace aem;

Config cfg(std::size_t M = 1024, std::size_t B = 16, std::uint64_t w = 8) {
  Config c;
  c.memory_elems = M;
  c.block_elems = B;
  c.write_cost = w;
  return c;
}

// A mixed read/write batch over two arrays with repeated blocks (so wear
// histograms see concentration, not just coverage).
std::vector<BlockOp> mixed_ops(std::size_t n) {
  std::vector<BlockOp> ops;
  for (std::size_t i = 0; i < n; ++i) {
    const OpKind kind = (i % 3 == 2) ? OpKind::kWrite : OpKind::kRead;
    ops.push_back(BlockOp{kind, static_cast<std::uint32_t>(i % 2),
                          static_cast<std::uint64_t>(i % 7)});
  }
  return ops;
}

void replay_per_op(Machine& m, const std::vector<BlockOp>& ops,
                   std::vector<IoTicket>* tickets = nullptr) {
  for (const BlockOp& op : ops) {
    const IoTicket t = op.kind == OpKind::kWrite ? m.on_write(op.array, op.block)
                                                 : m.on_read(op.array, op.block);
    if (tickets != nullptr) tickets->push_back(t);
  }
}

void expect_same_traces(const Trace* a, const Trace* b) {
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  ASSERT_EQ(a->size(), b->size());
  for (std::size_t i = 0; i < a->size(); ++i) {
    EXPECT_EQ(a->op(i).kind, b->op(i).kind) << "op " << i;
    EXPECT_EQ(a->op(i).array, b->op(i).array) << "op " << i;
    EXPECT_EQ(a->op(i).block, b->op(i).block) << "op " << i;
  }
}

TEST(SubmitTest, MatchesPerOpCountersPhasesWearTraceAndTickets) {
  Machine per_op(cfg());
  Machine batched(cfg());
  for (Machine* m : {&per_op, &batched}) {
    m->register_array("a");
    m->register_array("b");
    m->enable_wear_tracking();
    m->enable_trace();
  }
  const std::vector<BlockOp> ops = mixed_ops(100);

  std::vector<IoTicket> per_tickets;
  std::vector<IoTicket> batch_tickets(ops.size());
  {
    auto outer = per_op.phase("outer");
    auto inner = per_op.phase("inner");
    replay_per_op(per_op, ops, &per_tickets);
  }
  {
    auto outer = batched.phase("outer");
    auto inner = batched.phase("inner");
    batched.submit(ops, batch_tickets);
  }

  EXPECT_EQ(per_op.stats(), batched.stats());
  EXPECT_EQ(per_op.cost(), batched.cost());
  EXPECT_EQ(per_op.phase_stats(), batched.phase_stats());
  const auto w1 = per_op.wear_stats();
  const auto w2 = batched.wear_stats();
  EXPECT_EQ(w1.blocks_written, w2.blocks_written);
  EXPECT_EQ(w1.max_writes, w2.max_writes);
  EXPECT_DOUBLE_EQ(w1.mean_writes, w2.mean_writes);
  expect_same_traces(per_op.trace(), batched.trace());
  ASSERT_EQ(per_tickets.size(), batch_tickets.size());
  for (std::size_t i = 0; i < per_tickets.size(); ++i) {
    EXPECT_TRUE(batch_tickets[i].valid());
    EXPECT_EQ(per_tickets[i].index, batch_tickets[i].index) << "ticket " << i;
  }
}

TEST(SubmitTest, EmptyBatchChargesNothingAndBadTicketsThrow) {
  Machine m(cfg());
  m.register_array("a");
  m.submit({});
  EXPECT_EQ(m.stats().total_ios(), 0u);

  const std::vector<BlockOp> ops = mixed_ops(4);
  std::vector<IoTicket> wrong(3);
  EXPECT_THROW(m.submit(ops, wrong), std::invalid_argument);
  EXPECT_EQ(m.stats().total_ios(), 0u);  // rejected before any charge
}

TEST(SubmitTest, TicketsInvalidWhenNotTracing) {
  Machine m(cfg());
  m.register_array("a");
  const std::vector<BlockOp> ops = mixed_ops(8);
  std::vector<IoTicket> tickets(ops.size());
  tickets[0].index = 7;  // stale garbage must be overwritten
  m.submit(ops, tickets);
  for (const IoTicket& t : tickets) EXPECT_FALSE(t.valid());
}

TEST(SubmitTest, CrashFiresOnExactNthChargedWriteInsideBatch) {
  // The armed power cut lands mid-batch: the batch must degrade to the
  // per-op loop so CrashError fires on exactly the same charged write as
  // the historical path, with every op before it charged and none after.
  FaultConfig fc;
  fc.crash_after_writes = 5;

  Machine per_op(cfg());
  Machine batched(cfg());
  const std::vector<BlockOp> ops = mixed_ops(40);  // writes at i % 3 == 2
  for (Machine* m : {&per_op, &batched}) {
    m->register_array("a");
    m->register_array("b");
    m->install_faults(fc);
  }
  EXPECT_THROW(replay_per_op(per_op, ops), CrashError);
  const IoStats per_at_crash = per_op.stats();
  EXPECT_THROW(batched.submit(ops), CrashError);
  const IoStats batch_at_crash = batched.stats();

  EXPECT_EQ(per_at_crash, batch_at_crash);
  EXPECT_EQ(batch_at_crash.writes, fc.crash_after_writes);

  // One-shot: the fired crash point stays disarmed, so the remaining ops
  // can be resubmitted — and then they bulk-charge cleanly.
  EXPECT_NO_THROW(per_op.submit(ops));
  EXPECT_NO_THROW(batched.submit(ops));
  EXPECT_EQ(per_op.stats(), batched.stats());
}

TEST(SubmitTest, CrashBeyondBatchStaysArmedAndBulk) {
  FaultConfig fc;
  fc.crash_after_writes = 1000;
  Machine m(cfg());
  m.register_array("a");
  m.register_array("b");
  m.install_faults(fc);
  const std::vector<BlockOp> ops = mixed_ops(30);
  EXPECT_NO_THROW(m.submit(ops));
  EXPECT_TRUE(m.faults()->crash_armed());
}

TEST(SubmitTest, CeilingRejectsWholeBatchWithoutPartialCharges) {
  // All-or-nothing admission: a batch whose projected total crosses the
  // ceiling throws BudgetExceeded BEFORE any op is charged (the per-op
  // path would charge up to and including the crossing op — the one
  // documented divergence).
  for (const bool use_cost_ceiling : {true, false}) {
    FaultConfig fc;
    if (use_cost_ceiling) {
      fc.max_cost = 50;  // 20 reads + 10 writes at omega 8 = 100 > 50
    } else {
      fc.max_ios = 25;
    }
    Machine m(cfg());
    m.register_array("a");
    m.register_array("b");
    m.install_faults(fc);
    const std::vector<BlockOp> ops = mixed_ops(30);
    EXPECT_THROW(m.submit(ops), BudgetExceeded);
    EXPECT_EQ(m.stats().total_ios(), 0u) << "cost=" << use_cost_ceiling;

    // A batch that fits is admitted and charged in full.
    const std::vector<BlockOp> small = mixed_ops(6);
    EXPECT_NO_THROW(m.submit(small));
    EXPECT_EQ(m.stats().total_ios(), 6u);
  }
}

TEST(SubmitTest, ExtArrayBulkReadsWritesMatchPerBlock) {
  // read_blocks/write_blocks on a plain machine must be byte-identical to
  // the per-block loops, including trace op order and atom annotations.
  Machine a(cfg());
  Machine b(cfg());
  a.enable_trace();
  b.enable_trace();
  ExtArray<std::uint64_t> arr_a(a, 160, "arr");
  ExtArray<std::uint64_t> arr_b(b, 160, "arr");
  std::vector<std::uint64_t> src(160);
  for (std::size_t i = 0; i < src.size(); ++i) src[i] = 1000 + i;

  std::size_t off = 0;
  for (std::uint64_t bi = 0; bi < 10; ++bi) {
    const std::size_t count = arr_a.block_elems(bi);
    arr_a.write_block(bi, std::span<const std::uint64_t>(&src[off], count));
    off += count;
  }
  arr_b.write_blocks(0, 10, std::span<const std::uint64_t>(src));

  std::vector<std::uint64_t> got_a(160);
  std::vector<std::uint64_t> got_b(160);
  off = 0;
  for (std::uint64_t bi = 0; bi < 10; ++bi)
    off += arr_a.read_block(bi, std::span<std::uint64_t>(got_a).subspan(off))
               .count;
  arr_b.read_blocks(0, 10, std::span<std::uint64_t>(got_b));

  EXPECT_EQ(got_a, got_b);
  EXPECT_EQ(got_b, src);
  EXPECT_EQ(a.stats(), b.stats());
  expect_same_traces(a.trace(), b.trace());
}

TEST(SubmitTest, ExtArrayBulkDegradesPerBlockUnderInjectedFaults) {
  // With an injecting fault schedule the bulk entry points must take the
  // per-block loop, so retries/verifies consume the SAME deterministic
  // fault stream as the historical path.
  FaultConfig fc;
  fc.seed = 99;
  fc.read_fault_rate = 0.2;
  Machine a(cfg());
  Machine b(cfg());
  a.install_faults(fc);
  b.install_faults(fc);
  ExtArray<std::uint64_t> arr_a(a, 160, "arr");
  ExtArray<std::uint64_t> arr_b(b, 160, "arr");

  std::vector<std::uint64_t> got_a(160);
  std::vector<std::uint64_t> got_b(160);
  std::size_t off = 0;
  for (std::uint64_t bi = 0; bi < 10; ++bi)
    off += arr_a.read_block(bi, std::span<std::uint64_t>(got_a).subspan(off))
               .count;
  arr_b.read_blocks(0, 10, std::span<std::uint64_t>(got_b));

  EXPECT_EQ(got_a, got_b);
  EXPECT_EQ(a.stats(), b.stats());
  EXPECT_EQ(a.faults()->stats(), b.faults()->stats());
}

ShardConfig shard_cfg(std::size_t devices, std::size_t dev_block = 16) {
  ShardConfig sc;
  sc.frontend.memory_elems = 1024;
  sc.frontend.block_elems = 16;
  sc.frontend.write_cost = 8;
  for (std::size_t d = 0; d < devices; ++d) {
    Config dev;
    dev.memory_elems = 1024;
    dev.block_elems = dev_block;
    dev.write_cost = 8;
    sc.devices.push_back(dev);
  }
  return sc;
}

TEST(SubmitTest, ShardedBatchMatchesPerOpOnEveryDevice) {
  for (const std::size_t dev_block : {16u, 4u}) {  // amp 1 and amp 4
    ShardedMachine per_op(shard_cfg(3, dev_block));
    ShardedMachine batched(shard_cfg(3, dev_block));
    const std::vector<BlockOp> ops = mixed_ops(120);
    for (ShardedMachine* m : {&per_op, &batched}) {
      m->register_array("a");
      m->register_array("b");
      m->enable_trace();
      m->enable_device_wear_tracking();
    }
    replay_per_op(per_op, ops);
    batched.submit(ops);

    EXPECT_EQ(per_op.stats(), batched.stats());
    expect_same_traces(per_op.trace(), batched.trace());
    EXPECT_EQ(per_op.devices_stats(), batched.devices_stats());
    EXPECT_EQ(per_op.devices_cost(), batched.devices_cost());
    EXPECT_DOUBLE_EQ(per_op.wear_spread(), batched.wear_spread());
    for (std::size_t d = 0; d < 3; ++d) {
      EXPECT_EQ(per_op.device(d).stats(), batched.device(d).stats())
          << "device " << d << " dev_block " << dev_block;
      const auto w1 = per_op.device(d).wear_stats();
      const auto w2 = batched.device(d).wear_stats();
      EXPECT_EQ(w1.blocks_written, w2.blocks_written);
      EXPECT_EQ(w1.max_writes, w2.max_writes);
    }
  }
}

TEST(SubmitTest, ShardedOutageWindowDegradesToPerOpPath) {
  ShardConfig sc_a = shard_cfg(2);
  sc_a.outages.push_back(OutageSpec{1, 3, 20});
  ShardConfig sc_b = sc_a;
  ShardedMachine per_op(sc_a);
  ShardedMachine batched(sc_b);
  const std::vector<BlockOp> ops = mixed_ops(40);
  for (ShardedMachine* m : {&per_op, &batched}) {
    m->register_array("a");
    m->register_array("b");
  }
  replay_per_op(per_op, ops);
  batched.submit(ops);

  EXPECT_EQ(per_op.stats(), batched.stats());
  EXPECT_EQ(per_op.devices_stats(), batched.devices_stats());
  for (std::size_t d = 0; d < 2; ++d) {
    EXPECT_EQ(per_op.outage_stats(d), batched.outage_stats(d)) << "dev " << d;
    EXPECT_EQ(per_op.pending_writes(d), batched.pending_writes(d));
  }
}

TEST(SubmitTest, CacheFlushBatchesIdenticallyToPerBlockFlush) {
  // The grouped flush hands per-array runs to ExtArray's batch sink; with a
  // zero-rate fault policy installed the sink degrades to the per-block
  // loop.  Both machines must end with identical charges and clean pools.
  Config plain = cfg();
  plain.cache.capacity_blocks = 8;
  Config guarded = plain;
  Machine batched(plain);
  Machine per_block(guarded);
  per_block.install_faults(FaultConfig{});  // zero rates: only a path toggle
  for (Machine* m : {&batched, &per_block}) {
    ExtArray<std::uint64_t> arr(*m, 320, "arr");
    std::vector<std::uint64_t> block(16, 7);
    for (std::uint64_t bi = 0; bi < 20; ++bi)
      arr.write_block(bi, std::span<const std::uint64_t>(block));
    m->flush_cache();
    EXPECT_EQ(m->cache()->resident_dirty(), 0u);
  }
  EXPECT_EQ(batched.stats(), per_block.stats());
  EXPECT_EQ(batched.cache()->stats().write_backs,
            per_block.cache()->stats().write_backs);
}

TEST(SubmitTest, BatchedWriterMatchesLegacyWriter) {
  for (const std::size_t batch : {2u, 4u, 7u}) {
    Machine legacy(cfg());
    Machine batched(cfg());
    ExtArray<std::uint64_t> arr_l(legacy, 250, "arr");  // terminal partial
    ExtArray<std::uint64_t> arr_b(batched, 250, "arr");
    Writer<std::uint64_t> w_l(arr_l);
    Writer<std::uint64_t> w_b(arr_b, 0, Writer<std::uint64_t>::npos, batch);
    for (std::uint64_t i = 0; i < 250; ++i) {
      w_l.push(i * 3);
      w_b.push(i * 3);
    }
    w_l.finish();
    w_b.finish();
    EXPECT_EQ(legacy.stats(), batched.stats()) << "batch " << batch;

    std::vector<std::uint64_t> got_l(250);
    std::vector<std::uint64_t> got_b(250);
    arr_l.read_blocks(0, arr_l.blocks(), std::span<std::uint64_t>(got_l));
    arr_b.read_blocks(0, arr_b.blocks(), std::span<std::uint64_t>(got_b));
    EXPECT_EQ(got_l, got_b);
  }
}

TEST(SubmitTest, KvStoreBatchedBuildAndScanMatchLegacyCharges) {
  using namespace aem::store;
  util::Rng rng(5);
  std::vector<Slot> recs;
  for (int i = 0; i < 900; ++i)
    recs.push_back(Slot{rng.next() >> 40, 1, rng.next()});

  auto run = [&](std::size_t io_batch) {
    Machine mach(cfg(4096, 16, 8));
    ExtArray<Slot> slots(mach, recs.size(), "in");
    slots.unsafe_host_fill(std::span<const Slot>(recs));
    ExtArray<std::uint64_t> payload(mach, 1, "pay");
    StoreConfig sc;
    sc.io_batch_blocks = io_batch;
    KvStore kv(mach, sc);
    kv.build(slots, payload);

    struct Result {
      std::uint64_t build_reads, build_writes, build_cost;
      std::size_t scanned;
      std::uint64_t scan_keysum;
      IoStats after_scan;
    } r{};
    r.build_reads = kv.build_reads();
    r.build_writes = kv.build_writes();
    r.build_cost = kv.build_cost();
    r.scan_keysum = 0;
    r.scanned = kv.scan(
        1ull << 20, 1ull << 23,
        [&](std::uint64_t key, std::span<const std::uint64_t> value) {
          r.scan_keysum += key + value.size();
        });
    // And a full scan plus an empty one, so the page-q edge paths run.
    kv.scan(0, ~std::uint64_t{0}, [](std::uint64_t, auto) {});
    kv.scan(~std::uint64_t{0}, ~std::uint64_t{0}, [](std::uint64_t, auto) {});
    r.after_scan = mach.stats();
    return std::tuple{r.build_reads, r.build_writes, r.build_cost, r.scanned,
                      r.scan_keysum, r.after_scan.reads, r.after_scan.writes};
  };

  const auto legacy = run(1);
  const auto batched = run(8);
  EXPECT_EQ(legacy, batched);
}

}  // namespace
