// Unit and property tests for bounds/: log-space combinatorics and the
// paper's bound formulas (Theorems 3.2, 4.5, 5.1; Corollaries 4.2, 4.4).
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "bounds/counting.hpp"
#include "bounds/logmath.hpp"
#include "bounds/permute_bounds.hpp"
#include "bounds/sort_bounds.hpp"
#include "bounds/spmv_bounds.hpp"

namespace {

using namespace aem::bounds;

TEST(LogMathTest, FactorialMatchesSmallValues) {
  EXPECT_DOUBLE_EQ(log2_factorial(0), 0.0);
  EXPECT_DOUBLE_EQ(log2_factorial(1), 0.0);
  EXPECT_NEAR(log2_factorial(2), 1.0, 1e-9);
  EXPECT_NEAR(log2_factorial(4), std::log2(24.0), 1e-9);
  EXPECT_NEAR(log2_factorial(10), std::log2(3628800.0), 1e-9);
}

TEST(LogMathTest, BinomialMatchesSmallValues) {
  EXPECT_NEAR(log2_binomial(5, 2), std::log2(10.0), 1e-9);
  EXPECT_NEAR(log2_binomial(10, 5), std::log2(252.0), 1e-9);
  EXPECT_DOUBLE_EQ(log2_binomial(5, 0), 0.0);
  EXPECT_DOUBLE_EQ(log2_binomial(5, 5), 0.0);
  EXPECT_DOUBLE_EQ(log2_binomial(5, 7), 0.0);
}

TEST(LogMathTest, LogBaseClampsAtFloor) {
  EXPECT_DOUBLE_EQ(log_base(8.0, 2.0), 3.0);
  EXPECT_DOUBLE_EQ(log_base(1.0, 2.0), 1.0);   // clamped
  EXPECT_DOUBLE_EQ(log_base(100.0, 1.0), 1.0); // degenerate base
  EXPECT_NEAR(log_base(1000.0, 10.0), 3.0, 1e-12);
}

TEST(LogMathTest, StirlingSandwich) {
  // (k/3)^k <= k! <= (k/2)^k for k >= 6 (the paper's inequality).
  for (std::uint64_t k : {6u, 16u, 64u, 256u, 1024u}) {
    const double lo = k * std::log2(k / 3.0);
    const double hi = k * std::log2(k / 2.0);
    const double f = log2_factorial(k);
    EXPECT_GE(f, lo) << k;
    EXPECT_LE(f, hi) << k;
  }
}

TEST(PermuteBoundTest, BranchesAndMin) {
  AemParams p{.N = 1 << 20, .M = 1 << 10, .B = 16, .omega = 4};
  const double naive = permute_bound_naive_branch(p);
  const double sort = permute_bound_sort_branch(p);
  EXPECT_DOUBLE_EQ(naive, double(1 << 20));
  EXPECT_GT(sort, 0.0);
  EXPECT_DOUBLE_EQ(permute_lower_bound(p), std::min(naive, sort));
}

TEST(PermuteBoundTest, SortBranchFormula) {
  // omega * n * log_{omega m} n with n = N/B, m = M/B.
  AemParams p{.N = 1 << 16, .M = 1 << 10, .B = 16, .omega = 4};
  const double n = double(1 << 12);
  const double base = 4.0 * double(1 << 6);
  const double expected = 4.0 * n * (std::log2(n) / std::log2(base));
  EXPECT_NEAR(permute_bound_sort_branch(p), expected, 1e-6);
}

TEST(PermuteBoundTest, ApplicabilityCondition) {
  AemParams ok{.N = 4096, .M = 256, .B = 16, .omega = 256};
  EXPECT_TRUE(permute_bound_applicable(ok));  // 256*16 = 4096 <= N
  AemParams bad{.N = 4095, .M = 256, .B = 16, .omega = 256};
  EXPECT_FALSE(permute_bound_applicable(bad));
}

TEST(PermuteBoundTest, OmegaMonotone) {
  // The lower bound is non-decreasing in omega (more expensive writes can
  // only make permuting harder).
  AemParams p{.N = 1 << 18, .M = 1 << 10, .B = 32, .omega = 1};
  double prev = 0.0;
  for (std::uint64_t w : {1u, 2u, 4u, 8u, 16u, 64u}) {
    p.omega = w;
    const double b = permute_lower_bound(p);
    EXPECT_GE(b, prev - 1e-9) << "omega=" << w;
    prev = b;
  }
}

TEST(PermuteBoundTest, NaiveBranchWinsForHugeOmega) {
  // With omega large enough, min is the N branch.
  AemParams p{.N = 1 << 18, .M = 1 << 10, .B = 16, .omega = 1 << 13};
  EXPECT_DOUBLE_EQ(permute_lower_bound(p), double(p.N));
}

TEST(PermuteBoundTest, UpperBoundsDominateLowerBound) {
  // For any parameters, max(upper bounds) >= lower bound; and the better of
  // the two upper bounds is within a log-free constant of the lower bound's
  // corresponding branch.
  for (std::uint64_t N : {1u << 14, 1u << 18}) {
    for (std::uint64_t w : {1u, 4u, 64u}) {
      AemParams p{.N = N, .M = 1 << 9, .B = 16, .omega = w};
      const double lb = permute_lower_bound(p);
      const double naive_ub = permute_naive_upper_bound(p);
      const double sort_ub = permute_sort_upper_bound(p);
      EXPECT_GE(naive_ub, permute_bound_naive_branch(p));
      EXPECT_GE(sort_ub, 0.9 * permute_bound_sort_branch(p));
      EXPECT_GE(std::min(naive_ub, sort_ub) * 8.0, lb);
    }
  }
}

TEST(PermuteBoundTest, FlashReductionWeakerByScanTerm) {
  // Regime where Corollary 4.4 is non-trivial: the closed-form bound exceeds
  // the 2*omega*n scan term (tiny memory -> many merge levels).
  AemParams p{.N = 1 << 18, .M = 16, .B = 8, .omega = 1};
  const double direct = permute_lower_bound(p);
  const double scan = 2.0 * double(p.omega) * double(p.n());
  ASSERT_GT(direct, scan);
  const double via_flash = permute_lower_bound_via_flash(p);
  EXPECT_LE(via_flash, direct);
  EXPECT_NEAR(direct - via_flash, scan, 1e-6);
}

TEST(PermuteBoundTest, FlashReductionClampsAtZero) {
  // In ranges where 2*omega*n dominates, Corollary 4.4 degenerates to 0 —
  // exactly the "non-trivial parameter range" caveat in the paper.
  AemParams p{.N = 1 << 18, .M = 1 << 10, .B = 64, .omega = 8};
  ASSERT_LT(permute_lower_bound(p), 2.0 * double(p.omega) * double(p.n()));
  EXPECT_DOUBLE_EQ(permute_lower_bound_via_flash(p), 0.0);
}

TEST(PermuteBoundTest, AvBoundSymmetricCase) {
  // The classical Aggarwal-Vitter bound at omega=1 equals the AEM bound.
  AemParams p{.N = 1 << 16, .M = 1 << 10, .B = 16, .omega = 1};
  EXPECT_NEAR(permute_lower_bound(p), av_permute_bound_ios(p.N, p.M, p.B),
              1e-6);
}

TEST(SortBoundTest, ReadsAndWritesSplit) {
  AemParams p{.N = 1 << 18, .M = 1 << 10, .B = 16, .omega = 16};
  EXPECT_NEAR(aem_sort_read_bound(p), 16.0 * aem_sort_write_bound(p), 1e-6);
  EXPECT_DOUBLE_EQ(aem_sort_upper_bound(p), aem_sort_read_bound(p));
}

TEST(SortBoundTest, ObliviousPenaltyGrowsWithOmega) {
  AemParams p{.N = 1 << 20, .M = 1 << 10, .B = 16, .omega = 1};
  // At omega=1 the two algorithms coincide up to the (1+w)/w = 2 factor.
  EXPECT_NEAR(predicted_oblivious_penalty(p), 2.0, 1e-9);
  p.omega = 64;
  const double adv = predicted_oblivious_penalty(p);
  EXPECT_GT(adv, 1.0);
  // em cost / aem cost should equal the predicted penalty.
  EXPECT_NEAR(em_sort_cost_on_aem(p) / aem_sort_upper_bound(p), adv, 1e-9);
}

TEST(SortBoundTest, MergeBoundsLinearInOmega) {
  AemParams p{.N = 1 << 16, .M = 1 << 10, .B = 16, .omega = 8};
  EXPECT_NEAR(aem_merge_read_bound(p),
              8.0 * (double(p.n()) + double(p.m())), 1e-9);
  EXPECT_NEAR(aem_merge_write_bound(p), double(p.n()) + double(p.m()), 1e-9);
  EXPECT_NEAR(small_sort_read_bound(p), 8.0 * double(p.n()), 1e-9);
  EXPECT_NEAR(small_sort_write_bound(p), double(p.n()), 1e-9);
}

TEST(SortBoundTest, SortingLowerBoundEqualsPermuting) {
  AemParams p{.N = 1 << 18, .M = 1 << 9, .B = 32, .omega = 4};
  EXPECT_DOUBLE_EQ(sort_lower_bound(p), permute_lower_bound(p));
}

TEST(CountingBoundTest, TargetIsPositiveAndGrows) {
  AemParams p{.N = 1 << 12, .M = 1 << 8, .B = 8, .omega = 2};
  const double t1 = log2_target_permutations(p);
  EXPECT_GT(t1, 0.0);
  p.N <<= 2;
  EXPECT_GT(log2_target_permutations(p), t1);
}

TEST(CountingBoundTest, MinRoundsPositiveForNontrivialInput) {
  AemParams p{.N = 1 << 16, .M = 1 << 8, .B = 8, .omega = 2};
  const std::uint64_t r = min_rounds_counting(p);
  EXPECT_GT(r, 1u);
  // More rounds needed for bigger inputs at the same machine.
  AemParams big = p;
  big.N <<= 2;
  EXPECT_GT(min_rounds_counting(big), r);
}

TEST(CountingBoundTest, CostBoundConsistentWithClosedForm) {
  // The exact counting bound should be within a moderate constant of the
  // closed-form min{N, omega n log_{omega m} n} for mid-range parameters.
  AemParams p{.N = 1 << 18, .M = 1 << 9, .B = 16, .omega = 4};
  const double exact = counting_cost_bound_round_based(p);
  const double closed = permute_lower_bound(p);
  EXPECT_GT(exact, 0.0);
  EXPECT_GT(closed, 0.0);
  const double ratio = exact / closed;
  EXPECT_GT(ratio, 0.02) << "exact=" << exact << " closed=" << closed;
  EXPECT_LT(ratio, 50.0) << "exact=" << exact << " closed=" << closed;
}

TEST(CountingBoundTest, GeneralBoundBelowRoundBased) {
  AemParams p{.N = 1 << 16, .M = 1 << 8, .B = 8, .omega = 2};
  EXPECT_LE(counting_cost_bound_general(p),
            counting_cost_bound_round_based(p));
}

TEST(SpmvBoundTest, TauDefinitionCases) {
  EXPECT_DOUBLE_EQ(log2_tau(100, 8, 8), 0.0);  // B == delta
  const double below = log2_tau(100, 16, 8);   // B < delta: 3^{delta N}
  EXPECT_NEAR(below, 16.0 * 100.0 * std::log2(3.0), 1e-9);
  const double above = log2_tau(100, 2, 8);  // B > delta: (2eB/delta)^{dN}
  EXPECT_NEAR(above, 200.0 * std::log2(2.0 * 2.718281828459045 * 4.0), 1e-6);
}

TEST(SpmvBoundTest, BranchesAndMin) {
  SpmvParams p{.N = 1 << 16, .delta = 4, .M = 1 << 9, .B = 16, .omega = 4};
  EXPECT_DOUBLE_EQ(spmv_bound_naive_branch(p), double(p.H()));
  EXPECT_GT(spmv_bound_sort_branch(p), 0.0);
  EXPECT_DOUBLE_EQ(spmv_lower_bound(p),
                   std::min(spmv_bound_naive_branch(p),
                            spmv_bound_sort_branch(p)));
}

TEST(SpmvBoundTest, Applicability) {
  SpmvParams ok{.N = 1 << 22, .delta = 1, .M = 256, .B = 8, .omega = 2};
  EXPECT_TRUE(spmv_bound_applicable(ok));
  SpmvParams bad = ok;
  bad.omega = 1 << 20;  // violates omega delta M B <= N^{1-eps}
  EXPECT_FALSE(spmv_bound_applicable(bad));
  SpmvParams small_b = ok;
  small_b.B = 2;  // violates B > 2
  EXPECT_FALSE(spmv_bound_applicable(small_b));
  SpmvParams small_m = ok;
  small_m.M = 4 * small_m.B;  // violates M > 4B
  EXPECT_FALSE(spmv_bound_applicable(small_m));
}

TEST(SpmvBoundTest, UpperBoundsDominateLowerBound) {
  for (std::uint64_t delta : {1u, 4u, 16u}) {
    SpmvParams p{.N = 1 << 16, .delta = delta, .M = 1 << 9, .B = 16,
                 .omega = 4};
    EXPECT_GE(spmv_naive_upper_bound(p), spmv_bound_naive_branch(p));
    EXPECT_GE(spmv_sort_upper_bound(p), spmv_bound_sort_branch(p));
    EXPECT_GE(spmv_upper_bound(p) * 4.0, spmv_lower_bound(p));
  }
}

TEST(SpmvBoundTest, DenserMatricesCostMore) {
  SpmvParams p{.N = 1 << 16, .delta = 1, .M = 1 << 9, .B = 16, .omega = 4};
  double prev = 0.0;
  for (std::uint64_t d : {1u, 2u, 4u, 8u}) {
    p.delta = d;
    const double b = spmv_lower_bound(p);
    EXPECT_GT(b, prev) << "delta=" << d;
    prev = b;
  }
}

TEST(SpmvBoundTest, CountingCostBoundPositiveInValidRegime) {
  SpmvParams p{.N = 1 << 22, .delta = 2, .M = 256, .B = 16, .omega = 2};
  ASSERT_TRUE(spmv_bound_applicable(p));
  const double exact = spmv_counting_cost_bound(p);
  EXPECT_GT(exact, 0.0);
  // Should be within a moderate factor of the closed-form bound.
  const double closed = spmv_lower_bound(p);
  EXPECT_LT(exact / closed, 100.0);
  EXPECT_GT(exact / closed, 1e-3);
}

// Property sweep: bound formula sanity over a parameter grid.
class BoundGridTest
    : public ::testing::TestWithParam<std::tuple<int, int, int, int>> {};

TEST_P(BoundGridTest, PermuteBoundsWellFormed) {
  auto [logN, logM, logB, logW] = GetParam();
  AemParams p{.N = 1ull << logN,
              .M = 1ull << logM,
              .B = 1ull << logB,
              .omega = 1ull << logW};
  if (p.M < p.B) GTEST_SKIP();
  const double lb = permute_lower_bound(p);
  EXPECT_GE(lb, 0.0);
  EXPECT_TRUE(std::isfinite(lb));
  EXPECT_LE(lb, double(p.N) + 1e-9);  // min with N
  // Scaling N by 4 never decreases the bound.
  AemParams p4 = p;
  p4.N *= 4;
  EXPECT_GE(permute_lower_bound(p4), lb - 1e-9);
}

TEST_P(BoundGridTest, CountingRoundsFinite) {
  auto [logN, logM, logB, logW] = GetParam();
  AemParams p{.N = 1ull << logN,
              .M = 1ull << logM,
              .B = 1ull << logB,
              .omega = 1ull << logW};
  if (p.M < p.B) GTEST_SKIP();
  const std::uint64_t r = min_rounds_counting(p);
  EXPECT_LT(r, UINT64_MAX);
  EXPECT_TRUE(std::isfinite(counting_cost_bound_round_based(p)));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, BoundGridTest,
    ::testing::Combine(::testing::Values(12, 16, 20),   // log2 N
                       ::testing::Values(7, 9, 11),     // log2 M
                       ::testing::Values(3, 5),         // log2 B
                       ::testing::Values(0, 2, 6)));    // log2 omega

}  // namespace
