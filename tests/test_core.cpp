// Unit tests for core/: config validation, ledger capacity enforcement,
// machine cost accounting, phase attribution, trace recording, ExtArray I/O.
#include <gtest/gtest.h>

#include <limits>
#include <numeric>

#include "core/config.hpp"
#include "core/ext_array.hpp"
#include "core/ledger.hpp"
#include "core/machine.hpp"
#include "core/stats.hpp"
#include "core/trace.hpp"

namespace {

using namespace aem;

Config small_config() {
  Config cfg;
  cfg.memory_elems = 64;
  cfg.block_elems = 8;
  cfg.write_cost = 4;
  return cfg;
}

TEST(ConfigTest, DerivedQuantities) {
  Config cfg = small_config();
  EXPECT_EQ(cfg.m(), 8u);
  EXPECT_EQ(cfg.blocks_for(0), 0u);
  EXPECT_EQ(cfg.blocks_for(1), 1u);
  EXPECT_EQ(cfg.blocks_for(8), 1u);
  EXPECT_EQ(cfg.blocks_for(9), 2u);
  EXPECT_EQ(cfg.capacity(), 64u);
  cfg.capacity_factor = 2.0;
  EXPECT_EQ(cfg.capacity(), 128u);
}

TEST(ConfigTest, ValidationRejectsBadParameters) {
  Config cfg = small_config();
  cfg.block_elems = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = small_config();
  cfg.memory_elems = 4;  // < B
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = small_config();
  cfg.write_cost = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = small_config();
  cfg.capacity_factor = 0.5;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  EXPECT_NO_THROW(small_config().validate());
}

TEST(IoStatsTest, CostSaturatesInsteadOfWrapping) {
  const std::uint64_t kMax = std::numeric_limits<std::uint64_t>::max();
  // Multiplication boundary: writes * omega at the edge of 64 bits.
  IoStats two_writes{0, 2};
  EXPECT_EQ(two_writes.cost(kMax / 2), kMax - 1);  // exactly representable
  EXPECT_EQ(two_writes.cost(kMax / 2 + 1), kMax);  // would wrap: saturates
  // Addition boundary: reads + omega*writes crossing the edge.
  IoStats near{kMax - 10, 1};
  EXPECT_EQ(near.cost(10), kMax);        // reads + 10 == kMax exactly
  EXPECT_EQ(near.cost(11), kMax);        // would wrap: saturates
  IoStats wrap{1, kMax};
  EXPECT_EQ(wrap.cost(2), kMax);         // product alone overflows
  // total_ios saturates the same way.
  IoStats both{kMax, kMax};
  EXPECT_EQ(both.total_ios(), kMax);
}

TEST(IoStatsTest, CostFormula) {
  IoStats s{10, 3};
  EXPECT_EQ(s.cost(1), 13u);
  EXPECT_EQ(s.cost(4), 22u);
  EXPECT_EQ(s.total_ios(), 13u);
  IoStats t{1, 1};
  IoStats sum = s + t;
  EXPECT_EQ(sum.reads, 11u);
  EXPECT_EQ(sum.writes, 4u);
  IoStats diff = sum - t;
  EXPECT_EQ(diff, s);
  EXPECT_NE(to_string(s).find("reads=10"), std::string::npos);
}

TEST(LedgerTest, TracksUsageAndHighWater) {
  MemoryLedger ledger(100, /*strict=*/true);
  ledger.acquire(40);
  EXPECT_EQ(ledger.used(), 40u);
  ledger.acquire(30);
  EXPECT_EQ(ledger.used(), 70u);
  EXPECT_EQ(ledger.high_water(), 70u);
  ledger.release(50);
  EXPECT_EQ(ledger.used(), 20u);
  EXPECT_EQ(ledger.high_water(), 70u);
  ledger.reset_high_water();
  EXPECT_EQ(ledger.high_water(), 20u);
}

TEST(LedgerTest, StrictModeThrowsOnOverflow) {
  MemoryLedger ledger(100, /*strict=*/true);
  ledger.acquire(90);
  EXPECT_THROW(ledger.acquire(11), CapacityError);
  // The failed acquire must not corrupt the count.
  EXPECT_EQ(ledger.used(), 90u);
  EXPECT_NO_THROW(ledger.acquire(10));
}

TEST(LedgerTest, NonStrictModeRecordsOvershoot) {
  MemoryLedger ledger(100, /*strict=*/false);
  ledger.acquire(150);
  EXPECT_EQ(ledger.used(), 150u);
  EXPECT_EQ(ledger.high_water(), 150u);
}

TEST(LedgerTest, CapacityErrorCarriesContext) {
  MemoryLedger ledger(10, true);
  ledger.acquire(8);
  try {
    ledger.acquire(5);
    FAIL() << "expected CapacityError";
  } catch (const CapacityError& e) {
    EXPECT_EQ(e.requested(), 5u);
    EXPECT_EQ(e.used(), 8u);
    EXPECT_EQ(e.capacity(), 10u);
  }
}

TEST(LedgerTest, OverReleasePoisonsInsteadOfMasking) {
  MemoryLedger ledger(100, /*strict=*/true);
  ledger.acquire(30);
  EXPECT_FALSE(ledger.poisoned());
  ledger.release(50);  // double-release bug: 20 elements never acquired
  EXPECT_TRUE(ledger.poisoned());
  EXPECT_EQ(ledger.over_released(), 20u);
  EXPECT_EQ(ledger.used(), 0u);  // still clamped so accounting continues
  // Poison is sticky across further correct usage...
  ledger.acquire(10);
  ledger.release(10);
  EXPECT_TRUE(ledger.poisoned());
  // ...until explicitly cleared.
  ledger.clear_poison();
  EXPECT_FALSE(ledger.poisoned());
  EXPECT_EQ(ledger.over_released(), 0u);
}

TEST(LedgerTest, MachineSurfacesPoisonedLedger) {
  Machine mach(small_config());
  EXPECT_FALSE(mach.ledger_poisoned());
  mach.ledger().release(1);  // nothing acquired
  EXPECT_TRUE(mach.ledger_poisoned());
}

TEST(ConfigTest, CapacityIsExactForIntegralFactorsBeyondDoublePrecision) {
  Config cfg = small_config();
  // M just past 2^53: a double cannot represent 2^53 + 1, so the old
  // double-routed computation would silently round the 2M replay capacity.
  cfg.memory_elems = (std::size_t{1} << 53) + 1;
  cfg.capacity_factor = 2.0;
  EXPECT_EQ(cfg.capacity(), (std::size_t{1} << 54) + 2);
  cfg.capacity_factor = 1.0;
  EXPECT_EQ(cfg.capacity(), (std::size_t{1} << 53) + 1);
  // Overflowing integral product saturates instead of wrapping.
  cfg.memory_elems = std::numeric_limits<std::size_t>::max() - 1;
  cfg.capacity_factor = 2.0;
  EXPECT_EQ(cfg.capacity(), std::numeric_limits<std::size_t>::max());
  // Fractional factors still work (double path).
  cfg.memory_elems = 100;
  cfg.capacity_factor = 1.5;
  EXPECT_EQ(cfg.capacity(), 150u);
}

TEST(LedgerTest, ReservationResizeIsStronglyExceptionSafe) {
  MemoryLedger ledger(100, /*strict=*/true);
  MemoryReservation r(ledger, 60);
  EXPECT_THROW(r.resize(120), CapacityError);  // grow past capacity
  // Strong guarantee: both the reservation and the ledger are unchanged.
  EXPECT_EQ(r.elems(), 60u);
  EXPECT_EQ(ledger.used(), 60u);
  EXPECT_FALSE(ledger.poisoned());
  // The reservation is still fully usable after the failed grow...
  r.resize(80);
  EXPECT_EQ(ledger.used(), 80u);
  // ...and its destructor releases exactly the tracked amount.
  r.reset();
  EXPECT_EQ(ledger.used(), 0u);
  EXPECT_FALSE(ledger.poisoned());
}

TEST(LedgerTest, ReservationRaii) {
  MemoryLedger ledger(100, true);
  {
    MemoryReservation r(ledger, 60);
    EXPECT_EQ(ledger.used(), 60u);
    r.resize(20);
    EXPECT_EQ(ledger.used(), 20u);
    r.resize(80);
    EXPECT_EQ(ledger.used(), 80u);
  }
  EXPECT_EQ(ledger.used(), 0u);
}

TEST(LedgerTest, ReservationMoveTransfersOwnership) {
  MemoryLedger ledger(100, true);
  MemoryReservation a(ledger, 30);
  MemoryReservation b = std::move(a);
  EXPECT_EQ(ledger.used(), 30u);
  MemoryReservation c(ledger, 10);
  c = std::move(b);
  EXPECT_EQ(ledger.used(), 30u);  // the 10 was released on assignment
}

TEST(MachineTest, CountsReadsAndWrites) {
  Machine mach(small_config());
  std::uint32_t id = mach.register_array("test");
  mach.on_read(id, 0);
  mach.on_read(id, 1);
  mach.on_write(id, 0);
  EXPECT_EQ(mach.stats().reads, 2u);
  EXPECT_EQ(mach.stats().writes, 1u);
  EXPECT_EQ(mach.cost(), 2u + 4u * 1u);
  mach.reset_stats();
  EXPECT_EQ(mach.cost(), 0u);
}

TEST(MachineTest, ArrayRegistry) {
  Machine mach(small_config());
  std::uint32_t a = mach.register_array("alpha");
  std::uint32_t b = mach.register_array("beta");
  EXPECT_NE(a, b);
  EXPECT_EQ(mach.array_name(a), "alpha");
  EXPECT_EQ(mach.array_name(b), "beta");
  EXPECT_THROW(mach.array_name(99), std::out_of_range);
}

TEST(MachineTest, PhaseAttribution) {
  Machine mach(small_config());
  std::uint32_t id = mach.register_array("t");
  {
    auto p = mach.phase("init");
    mach.on_read(id, 0);
    mach.on_write(id, 0);
    {
      auto inner = mach.phase("inner");
      mach.on_read(id, 1);
    }
    mach.on_read(id, 2);
  }
  mach.on_read(id, 3);  // outside any phase: unattributed
  const auto& ps = mach.phase_stats();
  ASSERT_TRUE(ps.count("init"));
  ASSERT_TRUE(ps.count("inner"));
  // Hierarchical: "init" subsumes the read made inside "inner".
  EXPECT_EQ(ps.at("init").reads, 3u);
  EXPECT_EQ(ps.at("init").writes, 1u);
  EXPECT_EQ(ps.at("inner").reads, 1u);
  EXPECT_EQ(mach.stats().reads, 4u);  // global counter sees everything
}

TEST(MachineTest, DuplicatePhaseNamesAttributeOnce) {
  Machine mach(small_config());
  std::uint32_t id = mach.register_array("t");
  {
    auto outer = mach.phase("pass");
    mach.on_read(id, 0);
    {
      auto inner = mach.phase("pass");  // same name, nested: no double count
      mach.on_read(id, 1);
      mach.on_write(id, 1);
      {
        auto third = mach.phase("pass");  // deeper duplicate still dedups
        mach.on_read(id, 2);
      }
    }
    // The duplicates' exits must not tear down the outer scope's slot.
    mach.on_read(id, 3);
  }
  mach.on_read(id, 4);  // outside: unattributed
  const auto ps = mach.phase_stats();
  ASSERT_TRUE(ps.count("pass"));
  EXPECT_EQ(ps.at("pass").reads, 4u);
  EXPECT_EQ(ps.at("pass").writes, 1u);
  EXPECT_EQ(ps.size(), 1u);
  EXPECT_EQ(mach.stats().reads, 5u);
}

TEST(MachineTest, SequentialSamePhaseNameAccumulates) {
  Machine mach(small_config());
  std::uint32_t id = mach.register_array("t");
  {
    auto p = mach.phase("pass");
    mach.on_read(id, 0);
  }
  {
    auto p = mach.phase("pass");  // re-entered after full exit
    mach.on_write(id, 0);
  }
  const auto ps = mach.phase_stats();
  EXPECT_EQ(ps.at("pass").reads, 1u);
  EXPECT_EQ(ps.at("pass").writes, 1u);
}

TEST(MachineTest, MixedDuplicateAndDistinctPhases) {
  Machine mach(small_config());
  std::uint32_t id = mach.register_array("t");
  {
    auto a = mach.phase("a");
    {
      auto b = mach.phase("b");
      {
        auto a2 = mach.phase("a");  // duplicate of the outermost
        mach.on_write(id, 0);       // counts toward "a" once and "b" once
      }
    }
    mach.on_read(id, 0);  // only "a" active now
  }
  const auto ps = mach.phase_stats();
  EXPECT_EQ(ps.at("a").writes, 1u);
  EXPECT_EQ(ps.at("a").reads, 1u);
  EXPECT_EQ(ps.at("b").writes, 1u);
  EXPECT_EQ(ps.at("b").reads, 0u);
}

TEST(MachineTest, ResetClearsPhasesAndWearButPreservesArrays) {
  Machine mach(small_config());
  mach.enable_wear_tracking();
  std::uint32_t a = mach.register_array("alpha");
  std::uint32_t b = mach.register_array("beta");
  {
    auto p = mach.phase("warmup");
    mach.on_read(a, 0);
    mach.on_write(b, 0);
  }
  ASSERT_EQ(mach.phase_stats().size(), 1u);
  ASSERT_EQ(mach.wear_stats().blocks_written, 1u);

  mach.reset_stats();
  EXPECT_TRUE(mach.phase_stats().empty());
  EXPECT_EQ(mach.wear_stats().blocks_written, 0u);
  EXPECT_EQ(mach.stats(), IoStats{});
  // Registered arrays survive the reset (they are identity, not stats)...
  EXPECT_EQ(mach.array_name(a), "alpha");
  EXPECT_EQ(mach.array_name(b), "beta");
  EXPECT_EQ(mach.array_count(), 2u);
  // ...and phase/wear attribution keeps working afterwards.
  {
    auto p = mach.phase("warmup");
    mach.on_write(a, 1);
  }
  EXPECT_EQ(mach.phase_stats().at("warmup").writes, 1u);
  EXPECT_EQ(mach.wear_stats().blocks_written, 1u);
}

TEST(MachineTest, ResetInsideActivePhaseKeepsAttributing) {
  Machine mach(small_config());
  std::uint32_t id = mach.register_array("t");
  auto p = mach.phase("live");
  mach.on_read(id, 0);
  mach.reset_stats();  // scope still open: later I/Os must still attribute
  mach.on_read(id, 1);
  EXPECT_EQ(mach.phase_stats().at("live").reads, 1u);
}

TEST(MachineTest, TraceRecordsOps) {
  Machine mach(small_config());
  std::uint32_t id = mach.register_array("t");
  mach.enable_trace();
  IoTicket r = mach.on_read(id, 5);
  IoTicket w = mach.on_write(id, 7);
  ASSERT_TRUE(r.valid());
  ASSERT_TRUE(w.valid());
  const Trace* tr = mach.trace();
  ASSERT_NE(tr, nullptr);
  ASSERT_EQ(tr->size(), 2u);
  EXPECT_EQ(tr->op(0).kind, OpKind::kRead);
  EXPECT_EQ(tr->op(0).block, 5u);
  EXPECT_EQ(tr->op(1).kind, OpKind::kWrite);
  EXPECT_EQ(tr->op(1).block, 7u);
  EXPECT_EQ(tr->cost(4), 1u + 4u);
  auto taken = mach.take_trace();
  ASSERT_NE(taken, nullptr);
  EXPECT_FALSE(mach.tracing());
}

TEST(MachineTest, NoTicketsWhenTracingOff) {
  Machine mach(small_config());
  std::uint32_t id = mach.register_array("t");
  IoTicket t = mach.on_read(id, 0);
  EXPECT_FALSE(t.valid());
}

TEST(TraceTest, UseSetAndAtoms) {
  Trace tr;
  IoTicket w = tr.add(OpKind::kWrite, 0, 3);
  tr.set_atoms(w, {10, 11, 12});
  IoTicket r = tr.add(OpKind::kRead, 0, 3);
  tr.mark_used(r, 11);
  tr.mark_used(r, 12);
  EXPECT_EQ(tr.op(0).atoms.size(), 3u);
  EXPECT_EQ(tr.op(1).used.size(), 2u);
  IoStats s = tr.stats();
  EXPECT_EQ(s.reads, 1u);
  EXPECT_EQ(s.writes, 1u);
}

TEST(MachineTest, WearTrackingHistogramsWrites) {
  Machine mach(small_config());
  mach.enable_wear_tracking();
  std::uint32_t a = mach.register_array("a");
  std::uint32_t b = mach.register_array("b");
  mach.on_write(a, 0);
  mach.on_write(a, 0);
  mach.on_write(a, 0);
  mach.on_write(a, 1);
  mach.on_write(b, 0);  // same block index, different array: distinct cell
  auto ws = mach.wear_stats();
  EXPECT_EQ(ws.blocks_written, 3u);
  EXPECT_EQ(ws.max_writes, 3u);
  EXPECT_NEAR(ws.mean_writes, 5.0 / 3.0, 1e-9);
}

TEST(MachineTest, ResetClearsWear) {
  Machine mach(small_config());
  mach.enable_wear_tracking();
  std::uint32_t a = mach.register_array("a");
  mach.on_write(a, 0);
  mach.reset_stats();
  EXPECT_EQ(mach.wear_stats().blocks_written, 0u);
  mach.on_write(a, 1);
  EXPECT_EQ(mach.wear_stats().blocks_written, 1u);
}

TEST(MachineTest, WearTrackingOffByDefault) {
  Machine mach(small_config());
  std::uint32_t a = mach.register_array("a");
  mach.on_write(a, 0);
  EXPECT_FALSE(mach.wear_tracking());
  auto ws = mach.wear_stats();
  EXPECT_EQ(ws.blocks_written, 0u);
  EXPECT_EQ(ws.max_writes, 0u);
}

TEST(ExtArrayTest, BlockGeometry) {
  Machine mach(small_config());  // B = 8
  ExtArray<int> arr(mach, 20, "a");
  EXPECT_EQ(arr.size(), 20u);
  EXPECT_EQ(arr.blocks(), 3u);
  EXPECT_EQ(arr.block_elems(0), 8u);
  EXPECT_EQ(arr.block_elems(1), 8u);
  EXPECT_EQ(arr.block_elems(2), 4u);  // terminal partial block
  EXPECT_THROW(arr.block_elems(3), std::out_of_range);
}

TEST(ExtArrayTest, RoundTripChargesIo) {
  Machine mach(small_config());
  ExtArray<int> arr(mach, 16, "a");
  Buffer<int> buf(mach, 8);
  std::iota(buf.span().begin(), buf.span().end(), 100);
  arr.write_block(1, std::span<const int>(buf.data(), 8));
  EXPECT_EQ(mach.stats().writes, 1u);

  Buffer<int> out(mach, 8);
  BlockIo io = arr.read_block(1, out.span());
  EXPECT_EQ(io.count, 8u);
  EXPECT_EQ(mach.stats().reads, 1u);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(out[i], 100 + i);
}

TEST(ExtArrayTest, PartialBlockWriteSizeMustMatch) {
  Machine mach(small_config());
  ExtArray<int> arr(mach, 12, "a");
  Buffer<int> buf(mach, 8);
  // Block 1 holds 4 elements; writing 8 must fail, writing 4 succeeds.
  EXPECT_THROW(arr.write_block(1, std::span<const int>(buf.data(), 8)),
               std::invalid_argument);
  EXPECT_NO_THROW(arr.write_block(1, std::span<const int>(buf.data(), 4)));
}

TEST(ExtArrayTest, ReadIntoTooSmallBufferThrows) {
  Machine mach(small_config());
  ExtArray<int> arr(mach, 16, "a");
  Buffer<int> tiny(mach, 4);
  EXPECT_THROW(arr.read_block(0, tiny.span()), std::invalid_argument);
}

TEST(ExtArrayTest, GrowToIsFree) {
  Machine mach(small_config());
  ExtArray<int> arr(mach, 8, "a");
  auto before = mach.stats();
  arr.grow_to(64);
  EXPECT_EQ(arr.size(), 64u);
  EXPECT_EQ(mach.stats(), before);
  arr.grow_to(32);  // never shrinks
  EXPECT_EQ(arr.size(), 64u);
}

TEST(ExtArrayTest, HostFillDoesNotCharge) {
  Machine mach(small_config());
  ExtArray<int> arr(mach, 8, "a");
  std::vector<int> init(8, 5);
  arr.unsafe_host_fill(init);
  EXPECT_EQ(mach.stats().reads, 0u);
  EXPECT_EQ(mach.stats().writes, 0u);
  EXPECT_EQ(arr.unsafe_host_view()[3], 5);
  std::vector<int> wrong(4);
  EXPECT_THROW(arr.unsafe_host_fill(wrong), std::invalid_argument);
}

TEST(ExtArrayTest, AtomExtractorRecordsWrites) {
  Machine mach(small_config());
  mach.enable_trace();
  ExtArray<std::uint64_t> arr(mach, 8, "a");
  arr.set_atom_extractor([](const std::uint64_t& v) { return v; });
  Buffer<std::uint64_t> buf(mach, 8);
  for (std::size_t i = 0; i < 8; ++i) buf[i] = 100 + i;
  arr.write_block(0, std::span<const std::uint64_t>(buf.data(), 8));
  const Trace* tr = mach.trace();
  ASSERT_EQ(tr->size(), 1u);
  ASSERT_EQ(tr->op(0).atoms.size(), 8u);
  EXPECT_EQ(tr->op(0).atoms[0], 100u);
  EXPECT_EQ(tr->op(0).atoms[7], 107u);
}

TEST(ExtArrayTest, BufferRegistersWithLedger) {
  Machine mach(small_config());  // M = 64
  EXPECT_EQ(mach.ledger().used(), 0u);
  {
    Buffer<int> a(mach, 40);
    EXPECT_EQ(mach.ledger().used(), 40u);
    EXPECT_THROW(Buffer<int>(mach, 40), CapacityError);  // 80 > 64
    Buffer<int> b(mach, 24);
    EXPECT_EQ(mach.ledger().used(), 64u);
  }
  EXPECT_EQ(mach.ledger().used(), 0u);
  EXPECT_EQ(mach.ledger().high_water(), 64u);
}

TEST(ExtArrayTest, CapacityFactorWidensLedger) {
  Config cfg = small_config();
  cfg.capacity_factor = 2.0;
  Machine mach(cfg);
  Buffer<int> big(mach, 128);  // 2 * M fits
  EXPECT_EQ(mach.ledger().used(), 128u);
}

}  // namespace
