// Tests for the reliability layer: the deterministic power-cut schedule
// (FaultConfig::crash_after_writes / CrashError), crash-consistent KvStore
// builds and recover(), the unified RetryPolicy (bounded retries +
// deterministic charged backoff) shared by ExtArray recovery and
// ShardedMachine outage waits, retry-exhaustion boundaries, and the
// device-outage degraded-serving path (wait / queue / drain / fail-over).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "core/ext_array.hpp"
#include "core/faults.hpp"
#include "core/machine.hpp"
#include "core/metrics.hpp"
#include "core/sharding.hpp"
#include "store/kv_store.hpp"
#include "util/rng.hpp"

namespace {

using namespace aem;
using store::IndexKind;
using store::KvStore;
using store::RecoveryReport;
using store::Slot;
using store::StoreConfig;

Config cfg(std::size_t M, std::size_t B, std::uint64_t w) {
  Config c;
  c.memory_elems = M;
  c.block_elems = B;
  c.write_cost = w;
  return c;
}

// Restores (or clears) an environment variable on scope exit.
struct EnvGuard {
  explicit EnvGuard(const char* name) : name_(name) {
    if (const char* v = std::getenv(name)) old_ = v;
  }
  ~EnvGuard() {
    if (old_.empty())
      ::unsetenv(name_);
    else
      ::setenv(name_, old_.c_str(), 1);
  }
  const char* name_;
  std::string old_;
};

// --- crash schedule ------------------------------------------------------

TEST(CrashScheduleTest, FiresAtExactWriteOnceAndRearmsOnReset) {
  Machine mach(cfg(64, 8, 4));
  FaultConfig c;
  c.crash_after_writes = 3;
  mach.install_faults(c);
  EXPECT_TRUE(mach.faults()->crash_armed());
  // A crash-only schedule is not fault injection: it must not flip
  // ExtArray onto the checksummed path.
  EXPECT_FALSE(mach.faults()->injects_faults());

  mach.on_write(0, 0);
  mach.on_write(0, 1);
  try {
    mach.on_write(0, 2);  // the 3rd charged write is the cut
    FAIL() << "expected CrashError";
  } catch (const CrashError& e) {
    EXPECT_EQ(e.after_writes(), 3u);
    EXPECT_EQ(e.at().writes, 3u);
    EXPECT_EQ(e.at().reads, 0u);
  }
  // The cut write was charged; the counters survive.
  EXPECT_EQ(mach.stats().writes, 3u);
  EXPECT_EQ(mach.cost(), 12u);

  // One-shot: the schedule disarmed itself as it fired.
  EXPECT_FALSE(mach.faults()->crash_armed());
  EXPECT_EQ(mach.faults()->crashes_fired(), 1u);
  EXPECT_NO_THROW(mach.on_write(0, 3));
  EXPECT_NO_THROW(mach.on_write(0, 4));

  // reset() re-arms the same point relative to a rewound write counter.
  mach.reset_stats();
  mach.faults()->reset();
  EXPECT_TRUE(mach.faults()->crash_armed());
  EXPECT_EQ(mach.faults()->crashes_fired(), 0u);
  mach.on_write(0, 0);
  mach.on_write(0, 1);
  EXPECT_THROW(mach.on_write(0, 2), CrashError);
}

TEST(CrashScheduleTest, ReadsNeverTripTheCut) {
  Machine mach(cfg(64, 8, 1));
  FaultConfig c;
  c.crash_after_writes = 1;
  mach.install_faults(c);
  for (int i = 0; i < 100; ++i) EXPECT_NO_THROW(mach.on_read(0, 0));
  EXPECT_THROW(mach.on_write(0, 0), CrashError);
}

TEST(CrashScheduleTest, EnvOverrideParsesStrictly) {
  EnvGuard g("AEM_CRASH_AFTER_WRITES");

  ::setenv("AEM_CRASH_AFTER_WRITES", "123", 1);
  EXPECT_EQ(FaultConfig::from_env(FaultConfig{}).crash_after_writes, 123u);

  for (const char* bad : {"banana", "12x", "", "-3", "1.5"}) {
    ::setenv("AEM_CRASH_AFTER_WRITES", bad, 1);
    EXPECT_THROW(FaultConfig::from_env(FaultConfig{}), std::invalid_argument)
        << "value: " << bad;
  }

  ::unsetenv("AEM_CRASH_AFTER_WRITES");
  FaultConfig base;
  base.crash_after_writes = 7;
  EXPECT_EQ(FaultConfig::from_env(base).crash_after_writes, 7u);
}

TEST(CrashConfigTest, ValidateRejectsCapBelowBase) {
  FaultConfig c;
  c.retry_backoff_base = 8;
  c.retry_backoff_cap = 4;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c.retry_backoff_cap = 8;
  EXPECT_NO_THROW(c.validate());
}

// --- RetryPolicy ---------------------------------------------------------

TEST(RetryPolicyTest, BackoffDoublesUpToCapAndZeroBaseIsFree) {
  RetryPolicy r{/*max_retries=*/8, /*backoff_base=*/1, /*backoff_cap=*/64};
  EXPECT_EQ(r.backoff(0), 0u);  // the initial attempt never waits
  EXPECT_EQ(r.backoff(1), 1u);
  EXPECT_EQ(r.backoff(2), 2u);
  EXPECT_EQ(r.backoff(3), 4u);
  EXPECT_EQ(r.backoff(7), 64u);   // 1 << 6 == cap
  EXPECT_EQ(r.backoff(20), 64u);  // saturated

  RetryPolicy free{4, 0, 64};
  for (std::size_t k = 0; k < 10; ++k) EXPECT_EQ(free.backoff(k), 0u);

  // Shift-overflow saturates at the cap instead of wrapping.
  RetryPolicy huge{200, 1ull << 62, ~0ull};
  EXPECT_EQ(huge.backoff(1), 1ull << 62);
  EXPECT_EQ(huge.backoff(2), 1ull << 63);
  EXPECT_EQ(huge.backoff(3), ~0ull);    // 1 << 64 would wrap
  EXPECT_EQ(huge.backoff(100), ~0ull);  // shift >= 64

  EXPECT_FALSE(r.exhausted(7));
  EXPECT_TRUE(r.exhausted(8));
}

TEST(RetryPolicyTest, FaultPolicyDerivesItFromConfig) {
  FaultConfig c;
  c.max_retries = 3;
  c.retry_backoff_base = 2;
  c.retry_backoff_cap = 16;
  FaultPolicy p(c);
  EXPECT_EQ(p.retry(), (RetryPolicy{3, 2, 16}));
}

// --- unified retry charges (ExtArray read / verify-after-write) ----------

// The pre-reliability pinned charges (test_recovery.cpp) with backoff off,
// then the exact same schedules with backoff_base = 1: every retry k now
// additionally charges backoff(k) poll reads, counted in retry_attempts /
// backoff_ios and in the machine's ordinary read counter.
struct RetryBill {
  IoStats io;
  std::uint64_t retry_attempts = 0;
  std::uint64_t backoff_ios = 0;
  ReliabilityMetrics reliability;
  std::string json;
};

TEST(BackoffChargeTest, ReadRetryPollsArePinned) {
  auto run = [](std::uint64_t backoff_base) {
    Machine mach(cfg(64, 8, 4));
    FaultConfig c;
    c.read_fault_rate = 1.0;  // every attempt fails its checksum
    c.max_retries = 2;
    c.retry_backoff_base = backoff_base;
    mach.install_faults(c);
    ExtArray<std::uint64_t> a(mach, 8, "a");
    std::vector<std::uint64_t> buf(8);
    EXPECT_THROW(a.read_block(0, std::span<std::uint64_t>(buf)), FaultError);
    const MetricsSnapshot s = snapshot_metrics(mach, "backoff");
    return RetryBill{mach.stats(), mach.faults()->retry_attempts(),
                     mach.faults()->backoff_ios(), s.reliability, to_json(s)};
  };

  {  // legacy pin: 3 attempts, 3 charged reads, nothing else
    const RetryBill b = run(0);
    EXPECT_EQ(b.io.reads, 3u);
    EXPECT_EQ(b.retry_attempts, 0u);
    EXPECT_EQ(b.backoff_ios, 0u);
  }
  {  // with base 1: retries 1 and 2 wait 1 + 2 = 3 extra poll reads
    const RetryBill b = run(1);
    EXPECT_EQ(b.io.reads, 6u);
    EXPECT_EQ(b.retry_attempts, 2u);
    EXPECT_EQ(b.backoff_ios, 3u);
    EXPECT_TRUE(b.reliability.enabled);
    EXPECT_EQ(b.reliability.retry_attempts, 2u);
    EXPECT_EQ(b.reliability.backoff_ios, 3u);
    EXPECT_NE(b.json.find("\"reliability\":{"), std::string::npos);
    EXPECT_NE(b.json.find("\"backoff_ios\":3"), std::string::npos);
  }
}

TEST(BackoffChargeTest, WriteVerifyRetryPollsArePinned) {
  auto run = [](std::uint64_t backoff_base) {
    Machine mach(cfg(64, 8, 4));
    FaultConfig c;
    c.silent_write_rate = 1.0;  // every verify read-back mismatches
    c.max_retries = 1;
    c.retry_backoff_base = backoff_base;
    mach.install_faults(c);
    ExtArray<std::uint64_t> a(mach, 8, "a");
    std::vector<std::uint64_t> buf(8, 9);
    EXPECT_THROW(a.write_block(0, std::span<const std::uint64_t>(buf)),
                 FaultError);
    return RetryBill{mach.stats(), mach.faults()->retry_attempts(),
                     mach.faults()->backoff_ios(), {}, {}};
  };

  {  // legacy pin: 2 write attempts, 2 verify reads
    const RetryBill b = run(0);
    EXPECT_EQ(b.io.writes, 2u);
    EXPECT_EQ(b.io.reads, 2u);
  }
  {  // retry 1 waits backoff(1) = 1 poll read before the rewrite
    const RetryBill b = run(1);
    EXPECT_EQ(b.io.writes, 2u);
    EXPECT_EQ(b.io.reads, 3u);
    EXPECT_EQ(b.retry_attempts, 1u);
    EXPECT_EQ(b.backoff_ios, 1u);
  }
}

// --- retry-exhaustion boundary -------------------------------------------

/// Finds a seed whose read-fault draw pattern is exactly `k` faults then a
/// clean attempt, mirroring the per-attempt draw order of the ExtArray
/// read path (one fault draw, plus one corruption-offset draw when it
/// fires).
std::uint64_t seed_with_k_read_faults(double rate, std::size_t k) {
  for (std::uint64_t seed = 1; seed < 100000; ++seed) {
    FaultConfig c;
    c.seed = seed;
    c.read_fault_rate = rate;
    FaultPolicy probe(c);
    bool ok = true;
    for (std::size_t i = 0; i < k && ok; ++i) {
      if (probe.draw_read_fault())
        probe.draw_u64();  // the corruption offset the real path consumes
      else
        ok = false;
    }
    if (ok && !probe.draw_read_fault()) return seed;
  }
  ADD_FAILURE() << "no seed with " << k << " leading read faults";
  return 1;
}

// Exactly-max retries succeeds; one fewer throws FaultError — on the SAME
// deterministic fault schedule — and the two runs' charges agree up to the
// final (never-performed) attempt.
TEST(RetryExhaustionTest, BoundaryBetweenSuccessAndFaultError) {
  const std::size_t k = 3;  // leading failures before the clean attempt
  const std::uint64_t seed = seed_with_k_read_faults(0.5, k);

  struct Run {
    bool threw = false;
    IoStats io;
    FaultStats faults;
  };
  auto run = [&](std::size_t max_retries) {
    Machine mach(cfg(64, 8, 4));
    FaultConfig c;
    c.seed = seed;
    c.read_fault_rate = 0.5;
    c.max_retries = max_retries;
    mach.install_faults(c);
    ExtArray<std::uint64_t> a(mach, 8, "a");
    const std::vector<std::uint64_t> host(8, 5);
    a.unsafe_host_fill(std::span<const std::uint64_t>(host));
    std::vector<std::uint64_t> buf(8);
    Run r;
    try {
      a.read_block(0, std::span<std::uint64_t>(buf));
      EXPECT_EQ(buf[0], 5u);  // the surviving attempt delivered clean data
    } catch (const FaultError& e) {
      r.threw = true;
      EXPECT_FALSE(e.is_write());
      EXPECT_EQ(e.attempts(), max_retries + 1);
    }
    r.io = mach.stats();
    r.faults = mach.faults()->stats();
    return r;
  };

  const Run ok = run(k);
  EXPECT_FALSE(ok.threw) << "max_retries == k must absorb k failures";
  const Run bad = run(k - 1);
  EXPECT_TRUE(bad.threw) << "max_retries == k-1 must exhaust";

  // Identical schedule, so the ledgers agree up to the last attempt: the
  // successful run performs exactly one more charged read (the clean
  // attempt) and notes one more retry; every failure count matches.
  EXPECT_EQ(ok.io.reads, bad.io.reads + 1);
  EXPECT_EQ(ok.io.writes, bad.io.writes);
  EXPECT_EQ(ok.faults.checksum_failures, bad.faults.checksum_failures);
  EXPECT_EQ(ok.faults.read_faults, bad.faults.read_faults);
  EXPECT_EQ(ok.faults.read_retries, bad.faults.read_retries + 1);
}

// --- crash-consistent KvStore builds -------------------------------------

struct Workload {
  std::vector<Slot> slots;
  std::vector<std::uint64_t> payload;
};

Workload make_workload(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  Workload w;
  for (std::size_t i = 0; i < n; ++i) {
    Slot s;
    s.key = rng.next() & ~1ull;
    const std::uint64_t kind = rng.below(100);
    if (kind < 60) {
      s.len = 1;
      s.pos = rng.next();
    } else {
      s.len = 2 + rng.below(10);
      s.pos = w.payload.size();
      for (std::uint64_t j = 0; j < s.len; ++j) w.payload.push_back(rng.next());
    }
    w.slots.push_back(s);
  }
  return w;
}

std::pair<ExtArray<Slot>, ExtArray<std::uint64_t>> stage(Machine& mach,
                                                         const Workload& w) {
  ExtArray<Slot> slots(mach, w.slots.size(), "input.slots");
  slots.unsafe_host_fill(std::span<const Slot>(w.slots));
  ExtArray<std::uint64_t> payload(mach, w.payload.size(), "input.payload");
  payload.unsafe_host_fill(std::span<const std::uint64_t>(w.payload));
  return {std::move(slots), std::move(payload)};
}

TEST(DurableBuildTest, ServesIdenticallyToPlainBuildAtManifestCost) {
  const Workload w = make_workload(400, 17);
  for (IndexKind kind : {IndexKind::kFence, IndexKind::kCompact}) {
    Machine plain_mach(cfg(4096, 16, 8));
    auto [ps, pp] = stage(plain_mach, w);
    KvStore plain(plain_mach, StoreConfig{kind, 8, /*manifest_interval=*/0});
    plain.build(ps, pp);

    Machine dur_mach(cfg(4096, 16, 8));
    auto [ds, dp] = stage(dur_mach, w);
    KvStore durable(dur_mach, StoreConfig{kind, 8, /*manifest_interval=*/4});
    durable.build(ds, dp);

    // Byte-identical on-device layout, identical serving.
    EXPECT_EQ(plain.log_array().unsafe_host_view(),
              durable.log_array().unsafe_host_view());
    EXPECT_EQ(plain.payload_array().unsafe_host_view(),
              durable.payload_array().unsafe_host_view());
    util::Rng rng(91);
    for (int t = 0; t < 32; ++t) {
      const std::uint64_t key =
          w.slots[rng.below(w.slots.size())].key ^ (t % 4 == 0 ? 1 : 0);
      EXPECT_EQ(plain.get(key), durable.get(key));
    }

    // Durability is priced: at least the sorted + committed manifests plus
    // one checkpoint per interval, never free.
    EXPECT_GE(durable.manifest_commits(), 2u);
    EXPECT_GT(durable.build_writes(), plain.build_writes());
  }
}

TEST(DurableBuildTest, CrashAndRecoverAcrossCrashPoints) {
  const Workload w = make_workload(512, 23);
  const StoreConfig sc{IndexKind::kFence, 8, /*manifest_interval=*/4};

  // Uncrashed durable reference.
  Machine ref_mach(cfg(4096, 16, 8));
  auto [rs, rp] = stage(ref_mach, w);
  KvStore ref(ref_mach, sc);
  ref.build(rs, rp);
  const std::uint64_t total_writes = ref_mach.stats().writes;
  ASSERT_GT(total_writes, 10u);

  bool saw_resume = false;
  for (const std::uint64_t pct : {5ull, 40ull, 70ull, 95ull}) {
    Machine mach(cfg(4096, 16, 8));
    FaultConfig fc;
    fc.crash_after_writes = std::max<std::uint64_t>(1, total_writes * pct / 100);
    mach.install_faults(fc);
    auto [slots, payload] = stage(mach, w);
    KvStore kv(mach, sc);
    bool crashed = false;
    try {
      kv.build(slots, payload);
    } catch (const CrashError&) {
      crashed = true;
    }
    ASSERT_TRUE(crashed) << "pct=" << pct;

    const RecoveryReport rep = kv.recover(slots, payload);
    saw_resume |= rep.outcome == RecoveryReport::Outcome::kResumed;
    EXPECT_GT(rep.reads, 0u) << "recovery must charge its detection scan";

    // Recovered store is byte-identical to the uncrashed build and serves
    // the same answers.
    EXPECT_EQ(kv.log_array().unsafe_host_view(),
              ref.log_array().unsafe_host_view())
        << "pct=" << pct << " outcome=" << to_string(rep.outcome);
    EXPECT_EQ(kv.payload_array().unsafe_host_view(),
              ref.payload_array().unsafe_host_view());
    util::Rng rng(pct);
    for (int t = 0; t < 16; ++t) {
      const std::uint64_t key = w.slots[rng.below(w.slots.size())].key;
      EXPECT_EQ(kv.get(key), ref.get(key));
    }

    // The pass was billed on the machine and surfaced in metrics v6.
    EXPECT_EQ(mach.recovery_stats().scans, 1u);
    EXPECT_EQ(mach.recovery_stats().reads, rep.reads);
    EXPECT_EQ(mach.recovery_stats().writes, rep.writes);
    const MetricsSnapshot s = snapshot_metrics(mach, "recover");
    EXPECT_TRUE(s.reliability.enabled);
    EXPECT_EQ(s.reliability.crashes, 1u);
    EXPECT_EQ(s.reliability.recovery.scans, 1u);
  }
  EXPECT_TRUE(saw_resume) << "no crash point exercised a mid-layout resume";
}

TEST(DurableBuildTest, RecoverMisuseThrowsDescriptively) {
  const Workload w = make_workload(64, 3);
  {
    Machine mach(cfg(4096, 16, 4));
    auto [slots, payload] = stage(mach, w);
    KvStore kv(mach, StoreConfig{IndexKind::kFence, 8, 4});
    kv.build(slots, payload);
    EXPECT_THROW(kv.recover(slots, payload), std::logic_error);  // built
  }
  {
    Machine mach(cfg(4096, 16, 4));
    auto [slots, payload] = stage(mach, w);
    KvStore kv(mach);  // non-durable
    EXPECT_THROW(kv.recover(slots, payload), std::logic_error);
  }
}

TEST(CrashEnvRecoveryTest, EnvArmedCutRecoversToIdenticalStore) {
  // CI runs this test with AEM_CRASH_AFTER_WRITES=N in the environment
  // (scripts/ci_sanitize.sh); standalone it arms its own default point.
  EnvGuard g("AEM_CRASH_AFTER_WRITES");
  if (std::getenv("AEM_CRASH_AFTER_WRITES") == nullptr)
    ::setenv("AEM_CRASH_AFTER_WRITES", "60", 1);

  const Workload w = make_workload(512, 29);
  const StoreConfig sc{IndexKind::kFence, 8, /*manifest_interval=*/4};

  Machine ref_mach(cfg(4096, 16, 8));
  auto [rs, rp] = stage(ref_mach, w);
  KvStore ref(ref_mach, sc);
  ref.build(rs, rp);

  Machine mach(cfg(4096, 16, 8));
  mach.install_faults(FaultConfig::from_env(FaultConfig{}));
  ASSERT_TRUE(mach.faults()->crash_armed());
  auto [slots, payload] = stage(mach, w);
  KvStore kv(mach, sc);
  try {
    kv.build(slots, payload);
    // Crash point beyond this build: nothing to recover, store just works.
  } catch (const CrashError&) {
    const RecoveryReport rep = kv.recover(slots, payload);
    EXPECT_EQ(mach.recovery_stats().scans, 1u);
    (void)rep;
  }
  EXPECT_EQ(kv.log_array().unsafe_host_view(),
            ref.log_array().unsafe_host_view());
  util::Rng rng(7);
  for (int t = 0; t < 32; ++t) {
    const std::uint64_t key = w.slots[rng.below(w.slots.size())].key;
    EXPECT_EQ(kv.get(key), ref.get(key));
  }
}

// --- device outages ------------------------------------------------------

ShardConfig shard_cfg(std::size_t devices, std::vector<OutageSpec> outages) {
  ShardConfig sc;
  sc.frontend = cfg(4096, 16, 8);
  sc.devices.assign(devices, cfg(4096, 16, 8));
  sc.outages = std::move(outages);
  return sc;
}

TEST(OutageConfigTest, ValidateRejectsBadWindows) {
  EXPECT_THROW(ShardedMachine(shard_cfg(2, {{5, 1, 0}})),
               std::invalid_argument);  // unknown device
  EXPECT_THROW(ShardedMachine(shard_cfg(2, {{0, 1, 9}, {0, 20, 30}})),
               std::invalid_argument);  // duplicate device
  EXPECT_THROW(ShardedMachine(shard_cfg(2, {{0, 10, 10}})),
               std::invalid_argument);  // window ends before it starts
  EXPECT_THROW(ShardedMachine(shard_cfg(2, {{0, 10, 5}})),
               std::invalid_argument);
  ShardConfig bad = shard_cfg(2, {{0, 10, 0}});
  bad.outage_retry.backoff_base = 9;
  bad.outage_retry.backoff_cap = 2;
  EXPECT_THROW(ShardedMachine{bad}, std::invalid_argument);
  EXPECT_NO_THROW(ShardedMachine(shard_cfg(2, {{0, 10, 20}, {1, 30, 0}})));
}

/// Reads and writes every block of an array a few times; returns the sum
/// of the first word of every block read, so callers can compare results.
std::uint64_t drive(ShardedMachine& mach) {
  ExtArray<std::uint64_t> arr(mach, 40 * mach.B(), "traffic");
  Buffer<std::uint64_t> buf(mach, mach.B());
  std::uint64_t acc = 0;
  for (std::uint64_t pass = 0; pass < 3; ++pass) {
    for (std::uint64_t bi = 0; bi < arr.blocks(); ++bi) {
      arr.read_block(bi, buf.span());
      acc += buf[0];
      buf[0] = pass * 1000 + bi;
      arr.write_block(bi, std::span<const std::uint64_t>(
                              buf.data(), arr.block_elems(bi)));
    }
  }
  return acc;
}

TEST(OutageTest, ReadsWaitWritesQueueAndDrainWithExactAccounting) {
  ShardedMachine calm(shard_cfg(2, {}));
  const std::uint64_t calm_acc = drive(calm);

  // A window the backoff polls can wait out (the polls advance the clock).
  ShardedMachine dark(shard_cfg(2, {{1, 40, 70}}));
  const std::uint64_t dark_acc = drive(dark);

  // Degraded, not wrong: identical results, identical write counters, and
  // the read overhead is EXACTLY the charged backoff polls.
  EXPECT_EQ(calm_acc, dark_acc);
  EXPECT_EQ(calm.stats().writes, dark.stats().writes);
  const OutageStats& os = dark.outage_stats(1);
  EXPECT_GT(os.wait_rounds, 0u);
  EXPECT_GT(os.backoff_ios, 0u);
  EXPECT_EQ(os.failed_reads, 0u);
  EXPECT_EQ(dark.stats().reads, calm.stats().reads + os.backoff_ios);

  // Every write deferred while down was replayed once the window closed.
  EXPECT_GT(os.queued_writes, 0u);
  EXPECT_EQ(os.drained_writes, os.queued_writes);
  EXPECT_EQ(dark.pending_writes(1), 0u);

  // Device conservation: both devices end with the same native transfer
  // totals as the calm twin (the queue defers charges, never drops them).
  EXPECT_EQ(calm.device(1).stats().writes, dark.device(1).stats().writes);

  const MetricsSnapshot s = snapshot_metrics(dark, "outage");
  EXPECT_TRUE(s.reliability.enabled);
  ASSERT_EQ(s.reliability.outages.size(), 1u);
  EXPECT_EQ(s.reliability.outages[0].device, 1u);
  EXPECT_EQ(s.reliability.outages[0].drained_writes, os.drained_writes);
}

TEST(OutageTest, PermanentOutageExhaustsIntoFaultError) {
  ShardConfig sc = shard_cfg(2, {{1, 10, 0}});  // never comes back
  sc.outage_retry = RetryPolicy{3, 1, 8};
  ShardedMachine mach(sc);
  EXPECT_THROW(drive(mach), FaultError);
  EXPECT_EQ(mach.outage_stats(1).failed_reads, 1u);
  EXPECT_GT(mach.outage_stats(1).backoff_ios, 0u);
}

TEST(OutageTest, BudgetCeilingIsAdmissionControlDuringWaits) {
  ShardConfig sc = shard_cfg(2, {{1, 10, 100000}});
  sc.outage_retry = RetryPolicy{64, 4, 1 << 20};  // waits far past any cap
  ShardedMachine mach(sc);
  FaultConfig fc;
  fc.max_ios = 200;
  mach.install_faults(fc);
  // The polls themselves advance the charged op counter, so a configured
  // ceiling cuts an unserviceable wait short instead of spinning.
  EXPECT_THROW(drive(mach), BudgetExceeded);
}

}  // namespace
