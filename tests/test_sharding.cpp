// core/sharding: routing bijections, facade invariance against the plain
// machine, device conservation, write amplification across unequal block
// sizes, wear-spread aggregation, and the metrics v4 sharding section.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <utility>
#include <vector>

#include "core/ext_array.hpp"
#include "core/machine.hpp"
#include "core/metrics.hpp"
#include "core/sharding.hpp"

namespace {

using namespace aem;

Config base_config(std::uint64_t omega = 8, std::size_t B = 16) {
  Config cfg;
  cfg.memory_elems = 1024;
  cfg.block_elems = B;
  cfg.write_cost = omega;
  return cfg;
}

ShardConfig uniform_shard(std::size_t devices,
                          Placement placement = Placement::kRoundRobin,
                          std::size_t chunk = 4) {
  ShardConfig sc;
  sc.frontend = base_config();
  sc.devices.assign(devices, base_config());
  sc.placement = placement;
  sc.range_chunk_blocks = chunk;
  return sc;
}

/// The canonical mixed read/write driver used by the invariance tests.
void drive(Machine& mach, std::size_t blocks = 64, std::size_t passes = 4) {
  auto phase = mach.phase("drive");
  ExtArray<std::uint64_t> arr(mach, blocks * mach.B(), "hot");
  Buffer<std::uint64_t> buf(mach, mach.B());
  for (std::size_t i = 0; i < passes * blocks; ++i) {
    const std::uint64_t bi = (i * 7) % blocks;
    arr.read_block(bi, buf.span());
    buf[0] = i;
    arr.write_block(bi, std::span<const std::uint64_t>(
                            buf.data(), arr.block_elems(bi)));
  }
}

TEST(ShardConfigTest, PlacementNames) {
  EXPECT_STREQ(to_string(Placement::kRoundRobin), "round-robin");
  EXPECT_STREQ(to_string(Placement::kRange), "range");
}

TEST(ShardConfigTest, ValidateRejectsBadConfigs) {
  ShardConfig sc = uniform_shard(2);
  EXPECT_NO_THROW(sc.validate());

  ShardConfig none = sc;
  none.devices.clear();
  EXPECT_THROW(none.validate(), std::invalid_argument);

  ShardConfig cached = sc;
  cached.devices[1].cache.capacity_blocks = 8;
  EXPECT_THROW(cached.validate(), std::invalid_argument);

  ShardConfig odd_b = sc;
  odd_b.devices[0].block_elems = 10;  // does not divide 16
  EXPECT_THROW(odd_b.validate(), std::invalid_argument);

  ShardConfig coarse = sc;
  coarse.devices[0].block_elems = 32;  // larger than the frontend's 16
  EXPECT_THROW(coarse.validate(), std::invalid_argument);

  ShardConfig zero_chunk = sc;
  zero_chunk.range_chunk_blocks = 0;
  EXPECT_THROW(zero_chunk.validate(), std::invalid_argument);

  ShardConfig bad_dev = sc;
  bad_dev.devices[1].write_cost = 0;
  EXPECT_THROW(bad_dev.validate(), std::invalid_argument);

  // The constructor routes through validate() too.
  EXPECT_THROW(ShardedMachine{none}, std::invalid_argument);
}

TEST(ShardRoutingTest, RoundRobinIsABijection) {
  ShardedMachine mach(uniform_shard(3));
  std::set<std::pair<std::size_t, std::uint64_t>> seen;
  for (std::uint64_t b = 0; b < 999; ++b) {
    const auto r = mach.route(b);
    EXPECT_EQ(r.device, b % 3);
    EXPECT_EQ(r.local, b / 3);
    EXPECT_TRUE(seen.emplace(r.device, r.local).second) << "block " << b;
  }
  // 999 blocks over 3 devices: locals are dense per device.
  for (std::size_t d = 0; d < 3; ++d)
    for (std::uint64_t l = 0; l < 333; ++l)
      EXPECT_TRUE(seen.count({d, l})) << d << "," << l;
}

TEST(ShardRoutingTest, RangeIsABijectionWithContiguousChunks) {
  ShardedMachine mach(uniform_shard(3, Placement::kRange, /*chunk=*/4));
  std::set<std::pair<std::size_t, std::uint64_t>> seen;
  for (std::uint64_t b = 0; b < 960; ++b) {
    const auto r = mach.route(b);
    // Blocks within one chunk stay on one device, at consecutive locals.
    EXPECT_EQ(r.device, (b / 4) % 3);
    EXPECT_EQ(r.local, (b / 12) * 4 + b % 4);
    EXPECT_TRUE(seen.emplace(r.device, r.local).second) << "block " << b;
  }
  for (std::size_t d = 0; d < 3; ++d)
    for (std::uint64_t l = 0; l < 320; ++l)
      EXPECT_TRUE(seen.count({d, l})) << d << "," << l;
}

TEST(ShardRoutingTest, SingleDeviceRoutesIdentity) {
  for (Placement p : {Placement::kRoundRobin, Placement::kRange}) {
    ShardedMachine mach(uniform_shard(1, p));
    for (std::uint64_t b : {0ull, 1ull, 63ull, 1000000ull}) {
      const auto r = mach.route(b);
      EXPECT_EQ(r.device, 0u);
      EXPECT_EQ(r.local, b);
    }
  }
}

TEST(ShardedMachineTest, FacadeMatchesPlainMachineExactly) {
  for (Placement p : {Placement::kRoundRobin, Placement::kRange}) {
    Machine plain(base_config());
    plain.enable_trace();
    drive(plain);

    ShardedMachine sharded(uniform_shard(3, p));
    sharded.enable_trace();
    drive(sharded);

    EXPECT_TRUE(plain.stats() == sharded.stats());
    EXPECT_EQ(plain.cost(), sharded.cost());
    ASSERT_EQ(plain.trace()->size(), sharded.trace()->size());
    const auto& po = plain.trace()->ops();
    const auto& so = sharded.trace()->ops();
    for (std::size_t i = 0; i < po.size(); ++i) {
      EXPECT_EQ(po[i].kind, so[i].kind) << i;
      EXPECT_EQ(po[i].array, so[i].array) << i;
      EXPECT_EQ(po[i].block, so[i].block) << i;
    }
    // The whole snapshot agrees once the sharding section — the one part
    // that legitimately differs — is cleared on both sides.
    MetricsSnapshot mp = snapshot_metrics(plain, "t");
    MetricsSnapshot ms = snapshot_metrics(sharded, "t");
    mp.sharding = ShardingMetrics{};
    ms.sharding = ShardingMetrics{};
    EXPECT_EQ(to_json(mp), to_json(ms));
  }
}

TEST(ShardedMachineTest, DeviceTransfersConservedAcrossPlacements) {
  for (Placement p : {Placement::kRoundRobin, Placement::kRange}) {
    ShardedMachine mach(uniform_shard(4, p));
    drive(mach);
    const IoStats facade = mach.stats();
    EXPECT_TRUE(mach.devices_stats() == facade);
    EXPECT_EQ(mach.devices_cost(), mach.cost());
    IoStats sum;
    for (std::size_t d = 0; d < mach.device_count(); ++d)
      sum += mach.device(d).stats();
    EXPECT_TRUE(sum == facade);
  }
}

TEST(ShardedMachineTest, RegisterArrayMirrorsOntoDevices) {
  ShardedMachine mach(uniform_shard(2));
  const std::uint32_t a = mach.register_array("alpha");
  const std::uint32_t b = mach.register_array("beta");
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 1u);
  for (std::size_t d = 0; d < 2; ++d) {
    ASSERT_EQ(mach.device(d).array_count(), 2u);
    EXPECT_EQ(mach.device(d).array_name(a), "alpha");
    EXPECT_EQ(mach.device(d).array_name(b), "beta");
  }
}

TEST(ShardedMachineTest, ResetStatsResetsDevicesToo) {
  ShardedMachine mach(uniform_shard(2));
  drive(mach);
  ASSERT_GT(mach.device(0).stats().reads, 0u);
  mach.reset_stats();
  EXPECT_EQ(mach.stats().reads, 0u);
  for (std::size_t d = 0; d < 2; ++d) {
    EXPECT_EQ(mach.device(d).stats().reads, 0u);
    EXPECT_EQ(mach.device(d).stats().writes, 0u);
  }
}

TEST(ShardedMachineTest, AmplificationSplitsCoarseBlocksOntoFineDevices) {
  // Frontend B=16 over devices with B=4: every logical transfer becomes 4
  // native transfers on the owning device, charged at device prices.
  ShardConfig sc;
  sc.frontend = base_config(/*omega=*/8, /*B=*/16);
  sc.devices.assign(2, base_config(/*omega=*/8, /*B=*/4));
  ShardedMachine mach(sc);
  EXPECT_EQ(mach.amplification(0), 4u);

  const std::uint32_t a = mach.register_array("x");
  mach.on_read(a, 2);   // device 0, local 1 -> native blocks 4..7
  mach.on_write(a, 3);  // device 1, local 1 -> native blocks 4..7

  EXPECT_EQ(mach.stats().reads, 1u);
  EXPECT_EQ(mach.stats().writes, 1u);
  EXPECT_EQ(mach.device(0).stats().reads, 4u);
  EXPECT_EQ(mach.device(0).stats().writes, 0u);
  EXPECT_EQ(mach.device(1).stats().writes, 4u);
  // Device cost prices the native transfers: 4 writes at omega=8.
  EXPECT_EQ(mach.device(1).cost(), 32u);
  EXPECT_EQ(mach.devices_cost(), 4u + 32u);

  // The native wear lands on the amplified block range.
  ShardConfig wsc = sc;
  ShardedMachine wm(wsc);
  wm.enable_device_wear_tracking();
  const std::uint32_t wa = wm.register_array("x");
  wm.on_write(wa, 3);
  const Machine::WearStats ws = wm.device(1).wear_stats();
  EXPECT_EQ(ws.blocks_written, 4u);
  EXPECT_EQ(ws.max_writes, 1u);
}

TEST(ShardedMachineTest, WearSpreadReflectsImbalance) {
  ShardedMachine mach(uniform_shard(2));
  EXPECT_DOUBLE_EQ(mach.wear_spread(), 1.0);  // no writes yet

  const std::uint32_t a = mach.register_array("x");
  // Even blocks only: round-robin sends every write to device 0.
  for (std::uint64_t b = 0; b < 16; b += 2) mach.on_write(a, b);
  EXPECT_DOUBLE_EQ(mach.wear_spread(), 2.0);

  // Balance it: same number of odd-block writes -> spread back to 1.
  for (std::uint64_t b = 1; b < 16; b += 2) mach.on_write(a, b);
  EXPECT_DOUBLE_EQ(mach.wear_spread(), 1.0);
}

TEST(ShardedMachineTest, HeterogeneousOmegasPricePerDevice) {
  ShardConfig sc = uniform_shard(2);
  sc.devices[0].write_cost = 1;
  sc.devices[1].write_cost = 100;
  sc.frontend.write_cost = 10;
  ShardedMachine mach(sc);
  const std::uint32_t a = mach.register_array("x");
  mach.on_write(a, 0);  // device 0, omega 1
  mach.on_write(a, 1);  // device 1, omega 100
  EXPECT_EQ(mach.cost(), 20u);           // facade prices at frontend omega
  EXPECT_EQ(mach.devices_cost(), 101u);  // devices price at their own
}

TEST(ShardedMachineTest, MetricsV4ShardingSection) {
  ShardedMachine mach(uniform_shard(2, Placement::kRange, /*chunk=*/4));
  mach.enable_device_wear_tracking();
  drive(mach);
  MetricsSnapshot s = snapshot_metrics(mach, "shard");
  EXPECT_TRUE(s.sharding.enabled);
  EXPECT_EQ(s.sharding.placement, "range");
  EXPECT_EQ(s.sharding.chunk_blocks, 4u);
  ASSERT_EQ(s.sharding.devices.size(), 2u);
  EXPECT_EQ(s.sharding.devices[0].name, "dev0");
  EXPECT_EQ(s.sharding.devices[0].amplification, 1u);
  EXPECT_TRUE(s.sharding.devices[0].wear_enabled);
  EXPECT_EQ(s.sharding.total_io.reads + s.sharding.total_io.writes,
            mach.stats().reads + mach.stats().writes);
  EXPECT_DOUBLE_EQ(s.sharding.wear_spread, mach.wear_spread());

  const std::string j = to_json(s);
  EXPECT_NE(j.find("\"schema\":\"aem.machine.metrics/v8\""),
            std::string::npos);
  EXPECT_NE(j.find("\"sharding\":{\"enabled\":true,\"placement\":\"range\""),
            std::string::npos);
  EXPECT_NE(j.find("\"per_device\":[{\"name\":\"dev0\""), std::string::npos);

  // A plain machine reports the section disabled and empty.
  Machine plain(base_config());
  MetricsSnapshot ps = snapshot_metrics(plain, "plain");
  EXPECT_FALSE(ps.sharding.enabled);
  EXPECT_TRUE(ps.sharding.devices.empty());
  EXPECT_NE(to_json(ps).find("\"sharding\":{\"enabled\":false"),
            std::string::npos);
}

TEST(ShardedMachineTest, ExtArrayTrafficRoutesThroughDevices) {
  // End-to-end through the charged door: ExtArray blocks land on the
  // devices the routing says, with per-device wear on local indices.
  ShardedMachine mach(uniform_shard(2));
  mach.enable_device_wear_tracking();
  ExtArray<std::uint64_t> arr(mach, 8 * mach.B(), "a");
  Buffer<std::uint64_t> buf(mach, mach.B());
  for (std::uint64_t b = 0; b < 8; ++b) {
    buf[0] = b;
    arr.write_block(b, std::span<const std::uint64_t>(
                           buf.data(), arr.block_elems(b)));
  }
  EXPECT_EQ(mach.device(0).stats().writes, 4u);  // blocks 0,2,4,6
  EXPECT_EQ(mach.device(1).stats().writes, 4u);  // blocks 1,3,5,7
  EXPECT_DOUBLE_EQ(mach.wear_spread(), 1.0);
  const Machine::WearStats w0 = mach.device(0).wear_stats();
  EXPECT_EQ(w0.blocks_written, 4u);  // locals 0..3
}

}  // namespace
