// Fuzz tests for the metrics JSON emitter (core/metrics.cpp): hostile
// strings — quotes, backslashes, control bytes, embedded NULs, non-UTF-8
// bytes — pushed through every string-valued field, with the output
// validated by a strict recursive-descent JSON parser (no trailing bytes,
// no raw control characters in strings, no duplicate keys, strict number
// grammar) and round-tripped back to the original bytes.
#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "core/ext_array.hpp"
#include "core/machine.hpp"
#include "core/metrics.hpp"
#include "util/rng.hpp"

namespace {

using namespace aem;

// --- a strict JSON parser (deliberately unforgiving) ---------------------

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;  // raw decoded bytes
  std::vector<JsonValue> items;
  std::vector<std::pair<std::string, JsonValue>> members;  // insertion order

  bool has(const std::string& key) const {
    for (const auto& [k, v] : members)
      if (k == key) return true;
    return false;
  }
  const JsonValue& at(const std::string& key) const {
    for (const auto& [k, v] : members)
      if (k == key) return v;
    throw std::runtime_error("json: missing key " + key);
  }
};

class StrictJsonParser {
 public:
  explicit StrictJsonParser(std::string_view text) : s_(text) {}

  /// Parses the whole input as exactly one JSON value; throws
  /// std::runtime_error on ANY deviation from RFC 8259 syntax, on raw
  /// control bytes inside strings, and on duplicate object keys.
  JsonValue parse() {
    JsonValue v = value();
    if (pos_ != s_.size()) fail("trailing bytes after the document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw std::runtime_error("json parse error at byte " +
                             std::to_string(pos_) + ": " + why);
  }

  char peek() const {
    if (pos_ >= s_.size()) fail("unexpected end of input");
    return s_[pos_];
  }
  char take() {
    char c = peek();
    ++pos_;
    return c;
  }
  void expect(char c) {
    if (take() != c) fail(std::string("expected '") + c + "'");
  }
  void expect_word(std::string_view w) {
    for (char c : w) expect(c);
  }
  // The emitter writes single-line JSON with no whitespace, but a strict
  // parser still has to define what it accepts: the four RFC whitespace
  // bytes between tokens.
  void skip_ws() {
    while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\t' ||
                                s_[pos_] == '\n' || s_[pos_] == '\r'))
      ++pos_;
  }

  JsonValue value() {
    skip_ws();
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': return string_value();
      case 't': {
        expect_word("true");
        JsonValue v;
        v.kind = JsonValue::Kind::kBool;
        v.boolean = true;
        return v;
      }
      case 'f': {
        expect_word("false");
        JsonValue v;
        v.kind = JsonValue::Kind::kBool;
        v.boolean = false;
        return v;
      }
      case 'n': {
        expect_word("null");
        return JsonValue{};
      }
      default: return number();
    }
  }

  JsonValue object() {
    expect('{');
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    skip_ws();
    if (peek() == '}') {
      take();
      return v;
    }
    for (;;) {
      skip_ws();
      JsonValue key = string_value();
      if (v.has(key.str)) fail("duplicate key \"" + key.str + "\"");
      skip_ws();
      expect(':');
      v.members.emplace_back(std::move(key.str), value());
      skip_ws();
      const char c = take();
      if (c == '}') return v;
      if (c != ',') fail("expected ',' or '}' in object");
    }
  }

  JsonValue array() {
    expect('[');
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    skip_ws();
    if (peek() == ']') {
      take();
      return v;
    }
    for (;;) {
      v.items.push_back(value());
      skip_ws();
      const char c = take();
      if (c == ']') return v;
      if (c != ',') fail("expected ',' or ']' in array");
    }
  }

  unsigned hex4() {
    unsigned out = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = take();
      out <<= 4;
      if (c >= '0' && c <= '9') out |= unsigned(c - '0');
      else if (c >= 'a' && c <= 'f') out |= unsigned(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') out |= unsigned(c - 'A' + 10);
      else fail("bad \\u escape digit");
    }
    return out;
  }

  void append_utf8(std::string& out, std::uint32_t cp) {
    if (cp < 0x80) {
      out.push_back(char(cp));
    } else if (cp < 0x800) {
      out.push_back(char(0xC0 | (cp >> 6)));
      out.push_back(char(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out.push_back(char(0xE0 | (cp >> 12)));
      out.push_back(char(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(char(0x80 | (cp & 0x3F)));
    } else {
      out.push_back(char(0xF0 | (cp >> 18)));
      out.push_back(char(0x80 | ((cp >> 12) & 0x3F)));
      out.push_back(char(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(char(0x80 | (cp & 0x3F)));
    }
  }

  JsonValue string_value() {
    expect('"');
    JsonValue v;
    v.kind = JsonValue::Kind::kString;
    for (;;) {
      const unsigned char c = static_cast<unsigned char>(take());
      if (c == '"') return v;
      if (c < 0x20) fail("raw control byte inside string");
      if (c != '\\') {
        v.str.push_back(char(c));
        continue;
      }
      const char e = take();
      switch (e) {
        case '"': v.str.push_back('"'); break;
        case '\\': v.str.push_back('\\'); break;
        case '/': v.str.push_back('/'); break;
        case 'b': v.str.push_back('\b'); break;
        case 'f': v.str.push_back('\f'); break;
        case 'n': v.str.push_back('\n'); break;
        case 'r': v.str.push_back('\r'); break;
        case 't': v.str.push_back('\t'); break;
        case 'u': {
          std::uint32_t cp = hex4();
          if (cp >= 0xD800 && cp <= 0xDBFF) {  // high surrogate: need a pair
            expect('\\');
            expect('u');
            const unsigned lo = hex4();
            if (lo < 0xDC00 || lo > 0xDFFF) fail("unpaired high surrogate");
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            fail("unpaired low surrogate");
          }
          append_utf8(v.str, cp);
          break;
        }
        default: fail("bad escape character");
      }
    }
  }

  JsonValue number() {
    const std::size_t start = pos_;
    if (peek() == '-') take();
    // int part: 0, or [1-9][0-9]* — leading zeros are a syntax error.
    if (peek() == '0') {
      take();
    } else if (std::isdigit(static_cast<unsigned char>(peek()))) {
      while (pos_ < s_.size() &&
             std::isdigit(static_cast<unsigned char>(s_[pos_])))
        ++pos_;
    } else {
      fail("expected a digit");
    }
    if (pos_ < s_.size() && s_[pos_] == '.') {
      ++pos_;
      if (!std::isdigit(static_cast<unsigned char>(peek())))
        fail("expected a fraction digit");
      while (pos_ < s_.size() &&
             std::isdigit(static_cast<unsigned char>(s_[pos_])))
        ++pos_;
    }
    if (pos_ < s_.size() && (s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < s_.size() && (s_[pos_] == '+' || s_[pos_] == '-')) ++pos_;
      if (!std::isdigit(static_cast<unsigned char>(peek())))
        fail("expected an exponent digit");
      while (pos_ < s_.size() &&
             std::isdigit(static_cast<unsigned char>(s_[pos_])))
        ++pos_;
    }
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    v.number = std::stod(std::string(s_.substr(start, pos_ - start)));
    return v;
  }

  std::string_view s_;
  std::size_t pos_ = 0;
};

JsonValue parse_strict(const std::string& text) {
  return StrictJsonParser(text).parse();
}

// --- hostile inputs ------------------------------------------------------

/// The classic JSON breakers plus the bytes the escaper must transform.
std::vector<std::string> hostile_strings() {
  using namespace std::string_literals;
  return {
      ""s,
      "\""s,
      "\\"s,
      "\\\""s,
      "a\"b\\c"s,
      "\b\f\n\r\t"s,
      "\x01\x02\x1f"s,
      "nul\0inside"s,                      // embedded NUL (note the _s)
      "\x7f\x80\xff"s,                     // DEL + non-ASCII bytes
      "\xc3\xa9 caf\xc3\xa9"s,             // valid UTF-8
      "\xc3"s,                             // truncated UTF-8 lead byte
      "{\"k\":1},[2],true,null"s,          // JSON-in-JSON
      "line1\nline2\r\nline3"s,
      "\\u0041 literal, not an escape"s,
      "ends with backslash \\"s,
  };
}

/// Uniform garbage over all byte values (including NUL and 0x80-0xFF).
std::string random_bytes(util::Rng& rng, std::size_t max_len) {
  std::string s(rng.below(max_len + 1), '\0');
  for (char& c : s) c = static_cast<char>(rng.below(256));
  return s;
}

Config cfg(std::size_t M, std::size_t B, std::uint64_t w) {
  Config c;
  c.memory_elems = M;
  c.block_elems = B;
  c.write_cost = w;
  return c;
}

// --- tests ---------------------------------------------------------------

TEST(JsonEscapeTest, HostileStringsParseAndRoundTrip) {
  for (const std::string& s : hostile_strings()) {
    const std::string doc = "\"" + json_escape(s) + "\"";
    JsonValue v;
    ASSERT_NO_THROW(v = parse_strict(doc)) << doc;
    ASSERT_EQ(v.kind, JsonValue::Kind::kString);
    EXPECT_EQ(v.str, s);  // byte-exact round trip, NULs included
  }
}

TEST(JsonEscapeTest, ParserIsActuallyStrict) {
  // Make sure the oracle rejects what it should, so the fuzz tests below
  // are not vacuous.
  for (const char* bad :
       {"{", "[1,]", "{\"a\":1,}", "\"\n\"", "01", "1.", "1e", "tru",
        "\"\\x\"", "\"\\u12\"", "{\"a\":1}x", "{\"a\":1,\"a\":2}",
        "\"\\ud800\"", "nan", "+1", "--1"}) {
    EXPECT_THROW(parse_strict(bad), std::runtime_error) << bad;
  }
  EXPECT_NO_THROW(parse_strict("{\"a\":[1,2.5,-3e-7,true,null,\"x\"]}"));
}

TEST(JsonFuzzTest, HandBuiltSnapshotWithHostileFieldsEmitsValidJson) {
  const auto hostiles = hostile_strings();
  for (std::size_t h = 0; h < hostiles.size(); ++h) {
    const std::string& evil = hostiles[h];
    MetricsSnapshot s;
    s.label = evil;
    s.memory_elems = 4096;
    s.block_elems = 16;
    s.write_cost = 8;
    s.capacity_factor = 1.0;
    s.capacity = 4096;
    s.io = IoStats{123, 45};
    s.cost = 123 + 8 * 45;
    s.phases.push_back({evil, IoStats{1, 2}});
    s.phases.push_back({"tame-phase", IoStats{3, 4}});
    s.wear_enabled = true;
    s.wear_arrays.push_back({evil, 7, 10, 20, 5});
    s.sharding.enabled = true;
    s.sharding.placement = evil;
    ShardDeviceMetrics dev;
    dev.name = evil;
    dev.io = IoStats{9, 9};
    s.sharding.devices.push_back(dev);
    s.store.enabled = true;
    s.store.index = evil;
    s.store.records = 100;
    s.store.index_bits_per_page = 10.25;
    s.arrays.push_back(evil);
    s.arrays.push_back("plain");

    const std::string doc = to_json(s);
    JsonValue root;
    ASSERT_NO_THROW(root = parse_strict(doc)) << "hostile #" << h;
    EXPECT_EQ(root.at("schema").str, MetricsSnapshot::kSchema);
    EXPECT_EQ(root.at("label").str, evil);
    EXPECT_EQ(root.at("phases").items.at(0).at("name").str, evil);
    EXPECT_EQ(root.at("wear").at("arrays").items.at(0).at("name").str, evil);
    EXPECT_EQ(root.at("sharding").at("placement").str, evil);
    EXPECT_EQ(root.at("sharding").at("per_device").items.at(0).at("name").str,
              evil);
    EXPECT_EQ(root.at("store").at("index").str, evil);
    EXPECT_EQ(root.at("arrays").items.at(0).str, evil);
    EXPECT_EQ(root.at("io").at("reads").number, 123.0);
    EXPECT_EQ(root.at("store").at("index_bits_per_page").number, 10.25);
  }
}

TEST(JsonFuzzTest, NonFiniteDoublesSerializeAsNull) {
  MetricsSnapshot s;
  s.label = "non-finite";
  s.store.enabled = true;
  s.store.index = "fence";
  s.store.index_bits_per_page = std::numeric_limits<double>::quiet_NaN();
  s.wear_mean_writes = std::numeric_limits<double>::infinity();
  s.sharding.enabled = true;
  s.sharding.wear_spread = -std::numeric_limits<double>::infinity();
  JsonValue root;
  ASSERT_NO_THROW(root = parse_strict(to_json(s)));
  EXPECT_EQ(root.at("store").at("index_bits_per_page").kind,
            JsonValue::Kind::kNull);
  EXPECT_EQ(root.at("wear").at("mean_writes").kind, JsonValue::Kind::kNull);
  EXPECT_EQ(root.at("sharding").at("wear_spread").kind,
            JsonValue::Kind::kNull);
}

TEST(JsonFuzzTest, MachineDrivenHostileArrayAndPhaseNames) {
  // Names flow machine -> registry -> snapshot -> JSON; hostile bytes in
  // array and phase names must survive the whole path.
  using namespace std::string_literals;
  const std::string evil_array = "arr\"\\\n\x01\xff end"s;
  const std::string evil_phase = "phase\t{\"x\":[1,\\u0000]}"s;
  Machine mach(cfg(256, 8, 4));
  ExtArray<std::uint64_t> a(mach, 32, evil_array);
  {
    auto ph = mach.phase(evil_phase);
    std::vector<std::uint64_t> blk(8, 42);
    a.write_block(0, blk);
  }
  const std::string doc = to_json(snapshot_metrics(mach, "label\"\x02"s));
  JsonValue root;
  ASSERT_NO_THROW(root = parse_strict(doc)) << doc;
  EXPECT_EQ(root.at("label").str, "label\"\x02"s);
  bool found_phase = false;
  for (const auto& p : root.at("phases").items)
    found_phase |= p.at("name").str == evil_phase;
  EXPECT_TRUE(found_phase);
  bool found_array = false;
  for (const auto& arr : root.at("arrays").items)
    found_array |= arr.str == evil_array;
  EXPECT_TRUE(found_array);
}

TEST(JsonFuzzTest, RandomizedByteGarbageRounds) {
  util::Rng rng(20260808);
  for (int round = 0; round < 200; ++round) {
    const std::string label = random_bytes(rng, 48);
    const std::string phase = random_bytes(rng, 24);
    const std::string arr = random_bytes(rng, 24);
    MetricsSnapshot s;
    s.label = label;
    s.phases.push_back({phase, IoStats{rng.below(1000), rng.below(1000)}});
    s.arrays.push_back(arr);
    s.store.enabled = (round % 2) == 0;
    s.store.index = random_bytes(rng, 12);
    JsonValue root;
    ASSERT_NO_THROW(root = parse_strict(to_json(s))) << "round " << round;
    EXPECT_EQ(root.at("label").str, label) << "round " << round;
    EXPECT_EQ(root.at("phases").items.at(0).at("name").str, phase);
    EXPECT_EQ(root.at("arrays").items.at(0).str, arr);
  }
}

}  // namespace
