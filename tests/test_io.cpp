// Unit tests for io/: Scanner, Writer, BlockCursor, ExtPointerArray —
// both functional correctness and exact I/O-cost accounting.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "core/ext_array.hpp"
#include "core/machine.hpp"
#include "io/cursor.hpp"
#include "io/ext_pointer_array.hpp"
#include "io/scanner.hpp"
#include "io/writer.hpp"

namespace {

using namespace aem;

Config cfg(std::size_t M = 64, std::size_t B = 8, std::uint64_t w = 4) {
  Config c;
  c.memory_elems = M;
  c.block_elems = B;
  c.write_cost = w;
  return c;
}

ExtArray<int> make_iota(Machine& mach, std::size_t n, int start = 0) {
  ExtArray<int> arr(mach, n, "iota");
  std::vector<int> host(n);
  std::iota(host.begin(), host.end(), start);
  arr.unsafe_host_fill(host);
  return arr;
}

TEST(ScannerTest, ReadsAllElementsInOrder) {
  Machine mach(cfg());
  auto arr = make_iota(mach, 30);
  Scanner<int> sc(arr);
  for (int i = 0; i < 30; ++i) {
    ASSERT_FALSE(sc.done());
    EXPECT_EQ(sc.peek(), i);
    EXPECT_EQ(sc.next(), i);
  }
  EXPECT_TRUE(sc.done());
}

TEST(ScannerTest, ChargesOneReadPerBlock) {
  Machine mach(cfg());  // B = 8
  auto arr = make_iota(mach, 30);
  mach.reset_stats();
  Scanner<int> sc(arr);
  while (!sc.done()) sc.next();
  EXPECT_EQ(mach.stats().reads, 4u);  // ceil(30/8)
  EXPECT_EQ(mach.stats().writes, 0u);
}

TEST(ScannerTest, RangeRestriction) {
  Machine mach(cfg());
  auto arr = make_iota(mach, 64);
  mach.reset_stats();
  Scanner<int> sc(arr, 10, 20);
  std::vector<int> got;
  while (!sc.done()) got.push_back(sc.next());
  ASSERT_EQ(got.size(), 10u);
  EXPECT_EQ(got.front(), 10);
  EXPECT_EQ(got.back(), 19);
  // Elements 10..19 span blocks 1 and 2 only.
  EXPECT_EQ(mach.stats().reads, 2u);
}

TEST(ScannerTest, SkipAvoidsReads) {
  Machine mach(cfg());
  auto arr = make_iota(mach, 64);
  mach.reset_stats();
  Scanner<int> sc(arr);
  EXPECT_EQ(sc.next(), 0);  // reads block 0
  sc.skip(30);              // lands at element 31 in block 3
  EXPECT_EQ(sc.next(), 31);
  // Blocks 1 and 2 skipped entirely: only 2 reads total.
  EXPECT_EQ(mach.stats().reads, 2u);
}

TEST(ScannerTest, MemoryFootprintIsOneBlock) {
  Machine mach(cfg());
  auto arr = make_iota(mach, 64);
  {
    Scanner<int> sc(arr);
    EXPECT_EQ(mach.ledger().used(), 8u);
  }
  EXPECT_EQ(mach.ledger().used(), 0u);
}

TEST(WriterTest, WritesAllElements) {
  Machine mach(cfg());
  ExtArray<int> arr(mach, 30, "out");
  Writer<int> w(arr);
  for (int i = 0; i < 30; ++i) w.push(i * 2);
  w.finish();
  const auto& host = arr.unsafe_host_view();
  for (int i = 0; i < 30; ++i) EXPECT_EQ(host[i], i * 2);
}

TEST(WriterTest, ChargesOneWritePerBlock) {
  Machine mach(cfg());  // B = 8
  ExtArray<int> arr(mach, 30, "out");
  mach.reset_stats();
  Writer<int> w(arr);
  for (int i = 0; i < 30; ++i) w.push(i);
  w.finish();
  EXPECT_EQ(mach.stats().writes, 4u);  // ceil(30/8)
  EXPECT_EQ(mach.stats().reads, 0u);   // aligned range: no RMW
}

TEST(WriterTest, UnalignedRangeDoesReadModifyWrite) {
  Machine mach(cfg());
  auto arr = make_iota(mach, 24);  // blocks: [0..8), [8..16), [16..24)
  mach.reset_stats();
  Writer<int> w(arr, 10, 14);  // strictly inside block 1
  for (int i = 0; i < 4; ++i) w.push(-1);
  w.finish();
  EXPECT_EQ(mach.stats().writes, 1u);
  EXPECT_EQ(mach.stats().reads, 1u);  // had to preserve 8,9 and 14,15
  const auto& host = arr.unsafe_host_view();
  EXPECT_EQ(host[9], 9);    // preserved
  EXPECT_EQ(host[10], -1);  // overwritten
  EXPECT_EQ(host[13], -1);
  EXPECT_EQ(host[14], 14);  // preserved
}

TEST(WriterTest, FinishIsIdempotent) {
  Machine mach(cfg());
  ExtArray<int> arr(mach, 8, "out");
  Writer<int> w(arr);
  w.push(1);
  w.finish();
  auto stats = mach.stats();
  w.finish();
  EXPECT_EQ(mach.stats(), stats);
}

TEST(WriterTest, ScanCopyPipeline) {
  // scan + write = the canonical EM "copy" costing n reads + n writes.
  Machine mach(cfg());
  auto src = make_iota(mach, 64, 5);
  ExtArray<int> dst(mach, 64, "dst");
  mach.reset_stats();
  Scanner<int> sc(src);
  Writer<int> w(dst);
  while (!sc.done()) w.push(sc.next());
  w.finish();
  EXPECT_EQ(mach.stats().reads, 8u);
  EXPECT_EQ(mach.stats().writes, 8u);
  EXPECT_EQ(mach.cost(), 8u + 4u * 8u);
  EXPECT_EQ(dst.unsafe_host_view(), src.unsafe_host_view());
}

TEST(CursorTest, CachesCurrentBlock) {
  Machine mach(cfg());
  auto arr = make_iota(mach, 64);
  mach.reset_stats();
  BlockCursor<int> cur(arr);
  EXPECT_EQ(cur.at(3), 3);
  EXPECT_EQ(cur.at(5), 5);
  EXPECT_EQ(cur.at(7), 7);
  EXPECT_EQ(mach.stats().reads, 1u);  // all in block 0
  EXPECT_EQ(cur.at(9), 9);            // block 1
  EXPECT_EQ(mach.stats().reads, 2u);
  EXPECT_EQ(cur.at(2), 2);  // back to block 0: re-read
  EXPECT_EQ(mach.stats().reads, 3u);
}

TEST(CursorTest, InvalidateForcesReread) {
  Machine mach(cfg());
  auto arr = make_iota(mach, 16);
  BlockCursor<int> cur(arr);
  cur.at(0);
  mach.reset_stats();
  cur.at(1);
  EXPECT_EQ(mach.stats().reads, 0u);
  cur.invalidate();
  cur.at(1);
  EXPECT_EQ(mach.stats().reads, 1u);
}

TEST(PointerArrayTest, InitializationCost) {
  Machine mach(cfg());  // B = 8
  mach.reset_stats();
  ExtPointerArray ptrs(mach, 20, "b");
  // ceil(20/8) = 3 block writes, no reads.
  EXPECT_EQ(mach.stats().writes, 3u);
  EXPECT_EQ(mach.stats().reads, 0u);
  EXPECT_EQ(ptrs.size(), 20u);
  EXPECT_EQ(ptrs.get(13), 0u);
}

TEST(PointerArrayTest, GetSetRoundTrip) {
  Machine mach(cfg());
  ExtPointerArray ptrs(mach, 20, "b");
  mach.reset_stats();
  ptrs.set(13, 77);
  EXPECT_EQ(mach.stats().reads, 1u);
  EXPECT_EQ(mach.stats().writes, 1u);
  EXPECT_EQ(ptrs.get(13), 77u);
  EXPECT_EQ(ptrs.get(12), 0u);
}

TEST(PointerArrayTest, ForEachStreamsOnce) {
  Machine mach(cfg());
  ExtPointerArray ptrs(mach, 24, "b");
  for (std::size_t i = 0; i < 24; ++i) ptrs.set(i, i * 10);
  mach.reset_stats();
  std::vector<std::uint64_t> seen;
  ptrs.for_each(0, 24, [&](std::size_t i, std::uint64_t v) {
    EXPECT_EQ(v, i * 10);
    seen.push_back(v);
  });
  EXPECT_EQ(seen.size(), 24u);
  EXPECT_EQ(mach.stats().reads, 3u);
  EXPECT_EQ(mach.stats().writes, 0u);
}

TEST(PointerArrayTest, UpdateRangeWritesOnlyDirtyBlocks) {
  Machine mach(cfg());
  ExtPointerArray ptrs(mach, 24, "b");
  mach.reset_stats();
  // Touch only entries in the middle block (indices 8..15).
  ptrs.update_range(0, 24, [&](std::size_t i, std::uint64_t& v) {
    if (i >= 8 && i < 16) {
      v = 1;
      return true;
    }
    return false;
  });
  EXPECT_EQ(mach.stats().reads, 3u);
  EXPECT_EQ(mach.stats().writes, 1u);  // only the dirty block
  EXPECT_EQ(ptrs.get(8), 1u);
  EXPECT_EQ(ptrs.get(7), 0u);
}

TEST(PointerArrayTest, SubrangeStreaming) {
  Machine mach(cfg());
  ExtPointerArray ptrs(mach, 32, "b");
  mach.reset_stats();
  std::size_t count = 0;
  ptrs.for_each(10, 14, [&](std::size_t, std::uint64_t) { ++count; });
  EXPECT_EQ(count, 4u);
  EXPECT_EQ(mach.stats().reads, 1u);  // 10..13 all in block 1
}

}  // namespace
