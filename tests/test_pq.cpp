// Tests for pq/: the write-efficient external priority queue and the
// heapsort built on it — functional correctness under interleaving,
// memory discipline, write-efficiency, and agreement with the other sorts.
#include <gtest/gtest.h>

#include <algorithm>
#include <queue>
#include <vector>

#include "core/ext_array.hpp"
#include "core/machine.hpp"
#include "pq/ext_pq.hpp"
#include "sort/mergesort.hpp"
#include "util/rng.hpp"

namespace {

using namespace aem;

Config cfg(std::size_t M, std::size_t B, std::uint64_t w) {
  Config c;
  c.memory_elems = M;
  c.block_elems = B;
  c.write_cost = w;
  return c;
}

TEST(ExtPqTest, RequiresEnoughMemory) {
  Machine small(cfg(64, 8, 1));  // 8B < 16B
  EXPECT_THROW((ExtPriorityQueue<std::uint64_t>{small}), std::invalid_argument);
  Machine ok(cfg(128, 8, 1));
  EXPECT_NO_THROW((ExtPriorityQueue<std::uint64_t>{ok}));
}

TEST(ExtPqTest, PushPopSmall) {
  Machine mach(cfg(128, 8, 2));
  ExtPriorityQueue<std::uint64_t> pq(mach);
  for (std::uint64_t v : {5, 3, 9, 1, 7}) pq.push(v);
  EXPECT_EQ(pq.size(), 5u);
  EXPECT_EQ(pq.pop_min(), 1u);
  EXPECT_EQ(pq.pop_min(), 3u);
  pq.push(2);
  EXPECT_EQ(pq.pop_min(), 2u);
  EXPECT_EQ(pq.pop_min(), 5u);
  EXPECT_EQ(pq.pop_min(), 7u);
  EXPECT_EQ(pq.pop_min(), 9u);
  EXPECT_TRUE(pq.empty());
  EXPECT_THROW(pq.pop_min(), std::out_of_range);
}

TEST(ExtPqTest, LargeMonotoneDrain) {
  Machine mach(cfg(256, 16, 4));
  ExtPriorityQueue<std::uint64_t> pq(mach);
  util::Rng rng(401);
  const std::size_t N = 1 << 13;
  auto keys = util::random_keys(N, rng);
  for (auto k : keys) pq.push(k);
  auto expect = keys;
  std::sort(expect.begin(), expect.end());
  for (std::size_t i = 0; i < N; ++i)
    ASSERT_EQ(pq.pop_min(), expect[i]) << "at " << i;
  EXPECT_TRUE(pq.empty());
  EXPECT_LE(mach.ledger().high_water(), 256u);
}

TEST(ExtPqTest, InterleavedMatchesStdPriorityQueue) {
  // Random interleaving of pushes (including values below already-popped
  // ones) and pops, mirrored against std::priority_queue.
  Machine mach(cfg(256, 16, 2));
  ExtPriorityQueue<std::uint64_t> pq(mach);
  std::priority_queue<std::uint64_t, std::vector<std::uint64_t>,
                      std::greater<>>
      ref;
  util::Rng rng(403);
  for (int step = 0; step < 20000; ++step) {
    const bool can_pop = !ref.empty();
    if (!can_pop || rng.below(100) < 60) {
      std::uint64_t v = rng.below(1 << 20);
      pq.push(v);
      ref.push(v);
    } else {
      ASSERT_EQ(pq.pop_min(), ref.top()) << "step " << step;
      ref.pop();
    }
    ASSERT_EQ(pq.size(), ref.size());
  }
  while (!ref.empty()) {
    ASSERT_EQ(pq.pop_min(), ref.top());
    ref.pop();
  }
}

TEST(ExtPqTest, DuplicateValues) {
  Machine mach(cfg(128, 8, 2));
  ExtPriorityQueue<std::uint64_t> pq(mach);
  for (int rep = 0; rep < 500; ++rep) pq.push(rep % 3);
  std::size_t counts[3] = {0, 0, 0};
  std::uint64_t prev = 0;
  while (!pq.empty()) {
    std::uint64_t v = pq.pop_min();
    ASSERT_GE(v, prev);
    prev = v;
    ++counts[v];
  }
  EXPECT_EQ(counts[0], 167u);
  EXPECT_EQ(counts[1], 167u);
  EXPECT_EQ(counts[2], 166u);
}

TEST(ExtPqTest, CustomComparatorMaxQueue) {
  Machine mach(cfg(128, 8, 2));
  ExtPriorityQueue<std::uint64_t, std::greater<std::uint64_t>> pq(
      mach, 0, std::greater<std::uint64_t>{});
  util::Rng rng(405);
  auto keys = util::random_keys(2000, rng);
  for (auto k : keys) pq.push(k);
  auto expect = keys;
  std::sort(expect.begin(), expect.end(), std::greater<>{});
  for (std::size_t i = 0; i < keys.size(); ++i) ASSERT_EQ(pq.pop_min(), expect[i]);
}

TEST(ExtPqTest, WriteEfficientAtHighOmega) {
  // The queue's writes should stay near one-write-per-element-per-level;
  // reads may be omega-fold larger.  Compare writes against a naive
  // "rewrite everything per operation" strawman bound.
  Machine mach(cfg(256, 16, 64));
  ExtPriorityQueue<std::uint64_t> pq(mach);
  util::Rng rng(407);
  const std::size_t N = 1 << 13;
  for (std::size_t i = 0; i < N; ++i) pq.push(rng.next());
  mach.reset_stats();
  for (std::size_t i = 0; i < N; ++i) pq.pop_min();
  // Draining should cost mostly reads: writes only from residual cascades.
  EXPECT_LT(mach.stats().writes * 4, mach.stats().reads)
      << "writes=" << mach.stats().writes << " reads=" << mach.stats().reads;
}

TEST(HeapSortTest, SortsCorrectly) {
  Machine mach(cfg(256, 16, 4));
  util::Rng rng(409);
  const std::size_t N = 1 << 13;
  auto keys = util::random_keys(N, rng);
  ExtArray<std::uint64_t> in(mach, N, "in");
  in.unsafe_host_fill(keys);
  ExtArray<std::uint64_t> out(mach, N, "out");
  aem_heap_sort(in, out);
  auto expect = keys;
  std::sort(expect.begin(), expect.end());
  EXPECT_EQ(out.unsafe_host_view(), expect);
  EXPECT_LE(mach.ledger().high_water(), 256u);
}

TEST(HeapSortTest, EdgeSizes) {
  Machine mach(cfg(128, 8, 2));
  for (std::size_t n : {0u, 1u, 7u, 129u}) {
    util::Rng rng(n + 411);
    auto keys = util::random_keys(n, rng);
    ExtArray<std::uint64_t> in(mach, n, "in");
    in.unsafe_host_fill(keys);
    ExtArray<std::uint64_t> out(mach, n, "out");
    aem_heap_sort(in, out);
    auto expect = keys;
    std::sort(expect.begin(), expect.end());
    EXPECT_EQ(out.unsafe_host_view(), expect) << "n=" << n;
  }
}

TEST(ExtPqTest, FuzzAcrossMachineGeometries) {
  // Random machines (M >= 16B) and random op mixes, mirrored against
  // std::priority_queue.
  util::Rng rng(421);
  for (int iter = 0; iter < 8; ++iter) {
    const std::size_t B = 4 << rng.below(3);
    const std::size_t M = 16 * B << rng.below(2);
    const std::uint64_t w = 1 << rng.below(6);
    Machine mach(cfg(M, B, w));
    ExtPriorityQueue<std::uint64_t> pq(mach);
    std::priority_queue<std::uint64_t, std::vector<std::uint64_t>,
                        std::greater<>>
        ref;
    const int pop_bias = 30 + int(rng.below(40));
    for (int step = 0; step < 4000; ++step) {
      if (ref.empty() || rng.below(100) >= std::uint64_t(pop_bias)) {
        std::uint64_t v = rng.below(1 << 16);
        pq.push(v);
        ref.push(v);
      } else {
        ASSERT_EQ(pq.pop_min(), ref.top())
            << "iter " << iter << " step " << step << " M=" << M
            << " B=" << B << " w=" << w;
        ref.pop();
      }
    }
    while (!ref.empty()) {
      ASSERT_EQ(pq.pop_min(), ref.top());
      ref.pop();
    }
    EXPECT_LE(mach.ledger().high_water(), M) << "M=" << M << " B=" << B;
  }
}

TEST(HeapSortTest, CostComparableToMergesortAtModerateOmega) {
  // Not an asymptotic claim (the default kLegacy tuning's level base is
  // m_eff, not omega*m_eff; PqTuning::kBuffered widens it, see the header
  // comment and test_lowwrite.cpp) — just a sanity band: within ~8x of the
  // Section 3 mergesort on a mid-size instance.
  const std::size_t N = 1 << 13, M = 256, B = 16;
  const std::uint64_t w = 8;
  util::Rng rng(413);
  auto keys = util::random_keys(N, rng);

  Machine m1(cfg(M, B, w));
  ExtArray<std::uint64_t> in1(m1, N, "in");
  in1.unsafe_host_fill(keys);
  ExtArray<std::uint64_t> out1(m1, N, "out");
  m1.reset_stats();
  aem_heap_sort(in1, out1);
  const double heap_cost = double(m1.cost());

  Machine m2(cfg(M, B, w));
  ExtArray<std::uint64_t> in2(m2, N, "in");
  in2.unsafe_host_fill(keys);
  ExtArray<std::uint64_t> out2(m2, N, "out");
  m2.reset_stats();
  aem_merge_sort(in2, out2);
  const double merge_cost = double(m2.cost());

  EXPECT_LT(heap_cost, 8.0 * merge_cost)
      << "heap=" << heap_cost << " merge=" << merge_cost;
}

// Regression: flush_insert_buffer's cache+buffer fold used to take its
// transient `total`-element reservation while the standing insert/min
// reservations were still held, charging the folded elements twice.  With
// the rest of M occupied by another algorithm's buffer, the double charge
// pushed a strict ledger over capacity on memory the queue never actually
// held.  The fold must release the standing claims first (the fold's
// residency IS the combined buffers), so this sequence completes.
TEST(ExtPqTest, FoldNearFullMemoryDoesNotDoubleChargeLedger) {
  Config c = cfg(128, 8, 2);  // insert_cap = min_cap = M/8 = 16, strict
  Machine mach(c);
  // An unrelated standing allocation: 80 of the 128 elements are spoken
  // for.  Pre-fix the fold transiently claimed 16 + 15 + 31 (+ run state)
  // on top of this and threw CapacityError; post-fix its peak claim is the
  // 31 folded elements plus run state.
  MemoryReservation external(mach.ledger(), 80);

  ExtPriorityQueue<std::uint64_t> pq(mach);
  for (std::uint64_t v = 0; v < 16; ++v) pq.push(v);  // 16th push: flush #1
  EXPECT_EQ(pq.pop_min(), 0u);  // refill fills the min cache from the run
  // Second fill; the 16th push folds a 16-element insert buffer with the
  // 15-element min cache at a nearly-full ledger.
  for (std::uint64_t v = 100; v < 116; ++v) pq.push(v);

  std::vector<std::uint64_t> expected;
  for (std::uint64_t v = 1; v < 16; ++v) expected.push_back(v);
  for (std::uint64_t v = 100; v < 116; ++v) expected.push_back(v);
  std::vector<std::uint64_t> drained;
  while (!pq.empty()) drained.push_back(pq.pop_min());
  EXPECT_EQ(drained, expected);
  EXPECT_FALSE(mach.ledger_poisoned());
}

}  // namespace
