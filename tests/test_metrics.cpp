// Unit tests for core/metrics: snapshot correctness against a live machine
// and stability of the JSON serialization.
#include <gtest/gtest.h>

#include <span>
#include <string>
#include <vector>

#include "core/ext_array.hpp"
#include "core/machine.hpp"
#include "core/metrics.hpp"

namespace {

using namespace aem;

Config small_config() {
  Config cfg;
  cfg.memory_elems = 64;
  cfg.block_elems = 8;
  cfg.write_cost = 4;
  return cfg;
}

TEST(MetricsTest, SnapshotCapturesMachineState) {
  Machine mach(small_config());
  mach.enable_wear_tracking();
  mach.enable_trace();
  std::uint32_t a = mach.register_array("alpha");
  std::uint32_t b = mach.register_array("beta");
  {
    auto p = mach.phase("pass");
    mach.on_read(a, 0);
    mach.on_write(a, 0);
    mach.on_write(a, 0);
    mach.on_write(b, 3);
  }
  Buffer<int> buf(mach, 16);

  const MetricsSnapshot s = snapshot_metrics(mach, "unit");
  EXPECT_EQ(s.label, "unit");
  EXPECT_EQ(s.memory_elems, 64u);
  EXPECT_EQ(s.block_elems, 8u);
  EXPECT_EQ(s.write_cost, 4u);
  EXPECT_EQ(s.capacity, 64u);

  EXPECT_EQ(s.io.reads, 1u);
  EXPECT_EQ(s.io.writes, 3u);
  EXPECT_EQ(s.cost, 1u + 4u * 3u);

  EXPECT_EQ(s.ledger_used, 16u);
  EXPECT_EQ(s.ledger_high_water, 16u);
  EXPECT_FALSE(s.ledger_poisoned);

  ASSERT_EQ(s.phases.size(), 1u);
  EXPECT_EQ(s.phases[0].name, "pass");
  EXPECT_EQ(s.phases[0].io.reads, 1u);
  EXPECT_EQ(s.phases[0].io.writes, 3u);

  EXPECT_TRUE(s.wear_enabled);
  EXPECT_EQ(s.wear_blocks_written, 2u);  // alpha block 0, beta block 3
  EXPECT_EQ(s.wear_max_writes, 2u);
  ASSERT_EQ(s.wear_arrays.size(), 2u);
  EXPECT_EQ(s.wear_arrays[0].name, "alpha");
  EXPECT_EQ(s.wear_arrays[0].writes, 2u);
  EXPECT_EQ(s.wear_arrays[1].name, "beta");
  EXPECT_EQ(s.wear_arrays[1].blocks_written, 1u);

  EXPECT_TRUE(s.trace_enabled);
  EXPECT_EQ(s.trace_ops, 4u);

  ASSERT_EQ(s.arrays.size(), 2u);
  EXPECT_EQ(s.arrays[0], "alpha");
  EXPECT_EQ(s.arrays[1], "beta");
}

TEST(MetricsTest, SnapshotOfFreshMachineIsEmptyButValid) {
  Machine mach(small_config());
  const MetricsSnapshot s = snapshot_metrics(mach);
  EXPECT_EQ(s.io.total_ios(), 0u);
  EXPECT_TRUE(s.phases.empty());
  EXPECT_FALSE(s.wear_enabled);
  EXPECT_FALSE(s.trace_enabled);
  const std::string j = to_json(s);
  EXPECT_NE(j.find("\"schema\":\"aem.machine.metrics/v8\""),
            std::string::npos);
  EXPECT_NE(j.find("\"phases\":[]"), std::string::npos);
  // Without an installed FaultPolicy the faults section reports defaults.
  EXPECT_NE(j.find("\"faults\":{\"enabled\":false"), std::string::npos);
  // Same for the cache section in bypass mode.
  EXPECT_NE(j.find("\"cache\":{\"enabled\":false"), std::string::npos);
}

TEST(MetricsTest, SnapshotSurfacesCacheState) {
  Config cfg = small_config();
  cfg.cache.capacity_blocks = 4;
  cfg.cache.policy = CachePolicy::kCleanFirst;
  Machine mach(cfg);
  ExtArray<int> arr(mach, 32, "data");
  std::vector<int> blk(8, 7);
  arr.write_block(0, std::span<const int>(blk));   // write miss (allocate)
  arr.write_block(0, std::span<const int>(blk));   // write hit (coalesced)
  arr.read_block(0, std::span<int>(blk));          // read hit
  mach.flush_cache();

  const MetricsSnapshot s = snapshot_metrics(mach, "cached");
  EXPECT_TRUE(s.cache_enabled);
  EXPECT_EQ(s.cache_config.capacity_blocks, 4u);
  EXPECT_EQ(s.cache_config.policy, CachePolicy::kCleanFirst);
  // omega = 4, capacity 4: window = 4 - max(1, 4/4) = 3.
  EXPECT_EQ(s.cache_window, 3u);
  EXPECT_EQ(s.cache_stats.write_misses, 1u);
  EXPECT_EQ(s.cache_stats.write_hits, 1u);
  EXPECT_EQ(s.cache_stats.read_hits, 1u);
  EXPECT_EQ(s.cache_stats.write_backs, 1u);
  EXPECT_EQ(s.cache_resident, 1u);
  EXPECT_EQ(s.cache_resident_dirty, 0u);

  const std::string j = to_json(s);
  EXPECT_NE(j.find("\"cache\":{\"enabled\":true,\"policy\":\"clean-first\","
                   "\"capacity_blocks\":4,\"clean_window\":3"),
            std::string::npos);
  EXPECT_NE(j.find("\"write_backs\":1"), std::string::npos);
}

TEST(MetricsTest, JsonContainsStableSchemaAndFields) {
  Machine mach(small_config());
  std::uint32_t a = mach.register_array("in");
  {
    auto p = mach.phase("sort.merge");
    mach.on_read(a, 0);
    mach.on_write(a, 0);
  }
  const std::string j = to_json(snapshot_metrics(mach, "case-1"));
  EXPECT_EQ(j.find('\n'), std::string::npos);  // one line per snapshot
  for (const char* needle :
       {"\"schema\":\"aem.machine.metrics/v8\"", "\"label\":\"case-1\"",
        "\"config\":{\"memory_elems\":64,\"block_elems\":8,\"write_cost\":4",
        "\"io\":{\"reads\":1,\"writes\":1,\"total\":2,\"cost\":5}",
        "\"name\":\"sort.merge\"", "\"ledger\":", "\"poisoned\":false",
        "\"wear\":{\"enabled\":false", "\"faults\":{\"enabled\":false",
        "\"injected\":{\"read\":0", "\"recovery\":{\"read_retries\":0",
        "\"cache\":{\"enabled\":false,\"policy\":\"lru\"",
        "\"trace\":{\"enabled\":false", "\"arrays\":[\"in\"]"}) {
    EXPECT_NE(j.find(needle), std::string::npos) << "missing " << needle
                                                 << " in " << j;
  }
}

TEST(MetricsTest, JsonEscapesControlAndQuoteCharacters) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(json_escape(std::string("a\x01") + "b"), "a\\u0001b");
}

TEST(MetricsTest, SnapshotSurfacesPoisonedLedger) {
  Machine mach(small_config());
  mach.ledger().release(7);  // over-release: poison
  const MetricsSnapshot s = snapshot_metrics(mach);
  EXPECT_TRUE(s.ledger_poisoned);
  EXPECT_EQ(s.ledger_over_released, 7u);
  const std::string j = to_json(s);
  EXPECT_NE(j.find("\"poisoned\":true"), std::string::npos);
  EXPECT_NE(j.find("\"over_released\":7"), std::string::npos);
}

}  // namespace
