// Tests for sort/: small_sort (Lemma 4.2 base case), merge_runs
// (Theorem 3.2), and aem_merge_sort (Section 3) — correctness, stability,
// combining, memory discipline (strict ledger), and I/O cost bounds.
#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>
#include <vector>

#include "bounds/sort_bounds.hpp"
#include "core/ext_array.hpp"
#include "core/machine.hpp"
#include "sort/budget.hpp"
#include "sort/merge.hpp"
#include "sort/mergesort.hpp"
#include "sort/small_sort.hpp"
#include "util/rng.hpp"

namespace {

using namespace aem;

Config cfg(std::size_t M, std::size_t B, std::uint64_t w) {
  Config c;
  c.memory_elems = M;
  c.block_elems = B;
  c.write_cost = w;
  return c;
}

ExtArray<std::uint64_t> stage(Machine& mach,
                              const std::vector<std::uint64_t>& host,
                              const char* name = "in") {
  ExtArray<std::uint64_t> arr(mach, host.size(), name);
  arr.unsafe_host_fill(host);
  return arr;
}

TEST(BudgetTest, SplitsMemory) {
  Machine mach(cfg(1024, 16, 8));
  SortBudget b = SortBudget::from(mach);
  EXPECT_EQ(b.out_batch, 256u);   // M/4, block-aligned
  EXPECT_EQ(b.m_eff, 16u);        // Mout / B
  EXPECT_EQ(b.fanout, 128u);      // omega * m_eff
  EXPECT_EQ(b.small_batch, 512u); // M/2
  EXPECT_EQ(b.base, 4096u);       // omega * small_batch
}

TEST(BudgetTest, MinimalMemoryEnforced) {
  // M < 8B cannot host the merge's working set under the strict ledger.
  Machine tiny(cfg(32, 16, 1));
  EXPECT_THROW(SortBudget::from(tiny), std::invalid_argument);
  Machine ok(cfg(128, 16, 1));  // exactly 8B
  SortBudget b = SortBudget::from(ok);
  EXPECT_EQ(b.out_batch, 32u);
  EXPECT_EQ(b.m_eff, 2u);
  EXPECT_EQ(b.fanout, 2u);
}

TEST(SmallSortTest, SortsWithinBudget) {
  Machine mach(cfg(64, 8, 4));
  util::Rng rng(1);
  auto keys = util::random_keys(60, rng);
  auto in = stage(mach, keys);
  ExtArray<std::uint64_t> out(mach, 60, "out");
  std::size_t written =
      small_sort(in, 0, 60, out, 0, std::less<std::uint64_t>{});
  EXPECT_EQ(written, 60u);
  auto expect = keys;
  std::sort(expect.begin(), expect.end());
  EXPECT_EQ(out.unsafe_host_view(), expect);
}

TEST(SmallSortTest, SortsSubrange) {
  Machine mach(cfg(64, 8, 2));
  std::vector<std::uint64_t> host(40);
  for (std::size_t i = 0; i < 40; ++i) host[i] = 40 - i;
  auto in = stage(mach, host);
  ExtArray<std::uint64_t> out(mach, 40, "out");
  // Sort elements [8, 24) into out at offset 8; rest untouched.
  small_sort(in, 8, 24, out, 8, std::less<std::uint64_t>{});
  auto expect = std::vector<std::uint64_t>(host.begin() + 8, host.begin() + 24);
  std::sort(expect.begin(), expect.end());
  for (std::size_t i = 0; i < 16; ++i)
    EXPECT_EQ(out.unsafe_host_view()[8 + i], expect[i]);
}

TEST(SmallSortTest, HandlesDuplicatesStably) {
  // Keys are (value, original index) packed; sorting by the value part must
  // preserve index order among equal values.
  Machine mach(cfg(64, 8, 2));
  std::vector<std::uint64_t> host;
  for (std::size_t i = 0; i < 48; ++i)
    host.push_back(((i * 7 % 4) << 32) | i);  // 4 distinct values, many dups
  auto in = stage(mach, host);
  ExtArray<std::uint64_t> out(mach, 48, "out");
  auto by_value = [](std::uint64_t a, std::uint64_t b) {
    return (a >> 32) < (b >> 32);
  };
  small_sort(in, 0, 48, out, 0, by_value);
  const auto& got = out.unsafe_host_view();
  for (std::size_t i = 1; i < got.size(); ++i) {
    ASSERT_LE(got[i - 1] >> 32, got[i] >> 32);
    if ((got[i - 1] >> 32) == (got[i] >> 32)) {
      EXPECT_LT(got[i - 1] & 0xffffffff, got[i] & 0xffffffff)
          << "stability violated at " << i;
    }
  }
}

TEST(SmallSortTest, CombineFoldsEqualKeys) {
  // Elements encode (key << 32 | count); combining sums the counts.
  Machine mach(cfg(64, 8, 2));
  std::vector<std::uint64_t> host;
  for (std::size_t i = 0; i < 40; ++i) host.push_back(((i % 5) << 32) | 1);
  auto in = stage(mach, host);
  ExtArray<std::uint64_t> out(mach, 40, "out");
  auto by_key = [](std::uint64_t a, std::uint64_t b) {
    return (a >> 32) < (b >> 32);
  };
  auto add = [](std::uint64_t& acc, const std::uint64_t& x) {
    acc += x & 0xffffffff;
  };
  std::size_t written = small_sort(in, 0, 40, out, 0, by_key, add);
  EXPECT_EQ(written, 5u);
  for (std::size_t k = 0; k < 5; ++k) {
    EXPECT_EQ(out.unsafe_host_view()[k] >> 32, k);
    EXPECT_EQ(out.unsafe_host_view()[k] & 0xffffffff, 8u);  // 40/5 copies
  }
}

TEST(SmallSortTest, CostWithinLemma42Budget) {
  // N' = omega*M elements must sort in <= c*omega*n' reads, c*n' writes.
  const std::size_t M = 256, B = 16;
  const std::uint64_t w = 4;
  Machine mach(cfg(M, B, w));
  const std::size_t N = static_cast<std::size_t>(w) * M;
  util::Rng rng(2);
  auto in = stage(mach, util::random_keys(N, rng));
  ExtArray<std::uint64_t> out(mach, N, "out");
  mach.reset_stats();
  small_sort(in, 0, N, out, 0, std::less<std::uint64_t>{});
  const double np = double(N) / B;
  EXPECT_LE(mach.stats().reads, 6.0 * w * np);
  EXPECT_LE(mach.stats().writes, 3.0 * np);
  EXPECT_LE(mach.ledger().high_water(), M);
}

TEST(SmallSortTest, RejectsBadRange) {
  Machine mach(cfg(64, 8, 1));
  ExtArray<std::uint64_t> in(mach, 16, "in");
  ExtArray<std::uint64_t> out(mach, 16, "out");
  EXPECT_THROW(small_sort(in, 0, 17, out, 0, std::less<std::uint64_t>{}),
               std::invalid_argument);
  EXPECT_THROW(small_sort(in, 8, 4, out, 0, std::less<std::uint64_t>{}),
               std::invalid_argument);
}

std::vector<RunBounds> sorted_runs_fixture(std::vector<std::uint64_t>& host,
                                           std::size_t runs, std::size_t len,
                                           util::Rng& rng) {
  std::vector<RunBounds> bounds;
  host.clear();
  for (std::size_t r = 0; r < runs; ++r) {
    std::vector<std::uint64_t> run = util::random_keys(len, rng);
    std::sort(run.begin(), run.end());
    bounds.push_back(RunBounds{host.size(), host.size() + len});
    host.insert(host.end(), run.begin(), run.end());
  }
  return bounds;
}

TEST(MergeTest, MergesSortedRuns) {
  Machine mach(cfg(128, 8, 4));
  util::Rng rng(3);
  std::vector<std::uint64_t> host;
  auto bounds = sorted_runs_fixture(host, 10, 32, rng);  // aligned: 32 % 8 == 0
  auto in = stage(mach, host);
  ExtArray<std::uint64_t> out(mach, host.size(), "out");
  std::size_t written = merge_runs(in, std::span<const RunBounds>(bounds), out,
                                   0, std::less<std::uint64_t>{});
  EXPECT_EQ(written, host.size());
  auto expect = host;
  std::sort(expect.begin(), expect.end());
  EXPECT_EQ(out.unsafe_host_view(), expect);
}

TEST(MergeTest, SingleRunCopies) {
  Machine mach(cfg(128, 8, 2));
  std::vector<std::uint64_t> host(64);
  for (std::size_t i = 0; i < 64; ++i) host[i] = i;
  auto in = stage(mach, host);
  ExtArray<std::uint64_t> out(mach, 64, "out");
  std::vector<RunBounds> bounds{{0, 64}};
  merge_runs(in, std::span<const RunBounds>(bounds), out, 0,
             std::less<std::uint64_t>{});
  EXPECT_EQ(out.unsafe_host_view(), host);
}

TEST(MergeTest, UnevenAndEmptyRuns) {
  Machine mach(cfg(128, 8, 2));
  // Runs with lengths 24, 0, 8, 5 (last one partial-block).
  std::vector<std::uint64_t> host(40, 0);
  for (std::size_t i = 0; i < 24; ++i) host[i] = i * 3;
  for (std::size_t i = 0; i < 8; ++i) host[24 + i] = i * 5;
  for (std::size_t i = 0; i < 5; ++i) host[32 + i] = i * 7 + 1;
  auto in = stage(mach, host);
  ExtArray<std::uint64_t> out(mach, 40, "out");
  std::vector<RunBounds> bounds{{0, 24}, {24, 24}, {24, 32}, {32, 37}};
  std::size_t written = merge_runs(in, std::span<const RunBounds>(bounds), out,
                                   0, std::less<std::uint64_t>{});
  EXPECT_EQ(written, 37u);
  std::vector<std::uint64_t> expect(host.begin(), host.begin() + 37);
  std::sort(expect.begin(), expect.end());
  for (std::size_t i = 0; i < 37; ++i)
    EXPECT_EQ(out.unsafe_host_view()[i], expect[i]);
}

TEST(MergeTest, RejectsUnalignedRun) {
  Machine mach(cfg(128, 8, 2));
  ExtArray<std::uint64_t> in(mach, 32, "in");
  ExtArray<std::uint64_t> out(mach, 32, "out");
  std::vector<RunBounds> bounds{{4, 16}};  // begin not a multiple of B=8
  EXPECT_THROW(merge_runs(in, std::span<const RunBounds>(bounds), out, 0,
                          std::less<std::uint64_t>{}),
               std::invalid_argument);
}

TEST(MergeTest, CombineAcrossRuns) {
  Machine mach(cfg(128, 8, 2));
  // Two runs with overlapping keys; combine sums the low halves.
  std::vector<std::uint64_t> host;
  for (std::size_t i = 0; i < 16; ++i) host.push_back((i << 32) | 1);
  for (std::size_t i = 0; i < 16; ++i) host.push_back((i << 32) | 2);
  auto in = stage(mach, host);
  ExtArray<std::uint64_t> out(mach, 32, "out");
  std::vector<RunBounds> bounds{{0, 16}, {16, 32}};
  auto by_key = [](std::uint64_t a, std::uint64_t b) {
    return (a >> 32) < (b >> 32);
  };
  auto add = [](std::uint64_t& acc, const std::uint64_t& x) {
    acc += x & 0xffffffff;
  };
  std::size_t written = merge_runs(in, std::span<const RunBounds>(bounds), out,
                                   0, by_key, add);
  EXPECT_EQ(written, 16u);
  for (std::size_t k = 0; k < 16; ++k) {
    EXPECT_EQ(out.unsafe_host_view()[k] >> 32, k);
    EXPECT_EQ(out.unsafe_host_view()[k] & 0xffffffff, 3u);
  }
}

TEST(MergeTest, CostWithinTheorem32) {
  // Merging d = omega*m_eff runs totalling N elements must cost
  // O(omega(n+m)) reads and O(n+m) writes; check generous constants.
  const std::size_t M = 256, B = 16;
  const std::uint64_t w = 4;
  Machine mach(cfg(M, B, w));
  const SortBudget budget = SortBudget::from(mach);
  util::Rng rng(5);
  std::vector<std::uint64_t> host;
  const std::size_t run_len = 64;  // block-aligned
  auto bounds = sorted_runs_fixture(host, budget.fanout, run_len, rng);
  auto in = stage(mach, host);
  ExtArray<std::uint64_t> out(mach, host.size(), "out");
  mach.reset_stats();
  merge_runs(in, std::span<const RunBounds>(bounds), out, 0,
             std::less<std::uint64_t>{});
  const double n = double(host.size()) / B;
  const double m = double(M) / B;
  EXPECT_LE(mach.stats().reads, 16.0 * w * (n + m))
      << "reads=" << mach.stats().reads << " n=" << n << " m=" << m;
  EXPECT_LE(mach.stats().writes, 8.0 * (n + m))
      << "writes=" << mach.stats().writes;
  EXPECT_LE(mach.ledger().high_water(), M);
}

TEST(MergeTest, StatsWitnessLemma31) {
  // Few long runs: the merge loop must actually extend runs beyond the
  // initialization blocks, so the active set is non-trivially exercised.
  Machine mach(cfg(256, 16, 1));
  util::Rng rng(91);
  std::vector<std::uint64_t> host;
  auto bounds = sorted_runs_fixture(host, 3, 512, rng);
  auto in = stage(mach, host);
  ExtArray<std::uint64_t> out(mach, host.size(), "out");
  MergeStats stats;
  merge_runs(in, std::span<const RunBounds>(bounds), out, 0,
             std::less<std::uint64_t>{}, std::nullptr_t{}, &stats);
  const SortBudget budget = SortBudget::from(mach);
  EXPECT_GT(stats.rounds, 0u);
  EXPECT_LE(stats.max_active_runs, budget.m_eff);  // Lemma 3.1
  EXPECT_GT(stats.max_active_runs, 0u);  // and the bound is not vacuous
}

TEST(MergeSortTest, SortsLargeArray) {
  Machine mach(cfg(256, 16, 4));
  util::Rng rng(7);
  auto keys = util::random_keys(1 << 14, rng);
  auto in = stage(mach, keys);
  ExtArray<std::uint64_t> out(mach, keys.size(), "out");
  aem_merge_sort(in, out);
  auto expect = keys;
  std::sort(expect.begin(), expect.end());
  EXPECT_EQ(out.unsafe_host_view(), expect);
}

TEST(MergeSortTest, EmptyAndSingleton) {
  Machine mach(cfg(64, 8, 2));
  ExtArray<std::uint64_t> e_in(mach, 0, "in");
  ExtArray<std::uint64_t> e_out(mach, 0, "out");
  EXPECT_NO_THROW(aem_merge_sort(e_in, e_out));
  auto one = stage(mach, {42});
  ExtArray<std::uint64_t> one_out(mach, 1, "out1");
  aem_merge_sort(one, one_out);
  EXPECT_EQ(one_out.unsafe_host_view()[0], 42u);
}

TEST(MergeSortTest, AlreadySortedAndReversed) {
  Machine mach(cfg(128, 8, 4));
  std::vector<std::uint64_t> asc(4096), desc(4096);
  for (std::size_t i = 0; i < 4096; ++i) {
    asc[i] = i;
    desc[i] = 4096 - i;
  }
  for (const auto& host : {asc, desc}) {
    auto in = stage(mach, host);
    ExtArray<std::uint64_t> out(mach, host.size(), "out");
    aem_merge_sort(in, out);
    auto expect = host;
    std::sort(expect.begin(), expect.end());
    EXPECT_EQ(out.unsafe_host_view(), expect);
  }
}

TEST(MergeSortTest, SizeMismatchRejected) {
  Machine mach(cfg(64, 8, 2));
  ExtArray<std::uint64_t> in(mach, 16, "in");
  ExtArray<std::uint64_t> out(mach, 8, "out");
  EXPECT_THROW(aem_merge_sort(in, out), std::invalid_argument);
}

// Degenerate driver shapes: inputs at and around the small-sort base
// (N <= base takes the one-pass path; base + 1 forces run formation and a
// real merge) and the minimum merge fanout d = 2.
TEST(MergeSortTest, DegenerateBaseBoundary) {
  const std::size_t M = 128, B = 16;  // omega=1: base = M/2 = 64, fanout = 2
  for (std::size_t n : {std::size_t{63}, std::size_t{64}}) {
    util::Rng rng(601 + n);
    auto keys = util::random_keys(n, rng);

    Machine ms(cfg(M, B, 1));
    auto in = stage(ms, keys);
    ExtArray<std::uint64_t> out(ms, n, "out");
    aem_merge_sort(in, out);

    // N <= base must be EXACTLY one small_sort: same charges, same output.
    Machine ss(cfg(M, B, 1));
    auto in2 = stage(ss, keys);
    ExtArray<std::uint64_t> out2(ss, n, "out");
    small_sort(in2, 0, n, out2, 0, std::less<std::uint64_t>{});
    EXPECT_EQ(ms.stats(), ss.stats()) << "n=" << n;
    EXPECT_EQ(ms.cost(), ss.cost()) << "n=" << n;
    EXPECT_EQ(out.unsafe_host_view(), out2.unsafe_host_view());
  }
  {
    // One past the base: two runs, one d=2 merge round; strictly more I/O
    // than the one-pass path but still correct.
    const std::size_t n = 65;
    util::Rng rng(701);
    auto keys = util::random_keys(n, rng);
    Machine mach(cfg(M, B, 1));
    auto in = stage(mach, keys);
    ExtArray<std::uint64_t> out(mach, n, "out");
    aem_merge_sort(in, out);
    auto expect = keys;
    std::sort(expect.begin(), expect.end());
    EXPECT_EQ(out.unsafe_host_view(), expect);
    EXPECT_GT(mach.stats().writes, (n + B - 1) / B)
        << "base + 1 must pay more than the single output pass";
  }
}

TEST(MergeSortTest, MinimumFanoutLadder) {
  // M = 8B is the smallest legal memory: m_eff = 2, so every merge round
  // runs at the minimum fanout d = 2 and 512 elements need a full ladder
  // of rounds (8 base runs -> 4 -> 2 -> 1).
  const std::size_t M = 128, B = 16, n = 512;
  Machine mach(cfg(M, B, 1));
  ASSERT_EQ(SortBudget::from(mach).fanout, 2u);
  util::Rng rng(703);
  auto keys = util::random_keys(n, rng);
  auto in = stage(mach, keys);
  ExtArray<std::uint64_t> out(mach, n, "out");
  aem_merge_sort(in, out);
  auto expect = keys;
  std::sort(expect.begin(), expect.end());
  EXPECT_EQ(out.unsafe_host_view(), expect);
  EXPECT_LE(mach.ledger().high_water(), M);
}

TEST(MergeSortTest, CustomComparatorDescending) {
  Machine mach(cfg(128, 8, 2));
  util::Rng rng(11);
  auto keys = util::random_keys(2048, rng);
  auto in = stage(mach, keys);
  ExtArray<std::uint64_t> out(mach, keys.size(), "out");
  aem_merge_sort(in, out, std::greater<std::uint64_t>{});
  auto expect = keys;
  std::sort(expect.begin(), expect.end(), std::greater<std::uint64_t>{});
  EXPECT_EQ(out.unsafe_host_view(), expect);
}

TEST(MergeSortTest, StableOverall) {
  Machine mach(cfg(128, 8, 4));
  std::vector<std::uint64_t> host;
  util::Rng rng(13);
  for (std::size_t i = 0; i < 4096; ++i)
    host.push_back((rng.below(8) << 32) | i);  // 8 keys, index in low bits
  auto in = stage(mach, host);
  ExtArray<std::uint64_t> out(mach, host.size(), "out");
  auto by_key = [](std::uint64_t a, std::uint64_t b) {
    return (a >> 32) < (b >> 32);
  };
  aem_merge_sort(in, out, by_key);
  const auto& got = out.unsafe_host_view();
  for (std::size_t i = 1; i < got.size(); ++i) {
    ASSERT_LE(got[i - 1] >> 32, got[i] >> 32);
    if ((got[i - 1] >> 32) == (got[i] >> 32)) {
      ASSERT_LT(got[i - 1] & 0xffffffff, got[i] & 0xffffffff);
    }
  }
}

TEST(MergeLevelTest, GroupsRunsByFanout) {
  Machine mach(cfg(256, 16, 1));  // fanout = m_eff = 4
  util::Rng rng(93);
  std::vector<std::uint64_t> host;
  auto bounds = sorted_runs_fixture(host, 10, 32, rng);
  auto in = stage(mach, host);
  ExtArray<std::uint64_t> out(mach, host.size(), "out");
  auto next = merge_level(in, std::span<const RunBounds>(bounds), out, 4,
                          std::less<std::uint64_t>{});
  ASSERT_EQ(next.size(), 3u);  // ceil(10/4)
  // Each merged group is sorted and covers its input span.
  EXPECT_EQ(next[0].begin, 0u);
  EXPECT_EQ(next[0].length(), 4u * 32);
  EXPECT_EQ(next[2].length(), 2u * 32);
  const auto& view = out.unsafe_host_view();
  for (const RunBounds& r : next)
    for (std::size_t i = r.begin + 1; i < r.end; ++i)
      ASSERT_LE(view[i - 1], view[i]);
  EXPECT_THROW(merge_level(in, std::span<const RunBounds>(bounds), out, 1,
                           std::less<std::uint64_t>{}),
               std::invalid_argument);
}

TEST(MergeAllRunsTest, PingPongsToSingleRun) {
  Machine mach(cfg(256, 16, 2));
  util::Rng rng(95);
  std::vector<std::uint64_t> host;
  auto bounds = sorted_runs_fixture(host, 20, 32, rng);
  auto start = stage(mach, host, "start");
  ExtArray<std::uint64_t> a(mach, host.size(), "a");
  ExtArray<std::uint64_t> b(mach, host.size(), "b");
  auto [final_arr, final_bounds] =
      merge_all_runs(&start, bounds, &a, &b, std::less<std::uint64_t>{});
  ASSERT_TRUE(final_arr == &a || final_arr == &b);
  EXPECT_EQ(final_bounds.begin, 0u);
  EXPECT_EQ(final_bounds.length(), host.size());
  auto expect = host;
  std::sort(expect.begin(), expect.end());
  for (std::size_t i = 0; i < host.size(); ++i)
    ASSERT_EQ(final_arr->unsafe_host_view()[i], expect[i]);
}

TEST(MergeAllRunsTest, EmptyAndSingleRun) {
  Machine mach(cfg(256, 16, 2));
  ExtArray<std::uint64_t> start(mach, 32, "start");
  ExtArray<std::uint64_t> a(mach, 32, "a");
  ExtArray<std::uint64_t> b(mach, 32, "b");
  auto [arr0, b0] = merge_all_runs(&std::as_const(start), {}, &a, &b,
                                   std::less<std::uint64_t>{});
  EXPECT_EQ(arr0, &start);
  EXPECT_EQ(b0.length(), 0u);
  std::vector<RunBounds> one{{0, 32}};
  auto [arr1, b1] = merge_all_runs(&std::as_const(start), one, &a, &b,
                                   std::less<std::uint64_t>{});
  EXPECT_EQ(arr1, &start);  // single run: nothing to merge
  EXPECT_EQ(b1.length(), 32u);
}

// ---------------------------------------------------------------------------
// Property sweep: sorting correctness + Section 3 cost bound + strict memory
// across a machine-parameter grid (TEST_P).
// ---------------------------------------------------------------------------

struct SortParam {
  std::size_t N, M, B;
  std::uint64_t omega;
};

class SortGridTest : public ::testing::TestWithParam<SortParam> {};

TEST_P(SortGridTest, SortsCorrectlyWithinBounds) {
  const SortParam p = GetParam();
  Machine mach(cfg(p.M, p.B, p.omega));
  util::Rng rng(17 + p.N + p.omega);
  auto keys = util::random_keys(p.N, rng);
  auto in = stage(mach, keys);
  ExtArray<std::uint64_t> out(mach, p.N, "out");
  mach.reset_stats();
  aem_merge_sort(in, out);

  auto expect = keys;
  std::sort(expect.begin(), expect.end());
  ASSERT_EQ(out.unsafe_host_view(), expect);

  // Strict memory: never exceed M.
  EXPECT_LE(mach.ledger().high_water(), p.M);

  // Cost: within a constant factor of omega * n * log_{omega m} n.
  bounds::AemParams bp{.N = p.N, .M = p.M, .B = p.B, .omega = p.omega};
  const double bound = bounds::aem_sort_upper_bound(bp);
  const double measured = double(mach.cost());
  EXPECT_LE(measured, 60.0 * bound)
      << "N=" << p.N << " M=" << p.M << " B=" << p.B << " w=" << p.omega
      << " measured=" << measured << " bound=" << bound;

  // Write budget: O(n log_{omega m} n), a factor omega below the reads.
  const double write_bound = bounds::aem_sort_write_bound(bp);
  EXPECT_LE(double(mach.stats().writes), 30.0 * write_bound);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SortGridTest,
    ::testing::Values(
        SortParam{1 << 12, 128, 8, 1}, SortParam{1 << 12, 128, 8, 8},
        SortParam{1 << 14, 256, 16, 1}, SortParam{1 << 14, 256, 16, 4},
        SortParam{1 << 14, 256, 16, 32},
        // omega > B: the regime the paper's mergesort newly covers.
        SortParam{1 << 14, 256, 16, 64}, SortParam{1 << 13, 128, 8, 128},
        SortParam{1 << 15, 512, 32, 16}, SortParam{1 << 15, 1024, 8, 4},
        // Non-power-of-two N exercising partial terminal blocks.
        SortParam{10000, 256, 16, 4}, SortParam{12345, 128, 8, 16}),
    [](const ::testing::TestParamInfo<SortParam>& info) {
      const auto& p = info.param;
      std::string name = "N";
      name += std::to_string(p.N);
      name += "_M";
      name += std::to_string(p.M);
      name += "_B";
      name += std::to_string(p.B);
      name += "_w";
      name += std::to_string(p.omega);
      return name;
    });

}  // namespace
