// Tests for harness/parallel_sweep: the determinism contract (identical
// results for every jobs value), per-point seed derivation, and failure
// propagation.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/ext_array.hpp"
#include "core/machine.hpp"
#include "harness/parallel_sweep.hpp"
#include "sort/mergesort.hpp"
#include "util/rng.hpp"

namespace aem::harness {
namespace {

Config small_cfg() {
  Config cfg;
  cfg.memory_elems = 128;
  cfg.block_elems = 8;
  cfg.write_cost = 4;
  return cfg;
}

/// A realistic point body: per-point input from the private RNG, a real
/// Machine simulation, one row and one metrics snapshot.
void sort_point(PointContext& ctx) {
  const std::size_t N = 256 + 64 * (ctx.index() % 3);
  Machine mach(small_cfg());
  auto keys = util::random_keys(N, ctx.rng());
  ExtArray<std::uint64_t> in(mach, N, "in");
  in.unsafe_host_fill(keys);
  ExtArray<std::uint64_t> out(mach, N, "out");
  aem_merge_sort(in, out);
  ctx.row({std::to_string(ctx.index()), std::to_string(mach.cost()),
           std::to_string(ctx.seed())});
  ctx.metrics(mach, "point " + std::to_string(ctx.index()));
}

std::vector<PointResult> sweep_with_jobs(std::size_t jobs) {
  SweepConfig cfg;
  cfg.jobs = jobs;
  cfg.base_seed = 42;
  return run_sweep(12, cfg, sort_point);
}

std::string flatten(const std::vector<PointResult>& rs) {
  std::string s;
  for (const PointResult& r : rs) {
    for (const auto& row : r.rows)
      for (const auto& cell : row) s += cell + "|";
    for (const MetricsSnapshot& m : r.snapshots) {
      std::ostringstream os;
      write_json(os, m);
      s += os.str() + "\n";
    }
  }
  return s;
}

TEST(ParallelSweep, IdenticalResultsForJobs1_4_16) {
  // The tentpole contract: rows AND metrics byte-identical across jobs
  // (timing never enters a snapshot, so full JSON equality is exact).
  const std::string serial = flatten(sweep_with_jobs(1));
  EXPECT_EQ(serial, flatten(sweep_with_jobs(4)));
  EXPECT_EQ(serial, flatten(sweep_with_jobs(16)));
  EXPECT_EQ(serial, flatten(sweep_with_jobs(0)));  // hardware concurrency
}

TEST(ParallelSweep, ResultsIndexedByPointNotBySchedule) {
  SweepConfig cfg;
  cfg.jobs = 8;
  cfg.base_seed = 0;
  auto rs = run_sweep(20, cfg, [](PointContext& ctx) {
    ctx.row({std::to_string(ctx.index())});
  });
  ASSERT_EQ(rs.size(), 20u);
  for (std::size_t i = 0; i < rs.size(); ++i) {
    ASSERT_EQ(rs[i].rows.size(), 1u);
    EXPECT_EQ(rs[i].rows[0][0], std::to_string(i));
  }
}

TEST(ParallelSweep, DeriveSeedStableAndDistinct) {
  // The derivation is part of the output contract: changing it reseeds
  // every published table, so the values are pinned here.
  EXPECT_EQ(derive_seed(7, 3), derive_seed(7, 3));
  std::set<std::uint64_t> seen;
  for (std::uint64_t base : {0ull, 1ull, 42ull})
    for (std::uint64_t idx = 0; idx < 64; ++idx)
      seen.insert(derive_seed(base, idx));
  EXPECT_EQ(seen.size(), 3u * 64u);  // no collisions across the small grid
}

TEST(ParallelSweep, SeedStreamsIndependentForBenchBases) {
  // The audit the sweep asserts in debug builds, run over every base seed a
  // bench binary defaults to (plus 0 and neighbors via the radius).  The
  // swapped-argument family matters: derive_seed(base, i) colliding with
  // derive_seed(i, base) would correlate point i of this sweep with point
  // `base` of a sweep whose base seed is i.
  for (std::uint64_t base : {0ull, 1ull, 2ull, 3ull, 4ull, 5ull, 6ull, 7ull,
                             8ull, 9ull, 11ull, 12ull, 13ull, 42ull, 2017ull})
    EXPECT_TRUE(seed_streams_independent(base, 4096)) << "base " << base;
  // Wider radius around the common defaults (a --seed override nearby must
  // not alias either).
  EXPECT_TRUE(seed_streams_independent(13, 1024, /*base_radius=*/16));
}

TEST(ParallelSweep, SwappedArgumentsGiveDistinctSeeds) {
  // Directly pin the asymmetry: two mixing rounds make the argument order
  // matter, so same-valued (base, index) pairs in either order differ.
  for (std::uint64_t a : {1ull, 5ull, 13ull, 100ull})
    for (std::uint64_t b : {0ull, 2ull, 7ull, 99ull}) {
      if (a == b) continue;
      EXPECT_NE(derive_seed(a, b), derive_seed(b, a)) << a << "," << b;
    }
  // And adjacent bases never produce the same stream at any small index.
  std::set<std::uint64_t> seen;
  for (std::uint64_t base = 10; base < 16; ++base)
    for (std::uint64_t idx = 0; idx < 256; ++idx)
      ASSERT_TRUE(seen.insert(derive_seed(base, idx)).second)
          << "base " << base << " idx " << idx;
}

TEST(ParallelSweep, PointRngMatchesDerivedSeed) {
  SweepConfig cfg;
  cfg.jobs = 3;
  cfg.base_seed = 1234;
  auto rs = run_sweep(6, cfg, [&](PointContext& ctx) {
    util::Rng expect(derive_seed(1234, ctx.index()));
    ctx.row({std::to_string(ctx.rng().next() == expect.next())});
  });
  for (const PointResult& r : rs) EXPECT_EQ(r.rows[0][0], "1");
}

TEST(ParallelSweep, LowestIndexedExceptionWins) {
  SweepConfig cfg;
  cfg.jobs = 4;
  cfg.base_seed = 0;
  try {
    run_sweep(10, cfg, [](PointContext& ctx) {
      if (ctx.index() == 7)
        throw std::runtime_error("point 7 failed");
      if (ctx.index() == 3)
        throw std::runtime_error("point 3 failed");
    });
    FAIL() << "run_sweep swallowed the failure";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "point 3 failed");
  }
}

TEST(ParallelSweep, AllPointsRunDespiteFailure) {
  std::atomic<int> ran{0};
  SweepConfig cfg;
  cfg.jobs = 2;
  cfg.base_seed = 0;
  EXPECT_THROW(run_sweep(8, cfg,
                         [&](PointContext& ctx) {
                           ran.fetch_add(1);
                           if (ctx.index() == 0)
                             throw std::runtime_error("boom");
                         }),
               std::runtime_error);
  EXPECT_EQ(ran.load(), 8);
}

TEST(ParallelSweep, ZeroPointsAndMoreJobsThanPoints) {
  SweepConfig cfg;
  cfg.jobs = 16;
  cfg.base_seed = 9;
  EXPECT_TRUE(run_sweep(0, cfg, [](PointContext&) {}).empty());
  auto rs = run_sweep(2, cfg, [](PointContext& ctx) {
    ctx.row({std::to_string(ctx.index())});
  });
  ASSERT_EQ(rs.size(), 2u);
}

TEST(ParallelSweep, ResolveJobs) {
  EXPECT_EQ(resolve_jobs(1), 1u);
  EXPECT_EQ(resolve_jobs(7), 7u);
  EXPECT_GE(resolve_jobs(0), 1u);  // hardware concurrency, at least one
}

}  // namespace
}  // namespace aem::harness
