// Tests for traffic/: the fixed-bucket Q histogram (exact percentiles,
// power-of-two coarse floors, merge associativity), the deterministic
// request generator (pure-function substreams, Zipf shape, hot-set drift),
// and the TrafficEngine (served/rejected identity, admission control,
// idle-engine zero charge, --jobs byte-equality through the sweep harness).
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "core/ext_array.hpp"
#include "core/faults.hpp"
#include "core/machine.hpp"
#include "core/sharding.hpp"
#include "harness/parallel_sweep.hpp"
#include "store/kv_store.hpp"
#include "traffic/engine.hpp"
#include "traffic/histogram.hpp"
#include "traffic/request_gen.hpp"
#include "util/rng.hpp"

namespace {

using namespace aem;
using store::IndexKind;
using store::KvStore;
using store::Slot;
using store::StoreConfig;
using traffic::EngineConfig;
using traffic::KeyDist;
using traffic::OpKind;
using traffic::QHistogram;
using traffic::Request;
using traffic::RequestGen;
using traffic::TrafficConfig;
using traffic::TrafficEngine;

Config cfg(std::size_t M, std::size_t B, std::uint64_t w) {
  Config c;
  c.memory_elems = M;
  c.block_elems = B;
  c.write_cost = w;
  return c;
}

// --- QHistogram ----------------------------------------------------------

TEST(QHistogramTest, ExactPercentilesOnSmallValues) {
  QHistogram h;
  for (std::uint64_t q = 1; q <= 100; ++q) h.record(q);
  EXPECT_EQ(h.total(), 100u);
  EXPECT_EQ(h.sum(), 5050u);
  EXPECT_EQ(h.max(), 100u);
  EXPECT_DOUBLE_EQ(h.mean(), 50.5);
  // Nearest-rank on exact buckets: p50 is the 50th of 100, etc.
  EXPECT_EQ(h.percentile(5000), 50u);
  EXPECT_EQ(h.percentile(9900), 99u);
  EXPECT_EQ(h.percentile(9990), 100u);
  EXPECT_EQ(h.percentile(10000), 100u);
  EXPECT_EQ(h.percentile(1), 1u);
}

TEST(QHistogramTest, ZeroCostRequestsAreExact) {
  QHistogram h;
  for (int i = 0; i < 10; ++i) h.record(0);
  h.record(7);
  EXPECT_EQ(h.percentile(5000), 0u);
  EXPECT_EQ(h.percentile(10000), 7u);
  EXPECT_EQ(h.max(), 7u);
}

TEST(QHistogramTest, CoarseBucketsReportPowerOfTwoFloors) {
  QHistogram h;
  h.record(5000);  // >= kExactLimit: lands in the [4096, 8192) bucket
  EXPECT_EQ(h.total(), 1u);
  EXPECT_EQ(h.max(), 5000u);   // max is tracked exactly
  EXPECT_EQ(h.sum(), 5000u);   // so is the sum (mean stays exact)
  EXPECT_EQ(h.percentile(10000), 4096u);  // percentile reports the floor
}

// The four pinned permyriad boundaries of the percentile contract (see the
// header comment of traffic/histogram.hpp), including the exact/coarse
// bucket seam at kExactLimit.
TEST(QHistogramTest, PercentileBoundariesPinned) {
  QHistogram empty;
  // Empty histogram: the documented 0 sentinel for EVERY in-range permyriad
  // (scripts/run_experiments.sh relies on disabled sections being all-zero).
  EXPECT_EQ(empty.percentile(0), 0u);
  EXPECT_EQ(empty.percentile(5000), 0u);
  EXPECT_EQ(empty.percentile(10000), 0u);
  // Out of range throws even on an empty histogram.
  EXPECT_THROW(empty.percentile(10001), std::invalid_argument);

  QHistogram h;
  h.record(7);
  h.record(42);
  h.record(QHistogram::kExactLimit - 1);  // 4095: the last exact bucket
  h.record(QHistogram::kExactLimit);      // 4096: the first coarse bucket
  EXPECT_EQ(h.percentile(0), 7u);     // rank clamps to 1: the minimum
  EXPECT_EQ(h.percentile(2500), 7u);  // nearest rank 1 of 4
  EXPECT_EQ(h.percentile(7500), QHistogram::kExactLimit - 1);  // rank 3: exact
  EXPECT_EQ(h.percentile(10000), QHistogram::kExactLimit);  // max's floor
  EXPECT_EQ(h.max(), QHistogram::kExactLimit);              // max stays exact
  EXPECT_THROW(h.percentile(10001), std::invalid_argument);
  // The motivating regression: a per-cent unit slip (9900 * 10) must fail
  // loudly instead of clamping to a plausible-looking p100.
  EXPECT_THROW(h.percentile(99000), std::invalid_argument);
}

TEST(QHistogramTest, MergeIsAssociativeAndMatchesWhole) {
  util::Rng rng(99);
  QHistogram whole, a, b, c;
  for (int i = 0; i < 3000; ++i) {
    // Mix exact-range and coarse-range values.
    const std::uint64_t q =
        (i % 7 == 0) ? 4096 + rng.below(1 << 16) : rng.below(4096);
    whole.record(q);
    (i % 3 == 0 ? a : i % 3 == 1 ? b : c).record(q);
  }
  QHistogram ab_c = a;
  ab_c.merge(b);
  ab_c.merge(c);
  QHistogram a_bc = b;
  a_bc.merge(c);
  a_bc.merge(a);
  EXPECT_EQ(ab_c, a_bc);
  EXPECT_EQ(ab_c, whole);
  EXPECT_EQ(ab_c.percentile(9900), whole.percentile(9900));
}

// --- RequestGen ----------------------------------------------------------

TEST(RequestGenTest, SameSeedSameStreamAndChunkingIsFree) {
  TrafficConfig tc;
  tc.requests = 512;
  tc.dist = KeyDist::kZipf;
  tc.key_space = 256;
  tc.key_stride = 2;
  tc.write_fraction = 0.3;
  tc.scan_fraction = 0.1;
  const RequestGen g1(tc, 42), g2(tc, 42), g3(tc, 43);
  bool any_diff = false;
  for (std::uint64_t i = 0; i < tc.requests; ++i) {
    const Request a = g1.at(i);
    const Request b = g2.at(i);
    EXPECT_EQ(a.op, b.op) << i;
    EXPECT_EQ(a.key, b.key) << i;
    EXPECT_EQ(a.value, b.value) << i;
    EXPECT_EQ(a.scan_len, b.scan_len) << i;
    const Request c = g3.at(i);
    any_diff = any_diff || c.key != a.key || c.op != a.op;
    // Keys honor the stride mapping.
    EXPECT_EQ(a.key % tc.key_stride, 0u);
    EXPECT_LT(a.key, tc.key_space * tc.key_stride);
  }
  EXPECT_TRUE(any_diff) << "different seeds produced identical streams";
  // Out-of-order access is the chunking contract: at(i) never depends on
  // which requests were generated before it.
  EXPECT_EQ(g1.at(17).key, g2.at(17).key);
  const Request tail_first = g1.at(511);
  for (std::uint64_t i = 0; i < 511; ++i) g1.at(i);
  const Request tail_again = g1.at(511);
  EXPECT_EQ(tail_first.key, tail_again.key);
  EXPECT_EQ(tail_first.op, tail_again.op);
}

TEST(RequestGenTest, MixFractionsShowUpInTheStream) {
  TrafficConfig tc;
  tc.requests = 4000;
  tc.dist = KeyDist::kUniform;
  tc.key_space = 128;
  tc.write_fraction = 0.5;
  tc.scan_fraction = 0.25;
  const RequestGen g(tc, 7);
  std::uint64_t gets = 0, puts = 0, scans = 0;
  for (std::uint64_t i = 0; i < tc.requests; ++i) {
    const Request r = g.at(i);
    if (r.op == OpKind::kGet) ++gets;
    if (r.op == OpKind::kPut) ++puts;
    if (r.op == OpKind::kScan) {
      ++scans;
      EXPECT_EQ(r.scan_len, tc.scan_len);
    }
  }
  EXPECT_EQ(gets + puts + scans, tc.requests);
  // Loose 3-sigma-ish bands around the configured mix.
  EXPECT_NEAR(static_cast<double>(puts) / tc.requests, 0.5, 0.05);
  EXPECT_NEAR(static_cast<double>(scans) / tc.requests, 0.25, 0.05);
}

TEST(RequestGenTest, ZipfIsAHotPrefix) {
  TrafficConfig tc;
  tc.requests = 20000;
  tc.dist = KeyDist::kZipf;
  tc.zipf_theta = 0.99;
  tc.key_space = 1000;
  const RequestGen g(tc, 5);
  std::vector<std::uint64_t> count(tc.key_space, 0);
  for (std::uint64_t i = 0; i < tc.requests; ++i) ++count[g.at(i).key];
  // Slot 0 is the mode, and the first 10% of slots carry most of the mass
  // (theta = 0.99 gives the hot 10% roughly 2/3 of the draws).
  std::uint64_t head = 0;
  for (std::size_t s = 0; s < 100; ++s) head += count[s];
  EXPECT_GT(count[0], count[10]);
  EXPECT_GT(count[0], tc.requests / 100);
  EXPECT_GT(head * 2, tc.requests);  // > 50% in the hot prefix
}

TEST(RequestGenTest, HotSetDriftMovesTheWindow) {
  TrafficConfig tc;
  tc.requests = 2000;
  tc.dist = KeyDist::kHotSet;
  tc.key_space = 100;
  tc.hot_fraction = 0.1;  // 10-slot window
  tc.hot_weight = 0.9;
  tc.drift_every = 1000;
  const RequestGen g(tc, 3);
  // Epoch 0: window [0, 10).  Epoch 1: window [10, 20).
  auto in_window = [&](std::uint64_t lo, std::uint64_t i) {
    const std::uint64_t key = g.at(i).key;
    return key >= lo && key < lo + 10;
  };
  std::uint64_t hits0 = 0, hits1 = 0;
  for (std::uint64_t i = 0; i < 1000; ++i) hits0 += in_window(0, i);
  for (std::uint64_t i = 1000; i < 2000; ++i) hits1 += in_window(10, i);
  EXPECT_GT(hits0, 800u);  // 90% hot weight + uniform spillover
  EXPECT_GT(hits1, 800u);
}

TEST(RequestGenTest, ConfigValidationRejectsNonsense) {
  TrafficConfig tc;
  tc.requests = 1;
  tc.key_space = 0;
  EXPECT_THROW(RequestGen(tc, 1), std::invalid_argument);
  tc.key_space = 8;
  tc.zipf_theta = 1.5;
  EXPECT_THROW(RequestGen(tc, 1), std::invalid_argument);
  tc.zipf_theta = 0.99;
  tc.write_fraction = 0.8;
  tc.scan_fraction = 0.3;  // sums past 1
  EXPECT_THROW(RequestGen(tc, 1), std::invalid_argument);
  tc.scan_fraction = 0.0;
  tc.batch_size = 0;
  EXPECT_THROW(RequestGen(tc, 1), std::invalid_argument);
}

// --- TrafficEngine -------------------------------------------------------

/// A small all-inline store at keys {0, 2, ..., 2*(n-1)} on a fresh
/// machine: the generator's slot * 2 mapping hits present keys only.
struct Rig {
  Machine mach;
  KvStore kv;

  explicit Rig(std::size_t n, std::uint64_t omega = 8,
               std::uint64_t seed = 1234)
      : mach(cfg(4096, 16, omega)), kv(mach, StoreConfig{IndexKind::kFence, 8}) {
    util::Rng rng(seed);
    std::vector<Slot> slots;
    for (std::size_t i = 0; i < n; ++i)
      slots.push_back(Slot{2 * i, 1, rng.next()});
    ExtArray<Slot> in(mach, slots.size(), "input.slots");
    in.unsafe_host_fill(std::span<const Slot>(slots));
    ExtArray<std::uint64_t> nopay(mach, 0, "input.payload");
    kv.build(in, nopay);
  }
};

TrafficConfig small_stream(std::uint64_t requests, std::size_t key_space) {
  TrafficConfig tc;
  tc.requests = requests;
  tc.dist = KeyDist::kZipf;
  tc.key_space = key_space;
  tc.key_stride = 2;
  tc.write_fraction = 0.25;
  tc.scan_fraction = 0.05;
  tc.scan_len = 4;
  tc.batch_size = 4;
  return tc;
}

TEST(TrafficEngineTest, ServesTheWholeStreamAndBalancesTheBooks) {
  Rig rig(256);
  EngineConfig ec;
  ec.traffic = small_stream(400, 256);
  TrafficEngine eng(rig.kv, rig.mach, ec, 77);
  const IoStats before = rig.mach.stats();
  const std::uint64_t cost_before = rig.mach.cost();
  eng.run();

  const auto& es = eng.stats();
  EXPECT_EQ(es.generated, 400u);
  EXPECT_EQ(es.served, 400u);
  EXPECT_EQ(es.rejected, 0u);
  EXPECT_EQ(es.gets + es.puts + es.scans, es.served);
  EXPECT_GT(es.gets, 0u);
  EXPECT_GT(es.puts, 0u);
  EXPECT_EQ(eng.histogram().total(), es.served);
  EXPECT_EQ(es.windows, 1u);  // window_requests = 0: one window
  // The engine's deltas are the machine's deltas.
  EXPECT_EQ(es.io.reads, rig.mach.stats().reads - before.reads);
  EXPECT_EQ(es.io.writes, rig.mach.stats().writes - before.writes);
  EXPECT_EQ(es.cost, rig.mach.cost() - cost_before);
  EXPECT_GT(es.cost, 0u);
  // Every stream key is present, so gets hit and puts update.
  EXPECT_EQ(es.get_hits, es.gets);
  EXPECT_EQ(es.put_hits, es.puts);
  // Percentiles are monotone and the mean sits between p50 and max.
  const TrafficMetrics tm = eng.metrics_section();
  EXPECT_LE(tm.q_p50, tm.q_p99);
  EXPECT_LE(tm.q_p99, tm.q_p999);
  EXPECT_LE(tm.q_p999, tm.q_max);
  EXPECT_TRUE(tm.enabled);
  EXPECT_EQ(tm.dist, "zipf");
  // One-shot contract.
  EXPECT_THROW(eng.run(), std::logic_error);
}

TEST(TrafficEngineTest, AdmissionControlRejectsWithoutCharging) {
  Rig open_rig(128), gated_rig(128);
  EngineConfig open_ec;
  open_ec.traffic = small_stream(256, 128);
  TrafficEngine open_eng(open_rig.kv, open_rig.mach, open_ec, 55);
  open_eng.run();

  EngineConfig gated_ec = open_ec;
  gated_ec.q_budget = 8;
  gated_ec.window_requests = 64;
  TrafficEngine gated(gated_rig.kv, gated_rig.mach, gated_ec, 55);
  gated.run();

  const auto& es = gated.stats();
  EXPECT_EQ(es.served + es.rejected, es.generated);
  EXPECT_GT(es.rejected, 0u);
  EXPECT_GT(es.served, 0u);  // every window serves until its budget is spent
  EXPECT_EQ(es.windows, 4u);
  EXPECT_LT(es.cost, open_eng.stats().cost);
  EXPECT_GT(gated.rejection_rate(), 0.0);
  EXPECT_LT(gated.rejection_rate(), 1.0);
  // Rejected batches must not show up in the histogram.
  EXPECT_EQ(gated.histogram().total(), es.served);
}

TEST(TrafficEngineTest, ZeroBudgetStillAdvancesAndRejectsEverything) {
  Rig rig(64);
  EngineConfig ec;
  ec.traffic = small_stream(128, 64);
  ec.q_budget = 1;           // spent after the first nonzero-Q batch
  ec.window_requests = 128;  // a single window
  TrafficEngine eng(rig.kv, rig.mach, ec, 9);
  eng.run();
  const auto& es = eng.stats();
  EXPECT_EQ(es.served + es.rejected, es.generated);
  EXPECT_GT(es.rejected, 0u);
}

TEST(TrafficEngineTest, IdleEngineChargesNothing) {
  Rig rig(64);
  const IoStats before = rig.mach.stats();
  const std::uint64_t cost_before = rig.mach.cost();
  EngineConfig ec;
  ec.traffic.requests = 0;
  ec.traffic.key_space = 64;
  ec.traffic.key_stride = 2;
  TrafficEngine eng(rig.kv, rig.mach, ec, 1);
  eng.run();
  EXPECT_EQ(rig.mach.stats().reads, before.reads);
  EXPECT_EQ(rig.mach.stats().writes, before.writes);
  EXPECT_EQ(rig.mach.cost(), cost_before);
  EXPECT_EQ(eng.stats().cost, 0u);
  EXPECT_EQ(eng.histogram().total(), 0u);
  EXPECT_EQ(eng.throughput_mille(), 0u);
  EXPECT_DOUBLE_EQ(eng.rejection_rate(), 0.0);
}

TEST(TrafficEngineTest, BooksBalanceOnAFaultyDevice) {
  Machine mach(cfg(4096, 16, 8));
  FaultConfig fc;
  fc.seed = 17;
  fc.read_fault_rate = 0.02;
  fc.silent_write_rate = 0.01;
  fc.torn_write_rate = 0.01;
  fc.max_retries = 16;
  // from_env lets CI crank the schedule (AEM_FAULT_RATE / AEM_FAULT_SEED,
  // see scripts/ci_sanitize.sh) while this base config keeps the test
  // fault-active in a plain run.
  mach.install_faults(FaultConfig::from_env(fc));
  util::Rng rng(1234);
  std::vector<Slot> slots;
  for (std::size_t i = 0; i < 128; ++i)
    slots.push_back(Slot{2 * i, 1, rng.next()});
  ExtArray<Slot> in(mach, slots.size(), "input.slots");
  in.unsafe_host_fill(std::span<const Slot>(slots));
  ExtArray<std::uint64_t> nopay(mach, 0, "input.payload");
  KvStore kv(mach, StoreConfig{IndexKind::kFence, 8});
  kv.build(in, nopay);

  EngineConfig ec;
  ec.traffic = small_stream(256, 128);
  const IoStats before = mach.stats();
  const std::uint64_t cost_before = mach.cost();
  TrafficEngine eng(kv, mach, ec, 31);
  eng.run();

  // Recovery retries ran and every extra I/O still lands in the engine's
  // deltas: the books balance on a faulty device too.
  EXPECT_GT(mach.faults()->stats().read_retries +
                mach.faults()->stats().write_retries,
            0u);
  const auto& es = eng.stats();
  EXPECT_EQ(es.served + es.rejected, es.generated);
  EXPECT_EQ(es.rejected, 0u);
  EXPECT_EQ(eng.histogram().total(), es.served);
  EXPECT_EQ(es.io.reads, mach.stats().reads - before.reads);
  EXPECT_EQ(es.io.writes, mach.stats().writes - before.writes);
  EXPECT_EQ(es.cost, mach.cost() - cost_before);
  EXPECT_EQ(es.get_hits, es.gets);
  EXPECT_EQ(es.put_hits, es.puts);
}

TEST(TrafficEngineTest, ShardedFrontendCountersArePlacementInvariant) {
  auto serve = [](Placement p) {
    ShardConfig sc;
    sc.frontend = cfg(4096, 16, 8);
    sc.devices.assign(4, cfg(4096, 16, 8));
    sc.placement = p;
    sc.range_chunk_blocks = 4;
    ShardedMachine mach(sc);
    KvStore kv(mach, StoreConfig{IndexKind::kFence, 8});
    util::Rng rng(4321);
    std::vector<Slot> slots;
    for (std::size_t i = 0; i < 256; ++i)
      slots.push_back(Slot{2 * i, 1, rng.next()});
    ExtArray<Slot> in(mach, slots.size(), "input.slots");
    in.unsafe_host_fill(std::span<const Slot>(slots));
    ExtArray<std::uint64_t> nopay(mach, 0, "input.payload");
    kv.build(in, nopay);

    EngineConfig ec;
    ec.traffic = small_stream(300, 256);
    TrafficEngine eng(kv, mach, ec, 66);
    eng.run();
    return std::pair<traffic::EngineStats, QHistogram>(eng.stats(),
                                                       eng.histogram());
  };
  const auto [rr_stats, rr_hist] = serve(Placement::kRoundRobin);
  const auto [rg_stats, rg_hist] = serve(Placement::kRange);
  EXPECT_EQ(rr_stats, rg_stats);
  EXPECT_EQ(rr_hist, rg_hist);
}

TEST(TrafficEngineTest, SweepRowsAreByteIdenticalForAnyJobs) {
  auto sweep = [](std::size_t jobs) {
    harness::SweepConfig sc;
    sc.jobs = jobs;
    sc.base_seed = 21;
    return harness::run_sweep(6, sc, [](harness::PointContext& ctx) {
      Rig rig(128, /*omega=*/8, /*seed=*/900 + ctx.index());
      EngineConfig ec;
      ec.traffic = small_stream(200, 128);
      ec.q_budget = ctx.index() % 2 == 0 ? 0 : 32;
      ec.window_requests = 50;
      TrafficEngine eng(rig.kv, rig.mach, ec, ctx.seed());
      eng.run();
      const TrafficMetrics tm = eng.metrics_section();
      ctx.row({std::to_string(eng.stats().served),
               std::to_string(eng.stats().rejected),
               std::to_string(eng.stats().cost), std::to_string(tm.q_p50),
               std::to_string(tm.q_p99), std::to_string(tm.q_p999),
               std::to_string(tm.q_max)});
    });
  };
  const auto r1 = sweep(1);
  for (const std::size_t jobs : {4ul, 16ul}) {
    const auto rn = sweep(jobs);
    ASSERT_EQ(rn.size(), r1.size()) << "jobs=" << jobs;
    for (std::size_t i = 0; i < r1.size(); ++i)
      EXPECT_EQ(rn[i].rows, r1[i].rows) << "jobs=" << jobs << " point=" << i;
  }
}

}  // namespace
