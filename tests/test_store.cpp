// Tests for store/: the Elias–Fano sequence coder and the external-memory
// KV object store — round-trips against host mirrors for both index
// flavors, duplicate (upsert) semantics, spilled payloads, scan ranges,
// charged-cost and ledger discipline, cache interaction, fault-injection
// round-trips, and facade invariance on a sharded machine.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <numeric>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "core/ext_array.hpp"
#include "core/faults.hpp"
#include "core/machine.hpp"
#include "core/metrics.hpp"
#include "core/sharding.hpp"
#include "store/elias_fano.hpp"
#include "store/kv_store.hpp"
#include "util/rng.hpp"

namespace {

using namespace aem;
using store::EliasFano;
using store::IndexKind;
using store::KvStore;
using store::Slot;
using store::StoreConfig;

Config cfg(std::size_t M, std::size_t B, std::uint64_t w) {
  Config c;
  c.memory_elems = M;
  c.block_elems = B;
  c.write_cost = w;
  return c;
}

// --- Elias–Fano ----------------------------------------------------------

std::vector<std::uint64_t> monotone_values(std::size_t n, unsigned bits,
                                           std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<std::uint64_t> v(n);
  const std::uint64_t mask =
      bits >= 64 ? ~0ull : ((1ull << bits) - 1);
  for (auto& x : v) x = rng.next() & mask;
  std::sort(v.begin(), v.end());
  return v;
}

TEST(EliasFanoTest, AccessRoundTrips) {
  for (unsigned bits : {1u, 7u, 16u, 40u, 64u}) {
    const auto v = monotone_values(257, bits, 11 + bits);
    EliasFano ef(v, bits);
    ASSERT_EQ(ef.size(), v.size());
    for (std::size_t i = 0; i < v.size(); ++i)
      EXPECT_EQ(ef.access(i), v[i]) << "bits=" << bits << " i=" << i;
  }
}

TEST(EliasFanoTest, PredecessorMatchesReference) {
  const unsigned bits = 20;
  const auto v = monotone_values(300, bits, 42);
  EliasFano ef(v, bits);
  util::Rng rng(7);
  auto reference = [&](std::uint64_t q) -> std::size_t {
    auto it = std::upper_bound(v.begin(), v.end(), q);
    if (it == v.begin()) return EliasFano::npos;
    return static_cast<std::size_t>(it - v.begin()) - 1;
  };
  for (int t = 0; t < 2000; ++t) {
    const std::uint64_t q = rng.next() & ((1ull << bits) - 1);
    EXPECT_EQ(ef.predecessor(q), reference(q)) << "q=" << q;
  }
  // Exact values and off-by-ones.
  for (std::size_t i = 0; i < v.size(); i += 13) {
    EXPECT_EQ(ef.access(ef.predecessor(v[i])), v[i]);
    if (v[i] > 0) {
      EXPECT_EQ(ef.predecessor(v[i] - 1), reference(v[i] - 1));
    }
  }
}

TEST(EliasFanoTest, EmptyAndSingle) {
  EliasFano empty(std::vector<std::uint64_t>{}, 16);
  EXPECT_EQ(empty.size(), 0u);
  EXPECT_EQ(empty.bits(), 0u);
  EXPECT_EQ(empty.predecessor(123), EliasFano::npos);

  EliasFano one(std::vector<std::uint64_t>{9}, 16);
  EXPECT_EQ(one.access(0), 9u);
  EXPECT_EQ(one.predecessor(8), EliasFano::npos);
  EXPECT_EQ(one.predecessor(9), 0u);
  EXPECT_EQ(one.predecessor(1000), 0u);
}

TEST(EliasFanoTest, DuplicateValuesAreKeptAndPredecessorReturnsLast) {
  const std::vector<std::uint64_t> v = {3, 3, 3, 7, 7, 20};
  EliasFano ef(v, 8);
  for (std::size_t i = 0; i < v.size(); ++i) EXPECT_EQ(ef.access(i), v[i]);
  EXPECT_EQ(ef.predecessor(3), 2u);
  EXPECT_EQ(ef.predecessor(7), 4u);
  EXPECT_EQ(ef.predecessor(19), 4u);
  EXPECT_EQ(ef.predecessor(20), 5u);
}

TEST(EliasFanoTest, RejectsBadInput) {
  EXPECT_THROW(EliasFano({2, 1}, 8), std::invalid_argument);
  EXPECT_THROW(EliasFano({255, 256}, 8), std::invalid_argument);
  EXPECT_THROW(EliasFano({0}, 0), std::invalid_argument);
  EXPECT_THROW(EliasFano({0}, 65), std::invalid_argument);
}

TEST(EliasFanoTest, CompressesToFewBitsPerValue) {
  // Universe 2^(log2 n + 8): the coder should land near 2 + 8 bits/value,
  // far below the 64 of an explicit array.
  const std::size_t n = 1024;
  const unsigned bits = 10 + 8;
  const auto v = monotone_values(n, bits, 3);
  EliasFano ef(v, bits);
  EXPECT_LE(ef.bits(), (2 + 8 + 1) * n);
  EXPECT_LT(ef.bits(), 64 * n / 4);
}

// --- KV store ------------------------------------------------------------

struct Dataset {
  std::vector<Slot> slots;             // input order (insertion order)
  std::vector<std::uint64_t> payload;  // words spilled slots point into
  // Reference: key -> value of the LAST record with that key (upsert).
  std::map<std::uint64_t, std::vector<std::uint64_t>> latest;
};

/// Random records: ~10% empty values, ~55% inline, rest spilled at
/// 2..max_spill words; ~20% duplicate an earlier key.  Keys are even so
/// key|1 is a guaranteed miss.
Dataset make_dataset(std::size_t n, std::uint64_t seed,
                     std::size_t max_spill = 40) {
  util::Rng rng(seed);
  Dataset d;
  d.slots.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::uint64_t key;
    if (i > 0 && rng.below(5) == 0) {
      key = d.slots[rng.below(i)].key;  // duplicate
    } else {
      key = rng.next() & ~1ull;
    }
    const std::uint64_t kind = rng.below(100);
    Slot s;
    s.key = key;
    std::vector<std::uint64_t> value;
    if (kind < 10) {
      s.len = 0;
      s.pos = 0;
    } else if (kind < 65) {
      s.len = 1;
      s.pos = rng.next();
      value.push_back(s.pos);
    } else {
      s.len = 2 + rng.below(max_spill - 1);
      s.pos = d.payload.size();
      for (std::uint64_t w = 0; w < s.len; ++w) {
        const std::uint64_t word = rng.next();
        d.payload.push_back(word);
        value.push_back(word);
      }
    }
    d.latest[key] = value;
    d.slots.push_back(s);
  }
  return d;
}

/// Stages a dataset into machine-owned input arrays (uncharged: inputs in
/// external memory are the problem statement).
std::pair<ExtArray<Slot>, ExtArray<std::uint64_t>> stage(Machine& mach,
                                                         const Dataset& d) {
  ExtArray<Slot> slots(mach, d.slots.size(), "input.slots");
  slots.unsafe_host_fill(std::span<const Slot>(d.slots));
  ExtArray<std::uint64_t> payload(mach, d.payload.size(), "input.payload");
  payload.unsafe_host_fill(std::span<const std::uint64_t>(d.payload));
  return {std::move(slots), std::move(payload)};
}

/// All records with lo <= key <= hi in key order, duplicates in input
/// order — what scan() must visit.
std::vector<std::pair<std::uint64_t, std::vector<std::uint64_t>>>
expected_range(const Dataset& d, std::uint64_t lo, std::uint64_t hi) {
  std::vector<std::size_t> idx(d.slots.size());
  std::iota(idx.begin(), idx.end(), 0);
  std::stable_sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) {
    return d.slots[a].key < d.slots[b].key;
  });
  std::vector<std::pair<std::uint64_t, std::vector<std::uint64_t>>> out;
  for (std::size_t i : idx) {
    const Slot& s = d.slots[i];
    if (s.key < lo || s.key > hi) continue;
    std::vector<std::uint64_t> value;
    if (s.len == 1) {
      value.push_back(s.pos);
    } else if (s.len >= 2) {
      for (std::uint64_t w = 0; w < s.len; ++w)
        value.push_back(d.payload[s.pos + w]);
    }
    out.emplace_back(s.key, std::move(value));
  }
  return out;
}

void round_trip(IndexKind kind, std::size_t n, std::uint64_t seed) {
  Machine mach(cfg(4096, 16, 8));
  const Dataset d = make_dataset(n, seed);
  auto [slots, payload] = stage(mach, d);
  KvStore kv(mach, StoreConfig{kind, 8});
  kv.build(slots, payload);
  EXPECT_EQ(kv.records(), n);

  // Every latest-version key is found with its latest value.
  for (const auto& [key, value] : d.latest) {
    const auto got = kv.get(key);
    ASSERT_TRUE(got.has_value()) << to_string(kind) << " key=" << key;
    EXPECT_EQ(*got, value) << to_string(kind) << " key=" << key;
  }
  // Odd keys were never inserted.
  util::Rng rng(seed ^ 0x9e3779b97f4a7c15ull);
  for (int t = 0; t < 64; ++t)
    EXPECT_FALSE(kv.get(rng.next() | 1).has_value());

  const auto& st = kv.stats();
  EXPECT_EQ(st.gets, d.latest.size() + 64);
  EXPECT_EQ(st.get_hits, d.latest.size());

  // Scans: full range and a few random windows.
  auto check_scan = [&](std::uint64_t lo, std::uint64_t hi) {
    std::vector<std::pair<std::uint64_t, std::vector<std::uint64_t>>> seen;
    kv.scan(lo, hi, [&](std::uint64_t key,
                        std::span<const std::uint64_t> value) {
      seen.emplace_back(key,
                        std::vector<std::uint64_t>(value.begin(), value.end()));
    });
    EXPECT_EQ(seen, expected_range(d, lo, hi))
        << to_string(kind) << " scan [" << lo << ", " << hi << "]";
  };
  check_scan(0, ~0ull);
  for (int t = 0; t < 8; ++t) {
    std::uint64_t lo = rng.next(), hi = rng.next();
    if (lo > hi) std::swap(lo, hi);
    check_scan(lo, hi);
  }
}

TEST(KvStoreTest, FenceRoundTrip) { round_trip(IndexKind::kFence, 600, 1); }
TEST(KvStoreTest, CompactRoundTrip) {
  round_trip(IndexKind::kCompact, 600, 2);
}
TEST(KvStoreTest, FenceRoundTripLarger) {
  round_trip(IndexKind::kFence, 2000, 3);
}
TEST(KvStoreTest, CompactRoundTripLarger) {
  round_trip(IndexKind::kCompact, 2000, 4);
}

TEST(KvStoreTest, EmptyAndSingleRecord) {
  for (IndexKind kind : {IndexKind::kFence, IndexKind::kCompact}) {
    Machine mach(cfg(4096, 16, 4));
    ExtArray<Slot> none(mach, 0, "input.slots");
    ExtArray<std::uint64_t> nopay(mach, 0, "input.payload");
    KvStore empty(mach, StoreConfig{kind, 8});
    empty.build(none, nopay);
    EXPECT_FALSE(empty.get(7).has_value());
    EXPECT_EQ(empty.scan(0, ~0ull, [](auto, auto) {}), 0u);

    ExtArray<Slot> one(mach, 1, "input.one");
    const Slot s{42, 1, 777};
    one.unsafe_host_fill(std::span<const Slot>(&s, 1));
    KvStore single(mach, StoreConfig{kind, 8});
    single.build(one, nopay);
    ASSERT_TRUE(single.get(42).has_value());
    EXPECT_EQ(*single.get(42), std::vector<std::uint64_t>{777});
    EXPECT_FALSE(single.get(41).has_value());
    EXPECT_FALSE(single.get(43).has_value());
  }
}

TEST(KvStoreTest, EmptyStoreGetChargesNothingAndInvertedScanIsFree) {
  for (IndexKind kind : {IndexKind::kFence, IndexKind::kCompact}) {
    Machine mach(cfg(4096, 16, 4));
    ExtArray<Slot> none(mach, 0, "input.slots");
    ExtArray<std::uint64_t> nopay(mach, 0, "input.payload");
    KvStore kv(mach, StoreConfig{kind, 8});
    kv.build(none, nopay);

    const IoStats before = mach.stats();
    EXPECT_FALSE(kv.get(0).has_value());
    EXPECT_FALSE(kv.get(~0ull).has_value());
    // An empty store has no page that could hold any key: the miss must be
    // decided from the (resident) index alone, with zero charged I/O.
    EXPECT_EQ(mach.stats(), before);

    // lo > hi is an empty range, not an error — and also free.
    std::size_t visited = 0;
    EXPECT_EQ(kv.scan(10, 5, [&](auto, auto) { ++visited; }), 0u);
    EXPECT_EQ(visited, 0u);
    EXPECT_EQ(mach.stats(), before);
  }
}

TEST(KvStoreTest, InvertedScanRangeVisitsNothingOnPopulatedStore) {
  Machine mach(cfg(4096, 16, 4));
  const std::vector<Slot> slots = {Slot{10, 1, 1}, Slot{20, 1, 2},
                                   Slot{30, 1, 3}};
  ExtArray<Slot> in(mach, slots.size(), "input.slots");
  in.unsafe_host_fill(std::span<const Slot>(slots));
  ExtArray<std::uint64_t> nopay(mach, 0, "input.payload");
  for (IndexKind kind : {IndexKind::kFence, IndexKind::kCompact}) {
    KvStore kv(mach, StoreConfig{kind, 8});
    kv.build(in, nopay);
    std::size_t visited = 0;
    EXPECT_EQ(kv.scan(25, 15, [&](auto, auto) { ++visited; }), 0u);
    EXPECT_EQ(visited, 0u);
    // Degenerate single-point ranges still work on either side.
    EXPECT_EQ(kv.scan(20, 20, [&](auto, auto) { ++visited; }), 1u);
    EXPECT_EQ(visited, 1u);
  }
}

// Regression: get/scan at exactly the minimum key must not underflow the
// locate_page(lo - 1) probe — including when the minimum key is 0, where
// lo - 1 would wrap to 2^64 - 1 and "find" the last page.
TEST(KvStoreTest, MinimumKeyBoundaryHasNoUnderflow) {
  for (const std::uint64_t min_key : {0ull, 5ull}) {
    const std::vector<Slot> slots = {Slot{min_key, 1, 100},
                                     Slot{min_key + 7, 1, 101},
                                     Slot{min_key + 9, 1, 102}};
    for (IndexKind kind : {IndexKind::kFence, IndexKind::kCompact}) {
      Machine mach(cfg(4096, 16, 4));
      ExtArray<Slot> in(mach, slots.size(), "input.slots");
      in.unsafe_host_fill(std::span<const Slot>(slots));
      ExtArray<std::uint64_t> nopay(mach, 0, "input.payload");
      KvStore kv(mach, StoreConfig{kind, 8});
      kv.build(in, nopay);

      ASSERT_TRUE(kv.get(min_key).has_value()) << "min_key=" << min_key;
      EXPECT_EQ(*kv.get(min_key), std::vector<std::uint64_t>{100});
      std::vector<std::uint64_t> seen;
      kv.scan(min_key, min_key + 9,
              [&](std::uint64_t, std::span<const std::uint64_t> v) {
                seen.push_back(v[0]);
              });
      EXPECT_EQ(seen, (std::vector<std::uint64_t>{100, 101, 102}));
      // A scan FROM the minimum key (lo - 1 < every key) starts at page 0.
      seen.clear();
      kv.scan(min_key, min_key, [&](std::uint64_t,
                                    std::span<const std::uint64_t> v) {
        seen.push_back(v[0]);
      });
      EXPECT_EQ(seen, std::vector<std::uint64_t>{100});
    }
  }
}

TEST(KvStoreTest, DuplicateKeysLastInsertWins) {
  Machine mach(cfg(4096, 16, 4));
  // 100 versions of the same key interleaved with filler, then a final one.
  std::vector<Slot> slots;
  for (std::uint64_t i = 0; i < 100; ++i) {
    slots.push_back(Slot{1000, 1, i});      // version i of key 1000
    slots.push_back(Slot{2 * i, 1, i * 3});  // filler
  }
  ExtArray<Slot> in(mach, slots.size(), "input.slots");
  in.unsafe_host_fill(std::span<const Slot>(slots));
  ExtArray<std::uint64_t> nopay(mach, 0, "input.payload");
  for (IndexKind kind : {IndexKind::kFence, IndexKind::kCompact}) {
    KvStore kv(mach, StoreConfig{kind, 8});
    kv.build(in, nopay);
    ASSERT_TRUE(kv.get(1000).has_value());
    EXPECT_EQ(*kv.get(1000), std::vector<std::uint64_t>{99});
    // A scan still visits every version, oldest first.
    std::vector<std::uint64_t> versions;
    kv.scan(1000, 1000, [&](std::uint64_t, std::span<const std::uint64_t> v) {
      versions.push_back(v[0]);
    });
    ASSERT_EQ(versions.size(), 100u);
    for (std::uint64_t i = 0; i < 100; ++i) EXPECT_EQ(versions[i], i);
  }
}

TEST(KvStoreTest, EmptyValueIsPresentButEmpty) {
  Machine mach(cfg(4096, 16, 4));
  const std::vector<Slot> slots = {Slot{10, 0, 0}, Slot{20, 1, 5}};
  ExtArray<Slot> in(mach, slots.size(), "input.slots");
  in.unsafe_host_fill(std::span<const Slot>(slots));
  ExtArray<std::uint64_t> nopay(mach, 0, "input.payload");
  KvStore kv(mach);
  kv.build(in, nopay);
  const auto got = kv.get(10);
  ASSERT_TRUE(got.has_value());
  EXPECT_TRUE(got->empty());
}

TEST(KvStoreTest, FenceGetIsOneLogReadAndChargedAccordingly) {
  // All-inline store, no cache: a fence get is exactly one charged log
  // read (plus zero payload reads), the figure MODEL.md section 14 claims.
  Machine mach(cfg(4096, 16, 8));
  const Dataset d = make_dataset(512, 5, /*max_spill=*/2);
  std::vector<Slot> inline_slots = d.slots;
  for (Slot& s : inline_slots)
    if (s.len >= 2) {
      s.len = 1;
      s.pos = 123;
    }
  ExtArray<Slot> in(mach, inline_slots.size(), "input.slots");
  in.unsafe_host_fill(std::span<const Slot>(inline_slots));
  ExtArray<std::uint64_t> nopay(mach, 0, "input.payload");
  KvStore kv(mach, StoreConfig{IndexKind::kFence, 8});
  kv.build(in, nopay);

  util::Rng rng(17);
  for (int t = 0; t < 128; ++t) {
    const std::uint64_t key = inline_slots[rng.below(inline_slots.size())].key;
    const IoStats before = mach.stats();
    ASSERT_TRUE(kv.get(key).has_value());
    const IoStats after = mach.stats();
    EXPECT_LE(after.reads - before.reads, 1u);
    EXPECT_EQ(after.writes, before.writes);
  }
  EXPECT_EQ(kv.stats().max_get_log_reads, 1u);
}

TEST(KvStoreTest, CompactIndexIsSmallerAtBoundedExtraReads) {
  Machine mach(cfg(4096, 16, 8));
  const Dataset d = make_dataset(2000, 6);
  auto [slots, payload] = stage(mach, d);
  KvStore fence(mach, StoreConfig{IndexKind::kFence, 8});
  fence.build(slots, payload);
  KvStore compact(mach, StoreConfig{IndexKind::kCompact, 8});
  compact.build(slots, payload);

  // Strictly fewer index bits...
  EXPECT_LT(compact.index_bits(), fence.index_bits());
  EXPECT_EQ(fence.index_bits(), fence.log_blocks() * 64u);

  // ...at a query cost that stays within the fence index's bound plus the
  // (rare) quantization-collision walk.
  util::Rng rng(23);
  for (int t = 0; t < 256; ++t) {
    const std::uint64_t key = d.slots[rng.below(d.slots.size())].key;
    ASSERT_TRUE(compact.get(key).has_value());
    ASSERT_TRUE(fence.get(key).has_value());
  }
  EXPECT_EQ(fence.stats().max_get_log_reads, 1u);
  EXPECT_LE(compact.stats().max_get_log_reads, 2u);
  // On average the compact index is still ~1 read per get.
  EXPECT_LE(compact.stats().get_log_reads,
            compact.stats().gets + compact.stats().gets / 4);
}

TEST(KvStoreTest, IndexIsChargedToLedgerAndReleasedOnDestruction) {
  Machine mach(cfg(4096, 16, 8));
  const Dataset d = make_dataset(1500, 7);
  const std::size_t baseline = mach.ledger().used();
  {
    auto [slots, payload] = stage(mach, d);
    KvStore fence(mach, StoreConfig{IndexKind::kFence, 8});
    fence.build(slots, payload);
    // The padded Eytzinger fence layout is resident for the store's
    // lifetime: at least one word per log page, under 2n + 1.
    EXPECT_EQ(mach.ledger().used(), baseline + fence.index_resident_words());
    EXPECT_GE(fence.index_resident_words(), fence.log_blocks());
    EXPECT_LT(fence.index_resident_words(), 2 * fence.log_blocks() + 2);

    KvStore compact(mach, StoreConfig{IndexKind::kCompact, 8});
    compact.build(slots, payload);
    EXPECT_EQ(mach.ledger().used(), baseline + fence.index_resident_words() +
                                        compact.index_resident_words());
    // The compact structure occupies fewer words than one fence per page.
    EXPECT_LT(compact.index_resident_words(), fence.log_blocks());
  }
  EXPECT_EQ(mach.ledger().used(), baseline);
  EXPECT_FALSE(mach.ledger_poisoned());
}

TEST(KvStoreTest, BuildFlushesCacheBeforeReportingCost) {
  Config c = cfg(4096, 16, 8);
  c.cache.capacity_blocks = 32;
  Machine mach(c);
  const Dataset d = make_dataset(800, 8);
  auto [slots, payload] = stage(mach, d);
  KvStore kv(mach, StoreConfig{IndexKind::kFence, 8});
  kv.build(slots, payload);
  // flush_cache() semantics hold before any cost read: nothing dirty is
  // hiding deferred construction writes from build_cost().
  EXPECT_EQ(mach.cache()->resident_dirty(), 0u);
  EXPECT_GT(kv.build_writes(), 0u);
  EXPECT_GE(kv.build_cost(),
            kv.build_reads() + mach.omega() * kv.build_writes());
}

TEST(KvStoreTest, CacheMakesRepeatGetsFree) {
  Config c = cfg(4096, 16, 8);
  c.cache.capacity_blocks = 64;
  Machine mach(c);
  const Dataset d = make_dataset(400, 9);
  auto [slots, payload] = stage(mach, d);
  KvStore kv(mach, StoreConfig{IndexKind::kFence, 8});
  kv.build(slots, payload);
  const std::uint64_t key = d.latest.begin()->first;
  const auto first = kv.get(key);
  const IoStats before = mach.stats();
  const auto second = kv.get(key);
  const IoStats after = mach.stats();
  EXPECT_EQ(first, second);
  // The page (and any payload blocks) are resident now: zero charged I/O.
  EXPECT_EQ(after.reads, before.reads);
  EXPECT_EQ(after.writes, before.writes);
}

TEST(KvStoreTest, MetricsSectionReflectsStoreState) {
  Machine mach(cfg(4096, 16, 8));
  const Dataset d = make_dataset(300, 10);
  auto [slots, payload] = stage(mach, d);
  KvStore kv(mach, StoreConfig{IndexKind::kCompact, 8});
  kv.build(slots, payload);
  kv.get(d.latest.begin()->first);
  kv.scan(0, ~0ull, [](auto, auto) {});

  MetricsSnapshot snap = snapshot_metrics(mach, "store-case");
  EXPECT_FALSE(snap.store.enabled);  // the machine knows nothing of stores
  snap.store = kv.metrics_section();
  EXPECT_TRUE(snap.store.enabled);
  EXPECT_EQ(snap.store.index, "compact");
  EXPECT_EQ(snap.store.records, kv.records());
  EXPECT_EQ(snap.store.log_blocks, kv.log_blocks());
  EXPECT_EQ(snap.store.index_bits, kv.index_bits());
  EXPECT_EQ(snap.store.gets, 1u);
  EXPECT_EQ(snap.store.scans, 1u);
  EXPECT_EQ(snap.store.scan_records, kv.records());
  const std::string j = to_json(snap);
  EXPECT_NE(j.find("\"schema\":\"aem.machine.metrics/v8\""),
            std::string::npos);
  EXPECT_NE(j.find("\"store\":{\"enabled\":true,\"index\":\"compact\""),
            std::string::npos);
}

TEST(KvStoreTest, RebuildAndUnbuiltUseThrow) {
  Machine mach(cfg(4096, 16, 4));
  KvStore kv(mach);
  EXPECT_THROW(kv.get(1), std::logic_error);
  EXPECT_THROW(kv.scan(0, 1, [](auto, auto) {}), std::logic_error);
  ExtArray<Slot> none(mach, 0, "input.slots");
  ExtArray<std::uint64_t> nopay(mach, 0, "input.payload");
  kv.build(none, nopay);
  EXPECT_THROW(kv.build(none, nopay), std::logic_error);
}

TEST(KvStoreFaultTest, RoundTripsOnAFaultyDevice) {
  Machine mach(cfg(4096, 16, 8));
  FaultConfig fc;
  fc.seed = 99;
  fc.read_fault_rate = 0.02;
  fc.silent_write_rate = 0.01;
  fc.torn_write_rate = 0.01;
  fc.max_retries = 16;
  // from_env lets CI crank the schedule (AEM_FAULT_RATE / AEM_FAULT_SEED,
  // see scripts/ci_sanitize.sh) while this base config keeps the test
  // fault-active in a plain run.
  mach.install_faults(FaultConfig::from_env(fc));

  const Dataset d = make_dataset(500, 11);
  auto [slots, payload] = stage(mach, d);
  KvStore kv(mach, StoreConfig{IndexKind::kCompact, 8});
  kv.build(slots, payload);
  for (const auto& [key, value] : d.latest) {
    const auto got = kv.get(key);
    ASSERT_TRUE(got.has_value()) << "key=" << key;
    EXPECT_EQ(*got, value);
  }
  // Recovery work actually happened and was charged.
  EXPECT_GT(mach.faults()->stats().read_retries +
                mach.faults()->stats().write_retries,
            0u);
}

TEST(KvStoreShardTest, FacadeInvariantAcrossPlainAndShardedMachines) {
  const Dataset d = make_dataset(700, 12);

  Machine plain(cfg(4096, 16, 8));
  auto [ps, pp] = stage(plain, d);
  KvStore pkv(plain, StoreConfig{IndexKind::kFence, 8});
  pkv.build(ps, pp);

  ShardConfig sc;
  sc.frontend = cfg(4096, 16, 8);
  for (int i = 0; i < 4; ++i) sc.devices.push_back(cfg(4096, 16, 8));
  sc.placement = Placement::kRoundRobin;
  ShardedMachine sharded(sc);
  auto [ss, sp] = stage(sharded, d);
  KvStore skv(sharded, StoreConfig{IndexKind::kFence, 8});
  skv.build(ss, sp);

  // Facade invariance: identical frontend counters and store figures.
  EXPECT_EQ(pkv.build_reads(), skv.build_reads());
  EXPECT_EQ(pkv.build_writes(), skv.build_writes());
  EXPECT_EQ(pkv.build_cost(), skv.build_cost());

  util::Rng rng(13);
  for (int t = 0; t < 100; ++t) {
    const std::uint64_t key = d.slots[rng.below(d.slots.size())].key;
    EXPECT_EQ(pkv.get(key), skv.get(key));
  }
  EXPECT_EQ(plain.stats().reads, sharded.stats().reads);
  EXPECT_EQ(plain.stats().writes, sharded.stats().writes);
  EXPECT_EQ(pkv.stats(), skv.stats());

  // Device conservation: native transfers sum to the frontend counts
  // (equal geometry: amplification 1).
  EXPECT_EQ(sharded.devices_stats().reads, sharded.stats().reads);
  EXPECT_EQ(sharded.devices_stats().writes, sharded.stats().writes);
}

// --- put_inline (the serving write path) ---------------------------------

TEST(KvStorePutTest, PutInlineChargesOneReadModifyWrite) {
  // All-inline store, cache 0: an in-place put is exactly one log read plus
  // one log write, Q = 1 + omega.
  const std::uint64_t omega = 8;
  Machine mach(cfg(4096, 16, omega));
  util::Rng rng(51);
  std::vector<Slot> slots;
  for (std::size_t i = 0; i < 300; ++i)
    slots.push_back(Slot{2 * i, 1, rng.next()});
  ExtArray<Slot> in(mach, slots.size(), "input.slots");
  in.unsafe_host_fill(std::span<const Slot>(slots));
  ExtArray<std::uint64_t> nopay(mach, 0, "input.payload");
  KvStore kv(mach, StoreConfig{IndexKind::kFence, 8});
  kv.build(in, nopay);

  const IoStats before = mach.stats();
  const std::uint64_t cost_before = mach.cost();
  EXPECT_TRUE(kv.put_inline(100, 0xdecaf));
  EXPECT_EQ(mach.stats().reads - before.reads, 1u);
  EXPECT_EQ(mach.stats().writes - before.writes, 1u);
  EXPECT_EQ(mach.cost() - cost_before, 1 + omega);
  const auto got = kv.get(100);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, std::vector<std::uint64_t>{0xdecaf});

  // An absent key charges the probe read(s) but writes nothing.
  const IoStats miss_before = mach.stats();
  EXPECT_FALSE(kv.put_inline(101, 1));  // odd keys are never present
  EXPECT_EQ(mach.stats().writes, miss_before.writes);
  EXPECT_GE(mach.stats().reads - miss_before.reads, 1u);

  EXPECT_EQ(kv.stats().puts, 2u);
  EXPECT_EQ(kv.stats().put_hits, 1u);
  EXPECT_EQ(kv.stats().put_writes, 1u);
  EXPECT_GE(kv.stats().put_log_reads, 2u);
  EXPECT_EQ(kv.stats().orphaned_words, 0u);
}

TEST(KvStorePutTest, PutInlineOrphansSpilledValuesAndScansSeeTheUpdate) {
  Machine mach(cfg(4096, 16, 8));
  std::vector<Slot> slots;
  std::vector<std::uint64_t> payload;
  // Keys 0..99 (x2): key 40 spills 5 words, everything else is inline.
  for (std::size_t i = 0; i < 100; ++i) {
    if (i == 20) {
      Slot s{2 * i, 5, payload.size()};
      for (int w = 0; w < 5; ++w) payload.push_back(1000 + w);
      slots.push_back(s);
    } else {
      slots.push_back(Slot{2 * i, 1, i});
    }
  }
  ExtArray<Slot> in(mach, slots.size(), "input.slots");
  in.unsafe_host_fill(std::span<const Slot>(slots));
  ExtArray<std::uint64_t> pay(mach, payload.size(), "input.payload");
  pay.unsafe_host_fill(std::span<const std::uint64_t>(payload));
  KvStore kv(mach, StoreConfig{IndexKind::kFence, 8});
  kv.build(in, pay);

  ASSERT_EQ(kv.get(40)->size(), 5u);
  EXPECT_TRUE(kv.put_inline(40, 7));
  EXPECT_EQ(kv.stats().orphaned_words, 5u);
  EXPECT_EQ(*kv.get(40), std::vector<std::uint64_t>{7});

  // Scans serve the updated record too (the log itself was rewritten).
  std::map<std::uint64_t, std::vector<std::uint64_t>> seen;
  kv.scan(0, ~0ull, [&](std::uint64_t key,
                        std::span<const std::uint64_t> value) {
    seen[key] = std::vector<std::uint64_t>(value.begin(), value.end());
  });
  EXPECT_EQ(seen.at(40), std::vector<std::uint64_t>{7});
  EXPECT_EQ(seen.size(), 100u);
}

TEST(KvStorePutTest, PutInlineUpdatesTheLastDuplicate) {
  // Three records share key 10; get() serves the LAST insert, so put must
  // update that one for upsert semantics to survive.
  Machine mach(cfg(4096, 16, 8));
  std::vector<Slot> slots = {Slot{10, 1, 111}, Slot{4, 1, 4},
                             Slot{10, 1, 222}, Slot{10, 1, 333},
                             Slot{30, 1, 30}};
  ExtArray<Slot> in(mach, slots.size(), "input.slots");
  in.unsafe_host_fill(std::span<const Slot>(slots));
  ExtArray<std::uint64_t> nopay(mach, 0, "input.payload");
  KvStore kv(mach, StoreConfig{IndexKind::kFence, 8});
  kv.build(in, nopay);

  ASSERT_EQ(*kv.get(10), std::vector<std::uint64_t>{333});
  EXPECT_TRUE(kv.put_inline(10, 444));
  EXPECT_EQ(*kv.get(10), std::vector<std::uint64_t>{444});
  EXPECT_EQ(*kv.get(4), std::vector<std::uint64_t>{4});
  EXPECT_EQ(*kv.get(30), std::vector<std::uint64_t>{30});
}

TEST(KvStorePutTest, PutInlineOnEmptyStoreAndBoundaryKeys) {
  Machine mach(cfg(4096, 16, 8));
  ExtArray<Slot> none(mach, 0, "input.slots");
  ExtArray<std::uint64_t> nopay(mach, 0, "input.payload");
  KvStore kv(mach, StoreConfig{IndexKind::kFence, 8});
  kv.build(none, nopay);
  EXPECT_FALSE(kv.put_inline(0, 1));
  EXPECT_FALSE(kv.put_inline(~0ull, 1));
  EXPECT_EQ(kv.stats().puts, 2u);
  EXPECT_EQ(kv.stats().put_hits, 0u);
  EXPECT_EQ(kv.stats().put_writes, 0u);

  // A key below the whole store never touches the log.
  Machine mach2(cfg(4096, 16, 8));
  std::vector<Slot> slots = {Slot{100, 1, 1}, Slot{200, 1, 2}};
  ExtArray<Slot> in(mach2, slots.size(), "input.slots");
  in.unsafe_host_fill(std::span<const Slot>(slots));
  ExtArray<std::uint64_t> nopay2(mach2, 0, "input.payload");
  KvStore kv2(mach2, StoreConfig{IndexKind::kFence, 8});
  kv2.build(in, nopay2);
  EXPECT_FALSE(kv2.put_inline(50, 9));
  EXPECT_TRUE(kv2.put_inline(200, 9));  // last key is reachable
  EXPECT_EQ(*kv2.get(200), std::vector<std::uint64_t>{9});
}

TEST(KvStorePutTest, PutInlineFacadeInvariantOnShardedMachine) {
  const Dataset d = make_dataset(400, 19);
  auto drive = [&](Machine& mach) {
    auto [s, p] = stage(mach, d);
    KvStore kv(mach, StoreConfig{IndexKind::kFence, 8});
    kv.build(s, p);
    util::Rng rng(23);
    std::vector<bool> hits;
    for (int t = 0; t < 60; ++t)
      hits.push_back(
          kv.put_inline(d.slots[rng.below(d.slots.size())].key, rng.next()));
    return std::pair<std::vector<bool>, store::StoreStats>(hits, kv.stats());
  };
  Machine plain(cfg(4096, 16, 8));
  const auto plain_out = drive(plain);

  ShardConfig sc;
  sc.frontend = cfg(4096, 16, 8);
  for (int i = 0; i < 4; ++i) sc.devices.push_back(cfg(4096, 16, 8));
  ShardedMachine sharded(sc);
  const auto shard_out = drive(sharded);

  EXPECT_EQ(plain_out.first, shard_out.first);
  EXPECT_EQ(plain_out.second, shard_out.second);
  EXPECT_EQ(plain.stats().reads, sharded.stats().reads);
  EXPECT_EQ(plain.stats().writes, sharded.stats().writes);
  EXPECT_EQ(sharded.devices_stats().writes, sharded.stats().writes);
}

}  // namespace
