// Integration tests: cross-module pipelines exercised end-to-end.
//
//  * soundness — no measured program may beat the paper's lower bounds;
//  * agreement — different programs for the same problem produce identical
//    outputs;
//  * the ARAM special case (B = 1) of the AEM model;
//  * trace -> rounds -> flash chains on dispatcher-chosen programs;
//  * iterated SpMxV as a graph computation (BFS frontier closure).
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "bounds/permute_bounds.hpp"
#include "bounds/sort_bounds.hpp"
#include "bounds/spmv_bounds.hpp"
#include "core/ext_array.hpp"
#include "core/machine.hpp"
#include "flash/simulate.hpp"
#include "permute/dispatch.hpp"
#include "permute/permutation.hpp"
#include "rounds/rounds.hpp"
#include "sort/em_mergesort.hpp"
#include "sort/mergesort.hpp"
#include "sort/samplesort.hpp"
#include "spmv/dispatch.hpp"
#include "util/rng.hpp"

namespace {

using namespace aem;

Config cfg(std::size_t M, std::size_t B, std::uint64_t w) {
  Config c;
  c.memory_elems = M;
  c.block_elems = B;
  c.write_cost = w;
  return c;
}

// ---------------------------------------------------------------------------
// Soundness: measured costs can never beat the lower bounds.
// ---------------------------------------------------------------------------

struct SoundnessParam {
  std::size_t N, M, B;
  std::uint64_t omega;
};

class SoundnessTest : public ::testing::TestWithParam<SoundnessParam> {};

TEST_P(SoundnessTest, SortNeverBeatsLowerBound) {
  const auto p = GetParam();
  Machine mach(cfg(p.M, p.B, p.omega));
  util::Rng rng(301 + p.N + p.omega);
  ExtArray<std::uint64_t> in(mach, p.N, "in");
  in.unsafe_host_fill(util::random_keys(p.N, rng));
  ExtArray<std::uint64_t> out(mach, p.N, "out");
  mach.reset_stats();
  aem_merge_sort(in, out);
  bounds::AemParams bp{.N = p.N, .M = p.M, .B = p.B, .omega = p.omega};
  EXPECT_GE(double(mach.cost()), bounds::sort_lower_bound(bp));
}

TEST_P(SoundnessTest, PermuteNeverBeatsLowerBound) {
  const auto p = GetParam();
  Machine mach(cfg(p.M, p.B, p.omega));
  util::Rng rng(303 + p.N + p.omega);
  auto dest = perm::random(p.N, rng);
  ExtArray<std::uint64_t> in(mach, p.N, "in");
  in.unsafe_host_fill(util::random_keys(p.N, rng));
  ExtArray<std::uint64_t> out(mach, p.N, "out");
  mach.reset_stats();
  permute(in, std::span<const std::uint64_t>(dest), out);
  bounds::AemParams bp{.N = p.N, .M = p.M, .B = p.B, .omega = p.omega};
  EXPECT_GE(double(mach.cost()), bounds::permute_lower_bound_total(bp));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SoundnessTest,
    ::testing::Values(SoundnessParam{1 << 12, 128, 8, 1},
                      SoundnessParam{1 << 12, 128, 8, 16},
                      SoundnessParam{1 << 13, 256, 16, 4},
                      SoundnessParam{1 << 13, 256, 16, 64},
                      SoundnessParam{1 << 14, 512, 32, 8}),
    [](const ::testing::TestParamInfo<SoundnessParam>& info) {
      const auto& p = info.param;
      std::string name = "N";
      name += std::to_string(p.N);
      name += "_M";
      name += std::to_string(p.M);
      name += "_B";
      name += std::to_string(p.B);
      name += "_w";
      name += std::to_string(p.omega);
      return name;
    });

// ---------------------------------------------------------------------------
// Agreement across programs.
// ---------------------------------------------------------------------------

TEST(AgreementTest, BothPermutersIdenticalOutput) {
  const std::size_t N = 3000;  // deliberately not a power of two
  util::Rng rng(311);
  auto keys = util::random_keys(N, rng);
  auto dest = perm::random(N, rng);

  Machine m1(cfg(256, 16, 4));
  ExtArray<std::uint64_t> in1(m1, N, "in");
  in1.unsafe_host_fill(keys);
  ExtArray<std::uint64_t> out1(m1, N, "out");
  naive_permute(in1, std::span<const std::uint64_t>(dest), out1);

  Machine m2(cfg(256, 16, 4));
  ExtArray<std::uint64_t> in2(m2, N, "in");
  in2.unsafe_host_fill(keys);
  ExtArray<std::uint64_t> out2(m2, N, "out");
  sort_permute(in2, std::span<const std::uint64_t>(dest), out2);

  EXPECT_EQ(out1.unsafe_host_view(), out2.unsafe_host_view());
}

TEST(AgreementTest, PermuteByInverseIsIdentity) {
  const std::size_t N = 2048;
  util::Rng rng(313);
  auto keys = util::random_keys(N, rng);
  auto dest = perm::random(N, rng);
  auto inv = perm::inverse(dest);

  Machine mach(cfg(128, 8, 8));
  ExtArray<std::uint64_t> a(mach, N, "a");
  a.unsafe_host_fill(keys);
  ExtArray<std::uint64_t> b(mach, N, "b");
  ExtArray<std::uint64_t> c(mach, N, "c");
  permute(a, std::span<const std::uint64_t>(dest), b);
  permute(b, std::span<const std::uint64_t>(inv), c);
  EXPECT_EQ(c.unsafe_host_view(), keys);
}

TEST(AgreementTest, SortingByPermutingMatchesSorting) {
  // Sorting distinct keys == permuting by the rank permutation.
  const std::size_t N = 2048;
  util::Rng rng(317);
  auto keys = util::distinct_keys(N, rng);

  // rank[i] = final position of element i (host-computed specification).
  std::vector<std::uint64_t> order(N);
  for (std::size_t i = 0; i < N; ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](std::uint64_t a, std::uint64_t b) { return keys[a] < keys[b]; });
  perm::Perm rank(N);
  for (std::size_t r = 0; r < N; ++r) rank[order[r]] = r;

  Machine m1(cfg(256, 16, 4));
  ExtArray<std::uint64_t> in1(m1, N, "in");
  in1.unsafe_host_fill(keys);
  ExtArray<std::uint64_t> sorted(m1, N, "sorted");
  aem_merge_sort(in1, sorted);

  Machine m2(cfg(256, 16, 4));
  ExtArray<std::uint64_t> in2(m2, N, "in");
  in2.unsafe_host_fill(keys);
  ExtArray<std::uint64_t> permuted(m2, N, "permuted");
  permute(in2, std::span<const std::uint64_t>(rank), permuted);

  EXPECT_EQ(sorted.unsafe_host_view(), permuted.unsafe_host_view());
}

// ---------------------------------------------------------------------------
// The ARAM special case: B = 1 (the (M,omega)-ARAM of Blelloch et al.).
// ---------------------------------------------------------------------------

TEST(AramTest, ModelDegeneratesToAram) {
  Machine mach(cfg(64, 1, 8));  // B = 1: every element transfer is an I/O
  EXPECT_EQ(mach.m(), 64u);
  ExtArray<std::uint64_t> arr(mach, 10, "a");
  EXPECT_EQ(arr.blocks(), 10u);
  Buffer<std::uint64_t> buf(mach, 1);
  arr.read_block(3, buf.span());
  EXPECT_EQ(mach.stats().reads, 1u);  // one element = one read
}

TEST(AramTest, SortWorksAtBlockSizeOne) {
  Machine mach(cfg(64, 1, 4));
  util::Rng rng(331);
  const std::size_t N = 600;
  auto keys = util::random_keys(N, rng);
  ExtArray<std::uint64_t> in(mach, N, "in");
  in.unsafe_host_fill(keys);
  ExtArray<std::uint64_t> out(mach, N, "out");
  aem_merge_sort(in, out);
  auto expect = keys;
  std::sort(expect.begin(), expect.end());
  EXPECT_EQ(out.unsafe_host_view(), expect);
  EXPECT_LE(mach.ledger().high_water(), 64u);
}

TEST(AramTest, PermuteWorksAtBlockSizeOne) {
  Machine mach(cfg(32, 1, 16));
  util::Rng rng(333);
  const std::size_t N = 500;
  auto keys = util::random_keys(N, rng);
  auto dest = perm::random(N, rng);
  ExtArray<std::uint64_t> in(mach, N, "in");
  in.unsafe_host_fill(keys);
  ExtArray<std::uint64_t> out(mach, N, "out");
  // At B = 1 the naive gather is exactly N reads + N writes.
  naive_permute(in, std::span<const std::uint64_t>(dest), out);
  EXPECT_EQ(mach.stats().reads, N);
  EXPECT_EQ(mach.stats().writes, N);
  std::vector<std::uint64_t> expect(N);
  for (std::size_t i = 0; i < N; ++i) expect[dest[i]] = keys[i];
  EXPECT_EQ(out.unsafe_host_view(), expect);
}

// ---------------------------------------------------------------------------
// Trace -> rounds -> flash chains.
// ---------------------------------------------------------------------------

TEST(PipelineTest, DispatcherTraceSurvivesFullMachinery) {
  const std::size_t N = 2048, M = 128, B = 16;
  const std::uint64_t w = 4;  // B % w == 0 for the flash leg
  Machine mach(cfg(M, B, w));
  util::Rng rng(341);
  auto atoms = util::distinct_keys(N, rng);
  auto dest = perm::random(N, rng);
  ExtArray<std::uint64_t> in(mach, N, "in");
  in.unsafe_host_fill(atoms);
  in.set_atom_extractor([](const std::uint64_t& v) { return v; });
  ExtArray<std::uint64_t> out(mach, N, "out");
  out.set_atom_extractor([](const std::uint64_t& v) { return v; });
  mach.enable_trace();
  permute(in, std::span<const std::uint64_t>(dest), out);
  auto trace = mach.take_trace();

  auto rb = rounds::make_round_based(*trace, mach.m(), w);
  EXPECT_LE(rb.cost_factor(), 3.5);

  auto sim = flash::simulate_permutation_trace(
      *trace, std::span<const std::uint64_t>(atoms), in.id(), B, w);
  EXPECT_LE(double(sim.total_volume()), sim.volume_bound(B, w));
  EXPECT_EQ(sim.destroyed_atoms, 0u);
}

// ---------------------------------------------------------------------------
// Iterated SpMxV: BFS frontier closure over the boolean semiring.
// ---------------------------------------------------------------------------

TEST(GraphTest, ReachabilityViaIteratedSpmv) {
  // A directed cycle 0 -> 1 -> ... -> n-1 -> 0 as a sparse matrix
  // (A[r][c] = 1 iff edge c -> r).  Iterating y = A x from x = e_0 walks
  // the cycle one step per multiply.
  const std::uint64_t n = 64;
  Machine mach(cfg(256, 16, 4));
  std::vector<spmv::Coord> coords;
  for (std::uint32_t c = 0; c < n; ++c)
    coords.push_back(spmv::Coord{static_cast<std::uint32_t>((c + 1) % n), c});
  std::sort(coords.begin(), coords.end(), [](auto a, auto b) {
    return a.col != b.col ? a.col < b.col : a.row < b.row;
  });
  spmv::Conformation conf(n, coords);
  spmv::SparseMatrix<std::uint8_t> A(mach, conf,
                                     [](spmv::Coord) { return std::uint8_t{1}; });

  std::vector<std::uint8_t> frontier(n, 0);
  frontier[0] = 1;
  ExtArray<std::uint8_t> x(mach, n, "x");
  ExtArray<std::uint8_t> y(mach, n, "y");
  x.unsafe_host_fill(frontier);

  for (int step = 1; step <= 5; ++step) {
    spmv::multiply(A, x, y, spmv::BoolOr{});
    // After `step` multiplies the frontier is exactly vertex `step`.
    for (std::uint64_t v = 0; v < n; ++v)
      ASSERT_EQ(y.unsafe_host_view()[v], v == std::uint64_t(step) ? 1 : 0)
          << "step " << step << " vertex " << v;
    x.unsafe_host_fill(y.unsafe_host_view());
  }
}

TEST(GraphTest, ShortestPathRelaxationViaMinPlus) {
  // Path graph 0 -> 1 -> 2 -> ... with weight 1 edges; min-plus SpMxV
  // performs one relaxation round.
  const std::uint64_t n = 32;
  Machine mach(cfg(256, 16, 2));
  std::vector<spmv::Coord> coords;
  for (std::uint32_t c = 0; c + 1 < n; ++c)
    coords.push_back(spmv::Coord{c + 1, c});
  spmv::Conformation conf(n, coords);
  spmv::SparseMatrix<double> A(mach, conf, [](spmv::Coord) { return 1.0; });

  const double inf = std::numeric_limits<double>::infinity();
  std::vector<double> dist(n, inf);
  dist[0] = 0.0;
  ExtArray<double> x(mach, n, "x");
  ExtArray<double> y(mach, n, "y");
  x.unsafe_host_fill(dist);
  for (std::uint64_t round = 1; round <= 4; ++round) {
    spmv::multiply(A, x, y, spmv::MinPlus{});
    // y_v = dist reachable in exactly `round` more hops; vertex `round`
    // gets distance `round`.
    EXPECT_DOUBLE_EQ(y.unsafe_host_view()[round], double(round));
    // Merge (min) into running distances, host-side for the test.
    auto merged = y.unsafe_host_view();
    std::vector<double> next(n);
    for (std::uint64_t v = 0; v < n; ++v)
      next[v] = std::min(dist[v], merged[v]);
    dist = next;
    x.unsafe_host_fill(dist);
  }
  EXPECT_DOUBLE_EQ(dist[4], 4.0);
  EXPECT_EQ(dist[10], inf);  // not yet reached in 4 rounds
}

// ---------------------------------------------------------------------------
// Determinism: the simulator is exactly reproducible — same seed, same
// machine => identical I/O counters, not merely identical outputs.
// ---------------------------------------------------------------------------

TEST(DeterminismTest, RepeatedRunsProduceIdenticalCosts) {
  auto run_once = []() {
    Machine mach(cfg(256, 16, 8));
    util::Rng rng(777);
    const std::size_t N = 1 << 13;
    ExtArray<std::uint64_t> in(mach, N, "in");
    in.unsafe_host_fill(util::random_keys(N, rng));
    ExtArray<std::uint64_t> out(mach, N, "out");
    aem_merge_sort(in, out);
    auto dest = perm::random(N, rng);
    ExtArray<std::uint64_t> p(mach, N, "p");
    permute(out, std::span<const std::uint64_t>(dest), p);
    return mach.stats();
  };
  const IoStats a = run_once();
  const IoStats b = run_once();
  EXPECT_EQ(a, b);
}

// ---------------------------------------------------------------------------
// New bound helpers.
// ---------------------------------------------------------------------------

TEST(TotalBoundTest, PermuteTotalAddsOutputTerm) {
  bounds::AemParams p{.N = 1 << 14, .M = 128, .B = 8, .omega = 1024};
  // At huge omega the min picks N, but the output term omega*n dominates.
  EXPECT_DOUBLE_EQ(bounds::permute_lower_bound(p), double(p.N));
  EXPECT_DOUBLE_EQ(bounds::permute_lower_bound_total(p),
                   1024.0 * double(p.n()));
  // At omega = 1 the output term is negligible.
  p.omega = 1;
  EXPECT_DOUBLE_EQ(bounds::permute_lower_bound_total(p),
                   bounds::permute_lower_bound(p));
}

TEST(TotalBoundTest, SpmvTotalAddsOutputTerm) {
  bounds::SpmvParams p{.N = 1 << 13, .delta = 4, .M = 256, .B = 16,
                       .omega = 1024};
  EXPECT_GT(bounds::spmv_lower_bound_total(p), bounds::spmv_lower_bound(p));
  EXPECT_DOUBLE_EQ(bounds::spmv_lower_bound_total(p), 1024.0 * double(p.n()));
}

}  // namespace
