// Tests for spmv/: semiring algebra, conformation generators, the naive and
// sorting-based SpMxV programs (correctness over several semirings +
// Section 5 cost branches), and the dispatcher.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "bounds/spmv_bounds.hpp"
#include "core/ext_array.hpp"
#include "core/machine.hpp"
#include "spmv/dispatch.hpp"
#include "spmv/matrix.hpp"
#include "spmv/naive.hpp"
#include "spmv/semiring.hpp"
#include "spmv/sort_spmv.hpp"
#include "util/rng.hpp"

namespace {

using namespace aem;
using namespace aem::spmv;

Config cfg(std::size_t M, std::size_t B, std::uint64_t w) {
  Config c;
  c.memory_elems = M;
  c.block_elems = B;
  c.write_cost = w;
  return c;
}

/// Host reference: y = A (x) x over semiring s.
template <Semiring S>
std::vector<typename S::Value> host_spmv(const Conformation& conf,
                                         const std::vector<typename S::Value>& vals,
                                         const std::vector<typename S::Value>& x,
                                         S s) {
  std::vector<typename S::Value> y(conf.n(), s.zero());
  const auto& coords = conf.coords();
  for (std::size_t e = 0; e < coords.size(); ++e)
    y[coords[e].row] =
        s.add(y[coords[e].row], s.mul(vals[e], x[coords[e].col]));
  return y;
}

TEST(SemiringTest, PlusTimesAxioms) {
  PlusTimes s;
  EXPECT_DOUBLE_EQ(s.add(s.zero(), 3.5), 3.5);
  EXPECT_DOUBLE_EQ(s.mul(s.one(), 3.5), 3.5);
  EXPECT_DOUBLE_EQ(s.mul(s.zero(), 3.5), 0.0);
  EXPECT_DOUBLE_EQ(s.add(1.5, 2.0), 3.5);
}

TEST(SemiringTest, MinPlusAxioms) {
  MinPlus s;
  EXPECT_DOUBLE_EQ(s.add(s.zero(), 3.5), 3.5);   // min(inf, x) = x
  EXPECT_DOUBLE_EQ(s.mul(s.one(), 3.5), 3.5);    // 0 + x = x
  EXPECT_DOUBLE_EQ(s.add(2.0, 5.0), 2.0);
  EXPECT_DOUBLE_EQ(s.mul(2.0, 5.0), 7.0);
  EXPECT_TRUE(std::isinf(s.mul(s.zero(), 3.0)));  // inf annihilates
}

TEST(SemiringTest, BoolOrAxioms) {
  BoolOr s;
  EXPECT_EQ(s.add(0, 1), 1);
  EXPECT_EQ(s.mul(1, 1), 1);
  EXPECT_EQ(s.mul(0, 1), 0);
  EXPECT_EQ(s.add(s.zero(), 0), 0);
}

TEST(ConformationTest, DeltaRegularShape) {
  util::Rng rng(3);
  auto conf = Conformation::delta_regular(64, 4, rng);
  EXPECT_EQ(conf.nnz(), 256u);
  EXPECT_EQ(conf.delta(), 4u);
  // Exactly 4 per column, distinct rows, sorted.
  std::vector<int> per_col(64, 0);
  for (const auto& c : conf.coords()) ++per_col[c.col];
  for (int cnt : per_col) EXPECT_EQ(cnt, 4);
}

TEST(ConformationTest, DeltaRegularRowsAreSpread) {
  // Uniformly chosen rows should touch most of the matrix.
  util::Rng rng(5);
  auto conf = Conformation::delta_regular(256, 2, rng);
  std::vector<bool> seen(256, false);
  for (const auto& c : conf.coords()) seen[c.row] = true;
  std::size_t hit = 0;
  for (bool b : seen) hit += b;
  EXPECT_GT(hit, 200u);  // 512 uniform draws over 256 rows
}

TEST(ConformationTest, BandedAndBlockDiagonal) {
  auto band = Conformation::banded(16, 1);
  for (const auto& c : band.coords())
    EXPECT_LE(std::abs(int(c.row) - int(c.col)), 1);
  EXPECT_EQ(band.nnz(), 16u * 3 - 2);

  auto blocks = Conformation::block_diagonal(16, 4);
  EXPECT_EQ(blocks.nnz(), 16u * 4);
  for (const auto& c : blocks.coords()) EXPECT_EQ(c.row / 4, c.col / 4);
}

TEST(ConformationTest, RejectsBadCoordinates) {
  EXPECT_THROW(Conformation(4, {{5, 0}}), std::invalid_argument);
  EXPECT_THROW(Conformation(4, {{1, 0}, {0, 0}}), std::invalid_argument);
  EXPECT_THROW(Conformation(4, {{1, 0}, {1, 0}}), std::invalid_argument);
  util::Rng rng(1);
  EXPECT_THROW(Conformation::delta_regular(4, 5, rng),
               std::invalid_argument);
}

class SpmvProgramTest : public ::testing::TestWithParam<int> {
 protected:
  template <Semiring S>
  void run_and_check(S s, std::uint64_t N, std::uint64_t delta,
                     std::size_t M, std::size_t B, std::uint64_t w) {
    using V = typename S::Value;
    const bool use_sort = GetParam() == 1;
    Machine mach(cfg(M, B, w));
    util::Rng rng(97 + N + delta);
    auto conf = Conformation::delta_regular(N, delta, rng);

    std::vector<V> vals(conf.nnz());
    for (auto& v : vals) v = static_cast<V>(1 + rng.below(7));
    std::size_t vi = 0;
    SparseMatrix<V> A(mach, conf, [&](Coord) { return vals[vi++]; });

    std::vector<V> xs(N);
    for (auto& v : xs) v = static_cast<V>(1 + rng.below(5));
    ExtArray<V> x(mach, N, "x");
    x.unsafe_host_fill(xs);
    ExtArray<V> y(mach, N, "y");

    if (use_sort) {
      sort_spmv(A, x, y, s);
    } else {
      naive_spmv(A, x, y, s);
    }
    auto expect = host_spmv(A.conformation(), vals, xs, s);
    ASSERT_EQ(y.unsafe_host_view().size(), expect.size());
    for (std::size_t i = 0; i < expect.size(); ++i)
      ASSERT_EQ(y.unsafe_host_view()[i], expect[i]) << "row " << i;
    EXPECT_LE(mach.ledger().high_water(), M);
  }
};

TEST_P(SpmvProgramTest, PlusTimesCorrect) {
  run_and_check(PlusTimes{}, 256, 4, 256, 16, 4);
}

TEST_P(SpmvProgramTest, CountingCorrect) {
  run_and_check(Counting{}, 512, 3, 128, 8, 8);
}

TEST_P(SpmvProgramTest, MinPlusCorrect) {
  run_and_check(MinPlus{}, 128, 8, 256, 16, 2);
}

TEST_P(SpmvProgramTest, BoolOrCorrect) {
  run_and_check(BoolOr{}, 512, 2, 128, 8, 1);
}

TEST_P(SpmvProgramTest, DenseColumnCorrect) {
  run_and_check(PlusTimes{}, 64, 64, 256, 16, 4);  // fully dense
}

TEST_P(SpmvProgramTest, SparsestCorrect) {
  run_and_check(PlusTimes{}, 1024, 1, 128, 8, 16);  // one entry per column
}

INSTANTIATE_TEST_SUITE_P(Programs, SpmvProgramTest, ::testing::Values(0, 1),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return info.param == 0 ? std::string("naive")
                                                  : std::string("sort");
                         });

TEST(SpmvCostTest, NaiveWithinBranchBound) {
  const std::uint64_t N = 1024, delta = 4;
  Machine mach(cfg(256, 16, 8));
  util::Rng rng(111);
  auto conf = Conformation::delta_regular(N, delta, rng);
  SparseMatrix<double> A(mach, conf, [](Coord) { return 1.0; });
  ExtArray<double> x(mach, N, "x");
  x.unsafe_host_fill(std::vector<double>(N, 1.0));
  ExtArray<double> y(mach, N, "y");
  mach.reset_stats();
  naive_spmv(A, x, y, PlusTimes{});
  const auto p = spmv_params(mach, N, delta);
  // <= 2H reads (A + x per entry) + n writes.
  EXPECT_LE(mach.stats().reads, 2 * p.H());
  EXPECT_EQ(mach.stats().writes, p.n());
}

TEST(SpmvCostTest, SortWithinBranchBound) {
  const std::uint64_t N = 4096, delta = 4;
  Machine mach(cfg(256, 16, 4));
  util::Rng rng(113);
  auto conf = Conformation::delta_regular(N, delta, rng);
  SparseMatrix<double> A(mach, conf, [](Coord) { return 1.0; });
  ExtArray<double> x(mach, N, "x");
  x.unsafe_host_fill(std::vector<double>(N, 1.0));
  ExtArray<double> y(mach, N, "y");
  mach.reset_stats();
  sort_spmv(A, x, y, PlusTimes{});
  const auto p = spmv_params(mach, N, delta);
  EXPECT_LE(double(mach.cost()), 60.0 * bounds::spmv_sort_upper_bound(p))
      << "cost=" << mach.cost()
      << " bound=" << bounds::spmv_sort_upper_bound(p);
  // Phases were attributed.
  EXPECT_TRUE(mach.phase_stats().count("spmv.products"));
  EXPECT_TRUE(mach.phase_stats().count("spmv.merge"));
  EXPECT_TRUE(mach.phase_stats().count("spmv.densify"));
}

TEST(SpmvCostTest, SortBeatsNaivePerEntryWhenDense) {
  // With large B and moderate omega, sorting's block-granular movement
  // beats element-granular gathering.
  const std::uint64_t N = 4096, delta = 8;
  util::Rng rng(117);
  auto conf = Conformation::delta_regular(N, delta, rng);

  Machine m1(cfg(4096, 64, 1));
  SparseMatrix<double> A1(m1, conf, [](Coord) { return 1.0; });
  ExtArray<double> x1(m1, N, "x");
  x1.unsafe_host_fill(std::vector<double>(N, 1.0));
  ExtArray<double> y1(m1, N, "y");
  m1.reset_stats();
  naive_spmv(A1, x1, y1, PlusTimes{});
  const auto naive_cost = m1.cost();

  Machine m2(cfg(4096, 64, 1));
  SparseMatrix<double> A2(m2, conf, [](Coord) { return 1.0; });
  ExtArray<double> x2(m2, N, "x");
  x2.unsafe_host_fill(std::vector<double>(N, 1.0));
  ExtArray<double> y2(m2, N, "y");
  m2.reset_stats();
  sort_spmv(A2, x2, y2, PlusTimes{});
  const auto sort_cost = m2.cost();

  EXPECT_LT(sort_cost, naive_cost)
      << "sort=" << sort_cost << " naive=" << naive_cost;
}

TEST(SpmvCostTest, NaiveBeatsSortAtHugeOmega) {
  // When writes are extremely expensive, even one sorting pass loses to
  // the O(H + omega n) gather.
  const std::uint64_t N = 2048, delta = 2;
  util::Rng rng(119);
  auto conf = Conformation::delta_regular(N, delta, rng);

  Machine m1(cfg(128, 8, 4096));
  SparseMatrix<double> A1(m1, conf, [](Coord) { return 1.0; });
  ExtArray<double> x1(m1, N, "x");
  x1.unsafe_host_fill(std::vector<double>(N, 1.0));
  ExtArray<double> y1(m1, N, "y");
  m1.reset_stats();
  naive_spmv(A1, x1, y1, PlusTimes{});
  const auto naive_cost = m1.cost();

  Machine m2(cfg(128, 8, 4096));
  SparseMatrix<double> A2(m2, conf, [](Coord) { return 1.0; });
  ExtArray<double> x2(m2, N, "x");
  x2.unsafe_host_fill(std::vector<double>(N, 1.0));
  ExtArray<double> y2(m2, N, "y");
  m2.reset_stats();
  sort_spmv(A2, x2, y2, PlusTimes{});
  const auto sort_cost = m2.cost();

  EXPECT_LT(naive_cost, sort_cost);
}

TEST(SpmvDispatchTest, MatchesPrediction) {
  Machine hi_omega(cfg(128, 8, 4096));
  EXPECT_EQ(choose_spmv_strategy(hi_omega, 2048, 2), SpmvStrategy::kNaive);
  Machine symmetric(cfg(4096, 64, 1));
  EXPECT_EQ(choose_spmv_strategy(symmetric, 4096, 8),
            SpmvStrategy::kSortBased);
}

TEST(SpmvDispatchTest, RunsAndIsCorrect) {
  const std::uint64_t N = 512, delta = 3;
  Machine mach(cfg(256, 16, 8));
  util::Rng rng(121);
  auto conf = Conformation::delta_regular(N, delta, rng);
  std::vector<double> vals(conf.nnz(), 2.0);
  SparseMatrix<double> A(mach, conf, [](Coord) { return 2.0; });
  std::vector<double> xs(N, 3.0);
  ExtArray<double> x(mach, N, "x");
  x.unsafe_host_fill(xs);
  ExtArray<double> y(mach, N, "y");
  multiply(A, x, y, PlusTimes{});
  auto expect = host_spmv(conf, vals, xs, PlusTimes{});
  for (std::size_t i = 0; i < N; ++i)
    EXPECT_DOUBLE_EQ(y.unsafe_host_view()[i], expect[i]);
}

TEST(SpmvEdgeTest, EmptyMatrixYieldsZeroVector) {
  // A conformation with no non-zeros: both programs must produce the
  // all-zeros (semiring zero) vector without faulting.
  Machine mach(cfg(256, 16, 2));
  Conformation conf(32, {});
  SparseMatrix<double> A(mach, conf, [](Coord) { return 1.0; });
  ExtArray<double> x(mach, 32, "x");
  x.unsafe_host_fill(std::vector<double>(32, 3.0));
  for (bool use_sort : {false, true}) {
    ExtArray<double> y(mach, 32, "y");
    if (use_sort) {
      sort_spmv(A, x, y, PlusTimes{});
    } else {
      naive_spmv(A, x, y, PlusTimes{});
    }
    for (double v : y.unsafe_host_view()) ASSERT_DOUBLE_EQ(v, 0.0);
  }
}

TEST(SpmvEdgeTest, BandedMatrixCorrect) {
  Machine mach(cfg(256, 16, 4));
  auto conf = Conformation::banded(64, 2);
  std::vector<double> vals;
  util::Rng rng(151);
  SparseMatrix<double> A(mach, conf, [&](Coord) {
    vals.push_back(1.0 + double(rng.below(5)));
    return vals.back();
  });
  std::vector<double> xs(64);
  for (auto& v : xs) v = 1.0 + double(rng.below(3));
  ExtArray<double> x(mach, 64, "x");
  x.unsafe_host_fill(xs);
  ExtArray<double> y(mach, 64, "y");
  sort_spmv(A, x, y, PlusTimes{});
  auto expect = host_spmv(conf, vals, xs, PlusTimes{});
  for (std::size_t i = 0; i < 64; ++i)
    ASSERT_DOUBLE_EQ(y.unsafe_host_view()[i], expect[i]);
}

TEST(SpmvEdgeTest, BlockDiagonalCorrect) {
  Machine mach(cfg(256, 16, 4));
  auto conf = Conformation::block_diagonal(64, 8);
  std::vector<double> vals(conf.nnz(), 2.0);
  SparseMatrix<double> A(mach, conf, [](Coord) { return 2.0; });
  std::vector<double> xs(64, 1.0);
  ExtArray<double> x(mach, 64, "x");
  x.unsafe_host_fill(xs);
  ExtArray<double> y(mach, 64, "y");
  naive_spmv(A, x, y, PlusTimes{});
  // Every row has 8 entries of value 2 -> y_i = 16.
  for (double v : y.unsafe_host_view()) ASSERT_DOUBLE_EQ(v, 16.0);
}

TEST(LayoutTest, ReorderedPreservesStructure) {
  util::Rng rng(131);
  auto col = Conformation::delta_regular(64, 3, rng);
  auto row = col.reordered(Layout::kRowMajor);
  EXPECT_EQ(row.layout(), Layout::kRowMajor);
  EXPECT_EQ(row.nnz(), col.nnz());
  // Same coordinate multiset.
  auto a = col.coords();
  auto b = row.coords();
  auto key = [](const Coord& c) {
    return (std::uint64_t(c.row) << 32) | c.col;
  };
  std::sort(a.begin(), a.end(),
            [&](const Coord& x, const Coord& y) { return key(x) < key(y); });
  std::sort(b.begin(), b.end(),
            [&](const Coord& x, const Coord& y) { return key(x) < key(y); });
  EXPECT_EQ(a, b);
  // Round trip.
  auto back = row.reordered(Layout::kColumnMajor);
  EXPECT_EQ(back.coords(), col.coords());
}

TEST(LayoutTest, ValidationFollowsDeclaredLayout) {
  // Row-major sorted coords are invalid as column-major and vice versa.
  std::vector<Coord> row_sorted{{0, 1}, {1, 0}};
  EXPECT_NO_THROW(Conformation(2, row_sorted, Layout::kRowMajor));
  EXPECT_THROW(Conformation(2, row_sorted, Layout::kColumnMajor),
               std::invalid_argument);
}

TEST(LayoutTest, SortSpmvRejectsRowMajor) {
  Machine mach(cfg(256, 16, 2));
  util::Rng rng(133);
  auto conf =
      Conformation::delta_regular(64, 2, rng).reordered(Layout::kRowMajor);
  SparseMatrix<double> A(mach, conf, [](Coord) { return 1.0; });
  ExtArray<double> x(mach, 64, "x");
  x.unsafe_host_fill(std::vector<double>(64, 1.0));
  ExtArray<double> y(mach, 64, "y");
  EXPECT_THROW(sort_spmv(A, x, y, PlusTimes{}), std::invalid_argument);
}

TEST(LayoutTest, RowMajorGatherIsScanCheap) {
  // In row-major layout with the implicit all-ones vector, the direct
  // program reads each matrix block ~once: cost ~ h + omega*n.
  const std::uint64_t N = 2048, delta = 4;
  util::Rng rng(137);
  auto conf =
      Conformation::delta_regular(N, delta, rng).reordered(Layout::kRowMajor);
  Machine mach(cfg(256, 16, 4));
  SparseMatrix<std::uint64_t> A(mach, conf, [](Coord) { return 1ull; });
  ExtArray<std::uint64_t> y(mach, N, "y");
  mach.reset_stats();
  naive_row_sums(A, y, Counting{});
  const auto p = spmv_params(mach, N, delta);
  EXPECT_LE(mach.stats().reads, 2 * p.h());  // near-scan, not per-entry
  EXPECT_EQ(mach.stats().writes, p.n());
}

TEST(RowSumsTest, BothProgramsComputeDegrees) {
  const std::uint64_t N = 1024, delta = 3;
  util::Rng rng(139);
  auto conf = Conformation::delta_regular(N, delta, rng);
  std::vector<std::uint64_t> degree(N, 0);
  for (const auto& c : conf.coords()) ++degree[c.row];

  for (bool use_sort : {false, true}) {
    Machine mach(cfg(256, 16, 4));
    SparseMatrix<std::uint64_t> A(mach, conf, [](Coord) { return 1ull; });
    ExtArray<std::uint64_t> y(mach, N, "y");
    if (use_sort) {
      sort_row_sums(A, y, Counting{});
    } else {
      naive_row_sums(A, y, Counting{});
    }
    for (std::size_t i = 0; i < N; ++i)
      ASSERT_EQ(y.unsafe_host_view()[i], degree[i])
          << "sort=" << use_sort << " row " << i;
  }
}

TEST(RowSumsTest, NoVectorReadsCharged) {
  // The row-sums programs never allocate or read an x array: their whole
  // read volume is attributable to A (plus merge traffic for the sorter).
  const std::uint64_t N = 1024, delta = 2;
  util::Rng rng(141);
  auto conf = Conformation::delta_regular(N, delta, rng);
  Machine mach(cfg(256, 16, 4));
  SparseMatrix<std::uint64_t> A(mach, conf, [](Coord) { return 1ull; });
  ExtArray<std::uint64_t> y(mach, N, "y");
  mach.reset_stats();
  naive_row_sums(A, y, Counting{});
  const auto p = spmv_params(mach, N, delta);
  EXPECT_LE(mach.stats().reads, p.H());  // <= one read per entry, no x term
}

TEST(SpmvTest, AllOnesVectorComputesRowDegrees) {
  // The Theorem 5.1 hard instance: A delta-regular, x = all ones, Counting
  // semiring -> y_i = (number of entries in row i).
  const std::uint64_t N = 512, delta = 4;
  Machine mach(cfg(256, 16, 4));
  util::Rng rng(123);
  auto conf = Conformation::delta_regular(N, delta, rng);
  SparseMatrix<std::uint64_t> A(mach, conf, [](Coord) { return 1ull; });
  ExtArray<std::uint64_t> x(mach, N, "x");
  x.unsafe_host_fill(std::vector<std::uint64_t>(N, 1));
  ExtArray<std::uint64_t> y(mach, N, "y");
  sort_spmv(A, x, y, Counting{});

  std::vector<std::uint64_t> degree(N, 0);
  for (const auto& c : conf.coords()) ++degree[c.row];
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < N; ++i) {
    EXPECT_EQ(y.unsafe_host_view()[i], degree[i]);
    total += y.unsafe_host_view()[i];
  }
  EXPECT_EQ(total, N * delta);
}

}  // namespace
