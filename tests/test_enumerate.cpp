// Mechanized toy-scale validation of the Section 4.2 counting argument:
// exhaustive search over round-based programs on tiny machines, checked
// against inequality (1) and against the derived lower bound.
#include <gtest/gtest.h>

#include <cmath>

#include "bounds/counting.hpp"
#include "bounds/enumerate.hpp"
#include "bounds/permute_bounds.hpp"

namespace {

using namespace aem::bounds;

TEST(EnumerateTest, ValidatesParameters) {
  EXPECT_THROW(enumerate_reachable_permutations({.N = 9}),
               std::invalid_argument);
  EXPECT_THROW(enumerate_reachable_permutations({.N = 4, .M = 1, .B = 2}),
               std::invalid_argument);
  EXPECT_THROW(enumerate_reachable_permutations(
                   {.N = 4, .M = 4, .B = 2, .omega = 1, .locations = 1}),
               std::invalid_argument);
}

TEST(EnumerateTest, TargetCounts) {
  // N=4, B=2: 4!/(2! 2!) = 6 set-wise permutations; B=1: 4! = 24.
  auto r1 = enumerate_reachable_permutations(
      {.N = 4, .M = 4, .B = 2, .omega = 1, .max_rounds = 0});
  EXPECT_EQ(r1.target, 6u);
  auto r2 = enumerate_reachable_permutations(
      {.N = 4, .M = 2, .B = 1, .omega = 1, .max_rounds = 0});
  EXPECT_EQ(r2.target, 24u);
  auto r3 = enumerate_reachable_permutations(
      {.N = 5, .M = 4, .B = 2, .omega = 1, .max_rounds = 0});
  EXPECT_EQ(r3.target, 30u);  // 5!/(2! 2! 1!)
}

TEST(EnumerateTest, RoundZeroReachesOnlyIdentity) {
  // Without any I/O only the identity arrangement is realized.
  auto r = enumerate_reachable_permutations(
      {.N = 4, .M = 4, .B = 2, .omega = 1, .max_rounds = 0});
  EXPECT_EQ(r.reachable.front(), 1u);
}

TEST(EnumerateTest, StarvedBudgetCannotMixBlocks) {
  // omega*m = 2 admits one read + one write per round: atoms from
  // different blocks can never be in memory together, so only whole-block
  // rearrangements (2 of the 6 set-wise permutations) are ever reachable —
  // a machine the counting bound is vacuously true for.
  auto r = enumerate_reachable_permutations(
      {.N = 4, .M = 4, .B = 2, .omega = 1, .max_rounds = 8});
  EXPECT_FALSE(r.rounds_to_complete.has_value());
  EXPECT_EQ(r.reachable.back(), 2u);
}

struct ToyParam {
  EnumParams p;
  const char* name;
};

class EnumerateToyTest : public ::testing::TestWithParam<ToyParam> {};

TEST_P(EnumerateToyTest, CompletesAndRespectsCountingBounds) {
  const EnumParams p = GetParam().p;
  auto r = enumerate_reachable_permutations(p);

  // (0) the search completed: every set-wise permutation is reachable.
  ASSERT_TRUE(r.rounds_to_complete.has_value())
      << "not complete after " << p.max_rounds
      << " rounds; reached " << r.reachable.back() << "/" << r.target;

  // (1) reachable(R) never exceeds inequality (1)'s per-round product.
  AemParams ap{.N = p.N, .M = p.M, .B = p.B, .omega = p.omega};
  const double lg_per_round = log2_perms_per_round(ap);
  for (std::size_t round = 0; round < r.reachable.size(); ++round) {
    // Ground truth must stay below the formula's bound (with the initial
    // block orderings folded in as the paper's B!^{N/B} normalization
    // allows; at round 0 the bound is the n! input-block orderings).
    const double lg_bound =
        static_cast<double>(round) * lg_per_round + 3.0;  // n! <= 8 slack
    EXPECT_LE(std::log2(static_cast<double>(r.reachable[round])), lg_bound)
        << GetParam().name << " round " << round;
  }

  // (2) the derived lower bound never exceeds the true optimum.
  const std::uint64_t derived = min_rounds_counting(ap);
  EXPECT_LE(derived, *r.rounds_to_complete)
      << GetParam().name << ": counting bound " << derived
      << " exceeds true optimum " << *r.rounds_to_complete;

  // (3) reachability grows monotonically.
  for (std::size_t i = 1; i < r.reachable.size(); ++i)
    EXPECT_GE(r.reachable[i], r.reachable[i - 1]);
}

INSTANTIATE_TEST_SUITE_P(
    Toys, EnumerateToyTest,
    ::testing::Values(
        ToyParam{{.N = 4, .M = 8, .B = 2, .omega = 1, .max_rounds = 8},
                 "N4_M8_B2_w1"},
        ToyParam{{.N = 4, .M = 8, .B = 2, .omega = 2, .max_rounds = 8},
                 "N4_M8_B2_w2"},
        ToyParam{{.N = 4, .M = 2, .B = 1, .omega = 1, .max_rounds = 12},
                 "N4_M2_B1_w1"},
        ToyParam{{.N = 4, .M = 2, .B = 1, .omega = 2, .max_rounds = 12},
                 "N4_M2_B1_w2"},
        ToyParam{{.N = 5, .M = 8, .B = 2, .omega = 1, .max_rounds = 8},
                 "N5_M8_B2_w1"},
        ToyParam{{.N = 6, .M = 8, .B = 2, .omega = 1, .max_rounds = 6},
                 "N6_M8_B2_w1"}),
    [](const ::testing::TestParamInfo<ToyParam>& info) {
      return std::string(info.param.name);
    });

TEST(EnumerateTest, MoreLocationsCannotHurt) {
  // Extra empty locations only add write targets: completion cannot get
  // slower, and reachability per round is monotone in L.
  auto tight = enumerate_reachable_permutations(
      {.N = 4, .M = 8, .B = 2, .omega = 1, .locations = 3, .max_rounds = 8});
  auto roomy = enumerate_reachable_permutations(
      {.N = 4, .M = 8, .B = 2, .omega = 1, .locations = 7, .max_rounds = 8});
  ASSERT_TRUE(roomy.rounds_to_complete.has_value());
  if (tight.rounds_to_complete.has_value())
    EXPECT_LE(*roomy.rounds_to_complete, *tight.rounds_to_complete);
  for (std::size_t r = 0;
       r < std::min(tight.reachable.size(), roomy.reachable.size()); ++r)
    EXPECT_GE(roomy.reachable[r], tight.reachable[r]);
}

TEST(EnumerateTest, OmegaScalesBudgetConsistently) {
  // The round budget omega*m scales with omega (a round is a COST window),
  // so completion-round counts stay comparable across omega; both machines
  // must complete and agree on the target.
  auto r1 = enumerate_reachable_permutations(
      {.N = 4, .M = 8, .B = 2, .omega = 1, .max_rounds = 8});
  auto r2 = enumerate_reachable_permutations(
      {.N = 4, .M = 8, .B = 2, .omega = 4, .max_rounds = 8});
  ASSERT_TRUE(r1.rounds_to_complete && r2.rounds_to_complete);
  EXPECT_EQ(r1.target, r2.target);
}

}  // namespace
