// Tests for the comparator sorting algorithms: the omega-oblivious EM
// mergesort (Aggarwal-Vitter) and AEM sample sort [7] — correctness across
// machine grids, write-efficiency of sample sort, write-heaviness of the
// oblivious sort (the property E3 measures).
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "bounds/sort_bounds.hpp"
#include "core/ext_array.hpp"
#include "core/machine.hpp"
#include "sort/em_mergesort.hpp"
#include "sort/mergesort.hpp"
#include "sort/samplesort.hpp"
#include "util/rng.hpp"

namespace {

using namespace aem;

Config cfg(std::size_t M, std::size_t B, std::uint64_t w) {
  Config c;
  c.memory_elems = M;
  c.block_elems = B;
  c.write_cost = w;
  return c;
}

ExtArray<std::uint64_t> stage(Machine& mach,
                              const std::vector<std::uint64_t>& host,
                              const char* name = "in") {
  ExtArray<std::uint64_t> arr(mach, host.size(), name);
  arr.unsafe_host_fill(host);
  return arr;
}

TEST(EmMergeSortTest, SortsCorrectly) {
  Machine mach(cfg(256, 16, 4));
  util::Rng rng(21);
  auto keys = util::random_keys(1 << 13, rng);
  auto in = stage(mach, keys);
  ExtArray<std::uint64_t> out(mach, keys.size(), "out");
  em_merge_sort(in, out);
  auto expect = keys;
  std::sort(expect.begin(), expect.end());
  EXPECT_EQ(out.unsafe_host_view(), expect);
  EXPECT_LE(mach.ledger().high_water(), 256u);
}

TEST(EmMergeSortTest, EdgeSizes) {
  Machine mach(cfg(128, 8, 2));
  for (std::size_t n : {0u, 1u, 7u, 8u, 9u, 65u}) {
    util::Rng rng(n + 1);
    auto keys = util::random_keys(n, rng);
    auto in = stage(mach, keys);
    ExtArray<std::uint64_t> out(mach, n, "out");
    em_merge_sort(in, out);
    auto expect = keys;
    std::sort(expect.begin(), expect.end());
    EXPECT_EQ(out.unsafe_host_view(), expect) << "n=" << n;
  }
}

TEST(EmMergeSortTest, WritesScaleWithReads) {
  // The oblivious sort writes as much as it reads (the flaw omega exposes).
  Machine mach(cfg(256, 16, 16));
  util::Rng rng(23);
  auto keys = util::random_keys(1 << 13, rng);
  auto in = stage(mach, keys);
  ExtArray<std::uint64_t> out(mach, keys.size(), "out");
  mach.reset_stats();
  em_merge_sort(in, out);
  const double ratio =
      double(mach.stats().writes) / double(mach.stats().reads);
  EXPECT_GT(ratio, 0.5);
  EXPECT_LT(ratio, 2.0);
}

TEST(EmMergeSortTest, ObliviousCostlierThanAwareAtHighOmega) {
  // E3's headline property at test scale: the omega-aware sort wins when
  // omega is large relative to m, i.e. log_{omega m} n << log_m n.  Here
  // m = 8, omega = 1024: the aware sort finishes in its base case
  // (N <= omega*M/2) while the oblivious one runs ~5 full read+write passes.
  const std::size_t N = 1 << 14;
  const std::uint64_t w = 1024;
  util::Rng rng(25);
  auto keys = util::random_keys(N, rng);

  Machine m1(cfg(64, 8, w));
  auto in1 = stage(m1, keys);
  ExtArray<std::uint64_t> out1(m1, N, "out");
  m1.reset_stats();
  aem_merge_sort(in1, out1);
  const auto aware = m1.cost();

  Machine m2(cfg(64, 8, w));
  auto in2 = stage(m2, keys);
  ExtArray<std::uint64_t> out2(m2, N, "out");
  m2.reset_stats();
  em_merge_sort(in2, out2);
  const auto oblivious = m2.cost();

  EXPECT_LT(aware * 2, oblivious)
      << "aware=" << aware << " oblivious=" << oblivious;
}

TEST(SampleSortTest, SortsCorrectly) {
  Machine mach(cfg(256, 16, 4));
  util::Rng rng(27);
  auto keys = util::random_keys(1 << 13, rng);
  auto in = stage(mach, keys);
  ExtArray<std::uint64_t> out(mach, keys.size(), "out");
  aem_sample_sort(in, out);
  auto expect = keys;
  std::sort(expect.begin(), expect.end());
  EXPECT_EQ(out.unsafe_host_view(), expect);
  EXPECT_LE(mach.ledger().high_water(), 256u);
}

TEST(SampleSortTest, AllEqualKeysTerminate) {
  // Degenerate splitters must not loop forever.
  Machine mach(cfg(128, 8, 2));
  std::vector<std::uint64_t> host(1 << 12, 42);
  auto in = stage(mach, host);
  ExtArray<std::uint64_t> out(mach, host.size(), "out");
  aem_sample_sort(in, out);
  EXPECT_EQ(out.unsafe_host_view(), host);
}

TEST(SampleSortTest, FewDistinctKeys) {
  Machine mach(cfg(128, 8, 4));
  util::Rng rng(29);
  std::vector<std::uint64_t> host(1 << 12);
  for (auto& v : host) v = rng.below(3);
  auto in = stage(mach, host);
  ExtArray<std::uint64_t> out(mach, host.size(), "out");
  aem_sample_sort(in, out);
  auto expect = host;
  std::sort(expect.begin(), expect.end());
  EXPECT_EQ(out.unsafe_host_view(), expect);
}

TEST(SampleSortTest, EdgeSizes) {
  Machine mach(cfg(128, 8, 2));
  for (std::size_t n : {0u, 1u, 9u, 513u}) {
    util::Rng rng(n + 3);
    auto keys = util::random_keys(n, rng);
    auto in = stage(mach, keys);
    ExtArray<std::uint64_t> out(mach, n, "out");
    aem_sample_sort(in, out);
    auto expect = keys;
    std::sort(expect.begin(), expect.end());
    EXPECT_EQ(out.unsafe_host_view(), expect) << "n=" << n;
  }
}

TEST(SampleSortTest, WriteEfficient) {
  // Writes per level ~ n: total writes should be well below reads when
  // omega is large (that is the point of the algorithm).
  Machine mach(cfg(256, 16, 16));
  util::Rng rng(31);
  auto keys = util::random_keys(1 << 14, rng);
  auto in = stage(mach, keys);
  ExtArray<std::uint64_t> out(mach, keys.size(), "out");
  mach.reset_stats();
  aem_sample_sort(in, out);
  EXPECT_LT(mach.stats().writes * 2, mach.stats().reads)
      << "writes=" << mach.stats().writes << " reads=" << mach.stats().reads;
}

TEST(SampleSortTest, CostWithinBoundModestOmega) {
  // For omega <= B the [7] bound O(omega n log_{omega m} n) applies.
  const std::size_t N = 1 << 14, M = 256, B = 16;
  const std::uint64_t w = 8;
  Machine mach(cfg(M, B, w));
  util::Rng rng(33);
  auto in = stage(mach, util::random_keys(N, rng));
  ExtArray<std::uint64_t> out(mach, N, "out");
  mach.reset_stats();
  aem_sample_sort(in, out);
  bounds::AemParams bp{.N = N, .M = M, .B = B, .omega = w};
  EXPECT_LE(double(mach.cost()), 60.0 * bounds::aem_sort_upper_bound(bp));
}

struct TriParam {
  std::size_t N, M, B;
  std::uint64_t omega;
};

class TriSortGridTest : public ::testing::TestWithParam<TriParam> {};

TEST_P(TriSortGridTest, AllThreeSortersAgree) {
  const auto p = GetParam();
  util::Rng rng(101 + p.N * 3 + p.omega);
  auto keys = util::random_keys(p.N, rng);
  auto expect = keys;
  std::sort(expect.begin(), expect.end());

  {
    Machine mach(cfg(p.M, p.B, p.omega));
    auto in = stage(mach, keys);
    ExtArray<std::uint64_t> out(mach, p.N, "out");
    aem_merge_sort(in, out);
    ASSERT_EQ(out.unsafe_host_view(), expect) << "aem_merge_sort";
  }
  {
    Machine mach(cfg(p.M, p.B, p.omega));
    auto in = stage(mach, keys);
    ExtArray<std::uint64_t> out(mach, p.N, "out");
    em_merge_sort(in, out);
    ASSERT_EQ(out.unsafe_host_view(), expect) << "em_merge_sort";
  }
  {
    Machine mach(cfg(p.M, p.B, p.omega));
    auto in = stage(mach, keys);
    ExtArray<std::uint64_t> out(mach, p.N, "out");
    aem_sample_sort(in, out);
    ASSERT_EQ(out.unsafe_host_view(), expect) << "aem_sample_sort";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, TriSortGridTest,
    ::testing::Values(TriParam{1 << 12, 128, 8, 1},
                      TriParam{1 << 12, 128, 8, 16},
                      TriParam{1 << 13, 256, 16, 4},
                      TriParam{1 << 13, 256, 16, 64},
                      TriParam{5000, 128, 16, 8},
                      TriParam{1 << 14, 512, 32, 2}),
    [](const ::testing::TestParamInfo<TriParam>& info) {
      const auto& p = info.param;
      std::string name = "N";
      name += std::to_string(p.N);
      name += "_M";
      name += std::to_string(p.M);
      name += "_B";
      name += std::to_string(p.B);
      name += "_w";
      name += std::to_string(p.omega);
      return name;
    });

}  // namespace
