// End-to-end tests of the recovery layer: every algorithm family (merge
// sort, sample sort, heap sort, permutation, SpMxV, the flash simulation)
// runs unmodified under a seeded nonzero fault schedule and still produces
// verified output, with the recovery work honestly charged in Q.  Plus the
// endurance/remap machinery: retired blocks migrate to spares preserving
// data, a worn-out pool surfaces as SparesExhausted, and unrecoverable
// corruption surfaces as FaultError.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/ext_array.hpp"
#include "core/faults.hpp"
#include "core/machine.hpp"
#include "core/remap.hpp"
#include "flash/simulate.hpp"
#include "permute/dispatch.hpp"
#include "permute/permutation.hpp"
#include "permute/sort_permute.hpp"
#include "pq/ext_pq.hpp"
#include "sort/mergesort.hpp"
#include "sort/samplesort.hpp"
#include "spmv/dispatch.hpp"
#include "spmv/matrix.hpp"
#include "spmv/semiring.hpp"
#include "util/rng.hpp"

namespace {

using namespace aem;

Config cfg(std::size_t M, std::size_t B, std::uint64_t w) {
  Config c;
  c.memory_elems = M;
  c.block_elems = B;
  c.write_cost = w;
  return c;
}

/// A moderate all-kinds fault schedule that a bounded retry budget always
/// survives (rates are low; max_retries is generous).  Routed through
/// from_env so the CI fault pass (AEM_FAULT_RATE / AEM_FAULT_SEED) can
/// crank these suite runs without touching exact-cost tests elsewhere.
FaultConfig moderate_faults(std::uint64_t seed) {
  FaultConfig c;
  c.seed = seed;
  c.read_fault_rate = 0.02;
  c.silent_write_rate = 0.01;
  c.torn_write_rate = 0.01;
  c.max_retries = 64;
  return FaultConfig::from_env(c);
}

/// Runs `algo` twice on identical inputs — clean machine vs fault-injected
/// machine — verifies the faulty run still matches `expect`, and returns
/// (clean Q, faulty Q).
template <class Algo>
std::pair<std::uint64_t, std::uint64_t> run_clean_vs_faulty(
    Config mc, const std::vector<std::uint64_t>& host,
    const std::vector<std::uint64_t>& expect, std::uint64_t seed,
    Algo&& algo) {
  std::uint64_t q_clean = 0;
  {
    Machine mach(mc);
    ExtArray<std::uint64_t> in(mach, host.size(), "in");
    in.unsafe_host_fill(host);
    ExtArray<std::uint64_t> out(mach, host.size(), "out");
    algo(in, out);
    EXPECT_EQ(out.unsafe_host_view(), expect);
    q_clean = mach.cost();
  }
  std::uint64_t q_faulty = 0;
  {
    Machine mach(mc);
    mach.install_faults(moderate_faults(seed));
    ExtArray<std::uint64_t> in(mach, host.size(), "in");
    in.unsafe_host_fill(host);
    ExtArray<std::uint64_t> out(mach, host.size(), "out");
    algo(in, out);
    // No endurance -> no remap, so the native region is the ground truth.
    EXPECT_EQ(out.unsafe_host_view(), expect);
    q_faulty = mach.cost();
    const FaultStats& fs = mach.faults()->stats();
    EXPECT_GT(fs.read_faults + fs.silent_write_faults + fs.torn_write_faults,
              0u)
        << "fault schedule never fired; the run proves nothing";
    EXPECT_GT(fs.read_retries + fs.write_retries + fs.checksum_failures +
                  fs.verify_failures,
              0u);
  }
  // Verify-after-write alone makes the faulty run strictly dearer.
  EXPECT_GT(q_faulty, q_clean);
  return {q_clean, q_faulty};
}

TEST(RecoverySuiteTest, MergeSortSurvivesFaults) {
  util::Rng rng(61);
  const auto host = util::random_keys(1 << 11, rng);
  auto expect = host;
  std::sort(expect.begin(), expect.end());
  run_clean_vs_faulty(cfg(256, 16, 8), host, expect, 101,
                      [](auto& in, auto& out) { aem_merge_sort(in, out); });
}

TEST(RecoverySuiteTest, SampleSortSurvivesFaults) {
  util::Rng rng(63);
  const auto host = util::random_keys(1 << 11, rng);
  auto expect = host;
  std::sort(expect.begin(), expect.end());
  run_clean_vs_faulty(cfg(256, 16, 8), host, expect, 103,
                      [](auto& in, auto& out) { aem_sample_sort(in, out); });
}

TEST(RecoverySuiteTest, HeapSortSurvivesFaults) {
  util::Rng rng(65);
  const auto host = util::random_keys(1 << 10, rng);
  auto expect = host;
  std::sort(expect.begin(), expect.end());
  run_clean_vs_faulty(cfg(256, 16, 4), host, expect, 105,
                      [](auto& in, auto& out) { aem_heap_sort(in, out); });
}

TEST(RecoverySuiteTest, PermuteSurvivesFaults) {
  util::Rng rng(67);
  const std::size_t N = 1 << 10;
  const auto host = util::random_keys(N, rng);
  const auto dest = perm::random(N, rng);
  std::vector<std::uint64_t> expect(N);
  for (std::size_t i = 0; i < N; ++i) expect[dest[i]] = host[i];
  run_clean_vs_faulty(cfg(128, 8, 4), host, expect, 107,
                      [&](auto& in, auto& out) {
                        permute(in, std::span<const std::uint64_t>(dest),
                                out);
                      });
}

TEST(RecoverySuiteTest, SpmvSurvivesFaults) {
  // double entries have no unique object representation, so this exercises
  // the dirty-flag (perfect device ECC) fallback of the recovery layer.
  using namespace aem::spmv;
  util::Rng rng(69);
  const std::uint64_t N = 256, delta = 4;
  auto conf = Conformation::delta_regular(N, delta, rng);
  std::vector<double> vals(conf.nnz());
  for (auto& v : vals) v = static_cast<double>(1 + rng.below(7));
  std::vector<double> xs(N);
  for (auto& v : xs) v = static_cast<double>(1 + rng.below(5));
  std::vector<double> expect(N, 0.0);
  for (std::size_t e = 0; e < conf.coords().size(); ++e)
    expect[conf.coords()[e].row] += vals[e] * xs[conf.coords()[e].col];

  auto run = [&](bool faulty) {
    Machine mach(cfg(256, 16, 4));
    if (faulty) mach.install_faults(moderate_faults(109));
    std::size_t vi = 0;
    SparseMatrix<double> A(mach, conf, [&](Coord) { return vals[vi++]; });
    ExtArray<double> x(mach, N, "x");
    x.unsafe_host_fill(xs);
    ExtArray<double> y(mach, N, "y");
    multiply(A, x, y, PlusTimes{});
    EXPECT_EQ(y.unsafe_host_view(), expect);
    return mach.cost();
  };
  const std::uint64_t q_clean = run(false);
  const std::uint64_t q_faulty = run(true);
  EXPECT_GT(q_faulty, q_clean);
}

TEST(RecoverySuiteTest, FlashSimulationSurvivesReadFaults) {
  // Read-fault-only schedule: write retries would re-emit identical atoms
  // into the trace and look like destroyed atoms to the Lemma 4.3 replay,
  // but transient read faults only add (charged) re-reads, which the
  // simulation must absorb without destroying a single atom.
  Config mc = cfg(128, 8, 4);
  Machine mach(mc);
  FaultConfig fc;
  fc.seed = 111;
  fc.read_fault_rate = 0.05;
  fc.verify_writes = false;  // keep the write path single-attempt
  fc.max_retries = 64;
  mach.install_faults(fc);

  util::Rng rng(71);
  const std::size_t N = 1 << 10;
  auto atoms = util::distinct_keys(N, rng);
  auto dest = perm::random(N, rng);
  ExtArray<std::uint64_t> in(mach, N, "in");
  in.unsafe_host_fill(atoms);
  in.set_atom_extractor([](const std::uint64_t& v) { return v; });
  ExtArray<std::uint64_t> out(mach, N, "out");
  out.set_atom_extractor([](const std::uint64_t& v) { return v; });
  mach.enable_trace();
  sort_permute(in, std::span<const std::uint64_t>(dest), out);
  ASSERT_GT(mach.faults()->stats().read_faults, 0u);

  auto trace = mach.take_trace();
  auto r = flash::simulate_permutation_trace(
      *trace, std::span<const std::uint64_t>(atoms), in.id(), 8, 4);
  EXPECT_EQ(r.destroyed_atoms, 0u);
  EXPECT_LE(static_cast<double>(r.total_volume()), r.volume_bound(8, 4));
}

TEST(RecoveryRemapTest, RetiredBlocksMigrateToSparesPreservingData) {
  Machine mach(cfg(64, 8, 2));
  FaultConfig c;
  c.seed = 3;
  c.endurance = 2;
  c.spare_blocks = 4;
  mach.install_faults(c);

  const std::size_t N = 24;  // 3 blocks of 8
  ExtArray<std::uint64_t> a(mach, N, "a");
  std::vector<std::uint64_t> host(N);
  for (std::size_t i = 0; i < N; ++i) host[i] = 1000 + i;
  a.unsafe_host_fill(host);

  // Hammer block 0 well past its endurance budget.
  std::vector<std::uint64_t> payload(8);
  for (std::uint64_t round = 0; round < 7; ++round) {
    for (std::size_t i = 0; i < 8; ++i) payload[i] = round * 100 + i;
    a.write_block(0, std::span<const std::uint64_t>(payload));
  }
  // endurance=2: native block 0 retires on the 3rd write, each spare
  // retires after two more -> two further migrations.
  EXPECT_EQ(a.remapped_blocks(), 1u);
  EXPECT_EQ(a.spares_used(), 3u);
  const FaultStats& fs = mach.faults()->stats();
  EXPECT_EQ(fs.remaps, 3u);
  EXPECT_EQ(fs.retired_blocks, 3u);
  EXPECT_GE(fs.retired_writes, 3u);

  // The charged read path transparently follows the remap: the last
  // payload survives even though the native region is stale.
  std::vector<std::uint64_t> got(8);
  a.read_block(0, std::span<std::uint64_t>(got));
  EXPECT_EQ(got, payload);
  // Untouched blocks are unaffected.
  a.read_block(1, std::span<std::uint64_t>(got));
  for (std::size_t i = 0; i < 8; ++i) EXPECT_EQ(got[i], host[8 + i]);

  // Keep hammering: the finite pool eventually runs dry, with the worn-out
  // device surfacing as SparesExhausted rather than silent data loss.
  try {
    for (int round = 0; round < 16; ++round)
      a.write_block(0, std::span<const std::uint64_t>(payload));
    FAIL() << "expected SparesExhausted";
  } catch (const SparesExhausted& e) {
    EXPECT_EQ(e.logical_block(), 0u);
    EXPECT_EQ(e.spare_capacity(), 4u);
    EXPECT_EQ(a.spares_used(), 4u);
  }
}

TEST(RecoveryRemapTest, TornWritesAreRepairedByVerify) {
  Machine mach(cfg(64, 8, 2));
  FaultConfig c;
  c.seed = 13;
  c.torn_write_rate = 0.5;
  c.max_retries = 64;
  mach.install_faults(c);

  const std::size_t N = 64;  // 8 blocks
  ExtArray<std::uint64_t> a(mach, N, "a");
  a.unsafe_host_fill(std::vector<std::uint64_t>(N, 7));  // old contents

  std::vector<std::uint64_t> payload(8);
  for (std::uint64_t bi = 0; bi < 8; ++bi) {
    for (std::size_t i = 0; i < 8; ++i) payload[i] = bi * 10 + i;
    a.write_block(bi, std::span<const std::uint64_t>(payload));
  }
  const FaultStats& fs = mach.faults()->stats();
  EXPECT_GT(fs.torn_write_faults, 0u);
  EXPECT_GT(fs.write_retries + fs.verify_failures, 0u);
  // Every block ends up holding the intended payload, not a torn mix.
  std::vector<std::uint64_t> got(8);
  for (std::uint64_t bi = 0; bi < 8; ++bi) {
    a.read_block(bi, std::span<std::uint64_t>(got));
    for (std::size_t i = 0; i < 8; ++i)
      EXPECT_EQ(got[i], bi * 10 + i) << "block " << bi << " elem " << i;
  }
}

TEST(RecoveryErrorTest, UnrecoverableReadThrowsFaultError) {
  Machine mach(cfg(64, 8, 1));
  FaultConfig c;
  c.read_fault_rate = 1.0;  // every delivery corrupt: retries cannot help
  c.max_retries = 2;
  mach.install_faults(c);
  ExtArray<std::uint64_t> a(mach, 8, "a");
  a.unsafe_host_fill(std::vector<std::uint64_t>(8, 1));
  std::vector<std::uint64_t> dst(8);
  try {
    a.read_block(0, std::span<std::uint64_t>(dst));
    FAIL() << "expected FaultError";
  } catch (const FaultError& e) {
    EXPECT_FALSE(e.is_write());
    EXPECT_EQ(e.array(), a.id());
    EXPECT_EQ(e.block(), 0u);
    EXPECT_EQ(e.attempts(), 3u);  // initial try + max_retries
  }
  // The failed attempts were still charged.
  EXPECT_EQ(mach.stats().reads, 3u);
}

TEST(RecoveryErrorTest, UnrecoverableWriteThrowsFaultError) {
  Machine mach(cfg(64, 8, 4));
  FaultConfig c;
  c.silent_write_rate = 1.0;  // every attempt silently corrupts
  c.max_retries = 1;
  mach.install_faults(c);
  ExtArray<std::uint64_t> a(mach, 8, "a");
  const std::vector<std::uint64_t> src(8, 9);
  try {
    a.write_block(0, std::span<const std::uint64_t>(src));
    FAIL() << "expected FaultError";
  } catch (const FaultError& e) {
    EXPECT_TRUE(e.is_write());
    EXPECT_EQ(e.attempts(), 2u);
  }
  // Each attempt = one write plus its verify read, all charged.
  EXPECT_EQ(mach.stats().writes, 2u);
  EXPECT_EQ(mach.stats().reads, 2u);
}

TEST(RecoveryErrorTest, DisablingVerifyLetsSilentFaultsPass) {
  // With verify_writes off the device really is allowed to lie: the write
  // reports success and only a later read notices the corruption.
  Machine mach(cfg(64, 8, 1));
  FaultConfig c;
  c.seed = 17;
  c.silent_write_rate = 1.0;
  c.verify_writes = false;
  c.max_retries = 2;
  mach.install_faults(c);
  ExtArray<std::uint64_t> a(mach, 8, "a");
  const std::vector<std::uint64_t> src(8, 9);
  EXPECT_NO_THROW(a.write_block(0, std::span<const std::uint64_t>(src)));
  EXPECT_EQ(mach.stats().writes, 1u);  // reported success, no verify read
  EXPECT_EQ(mach.stats().reads, 0u);
  std::vector<std::uint64_t> dst(8);
  // The stored block is corrupt and stays corrupt: the checksum catches it
  // on every (charged) read attempt until the retry budget runs out.
  EXPECT_THROW(a.read_block(0, std::span<std::uint64_t>(dst)), FaultError);
  EXPECT_GT(mach.faults()->stats().checksum_failures, 0u);
}

}  // namespace
