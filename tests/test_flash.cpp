// Tests for flash/: the unit-cost flash machine, and the Lemma 4.3
// simulation of AEM permutation programs — consistency of the replay and
// the 2N + 2QB/omega volume bound on real traces.
#include <gtest/gtest.h>

#include <vector>

#include "core/ext_array.hpp"
#include "core/machine.hpp"
#include "flash/flash_machine.hpp"
#include "flash/simulate.hpp"
#include "permute/naive.hpp"
#include "permute/permutation.hpp"
#include "permute/sort_permute.hpp"
#include "util/rng.hpp"

namespace {

using namespace aem;
using namespace aem::flash;

TEST(FlashConfigTest, ForAemValidation) {
  auto cfg = FlashConfig::for_aem(64, 8);
  EXPECT_EQ(cfg.read_block, 8u);
  EXPECT_EQ(cfg.write_block, 64u);
  EXPECT_EQ(cfg.ratio(), 8u);
  EXPECT_THROW(FlashConfig::for_aem(64, 5), std::invalid_argument);   // 64%5
  EXPECT_THROW(FlashConfig::for_aem(8, 16), std::invalid_argument);   // B<omega
  EXPECT_THROW(FlashConfig::for_aem(64, 0), std::invalid_argument);
}

TEST(FlashMachineTest, VolumeAccounting) {
  FlashMachine m(FlashConfig{4, 16});
  m.read_small();
  m.read_small(3);
  m.write_big();
  m.scan(100);
  EXPECT_EQ(m.read_ops(), 4u);
  EXPECT_EQ(m.write_ops(), 1u);
  EXPECT_EQ(m.read_volume(), 16u);
  EXPECT_EQ(m.write_volume(), 16u);
  EXPECT_EQ(m.scan_volume(), 100u);
  EXPECT_EQ(m.total_volume(), 132u);
}

struct SimSetup {
  std::size_t N, M, B;
  std::uint64_t omega;
};

FlashSimResult run_sim(const SimSetup& s, bool use_sort, unsigned seed) {
  Config cfg;
  cfg.memory_elems = s.M;
  cfg.block_elems = s.B;
  cfg.write_cost = s.omega;
  Machine mach(cfg);
  util::Rng rng(seed);
  auto atoms = util::distinct_keys(s.N, rng);  // atom id == value
  auto dest = perm::random(s.N, rng);

  ExtArray<std::uint64_t> in(mach, s.N, "in");
  in.unsafe_host_fill(atoms);
  in.set_atom_extractor([](const std::uint64_t& v) { return v; });
  ExtArray<std::uint64_t> out(mach, s.N, "out");
  out.set_atom_extractor([](const std::uint64_t& v) { return v; });
  mach.enable_trace();
  if (use_sort) {
    sort_permute(in, std::span<const std::uint64_t>(dest), out);
  } else {
    naive_permute(in, std::span<const std::uint64_t>(dest), out);
  }
  auto trace = mach.take_trace();
  return simulate_permutation_trace(
      *trace, std::span<const std::uint64_t>(atoms), in.id(), s.B, s.omega);
}

TEST(FlashSimTest, NaivePermuteConsistent) {
  auto r = run_sim({1 << 10, 128, 8, 4}, /*use_sort=*/false, 7);
  EXPECT_EQ(r.destroyed_atoms, 0u);
  EXPECT_GT(r.write_ops, 0u);
  EXPECT_GT(r.read_ops, 0u);
  EXPECT_EQ(r.scan_volume, 2u << 10);
}

TEST(FlashSimTest, SortPermuteConsistent) {
  auto r = run_sim({1 << 10, 128, 8, 4}, /*use_sort=*/true, 9);
  EXPECT_EQ(r.destroyed_atoms, 0u);
  EXPECT_GT(r.write_ops, 0u);
}

TEST(FlashSimTest, VolumeWithinLemma43Bound) {
  for (const SimSetup s : {SimSetup{1 << 10, 128, 8, 4},
                           SimSetup{1 << 11, 128, 8, 2},
                           SimSetup{1 << 11, 256, 16, 8},
                           SimSetup{1 << 12, 256, 32, 4}}) {
    for (bool use_sort : {false, true}) {
      auto r = run_sim(s, use_sort, 11 + unsigned(s.N));
      EXPECT_LE(double(r.total_volume()), r.volume_bound(s.B, s.omega))
          << "N=" << s.N << " B=" << s.B << " w=" << s.omega
          << " sort=" << use_sort << " volume=" << r.total_volume()
          << " bound=" << r.volume_bound(s.B, s.omega);
      EXPECT_EQ(r.destroyed_atoms, 0u);
    }
  }
}

TEST(FlashSimTest, ReadVolumeReflectsUsefulFraction) {
  // In the naive program each read typically consumes few atoms, so the
  // small-block covers should be far below whole-block reads: the read
  // volume must be below (AEM reads) * B and usually near (AEM reads) * B/w.
  const SimSetup s{1 << 11, 128, 8, 4};
  auto r = run_sim(s, false, 13);
  // Naive permute: ~N reads each consuming ~1 atom -> ~N small blocks of
  // B/w = 2 elements each.
  EXPECT_LT(r.read_volume, std::uint64_t(s.N) * s.B);
  EXPECT_GE(r.read_volume, std::uint64_t(s.N) * (s.B / s.omega) / 2);
}

TEST(FlashSimTest, RejectsInconsistentTrace) {
  // A read claiming to use an atom that was never written to its block
  // must be detected.
  Trace t;
  IoTicket w = t.add(OpKind::kWrite, 0, 0);
  t.set_atoms(w, {1, 2, 3});
  IoTicket r = t.add(OpKind::kRead, 0, 0);
  t.mark_used(r, 99);  // bogus atom
  std::vector<std::uint64_t> input;
  EXPECT_THROW(simulate_permutation_trace(
                   t, std::span<const std::uint64_t>(input), 42, 8, 2),
               std::logic_error);
}

TEST(FlashSimTest, CountsDestroyedAtoms) {
  // Overwriting a block whose atoms were never consumed destroys them.
  Trace t;
  IoTicket w1 = t.add(OpKind::kWrite, 0, 0);
  t.set_atoms(w1, {1, 2, 3});
  IoTicket w2 = t.add(OpKind::kWrite, 0, 0);
  t.set_atoms(w2, {4, 5, 6});
  std::vector<std::uint64_t> input;
  auto r = simulate_permutation_trace(
      t, std::span<const std::uint64_t>(input), 42, 8, 2);
  EXPECT_EQ(r.destroyed_atoms, 3u);
}

TEST(FlashSimTest, ContiguityViolationDetected) {
  // Two reads interleaving their consumption of one block so that neither
  // forms a contiguous normalized interval is impossible (normalization
  // sorts by removal time), but a single read consuming twice from
  // DIFFERENT instances must still resolve correctly: rewrite the block
  // between reads and consume the stale atom -> inconsistency.
  Trace t;
  IoTicket w1 = t.add(OpKind::kWrite, 0, 0);
  t.set_atoms(w1, {1, 2});
  IoTicket w2 = t.add(OpKind::kWrite, 0, 0);
  t.set_atoms(w2, {3, 4});
  IoTicket r = t.add(OpKind::kRead, 0, 0);
  t.mark_used(r, 1);  // atom 1 lives in the OLD instance only
  std::vector<std::uint64_t> input;
  EXPECT_THROW(simulate_permutation_trace(
                   t, std::span<const std::uint64_t>(input), 42, 8, 2),
               std::logic_error);
}

TEST(FlashSimTest, LemmaPreconditionEnforced) {
  Trace t;
  std::vector<std::uint64_t> input;
  EXPECT_THROW(simulate_permutation_trace(
                   t, std::span<const std::uint64_t>(input), 0, 8, 3),
               std::invalid_argument);  // B not a multiple of omega
}

}  // namespace
