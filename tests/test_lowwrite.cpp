// Tests for the low-write algorithm suite (docs/MODEL.md section 18):
// mul_sat / SortBudget saturation at extreme omega, the read-favoring
// sample sort (sort/lowwrite_samplesort.hpp), the buffered-heap PQ tuning
// (PqTuning::kBuffered), and the write-efficient batched store puts
// (KvStore::put_inline_batch) — correctness, charge pinning, the omega = 1
// identity guards, and a randomized put/get/scan property test on plain
// and sharded machines.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <functional>
#include <limits>
#include <optional>
#include <queue>
#include <span>
#include <stdexcept>
#include <utility>
#include <vector>

#include "core/ext_array.hpp"
#include "core/machine.hpp"
#include "core/sharding.hpp"
#include "pq/ext_pq.hpp"
#include "sort/budget.hpp"
#include "sort/lowwrite_samplesort.hpp"
#include "sort/mergesort.hpp"
#include "sort/samplesort.hpp"
#include "store/kv_store.hpp"
#include "util/math.hpp"
#include "util/rng.hpp"

namespace {

using namespace aem;
using store::IndexKind;
using store::KvStore;
using store::Slot;
using store::StoreConfig;
using store::StoreStats;

Config cfg(std::size_t M, std::size_t B, std::uint64_t w) {
  Config c;
  c.memory_elems = M;
  c.block_elems = B;
  c.write_cost = w;
  return c;
}

ExtArray<std::uint64_t> stage(Machine& mach,
                              const std::vector<std::uint64_t>& host,
                              const char* name = "in") {
  ExtArray<std::uint64_t> arr(mach, host.size(), name);
  arr.unsafe_host_fill(host);
  return arr;
}

// --- mul_sat / SortBudget saturation (the fanout-wrap bugfix) -------------

TEST(MulSatTest, SaturatesInsteadOfWrapping) {
  EXPECT_EQ(util::mul_sat(0, 123), 0u);
  EXPECT_EQ(util::mul_sat(123, 0), 0u);
  EXPECT_EQ(util::mul_sat(std::uint64_t{1} << 20, std::uint64_t{1} << 20),
            std::uint64_t{1} << 40);
  EXPECT_EQ(util::mul_sat(UINT64_MAX, 1), UINT64_MAX);
  EXPECT_EQ(util::mul_sat(1, UINT64_MAX), UINT64_MAX);
  EXPECT_EQ(util::mul_sat(UINT64_MAX, 2), UINT64_MAX);
  EXPECT_EQ(util::mul_sat(std::uint64_t{1} << 33, std::uint64_t{1} << 33),
            UINT64_MAX);
  // The exact boundary: floor(UINT64_MAX / 3) * 3 fits, one more saturates.
  const std::uint64_t third = UINT64_MAX / 3;
  EXPECT_EQ(util::mul_sat(third, 3), third * 3);
  EXPECT_EQ(util::mul_sat(third + 1, 3), UINT64_MAX);
}

TEST(SortBudgetTest, FanoutClampsAtExtremeOmega) {
  // M = 64, B = 8: m_eff = 2, small_batch = 32.  The clamp edge sits at
  // omega = 2^30 (omega * m_eff == 2^31 == kMaxFanout exactly).
  {
    Machine mach(cfg(64, 8, (std::uint64_t{1} << 30) - 1));
    EXPECT_EQ(SortBudget::from(mach).fanout, (std::size_t{1} << 31) - 2);
  }
  {
    Machine mach(cfg(64, 8, std::uint64_t{1} << 30));
    EXPECT_EQ(SortBudget::from(mach).fanout, SortBudget::kMaxFanout);
  }
  {
    Machine mach(cfg(64, 8, (std::uint64_t{1} << 30) + 1));
    EXPECT_EQ(SortBudget::from(mach).fanout, SortBudget::kMaxFanout);
  }
  {
    // The motivating regression: omega = 2^40 wrapped omega * m_eff * ...
    // nowhere near — it produced 2^41 mod 2^64 fine, but the ISSUE case is
    // the clamp: the fanout must park at kMaxFanout, and base (2^40 * 32)
    // must come through exactly, unwrapped.
    Machine mach(cfg(64, 8, std::uint64_t{1} << 40));
    const SortBudget b = SortBudget::from(mach);
    EXPECT_EQ(b.fanout, SortBudget::kMaxFanout);
    EXPECT_EQ(b.base, std::size_t{1} << 45);
  }
  {
    // omega = 2^63: omega * m_eff and omega * small_batch both overflow
    // 64 bits; pre-fix the wrapped products poisoned fanout (0 violates
    // every d >= 2 precondition) and base (0 spins make_chunks forever).
    Machine mach(cfg(64, 8, std::uint64_t{1} << 63));
    const SortBudget b = SortBudget::from(mach);
    EXPECT_EQ(b.fanout, SortBudget::kMaxFanout);
    EXPECT_EQ(b.base, std::numeric_limits<std::size_t>::max());
  }
  {
    Machine mach(cfg(64, 8, UINT64_MAX));
    const SortBudget b = SortBudget::from(mach);
    EXPECT_EQ(b.fanout, SortBudget::kMaxFanout);
    EXPECT_EQ(b.base, std::numeric_limits<std::size_t>::max());
    // A saturated base routes every input to the base case — which must
    // still sort.
    util::Rng rng(17);
    auto keys = util::random_keys(200, rng);
    auto in = stage(mach, keys);
    ExtArray<std::uint64_t> out(mach, keys.size(), "out");
    aem_merge_sort(in, out);
    auto expect = keys;
    std::sort(expect.begin(), expect.end());
    EXPECT_EQ(out.unsafe_host_view(), expect);
  }
}

// --- read-favoring sample sort --------------------------------------------

TEST(LowWriteSampleSortTest, SortsAcrossGeometries) {
  const struct {
    std::size_t M, B, N;
    std::uint64_t w;
  } cases[] = {
      {1024, 16, 20000, 16}, {1024, 16, 65536, 64}, {4096, 16, 40000, 16},
      {256, 8, 5000, 32},    {1024, 16, 1, 16},     {1024, 16, 0, 16},
  };
  for (const auto& c : cases) {
    Machine mach(cfg(c.M, c.B, c.w));
    util::Rng rng(c.N + 31);
    auto keys = util::random_keys(c.N, rng);
    auto in = stage(mach, keys);
    ExtArray<std::uint64_t> out(mach, c.N, "out");
    aem_lowwrite_sample_sort(in, out);
    auto expect = keys;
    std::sort(expect.begin(), expect.end());
    EXPECT_EQ(out.unsafe_host_view(), expect)
        << "M=" << c.M << " B=" << c.B << " N=" << c.N << " w=" << c.w;
    EXPECT_LE(mach.ledger().high_water(), c.M)
        << "M=" << c.M << " B=" << c.B << " N=" << c.N << " w=" << c.w;
  }
}

TEST(LowWriteSampleSortTest, HeavyDuplicatesAndAllEqual) {
  {
    // Tiny alphabet: most splitter candidates collide, so the distinct
    // filter and the depth guard carry the recursion.
    Machine mach(cfg(1024, 16, 16));
    util::Rng rng(37);
    std::vector<std::uint64_t> keys(30000);
    for (auto& k : keys) k = rng.below(4);
    auto in = stage(mach, keys);
    ExtArray<std::uint64_t> out(mach, keys.size(), "out");
    aem_lowwrite_sample_sort(in, out);
    auto expect = keys;
    std::sort(expect.begin(), expect.end());
    EXPECT_EQ(out.unsafe_host_view(), expect);
  }
  {
    // All equal: the sample is fully degenerate (zero distinct splitters)
    // on every level until the depth guard hands off to small_sort.
    Machine mach(cfg(1024, 16, 16));
    std::vector<std::uint64_t> keys(20000, 42);
    auto in = stage(mach, keys);
    ExtArray<std::uint64_t> out(mach, keys.size(), "out");
    aem_lowwrite_sample_sort(in, out);
    EXPECT_EQ(out.unsafe_host_view(), keys);
  }
}

TEST(LowWriteSampleSortTest, CustomComparatorDescending) {
  Machine mach(cfg(1024, 16, 16));
  util::Rng rng(41);
  auto keys = util::random_keys(30000, rng);
  auto in = stage(mach, keys);
  ExtArray<std::uint64_t> out(mach, keys.size(), "out");
  // Non-default Less: exercises the std::upper_bound window fallback.
  aem_lowwrite_sample_sort(in, out, std::greater<std::uint64_t>{});
  auto expect = keys;
  std::sort(expect.begin(), expect.end(), std::greater<std::uint64_t>{});
  EXPECT_EQ(out.unsafe_host_view(), expect);
}

TEST(LowWriteSampleSortTest, OmegaOneChargeIdenticalToSampleSort) {
  util::Rng rng(43);
  auto keys = util::random_keys(30000, rng);

  Machine lw(cfg(1024, 16, 1));
  auto in1 = stage(lw, keys);
  ExtArray<std::uint64_t> out1(lw, keys.size(), "out");
  aem_lowwrite_sample_sort(in1, out1);

  Machine classic(cfg(1024, 16, 1));
  auto in2 = stage(classic, keys);
  ExtArray<std::uint64_t> out2(classic, keys.size(), "out");
  aem_sample_sort(in2, out2);

  EXPECT_EQ(lw.stats(), classic.stats());
  EXPECT_EQ(lw.cost(), classic.cost());
  EXPECT_EQ(out1.unsafe_host_view(), out2.unsafe_host_view());
}

TEST(LowWriteSampleSortTest, TradesReadsForWritesAtHighOmega) {
  // The acceptance inequality: at omega >= 16 on an input that actually
  // distributes (N > omega * M/2), strictly fewer charged writes AND
  // strictly more charged reads than the omega-aware mergesort.
  const std::size_t M = 1024, B = 16, N = 65536;
  const std::uint64_t w = 16;  // base = 8192 < N
  util::Rng rng(47);
  auto keys = util::random_keys(N, rng);

  Machine ms(cfg(M, B, w));
  auto in1 = stage(ms, keys);
  ExtArray<std::uint64_t> out1(ms, N, "out");
  aem_merge_sort(in1, out1);

  Machine lw(cfg(M, B, w));
  auto in2 = stage(lw, keys);
  ExtArray<std::uint64_t> out2(lw, N, "out");
  aem_lowwrite_sample_sort(in2, out2);

  EXPECT_EQ(out1.unsafe_host_view(), out2.unsafe_host_view());
  EXPECT_LT(lw.stats().writes, ms.stats().writes);
  EXPECT_GT(lw.stats().reads, ms.stats().reads);
}

// --- buffered-heap priority queue -----------------------------------------

TEST(BufferedPqTest, InterleavedMatchesStdPriorityQueue) {
  Machine mach(cfg(256, 16, 16));
  ExtPriorityQueue<std::uint64_t> pq(mach, 0, std::less<std::uint64_t>{},
                                     PqTuning::kBuffered);
  ASSERT_EQ(pq.tuning(), PqTuning::kBuffered);  // fanout 64 > m_eff 4
  std::priority_queue<std::uint64_t, std::vector<std::uint64_t>,
                      std::greater<std::uint64_t>>
      ref;
  util::Rng rng(53);
  for (std::size_t step = 0; step < 20000; ++step) {
    if (ref.empty() || rng.below(100) < 60) {
      const std::uint64_t v = rng.next();
      pq.push(v);
      ref.push(v);
    } else {
      ASSERT_EQ(pq.pop_min(), ref.top());
      ref.pop();
    }
    ASSERT_EQ(pq.size(), ref.size());
  }
  while (!ref.empty()) {
    ASSERT_EQ(pq.pop_min(), ref.top());
    ref.pop();
  }
  EXPECT_TRUE(pq.empty());
  EXPECT_LE(mach.ledger().high_water(), 256u);
}

TEST(BufferedPqTest, RefillSurvivorBoundHolds) {
  // min_cap = M/8 = 32 at B = 16 -> head_cap = 2: a refill may keep at most
  // two surviving run cursors resident no matter how many raw runs exist.
  // A full drain after many small flushes exercises the bound (refill
  // throws logic_error if it is ever violated).
  Machine mach(cfg(256, 16, 32));
  ExtPriorityQueue<std::uint64_t> pq(mach, 0, std::less<std::uint64_t>{},
                                     PqTuning::kBuffered);
  util::Rng rng(59);
  auto keys = util::random_keys(20000, rng);
  for (std::uint64_t k : keys) pq.push(k);
  std::sort(keys.begin(), keys.end());
  for (std::uint64_t k : keys) ASSERT_EQ(pq.pop_min(), k);
  EXPECT_TRUE(pq.empty());
}

TEST(BufferedPqTest, DowngradesToLegacyAtOmegaOne) {
  Machine mach(cfg(256, 16, 1));
  ExtPriorityQueue<std::uint64_t> pq(mach, 0, std::less<std::uint64_t>{},
                                     PqTuning::kBuffered);
  EXPECT_EQ(pq.tuning(), PqTuning::kLegacy);  // fanout == m_eff: no gain

  // And the downgrade is charge-identical end to end.
  util::Rng rng(61);
  auto keys = util::random_keys(20000, rng);
  Machine leg(cfg(4096, 16, 1));
  auto in1 = stage(leg, keys);
  ExtArray<std::uint64_t> out1(leg, keys.size(), "out");
  aem_heap_sort(in1, out1, std::less<std::uint64_t>{}, PqTuning::kLegacy);
  Machine buf(cfg(4096, 16, 1));
  auto in2 = stage(buf, keys);
  ExtArray<std::uint64_t> out2(buf, keys.size(), "out");
  aem_heap_sort(in2, out2, std::less<std::uint64_t>{}, PqTuning::kBuffered);
  EXPECT_EQ(leg.stats(), buf.stats());
  EXPECT_EQ(leg.cost(), buf.cost());
  EXPECT_EQ(out1.unsafe_host_view(), out2.unsafe_host_view());
}

TEST(BufferedPqTest, StrictlyFewerWritesThanLegacyAtHighOmega) {
  // M = 4096, B = 16: insert buffer 512, m_eff = 64.  N = 40960 makes 80
  // level-0 runs, so the legacy queue cascades (width 64) and pays a
  // rewrite pass the buffered tuning (width omega * 64 = 1024) absorbs.
  const std::size_t N = 40960;
  util::Rng rng(67);
  auto keys = util::random_keys(N, rng);

  Machine leg(cfg(4096, 16, 16));
  auto in1 = stage(leg, keys);
  ExtArray<std::uint64_t> out1(leg, N, "out");
  aem_heap_sort(in1, out1, std::less<std::uint64_t>{}, PqTuning::kLegacy);

  Machine buf(cfg(4096, 16, 16));
  auto in2 = stage(buf, keys);
  ExtArray<std::uint64_t> out2(buf, N, "out");
  aem_heap_sort(in2, out2, std::less<std::uint64_t>{}, PqTuning::kBuffered);

  EXPECT_EQ(out1.unsafe_host_view(), out2.unsafe_host_view());
  EXPECT_LT(buf.stats().writes, leg.stats().writes);
}

// --- batched store puts ---------------------------------------------------

/// Builds a fence store of `records` inline records with keys
/// 10, 20, 30, ... so the key -> log-page mapping is known by construction
/// (B records per page, in key order).
KvStore known_store(Machine& mach, std::size_t records) {
  std::vector<Slot> slots;
  for (std::size_t i = 0; i < records; ++i)
    slots.push_back(Slot{10 * (i + 1), 1, i});
  ExtArray<Slot> arr(mach, slots.size(), "input.slots");
  arr.unsafe_host_fill(std::span<const Slot>(slots));
  ExtArray<std::uint64_t> payload(mach, 0, "input.payload");
  KvStore kv(mach, StoreConfig{IndexKind::kFence});
  kv.build(arr, payload);
  return kv;
}

TEST(KvStorePutBatchTest, AbsorbsPageGroupsAtOneReadOneWrite) {
  Machine mach(cfg(4096, 16, 8));
  KvStore kv = known_store(mach, 64);  // 4 log pages of B = 16 slots

  using Op = std::pair<std::uint64_t, std::uint64_t>;
  // Eight hits, all on page 0 (keys 10..160): ONE read, ONE write.
  {
    std::vector<Op> ops;
    for (std::uint64_t k = 1; k <= 8; ++k) ops.emplace_back(10 * k, 7000 + k);
    const IoStats before = mach.stats();
    EXPECT_EQ(kv.put_inline_batch(ops), 8u);
    EXPECT_EQ(kv.stats().put_log_reads, 1u);
    EXPECT_EQ(kv.stats().put_writes, 1u);
    const IoStats d = mach.stats() - before;
    EXPECT_EQ(d.reads, 1u);
    EXPECT_EQ(d.writes, 1u);
  }
  // Keys below every stored key: free misses — zero I/O.
  {
    const std::vector<Op> ops = {{1, 1}, {2, 2}, {3, 3}};
    const IoStats before = mach.stats();
    EXPECT_EQ(kv.put_inline_batch(ops), 0u);
    EXPECT_EQ(mach.stats() - before, IoStats{});
    EXPECT_EQ(kv.stats().put_log_reads, 1u);  // unchanged
  }
  // An in-page miss (key 15 falls between 10 and 20) reads its group's page
  // but dirties nothing: one read, zero writes.
  {
    const std::vector<Op> ops = {{15, 9}};
    const IoStats before = mach.stats();
    EXPECT_EQ(kv.put_inline_batch(ops), 0u);
    const IoStats d = mach.stats() - before;
    EXPECT_EQ(d.reads, 1u);
    EXPECT_EQ(d.writes, 0u);
  }
  // Hits on pages 0 and 3 (keys 10 and 640): two groups, 2 reads, 2 writes.
  {
    const std::vector<Op> ops = {{640, 1}, {10, 2}, {20, 3}};
    const IoStats before = mach.stats();
    EXPECT_EQ(kv.put_inline_batch(ops), 3u);
    const IoStats d = mach.stats() - before;
    EXPECT_EQ(d.reads, 2u);
    EXPECT_EQ(d.writes, 2u);
  }
  // The new values are durably in place.
  auto v = kv.get(10);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ((*v)[0], 2u);
}

TEST(KvStorePutBatchTest, BatchOfOneChargesLikePutInline) {
  for (const std::uint64_t key : {std::uint64_t{30}, std::uint64_t{35},
                                  std::uint64_t{1}}) {  // hit, miss, free miss
    Machine a(cfg(4096, 16, 8));
    KvStore ka = known_store(a, 64);
    Machine b(cfg(4096, 16, 8));
    KvStore kb = known_store(b, 64);

    const IoStats before_a = a.stats();
    const IoStats before_b = b.stats();
    ka.put_inline(key, 99);
    const std::vector<std::pair<std::uint64_t, std::uint64_t>> ops = {
        {key, 99}};
    kb.put_inline_batch(ops);
    EXPECT_EQ(a.stats() - before_a, b.stats() - before_b) << "key=" << key;
    EXPECT_EQ(a.cost(), b.cost()) << "key=" << key;
    EXPECT_EQ(ka.stats(), kb.stats()) << "key=" << key;
  }
}

TEST(KvStorePutBatchTest, CompactIndexFallsBackToSequential) {
  // kCompact cannot place keys host-side; the batch must charge exactly
  // like the per-op loop (same fallback rule as the batched scan path).
  std::vector<Slot> slots;
  for (std::size_t i = 0; i < 64; ++i) slots.push_back(Slot{10 * (i + 1), 1, i});
  auto build = [&](Machine& mach, IndexKind kind) {
    ExtArray<Slot> arr(mach, slots.size(), "input.slots");
    arr.unsafe_host_fill(std::span<const Slot>(slots));
    ExtArray<std::uint64_t> payload(mach, 0, "input.payload");
    KvStore kv(mach, StoreConfig{kind});
    kv.build(arr, payload);
    return kv;
  };
  std::vector<std::pair<std::uint64_t, std::uint64_t>> ops;
  util::Rng rng(71);
  for (std::size_t i = 0; i < 32; ++i)
    ops.emplace_back(10 * (1 + rng.below(64)), rng.next());

  Machine a(cfg(4096, 16, 8));
  KvStore ka = build(a, IndexKind::kCompact);
  const IoStats before_a = a.stats();
  for (const auto& [k, v] : ops) ka.put_inline(k, v);
  const IoStats seq = a.stats() - before_a;

  Machine b(cfg(4096, 16, 8));
  KvStore kb = build(b, IndexKind::kCompact);
  const IoStats before_b = b.stats();
  kb.put_inline_batch(ops);
  EXPECT_EQ(b.stats() - before_b, seq);
  EXPECT_EQ(ka.stats(), kb.stats());
}

/// The randomized property test of the PR: per-op, batched, and
/// batched-on-sharded stores driven through identical put/get/scan
/// interleavings must agree on every result and on every semantic counter —
/// in particular orphaned_words, where a batched put that hits the same
/// spilled slot twice in one group could double-count the stranded payload.
TEST(KvStorePutBatchTest, RandomizedInterleavingsMatchPerOpAndSharded) {
  const std::size_t records = 512;
  util::Rng wrng(73);
  std::vector<Slot> slots;
  std::vector<std::uint64_t> payload;
  std::vector<std::uint64_t> keys;
  for (std::size_t i = 0; i < records; ++i) {
    Slot s;
    s.key = wrng.next() & ~1ull;
    keys.push_back(s.key);
    if (wrng.below(100) < 30) {  // spilled: the orphan fodder
      s.len = 2 + wrng.below(20);
      s.pos = payload.size();
      for (std::uint64_t j = 0; j < s.len; ++j) payload.push_back(wrng.next());
    } else {
      s.len = 1;
      s.pos = wrng.next();
    }
    slots.push_back(s);
  }

  struct Store {
    Machine* mach;
    KvStore kv;
  };
  auto build = [&](Machine& mach) {
    ExtArray<Slot> arr(mach, slots.size(), "input.slots");
    arr.unsafe_host_fill(std::span<const Slot>(slots));
    ExtArray<std::uint64_t> pay(mach, payload.size(), "input.payload");
    pay.unsafe_host_fill(std::span<const std::uint64_t>(payload));
    KvStore kv(mach, StoreConfig{IndexKind::kFence});
    kv.build(arr, pay);
    return kv;
  };

  Machine perop_m(cfg(4096, 16, 8));
  KvStore perop = build(perop_m);
  Machine batch_m(cfg(4096, 16, 8));
  KvStore batch = build(batch_m);
  ShardConfig sc;
  sc.frontend = cfg(4096, 16, 8);
  sc.devices.assign(4, cfg(4096, 16, 8));
  sc.placement = Placement::kRoundRobin;
  ShardedMachine shard_m(sc);
  KvStore shard = build(shard_m);

  util::Rng rng(79);
  auto some_key = [&]() -> std::uint64_t {
    const std::uint64_t r = rng.below(100);
    if (r < 70) return keys[rng.below(keys.size())];
    if (r < 85) return rng.next() | 1;  // guaranteed miss
    return rng.next() & ~1ull;          // maybe-present even key
  };

  for (std::size_t round = 0; round < 40; ++round) {
    const std::uint64_t action = rng.below(100);
    if (action < 50) {
      // A put batch (sometimes repeating a key within the batch, so one
      // page group sees the same slot twice: orphan exactly once).
      std::vector<std::pair<std::uint64_t, std::uint64_t>> ops;
      const std::size_t n = 1 + rng.below(32);
      for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t key = (!ops.empty() && rng.below(100) < 20)
                                      ? ops[rng.below(ops.size())].first
                                      : some_key();
        ops.emplace_back(key, rng.next());
      }
      std::size_t h1 = 0;
      for (const auto& [k, v] : ops)
        if (perop.put_inline(k, v)) ++h1;
      const std::size_t h2 = batch.put_inline_batch(ops);
      const std::size_t h3 = shard.put_inline_batch(ops);
      ASSERT_EQ(h1, h2) << "round " << round;
      ASSERT_EQ(h2, h3) << "round " << round;
    } else if (action < 85) {
      for (std::size_t i = 0; i < 8; ++i) {
        const std::uint64_t key = some_key();
        const auto a = perop.get(key);
        const auto b = batch.get(key);
        const auto c = shard.get(key);
        ASSERT_EQ(a, b) << "round " << round << " key " << key;
        ASSERT_EQ(b, c) << "round " << round << " key " << key;
      }
    } else {
      std::uint64_t lo = rng.next(), hi = rng.next();
      if (lo > hi) std::swap(lo, hi);
      std::vector<std::pair<std::uint64_t, std::uint64_t>> sa, sb, sc2;
      perop.scan(lo, hi, [&](std::uint64_t k, std::span<const std::uint64_t> v) {
        sa.emplace_back(k, v.empty() ? 0 : v[0]);
      });
      batch.scan(lo, hi, [&](std::uint64_t k, std::span<const std::uint64_t> v) {
        sb.emplace_back(k, v.empty() ? 0 : v[0]);
      });
      shard.scan(lo, hi, [&](std::uint64_t k, std::span<const std::uint64_t> v) {
        sc2.emplace_back(k, v.empty() ? 0 : v[0]);
      });
      ASSERT_EQ(sa, sb) << "round " << round;
      ASSERT_EQ(sb, sc2) << "round " << round;
    }
  }

  // Semantic counters agree everywhere; the batched paths never charge
  // MORE log I/O than per-op, and the sharded facade is charge-identical
  // to the plain batched machine.
  const StoreStats& a = perop.stats();
  const StoreStats& b = batch.stats();
  const StoreStats& c = shard.stats();
  EXPECT_EQ(a.puts, b.puts);
  EXPECT_EQ(a.put_hits, b.put_hits);
  EXPECT_EQ(a.orphaned_words, b.orphaned_words);
  EXPECT_EQ(a.gets, b.gets);
  EXPECT_EQ(a.get_hits, b.get_hits);
  EXPECT_EQ(a.scans, b.scans);
  EXPECT_EQ(a.scan_records, b.scan_records);
  EXPECT_LE(b.put_log_reads, a.put_log_reads);
  EXPECT_LE(b.put_writes, a.put_writes);
  EXPECT_EQ(b, c);  // full facade invariance, field for field
  EXPECT_EQ(batch_m.stats(), shard_m.stats());
  EXPECT_EQ(batch_m.cost(), shard_m.cost());
}

}  // namespace
