// Discrete-event simulation on asymmetric memory: a single-server queue
// whose event calendar is the write-efficient external priority queue.
//
//   ./event_simulation [--jobs=20000] [--omega=16]
//
// Event calendars are a canonical external-PQ workload: far more events
// than fit in fast memory, every event inserted once and extracted once,
// extraction in time order.  On an NVM-backed machine the calendar's WRITE
// volume is what hurts, so the PQ's one-write-per-element-per-level design
// is exactly what the paper's cost model rewards.
//
// The simulation itself is a standard M/D/1-style queue: jobs arrive at
// pseudo-random times, each needs fixed service time; the server processes
// them FIFO.  We verify conservation (every job departs, departures in
// time order) and report the calendar's I/O cost.
#include <iostream>

#include "core/machine.hpp"
#include "pq/ext_pq.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"

namespace {

// An event packed into one uint64: time in the high 40 bits, kind (arrival
// = 0 / departure = 1) in bit 23, job id in the low 23 bits.  Packing keeps
// the calendar's element type trivially comparable by time.
constexpr std::uint64_t kKindBit = 1ull << 23;

std::uint64_t make_event(std::uint64_t time, bool departure,
                         std::uint64_t job) {
  return (time << 24) | (departure ? kKindBit : 0) | job;
}
std::uint64_t event_time(std::uint64_t e) { return e >> 24; }
bool event_is_departure(std::uint64_t e) { return (e & kKindBit) != 0; }
std::uint64_t event_job(std::uint64_t e) { return e & (kKindBit - 1); }

}  // namespace

int main(int argc, char** argv) try {
  using namespace aem;
  util::Cli cli(argc, argv);
  const std::uint64_t jobs = cli.u64("jobs", 20000);
  const std::uint64_t omega = cli.u64("omega", 16);
  const std::uint64_t service = 7;  // fixed service time per job

  Config cfg;
  cfg.memory_elems = 256;  // a calendar far larger than fast memory
  cfg.block_elems = 16;
  cfg.write_cost = omega;
  Machine mach(cfg);

  ExtPriorityQueue<std::uint64_t> calendar(mach);
  util::Rng rng(2026);

  // Schedule all arrivals up front (bulk load — typical for trace-driven
  // simulation).  Arrival times are strictly increasing.
  std::uint64_t t = 0;
  for (std::uint64_t j = 0; j < jobs; ++j) {
    t += 1 + rng.below(10);
    calendar.push(make_event(t, false, j));
  }
  std::cout << "scheduled " << jobs << " arrivals spanning time 0.." << t
            << " (calendar overflows memory " << jobs << " >> M = "
            << mach.M() << ")\n";

  // Run the simulation.
  std::uint64_t server_free_at = 0;
  std::uint64_t departed = 0, last_departure = 0, busy_time = 0;
  std::uint64_t max_queue_delay = 0;
  while (!calendar.empty()) {
    const std::uint64_t e = calendar.pop_min();
    const std::uint64_t now = event_time(e);
    if (event_is_departure(e)) {
      ++departed;
      if (now < last_departure) {
        std::cerr << "FAIL: departures out of order\n";
        return 1;
      }
      last_departure = now;
    } else {
      const std::uint64_t start =
          now > server_free_at ? now : server_free_at;
      const std::uint64_t delay = start - now;
      if (delay > max_queue_delay) max_queue_delay = delay;
      server_free_at = start + service;
      busy_time += service;
      calendar.push(make_event(server_free_at, true, event_job(e)));
    }
  }

  if (departed != jobs) {
    std::cerr << "FAIL: lost jobs (" << departed << "/" << jobs << ")\n";
    return 1;
  }

  std::cout << "\nsimulation complete:\n"
            << "  jobs departed     : " << departed << "\n"
            << "  makespan          : " << last_departure << "\n"
            << "  server utilization: "
            << double(busy_time) / double(last_departure) << "\n"
            << "  max queueing delay: " << max_queue_delay << "\n";

  const IoStats s = mach.stats();
  std::cout << "\ncalendar I/O (omega = " << omega << "):\n"
            << "  reads  : " << s.reads << "\n"
            << "  writes : " << s.writes << "\n"
            << "  Q      : " << mach.cost() << "\n"
            << "  block-writes per event: "
            << double(s.writes) / double(2 * jobs)
            << "  (each of the " << 2 * jobs
            << " events is pushed and popped once;\n"
            << "   an omega-oblivious in-place heap would rewrite O(log N)\n"
            << "   blocks per operation instead)\n";
  return 0;
}
catch (const std::exception& e) {
  // CLI/env parse errors (and any other unhandled failure) exit with a
  // one-line diagnostic instead of an uncaught-exception abort.
  std::cerr << "error: " << e.what() << "\n";
  return 2;
}
