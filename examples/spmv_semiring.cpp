// Sparse matrix-vector products over three semirings on an asymmetric
// memory (Section 5 of the paper).
//
//   ./spmv_semiring [--n=4096] [--delta=4] [--omega=8]
//
// The same delta-regular conformation is multiplied
//   * over (+, *)    — numerical SpMxV,
//   * over (min, +)  — one relaxation round of shortest paths,
//   * over (or, and) — one frontier step of reachability,
// each with both Section 5 programs (direct gather vs sort-by-row), and the
// dispatcher's choice is compared with the measured winner and the
// Theorem 5.1 lower bound.
#include <iostream>

#include "bounds/spmv_bounds.hpp"
#include "core/ext_array.hpp"
#include "core/machine.hpp"
#include "spmv/dispatch.hpp"
#include "spmv/matrix.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

using namespace aem;
using namespace aem::spmv;

Config make_cfg(std::uint64_t omega) {
  Config cfg;
  cfg.memory_elems = 256;
  cfg.block_elems = 16;
  cfg.write_cost = omega;
  return cfg;
}

template <Semiring S>
void study(const char* name, const Conformation& conf, S s,
           std::uint64_t omega, util::Table& t, util::Rng& rng) {
  using V = typename S::Value;
  const std::uint64_t N = conf.n();

  auto make_x = [&](Machine& mach) {
    std::vector<V> xs(N);
    for (auto& v : xs) v = static_cast<V>(1 + rng.below(3));
    ExtArray<V> x(mach, N, "x");
    x.unsafe_host_fill(xs);
    return x;
  };

  std::uint64_t naive_cost, sort_cost;
  {
    Machine mach(make_cfg(omega));
    SparseMatrix<V> A(mach, conf, [&](Coord) { return s.one(); });
    auto x = make_x(mach);
    ExtArray<V> y(mach, N, "y");
    mach.reset_stats();
    naive_spmv(A, x, y, s);
    naive_cost = mach.cost();
  }
  {
    Machine mach(make_cfg(omega));
    SparseMatrix<V> A(mach, conf, [&](Coord) { return s.one(); });
    auto x = make_x(mach);
    ExtArray<V> y(mach, N, "y");
    mach.reset_stats();
    sort_spmv(A, x, y, s);
    sort_cost = mach.cost();
  }
  Machine chooser(make_cfg(omega));
  const SpmvStrategy picked =
      choose_spmv_strategy(chooser, N, conf.delta());
  bounds::SpmvParams p{.N = N, .delta = conf.delta(), .M = 256, .B = 16,
                       .omega = omega};
  t.add_row({name, util::fmt(omega), util::fmt(naive_cost),
             util::fmt(sort_cost),
             sort_cost < naive_cost ? "sort" : "naive", to_string(picked),
             util::fmt(bounds::spmv_lower_bound_total(p), 0)});
}

}  // namespace

int main(int argc, char** argv) try {
  util::Cli cli(argc, argv);
  const std::uint64_t N = cli.u64("n", 4096);
  const std::uint64_t delta = cli.u64("delta", 4);

  std::cout << "SpMxV on a delta-regular " << N << "x" << N << " matrix ("
            << delta << " non-zeros per column, column-major layout)\n\n";

  util::Rng rng(19);
  auto conf = Conformation::delta_regular(N, delta, rng);

  util::Table t({"semiring", "omega", "naive_Q", "sort_Q", "winner",
                 "dispatcher", "Thm5.1_LB"});
  for (std::uint64_t omega : {1, 8, 64, 512}) {
    study("(+, *)", conf, PlusTimes{}, omega, t, rng);
    study("(min, +)", conf, MinPlus{}, omega, t, rng);
    study("(or, and)", conf, BoolOr{}, omega, t, rng);
  }
  t.print(std::cout);

  std::cout
      << "\nReading: the winner depends only on the machine (omega), not on\n"
         "the semiring — Theorem 5.1 is a statement about data movement.\n"
         "The sorting-based program wins while omega is moderate; the\n"
         "direct gather takes over once writes dominate everything.\n";
  return 0;
}
catch (const std::exception& e) {
  // CLI/env parse errors (and any other unhandled failure) exit with a
  // one-line diagnostic instead of an uncaught-exception abort.
  std::cerr << "error: " << e.what() << "\n";
  return 2;
}
