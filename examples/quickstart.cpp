// Quickstart: sort an array on a simulated NVM-style asymmetric memory and
// see where the cost goes.
//
//   ./quickstart [--n=65536] [--memory=1024] [--block=16] [--omega=8]
//                [--metrics=snapshot.json]
//
// Walks through the core API: configure an (M,B,omega)-AEM machine, stage
// an input array, run the paper's omega-aware mergesort, and read back the
// I/O counters, the per-phase attribution, and the distance to the
// theoretical bound.  Then the same sort on a fault-injected device (what
// the recovery layer's retries cost in Q), behind a buffer pool, and
// finally a KV store serving a budgeted Zipf request stream through a
// TrafficEngine.
#include <fstream>
#include <iostream>
#include <span>
#include <vector>

#include "bounds/sort_bounds.hpp"
#include "core/ext_array.hpp"
#include "core/faults.hpp"
#include "core/machine.hpp"
#include "core/metrics.hpp"
#include "sort/mergesort.hpp"
#include "store/kv_store.hpp"
#include "traffic/engine.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"

int main(int argc, char** argv) try {
  using namespace aem;
  util::Cli cli(argc, argv);
  const std::size_t N = cli.u64("n", 1 << 16);
  const std::size_t M = cli.u64("memory", 1024);
  const std::size_t B = cli.u64("block", 16);
  const std::uint64_t omega = cli.u64("omega", 8);

  // 1. An (M,B,omega)-AEM machine: M elements of fast symmetric memory,
  //    block transfers of B elements, writes omega times pricier than reads.
  Config cfg;
  cfg.memory_elems = M;
  cfg.block_elems = B;
  cfg.write_cost = omega;
  Machine mach(cfg);
  std::cout << "machine: M=" << M << " elements, B=" << B
            << " elements/block, omega=" << omega << " (m=" << mach.m()
            << " blocks of memory)\n";

  // 2. Stage the input.  Staging is uncharged — the input living in
  //    external memory is the problem statement, not part of the cost.
  util::Rng rng(42);
  ExtArray<std::uint64_t> input(mach, N, "input");
  input.unsafe_host_fill(util::random_keys(N, rng));
  ExtArray<std::uint64_t> output(mach, N, "output");

  // 3. Sort with the paper's Section 3 mergesort (d = omega*m way, valid
  //    for ANY omega — no omega < B assumption).
  aem_merge_sort(input, output);

  // 4. Inspect the costs.
  const IoStats s = mach.stats();
  std::cout << "\nsorted " << N << " elements:\n"
            << "  reads  : " << s.reads << " block I/Os\n"
            << "  writes : " << s.writes << " block I/Os (x" << omega
            << " cost)\n"
            << "  Q      : " << mach.cost() << "  (Q = reads + omega*writes)\n"
            << "  peak internal memory: " << mach.ledger().high_water()
            << " / " << M << " elements\n";

  std::cout << "\nper-phase attribution:\n";
  for (const auto& [phase, stats] : mach.phase_stats())
    std::cout << "  " << phase << ": " << to_string(stats) << "\n";

  // Machine-readable form of everything above: one JSON snapshot in the
  // aem.machine.metrics/v8 schema (same as the bench --metrics output).
  if (const std::string path = cli.str("metrics", ""); !path.empty()) {
    std::ofstream os(path);
    write_json(os, snapshot_metrics(mach, "quickstart"));
    os << "\n";
    std::cout << "\nmetrics snapshot written to " << path << "\n";
  }

  bounds::AemParams p{.N = N, .M = M, .B = B, .omega = omega};
  const double bound = bounds::aem_sort_upper_bound(p);
  std::cout << "\ntheory: O(omega n log_{omega m} n) = " << bound
            << "  -> measured/bound = "
            << static_cast<double>(mach.cost()) / bound << "\n";

  // 5. Verify the result the cheap way (host-side, uncharged).
  const auto& view = output.unsafe_host_view();
  for (std::size_t i = 1; i < view.size(); ++i) {
    if (view[i - 1] > view[i]) {
      std::cerr << "FAIL: output not sorted at " << i << "\n";
      return 1;
    }
  }
  std::cout << "output verified sorted.\n";

  // 6. The same sort on a FAULTY device.  Real NVM is why writes cost
  //    omega: cells wear out, writes tear or silently corrupt.  Installing
  //    a FaultPolicy turns those failure modes on (deterministically, from
  //    a seed); the ExtArray recovery layer — checksummed reads,
  //    verify-after-write, bounded retries — keeps the algorithm oblivious,
  //    and every extra read and omega-priced rewrite lands in Q.
  Machine faulty(cfg);
  FaultConfig fc;
  fc.seed = 7;
  fc.read_fault_rate = 0.01;
  fc.silent_write_rate = 0.005;
  fc.torn_write_rate = 0.005;
  fc.max_retries = 64;
  faulty.install_faults(fc);
  ExtArray<std::uint64_t> fin(faulty, N, "input");
  {
    util::Rng rng2(42);  // identical input
    fin.unsafe_host_fill(util::random_keys(N, rng2));
  }
  ExtArray<std::uint64_t> fout(faulty, N, "output");
  aem_merge_sort(fin, fout);

  const FaultStats& fs = faulty.faults()->stats();
  std::cout << "\nsame sort, 1% injected fault rate (seed " << fc.seed
            << "):\n"
            << "  Q      : " << faulty.cost() << "  (clean run: "
            << mach.cost() << ", overhead "
            << static_cast<double>(faulty.cost()) /
                   static_cast<double>(mach.cost())
            << "x)\n"
            << "  faults injected : " << fs.read_faults << " read, "
            << fs.silent_write_faults << " silent-write, "
            << fs.torn_write_faults << " torn-write\n"
            << "  recovery        : " << fs.read_retries << " read retries, "
            << fs.write_retries << " write retries, "
            << fs.verify_failures << " verify failures\n";
  for (std::size_t i = 1; i < fout.unsafe_host_view().size(); ++i) {
    if (fout.unsafe_host_view()[i - 1] > fout.unsafe_host_view()[i]) {
      std::cerr << "FAIL: faulty-device output not sorted at " << i << "\n";
      return 1;
    }
  }
  std::cout << "faulty-device output verified sorted — every retry paid "
               "for in Q.\n";

  // 7. The same sort WITH a device-side buffer pool.  A BlockCache absorbs
  //    repeat block traffic (hits are free) and coalesces rewrites into one
  //    omega-priced write-back at eviction or flush.  The clean-first
  //    policy is asymmetry-aware: it prefers evicting clean blocks (cost 1
  //    to read back) over dirty ones (cost omega to write back).  The
  //    measured protocol ends with flush_cache() so every dirty block is
  //    charged — see docs/MODEL.md section 11.
  Config ccfg = cfg;
  ccfg.cache.capacity_blocks = 64;
  ccfg.cache.policy = CachePolicy::kCleanFirst;
  Machine cached(ccfg);
  ExtArray<std::uint64_t> cin_(cached, N, "input");
  {
    util::Rng rng3(42);  // identical input again
    cin_.unsafe_host_fill(util::random_keys(N, rng3));
  }
  ExtArray<std::uint64_t> cout_(cached, N, "output");
  aem_merge_sort(cin_, cout_);
  cached.flush_cache();

  const CacheStats& cs = cached.cache()->stats();
  std::cout << "\nsame sort behind a " << ccfg.cache.capacity_blocks
            << "-block clean-first pool:\n"
            << "  Q      : " << cached.cost() << "  (uncached: " << mach.cost()
            << ", " << 100.0 * (1.0 - static_cast<double>(cached.cost()) /
                                          static_cast<double>(mach.cost()))
            << "% absorbed)\n"
            << "  hits   : " << cs.read_hits << " read, " << cs.write_hits
            << " write (free)\n"
            << "  write-backs: " << cs.write_backs << " vs " << s.writes
            << " uncached writes\n";
  if (cout_.unsafe_host_view() != output.unsafe_host_view()) {
    std::cerr << "FAIL: cached output differs from uncached output\n";
    return 1;
  }
  std::cout << "cached output identical to uncached output — the pool may "
               "only change Q, never results.\n";

  // 8. Serve a request stream.  Batch programs end with one total Q; a
  //    SERVING workload cares about the per-request distribution.  Build a
  //    small KV store over the sorted data, then drive a deterministic
  //    Zipf-skewed get/put stream through it with a TrafficEngine: every
  //    request's charged Q lands in a histogram (p50/p99/p999), and a
  //    per-window Q budget turns BudgetExceeded into admission control —
  //    rejected requests charge nothing.  See docs/MODEL.md section 16.
  Machine serving(cfg);
  {
    const std::size_t records = 1024;
    std::vector<store::Slot> slots;
    util::Rng rng4(42);
    for (std::size_t i = 0; i < records; ++i)
      slots.push_back(store::Slot{2 * i, 1, rng4.next()});
    ExtArray<store::Slot> sslots(serving, slots.size(), "input.slots");
    sslots.unsafe_host_fill(std::span<const store::Slot>(slots));
    ExtArray<std::uint64_t> nopay(serving, 0, "input.payload");
    store::KvStore kv(serving,
                      store::StoreConfig{store::IndexKind::kFence, 8});
    kv.build(sslots, nopay);

    traffic::EngineConfig ec;
    ec.traffic.requests = 2048;
    ec.traffic.dist = traffic::KeyDist::kZipf;
    ec.traffic.key_space = records;
    ec.traffic.key_stride = 2;       // every request hits a present key
    ec.traffic.write_fraction = 0.25;
    ec.traffic.batch_size = 4;
    ec.q_budget = 512;               // per-window charged-Q budget
    ec.window_requests = 512;
    traffic::TrafficEngine engine(kv, serving, ec, /*stream_seed=*/7);
    engine.run();

    const TrafficMetrics tm = engine.metrics_section();
    std::cout << "\nserving a zipf request stream (25% puts, Q budget "
              << ec.q_budget << " per " << ec.window_requests
              << "-request window):\n"
              << "  served : " << tm.served << " / " << tm.generated
              << " requests (" << tm.rejected << " rejected, rate "
              << tm.rejection_rate << ")\n"
              << "  Q      : " << tm.cost << " charged ("
              << engine.throughput_mille() << " served per 1000 Q)\n"
              << "  per-request Q: p50=" << tm.q_p50 << " p99=" << tm.q_p99
              << " p999=" << tm.q_p999 << " max=" << tm.q_max << "\n";
    if (tm.served + tm.rejected != tm.generated) {
      std::cerr << "FAIL: served + rejected != generated\n";
      return 1;
    }
    std::cout << "admission books balance: served + rejected == generated "
                 "— rejected batches charged nothing.\n";
  }
  return 0;
}
catch (const std::exception& e) {
  // CLI/env parse errors (and any other unhandled failure) exit with a
  // one-line diagnostic instead of an uncaught-exception abort.
  std::cerr << "error: " << e.what() << "\n";
  return 2;
}
