// End-to-end tour of the paper's lower-bound machinery on one permutation.
//
//   ./permute_pipeline [--n=4096] [--omega=4] [--perm=random|transpose|bitrev]
//
// 1. Permute N atoms with the dispatcher (the min{} of Theorem 4.5).
// 2. Record the full I/O trace with atom tracking.
// 3. Rewrite it as a round-based program (Lemma 4.1) and report the factor.
// 4. Replay it in the unit-cost flash model (Lemma 4.3) and check the
//    2N + 2QB/omega volume bound.
// 5. Compare everything against the Theorem 4.5 lower bound.
#include <fstream>
#include <iostream>

#include "bounds/permute_bounds.hpp"
#include "core/ext_array.hpp"
#include "core/machine.hpp"
#include "core/trace_io.hpp"
#include "flash/simulate.hpp"
#include "permute/dispatch.hpp"
#include "permute/permutation.hpp"
#include "rounds/rounds.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"

int main(int argc, char** argv) try {
  using namespace aem;
  util::Cli cli(argc, argv);
  const std::size_t N = cli.u64("n", 4096);
  const std::uint64_t omega = cli.u64("omega", 4);
  const std::string kind = cli.str("perm", "random");
  const std::size_t M = 128, B = 16;  // B multiple of omega for Lemma 4.3

  Config cfg;
  cfg.memory_elems = M;
  cfg.block_elems = B;
  cfg.write_cost = omega;
  Machine mach(cfg);

  util::Rng rng(23);
  perm::Perm dest;
  if (kind == "transpose") {
    std::size_t side = 1;
    while (side * side < N) side <<= 1;
    dest = perm::transpose(side, N / side);
  } else if (kind == "bitrev") {
    dest = perm::bit_reversal(N);
  } else {
    dest = perm::random(N, rng);
  }
  if (dest.size() != N) {
    std::cerr << "permutation family needs N compatible with " << kind << "\n";
    return 1;
  }

  // Stage atoms (distinct ids) and enable full tracking.
  auto atoms = util::distinct_keys(N, rng);
  ExtArray<std::uint64_t> in(mach, N, "in");
  in.unsafe_host_fill(atoms);
  in.set_atom_extractor([](const std::uint64_t& v) { return v; });
  ExtArray<std::uint64_t> out(mach, N, "out");
  out.set_atom_extractor([](const std::uint64_t& v) { return v; });
  mach.enable_trace();

  // --- 1. run the dispatcher ---------------------------------------------
  const PermuteStrategy strat =
      permute(in, std::span<const std::uint64_t>(dest), out);
  const std::uint64_t q = mach.cost();
  std::cout << "permuted " << N << " atoms (" << kind << ") with the "
            << to_string(strat) << " program: Q = " << q << "\n";

  bounds::AemParams p{.N = N, .M = M, .B = B, .omega = omega};
  std::cout << "Theorem 4.5 lower bound (+output term): "
            << bounds::permute_lower_bound_total(p)
            << "  -> tightness " << double(q) / bounds::permute_lower_bound_total(p)
            << "x\n";

  auto trace = mach.take_trace();
  std::cout << "recorded trace: " << trace->size() << " I/O ops\n";

  // Optional: persist the program for offline analysis with tools/aem_trace.
  const std::string save = cli.str("save-trace", "");
  if (!save.empty()) {
    std::ofstream os(save);
    write_trace(os, *trace);
    std::cout << "trace saved to " << save << " (inspect with: aem_trace"
              << " --file=" << save << " --omega=" << omega
              << " --m=" << mach.m() << " --rounds --rewrite)\n";
  }

  // --- 2. Lemma 4.1: round-based rewrite ----------------------------------
  auto rb = rounds::make_round_based(*trace, mach.m(), omega);
  std::cout << "\nLemma 4.1 rewrite: cost " << rb.original_cost << " -> "
            << rb.transformed_cost << "  (factor " << rb.cost_factor()
            << ", " << rb.rounds.size() << " rounds on the 2M machine)\n";

  // --- 3. Lemma 4.3: flash-model replay -----------------------------------
  if (B % omega == 0 && B / omega > 0) {
    auto sim = flash::simulate_permutation_trace(
        *trace, std::span<const std::uint64_t>(atoms), in.id(), B, omega);
    std::cout << "\nLemma 4.3 flash replay (read blocks of " << B / omega
              << ", write blocks of " << B << "):\n"
              << "  volume: " << sim.total_volume() << " elements ("
              << sim.read_ops << " small reads, " << sim.write_ops
              << " big writes, 2N scan)\n"
              << "  bound 2N + 2QB/omega = " << sim.volume_bound(B, omega)
              << "  -> volume/bound = "
              << double(sim.total_volume()) / sim.volume_bound(B, omega)
              << "\n  destroyed atoms: " << sim.destroyed_atoms << "\n";
  } else {
    std::cout << "\n(flash replay skipped: Lemma 4.3 needs B to be a "
                 "multiple of omega)\n";
  }

  // --- 4. verify the permutation ------------------------------------------
  const auto& got = out.unsafe_host_view();
  for (std::size_t i = 0; i < N; ++i) {
    if (got[dest[i]] != atoms[i]) {
      std::cerr << "FAIL: output mismatch at " << i << "\n";
      return 1;
    }
  }
  std::cout << "\npermutation verified.\n";
  return 0;
}
catch (const std::exception& e) {
  // CLI/env parse errors (and any other unhandled failure) exit with a
  // one-line diagnostic instead of an uncaught-exception abort.
  std::cerr << "error: " << e.what() << "\n";
  return 2;
}
