// The paper's motivating scenario (Section 1): emerging non-volatile
// memories read cheaply but write expensively — by orders of magnitude for
// some technologies.  How should that change the sorting algorithm you
// deploy?
//
//   ./nvm_sort_study [--n=32768] [--memory=128] [--block=8]
//
// We model three NVM generations (omega = 4, 32, 256) plus DRAM (omega = 1)
// and run the three sorters the paper discusses on each: the classic
// symmetric mergesort (write-oblivious), AEM sample sort [7], and the
// paper's Section 3 mergesort.  Watch the oblivious sort fall behind as
// omega grows, exactly as the (1+omega)/omega * log(omega m)/log m penalty
// predicts.
#include <iostream>
#include <vector>

#include "bounds/sort_bounds.hpp"
#include "core/ext_array.hpp"
#include "core/machine.hpp"
#include "sort/em_mergesort.hpp"
#include "sort/mergesort.hpp"
#include "sort/samplesort.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

using namespace aem;

std::uint64_t run_one(const char* which, const std::vector<std::uint64_t>& keys,
                      std::size_t M, std::size_t B, std::uint64_t omega) {
  Config cfg;
  cfg.memory_elems = M;
  cfg.block_elems = B;
  cfg.write_cost = omega;
  Machine mach(cfg);
  ExtArray<std::uint64_t> in(mach, keys.size(), "in");
  in.unsafe_host_fill(keys);
  ExtArray<std::uint64_t> out(mach, keys.size(), "out");
  mach.reset_stats();
  const std::string name = which;
  if (name == "oblivious") {
    em_merge_sort(in, out);
  } else if (name == "samplesort") {
    aem_sample_sort(in, out);
  } else {
    aem_merge_sort(in, out);
  }
  return mach.cost();
}

}  // namespace

int main(int argc, char** argv) try {
  util::Cli cli(argc, argv);
  const std::size_t N = cli.u64("n", 1 << 15);
  const std::size_t M = cli.u64("memory", 64);
  const std::size_t B = cli.u64("block", 8);

  std::cout << "Sorting " << N << " records on four memory technologies\n"
            << "(M=" << M << ", B=" << B << ").  omega = write/read cost "
            << "ratio.\n\n";

  util::Rng rng(7);
  auto keys = util::random_keys(N, rng);

  struct Tech {
    const char* name;
    std::uint64_t omega;
  };
  const Tech techs[] = {{"DRAM", 1},
                        {"NVM (STT-RAM-like)", 16},
                        {"NVM (ReRAM-like)", 128},
                        {"NVM (PCM-like)", 1024}};

  util::Table t({"technology", "omega", "oblivious_Q", "samplesort_Q",
                 "aem_mergesort_Q", "winner", "obl_penalty", "predicted"});
  for (const Tech& tech : techs) {
    const auto oblivious = run_one("oblivious", keys, M, B, tech.omega);
    const auto sample = run_one("samplesort", keys, M, B, tech.omega);
    const auto aware = run_one("aem_mergesort", keys, M, B, tech.omega);
    bounds::AemParams p{.N = N, .M = M, .B = B, .omega = tech.omega};
    const char* winner =
        (aware <= oblivious && aware <= sample)
            ? "aem_mergesort"
            : (oblivious <= sample ? "oblivious" : "samplesort");
    t.add_row({tech.name, util::fmt(tech.omega), util::fmt(oblivious),
               util::fmt(sample), util::fmt(aware), winner,
               util::fmt_ratio(double(oblivious), double(aware), 2),
               util::fmt(bounds::predicted_oblivious_penalty(p), 2)});
  }
  t.print(std::cout);

  std::cout
      << "\nReading: on DRAM (omega = 1) the classic symmetric mergesort is\n"
         "the right tool — the asymmetry-aware machinery only adds constant\n"
         "overhead.  As omega grows, the oblivious sort pays for its\n"
         "omega-blind write volume while the omega-aware algorithms trade\n"
         "extra (cheap) reads for fewer (expensive) writes and take over —\n"
         "the core design rule for NVM algorithms, and the paper's Section 1\n"
         "motivation.\n";
  return 0;
}
catch (const std::exception& e) {
  // CLI/env parse errors (and any other unhandled failure) exit with a
  // one-line diagnostic instead of an uncaught-exception abort.
  std::cerr << "error: " << e.what() << "\n";
  return 2;
}
