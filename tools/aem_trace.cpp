// aem_trace — inspect a recorded AEM program (trace) offline.
//
//   aem_trace --file=prog.trace --omega=8 --m=16 [--rounds] [--rewrite]
//             [--json=out.json]
//
// Reads a trace in the core/trace_io.hpp text format and prints its I/O
// statistics; with --rounds, its Section 4 round decomposition; with
// --rewrite, the Lemma 4.1 round-based rewrite and the measured constant;
// with --json, a machine-metrics snapshot (schema aem.machine.metrics/v8,
// same as the bench --metrics output) including the write-wear histogram
// reconstructed from the trace.  Traces are produced by any Machine with
// tracing enabled and write_trace(); see examples/permute_pipeline.cpp.
#include <algorithm>
#include <fstream>
#include <iostream>
#include <map>
#include <new>

#include "core/metrics.hpp"
#include "core/trace.hpp"
#include "core/trace_io.hpp"
#include "rounds/rounds.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

// Renders a recorded trace in the machine-metrics schema: I/O counters and
// cost directly, the wear section reconstructed by replaying write targets.
aem::MetricsSnapshot trace_metrics(const aem::Trace& trace,
                                   const std::string& path,
                                   std::uint64_t omega, std::size_t m) {
  using namespace aem;
  MetricsSnapshot s;
  s.label = "trace:" + path;
  s.write_cost = omega;
  s.block_elems = 0;  // unknown from a bare trace
  s.memory_elems = m;  // in blocks here; config section is advisory
  s.io = trace.stats();
  s.cost = trace.cost(omega);
  s.trace_enabled = true;
  s.trace_ops = trace.size();

  // Wear reconstruction: count writes per (array, block).
  std::map<std::uint32_t, std::map<std::uint64_t, std::uint64_t>> wear;
  for (const TraceOp& op : trace.ops())
    if (op.kind == OpKind::kWrite) ++wear[op.array][op.block];
  s.wear_enabled = true;
  std::uint64_t total = 0;
  for (const auto& [array, blocks] : wear) {
    ArrayWearMetrics aw;
    aw.array = array;
    for (const auto& [block, count] : blocks) {
      ++aw.blocks_written;
      aw.writes += count;
      aw.max_writes = std::max(aw.max_writes, count);
    }
    s.wear_blocks_written += aw.blocks_written;
    s.wear_max_writes = std::max(s.wear_max_writes, aw.max_writes);
    total += aw.writes;
    s.wear_arrays.push_back(std::move(aw));
  }
  if (s.wear_blocks_written != 0)
    s.wear_mean_writes =
        static_cast<double>(total) / static_cast<double>(s.wear_blocks_written);
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace aem;
  try {
    util::Cli cli(argc, argv);
    const std::string path = cli.str("file", "");
    if (path.empty()) {
      std::cerr << "usage: aem_trace --file=prog.trace --omega=W --m=M_blocks"
                   " [--rounds] [--rewrite] [--json=FILE]\n";
      return 2;
    }
    const std::uint64_t omega = cli.u64("omega", 1);
    const std::size_t m = cli.u64("m", 16);

    std::ifstream in(path);
    if (!in) {
      std::cerr << "aem_trace: cannot open " << path << "\n";
      return 2;
    }
    Trace trace = read_trace(in);

    const IoStats s = trace.stats();
    std::uint64_t used_atoms = 0, written_atoms = 0;
    for (const TraceOp& op : trace.ops()) {
      used_atoms += op.used.size();
      written_atoms += op.atoms.size();
    }
    std::cout << "ops            : " << trace.size() << "\n"
              << "reads          : " << s.reads << "\n"
              << "writes         : " << s.writes << "\n"
              << "cost (omega=" << omega << "): " << trace.cost(omega) << "\n"
              << "atoms written  : " << written_atoms << "\n"
              << "atoms consumed : " << used_atoms << "\n";

    if (const std::string json = cli.str("json", ""); !json.empty()) {
      std::ofstream os(json);
      if (!os) {
        std::cerr << "aem_trace: cannot write " << json << "\n";
        return 2;
      }
      write_json(os, trace_metrics(trace, path, omega, m));
      os << "\n";
      std::cout << "metrics snapshot written to " << json << "\n";
    }

    if (cli.flag("rounds")) {
      auto rounds = rounds::split_rounds(trace, m, omega);
      std::cout << "\nround decomposition (budget omega*m = " << omega * m
                << "):\n  rounds: " << rounds.size() << "\n";
      std::uint64_t min_cost = UINT64_MAX, max_cost = 0;
      for (const auto& r : rounds) {
        min_cost = std::min(min_cost, r.cost);
        max_cost = std::max(max_cost, r.cost);
      }
      std::cout << "  round cost range: [" << min_cost << ", " << max_cost
                << "]\n  valid: "
                << (rounds::validate_rounds(trace, rounds, m, omega) ? "yes"
                                                                     : "NO")
                << "\n";
    }

    if (cli.flag("rewrite")) {
      auto rb = rounds::make_round_based(trace, m, omega);
      std::cout << "\nLemma 4.1 rewrite (onto the 2M machine):\n"
                << "  cost " << rb.original_cost << " -> "
                << rb.transformed_cost << "  (factor " << rb.cost_factor()
                << ")\n  rounds: " << rb.rounds.size() << "\n";
    }
    return 0;
  } catch (const std::bad_alloc&) {
    // A corrupt trace can still imply absurd per-line id lists; fail with a
    // clear message instead of an unhandled-exception abort.
    std::cerr << "aem_trace: out of memory reading trace (corrupt file?)\n";
    return 1;
  } catch (const std::exception& e) {
    std::cerr << "aem_trace: " << e.what() << "\n";
    return 1;
  }
}
