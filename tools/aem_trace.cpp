// aem_trace — inspect a recorded AEM program (trace) offline.
//
//   aem_trace --file=prog.trace --omega=8 --m=16 [--rounds] [--rewrite]
//
// Reads a trace in the core/trace_io.hpp text format and prints its I/O
// statistics; with --rounds, its Section 4 round decomposition; with
// --rewrite, the Lemma 4.1 round-based rewrite and the measured constant.
// Traces are produced by any Machine with tracing enabled and
// write_trace(); see examples/permute_pipeline.cpp.
#include <fstream>
#include <iostream>

#include "core/trace.hpp"
#include "core/trace_io.hpp"
#include "rounds/rounds.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace aem;
  try {
    util::Cli cli(argc, argv);
    const std::string path = cli.str("file", "");
    if (path.empty()) {
      std::cerr << "usage: aem_trace --file=prog.trace --omega=W --m=M_blocks"
                   " [--rounds] [--rewrite]\n";
      return 2;
    }
    const std::uint64_t omega = cli.u64("omega", 1);
    const std::size_t m = cli.u64("m", 16);

    std::ifstream in(path);
    if (!in) {
      std::cerr << "aem_trace: cannot open " << path << "\n";
      return 2;
    }
    Trace trace = read_trace(in);

    const IoStats s = trace.stats();
    std::uint64_t used_atoms = 0, written_atoms = 0;
    for (const TraceOp& op : trace.ops()) {
      used_atoms += op.used.size();
      written_atoms += op.atoms.size();
    }
    std::cout << "ops            : " << trace.size() << "\n"
              << "reads          : " << s.reads << "\n"
              << "writes         : " << s.writes << "\n"
              << "cost (omega=" << omega << "): " << trace.cost(omega) << "\n"
              << "atoms written  : " << written_atoms << "\n"
              << "atoms consumed : " << used_atoms << "\n";

    if (cli.flag("rounds")) {
      auto rounds = rounds::split_rounds(trace, m, omega);
      std::cout << "\nround decomposition (budget omega*m = " << omega * m
                << "):\n  rounds: " << rounds.size() << "\n";
      std::uint64_t min_cost = UINT64_MAX, max_cost = 0;
      for (const auto& r : rounds) {
        min_cost = std::min(min_cost, r.cost);
        max_cost = std::max(max_cost, r.cost);
      }
      std::cout << "  round cost range: [" << min_cost << ", " << max_cost
                << "]\n  valid: "
                << (rounds::validate_rounds(trace, rounds, m, omega) ? "yes"
                                                                     : "NO")
                << "\n";
    }

    if (cli.flag("rewrite")) {
      auto rb = rounds::make_round_based(trace, m, omega);
      std::cout << "\nLemma 4.1 rewrite (onto the 2M machine):\n"
                << "  cost " << rb.original_cost << " -> "
                << rb.transformed_cost << "  (factor " << rb.cost_factor()
                << ")\n  rounds: " << rb.rounds.size() << "\n";
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "aem_trace: " << e.what() << "\n";
    return 1;
  }
}
