// A write-efficient external priority queue on the AEM, and heapsort on top
// of it — the third algorithm family the paper cites ([7] proved an
// O(omega n log_{omega m} n) heapsort via a buffered heap).
//
// Structure (LSM-style):
//  * an in-memory INSERT buffer (cap M/4): pushes are free until it fills,
//    then it is sorted (free) and flushed as a level-0 sorted run;
//  * an in-memory MIN cache (cap M/4): the globally smallest elements
//    among the external runs, refilled by a batched selection round —
//    the Cmin smallest elements across sorted runs form a prefix of each,
//    so consumption is positional (per-run cursors), needing no watermark
//    and supporting arbitrary push/pop interleaving;
//  * external runs organized in levels of width m_eff = M/(4B): when a
//    level fills, its runs are merged by the paper's Section 3 merge
//    (merge_runs, Theorem 3.2 cost) into one run of the next level.
//
// The queue supports two tunings (PqTuning; docs/MODEL.md section 18):
//
//  * kLegacy — level width m_eff.  Amortized cost for N pushes + N pops:
//    writes O(n log_{m_eff}(N/M)), reads O(omega n log_{m_eff}(N/M) +
//    refill).  Write-efficient like the Section 3 mergesort but with
//    merge-tree base m_eff rather than omega*m_eff: the level width is
//    capped so that per-run cursor state (one word per run) provably fits
//    in memory.  Cursor state, run bounds, and level bookkeeping are
//    charged to the ledger (one element per run); the queue throws if the
//    run count would exceed its reservation — which cannot happen while
//    levels hold at most m_eff runs and fewer than m_eff levels are in use.
//
//  * kBuffered — the [7]-style buffered heap with the paper-optimal
//    merge-tree base: level width d = omega * m_eff (the budget fanout),
//    so cascades are omega times rarer and total writes drop to
//    O(n log_{omega m}(N/M)).  The price is reads: every refill seeds two
//    blocks from EVERY resident run (up to d per level), the omega-fold
//    read traffic the paper trades for writes.  Per-run cursors and bounds
//    are host-side bookkeeping under the RunBounds convention of
//    sort/merge.hpp (NOT ledger-charged); what refill actually holds
//    resident — the min_cap_ staged candidates plus the surviving-head
//    table — is charged, and the survivor count is provably bounded by
//    min_cap/(2B) by the Lemma 3.1 argument (each survivor's last-fed
//    element sits in the staged cut, so its 2B fed elements all do), which
//    refill asserts.  A kBuffered queue whose budget fanout does not
//    exceed m_eff (always at omega == 1) downgrades to kLegacy, so the
//    omega = 1 buffered variant is charge-identical to the legacy queue —
//    the identity guard of bench_w1_lowwrite.
//
// Both tunings keep the PR 6 fold discipline in flush_insert_buffer:
// standing reservations are released before the fold's transient claim and
// restored from the (unchanged) buffers on failure.
#pragma once

#include <algorithm>
#include <cstddef>
#include <functional>
#include <optional>
#include <set>
#include <stdexcept>
#include <vector>

#include "core/ext_array.hpp"
#include "io/scanner.hpp"
#include "io/writer.hpp"
#include "sort/budget.hpp"
#include "sort/merge.hpp"
#include "util/math.hpp"

namespace aem {

/// Merge-tree base selector for ExtPriorityQueue (see file comment).
enum class PqTuning {
  kLegacy,    // level width m_eff, per-run cursor state ledger-charged
  kBuffered,  // level width omega * m_eff, host-side run bookkeeping
};

template <class T, class Less = std::less<T>>
class ExtPriorityQueue {
 public:
  /// `capacity_hint` sizes the external storage (grows if exceeded).
  /// Requires M >= 16B: the standing buffers (M/8 + M/8) must coexist with
  /// a full Section 3 merge (OUT = M/4 plus transient blocks) during level
  /// cascades, under the strict ledger.
  explicit ExtPriorityQueue(Machine& mach, std::size_t capacity_hint = 0,
                            Less less = {}, PqTuning tuning = PqTuning::kLegacy)
      : mach_(mach),
        less_(less),
        budget_(SortBudget::from(mach)),
        tuning_(tuning),
        insert_cap_(std::max<std::size_t>(mach.B(), mach.M() / 8)),
        min_cap_(std::max<std::size_t>(mach.B(), mach.M() / 8)),
        insert_res_(mach.ledger(), 0),
        min_res_(mach.ledger(), 0),
        run_state_res_(mach.ledger(), 0) {
    if (mach.M() < 16 * mach.B())
      throw std::invalid_argument("ExtPriorityQueue requires M >= 16B");
    (void)capacity_hint;
    // A buffered queue whose fanout brings nothing (always at omega == 1)
    // downgrades: the two tunings coincide there, and the downgrade makes
    // the coincidence structural rather than emergent.
    if (tuning_ == PqTuning::kBuffered && budget_.fanout <= budget_.m_eff)
      tuning_ = PqTuning::kLegacy;
    insert_.reserve(insert_cap_);
    levels_.resize(kMaxLevels);
  }

  PqTuning tuning() const { return tuning_; }

  std::size_t size() const { return count_; }
  bool empty() const { return count_ == 0; }

  void push(const T& v) {
    ++count_;
    // Keep the min cache coherent: an element smaller than its largest
    // cached value belongs in the cache (swap the largest out into the
    // insert buffer) so pops stay correct without consulting the runs.
    if (!min_cache_.empty() && less_(v, min_cache_.back())) {
      min_cache_.insert(
          std::upper_bound(min_cache_.begin(), min_cache_.end(), v, less_), v);
      T evicted = min_cache_.back();
      min_cache_.pop_back();
      buffer_insert(evicted);
      return;
    }
    buffer_insert(v);
  }

  /// Ledger reservations track actual residency: an empty buffer holds no
  /// internal memory.  kBuffered keeps run bookkeeping host-side (the
  /// RunBounds convention), so only kLegacy charges per-run cursor words.
  void sync_ledger() {
    insert_res_.resize(insert_.size());
    min_res_.resize(min_cache_.size());
    run_state_res_.resize(tuning_ == PqTuning::kLegacy ? total_runs() : 0);
  }

  /// Removes and returns the minimum.  Throws std::out_of_range if empty.
  T pop_min() {
    if (count_ == 0) throw std::out_of_range("ExtPriorityQueue: empty");
    if (min_cache_.empty() && total_runs() > 0) refill();
    const bool have_cache = !min_cache_.empty();
    const bool have_insert = !insert_.empty();
    T result{};
    if (have_cache && (!have_insert || !less_(insert_min(), min_cache_.front()))) {
      result = min_cache_.front();
      min_cache_.erase(min_cache_.begin());
    } else if (have_insert) {
      auto it = std::min_element(insert_.begin(), insert_.end(), less_);
      result = *it;
      insert_.erase(it);
    } else {
      throw std::logic_error("ExtPriorityQueue: lost elements");
    }
    --count_;
    sync_ledger();
    return result;
  }

  /// Test-support: host-side (uncharged) check of the pop-correctness
  /// invariant — while the min cache is non-empty, its LARGEST element must
  /// be <= every unconsumed element stored in any run (so the cache always
  /// holds a complete prefix of the queue's run-resident content).
  bool debug_min_invariant() const {
    if (min_cache_.empty()) return true;
    for (const auto& level : levels_)
      for (const Run& r : level)
        for (std::size_t p = r.cursor; p < r.length; ++p)
          if (less_(r.data.unsafe_host_view()[p], min_cache_.back()))
            return false;
    return true;
  }

 private:
  static constexpr std::size_t kMaxLevels = 24;

  struct Run {
    ExtArray<T> data;     // sorted ascending
    std::size_t cursor;   // elements consumed (prefix)
    std::size_t length;   // total elements in the run
    std::size_t remaining() const { return length - cursor; }
  };

  const T& insert_min() const {
    return *std::min_element(insert_.begin(), insert_.end(), less_);
  }

  std::size_t total_runs() const {
    std::size_t r = 0;
    for (const auto& level : levels_) r += level.size();
    return r;
  }

  void buffer_insert(const T& v) {
    insert_.push_back(v);
    sync_ledger();
    if (insert_.size() >= insert_cap_) flush_insert_buffer();
  }

  void flush_insert_buffer() {
    if (insert_.empty()) return;
    // Invariant (pop correctness): while the min cache is non-empty, its
    // front is <= every element stored in a run.  Elements pushed while the
    // cache was empty may be smaller than a later-refilled cache, so before
    // anything reaches a run, fold cache + buffer together and keep the
    // min_cap_ smallest in the cache; only the remainder is flushed.
    std::sort(insert_.begin(), insert_.end(), less_);
    if (!min_cache_.empty()) {
      // The pop-correctness invariant is: every run element >= cache.back.
      // Folding may therefore only keep elements <= the CURRENT back while
      // runs exist — growing the back would hide smaller run elements.
      const T old_back = min_cache_.back();
      const std::size_t total = insert_.size() + min_cache_.size();
      // The fold consumes both buffers into `combined` (total elements) and
      // redistributes every element right back, so the queue's residency
      // during the fold is `total` — not `total` PLUS the standing claims.
      // Release the standing reservations BEFORE taking the fold's, or a
      // strict ledger near capacity throws on memory the queue never holds
      // twice.  On any failure the standing claims are restored to match
      // the (unchanged) buffers before propagating.
      insert_res_.resize(0);
      min_res_.resize(0);
      try {
        MemoryReservation merge_res(mach_.ledger(), total);
        std::vector<T> combined;
        combined.reserve(total);
        std::merge(min_cache_.begin(), min_cache_.end(), insert_.begin(),
                   insert_.end(), std::back_inserter(combined), less_);
        std::size_t limit = combined.size();
        if (total_runs() > 0) {
          limit = static_cast<std::size_t>(
              std::upper_bound(combined.begin(), combined.end(), old_back,
                               less_) -
              combined.begin());
        }
        const std::size_t keep = std::min(min_cap_, limit);
        min_cache_.assign(combined.begin(), combined.begin() + keep);
        insert_.assign(combined.begin() + keep, combined.end());
      } catch (...) {
        sync_ledger();
        throw;
      }
      sync_ledger();  // re-claim at the post-fold sizes (merge_res is gone)
    }
    if (insert_.empty()) {
      sync_ledger();
      return;
    }
    Run run{ExtArray<T>(mach_, insert_.size(), "pq.run"), 0, insert_.size()};
    Writer<T> w(run.data);
    for (const T& v : insert_) w.push(v);
    w.finish();
    insert_.clear();
    sync_ledger();
    levels_[0].push_back(std::move(run));
    cascade(0);
    sync_ledger();
  }

  /// Level width: the merge-tree base.  kBuffered uses the budget fanout
  /// d = omega * m_eff (Section 3's merge handles that many runs natively);
  /// kLegacy keeps the m_eff cap its charged cursor state requires.
  std::size_t level_width() const {
    return tuning_ == PqTuning::kBuffered ? budget_.fanout : budget_.m_eff;
  }

  /// Merges a full level into one run of the next level (Section 3 merge).
  void cascade(std::size_t level) {
    while (level + 1 < kMaxLevels && levels_[level].size() >= level_width()) {
      auto& runs = levels_[level];
      std::size_t total = 0;
      for (const auto& r : runs) total += r.remaining();
      if (total == 0) {
        runs.clear();
        return;
      }
      // Pack remaining elements of each run into a fresh source array at
      // block-aligned offsets (consumed prefixes are dropped here, which
      // costs one extra copy but keeps merge_runs' alignment contract).
      ExtArray<T> packed(mach_, aligned_total(runs), "pq.packed");
      std::vector<RunBounds> bounds;
      std::size_t offset = 0;
      for (auto& r : runs) {
        if (r.remaining() == 0) continue;
        Scanner<T> scan(r.data, r.cursor, r.length);
        Writer<T> w(packed, offset, offset + r.remaining());
        while (!scan.done()) w.push(scan.next());
        w.finish();
        bounds.push_back(RunBounds{offset, offset + r.remaining()});
        offset = util::round_up(offset + r.remaining(), mach_.B());
      }
      ExtArray<T> merged(mach_, total, "pq.merged");
      merge_runs(packed, std::span<const RunBounds>(bounds), merged, 0, less_);
      runs.clear();
      levels_[level + 1].push_back(Run{std::move(merged), 0, total});
      ++level;
    }
  }

  std::size_t aligned_total(const std::vector<Run>& runs) const {
    std::size_t offset = 0;
    for (const auto& r : runs)
      if (r.remaining() > 0)
        offset = util::round_up(offset + r.remaining(), mach_.B());
    return offset;
  }

  /// Batched selection: move the min_cap_ globally smallest run elements
  /// into the min cache.  Because every run is sorted, those elements form
  /// a prefix of each run's remainder — consumption is purely positional.
  /// Structured exactly like the Section 3 merge round (sort/merge.hpp):
  /// seed two blocks per run, then repeatedly extend the run whose
  /// last-loaded element is smallest, until no run can still contribute.
  void refill() {
    struct Cand {
      T val;
      std::size_t level, index, pos;
    };
    auto cand_less = [this](const Cand& a, const Cand& b) {
      if (less_(a.val, b.val)) return true;
      if (less_(b.val, a.val)) return false;
      if (a.level != b.level) return a.level < b.level;
      if (a.index != b.index) return a.index < b.index;
      return a.pos < b.pos;
    };
    std::multiset<Cand, decltype(cand_less)> out(cand_less);
    MemoryReservation out_res(mach_.ledger(), min_cap_);
    Buffer<T> block(mach_, mach_.B());

    struct RunCursor {
      std::size_t level, index;
      std::size_t frontier;  // first unread element this refill
      Cand last;             // last element fed (valid once frontier moved)
    };
    std::vector<RunCursor> heads;

    // Survivor bound (Lemma 3.1 argument, see file comment): a head can
    // stay a candidate for extension only while its last-fed element sits
    // in the staged cut, which pins all >= 2B of its fed elements there
    // too, so at most min_cap/(2B) heads survive at any moment (+1 for the
    // run currently being seeded).  kBuffered charges this table — its
    // resident run state — instead of the legacy one-word-per-run claim.
    const std::size_t head_cap = min_cap_ / (2 * mach_.B()) + 1;
    MemoryReservation heads_res(
        mach_.ledger(), tuning_ == PqTuning::kBuffered ? head_cap : 0);

    // A head is done (never active again) once fully read; it is pruned
    // once the cut is full and its last-fed element fell out — the cut's
    // max only decreases, so pruned heads never reactivate.
    auto prune = [&](const RunCursor& rc) {
      const Run& r = levels_[rc.level][rc.index];
      if (rc.frontier >= r.length) return true;
      return out.size() == min_cap_ &&
             !cand_less(rc.last, *std::prev(out.end()));
    };

    // Feeds [frontier, frontier + elems) of a run into `out`, advancing the
    // frontier and recording the last fed element.
    auto feed = [&](RunCursor& rc, std::size_t elems) {
      Run& r = levels_[rc.level][rc.index];
      const std::size_t upto = std::min(r.length, rc.frontier + elems);
      while (rc.frontier < upto) {
        const std::uint64_t bi = rc.frontier / mach_.B();
        BlockIo io = r.data.read_block(bi, block.span());
        const std::size_t lo = static_cast<std::size_t>(bi) * mach_.B();
        const std::size_t hi = std::min(lo + io.count, r.length);
        for (std::size_t p = rc.frontier; p < hi; ++p) {
          Cand c{block[p - lo], rc.level, rc.index, p};
          if (out.size() < min_cap_) {
            out.insert(c);
          } else if (cand_less(c, *std::prev(out.end()))) {
            out.erase(std::prev(out.end()));
            out.insert(c);
          }
          rc.last = c;
        }
        rc.frontier = hi;
      }
    };

    // Seed: two blocks per non-empty run, pruning eagerly so only the
    // bounded survivor set stays resident (identical I/O to pruning at the
    // extend loop's top: the cut's max only decreases, so a head pruned
    // here would have been pruned there).  An entry can also go STALE after
    // its own seed step — a later run's smaller elements evict its fed
    // elements from the cut — so when the table would outgrow the bound it
    // is re-pruned first; only CURRENT survivors count against head_cap
    // (the +1 in head_cap covers the just-pushed transient).
    for (std::size_t L = 0; L < kMaxLevels; ++L)
      for (std::size_t i = 0; i < levels_[L].size(); ++i) {
        Run& r = levels_[L][i];
        if (r.remaining() == 0) continue;
        RunCursor rc{L, i, r.cursor, {}};
        feed(rc, 2 * mach_.B());
        if (prune(rc)) continue;
        heads.push_back(rc);
        if (heads.size() > head_cap) {
          std::erase_if(heads, prune);
          if (heads.size() > head_cap)
            throw std::logic_error(
                "ExtPriorityQueue: refill survivor bound violated");
        }
      }

    // Extend: the merge loop.  A head is active while it has unread
    // elements AND its last-loaded element may still be among the cut
    // (out not full, or last < out's max).  Inactive heads never
    // reactivate (the cut only decreases).
    while (true) {
      std::erase_if(heads, prune);
      if (heads.empty()) break;
      auto j = std::min_element(heads.begin(), heads.end(),
                                [&](const RunCursor& a, const RunCursor& b) {
                                  return cand_less(a.last, b.last);
                                });
      feed(*j, mach_.B());
    }

    // Consume: candidates per run are a prefix; advance cursors.
    min_cache_.clear();
    for (const Cand& c : out) {
      min_cache_.push_back(c.val);
      Run& r = levels_[c.level][c.index];
      r.cursor = std::max(r.cursor, c.pos + 1);
    }
    if (min_cache_.empty() && total_runs() > 0) {
      // All runs fully consumed: drop them.
      for (auto& level : levels_) level.clear();
    }
    sync_ledger();
  }

  Machine& mach_;
  Less less_;
  SortBudget budget_;
  PqTuning tuning_;
  std::size_t insert_cap_;
  std::size_t min_cap_;
  MemoryReservation insert_res_;
  MemoryReservation min_res_;
  MemoryReservation run_state_res_;
  std::vector<T> insert_;
  std::vector<T> min_cache_;  // sorted ascending
  std::vector<std::vector<Run>> levels_;
  std::size_t count_ = 0;
};

/// Heapsort via the external priority queue: N pushes, N pops.  `tuning`
/// selects the merge-tree base (see PqTuning; kBuffered downgrades to
/// kLegacy when the fanout brings nothing, e.g. at omega == 1).
template <class T, class Less = std::less<T>>
void aem_heap_sort(const ExtArray<T>& in, ExtArray<T>& out, Less less = {},
                   PqTuning tuning = PqTuning::kLegacy) {
  if (in.size() != out.size())
    throw std::invalid_argument("aem_heap_sort: size mismatch");
  Machine& mach = in.machine();
  ExtPriorityQueue<T, Less> pq(mach, in.size(), less, tuning);
  {
    Scanner<T> scan(in);
    while (!scan.done()) pq.push(scan.next());
  }
  {
    Writer<T> w(out);
    while (!pq.empty()) w.push(pq.pop_min());
    w.finish();
  }
}

}  // namespace aem
