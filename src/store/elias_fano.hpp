// Elias–Fano encoding of a monotone sequence, the compact-index backbone of
// the KV store (store/kv_store.hpp).
//
// A sorted log's fence keys are a non-decreasing sequence of n values; the
// store quantizes them to a universe of 2^c (c ≈ log2(n) + headroom bits)
// and encodes the quantized sequence here.  Elias–Fano splits each value
// into l = c - ceil(log2 n) low bits, stored verbatim, and a high part
// encoded in a unary bit vector of n ones spread over at most n + 2^(c-l)
// positions — in total n*(2 + l) + O(1) bits, the textbook 2 + log2(U/n)
// bits per value.  That is how a PaCHash-style page index reaches
// O(small-constant) bits per page where explicit fence keys pay 64.
//
// Queries are host-side computation (free in the AEM cost model; see
// docs/MODEL.md section 14), so select is a plain popcount scan and
// predecessor a binary search over access() — O(n/w) word operations per
// access, ample for the page counts the simulator sweeps.  All structure
// words are expected to be charged to the MemoryLedger by the owner
// (words() is the allocation to charge).
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <vector>

#include "util/math.hpp"

namespace aem::store {

class EliasFano {
 public:
  static constexpr std::size_t npos = std::numeric_limits<std::size_t>::max();

  EliasFano() = default;

  /// Encodes `values` (non-decreasing, each < 2^universe_bits).  Throws
  /// std::invalid_argument on a decreasing pair, an out-of-universe value,
  /// or universe_bits outside [1, 64].
  EliasFano(const std::vector<std::uint64_t>& values, unsigned universe_bits) {
    if (universe_bits < 1 || universe_bits > 64)
      throw std::invalid_argument("EliasFano: universe_bits must be in [1,64]");
    n_ = values.size();
    universe_bits_ = universe_bits;
    if (n_ == 0) return;
    const unsigned hb = util::ilog2_ceil(n_);
    l_ = universe_bits > hb ? universe_bits - hb : 0;
    for (std::size_t i = 0; i < n_; ++i) {
      if (i > 0 && values[i] < values[i - 1])
        throw std::invalid_argument("EliasFano: sequence not monotone");
      if (universe_bits < 64 && values[i] >> universe_bits != 0)
        throw std::invalid_argument("EliasFano: value outside the universe");
    }
    upper_bit_count_ = (values[n_ - 1] >> l_) + n_;
    upper_.assign(util::ceil_div(upper_bit_count_, 64), 0);
    lower_.assign(util::ceil_div(n_ * static_cast<std::uint64_t>(l_), 64), 0);
    for (std::size_t i = 0; i < n_; ++i) {
      const std::uint64_t high = values[i] >> l_;
      set_bit(high + i);
      if (l_ > 0) set_low(i, values[i] & low_mask());
    }
  }

  std::size_t size() const { return n_; }
  unsigned low_bits() const { return l_; }

  /// The i-th encoded value (i < size()).
  std::uint64_t access(std::size_t i) const {
    if (i >= n_) throw std::out_of_range("EliasFano::access");
    const std::uint64_t high = select1(i) - i;
    return (high << l_) | (l_ > 0 ? get_low(i) : 0);
  }

  /// Largest i with access(i) <= v, or npos when access(0) > v.
  std::size_t predecessor(std::uint64_t v) const {
    if (n_ == 0 || access(0) > v) return npos;
    std::size_t lo = 0, hi = n_ - 1;
    while (lo < hi) {
      const std::size_t mid = lo + (hi - lo + 1) / 2;
      if (access(mid) <= v) {
        lo = mid;
      } else {
        hi = mid - 1;
      }
    }
    return lo;
  }

  /// Logical structure size in bits: the unary upper vector plus the packed
  /// low halves.  This is the number the bits-per-page guard measures.
  std::uint64_t bits() const {
    return upper_bit_count_ + n_ * static_cast<std::uint64_t>(l_);
  }

  /// 64-bit words actually allocated — what the owner's MemoryReservation
  /// must charge to the ledger.
  std::size_t words() const { return upper_.size() + lower_.size(); }

 private:
  std::uint64_t low_mask() const {
    return l_ >= 64 ? ~0ull : (1ull << l_) - 1;
  }

  void set_bit(std::uint64_t p) { upper_[p / 64] |= 1ull << (p % 64); }

  void set_low(std::size_t i, std::uint64_t v) {
    const std::uint64_t bit = static_cast<std::uint64_t>(i) * l_;
    const std::size_t w = static_cast<std::size_t>(bit / 64);
    const unsigned off = static_cast<unsigned>(bit % 64);
    lower_[w] |= v << off;
    if (off + l_ > 64) lower_[w + 1] |= v >> (64 - off);
  }

  std::uint64_t get_low(std::size_t i) const {
    const std::uint64_t bit = static_cast<std::uint64_t>(i) * l_;
    const std::size_t w = static_cast<std::size_t>(bit / 64);
    const unsigned off = static_cast<unsigned>(bit % 64);
    std::uint64_t v = lower_[w] >> off;
    if (off + l_ > 64) v |= lower_[w + 1] << (64 - off);
    return v & low_mask();
  }

  /// Bit position of the i-th (0-based) set bit of the upper vector.
  std::uint64_t select1(std::size_t i) const {
    std::size_t remaining = i;
    for (std::size_t w = 0; w < upper_.size(); ++w) {
      const unsigned pop = static_cast<unsigned>(std::popcount(upper_[w]));
      if (remaining >= pop) {
        remaining -= pop;
        continue;
      }
      std::uint64_t word = upper_[w];
      for (std::size_t skip = remaining; skip > 0; --skip) word &= word - 1;
      return static_cast<std::uint64_t>(w) * 64 +
             static_cast<unsigned>(std::countr_zero(word));
    }
    throw std::logic_error("EliasFano::select1: rank out of range");
  }

  std::size_t n_ = 0;
  unsigned universe_bits_ = 0;
  unsigned l_ = 0;
  std::uint64_t upper_bit_count_ = 0;
  std::vector<std::uint64_t> upper_;  // unary high parts: bit (v_i >> l) + i
  std::vector<std::uint64_t> lower_;  // packed l-bit low parts
};

}  // namespace aem::store
