// External-memory key–value object store with a compact serving index.
//
// The store is the serving-side counterpart of the sorting pipeline: bulk
// construction runs the library's omega-oblivious mergesort over the input
// records, lays the result out as a block-aligned sorted log plus a
// sequential payload area, and builds a small in-memory index over the
// log's pages.  After that, point queries are the workload the AEM model
// prices at ~1 charged read: index lookup (host-side, free), one log-block
// read, plus ceil(len/B) payload reads for values too large to inline.
//
// Two index flavors, selectable per store (StoreConfig::index):
//
//  * kFence   — one full 64-bit fence key (the page's first key) per log
//    block: 64 bits/page, exactly one log read per get.
//  * kCompact — PaCHash-style quantized fences: each fence keeps only its
//    top c = ceil(log2 pages) + compact_extra_bits bits, and the monotone
//    quantized sequence is Elias–Fano coded (store/elias_fano.hpp) down to
//    ~(2 + extra) bits per page.  Quantization loses the ability to decide
//    *exactly* which page a key falls on when adjacent fences collide in
//    their top c bits, so a get probes its candidate page and walks back
//    over the (rare, geometrically distributed) collision run — still one
//    read in the common case, bounded by the run length in the worst one.
//
// All I/O goes through the Machine stack — ExtArray block transfers under
// whatever BlockCache / FaultPolicy / ShardedMachine the machine has
// installed — and all resident index state is charged to the MemoryLedger,
// so the metrics snapshot's `store` section (core/metrics.hpp, schema v7)
// reports honest figures.  Cost model: docs/MODEL.md section 14; measured
// by bench/bench_k1_store.
//
// Builds are optionally crash-consistent (StoreConfig::manifest_interval):
// a checksummed two-slot manifest — the classic alternating-superblock
// discipline, FNV-1a validated like the ExtArray recovery checksums —
// records the build frontier, and recover() turns a mid-build power cut
// (core/faults.hpp CrashError) into a charged resume instead of a loss.
// Reliability cost model: docs/MODEL.md section 15; measured by
// bench/bench_f1_recovery.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "core/ext_array.hpp"
#include "core/metrics.hpp"
#include "io/scanner.hpp"
#include "io/writer.hpp"
#include "sort/em_mergesort.hpp"
#include "store/elias_fano.hpp"
#include "util/math.hpp"
#include "util/search.hpp"

namespace aem::store {

/// One record header.  Fixed-size so the log is a plain ExtArray<Slot>;
/// values of at most one word are inlined into `pos`, larger values spill
/// into the store's payload area.
///
///   len == 0: empty value, `pos` unused (0).
///   len == 1: `pos` IS the value word (inline).
///   len >= 2: value occupies payload words [pos, pos + len).
///
/// In *input* slots (what build() consumes), `pos` of a spilled record
/// indexes the caller's payload array; build() gathers those words into the
/// store's own sequential payload area and rewrites `pos`.
struct Slot {
  std::uint64_t key = 0;
  std::uint64_t len = 0;
  std::uint64_t pos = 0;

  friend bool operator==(const Slot&, const Slot&) = default;
};
// The log is subject to fault-injection checksumming, which needs every
// byte of the representation to be value-determined.
static_assert(std::has_unique_object_representations_v<Slot>);

/// Key order; ties (duplicate keys) are left in input order by the stable
/// mergesort, which is what gives get() its last-insert-wins semantics.
struct SlotKeyLess {
  bool operator()(const Slot& a, const Slot& b) const { return a.key < b.key; }
};

/// Index flavor of a store.
enum class IndexKind : std::uint8_t {
  kFence,    // full 64-bit fence key per log page
  kCompact,  // Elias–Fano coded quantized fences (~bits per page)
};

inline const char* to_string(IndexKind k) {
  switch (k) {
    case IndexKind::kFence: return "fence";
    case IndexKind::kCompact: return "compact";
  }
  return "?";
}

struct StoreConfig {
  IndexKind index = IndexKind::kFence;

  /// kCompact only: quantization bits beyond ceil(log2 pages).  Each extra
  /// bit costs one bit per page and halves the adjacent-fence collision
  /// probability (and with it the expected probe-walk length).
  unsigned compact_extra_bits = 8;

  /// Crash-consistent (durable) builds: > 0 arms the superblock/manifest
  /// discipline — build() writes a checksummed manifest checkpoint every
  /// `manifest_interval` log pages plus a committed manifest at the end,
  /// enabling recover() after a mid-build power cut (CrashError).  Each
  /// checkpoint costs the manifest-slot write(s) plus the partial-payload
  /// block sync (an fsync, priced honestly).  0 (the default) builds
  /// exactly as before: no manifest array, no checkpoint writes, charges
  /// byte-identical to the pre-reliability-layer store.
  std::size_t manifest_interval = 0;

  /// Blocks per batched Machine::submit on the store's bulk paths (layout
  /// writes during build, sequential log reads during scan).  1 (the
  /// default) keeps every transfer on the historical per-op path —
  /// byte-identical charges.  Values >= 2 batch only where the deferral
  /// cannot be observed: a plain machine (no cache, no fault policy) and,
  /// for writes, a non-durable build (manifest checkpoints need the
  /// frontier flushed); elsewhere the store silently falls back to 1.  The
  /// same blocks are charged exactly once each in the same order either
  /// way (docs/MODEL.md section 17).
  std::size_t io_batch_blocks = 1;
};

/// What KvStore::recover() found and did.  The charged I/O of the whole
/// recovery pass (detection + fence re-scan + resumed or restarted build
/// work) is in reads/writes/cost, and is also noted on the machine
/// (Machine::note_recovery) for the metrics reliability section.
struct RecoveryReport {
  enum class Outcome : std::uint8_t {
    kReindexed,  // data committed; only the host-side index was rebuilt
    kResumed,    // torn build resumed from the last committed checkpoint
    kRestarted,  // no usable manifest; the build ran again from the inputs
  };

  Outcome outcome = Outcome::kRestarted;
  std::uint64_t manifest_reads = 0;  // charged manifest-slot reads
  std::uint64_t scan_reads = 0;      // charged log-page reads (fence rebuild)
  /// Records already durable at the checkpoint the build resumed from.
  std::size_t records_recovered = 0;
  /// The machine's charged-write clock stored in that checkpoint (0 when
  /// restarted) — the bench's recovery-write-bill bound is measured
  /// against writes after this mark.
  std::uint64_t writes_at_checkpoint = 0;
  std::uint64_t reads = 0;   // full recover() bill
  std::uint64_t writes = 0;  // full recover() bill
  std::uint64_t cost = 0;    // full recover() bill (Q)
};

inline const char* to_string(RecoveryReport::Outcome o) {
  switch (o) {
    case RecoveryReport::Outcome::kReindexed: return "reindexed";
    case RecoveryReport::Outcome::kResumed: return "resumed";
    case RecoveryReport::Outcome::kRestarted: return "restarted";
  }
  return "?";
}

/// Access counters of one store (read_block call counts on the store's
/// arrays — equal to charged reads at cache capacity 0; with a cache some
/// of them are free pool hits, visible in the machine's own deltas).
struct StoreStats {
  std::uint64_t gets = 0;
  std::uint64_t get_hits = 0;
  std::uint64_t get_log_reads = 0;      // log-block reads across all gets
  std::uint64_t get_payload_reads = 0;  // payload-block reads across all gets
  std::uint64_t max_get_log_reads = 0;  // worst single get (probe-walk length)
  std::uint64_t scans = 0;
  std::uint64_t scan_records = 0;  // records visited across all scans
  std::uint64_t puts = 0;
  std::uint64_t put_hits = 0;       // puts that found (and updated) their key
  std::uint64_t put_log_reads = 0;  // log-block reads across all puts
  std::uint64_t put_writes = 0;     // log-block writes across all puts
  /// Payload words stranded by puts that overwrote a spilled value with an
  /// inline one — dead weight a compacting rebuild would reclaim.
  std::uint64_t orphaned_words = 0;

  friend bool operator==(const StoreStats&, const StoreStats&) = default;
};

namespace detail {

/// Random-access block reads over an ExtArray<uint64_t> with a one-block
/// buffer, for the build-time payload gather (input payload positions arrive
/// in key order, i.e. scattered).  Each distinct block switch is one charged
/// read; consecutive words from the same block are free.
class WordReader {
 public:
  explicit WordReader(const ExtArray<std::uint64_t>& arr)
      : arr_(&arr), buf_(arr.machine(), arr.machine().B()) {}

  std::uint64_t word(std::uint64_t pos) {
    const std::size_t B = arr_->machine().B();
    const std::uint64_t bi = pos / B;
    if (!loaded_ || bi != block_) {
      arr_->read_block(bi, buf_.span());
      block_ = bi;
      loaded_ = true;
    }
    return buf_[static_cast<std::size_t>(pos % B)];
  }

 private:
  const ExtArray<std::uint64_t>* arr_;
  Buffer<std::uint64_t> buf_;
  std::uint64_t block_ = 0;
  bool loaded_ = false;
};

}  // namespace detail

class KvStore {
 public:
  explicit KvStore(Machine& mach, StoreConfig cfg = {})
      : mach_(&mach), cfg_(cfg) {}

  KvStore(KvStore&&) = default;
  KvStore& operator=(KvStore&&) = default;

  /// Bulk-builds the store from `in_slots` (record headers, any order;
  /// duplicates allowed) and `in_payload` (the words spilled records point
  /// into).  Three charged phases:
  ///
  ///   store.build.sort    stable em_merge_sort of the headers by key;
  ///   store.build.layout  one scan of the sorted headers, rewriting each
  ///                       spilled record's `pos` while gathering its words
  ///                       (random-access reads of in_payload) into the
  ///                       store's sequential payload area, and collecting
  ///                       fence keys host-side;
  ///   store.build.index   host-side index construction (free of I/O) and
  ///                       a cache flush, so the construction-cost figures
  ///                       include every deferred write-back.
  ///
  /// Construction cost deltas are captured in build_reads()/build_writes()/
  /// build_cost().  Rebuilding an already-built store throws.
  ///
  /// With StoreConfig::manifest_interval > 0 the build is additionally
  /// crash-consistent: a checksummed two-slot manifest records the build
  /// frontier (after the sort, every `manifest_interval` log pages during
  /// layout, and at commit), so a CrashError thrown mid-build leaves a
  /// state recover() can resume from.  The non-durable default charges
  /// exactly what it always has (no manifest array, no checkpoint writes).
  void build(const ExtArray<Slot>& in_slots,
             const ExtArray<std::uint64_t>& in_payload) {
    if (built_) throw std::logic_error("KvStore::build: already built");
    Machine& mach = *mach_;
    const IoStats before = mach.stats();
    const std::uint64_t cost_before = mach.cost();

    records_ = in_slots.size();
    log_ = ExtArray<Slot>(mach, records_, "store.log");
    payload_ = ExtArray<std::uint64_t>(mach, in_payload.size(),
                                       "store.payload");
    if (durable())
      manifest_ = ExtArray<std::uint64_t>(
          mach, 2 * manifest_slot_blocks() * mach.B(), "store.manifest");

    std::vector<std::uint64_t> fences;
    {
      MemoryReservation fence_res(mach.ledger(), mach.n_of(records_));
      fences.reserve(mach.n_of(records_));
      if (durable()) {
        run_durable_build(in_slots, in_payload, fences);
      } else {
        {
          auto sort_phase = mach.phase("store.build.sort");
          ExtArray<Slot> sorted(mach, records_, "store.sorted");
          em_merge_sort(in_slots, sorted, SlotKeyLess{});

          auto layout_phase = mach.phase("store.build.layout");
          layout_stream(sorted, in_payload, 0, 0, fences);
          // `sorted` dies here; its blocks were only ever read after the
          // sort, so no dirty write-backs are lost.
        }

        auto index_phase = mach.phase("store.build.index");
        build_index(fences);
      }
      // The full fence vector was a build-time temporary; fence_res (and for
      // kCompact the vector itself) is released here, leaving only the
      // serving index charged.
    }

    // Deferred cache write-backs belong to construction, not to the first
    // query that would otherwise evict them.
    mach.flush_cache();
    const IoStats after = mach.stats();
    build_reads_ = after.reads - before.reads;
    build_writes_ = after.writes - before.writes;
    build_cost_ = mach.cost() - cost_before;
    built_ = true;
  }

  /// Post-crash recovery of a durable build (see build()).  Reads both
  /// manifest slots (charged), picks the newest valid one, and:
  ///
  ///  * committed       — the data is all durable; every log page is
  ///                      re-scanned to rebuild the host-side fences and
  ///                      index (kReindexed);
  ///  * sorted / layout — pages below the checkpoint frontier are
  ///                      re-scanned, the layout stream resumes from
  ///                      (records_done, payload_words_done), and the
  ///                      build commits (kResumed);
  ///  * no valid slot   — the crash predates the first checkpoint; the
  ///                      whole durable build runs again (kRestarted).
  ///
  /// All recovery I/O is charged under phase "store.recover" (nested with
  /// the usual store.build.* phases for resumed work), reported on the
  /// machine (Machine::note_recovery — the metrics reliability section),
  /// and returned in the RecoveryReport.  build_reads()/writes()/cost()
  /// keep the figures of the interrupted build() attempt; the recovery
  /// bill is accounted separately.  Throws std::logic_error if the store
  /// is already built, is not durable, or build() was never attempted.
  RecoveryReport recover(const ExtArray<Slot>& in_slots,
                         const ExtArray<std::uint64_t>& in_payload) {
    if (built_) throw std::logic_error("KvStore::recover: already built");
    if (!durable())
      throw std::logic_error(
          "KvStore::recover: not a durable store (manifest_interval == 0)");
    if (manifest_.size() == 0)
      throw std::logic_error("KvStore::recover: no interrupted build");
    if (in_slots.size() != records_)
      throw std::invalid_argument(
          "KvStore::recover: inputs do not match the interrupted build");
    Machine& mach = *mach_;
    const IoStats before = mach.stats();
    const std::uint64_t cost_before = mach.cost();
    RecoveryReport rep;
    {
      auto recover_phase = mach.phase("store.recover");
      Manifest best;
      for (std::size_t slot = 0; slot < 2; ++slot) {
        const Manifest m = read_manifest_slot(slot, rep.manifest_reads);
        if (m.valid && (!best.valid || m.seq > best.seq)) best = m;
      }
      // Resync the commit sequence to the surviving slot, so the next
      // commit overwrites the OTHER slot (the crash may have torn the
      // in-flight one — it must stay overwritable, not trusted).
      if (best.valid) manifest_seq_ = best.seq;

      std::vector<std::uint64_t> fences;
      MemoryReservation fence_res(mach.ledger(), mach.n_of(records_));
      fences.reserve(mach.n_of(records_));
      if (best.valid && best.phase == kPhaseCommitted) {
        payload_words_ = best.words_done;
        max_value_words_ = best.max_value_words;
        rescan_fences(static_cast<std::size_t>(best.pages_done), fences,
                      rep.scan_reads);
        build_index(fences);
        sorted_ = ExtArray<Slot>();
        rep.outcome = RecoveryReport::Outcome::kReindexed;
        rep.records_recovered = records_;
        rep.writes_at_checkpoint = best.writes_at_commit;
      } else if (best.valid && sorted_.size() == records_) {
        // The sorted run was committed before the first layout write could
        // tear, and everything below the frontier is durable: redo only
        // the tail.
        max_value_words_ = best.max_value_words;
        rescan_fences(static_cast<std::size_t>(best.pages_done), fences,
                      rep.scan_reads);
        {
          auto layout_phase = mach.phase("store.build.layout");
          layout_stream(sorted_, in_payload,
                        static_cast<std::size_t>(best.records_done),
                        best.words_done, fences);
        }
        {
          auto index_phase = mach.phase("store.build.index");
          build_index(fences);
        }
        mach.flush_cache();
        commit_manifest(kPhaseCommitted, records_, payload_words_);
        sorted_ = ExtArray<Slot>();
        rep.outcome = RecoveryReport::Outcome::kResumed;
        rep.records_recovered = static_cast<std::size_t>(best.records_done);
        rep.writes_at_checkpoint = best.writes_at_commit;
      } else {
        // Nothing durable to trust: run the whole build again.
        max_value_words_ = 0;
        payload_words_ = 0;
        run_durable_build(in_slots, in_payload, fences);
        rep.outcome = RecoveryReport::Outcome::kRestarted;
      }
    }
    mach.flush_cache();
    const IoStats after = mach.stats();
    rep.reads = after.reads - before.reads;
    rep.writes = after.writes - before.writes;
    rep.cost = mach.cost() - cost_before;
    mach.note_recovery(rep.reads, rep.writes, rep.cost);
    built_ = true;
    return rep;
  }

  // --- serving -------------------------------------------------------------

  /// Point query.  Returns the value of the LAST record with `key` in input
  /// order (stable sort keeps duplicate runs in insertion order, and the
  /// located page is the last one whose fence is <= key, so "latest insert
  /// wins" — upsert semantics).  Disengaged optional when the key is absent;
  /// an engaged empty vector is a present key with an empty value.
  std::optional<std::vector<std::uint64_t>> get(std::uint64_t key) {
    check_built();
    ++stats_.gets;
    std::uint64_t log_reads = 0;
    const auto miss = [&]() -> std::optional<std::vector<std::uint64_t>> {
      note_get(log_reads);
      return std::nullopt;
    };
    if (records_ == 0) return miss();

    Buffer<Slot> page(*mach_, mach_->B());
    std::size_t count = 0;
    const std::optional<std::size_t> located =
        locate_page(key, page, count, log_reads);
    if (!located) return miss();  // key precedes every stored key

    // Last slot in the page with this key (duplicate runs never extend into
    // the next page: its fence would then be <= key, contradicting the page
    // choice above).
    const Slot* begin = page.data();
    const Slot* end = begin + count;
    const Slot* it = std::upper_bound(
        begin, end, key,
        [](std::uint64_t k, const Slot& s) { return k < s.key; });
    if (it == begin || (it - 1)->key != key) return miss();
    const Slot& hit = *(it - 1);
    ++stats_.get_hits;

    std::vector<std::uint64_t> value;
    if (hit.len == 1) {
      value.push_back(hit.pos);
    } else if (hit.len >= 2) {
      value.reserve(static_cast<std::size_t>(hit.len));
      Scanner<std::uint64_t> pay(payload_, hit.pos, hit.pos + hit.len);
      const std::uint64_t payload_reads =
          util::ceil_div(hit.pos + hit.len, mach_->B()) -
          hit.pos / mach_->B();
      while (!pay.done()) value.push_back(pay.next());
      stats_.get_payload_reads += payload_reads;
    }
    note_get(log_reads);
    return value;
  }

  /// In-place point update: overwrites the value of an EXISTING key with an
  /// inline word (len 1).  This is the store's serving-time write path —
  /// the write mix of a request stream (traffic/engine.hpp) — priced like a
  /// read-modify-write: locate_page (the usual charged log read(s), one
  /// under kFence), rewrite the slot host-side, write the page back (one
  /// charged omega-write; with a block cache the write-back is deferred
  /// like any dirty block).  Updates the LAST duplicate of the key — the
  /// slot get() serves — keeping upsert semantics intact.  Overwriting a
  /// spilled value strands its payload words; the orphaned_words counter
  /// totals that dead weight, the trigger for a compacting re-build (build
  /// a fresh store from a full scan once the orphan share justifies the
  /// write bill; docs/MODEL.md section 16).  Returns false — charging only
  /// the locate reads — when the key is absent: the sorted log cannot admit
  /// new keys in place, so inserts go through a re-build by design.
  bool put_inline(std::uint64_t key, std::uint64_t value) {
    check_built();
    ++stats_.puts;
    std::uint64_t log_reads = 0;
    const auto miss = [&]() {
      note_put(log_reads);
      return false;
    };
    if (records_ == 0) return miss();

    Buffer<Slot> page(*mach_, mach_->B());
    std::size_t count = 0;
    const std::optional<std::size_t> located =
        locate_page(key, page, count, log_reads);
    if (!located) return miss();

    Slot* begin = page.data();
    Slot* end = begin + count;
    Slot* it = std::upper_bound(
        begin, end, key,
        [](std::uint64_t k, const Slot& s) { return k < s.key; });
    if (it == begin || (it - 1)->key != key) return miss();
    Slot& hit = *(it - 1);
    ++stats_.put_hits;
    if (hit.len >= 2) stats_.orphaned_words += hit.len;
    hit.len = 1;
    hit.pos = value;
    log_.write_block(*located, std::span<const Slot>(page.data(), count));
    ++stats_.put_writes;
    note_put(log_reads);
    return true;
  }

  /// Write-efficient batched puts (docs/MODEL.md section 18): equivalent to
  /// calling put_inline(key, value) for every op in order — same hits and
  /// misses, same orphaned_words growth, same final store bytes — but K ops
  /// landing on one log page are ABSORBED into at most one charged log read
  /// plus one charged omega-write for the whole page group, instead of K of
  /// each.  The ops are ordered host-side by key (stable, so equal keys
  /// keep submission order and last-write-wins is preserved); the fence
  /// index then decides each key's page without I/O, and the loaded page is
  /// written back once when the group ends.  Keys preceding every stored
  /// key miss for free, exactly like put_inline; keys missing within a read
  /// page share that page's single read.  A batch of size 1 charges
  /// byte-identically to put_inline.
  ///
  /// Page membership is only decidable host-side under the fence index;
  /// kCompact (whose locate probes and walks) falls back to sequential
  /// put_inline calls — the same fallback rule as the batched scan path.
  /// Returns the number of ops that hit.
  std::size_t put_inline_batch(
      std::span<const std::pair<std::uint64_t, std::uint64_t>> ops) {
    check_built();
    std::size_t hits = 0;
    if (cfg_.index != IndexKind::kFence) {
      for (const auto& [key, value] : ops)
        if (put_inline(key, value)) ++hits;
      return hits;
    }
    stats_.puts += ops.size();
    if (records_ == 0 || ops.empty()) return 0;

    // Host-side op order: stable by key, so one page's group applies in
    // submission order (first hit on a spilled slot orphans it, later hits
    // see the inline slot; the last value wins).
    std::vector<std::size_t> order(ops.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                       return ops[a].first < ops[b].first;
                     });

    std::uint64_t log_reads = 0;
    Buffer<Slot> page(*mach_, mach_->B());
    constexpr std::size_t kNoPage = std::numeric_limits<std::size_t>::max();
    std::size_t cur = kNoPage;  // loaded page, or kNoPage
    std::size_t count = 0;
    bool dirty = false;
    const auto flush = [&]() {
      if (!dirty) return;
      log_.write_block(cur, std::span<const Slot>(page.data(), count));
      ++stats_.put_writes;
      dirty = false;
    };
    for (const std::size_t idx : order) {
      const auto [key, value] = ops[idx];
      const std::size_t r = fence_idx_.rank_upper(key);
      if (r == 0) continue;  // precedes every stored key: uncharged miss
      const std::size_t bi = r - 1;
      if (bi != cur) {
        flush();
        count = log_.block_elems(bi);
        log_.read_block(bi, page.span());
        ++log_reads;  // the group's one absorbed read
        cur = bi;
      }
      Slot* begin = page.data();
      Slot* end = begin + count;
      Slot* it = std::upper_bound(
          begin, end, key,
          [](std::uint64_t k, const Slot& s) { return k < s.key; });
      if (it == begin || (it - 1)->key != key) continue;  // in-page miss
      Slot& hit = *(it - 1);
      ++stats_.put_hits;
      ++hits;
      if (hit.len >= 2) stats_.orphaned_words += hit.len;
      hit.len = 1;
      hit.pos = value;
      dirty = true;
    }
    flush();
    note_put(log_reads);
    return hits;
  }

  /// Range query: visits every record with lo <= key <= hi in key order
  /// (duplicates in input order), streaming the log — and, lazily, the
  /// payload area — sequentially.  Returns the number of records visited.
  std::size_t scan(
      std::uint64_t lo, std::uint64_t hi,
      const std::function<void(std::uint64_t key,
                               std::span<const std::uint64_t> value)>& visit) {
    check_built();
    ++stats_.scans;
    if (records_ == 0 || lo > hi) return 0;

    // First page that can contain a key >= lo: the last page whose fence is
    // STRICTLY below lo (every earlier page ends before lo; later pages may
    // all start with lo itself when a duplicate run of lo spans pages), or
    // page 0 when no fence is below lo.  That is locate_page(lo - 1), which
    // also keeps the quantized index exact.  Under the compact index this
    // probe-reads its candidate page(s); the Scanner below re-reads the
    // start page, a bounded price (one read, or a pool hit) for keeping the
    // sequential path simple.
    std::size_t start_page = 0;
    if (lo > 0) {
      Buffer<Slot> page(*mach_, mach_->B());
      std::size_t count = 0;
      std::uint64_t probe_reads = 0;
      start_page = locate_page(lo - 1, page, count, probe_reads).value_or(0);
    }

    // Batched fast path: the fence index bounds the page range host-side,
    // so the sequential log reads can go out as chunked Machine::submit
    // batches — same blocks, same order, same charges as the Scanner path.
    if (cfg_.index == IndexKind::kFence && read_batch_blocks() >= 2) {
      const std::size_t visited = scan_batched(lo, hi, visit, start_page);
      stats_.scan_records += visited;
      return visited;
    }

    std::size_t visited = 0;
    Scanner<Slot> log(log_, start_page * mach_->B(), records_);
    // Lazily constructed so an all-inline scan charges no payload reads.
    std::optional<Scanner<std::uint64_t>> pay;
    std::vector<std::uint64_t> value;
    while (!log.done()) {
      const Slot s = log.next();
      if (s.key < lo) continue;
      if (s.key > hi) break;
      value.clear();
      if (s.len == 1) {
        value.push_back(s.pos);
      } else if (s.len >= 2) {
        if (!pay) pay.emplace(payload_, 0, payload_words_);
        // Spilled positions are assigned in log order, so one forward
        // scanner with skip() covers every spilled value in the range.
        pay->skip(static_cast<std::size_t>(s.pos) - pay->position());
        for (std::uint64_t w = 0; w < s.len; ++w)
          value.push_back(pay->next());
      }
      visit(s.key, std::span<const std::uint64_t>(value));
      ++visited;
    }
    stats_.scan_records += visited;
    return visited;
  }

  // --- introspection -------------------------------------------------------
  bool built() const { return built_; }
  const StoreConfig& config() const { return cfg_; }
  std::size_t records() const { return records_; }
  std::size_t log_blocks() const { return built_ ? log_.blocks() : 0; }
  std::uint64_t payload_words() const { return payload_words_; }
  std::size_t payload_blocks() const {
    return mach_->n_of(static_cast<std::size_t>(payload_words_));
  }
  /// Serving-index size in bits (64/page for kFence, the Elias–Fano size
  /// for kCompact).
  std::uint64_t index_bits() const { return index_bits_; }
  /// Resident index words charged to the memory ledger for the store's
  /// lifetime: the padded Eytzinger footprint under kFence (>= one word per
  /// log page, < 2n + 1), the Elias–Fano words under kCompact.
  std::size_t index_resident_words() const { return index_res_.elems(); }
  std::uint64_t build_reads() const { return build_reads_; }
  std::uint64_t build_writes() const { return build_writes_; }
  std::uint64_t build_cost() const { return build_cost_; }
  const StoreStats& stats() const { return stats_; }
  void reset_stats() { stats_ = StoreStats{}; }

  /// The metrics-snapshot `store` section (schema v7).  Attach it to a
  /// snapshot taken from the same machine:
  ///   auto snap = snapshot_metrics(mach, label);
  ///   snap.store = store.metrics_section();
  StoreMetrics metrics_section() const {
    StoreMetrics m;
    m.enabled = true;
    m.index = to_string(cfg_.index);
    m.records = records_;
    m.log_blocks = log_blocks();
    m.payload_words = payload_words_;
    m.payload_blocks = payload_blocks();
    m.index_bits = index_bits_;
    m.index_bits_per_page =
        log_blocks() == 0
            ? 0.0
            : static_cast<double>(index_bits_) /
                  static_cast<double>(log_blocks());
    m.gets = stats_.gets;
    m.get_hits = stats_.get_hits;
    m.get_log_reads = stats_.get_log_reads;
    m.get_payload_reads = stats_.get_payload_reads;
    m.max_get_log_reads = stats_.max_get_log_reads;
    m.scans = stats_.scans;
    m.scan_records = stats_.scan_records;
    m.puts = stats_.puts;
    m.put_hits = stats_.put_hits;
    m.put_log_reads = stats_.put_log_reads;
    m.put_writes = stats_.put_writes;
    m.orphaned_words = stats_.orphaned_words;
    m.build_reads = build_reads_;
    m.build_writes = build_writes_;
    m.build_cost = build_cost_;
    return m;
  }

  /// The underlying device arrays (diagnostics and identity checks — e.g.
  /// bench_f1_recovery proving a recovered store byte-identical to an
  /// uncrashed build).
  const ExtArray<Slot>& log_array() const { return log_; }
  const ExtArray<std::uint64_t>& payload_array() const { return payload_; }
  /// Number of manifest commits so far (0 on a non-durable store).
  std::uint64_t manifest_commits() const { return manifest_seq_; }
  /// Device blocks held by the manifest array (both slots; 0 when
  /// non-durable or before build()).
  std::size_t manifest_blocks() const {
    return manifest_.size() == 0 ? 0 : 2 * manifest_slot_blocks();
  }

 private:
  static constexpr std::uint64_t kManifestMagic = 0x41454d4b56313653ULL;
  static constexpr std::uint64_t kPhaseSorted = 1;
  static constexpr std::uint64_t kPhaseLayout = 2;
  static constexpr std::uint64_t kPhaseCommitted = 3;
  static constexpr std::size_t kManifestWords = 10;

  /// A decoded (and checksum-validated) manifest slot.
  struct Manifest {
    bool valid = false;
    std::uint64_t seq = 0;
    std::uint64_t phase = 0;
    std::uint64_t records_done = 0;
    std::uint64_t words_done = 0;
    std::uint64_t pages_done = 0;
    std::uint64_t max_value_words = 0;
    std::uint64_t writes_at_commit = 0;
    std::uint64_t records_total = 0;
  };

  bool durable() const { return cfg_.manifest_interval > 0; }
  std::size_t manifest_slot_blocks() const {
    return mach_->n_of(kManifestWords);
  }

  void check_built() const {
    if (!built_) throw std::logic_error("KvStore: not built yet");
  }

  /// The durable build body, shared by build() and recover()'s restart
  /// path: sort into the sorted_ member (kept until commit so a resume can
  /// re-read it), checkpoint the sorted run, stream the layout with
  /// periodic checkpoints, build the index, commit.  Assumes log_,
  /// payload_, and manifest_ are allocated.
  void run_durable_build(const ExtArray<Slot>& in_slots,
                         const ExtArray<std::uint64_t>& in_payload,
                         std::vector<std::uint64_t>& fences) {
    Machine& mach = *mach_;
    {
      auto sort_phase = mach.phase("store.build.sort");
      if (sorted_.size() != records_)
        sorted_ = ExtArray<Slot>(mach, records_, "store.sorted");
      em_merge_sort(in_slots, sorted_, SlotKeyLess{});
    }
    // The sorted run is the durable input of every later resume: commit it
    // before the first layout write can tear.
    commit_manifest(kPhaseSorted, 0, 0);
    {
      auto layout_phase = mach.phase("store.build.layout");
      layout_stream(sorted_, in_payload, 0, 0, fences);
    }
    {
      auto index_phase = mach.phase("store.build.index");
      build_index(fences);
    }
    mach.flush_cache();
    commit_manifest(kPhaseCommitted, records_, payload_words_);
    sorted_ = ExtArray<Slot>();
  }

  /// The layout-phase body, shared by build() and recover(): streams
  /// sorted records [start_record, records_) into the log, gathering each
  /// spilled record's words into the sequential payload area from
  /// `start_word` on, appending one fence per page started.  On a durable
  /// store a checkpoint manifest is committed every manifest_interval log
  /// pages; the partial payload block is synced first (its next flush then
  /// pays the read-modify-write a real device would), so the recorded
  /// frontier is genuinely on device.  start_record must be page-aligned.
  void layout_stream(const ExtArray<Slot>& sorted,
                     const ExtArray<std::uint64_t>& in_payload,
                     std::size_t start_record, std::uint64_t start_word,
                     std::vector<std::uint64_t>& fences) {
    Machine& mach = *mach_;
    const std::size_t B = mach.B();
    Scanner<Slot> in(sorted, start_record, records_);
    // Batched layout writes where deferral is unobservable (plain machine,
    // non-durable build); wb == 1 elsewhere is the historical path.
    const std::size_t wb = write_batch_blocks();
    Writer<Slot> out(log_, start_record, Writer<Slot>::npos, wb);
    Writer<std::uint64_t> pay(payload_, static_cast<std::size_t>(start_word),
                              Writer<std::uint64_t>::npos, wb);
    detail::WordReader gather(in_payload);
    std::size_t idx = start_record;
    std::uint64_t next_word = start_word;
    const std::size_t every = cfg_.manifest_interval * B;  // in records
    while (!in.done()) {
      if (every != 0 && idx != start_record && idx % every == 0) {
        pay.finish();  // sync the partial payload block under the frontier
        commit_manifest(kPhaseLayout, idx, next_word);
      }
      Slot s = in.next();
      if (idx % B == 0) fences.push_back(s.key);
      if (s.len >= 2) {
        const std::uint64_t src = s.pos;
        if (src + s.len > in_payload.size())
          throw std::out_of_range(
              "KvStore::build: spilled record points past the payload "
              "input");
        s.pos = next_word;
        for (std::uint64_t w = 0; w < s.len; ++w)
          pay.push(gather.word(src + w));
        next_word += s.len;
        if (s.len > max_value_words_) max_value_words_ = s.len;
      }
      out.push(s);
      ++idx;
    }
    out.finish();
    pay.finish();
    payload_words_ = next_word;
  }

  /// Host-side serving-index construction from the collected fence keys.
  /// I/O-free; the index reservation stays charged for the store's
  /// lifetime.
  void build_index(std::vector<std::uint64_t>& fences) {
    Machine& mach = *mach_;
    if (cfg_.index == IndexKind::kFence) {
      // Branchless Eytzinger layout of the fence keys (util/search.hpp):
      // same rank answers as the sorted array, fewer mispredicts per get.
      // The ledger reservation covers the PADDED footprint — the words the
      // layout actually keeps resident.
      fence_idx_ = util::EytzingerSearch(fences);
      index_res_ = MemoryReservation(mach.ledger(), fence_idx_.footprint());
      index_bits_ = static_cast<std::uint64_t>(fence_idx_.size()) * 64;
    } else {
      const std::size_t pages = fences.size();
      quant_bits_ = std::min<unsigned>(
          64, util::ilog2_ceil(std::max<std::size_t>(pages, 1)) +
                  cfg_.compact_extra_bits);
      std::vector<std::uint64_t> quantized(pages);
      for (std::size_t i = 0; i < pages; ++i)
        quantized[i] = quantize(fences[i]);
      ef_ = EliasFano(quantized, quant_bits_);
      index_res_ = MemoryReservation(mach.ledger(), ef_.words());
      index_bits_ = ef_.bits();
    }
  }

  /// Durably records the build frontier: the cache is flushed (everything
  /// the frontier claims must be on device BEFORE the claim), then the
  /// next slot — seq alternates between the two, the classic superblock
  /// discipline, so a torn slot write can only destroy the OLDER record —
  /// is written and flushed.  Word layout:
  ///   [0] magic          [1] seq            [2] phase
  ///   [3] records_done   [4] payload_words  [5] log_pages_done
  ///   [6] max_value_words [7] machine write clock  [8] records_total
  ///   [9] FNV-1a checksum of words 0..8
  void commit_manifest(std::uint64_t phase, std::uint64_t records_done,
                       std::uint64_t words_done) {
    Machine& mach = *mach_;
    mach.flush_cache();
    ++manifest_seq_;
    std::uint64_t w[kManifestWords] = {};
    w[0] = kManifestMagic;
    w[1] = manifest_seq_;
    w[2] = phase;
    w[3] = records_done;
    w[4] = words_done;
    w[5] = mach.n_of(static_cast<std::size_t>(records_done));
    w[6] = max_value_words_;
    w[7] = mach.stats().writes;
    w[8] = records_;
    w[9] = fault_checksum(w, sizeof(std::uint64_t) * (kManifestWords - 1));
    const std::size_t B = mach.B();
    const std::size_t sb = manifest_slot_blocks();
    const std::size_t base = static_cast<std::size_t>(manifest_seq_ % 2) * sb;
    Buffer<std::uint64_t> buf(mach, B);
    for (std::size_t j = 0; j < sb; ++j) {
      for (std::size_t k = 0; k < B; ++k) {
        const std::size_t wi = j * B + k;
        buf[k] = wi < kManifestWords ? w[wi] : 0;
      }
      manifest_.write_block(base + j,
                            std::span<const std::uint64_t>(buf.data(), B));
    }
    mach.flush_cache();
  }

  /// Reads one manifest slot (charged) and validates magic, checksum, and
  /// shape; an unwritten or torn slot decodes as !valid.
  Manifest read_manifest_slot(std::size_t slot, std::uint64_t& reads) {
    Machine& mach = *mach_;
    const std::size_t B = mach.B();
    const std::size_t sb = manifest_slot_blocks();
    std::uint64_t w[kManifestWords] = {};
    Buffer<std::uint64_t> buf(mach, B);
    for (std::size_t j = 0; j < sb; ++j) {
      manifest_.read_block(slot * sb + j, buf.span());
      ++reads;
      for (std::size_t k = 0; k < B && j * B + k < kManifestWords; ++k)
        w[j * B + k] = buf[k];
    }
    Manifest m;
    if (w[0] != kManifestMagic ||
        w[9] != fault_checksum(w, sizeof(std::uint64_t) *
                                      (kManifestWords - 1)) ||
        w[2] < kPhaseSorted || w[2] > kPhaseCommitted || w[8] != records_)
      return m;
    m.valid = true;
    m.seq = w[1];
    m.phase = w[2];
    m.records_done = w[3];
    m.words_done = w[4];
    m.pages_done = w[5];
    m.max_value_words = w[6];
    m.writes_at_commit = w[7];
    m.records_total = w[8];
    return m;
  }

  /// Rebuilds fence keys for log pages [0, pages) by reading each page —
  /// the charged detection scan of recovery.
  void rescan_fences(std::size_t pages, std::vector<std::uint64_t>& fences,
                     std::uint64_t& reads) {
    Buffer<Slot> page(*mach_, mach_->B());
    for (std::size_t bi = 0; bi < pages; ++bi) {
      log_.read_block(bi, page.span());
      ++reads;
      fences.push_back(page[0].key);
    }
  }

  /// Largest page whose fence (first key) is <= key, leaving that page's
  /// contents in `page` (`count` records); nullopt when the key precedes
  /// every stored key.  kFence decides from the fence array (exactly one
  /// log read); kCompact probes the quantized index's candidate and walks
  /// back while the probed page provably starts past the key.  The walk
  /// cannot pass the start of the quantization-collision run: a page with
  /// q(fence) < q(key) has fence < key and terminates it, so its length is
  /// bounded by the run of adjacent fences sharing the key's top bits.
  /// `reads` is incremented once per log-block read.
  std::optional<std::size_t> locate_page(std::uint64_t key, Buffer<Slot>& page,
                                         std::size_t& count,
                                         std::uint64_t& reads) {
    if (cfg_.index == IndexKind::kFence) {
      const std::size_t r = fence_idx_.rank_upper(key);
      if (r == 0) return std::nullopt;
      const std::size_t bi = r - 1;
      count = log_.block_elems(bi);
      log_.read_block(bi, page.span());
      ++reads;
      return bi;
    }
    std::size_t i = ef_.predecessor(quantize(key));
    if (i == EliasFano::npos) return std::nullopt;  // q(fence_0) > q(key)
    for (;;) {
      count = log_.block_elems(i);
      log_.read_block(i, page.span());
      ++reads;
      if (page[0].key <= key) return i;
      if (i == 0) return std::nullopt;
      --i;
    }
  }

  /// Effective blocks per batched read submit: the configured knob on a
  /// plain machine, 1 (per-op path) under a cache or fault policy, where
  /// hit accounting and fault/crash interleavings must see every transfer
  /// individually.
  std::size_t read_batch_blocks() const {
    if (cfg_.io_batch_blocks < 2) return 1;
    if (mach_->cache() != nullptr || mach_->faults() != nullptr) return 1;
    return cfg_.io_batch_blocks;
  }

  /// Effective blocks per batched write submit: additionally 1 on durable
  /// builds, whose checkpoint manifests need the layout frontier flushed at
  /// exact record boundaries.
  std::size_t write_batch_blocks() const {
    if (cfg_.manifest_interval != 0) return 1;
    return read_batch_blocks();
  }

  /// The scan() body on the batched path (kFence, plain machine): the fence
  /// index decides host-side that the legacy Scanner would read every page
  /// in [start_page, q) — their fences are <= hi and the log is globally
  /// sorted, so no break can occur before the last of them — and issues
  /// those reads as io_batch_blocks-sized batches, then reads the one extra
  /// page the Scanner reads when the range was not already cut short.
  /// Identical charge set and order to the Scanner path.
  std::size_t scan_batched(
      std::uint64_t lo, std::uint64_t hi,
      const std::function<void(std::uint64_t key,
                               std::span<const std::uint64_t> value)>& visit,
      std::size_t start_page) {
    const std::size_t B = mach_->B();
    const std::size_t q = fence_idx_.rank_upper(hi);  // pages with fence <= hi
    const std::size_t pages = log_.blocks();
    const std::size_t chunk = read_batch_blocks();
    Buffer<Slot> buf(*mach_, chunk * B);
    std::optional<Scanner<std::uint64_t>> pay;
    std::vector<std::uint64_t> value;
    std::size_t visited = 0;
    bool past_hi = false;

    auto consume = [&](const Slot* slots, std::size_t count) {
      for (std::size_t k = 0; k < count; ++k) {
        const Slot& s = slots[k];
        if (s.key < lo) continue;
        if (s.key > hi) {
          past_hi = true;
          return;
        }
        value.clear();
        if (s.len == 1) {
          value.push_back(s.pos);
        } else if (s.len >= 2) {
          if (!pay) pay.emplace(payload_, 0, payload_words_);
          pay->skip(static_cast<std::size_t>(s.pos) - pay->position());
          for (std::uint64_t w = 0; w < s.len; ++w)
            value.push_back(pay->next());
        }
        visit(s.key, std::span<const std::uint64_t>(value));
        ++visited;
      }
    };

    std::size_t p = start_page;
    while (!past_hi && p < q) {
      const std::size_t n = std::min(chunk, q - p);
      std::size_t total = 0;
      for (std::size_t j = 0; j < n; ++j) total += log_.block_elems(p + j);
      log_.read_blocks(p, n, std::span<Slot>(buf.data(), total));
      consume(buf.data(), total);
      p += n;
    }
    // Page q starts past hi (its fence is > hi); the Scanner still reads it
    // to see that first key, unless an in-page break or the end of the
    // records already stopped the loop.
    if (!past_hi && p < pages) {
      const std::size_t count = log_.block_elems(p);
      log_.read_block(p, std::span<Slot>(buf.data(), B));
      consume(buf.data(), count);
    }
    return visited;
  }

  void note_get(std::uint64_t log_reads) {
    stats_.get_log_reads += log_reads;
    if (log_reads > stats_.max_get_log_reads)
      stats_.max_get_log_reads = log_reads;
  }

  void note_put(std::uint64_t log_reads) {
    stats_.put_log_reads += log_reads;
  }

  std::uint64_t quantize(std::uint64_t key) const {
    return quant_bits_ >= 64 ? key : key >> (64 - quant_bits_);
  }

  Machine* mach_ = nullptr;
  StoreConfig cfg_;
  bool built_ = false;

  std::size_t records_ = 0;
  ExtArray<Slot> log_;
  ExtArray<std::uint64_t> payload_;
  std::uint64_t payload_words_ = 0;
  std::uint64_t max_value_words_ = 0;

  // Durable-build state (cfg_.manifest_interval > 0 only).
  ExtArray<std::uint64_t> manifest_;  // two alternating superblock slots
  ExtArray<Slot> sorted_;  // kept until commit so recover() can resume
  std::uint64_t manifest_seq_ = 0;

  // Serving index (one of the two, per cfg_.index), charged for the store's
  // lifetime.
  util::EytzingerSearch fence_idx_;
  EliasFano ef_;
  unsigned quant_bits_ = 0;
  MemoryReservation index_res_;
  std::uint64_t index_bits_ = 0;

  std::uint64_t build_reads_ = 0;
  std::uint64_t build_writes_ = 0;
  std::uint64_t build_cost_ = 0;
  StoreStats stats_;
};

}  // namespace aem::store
