// External-memory key–value object store with a compact serving index.
//
// The store is the serving-side counterpart of the sorting pipeline: bulk
// construction runs the library's omega-oblivious mergesort over the input
// records, lays the result out as a block-aligned sorted log plus a
// sequential payload area, and builds a small in-memory index over the
// log's pages.  After that, point queries are the workload the AEM model
// prices at ~1 charged read: index lookup (host-side, free), one log-block
// read, plus ceil(len/B) payload reads for values too large to inline.
//
// Two index flavors, selectable per store (StoreConfig::index):
//
//  * kFence   — one full 64-bit fence key (the page's first key) per log
//    block: 64 bits/page, exactly one log read per get.
//  * kCompact — PaCHash-style quantized fences: each fence keeps only its
//    top c = ceil(log2 pages) + compact_extra_bits bits, and the monotone
//    quantized sequence is Elias–Fano coded (store/elias_fano.hpp) down to
//    ~(2 + extra) bits per page.  Quantization loses the ability to decide
//    *exactly* which page a key falls on when adjacent fences collide in
//    their top c bits, so a get probes its candidate page and walks back
//    over the (rare, geometrically distributed) collision run — still one
//    read in the common case, bounded by the run length in the worst one.
//
// All I/O goes through the Machine stack — ExtArray block transfers under
// whatever BlockCache / FaultPolicy / ShardedMachine the machine has
// installed — and all resident index state is charged to the MemoryLedger,
// so the metrics snapshot's `store` section (core/metrics.hpp, schema v5)
// reports honest figures.  Cost model: docs/MODEL.md section 14; measured
// by bench/bench_k1_store.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "core/ext_array.hpp"
#include "core/metrics.hpp"
#include "io/scanner.hpp"
#include "io/writer.hpp"
#include "sort/em_mergesort.hpp"
#include "store/elias_fano.hpp"
#include "util/math.hpp"

namespace aem::store {

/// One record header.  Fixed-size so the log is a plain ExtArray<Slot>;
/// values of at most one word are inlined into `pos`, larger values spill
/// into the store's payload area.
///
///   len == 0: empty value, `pos` unused (0).
///   len == 1: `pos` IS the value word (inline).
///   len >= 2: value occupies payload words [pos, pos + len).
///
/// In *input* slots (what build() consumes), `pos` of a spilled record
/// indexes the caller's payload array; build() gathers those words into the
/// store's own sequential payload area and rewrites `pos`.
struct Slot {
  std::uint64_t key = 0;
  std::uint64_t len = 0;
  std::uint64_t pos = 0;

  friend bool operator==(const Slot&, const Slot&) = default;
};
// The log is subject to fault-injection checksumming, which needs every
// byte of the representation to be value-determined.
static_assert(std::has_unique_object_representations_v<Slot>);

/// Key order; ties (duplicate keys) are left in input order by the stable
/// mergesort, which is what gives get() its last-insert-wins semantics.
struct SlotKeyLess {
  bool operator()(const Slot& a, const Slot& b) const { return a.key < b.key; }
};

/// Index flavor of a store.
enum class IndexKind : std::uint8_t {
  kFence,    // full 64-bit fence key per log page
  kCompact,  // Elias–Fano coded quantized fences (~bits per page)
};

inline const char* to_string(IndexKind k) {
  switch (k) {
    case IndexKind::kFence: return "fence";
    case IndexKind::kCompact: return "compact";
  }
  return "?";
}

struct StoreConfig {
  IndexKind index = IndexKind::kFence;

  /// kCompact only: quantization bits beyond ceil(log2 pages).  Each extra
  /// bit costs one bit per page and halves the adjacent-fence collision
  /// probability (and with it the expected probe-walk length).
  unsigned compact_extra_bits = 8;
};

/// Access counters of one store (read_block call counts on the store's
/// arrays — equal to charged reads at cache capacity 0; with a cache some
/// of them are free pool hits, visible in the machine's own deltas).
struct StoreStats {
  std::uint64_t gets = 0;
  std::uint64_t get_hits = 0;
  std::uint64_t get_log_reads = 0;      // log-block reads across all gets
  std::uint64_t get_payload_reads = 0;  // payload-block reads across all gets
  std::uint64_t max_get_log_reads = 0;  // worst single get (probe-walk length)
  std::uint64_t scans = 0;
  std::uint64_t scan_records = 0;  // records visited across all scans

  friend bool operator==(const StoreStats&, const StoreStats&) = default;
};

namespace detail {

/// Random-access block reads over an ExtArray<uint64_t> with a one-block
/// buffer, for the build-time payload gather (input payload positions arrive
/// in key order, i.e. scattered).  Each distinct block switch is one charged
/// read; consecutive words from the same block are free.
class WordReader {
 public:
  explicit WordReader(const ExtArray<std::uint64_t>& arr)
      : arr_(&arr), buf_(arr.machine(), arr.machine().B()) {}

  std::uint64_t word(std::uint64_t pos) {
    const std::size_t B = arr_->machine().B();
    const std::uint64_t bi = pos / B;
    if (!loaded_ || bi != block_) {
      arr_->read_block(bi, buf_.span());
      block_ = bi;
      loaded_ = true;
    }
    return buf_[static_cast<std::size_t>(pos % B)];
  }

 private:
  const ExtArray<std::uint64_t>* arr_;
  Buffer<std::uint64_t> buf_;
  std::uint64_t block_ = 0;
  bool loaded_ = false;
};

}  // namespace detail

class KvStore {
 public:
  explicit KvStore(Machine& mach, StoreConfig cfg = {})
      : mach_(&mach), cfg_(cfg) {}

  KvStore(KvStore&&) = default;
  KvStore& operator=(KvStore&&) = default;

  /// Bulk-builds the store from `in_slots` (record headers, any order;
  /// duplicates allowed) and `in_payload` (the words spilled records point
  /// into).  Three charged phases:
  ///
  ///   store.build.sort    stable em_merge_sort of the headers by key;
  ///   store.build.layout  one scan of the sorted headers, rewriting each
  ///                       spilled record's `pos` while gathering its words
  ///                       (random-access reads of in_payload) into the
  ///                       store's sequential payload area, and collecting
  ///                       fence keys host-side;
  ///   store.build.index   host-side index construction (free of I/O) and
  ///                       a cache flush, so the construction-cost figures
  ///                       include every deferred write-back.
  ///
  /// Construction cost deltas are captured in build_reads()/build_writes()/
  /// build_cost().  Rebuilding an already-built store throws.
  void build(const ExtArray<Slot>& in_slots,
             const ExtArray<std::uint64_t>& in_payload) {
    if (built_) throw std::logic_error("KvStore::build: already built");
    Machine& mach = *mach_;
    const std::size_t B = mach.B();
    const IoStats before = mach.stats();
    const std::uint64_t cost_before = mach.cost();

    records_ = in_slots.size();
    log_ = ExtArray<Slot>(mach, records_, "store.log");
    payload_ = ExtArray<std::uint64_t>(mach, in_payload.size(),
                                       "store.payload");

    std::vector<std::uint64_t> fences;
    {
      MemoryReservation fence_res(mach.ledger(), mach.n_of(records_));
      fences.reserve(mach.n_of(records_));
      {
        auto sort_phase = mach.phase("store.build.sort");
        ExtArray<Slot> sorted(mach, records_, "store.sorted");
        em_merge_sort(in_slots, sorted, SlotKeyLess{});

        auto layout_phase = mach.phase("store.build.layout");
        Scanner<Slot> in(sorted);
        Writer<Slot> out(log_);
        Writer<std::uint64_t> pay(payload_);
        detail::WordReader gather(in_payload);
        std::size_t idx = 0;
        std::uint64_t next_word = 0;
        while (!in.done()) {
          Slot s = in.next();
          if (idx % B == 0) fences.push_back(s.key);
          if (s.len >= 2) {
            const std::uint64_t src = s.pos;
            if (src + s.len > in_payload.size())
              throw std::out_of_range(
                  "KvStore::build: spilled record points past the payload "
                  "input");
            s.pos = next_word;
            for (std::uint64_t w = 0; w < s.len; ++w)
              pay.push(gather.word(src + w));
            next_word += s.len;
            if (s.len > max_value_words_) max_value_words_ = s.len;
          }
          out.push(s);
          ++idx;
        }
        out.finish();
        pay.finish();
        payload_words_ = next_word;
        // `sorted` dies here; its blocks were only ever read after the sort,
        // so no dirty write-backs are lost.
      }

      auto index_phase = mach.phase("store.build.index");
      if (cfg_.index == IndexKind::kFence) {
        fences_ = std::move(fences);
        index_res_ = MemoryReservation(mach.ledger(), fences_.size());
        index_bits_ = static_cast<std::uint64_t>(fences_.size()) * 64;
      } else {
        const std::size_t pages = fences.size();
        quant_bits_ = std::min<unsigned>(
            64, util::ilog2_ceil(std::max<std::size_t>(pages, 1)) +
                    cfg_.compact_extra_bits);
        std::vector<std::uint64_t> quantized(pages);
        for (std::size_t i = 0; i < pages; ++i)
          quantized[i] = quantize(fences[i]);
        ef_ = EliasFano(quantized, quant_bits_);
        index_res_ = MemoryReservation(mach.ledger(), ef_.words());
        index_bits_ = ef_.bits();
      }
      // The full fence vector was a build-time temporary; fence_res (and for
      // kCompact the vector itself) is released here, leaving only the
      // serving index charged.
    }

    // Deferred cache write-backs belong to construction, not to the first
    // query that would otherwise evict them.
    mach.flush_cache();
    const IoStats after = mach.stats();
    build_reads_ = after.reads - before.reads;
    build_writes_ = after.writes - before.writes;
    build_cost_ = mach.cost() - cost_before;
    built_ = true;
  }

  // --- serving -------------------------------------------------------------

  /// Point query.  Returns the value of the LAST record with `key` in input
  /// order (stable sort keeps duplicate runs in insertion order, and the
  /// located page is the last one whose fence is <= key, so "latest insert
  /// wins" — upsert semantics).  Disengaged optional when the key is absent;
  /// an engaged empty vector is a present key with an empty value.
  std::optional<std::vector<std::uint64_t>> get(std::uint64_t key) {
    check_built();
    ++stats_.gets;
    std::uint64_t log_reads = 0;
    const auto miss = [&]() -> std::optional<std::vector<std::uint64_t>> {
      note_get(log_reads);
      return std::nullopt;
    };
    if (records_ == 0) return miss();

    Buffer<Slot> page(*mach_, mach_->B());
    std::size_t count = 0;
    const std::optional<std::size_t> located =
        locate_page(key, page, count, log_reads);
    if (!located) return miss();  // key precedes every stored key

    // Last slot in the page with this key (duplicate runs never extend into
    // the next page: its fence would then be <= key, contradicting the page
    // choice above).
    const Slot* begin = page.data();
    const Slot* end = begin + count;
    const Slot* it = std::upper_bound(
        begin, end, key,
        [](std::uint64_t k, const Slot& s) { return k < s.key; });
    if (it == begin || (it - 1)->key != key) return miss();
    const Slot& hit = *(it - 1);
    ++stats_.get_hits;

    std::vector<std::uint64_t> value;
    if (hit.len == 1) {
      value.push_back(hit.pos);
    } else if (hit.len >= 2) {
      value.reserve(static_cast<std::size_t>(hit.len));
      Scanner<std::uint64_t> pay(payload_, hit.pos, hit.pos + hit.len);
      const std::uint64_t payload_reads =
          util::ceil_div(hit.pos + hit.len, mach_->B()) -
          hit.pos / mach_->B();
      while (!pay.done()) value.push_back(pay.next());
      stats_.get_payload_reads += payload_reads;
    }
    note_get(log_reads);
    return value;
  }

  /// Range query: visits every record with lo <= key <= hi in key order
  /// (duplicates in input order), streaming the log — and, lazily, the
  /// payload area — sequentially.  Returns the number of records visited.
  std::size_t scan(
      std::uint64_t lo, std::uint64_t hi,
      const std::function<void(std::uint64_t key,
                               std::span<const std::uint64_t> value)>& visit) {
    check_built();
    ++stats_.scans;
    if (records_ == 0 || lo > hi) return 0;

    // First page that can contain a key >= lo: the last page whose fence is
    // STRICTLY below lo (every earlier page ends before lo; later pages may
    // all start with lo itself when a duplicate run of lo spans pages), or
    // page 0 when no fence is below lo.  That is locate_page(lo - 1), which
    // also keeps the quantized index exact.  Under the compact index this
    // probe-reads its candidate page(s); the Scanner below re-reads the
    // start page, a bounded price (one read, or a pool hit) for keeping the
    // sequential path simple.
    std::size_t start_page = 0;
    if (lo > 0) {
      Buffer<Slot> page(*mach_, mach_->B());
      std::size_t count = 0;
      std::uint64_t probe_reads = 0;
      start_page = locate_page(lo - 1, page, count, probe_reads).value_or(0);
    }

    std::size_t visited = 0;
    Scanner<Slot> log(log_, start_page * mach_->B(), records_);
    // Lazily constructed so an all-inline scan charges no payload reads.
    std::optional<Scanner<std::uint64_t>> pay;
    std::vector<std::uint64_t> value;
    while (!log.done()) {
      const Slot s = log.next();
      if (s.key < lo) continue;
      if (s.key > hi) break;
      value.clear();
      if (s.len == 1) {
        value.push_back(s.pos);
      } else if (s.len >= 2) {
        if (!pay) pay.emplace(payload_, 0, payload_words_);
        // Spilled positions are assigned in log order, so one forward
        // scanner with skip() covers every spilled value in the range.
        pay->skip(static_cast<std::size_t>(s.pos) - pay->position());
        for (std::uint64_t w = 0; w < s.len; ++w)
          value.push_back(pay->next());
      }
      visit(s.key, std::span<const std::uint64_t>(value));
      ++visited;
    }
    stats_.scan_records += visited;
    return visited;
  }

  // --- introspection -------------------------------------------------------
  bool built() const { return built_; }
  const StoreConfig& config() const { return cfg_; }
  std::size_t records() const { return records_; }
  std::size_t log_blocks() const { return built_ ? log_.blocks() : 0; }
  std::uint64_t payload_words() const { return payload_words_; }
  std::size_t payload_blocks() const {
    return mach_->n_of(static_cast<std::size_t>(payload_words_));
  }
  /// Serving-index size in bits (64/page for kFence, the Elias–Fano size
  /// for kCompact).
  std::uint64_t index_bits() const { return index_bits_; }
  std::uint64_t build_reads() const { return build_reads_; }
  std::uint64_t build_writes() const { return build_writes_; }
  std::uint64_t build_cost() const { return build_cost_; }
  const StoreStats& stats() const { return stats_; }
  void reset_stats() { stats_ = StoreStats{}; }

  /// The metrics-snapshot `store` section (schema v5).  Attach it to a
  /// snapshot taken from the same machine:
  ///   auto snap = snapshot_metrics(mach, label);
  ///   snap.store = store.metrics_section();
  StoreMetrics metrics_section() const {
    StoreMetrics m;
    m.enabled = true;
    m.index = to_string(cfg_.index);
    m.records = records_;
    m.log_blocks = log_blocks();
    m.payload_words = payload_words_;
    m.payload_blocks = payload_blocks();
    m.index_bits = index_bits_;
    m.index_bits_per_page =
        log_blocks() == 0
            ? 0.0
            : static_cast<double>(index_bits_) /
                  static_cast<double>(log_blocks());
    m.gets = stats_.gets;
    m.get_hits = stats_.get_hits;
    m.get_log_reads = stats_.get_log_reads;
    m.get_payload_reads = stats_.get_payload_reads;
    m.max_get_log_reads = stats_.max_get_log_reads;
    m.scans = stats_.scans;
    m.scan_records = stats_.scan_records;
    m.build_reads = build_reads_;
    m.build_writes = build_writes_;
    m.build_cost = build_cost_;
    return m;
  }

 private:
  void check_built() const {
    if (!built_) throw std::logic_error("KvStore: not built yet");
  }

  /// Largest page whose fence (first key) is <= key, leaving that page's
  /// contents in `page` (`count` records); nullopt when the key precedes
  /// every stored key.  kFence decides from the fence array (exactly one
  /// log read); kCompact probes the quantized index's candidate and walks
  /// back while the probed page provably starts past the key.  The walk
  /// cannot pass the start of the quantization-collision run: a page with
  /// q(fence) < q(key) has fence < key and terminates it, so its length is
  /// bounded by the run of adjacent fences sharing the key's top bits.
  /// `reads` is incremented once per log-block read.
  std::optional<std::size_t> locate_page(std::uint64_t key, Buffer<Slot>& page,
                                         std::size_t& count,
                                         std::uint64_t& reads) {
    if (cfg_.index == IndexKind::kFence) {
      const auto it = std::upper_bound(fences_.begin(), fences_.end(), key);
      if (it == fences_.begin()) return std::nullopt;
      const auto bi = static_cast<std::size_t>(it - fences_.begin()) - 1;
      count = log_.block_elems(bi);
      log_.read_block(bi, page.span());
      ++reads;
      return bi;
    }
    std::size_t i = ef_.predecessor(quantize(key));
    if (i == EliasFano::npos) return std::nullopt;  // q(fence_0) > q(key)
    for (;;) {
      count = log_.block_elems(i);
      log_.read_block(i, page.span());
      ++reads;
      if (page[0].key <= key) return i;
      if (i == 0) return std::nullopt;
      --i;
    }
  }

  void note_get(std::uint64_t log_reads) {
    stats_.get_log_reads += log_reads;
    if (log_reads > stats_.max_get_log_reads)
      stats_.max_get_log_reads = log_reads;
  }

  std::uint64_t quantize(std::uint64_t key) const {
    return quant_bits_ >= 64 ? key : key >> (64 - quant_bits_);
  }

  Machine* mach_ = nullptr;
  StoreConfig cfg_;
  bool built_ = false;

  std::size_t records_ = 0;
  ExtArray<Slot> log_;
  ExtArray<std::uint64_t> payload_;
  std::uint64_t payload_words_ = 0;
  std::uint64_t max_value_words_ = 0;

  // Serving index (one of the two, per cfg_.index), charged for the store's
  // lifetime.
  std::vector<std::uint64_t> fences_;
  EliasFano ef_;
  unsigned quant_bits_ = 0;
  MemoryReservation index_res_;
  std::uint64_t index_bits_ = 0;

  std::uint64_t build_reads_ = 0;
  std::uint64_t build_writes_ = 0;
  std::uint64_t build_cost_ = 0;
  StoreStats stats_;
};

}  // namespace aem::store
