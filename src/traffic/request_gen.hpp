// Deterministic open-loop request-stream generator (traffic/request_gen.hpp;
// docs/MODEL.md section 16).
//
// A serving workload is an ARRIVAL STREAM, not a batch: millions of skewed
// point and range requests whose key popularity, read/write mix, and drift
// over time decide which placement and cache policy win.  The generator
// produces that stream deterministically: request i is a PURE FUNCTION of
// (stream seed, i) — each request draws from its own private Rng seeded
// with harness::derive_seed(stream_seed, i), the same counter-based
// substream discipline the parallel sweep harness uses for its points.
// Any partition of the stream (per-shard substreams, chunked generation,
// --jobs workers) therefore generates byte-identical requests, which is
// what keeps every traffic bench byte-identical for any job count.
//
// Key-popularity distributions:
//
//  * kUniform — every key slot equally likely;
//  * kZipf    — Zipf(theta) by the standard bounded approximation (Gray et
//    al., SIGMOD '94): rank r is drawn with probability ~ 1/r^theta and
//    mapped to key slot r IDENTICALLY, so the hottest ranks are the LOWEST
//    key values — a hot PREFIX of the sorted log, the adversarial case for
//    range placement (bench_t1_traffic's rr-vs-range guard);
//  * kHotSet  — a contiguous window of hot_fraction * key_space slots
//    receives hot_weight of the probability mass; every drift_every
//    requests the window slides forward by its own width (wrapping), so a
//    cache tuned to the old hot set pays the re-warm bill.
#pragma once

#include <cmath>
#include <cstdint>
#include <stdexcept>

#include "harness/parallel_sweep.hpp"
#include "util/rng.hpp"

namespace aem::traffic {

/// Key-popularity distribution of the stream.
enum class KeyDist : std::uint8_t {
  kUniform,
  kZipf,
  kHotSet,
};

inline const char* to_string(KeyDist d) {
  switch (d) {
    case KeyDist::kUniform: return "uniform";
    case KeyDist::kZipf: return "zipf";
    case KeyDist::kHotSet: return "hotset";
  }
  return "?";
}

/// One request's operation.
enum class OpKind : std::uint8_t {
  kGet,   // point query (KvStore::get)
  kPut,   // inline point update (KvStore::put_inline)
  kScan,  // range query of scan_len keys (KvStore::scan)
};

inline const char* to_string(OpKind op) {
  switch (op) {
    case OpKind::kGet: return "get";
    case OpKind::kPut: return "put";
    case OpKind::kScan: return "scan";
  }
  return "?";
}

struct Request {
  OpKind op = OpKind::kGet;
  std::uint64_t key = 0;       // already mapped through key_stride
  std::uint64_t value = 0;     // kPut only: the inline word to write
  std::uint64_t scan_len = 0;  // kScan only: keys covered ([key, key+len-1])
};

struct TrafficConfig {
  /// Stream length (requests generated per TrafficEngine::run).
  std::uint64_t requests = 0;

  KeyDist dist = KeyDist::kZipf;

  /// kZipf skew parameter, in (0, 1).  0.99 is the YCSB default.
  double zipf_theta = 0.99;

  /// Key slots are drawn from [0, key_space); the emitted key is
  /// slot * key_stride.  A store built over keys {0, stride, 2*stride, ...}
  /// with key_space = records serves an all-hit stream; key_stride > 1 with
  /// key_space = stride * records makes the gaps guaranteed misses.
  std::uint64_t key_space = 0;
  std::uint64_t key_stride = 1;

  /// Operation mix: a request is a put with probability write_fraction, a
  /// scan with probability scan_fraction, a get otherwise.
  double write_fraction = 0.0;
  double scan_fraction = 0.0;

  /// kScan requests cover [key, key + scan_len*key_stride - 1].
  std::uint64_t scan_len = 16;

  /// Requests admitted (or rejected) as a group by the engine's admission
  /// control — one budget check per batch, the group-commit discipline.
  std::uint64_t batch_size = 1;

  /// kHotSet only: window size as a fraction of key_space, the window's
  /// share of the probability mass, and the slide period (0 = static
  /// window at slot 0 — a hot prefix).
  double hot_fraction = 0.1;
  double hot_weight = 0.9;
  std::uint64_t drift_every = 0;

  /// Throws std::invalid_argument on an empty key space, a theta outside
  /// (0, 1), fractions outside [0, 1] (or a mix summing past 1), a zero
  /// stride/scan length/batch, or a hot window of zero slots.
  void validate() const {
    if (key_space == 0)
      throw std::invalid_argument("TrafficConfig: key_space must be > 0");
    if (key_stride == 0)
      throw std::invalid_argument("TrafficConfig: key_stride must be > 0");
    if (!(zipf_theta > 0.0) || !(zipf_theta < 1.0))
      throw std::invalid_argument(
          "TrafficConfig: zipf_theta must be in (0, 1)");
    if (write_fraction < 0.0 || write_fraction > 1.0 || scan_fraction < 0.0 ||
        scan_fraction > 1.0 || write_fraction + scan_fraction > 1.0)
      throw std::invalid_argument(
          "TrafficConfig: write_fraction + scan_fraction must stay in "
          "[0, 1]");
    if (scan_len == 0)
      throw std::invalid_argument("TrafficConfig: scan_len must be > 0");
    if (batch_size == 0)
      throw std::invalid_argument("TrafficConfig: batch_size must be > 0");
    if (dist == KeyDist::kHotSet) {
      if (!(hot_fraction > 0.0) || hot_fraction > 1.0)
        throw std::invalid_argument(
            "TrafficConfig: hot_fraction must be in (0, 1]");
      if (hot_weight < 0.0 || hot_weight > 1.0)
        throw std::invalid_argument(
            "TrafficConfig: hot_weight must be in [0, 1]");
    }
  }
};

/// Generates the stream.  at(i) is a pure const function of (seed, i):
/// thread-safe, order-free, replayable in any chunking.
class RequestGen {
 public:
  RequestGen(TrafficConfig cfg, std::uint64_t stream_seed)
      : cfg_(cfg), seed_(stream_seed) {
    cfg_.validate();
    const double n = static_cast<double>(cfg_.key_space);
    if (cfg_.dist == KeyDist::kZipf) {
      // Gray et al. bounded-Zipf constants; zetan is the one O(key_space)
      // host-side pass, paid once per generator.
      double zetan = 0.0;
      for (std::uint64_t i = 1; i <= cfg_.key_space; ++i)
        zetan += 1.0 / std::pow(static_cast<double>(i), cfg_.zipf_theta);
      zetan_ = zetan;
      alpha_ = 1.0 / (1.0 - cfg_.zipf_theta);
      const double zeta2 = 1.0 + std::pow(0.5, cfg_.zipf_theta);
      eta_ = (1.0 - std::pow(2.0 / n, 1.0 - cfg_.zipf_theta)) /
             (1.0 - zeta2 / zetan_);
    } else if (cfg_.dist == KeyDist::kHotSet) {
      hot_slots_ = static_cast<std::uint64_t>(
          cfg_.hot_fraction * static_cast<double>(cfg_.key_space));
      if (hot_slots_ == 0) hot_slots_ = 1;
      if (hot_slots_ > cfg_.key_space) hot_slots_ = cfg_.key_space;
    }
  }

  const TrafficConfig& config() const { return cfg_; }
  std::uint64_t stream_seed() const { return seed_; }

  /// Request i of the stream.  Draw order is fixed (op, then slot, then the
  /// put value) so the emitted stream is part of the output contract.
  Request at(std::uint64_t i) const {
    util::Rng rng(harness::derive_seed(seed_, i));
    Request r;
    const double u = rng.uniform01();
    if (u < cfg_.write_fraction) {
      r.op = OpKind::kPut;
    } else if (u < cfg_.write_fraction + cfg_.scan_fraction) {
      r.op = OpKind::kScan;
      r.scan_len = cfg_.scan_len;
    } else {
      r.op = OpKind::kGet;
    }
    r.key = slot(rng, i) * cfg_.key_stride;
    if (r.op == OpKind::kPut) r.value = rng.next();
    return r;
  }

 private:
  std::uint64_t slot(util::Rng& rng, std::uint64_t i) const {
    switch (cfg_.dist) {
      case KeyDist::kUniform:
        return rng.below(cfg_.key_space);
      case KeyDist::kZipf: {
        // Rank -> slot is the identity: the hottest ranks are the lowest
        // slots, i.e. a hot prefix of the key space.
        const double u = rng.uniform01();
        const double uz = u * zetan_;
        if (uz < 1.0) return 0;
        if (uz < 1.0 + std::pow(0.5, cfg_.zipf_theta)) return 1;
        const double n = static_cast<double>(cfg_.key_space);
        auto rank = static_cast<std::uint64_t>(
            n * std::pow(eta_ * u - eta_ + 1.0, alpha_));
        return rank >= cfg_.key_space ? cfg_.key_space - 1 : rank;
      }
      case KeyDist::kHotSet: {
        const std::uint64_t epoch =
            cfg_.drift_every == 0 ? 0 : i / cfg_.drift_every;
        const std::uint64_t start = (epoch * hot_slots_) % cfg_.key_space;
        if (rng.uniform01() < cfg_.hot_weight)
          return (start + rng.below(hot_slots_)) % cfg_.key_space;
        return rng.below(cfg_.key_space);
      }
    }
    return 0;
  }

  TrafficConfig cfg_;
  std::uint64_t seed_ = 0;

  // kZipf constants.
  double zetan_ = 0.0;
  double alpha_ = 0.0;
  double eta_ = 0.0;

  // kHotSet window size in slots.
  std::uint64_t hot_slots_ = 0;
};

}  // namespace aem::traffic
