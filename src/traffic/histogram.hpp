// Deterministic fixed-bucket histogram over per-request charged Q
// (traffic/histogram.hpp; docs/MODEL.md section 16).
//
// The traffic engine records one charged-Q sample per served request and
// reports p50/p99/p999 tail percentiles.  The histogram is HOST-SIDE
// observability state — like the phase table or the wear histogram, it is
// never charged to the ledger and performs no I/O — but its layout is part
// of the bench output contract, so the buckets are fixed once and for all:
//
//  * Q < 4096:  one bucket per exact value (per-request Q of a point query
//    or short scan lands here, so the common percentiles are EXACT);
//  * Q >= 4096: one bucket per power of two, reported at the bucket floor
//    (2^k for Q in [2^k, 2^(k+1))) — tails of giant scans lose precision,
//    never ordering.
//
// Percentiles use the nearest-rank definition over bucket floors, so every
// reported figure is a value the histogram actually bucketed, and merging
// per-shard histograms (plain count addition) is associative and
// commutative: merge(a, merge(b, c)) == merge(merge(a, b), c) byte for
// byte, which is what lets a sharded sweep aggregate per-worker histograms
// in any grouping and still report identical percentiles.
#pragma once

#include <algorithm>
#include <array>
#include <bit>
#include <cstdint>
#include <stdexcept>
#include <vector>

namespace aem::traffic {

class QHistogram {
 public:
  /// Values below this are bucketed exactly; above, by power of two.
  static constexpr std::uint64_t kExactLimit = 4096;

  QHistogram() : exact_(static_cast<std::size_t>(kExactLimit), 0) {}

  /// Adds one charged-Q sample.
  void record(std::uint64_t q) {
    ++total_;
    sum_ += q;
    if (q > max_) max_ = q;
    if (q < kExactLimit) {
      ++exact_[static_cast<std::size_t>(q)];
    } else {
      ++coarse_[std::bit_width(q) - 1];
    }
  }

  /// Adds `other`'s counts into this histogram.  Count addition, so merge
  /// is associative and commutative, and merging per-shard histograms in
  /// any grouping yields identical percentiles.
  void merge(const QHistogram& other) {
    for (std::size_t i = 0; i < exact_.size(); ++i) exact_[i] += other.exact_[i];
    for (std::size_t i = 0; i < coarse_.size(); ++i)
      coarse_[i] += other.coarse_[i];
    total_ += other.total_;
    sum_ += other.sum_;
    max_ = std::max(max_, other.max_);
  }

  std::uint64_t total() const { return total_; }
  std::uint64_t sum() const { return sum_; }
  /// Exact largest recorded sample (not bucket-floored).
  std::uint64_t max() const { return max_; }
  double mean() const {
    return total_ == 0 ? 0.0
                       : static_cast<double>(sum_) / static_cast<double>(total_);
  }

  /// Nearest-rank percentile at `permyriad`/10000 (p50 = 5000, p99 = 9900,
  /// p999 = 9990): the value of the bucket containing the sample of rank
  /// max(1, ceil(total * permyriad / 10000)), reported at the bucket floor.
  ///
  /// Pinned boundary behavior (tests/test_traffic.cpp asserts each):
  ///  * empty histogram: returns the sentinel 0 for EVERY permyriad — the
  ///    bench validators rely on disabled sections reporting all-zero
  ///    percentiles, so this is a documented contract, not an accident;
  ///  * permyriad = 0: the rank clamps to 1, i.e. the smallest recorded
  ///    bucket floor (the minimum, not a 0 sentinel);
  ///  * permyriad = 10000: the bucket floor of the maximum (max() itself
  ///    stays exact and may be larger in the coarse range);
  ///  * permyriad > 10000: throws std::invalid_argument.  It used to clamp
  ///    silently, which made a caller's unit slip (e.g. passing per-cent
  ///    9900*10) report a plausible-looking p100 instead of failing.
  std::uint64_t percentile(std::uint64_t permyriad) const {
    if (permyriad > 10000)
      throw std::invalid_argument(
          "QHistogram::percentile: permyriad must be <= 10000");
    if (total_ == 0) return 0;
    // ceil(total * permyriad / 10000) without a 128-bit intermediate:
    // split total = 10000*a + b, then ceil(t*p/10000) = a*p + ceil(b*p/10000)
    // and b*p < 10^8 never overflows.
    const std::uint64_t a = total_ / 10000, b = total_ % 10000;
    std::uint64_t rank = a * permyriad + (b * permyriad + 9999) / 10000;
    if (rank == 0) rank = 1;
    std::uint64_t cum = 0;
    for (std::size_t q = 0; q < exact_.size(); ++q) {
      cum += exact_[q];
      if (cum >= rank) return q;
    }
    for (std::size_t k = 0; k < coarse_.size(); ++k) {
      cum += coarse_[k];
      if (cum >= rank) return std::uint64_t{1} << k;
    }
    return max_;  // unreachable: the buckets partition [0, 2^64)
  }

  friend bool operator==(const QHistogram&, const QHistogram&) = default;

 private:
  std::vector<std::uint64_t> exact_;       // one bucket per Q in [0, 4096)
  std::array<std::uint64_t, 64> coarse_{}; // bucket k: Q in [2^k, 2^(k+1))
  std::uint64_t total_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t max_ = 0;
};

}  // namespace aem::traffic
