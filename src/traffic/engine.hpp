// TrafficEngine: drives a deterministic request stream through the full
// serving stack — KvStore -> BlockCache -> (Sharded)Machine -> FaultPolicy
// — measuring per-request charged Q and enforcing an SLO budget
// (traffic/engine.hpp; docs/MODEL.md section 16; measured by
// bench/bench_t1_traffic).
//
// The engine is OPEN-LOOP: requests arrive on a fixed schedule (the
// generated stream) regardless of how expensive earlier requests were.
// Each served request's cost is the CHARGED frontend Q delta around its
// store call — index lookups are host-side and free, cache hits charge
// nothing, backoff polls against a down device charge like any other read —
// recorded into a fixed-bucket QHistogram (p50/p99/p999 exact below Q=4096).
// Deferred cache write-backs are charged when they happen (eviction inside
// a later request, or the final flush), which is exactly how a write-back
// pool bills a real stream: the histogram prices what each request WAITED
// for.
//
// Admission control (EngineConfig::q_budget > 0): the stream is cut into
// windows of window_requests generated requests; once a window's served
// requests have spent q_budget of charged Q, admit() throws the library's
// BudgetExceeded (core/faults.hpp) and run() converts it into rejections —
// each rejected batch charges NOTHING (the whole point of admission control
// is refusing work the budget cannot cover) and the next window starts
// fresh.  The invariant served + rejected == generated is the identity
// every consumer (metrics validation, bench guards) checks; rejected /
// generated is the SLO rejection rate.
//
// Determinism: request i is a pure function of (stream seed, i)
// (traffic/request_gen.hpp), the engine's control flow depends only on
// charged counters, and nothing here reads the wall clock — so a sweep of
// engines through harness::run_sweep is byte-identical for any --jobs.
#pragma once

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "core/faults.hpp"
#include "core/machine.hpp"
#include "core/metrics.hpp"
#include "core/sharding.hpp"
#include "core/stats.hpp"
#include "store/kv_store.hpp"
#include "traffic/histogram.hpp"
#include "traffic/request_gen.hpp"

namespace aem::traffic {

struct EngineConfig {
  TrafficConfig traffic;

  /// Per-window charged-Q budget for admission control; 0 disables it (no
  /// admit() checks, nothing is ever rejected).
  std::uint64_t q_budget = 0;

  /// Window length in GENERATED requests (admitted or not), so windows
  /// advance on the arrival schedule, not on the served count; 0 = the
  /// whole stream is one window.
  std::uint64_t window_requests = 0;

  /// Per-block endurance used by wear_horizon(); 0 leaves the horizon
  /// unreported.  Meaningful when the machine tracks wear (device wear on a
  /// ShardedMachine, Machine::enable_wear_tracking otherwise).
  std::uint64_t endurance = 0;
};

/// Counters of one engine run.  io/cost are charged frontend deltas across
/// run() (including the final cache flush on a stream that served work).
struct EngineStats {
  std::uint64_t generated = 0;
  std::uint64_t served = 0;
  std::uint64_t rejected = 0;
  std::uint64_t gets = 0;
  std::uint64_t puts = 0;
  std::uint64_t scans = 0;
  std::uint64_t get_hits = 0;
  std::uint64_t put_hits = 0;
  std::uint64_t windows = 0;
  IoStats io;
  std::uint64_t cost = 0;

  friend bool operator==(const EngineStats&, const EngineStats&) = default;
};

class TrafficEngine {
 public:
  /// Binds the engine to a BUILT store and the machine it lives on.
  /// Construction performs no I/O (the idle-engine guard in
  /// bench_m0_overhead holds it to that): it only records the per-device
  /// cost baseline imbalance() measures serving deltas against.
  TrafficEngine(store::KvStore& store, Machine& mach, EngineConfig cfg,
                std::uint64_t stream_seed)
      : store_(&store), mach_(&mach), cfg_(cfg), gen_(cfg.traffic, stream_seed) {
    sharded_ = dynamic_cast<ShardedMachine*>(&mach);
    if (sharded_ != nullptr)
      for (std::size_t d = 0; d < sharded_->device_count(); ++d)
        dev_cost_base_.push_back(sharded_->device(d).cost());
  }

  /// Serves (or rejects) the configured stream once.  One-shot: a second
  /// call throws.  A zero-request stream charges nothing and leaves the
  /// machine byte-identical.
  void run() {
    if (ran_) throw std::logic_error("TrafficEngine::run: already ran");
    ran_ = true;
    const std::uint64_t n = cfg_.traffic.requests;
    const std::uint64_t batch = cfg_.traffic.batch_size;
    const std::uint64_t window = cfg_.window_requests;
    const IoStats before = mach_->stats();
    const std::uint64_t cost_before = mach_->cost();
    stats_.generated = n;

    std::uint64_t cur_window = ~std::uint64_t{0};
    std::uint64_t i = 0;
    while (i < n) {
      const std::uint64_t w = window == 0 ? 0 : i / window;
      if (w != cur_window) {
        cur_window = w;
        window_spent_ = 0;
        ++stats_.windows;
      }
      // A batch never straddles a window: the admission decision belongs to
      // exactly one budget.
      std::uint64_t end = std::min(n, i + batch);
      if (window != 0) end = std::min(end, (w + 1) * window);
      try {
        admit();
      } catch (const BudgetExceeded&) {
        stats_.rejected += end - i;
        i = end;
        continue;
      }
      serve_batch(i, end);
      i = end;
    }

    // Deferred write-backs belong to the stream that dirtied them, not to
    // whatever runs next.  A stream that served nothing flushed nothing.
    if (stats_.served != 0) mach_->flush_cache();
    stats_.io.reads = mach_->stats().reads - before.reads;
    stats_.io.writes = mach_->stats().writes - before.writes;
    stats_.cost = mach_->cost() - cost_before;
  }

  const EngineStats& stats() const { return stats_; }
  const QHistogram& histogram() const { return hist_; }
  const RequestGen& generator() const { return gen_; }

  /// rejected / generated — the SLO metric admission control trades tail
  /// latency for.  0 on an empty stream.
  double rejection_rate() const {
    return stats_.generated == 0
               ? 0.0
               : static_cast<double>(stats_.rejected) /
                     static_cast<double>(stats_.generated);
  }

  /// Served requests per 1000 charged Q — the deterministic throughput
  /// figure (wall clocks are banned from byte-identical tables).  0 when
  /// the run charged nothing.
  std::uint64_t throughput_mille() const {
    return stats_.cost == 0 ? 0 : stats_.served * 1000 / stats_.cost;
  }

  /// max/mean of per-device charged cost SINCE ENGINE CONSTRUCTION — the
  /// serving-load imbalance placement produced, excluding the build the
  /// baseline was taken after.  1.0 on a plain machine or when no device
  /// cost accrued; D when one device took everything.
  double imbalance() const {
    if (sharded_ == nullptr) return 1.0;
    std::uint64_t max_delta = 0;
    std::uint64_t sum = 0;
    for (std::size_t d = 0; d < sharded_->device_count(); ++d) {
      const std::uint64_t delta =
          sharded_->device(d).cost() - dev_cost_base_[d];
      max_delta = std::max(max_delta, delta);
      sum += delta;
    }
    if (sum == 0) return 1.0;
    return static_cast<double>(max_delta) *
           static_cast<double>(sharded_->device_count()) /
           static_cast<double>(sum);
  }

  /// How many times this stream's lifetime could replay before the hottest
  /// tracked block reaches EngineConfig::endurance: endurance / max
  /// per-block writes observed (device wear on a ShardedMachine, frontend
  /// wear otherwise; the count includes pre-engine wear such as the build).
  /// 0 when endurance is unset, wear tracking is off, or nothing was
  /// written.
  std::uint64_t wear_horizon() const {
    if (cfg_.endurance == 0) return 0;
    std::uint64_t max_writes = 0;
    if (sharded_ != nullptr) {
      for (std::size_t d = 0; d < sharded_->device_count(); ++d) {
        const Machine& dev = sharded_->device(d);
        if (dev.wear_tracking())
          max_writes = std::max(max_writes, dev.wear_stats().max_writes);
      }
    } else if (mach_->wear_tracking()) {
      max_writes = mach_->wear_stats().max_writes;
    }
    return max_writes == 0 ? 0 : cfg_.endurance / max_writes;
  }

  /// The metrics-snapshot `traffic` section (schema v7).  Attach it to a
  /// snapshot taken from the same machine:
  ///   auto snap = snapshot_metrics(mach, label);
  ///   snap.traffic = engine.metrics_section();
  TrafficMetrics metrics_section() const {
    TrafficMetrics m;
    m.enabled = true;
    m.dist = to_string(cfg_.traffic.dist);
    m.generated = stats_.generated;
    m.served = stats_.served;
    m.rejected = stats_.rejected;
    m.rejection_rate = rejection_rate();
    m.gets = stats_.gets;
    m.puts = stats_.puts;
    m.scans = stats_.scans;
    m.reads = stats_.io.reads;
    m.writes = stats_.io.writes;
    m.cost = stats_.cost;
    m.q_p50 = hist_.percentile(5000);
    m.q_p99 = hist_.percentile(9900);
    m.q_p999 = hist_.percentile(9990);
    m.q_max = hist_.max();
    m.q_mean = hist_.mean();
    m.imbalance = imbalance();
    m.wear_horizon = wear_horizon();
    m.windows = stats_.windows;
    m.q_budget = cfg_.q_budget;
    return m;
  }

 private:
  /// The admission gate: throws the library's BudgetExceeded once the
  /// current window's served requests have spent the budget.
  void admit() const {
    if (cfg_.q_budget != 0 && window_spent_ >= cfg_.q_budget)
      throw BudgetExceeded(BudgetExceeded::Kind::kCost, cfg_.q_budget,
                           window_spent_, mach_->stats());
  }

  /// Serves the admitted requests [i, end) of one batch.  Each request's
  /// charged Q still comes from its own cost() delta (the histogram prices
  /// individual requests), but the window budget and served counter settle
  /// ONCE per batch — the per-request deltas telescope to the batch delta,
  /// so the accounting is numerically identical to per-request settlement
  /// at half the cost() polls (admit() only runs between batches).
  void serve_batch(std::uint64_t i, std::uint64_t end) {
    const std::uint64_t count = end - i;
    std::uint64_t mark = mach_->cost();
    const std::uint64_t batch_cost_before = mark;
    for (; i < end; ++i) {
      dispatch(gen_.at(i));
      const std::uint64_t now = mach_->cost();
      hist_.record(now - mark);
      mark = now;
    }
    window_spent_ += mark - batch_cost_before;
    stats_.served += count;
  }

  void dispatch(const Request& r) {
    switch (r.op) {
      case OpKind::kGet:
        ++stats_.gets;
        if (store_->get(r.key)) ++stats_.get_hits;
        break;
      case OpKind::kPut:
        ++stats_.puts;
        if (store_->put_inline(r.key, r.value)) ++stats_.put_hits;
        break;
      case OpKind::kScan: {
        ++stats_.scans;
        const std::uint64_t span =
            r.scan_len * cfg_.traffic.key_stride - 1;
        const std::uint64_t hi =
            r.key > ~std::uint64_t{0} - span ? ~std::uint64_t{0}
                                             : r.key + span;
        store_->scan(r.key, hi, [](std::uint64_t, auto) {});
        break;
      }
    }
  }

  store::KvStore* store_;
  Machine* mach_;
  ShardedMachine* sharded_ = nullptr;
  EngineConfig cfg_;
  RequestGen gen_;
  std::vector<std::uint64_t> dev_cost_base_;

  bool ran_ = false;
  std::uint64_t window_spent_ = 0;
  EngineStats stats_;
  QHistogram hist_;
};

}  // namespace aem::traffic
