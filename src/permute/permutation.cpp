#include "permute/permutation.hpp"

#include <numeric>
#include <stdexcept>

#include "util/math.hpp"

namespace aem::perm {

bool is_permutation(const Perm& p) {
  std::vector<bool> seen(p.size(), false);
  for (std::uint64_t v : p) {
    if (v >= p.size() || seen[v]) return false;
    seen[v] = true;
  }
  return true;
}

Perm inverse(const Perm& p) {
  Perm inv(p.size());
  for (std::uint64_t i = 0; i < p.size(); ++i) {
    if (p[i] >= p.size()) throw std::invalid_argument("inverse: not a permutation");
    inv[p[i]] = i;
  }
  return inv;
}

Perm compose(const Perm& f, const Perm& g) {
  if (f.size() != g.size())
    throw std::invalid_argument("compose: size mismatch");
  Perm h(f.size());
  for (std::uint64_t i = 0; i < g.size(); ++i) h[i] = f[g[i]];
  return h;
}

std::uint64_t cycle_count(const Perm& p) {
  std::vector<bool> seen(p.size(), false);
  std::uint64_t cycles = 0;
  for (std::uint64_t i = 0; i < p.size(); ++i) {
    if (seen[i]) continue;
    ++cycles;
    for (std::uint64_t j = i; !seen[j]; j = p[j]) seen[j] = true;
  }
  return cycles;
}

Perm identity(std::uint64_t n) {
  Perm p(n);
  std::iota(p.begin(), p.end(), std::uint64_t{0});
  return p;
}

Perm reversal(std::uint64_t n) {
  Perm p(n);
  for (std::uint64_t i = 0; i < n; ++i) p[i] = n - 1 - i;
  return p;
}

Perm cyclic_shift(std::uint64_t n, std::uint64_t k) {
  Perm p(n);
  for (std::uint64_t i = 0; i < n; ++i) p[i] = (i + k) % n;
  return p;
}

Perm transpose(std::uint64_t rows, std::uint64_t cols) {
  Perm p(rows * cols);
  for (std::uint64_t r = 0; r < rows; ++r)
    for (std::uint64_t c = 0; c < cols; ++c) p[r * cols + c] = c * rows + r;
  return p;
}

Perm bit_reversal(std::uint64_t n) {
  if (!util::is_pow2(n)) throw std::invalid_argument("bit_reversal: n not 2^k");
  const unsigned bits = util::ilog2(n);
  Perm p(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    std::uint64_t r = 0;
    for (unsigned b = 0; b < bits; ++b) r |= ((i >> b) & 1) << (bits - 1 - b);
    p[i] = r;
  }
  return p;
}

Perm random(std::uint64_t n, util::Rng& rng) {
  return util::random_permutation(n, rng);
}

}  // namespace aem::perm
