// Dense matrix transposition as a permutation application.
//
// Transposing an R x C row-major matrix is the permutation sending index
// r*C + c to c*R + r — one of the classic hard permutation families in the
// EM literature (and bit-reversal's cousin).  On the AEM the dispatcher
// decides between gathering and sorting exactly as for any permutation.
#pragma once

#include <span>
#include <stdexcept>

#include "permute/dispatch.hpp"
#include "permute/permutation.hpp"

namespace aem {

/// out = in^T.  `in` holds rows*cols elements row-major; `out` receives the
/// cols x rows transpose, row-major.  Returns the strategy the dispatcher
/// picked.
template <class T>
PermuteStrategy transpose_ext(const ExtArray<T>& in, std::size_t rows,
                              std::size_t cols, ExtArray<T>& out) {
  if (in.size() != rows * cols || out.size() != rows * cols)
    throw std::invalid_argument("transpose_ext: size mismatch");
  const perm::Perm dest = perm::transpose(rows, cols);
  return permute(in, std::span<const std::uint64_t>(dest), out);
}

}  // namespace aem
