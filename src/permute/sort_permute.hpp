// The sort-based permutation program: the "omega n log_{omega m} n" branch
// of Theorem 4.5.
//
// Tag every element with its destination, sort the (destination, value)
// records with the Section 3 AEM mergesort, then strip the tags.  Records
// count as single atoms (the standard convention for permuting lower
// bounds: elements move with their keys).  Cost: one tagging scan, one
// stripping scan, and sort(N) = O(omega n log_{omega m} n).
#pragma once

#include <cstddef>
#include <span>
#include <stdexcept>

#include "core/ext_array.hpp"
#include "io/scanner.hpp"
#include "io/writer.hpp"
#include "sort/mergesort.hpp"

namespace aem {

namespace permute_detail {

template <class T>
struct DestRec {
  std::uint64_t dest = 0;
  T val{};
};

}  // namespace permute_detail

/// out[dest[i]] = in[i] via tag-sort-strip.  `dest` must be a permutation.
template <class T>
void sort_permute(const ExtArray<T>& in, std::span<const std::uint64_t> dest,
                  ExtArray<T>& out) {
  using Rec = permute_detail::DestRec<T>;
  const std::size_t N = in.size();
  if (dest.size() != N || out.size() != N)
    throw std::invalid_argument("sort_permute: size mismatch");
  Machine& mach = in.machine();

  ExtArray<Rec> recs(mach, N, "permute.recs");
  ExtArray<Rec> sorted(mach, N, "permute.sorted");
  const bool tracked = in.has_atom_extractor();
  if (tracked) {
    auto extract = in.atom_extractor();
    auto rec_extract = [extract](const Rec& r) { return extract(r.val); };
    recs.set_atom_extractor(rec_extract);
    sorted.set_atom_extractor(rec_extract);
  }
  const bool mark = mach.tracing() && tracked;

  {
    // Tagging scan: destinations come from the problem statement (free);
    // values are read from external memory (charged).
    auto phase = mach.phase("permute.tag");
    Scanner<T> scan(in);
    Writer<Rec> w(recs);
    while (!scan.done()) {
      const std::size_t i = scan.position();
      const T v = scan.next();
      if (dest[i] >= N) throw std::invalid_argument("sort_permute: bad dest");
      if (mark && scan.last_ticket().valid())
        mach.trace()->mark_used(scan.last_ticket(), in.atom_id(v));
      w.push(Rec{dest[i], v});
    }
    w.finish();
  }

  {
    auto phase = mach.phase("permute.sort");
    aem_merge_sort(recs, sorted,
                   [](const Rec& a, const Rec& b) { return a.dest < b.dest; });
  }

  {
    auto phase = mach.phase("permute.strip");
    Scanner<Rec> scan(sorted);
    Writer<T> w(out);
    while (!scan.done()) {
      const Rec r = scan.next();
      if (mark && scan.last_ticket().valid())
        mach.trace()->mark_used(scan.last_ticket(), in.atom_id(r.val));
      w.push(r.val);
    }
    w.finish();
  }
}

}  // namespace aem
