// Permutation dispatcher: the executable counterpart of the min{., .} in
// Theorem 4.5 — run the naive gather when N + omega*n is cheaper than a full
// sort, and the sort-based program otherwise.
//
// The estimates use the same closed forms as bounds/permute_bounds.hpp with
// the implementation's measured constant (kSortCostFactor) folded in, so the
// dispatcher's crossover tracks the paper's predicted crossover up to that
// constant.  Experiment E5 sweeps B and omega across the crossover and
// checks that the dispatcher picks the measured winner.
#pragma once

#include <span>

#include "bounds/permute_bounds.hpp"
#include "core/ext_array.hpp"
#include "permute/naive.hpp"
#include "permute/sort_permute.hpp"

namespace aem {

enum class PermuteStrategy { kNaive, kSortBased };

inline const char* to_string(PermuteStrategy s) {
  return s == PermuteStrategy::kNaive ? "naive" : "sort-based";
}

/// Implementation constant relating the sort-based program's true MERGE
/// cost to the closed-form omega * n * log_{omega m} n (the double-block
/// initialization and re-read of Section 3.1's rounds).  The tagging,
/// stripping and base-case scans (~3 omega n) carry constant ~1 and are
/// added separately.  Calibrated against E4/E5's measurements.
inline constexpr double kSortCostFactor = 4.0;

/// Predicted cost of each strategy for an N-element permutation.
inline double predicted_naive_cost(const Machine& mach, std::size_t N) {
  bounds::AemParams p{.N = N, .M = mach.M(), .B = mach.B(),
                      .omega = mach.omega()};
  return bounds::permute_naive_upper_bound(p);
}

inline double predicted_sort_cost(const Machine& mach, std::size_t N) {
  bounds::AemParams p{.N = N, .M = mach.M(), .B = mach.B(),
                      .omega = mach.omega()};
  return kSortCostFactor * bounds::permute_bound_sort_branch(p) +
         3.0 * static_cast<double>(p.omega) * static_cast<double>(p.n());
}

inline PermuteStrategy choose_permute_strategy(const Machine& mach,
                                               std::size_t N) {
  return predicted_naive_cost(mach, N) <= predicted_sort_cost(mach, N)
             ? PermuteStrategy::kNaive
             : PermuteStrategy::kSortBased;
}

/// out[dest[i]] = in[i] using whichever program the cost model predicts is
/// cheaper.  Returns the strategy used.
template <class T>
PermuteStrategy permute(const ExtArray<T>& in,
                        std::span<const std::uint64_t> dest,
                        ExtArray<T>& out) {
  const PermuteStrategy s = choose_permute_strategy(in.machine(), in.size());
  if (s == PermuteStrategy::kNaive) {
    naive_permute(in, dest, out);
  } else {
    sort_permute(in, dest, out);
  }
  return s;
}

}  // namespace aem
