// The naive permutation program: the "N" branch of Theorem 4.5's
// min{N, omega n log_{omega m} n}.
//
// For each output block, gather its B elements from wherever they live in
// the input and write the block once: at most N reads (one per element,
// fewer when sources cluster — consecutive gathers from the same input
// block share one read via BlockCursor) and exactly n = ceil(N/B) writes,
// for cost <= N + omega*n.  This is the program that wins when omega or B
// is large enough that even one sorting pass is too write-expensive.
//
// The gather plan (the inverse permutation) is host-side program
// construction in the sense of Section 2: the permutation is the problem
// statement, so consulting it is free; only data transfers are charged.
#pragma once

#include <algorithm>
#include <cstddef>
#include <numeric>
#include <span>
#include <stdexcept>
#include <vector>

#include "core/ext_array.hpp"
#include "io/cursor.hpp"

namespace aem {

/// out[dest[i]] = in[i].  `dest` must be a permutation of {0..N-1}.
/// Cost: <= N reads + ceil(N/B) writes.
template <class T>
void naive_permute(const ExtArray<T>& in, std::span<const std::uint64_t> dest,
                   ExtArray<T>& out) {
  const std::size_t N = in.size();
  if (dest.size() != N || out.size() != N)
    throw std::invalid_argument("naive_permute: size mismatch");

  Machine& mach = in.machine();
  const std::size_t B = mach.B();

  // Host-side plan: src_of[j] = input position of the element destined for
  // output position j (the inverse permutation).
  std::vector<std::size_t> src_of(N);
  for (std::size_t i = 0; i < N; ++i) {
    if (dest[i] >= N) throw std::invalid_argument("naive_permute: bad dest");
    src_of[dest[i]] = i;
  }

  const bool mark = mach.tracing() && in.has_atom_extractor();

  Buffer<T> staging(mach, B);
  BlockCursor<T> cursor(in);
  const std::uint64_t out_blocks = out.blocks();
  for (std::uint64_t t = 0; t < out_blocks; ++t) {
    const std::size_t lo = static_cast<std::size_t>(t) * B;
    const std::size_t count = out.block_elems(t);

    // Visit this block's sources in block order so that clustered sources
    // cost one read, not one per element.
    std::vector<std::size_t> order(count);
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return src_of[lo + a] / B < src_of[lo + b] / B;
    });

    for (std::size_t k : order) {
      const T& v = cursor.at(src_of[lo + k]);
      staging[k] = v;
      if (mark && cursor.last_ticket().valid())
        mach.trace()->mark_used(cursor.last_ticket(), in.atom_id(v));
    }
    out.write_block(t, std::span<const T>(staging.data(), count));
  }
}

}  // namespace aem
