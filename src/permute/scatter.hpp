// The scatter permutation program: per-element read-modify-write of the
// destination block.
//
// For each input element (streamed block by block, n reads total) the
// program loads the output block holding the element's destination, places
// the element, and writes the block back: up to N extra reads and N writes,
// for cost <= n + N(1 + omega).  On a bare machine this is the WORST of the
// permutation programs — it exists because it is the canonical workload a
// device-side buffer pool (core/cache.hpp) absorbs:
//
//  * a resident destination block turns the read-modify-write into two
//    pool hits (free), and consecutive writes to it coalesce into one
//    deferred device write;
//  * the streamed input blocks are read once and never again — pure pool
//    pollution that an asymmetry-aware eviction policy (kCleanFirst) can
//    reclaim without cost, while LRU lets them crowd out dirty destination
//    blocks whose eviction costs omega.
//
// bench_c1_cache measures exactly that separation.  Real scatters (hash
// table builds, bucket fills, external radix passes) have this shape, so
// the program is a model of write-in-place workloads generally, not a
// competitive permutation routine — use permute/dispatch.hpp for those.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>

#include "core/ext_array.hpp"

namespace aem {

/// out[dest[i]] = in[i] by destination-block read-modify-write.  `dest`
/// must be a permutation of {0..N-1} (element-collisions are allowed in
/// principle — later writes win — but only permutations are used here).
/// Cost: <= n reads (input stream) + N reads + N writes, before caching.
/// Internal memory: 2B elements.
template <class T>
void scatter_permute(const ExtArray<T>& in,
                     std::span<const std::uint64_t> dest, ExtArray<T>& out) {
  const std::size_t N = in.size();
  if (dest.size() != N || out.size() != N)
    throw std::invalid_argument("scatter_permute: size mismatch");
  if (N == 0) return;

  Machine& mach = in.machine();
  const std::size_t B = mach.B();
  Buffer<T> inbuf(mach, B);
  Buffer<T> rmw(mach, B);

  const std::uint64_t in_blocks = in.blocks();
  for (std::uint64_t s = 0; s < in_blocks; ++s) {
    const BlockIo io = in.read_block(s, inbuf.span());
    const std::size_t lo = static_cast<std::size_t>(s) * B;
    for (std::size_t k = 0; k < io.count; ++k) {
      const std::uint64_t d = dest[lo + k];
      if (d >= N)
        throw std::invalid_argument("scatter_permute: dest out of range");
      const std::uint64_t t = d / B;
      const std::size_t count = out.block_elems(t);
      out.read_block(t, rmw.span());
      rmw[static_cast<std::size_t>(d % B)] = inbuf[k];
      out.write_block(t, std::span<const T>(rmw.data(), count));
    }
  }
}

}  // namespace aem
