// Host-side permutation utilities.
//
// In the paper's program model (Section 2), the permutation pi IS the
// problem specification: a program is written for one fixed pi, so the
// algorithm may consult pi freely while planning its I/Os — only touching
// the DATA costs.  These helpers therefore live in ordinary host memory.
//
// Convention: perm[i] is the DESTINATION of the element at input position i
// (out[perm[i]] = in[i]).
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace aem::perm {

using Perm = std::vector<std::uint64_t>;

/// True iff `p` is a permutation of {0, ..., p.size()-1}.
bool is_permutation(const Perm& p);

/// inv[p[i]] = i.  Requires is_permutation(p).
Perm inverse(const Perm& p);

/// Composition h = f after g: h[i] = f[g[i]] (apply g, then f).
Perm compose(const Perm& f, const Perm& g);

/// Number of cycles (fixed points count as 1-cycles).
std::uint64_t cycle_count(const Perm& p);

Perm identity(std::uint64_t n);
Perm reversal(std::uint64_t n);
/// Rotation by k: element i moves to (i + k) mod n.
Perm cyclic_shift(std::uint64_t n, std::uint64_t k);
/// The matrix-transpose permutation of a rows x cols row-major matrix:
/// element (r, c) at index r*cols + c moves to index c*rows + r.
Perm transpose(std::uint64_t rows, std::uint64_t cols);
/// Bit-reversal permutation of n = 2^k positions (an FFT-style worst case
/// for locality).
Perm bit_reversal(std::uint64_t n);
/// Uniformly random permutation (delegates to util::random_permutation).
Perm random(std::uint64_t n, util::Rng& rng);

}  // namespace aem::perm
