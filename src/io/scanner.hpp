// Sequential block-buffered reading of an external array range.
//
// A Scanner holds exactly one block (B elements) of internal memory and
// charges one read I/O per block it advances over, which is the canonical
// "scan" primitive of the EM literature: scanning N elements costs
// ceil(N/B) reads and occupies B internal memory.
#pragma once

#include <cassert>
#include <cstddef>
#include <limits>

#include "core/ext_array.hpp"

namespace aem {

template <class T>
class Scanner {
 public:
  static constexpr std::size_t npos = std::numeric_limits<std::size_t>::max();

  /// Scans arr[begin, end).  end == npos means arr.size().
  Scanner(const ExtArray<T>& arr, std::size_t begin = 0, std::size_t end = npos)
      : arr_(&arr),
        buf_(arr.machine(), arr.machine().B()),
        pos_(begin),
        end_(end == npos ? arr.size() : end) {
    assert(pos_ <= end_ && end_ <= arr.size());
  }

  bool done() const { return pos_ >= end_; }
  std::size_t position() const { return pos_; }
  std::size_t remaining() const { return end_ - pos_; }

  /// The element at the cursor without consuming it.  Loads the containing
  /// block (one charged read) if it is not already buffered.
  const T& peek() {
    assert(!done());
    ensure_loaded();
    return buf_[pos_ - buf_lo_];
  }

  /// Consumes and returns the element at the cursor.
  T next() {
    const T v = peek();
    ++pos_;
    return v;
  }

  /// Skips `k` elements without reading the blocks they lie in.  Blocks that
  /// are skipped entirely are never charged.
  void skip(std::size_t k) {
    assert(pos_ + k <= end_);
    pos_ += k;
  }

  /// Trace ticket of the most recent charged read (invalid if none, or if
  /// tracing is off).  Lets atom-tracking callers annotate use-sets.
  IoTicket last_ticket() const { return last_ticket_; }

 private:
  void ensure_loaded() {
    const std::size_t B = arr_->machine().B();
    if (pos_ >= buf_lo_ && pos_ < buf_hi_) return;
    const std::uint64_t bi = pos_ / B;
    BlockIo io = arr_->read_block(bi, buf_.span());
    buf_lo_ = static_cast<std::size_t>(bi) * B;
    buf_hi_ = buf_lo_ + io.count;
    last_ticket_ = io.ticket;
  }

  const ExtArray<T>* arr_;
  Buffer<T> buf_;
  std::size_t pos_;
  std::size_t end_;
  std::size_t buf_lo_ = 1;  // empty interval: nothing buffered yet
  std::size_t buf_hi_ = 0;
  IoTicket last_ticket_;
};

}  // namespace aem
