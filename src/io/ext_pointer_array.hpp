// Externally stored pointer/counter arrays (Section 3.1 of the paper).
//
// The AEM mergesort merges d = omega*m runs, and when omega > B the d block
// pointers b[i] do not fit in internal memory.  The paper's solution — which
// this class implements — is to keep them in external memory and write an
// entry back only when it actually changes, i.e. when a whole block of the
// corresponding run has been consumed.  Each entry thus incurs at most one
// read-modify-write per consumed block of its run, giving the O(n) write
// bound of Theorem 3.2.
//
// The streaming APIs (for_each / update_range) touch each underlying block
// once per call, which is how the merge's initialization phase visits all d
// pointers in O(d/B) reads while holding only one block in memory.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <string>

#include "core/ext_array.hpp"

namespace aem {

class ExtPointerArray {
 public:
  /// `count` pointer slots, zero-initialized in external memory.  The
  /// zero-fill is charged: ceil(count/B) writes (the paper's O(omega*m/B)
  /// initialization cost).
  ExtPointerArray(Machine& mach, std::size_t count, std::string name)
      : ExtPointerArray(mach, count, std::move(name),
                        [](std::size_t) { return std::uint64_t{0}; }) {}

  /// `count` pointer slots initialized to init(i), streamed out one block at
  /// a time: ceil(count/B) writes, no reads.
  ExtPointerArray(Machine& mach, std::size_t count, std::string name,
                  const std::function<std::uint64_t(std::size_t)>& init)
      : arr_(mach, count, std::move(name)) {
    Buffer<std::uint64_t> staging(mach, mach.B());
    const std::size_t B = mach.B();
    for (std::uint64_t bi = 0; bi < arr_.blocks(); ++bi) {
      const std::size_t count_in_block = arr_.block_elems(bi);
      for (std::size_t i = 0; i < count_in_block; ++i)
        staging[i] = init(static_cast<std::size_t>(bi) * B + i);
      arr_.write_block(
          bi, std::span<const std::uint64_t>(staging.data(), count_in_block));
    }
  }

  std::size_t size() const { return arr_.size(); }

  /// Random read of one entry: charges one block read.
  std::uint64_t get(std::size_t i) {
    Buffer<std::uint64_t> buf(arr_.machine(), arr_.machine().B());
    const std::size_t B = arr_.machine().B();
    arr_.read_block(i / B, buf.span());
    return buf[i % B];
  }

  /// Random write of one entry: read-modify-write, one read + one write.
  /// Call only when the value actually changed — the caller owns the
  /// amortization argument.
  void set(std::size_t i, std::uint64_t v) {
    const std::size_t B = arr_.machine().B();
    Buffer<std::uint64_t> buf(arr_.machine(), B);
    const std::uint64_t bi = i / B;
    arr_.read_block(bi, buf.span());
    buf[i % B] = v;
    arr_.write_block(bi, std::span<const std::uint64_t>(buf.data(),
                                                        arr_.block_elems(bi)));
  }

  /// Streams entries [lo, hi), invoking fn(index, value).  Charges one read
  /// per underlying block; holds one block of internal memory.
  void for_each(std::size_t lo, std::size_t hi,
                const std::function<void(std::size_t, std::uint64_t)>& fn) {
    const std::size_t B = arr_.machine().B();
    Buffer<std::uint64_t> buf(arr_.machine(), B);
    std::size_t i = lo;
    while (i < hi) {
      const std::uint64_t bi = i / B;
      BlockIo io = arr_.read_block(bi, buf.span());
      const std::size_t block_lo = static_cast<std::size_t>(bi) * B;
      for (; i < hi && i < block_lo + io.count; ++i) fn(i, buf[i - block_lo]);
    }
  }

  /// Streams entries [lo, hi) with in-place mutation: fn returns true if it
  /// changed the entry.  Dirty blocks are written back once each; clean
  /// blocks cost only their read.
  void update_range(std::size_t lo, std::size_t hi,
                    const std::function<bool(std::size_t, std::uint64_t&)>& fn) {
    const std::size_t B = arr_.machine().B();
    Buffer<std::uint64_t> buf(arr_.machine(), B);
    std::size_t i = lo;
    while (i < hi) {
      const std::uint64_t bi = i / B;
      BlockIo io = arr_.read_block(bi, buf.span());
      const std::size_t block_lo = static_cast<std::size_t>(bi) * B;
      bool dirty = false;
      for (; i < hi && i < block_lo + io.count; ++i)
        dirty |= fn(i, buf[i - block_lo]);
      if (dirty) {
        arr_.write_block(bi,
                         std::span<const std::uint64_t>(buf.data(), io.count));
      }
    }
  }

 private:
  ExtArray<std::uint64_t> arr_;
};

}  // namespace aem
