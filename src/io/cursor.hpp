// Random-access block reading with single-block caching.
//
// BlockCursor keeps the most recently read block resident (B elements of
// internal memory) and only charges a read when the requested block differs
// from the cached one.  This is exactly the access pattern of the naive
// permutation program: consecutive gathers from the same source block cost
// one I/O, not one per element.
#pragma once

#include <cassert>
#include <cstddef>
#include <span>

#include "core/ext_array.hpp"

namespace aem {

template <class T>
class BlockCursor {
 public:
  explicit BlockCursor(const ExtArray<T>& arr)
      : arr_(&arr), buf_(arr.machine(), arr.machine().B()) {}

  /// Loads (if necessary) the block containing element index `elem` and
  /// returns a view of the block's elements.
  std::span<const T> load_block_of(std::size_t elem) {
    const std::size_t B = arr_->machine().B();
    return load(elem / B);
  }

  /// Loads (if necessary) block `bi` and returns a view of its elements.
  std::span<const T> load(std::uint64_t bi) {
    if (!valid_ || bi != cached_block_) {
      BlockIo io = arr_->read_block(bi, buf_.span());
      count_ = io.count;
      ticket_ = io.ticket;
      cached_block_ = bi;
      valid_ = true;
    }
    return std::span<const T>(buf_.data(), count_);
  }

  /// The element at global index `elem` (loads its block if needed).
  const T& at(std::size_t elem) {
    const std::size_t B = arr_->machine().B();
    auto view = load_block_of(elem);
    assert(elem % B < view.size());
    return view[elem % B];
  }

  /// Invalidate the cache, forcing the next access to re-read.  Used when
  /// the underlying array may have been written through another path.
  void invalidate() { valid_ = false; }

  /// Ticket of the most recent charged read.
  IoTicket last_ticket() const { return ticket_; }
  bool cached() const { return valid_; }
  std::uint64_t cached_block() const { return cached_block_; }

 private:
  const ExtArray<T>* arr_;
  Buffer<T> buf_;
  std::size_t count_ = 0;
  std::uint64_t cached_block_ = 0;
  bool valid_ = false;
  IoTicket ticket_;
};

}  // namespace aem
