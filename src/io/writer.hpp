// Sequential block-buffered writing to an external array range.
//
// A Writer holds `batch_blocks` blocks of internal memory (one by default),
// emits write I/O per full buffer, and — when a range boundary falls inside
// a block that holds live data outside the range — performs the
// read-modify-write that a real block device would need (charging the extra
// read).  Ranges used by the library's algorithms are block-aligned, so the
// RMW path only triggers at terminal partial blocks.
//
// With batch_blocks == 1 (the default) every charge is byte-identical to
// the historical one-block writer.  With batch_blocks >= 2, aligned
// whole-block runs are emitted through ExtArray::write_blocks as ONE
// batched Machine::submit (docs/MODEL.md section 17): the same blocks are
// written exactly once each in the same order, so end-of-stream counters
// and wear are unchanged, but the writes land later (at buffer boundaries)
// — callers that interleave reads of just-written data, or that need
// checkpoint-granular durability, must keep batch_blocks == 1.
//
// finish() must be called to flush the final partial buffer; the destructor
// asserts (in debug builds) that no buffered data is silently dropped.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <exception>
#include <limits>

#include "core/ext_array.hpp"

namespace aem {

template <class T>
class Writer {
 public:
  static constexpr std::size_t npos = std::numeric_limits<std::size_t>::max();

  /// Writes into arr[begin, end) sequentially.  end == npos means
  /// arr.size().  The array must be pre-sized (grow_to) to cover the range.
  /// `batch_blocks` sizes the staging buffer; values >= 2 defer and batch
  /// aligned whole-block writes (see file comment).
  Writer(ExtArray<T>& arr, std::size_t begin = 0, std::size_t end = npos,
         std::size_t batch_blocks = 1)
      : arr_(&arr),
        buf_(arr.machine(),
             arr.machine().B() * std::max<std::size_t>(1, batch_blocks)),
        pos_(begin),
        end_(end == npos ? arr.size() : end) {
    assert(pos_ <= end_ && end_ <= arr.size());
    buf_fill_ = 0;
  }

  Writer(Writer&&) noexcept = default;
  Writer& operator=(Writer&&) noexcept = default;

  // Unflushed data at destruction is a bug — except during stack unwinding
  // (e.g. a BudgetExceeded or FaultError mid-write), where dropping the
  // buffered tail is the only sane behavior.
  ~Writer() {
    assert((buf_fill_ == 0 || std::uncaught_exceptions() > 0) &&
           "Writer destroyed with unflushed data");
  }

  std::size_t position() const { return pos_ + buf_fill_; }
  std::size_t remaining() const { return end_ - position(); }
  bool full() const { return position() >= end_; }

  /// Appends one element; flushes automatically when the staging buffer is
  /// full up to a block boundary.
  void push(const T& v) {
    assert(!full());
    const std::size_t B = arr_->machine().B();
    buf_[buf_fill_++] = v;
    // The buffer window starts at pos_'s block, so filling it always ends
    // on a block boundary (pos_ mid-block only before the first flush).
    if (pos_ % B + buf_fill_ == buf_.size()) flush_buffered();
  }

  /// Flushes any buffered data (the final, possibly partial, blocks).
  /// Idempotent.
  void finish() {
    if (buf_fill_ > 0) flush_buffered();
  }

 private:
  void flush_buffered() {
    const std::size_t B = arr_->machine().B();
    std::size_t off = 0;  // elements of buf_ already written out
    while (off < buf_fill_) {
      const std::uint64_t bi = pos_ / B;
      const std::size_t block_off = pos_ % B;
      const std::size_t block_count = arr_->block_elems(bi);
      const std::size_t avail = buf_fill_ - off;
      if (block_off == 0 && avail >= block_count) {
        // Aligned whole-block run: extend over every consecutive block the
        // buffer fully covers and emit it as one (batched) transfer.
        std::size_t nblocks = 0;
        std::size_t span_elems = 0;
        while (off + span_elems < buf_fill_) {
          const std::size_t bc = arr_->block_elems(bi + nblocks);
          if (avail - span_elems < bc) break;
          span_elems += bc;
          ++nblocks;
        }
        const std::span<const T> src(buf_.data() + off, span_elems);
        if (nblocks >= 2) {
          arr_->write_blocks(bi, nblocks, src);
        } else {
          arr_->write_block(bi, src);
        }
        pos_ += span_elems;
        off += span_elems;
      } else {
        // Range boundary inside a live block (partial head or tail):
        // read-modify-write, exactly as a real block device would.
        const std::size_t n = std::min(avail, block_count - block_off);
        Buffer<T> merge(arr_->machine(), B);
        arr_->read_block(bi, merge.span());
        for (std::size_t i = 0; i < n; ++i) merge[block_off + i] = buf_[off + i];
        arr_->write_block(bi, std::span<const T>(merge.data(), block_count));
        pos_ += n;
        off += n;
      }
    }
    buf_fill_ = 0;
  }

  ExtArray<T>* arr_;
  Buffer<T> buf_;
  std::size_t pos_;
  std::size_t end_;
  std::size_t buf_fill_ = 0;
};

}  // namespace aem
