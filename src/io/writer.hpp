// Sequential block-buffered writing to an external array range.
//
// A Writer holds one block of internal memory, emits one write I/O per full
// block, and — when a range boundary falls inside a block that holds live
// data outside the range — performs the read-modify-write that a real block
// device would need (charging the extra read).  Ranges used by the library's
// algorithms are block-aligned, so the RMW path only triggers at terminal
// partial blocks.
//
// finish() must be called to flush the final partial block; the destructor
// asserts (in debug builds) that no buffered data is silently dropped.
#pragma once

#include <cassert>
#include <cstddef>
#include <exception>
#include <limits>

#include "core/ext_array.hpp"

namespace aem {

template <class T>
class Writer {
 public:
  static constexpr std::size_t npos = std::numeric_limits<std::size_t>::max();

  /// Writes into arr[begin, end) sequentially.  end == npos means
  /// arr.size().  The array must be pre-sized (grow_to) to cover the range.
  Writer(ExtArray<T>& arr, std::size_t begin = 0, std::size_t end = npos)
      : arr_(&arr),
        buf_(arr.machine(), arr.machine().B()),
        pos_(begin),
        end_(end == npos ? arr.size() : end) {
    assert(pos_ <= end_ && end_ <= arr.size());
    buf_fill_ = 0;
  }

  Writer(Writer&&) noexcept = default;
  Writer& operator=(Writer&&) noexcept = default;

  // Unflushed data at destruction is a bug — except during stack unwinding
  // (e.g. a BudgetExceeded or FaultError mid-write), where dropping the
  // buffered tail is the only sane behavior.
  ~Writer() {
    assert((buf_fill_ == 0 || std::uncaught_exceptions() > 0) &&
           "Writer destroyed with unflushed data");
  }

  std::size_t position() const { return pos_ + buf_fill_; }
  std::size_t remaining() const { return end_ - position(); }
  bool full() const { return position() >= end_; }

  /// Appends one element; flushes automatically on block boundaries.
  void push(const T& v) {
    assert(!full());
    const std::size_t B = arr_->machine().B();
    // Align the first block: if pos_ is mid-block, stage a partial block.
    buf_[buf_fill_++] = v;
    const std::size_t block_off = pos_ % B;
    if (block_off + buf_fill_ == B || pos_ + buf_fill_ == end_) {
      // Full block or end of range: handled lazily by flush-on-boundary
      // below only when the block is complete.
      if (block_off + buf_fill_ == B) flush_block();
    }
  }

  /// Flushes any buffered partial block.  Idempotent.
  void finish() {
    if (buf_fill_ > 0) flush_block();
  }

 private:
  void flush_block() {
    const std::size_t B = arr_->machine().B();
    const std::uint64_t bi = pos_ / B;
    const std::size_t block_off = pos_ % B;
    const std::size_t block_count = arr_->block_elems(bi);

    if (block_off == 0 && buf_fill_ == block_count) {
      // The common case: our data covers the whole (possibly terminal
      // partial) block.
      arr_->write_block(bi, std::span<const T>(buf_.data(), buf_fill_));
    } else {
      // Range boundary inside a live block: read-modify-write.
      Buffer<T> merge(arr_->machine(), B);
      arr_->read_block(bi, merge.span());
      for (std::size_t i = 0; i < buf_fill_; ++i)
        merge[block_off + i] = buf_[i];
      arr_->write_block(bi, std::span<const T>(merge.data(), block_count));
    }
    pos_ += buf_fill_;
    buf_fill_ = 0;
  }

  ExtArray<T>* arr_;
  Buffer<T> buf_;
  std::size_t pos_;
  std::size_t end_;
  std::size_t buf_fill_ = 0;
};

}  // namespace aem
