// Internal-memory budgeting for the Section 3 algorithms.
//
// Section 3.1 opens with "let M be a constant fraction of the available
// internal memory", which licenses the constant-factor slack every concrete
// implementation needs.  aemlib's concrete split, asserted by the strict
// ledger in every test run:
//
//   Mout  = M/4 (block-aligned)          the merge's staged output batch
//                                        ("the array M" of the paper);
//   m_eff = Mout / B                     Lemma 3.1's bound on simultaneously
//                                        active runs;
//   fanout d = max(2, omega * m_eff)     the paper's d = omega*m up to the
//                                        constant;
//   small_batch = M/2                    the base-case sort's staged batch
//                                        (it only holds OUT + two blocks);
//   base  = omega * small_batch          the small-sort chunk, the paper's
//                                        N' <= omega*M base case.
//
// Merge-time residency: OUT (M/4) + active table (m_eff = M/4B <= M/4,
// one element per active run, aux words under the Section 3.1 constant-
// per-element allowance) + at most four transient blocks (4B <= M/2),
// total < M whenever M >= 8B — which SortBudget::from therefore requires.
// The bound covers the ARAM case B = 1 as well.
#pragma once

#include <cstddef>
#include <cstdint>

#include "core/machine.hpp"
#include "util/math.hpp"

namespace aem {

struct SortBudget {
  std::size_t out_batch;    // merge Mout = M/4: elements staged per round
  std::size_t m_eff;        // Mout / B: max active runs (Lemma 3.1)
  std::size_t fanout;       // d = max(2, omega * m_eff)
  std::size_t small_batch;  // small-sort batch = M/2 (only OUT + two blocks)
  std::size_t base;         // small-sort chunk size, omega * small_batch

  /// Throws std::invalid_argument unless M >= 8B — the smallest memory for
  /// which the merge's Mout + active table + transient blocks provably fit
  /// in M under the strict ledger (see the header comment).
  static SortBudget from(const Machine& mach) {
    const std::size_t B = mach.B();
    if (mach.M() < 8 * B)
      throw std::invalid_argument(
          "AEM sort algorithms require M >= 8B (got M=" +
          std::to_string(mach.M()) + ", B=" + std::to_string(B) + ")");
    SortBudget b;
    b.out_batch = (mach.M() / 4 / B) * B;
    b.m_eff = b.out_batch / B;
    const std::uint64_t d = mach.omega() * static_cast<std::uint64_t>(b.m_eff);
    b.fanout = static_cast<std::size_t>(d < 2 ? 2 : d);
    b.small_batch = (mach.M() / 2 / B) * B;
    b.base = static_cast<std::size_t>(mach.omega()) * b.small_batch;
    return b;
  }
};

/// Half-open element range [begin, end) within an external array.  Runs are
/// the unit the merge operates on; begins must be block-aligned.
struct RunBounds {
  std::size_t begin = 0;
  std::size_t end = 0;
  std::size_t length() const { return end - begin; }
};

}  // namespace aem
