// Internal-memory budgeting for the Section 3 algorithms.
//
// Section 3.1 opens with "let M be a constant fraction of the available
// internal memory", which licenses the constant-factor slack every concrete
// implementation needs.  aemlib's concrete split, asserted by the strict
// ledger in every test run:
//
//   Mout  = M/4 (block-aligned)          the merge's staged output batch
//                                        ("the array M" of the paper);
//   m_eff = Mout / B                     Lemma 3.1's bound on simultaneously
//                                        active runs;
//   fanout d = max(2, omega * m_eff)     the paper's d = omega*m up to the
//                                        constant;
//   small_batch = M/2                    the base-case sort's staged batch
//                                        (it only holds OUT + two blocks);
//   base  = omega * small_batch          the small-sort chunk, the paper's
//                                        N' <= omega*M base case.
//
// Merge-time residency: OUT (M/4) + active table (m_eff = M/4B <= M/4,
// one element per active run, aux words under the Section 3.1 constant-
// per-element allowance) + at most four transient blocks (4B <= M/2),
// total < M whenever M >= 8B — which SortBudget::from therefore requires.
// The bound covers the ARAM case B = 1 as well.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <limits>

#include "core/machine.hpp"
#include "util/math.hpp"

namespace aem {

struct SortBudget {
  /// Fanout ceiling.  merge_runs refuses more than 2^31 runs per merge
  /// group, so any d beyond that is indistinguishable from 2^31 (a group
  /// never holds more runs than exist); clamping here keeps omega * m_eff
  /// exact instead of letting an extreme omega (say 2^40) wrap the 64-bit
  /// product — a wrapped fanout of 0 or 1 would violate every d >= 2
  /// precondition downstream while looking like a legitimate budget.
  static constexpr std::size_t kMaxFanout = std::size_t{1} << 31;

  std::size_t out_batch;    // merge Mout = M/4: elements staged per round
  std::size_t m_eff;        // Mout / B: max active runs (Lemma 3.1)
  std::size_t fanout;       // d = clamp(omega * m_eff, 2, kMaxFanout)
  std::size_t small_batch;  // small-sort batch = M/2 (only OUT + two blocks)
  std::size_t base;         // small-sort chunk, omega * small_batch (saturated)

  /// Throws std::invalid_argument unless M >= 8B — the smallest memory for
  /// which the merge's Mout + active table + transient blocks provably fit
  /// in M under the strict ledger (see the header comment).
  static SortBudget from(const Machine& mach) {
    const std::size_t B = mach.B();
    if (mach.M() < 8 * B)
      throw std::invalid_argument(
          "AEM sort algorithms require M >= 8B (got M=" +
          std::to_string(mach.M()) + ", B=" + std::to_string(B) + ")");
    SortBudget b;
    b.out_batch = (mach.M() / 4 / B) * B;
    b.m_eff = b.out_batch / B;
    // Saturating multiply + clamp: omega is caller-controlled and may be
    // astronomically large, so the product must not wrap (see kMaxFanout).
    const std::uint64_t d = util::mul_sat(mach.omega(), b.m_eff);
    b.fanout = static_cast<std::size_t>(
        std::clamp<std::uint64_t>(d, 2, kMaxFanout));
    b.small_batch = (mach.M() / 2 / B) * B;
    // base saturates at size_t max rather than wrapping: a wrapped base of 0
    // would spin make_chunks forever, and a small wrapped base silently
    // misroutes inputs past the N' <= omega*M base case.  Saturation errs
    // the safe way — everything becomes the base case, which is exactly the
    // paper's behavior when omega*M exceeds every input size.
    b.base = static_cast<std::size_t>(
        std::min<std::uint64_t>(util::mul_sat(mach.omega(), b.small_batch),
                                std::numeric_limits<std::size_t>::max()));
    return b;
  }
};

/// Half-open element range [begin, end) within an external array.  Runs are
/// the unit the merge operates on; begins must be block-aligned.
struct RunBounds {
  std::size_t begin = 0;
  std::size_t end = 0;
  std::size_t length() const { return end - begin; }
};

}  // namespace aem
