// Read-favoring AEM sample sort: the [7]-style low-write variant whose
// splitter fanout keeps growing with omega instead of stopping at the
// resident cap (docs/MODEL.md section 18).
//
// The classical samplesort in samplesort.hpp must hold the whole splitter
// set in internal memory while classifying, which caps its fanout at
// Mout/4 and — for omega >> B — costs it extra distribution LEVELS, i.e.
// extra write passes.  This variant removes the cap by externalizing the
// splitters and paying reads for them:
//
//  * the sample (~4 per splitter) is collected to EXTERNAL memory and
//    sorted with the omega-aware mergesort, so the sample size may exceed M;
//  * the d_s - 1 distinct splitters live in an external sorted array;
//  * distribution proceeds window by window: each window covers m_eff
//    consecutive buckets, and only that window's boundary splitters
//    (<= m_eff + 1 keys) are loaded — charged splitter-probe reads — and
//    searched RESIDENT via the Eytzinger kernel of util/search.hpp (the
//    branchless layout bench_m0 measures; non-integral key types fall back
//    to std::upper_bound on the same resident window).  Each window is
//    scanned twice (count, then distribute), so out-of-window elements cost
//    reads, never writes.
//
// Per level over n elements with d_s = omega * m_eff buckets this is
// O(omega * n/B) reads and n/B + O(d_s) writes (each element is written
// exactly once; the O(d_s) term is partial-block RMW at bucket
// boundaries), against the capped variant's extra levels and the Section 3
// merge's pointer RMW traffic — bench_w1_lowwrite maps out where each
// wins.  The fanout is additionally capped at len/(4B) so buckets average
// at least four blocks and the boundary-RMW term stays O(n/B)/4.
//
// At omega == 1 (or whenever the budget fanout already fits residently)
// aem_lowwrite_sample_sort delegates to the classical SampleSortJob, so
// the omega = 1 variant is charge-identical to aem_sample_sort by
// construction — the identity guard of bench_w1_lowwrite.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <stdexcept>
#include <type_traits>
#include <vector>

#include "core/ext_array.hpp"
#include "io/cursor.hpp"
#include "io/scanner.hpp"
#include "io/writer.hpp"
#include "sort/budget.hpp"
#include "sort/mergesort.hpp"
#include "sort/samplesort.hpp"
#include "sort/small_sort.hpp"
#include "util/search.hpp"

namespace aem {

namespace sort_detail {

template <class T, class Less>
class LowWriteSampleSortJob {
 public:
  LowWriteSampleSortJob(const ExtArray<T>& in, ExtArray<T>& out, Less less)
      : mach_(in.machine()),
        in_(in),
        out_(out),
        less_(less),
        budget_(SortBudget::from(mach_)) {}

  void run() {
    const std::size_t n = in_.size();
    if (n == 0) return;
    if (n <= budget_.base) {
      small_sort(in_, 0, n, out_, 0, less_);
      return;
    }
    ExtArray<T> a(mach_, n, "lwsamplesort.a");
    ExtArray<T> b(mach_, n, "lwsamplesort.b");
    auto buckets = distribute(in_, RunBounds{0, n}, a);
    for (const RunBounds& bkt : buckets) recurse(a, b, bkt, /*depth=*/1);
  }

 private:
  static constexpr unsigned kMaxDepth = 64;

  /// Per-range fanout: the budget's omega-scaled d_s, further capped so
  /// buckets average >= 4 blocks (see file comment).
  std::size_t fanout_for(std::size_t len) const {
    const std::size_t by_len =
        std::max<std::size_t>(2, len / (4 * mach_.B()));
    return std::min(budget_.fanout, by_len);
  }

  void recurse(ExtArray<T>& cur, ExtArray<T>& other, RunBounds range,
               unsigned depth) {
    if (range.length() == 0) return;
    if (range.length() <= budget_.base || depth >= kMaxDepth) {
      small_sort(cur, range.begin, range.end, out_, range.begin, less_);
      return;
    }
    auto buckets = distribute(cur, range, other);
    for (const RunBounds& bkt : buckets) recurse(other, cur, bkt, depth + 1);
  }

  /// Collects ~4 evenly spread samples per splitter from src[range] into an
  /// external array and sorts it with the omega-aware mergesort.  Returns
  /// the sorted sample array (sized `want`).
  ExtArray<T> sorted_sample(const ExtArray<T>& src, RunBounds range,
                            std::size_t want) {
    ExtArray<T> raw(mach_, want, "lwsamplesort.sample");
    {
      const std::size_t len = range.length();
      BlockCursor<T> cursor(src);
      Writer<T> w(raw, 0, want);
      for (std::size_t i = 0; i < want; ++i) {
        const std::size_t pos =
            range.begin + (i * len + len / 2) / want;  // even spread
        w.push(cursor.at(std::min(pos, range.end - 1)));
      }
      w.finish();
    }
    ExtArray<T> sorted(mach_, want, "lwsamplesort.sample_sorted");
    aem_merge_sort(raw, sorted, less_);
    return sorted;
  }

  /// Streams the sorted sample and keeps the distinct evenly spaced
  /// splitter candidates.  With write == nullptr only counts them;
  /// otherwise emits each kept splitter through *write.  Returns the count.
  std::size_t select_splitters(ExtArray<T>& sample, std::size_t fanout,
                               Writer<T>* write) {
    const std::size_t want = sample.size();
    Scanner<T> scan(sample, 0, want);
    std::size_t kept = 0;
    bool have_prev = false;
    T prev{};
    std::size_t cursor = 0;  // elements consumed so far
    for (std::size_t i = 1; i < fanout; ++i) {
      const std::size_t target = i * want / fanout;
      if (target >= want) break;
      if (target < cursor) continue;  // duplicate target position
      scan.skip(target - cursor);
      const T cand = scan.next();
      cursor = target + 1;
      if (!have_prev || less_(prev, cand)) {
        ++kept;
        if (write != nullptr) write->push(cand);
        prev = cand;
        have_prev = true;
      }
    }
    return kept;
  }

  /// Splits src[range] into buckets written contiguously to dst[range]
  /// using external splitters and windowed resident search.  Returns the
  /// bucket bounds (>= 2 buckets unless the sample is fully degenerate).
  std::vector<RunBounds> distribute(const ExtArray<T>& src, RunBounds range,
                                    ExtArray<T>& dst) {
    const std::size_t len = range.length();
    const std::size_t fanout = fanout_for(len);
    const std::size_t want = std::min(len, 4 * fanout);

    ExtArray<T> sample = sorted_sample(src, range, want);

    // Two passes over the sorted sample: count the distinct splitters, then
    // materialize them into an exactly sized external array.
    const std::size_t nsplit = select_splitters(sample, fanout, nullptr);
    if (nsplit == 0) {
      // Fully degenerate sample: copy through; the recursion depth guard
      // hands the range to small_sort eventually.
      copy_range(src, range, dst);
      return {range};
    }
    ExtArray<T> split(mach_, nsplit, "lwsamplesort.splitters");
    {
      Writer<T> w(split, 0, nsplit);
      select_splitters(sample, fanout, &w);
      w.finish();
    }

    const std::size_t buckets = nsplit + 1;
    const std::size_t group = std::max<std::size_t>(1, budget_.m_eff);
    std::vector<RunBounds> bounds;
    bounds.reserve(buckets);
    std::size_t offset = range.begin;

    for (std::size_t blo = 0; blo < buckets; blo += group) {
      const std::size_t bhi = std::min(buckets, blo + group);
      // Window splitters: global indices [base_idx, wend).  Including the
      // lower AND upper boundary keys makes in-window membership decidable
      // from resident data alone.
      const std::size_t base_idx = blo == 0 ? 0 : blo - 1;
      const std::size_t wend = std::min(nsplit, bhi);
      std::vector<T> wsplit;
      // Residency: the window keys plus the Eytzinger tree's padded copy
      // (footprint < 2n + 1, see util/search.hpp) plus the per-window
      // bucket counters and bounds.
      MemoryReservation wres(mach_.ledger(), 3 * (wend - base_idx) + 1 +
                                                 2 * (bhi - blo));
      wsplit.reserve(wend - base_idx);
      {
        Scanner<T> scan(split, base_idx, wend);
        while (!scan.done()) wsplit.push_back(scan.next());
      }
      util::EytzingerSearch eyt;
      if constexpr (std::is_same_v<T, std::uint64_t> &&
                    std::is_same_v<Less, std::less<std::uint64_t>>) {
        eyt = util::EytzingerSearch(
            std::span<const std::uint64_t>(wsplit.data(), wsplit.size()));
      }
      // bucket_of(v) relative to the window, or `buckets` when v falls
      // outside [blo, bhi).
      auto window_bucket = [&](const T& v) -> std::size_t {
        std::size_t j;
        if constexpr (std::is_same_v<T, std::uint64_t> &&
                      std::is_same_v<Less, std::less<std::uint64_t>>) {
          j = eyt.rank_upper(v);
        } else {
          j = static_cast<std::size_t>(
              std::upper_bound(wsplit.begin(), wsplit.end(), v, less_) -
              wsplit.begin());
        }
        if (j == wsplit.size() && wend < nsplit)
          return buckets;  // at or past the upper boundary key: not ours
        const std::size_t bkt = base_idx + j;
        return (bkt >= blo && bkt < bhi) ? bkt : buckets;
      };

      // Count scan: exact sizes of this window's buckets.
      std::vector<std::size_t> count(bhi - blo, 0);
      {
        Scanner<T> scan(src, range.begin, range.end);
        while (!scan.done()) {
          const std::size_t bkt = window_bucket(scan.next());
          if (bkt < buckets) ++count[bkt - blo];
        }
      }
      std::vector<RunBounds> wbounds(bhi - blo);
      for (std::size_t i = 0; i < count.size(); ++i) {
        wbounds[i] = RunBounds{offset, offset + count[i]};
        offset += count[i];
      }

      // Distribute scan: every element of the window is written exactly
      // once; out-of-window elements are re-read, never re-written.
      {
        std::vector<Writer<T>> writers;
        writers.reserve(bhi - blo);
        for (const RunBounds& wb : wbounds)
          writers.emplace_back(dst, wb.begin, wb.end);
        Scanner<T> scan(src, range.begin, range.end);
        while (!scan.done()) {
          const T v = scan.next();
          const std::size_t bkt = window_bucket(v);
          if (bkt < buckets) writers[bkt - blo].push(v);
        }
        for (auto& w : writers) w.finish();
      }
      bounds.insert(bounds.end(), wbounds.begin(), wbounds.end());
    }

    if (offset != range.end)
      throw std::logic_error(
          "lowwrite samplesort: windows did not cover the range");
    return bounds;
  }

  void copy_range(const ExtArray<T>& src, RunBounds range, ExtArray<T>& dst) {
    Scanner<T> scan(src, range.begin, range.end);
    Writer<T> w(dst, range.begin, range.end);
    while (!scan.done()) w.push(scan.next());
    w.finish();
  }

  Machine& mach_;
  const ExtArray<T>& in_;
  ExtArray<T>& out_;
  Less less_;
  SortBudget budget_;
};

}  // namespace sort_detail

/// Sorts `in` into `out` with the read-favoring sample sort (see header
/// comment).  NOT stable.  Delegates to aem_sample_sort whenever the
/// budget fanout already fits residently (always at omega == 1), making
/// the omega = 1 variant charge-identical to its classical counterpart.
template <class T, class Less = std::less<T>>
void aem_lowwrite_sample_sort(const ExtArray<T>& in, ExtArray<T>& out,
                              Less less = {}) {
  if (in.size() != out.size())
    throw std::invalid_argument("aem_lowwrite_sample_sort: size mismatch");
  Machine& mach = in.machine();
  const SortBudget budget = SortBudget::from(mach);
  const std::size_t resident_cap =
      std::max<std::size_t>(2, budget.out_batch / 4);
  if (mach.omega() == 1 || budget.fanout <= resident_cap) {
    sort_detail::SampleSortJob<T, Less> job(in, out, less);
    job.run();
    return;
  }
  sort_detail::LowWriteSampleSortJob<T, Less> job(in, out, less);
  job.run();
}

}  // namespace aem
