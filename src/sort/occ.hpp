// Occurrence tagging for watermark-based merging (Section 3.1).
//
// The paper's merge tracks, per input run, the largest element already
// written to the output (the watermark p_i) and resumes each round from "the
// smallest element larger than p_i".  With duplicate keys that definition is
// ambiguous, so the implementation orders *occurrences*: an element together
// with its (run, position) provenance.  The total order is
//
//   (a < b)  iff  less(a.val, b.val)
//                 or (keys tie and (a.run, a.pos) < (b.run, b.pos))
//
// which is strict, total (positions are unique), costs no extra I/O (the
// provenance is known while scanning), and makes every consumption watermark
// well-defined.  It also makes the sort stable, since runs are numbered in
// input order and positions ascend within a run.
//
// Section 3.1 explicitly budgets "a constant number of additional words of
// auxiliary data with each element" by letting the algorithm use a constant
// fraction of M; the ledger charges one element per resident occurrence and
// the algorithms reserve conservative fractions (see merge.hpp).
#pragma once

#include <cstdint>

#include "core/trace.hpp"

namespace aem::sort_detail {

template <class T>
struct Occ {
  T val{};
  std::uint32_t run = 0;
  std::uint64_t pos = 0;  // absolute element index in the level's source array
  /// Trace ticket of the read that loaded this occurrence (only meaningful
  /// while tracing).  When the occurrence reaches the output batch, that
  /// read is the one that "uses" the atom in the sense of Lemma 4.3.
  IoTicket ticket{};
};

/// Strict total order on occurrences induced by a strict weak order on keys.
template <class T, class Less>
class OccLess {
 public:
  explicit OccLess(Less less) : less_(less) {}

  bool operator()(const Occ<T>& a, const Occ<T>& b) const {
    if (less_(a.val, b.val)) return true;
    if (less_(b.val, a.val)) return false;
    if (a.run != b.run) return a.run < b.run;
    return a.pos < b.pos;
  }

  /// Key equivalence under the underlying weak order (used by combiners).
  bool equiv(const T& a, const T& b) const {
    return !less_(a, b) && !less_(b, a);
  }

  const Less& key_less() const { return less_; }

 private:
  Less less_;
};

}  // namespace aem::sort_detail
