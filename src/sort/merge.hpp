// The paper's Section 3.1: merging d = omega*m sorted runs with
// O(omega(n+m)) reads and O(n+m) writes (Theorem 3.2), with NO assumption
// relating omega and B.
//
// Faithful structure, per round (a round outputs the next Mout smallest
// elements across all runs):
//
//   A. initialization — stream the externally-stored block pointers b[i]
//      (they may not fit in memory when omega > B) and read up to TWO blocks
//      per run, folding unconsumed occurrences into the staged batch OUT
//      (capacity Mout, larger elements evicted as smaller ones arrive);
//   B. active-run identification — re-read the same <= 2 blocks per run
//      (the paper's trick to avoid storing per-run state for all d runs) and
//      keep the runs that might still contribute: more unread blocks AND
//      last-read element among the Mout smallest.  Lemma 3.1 guarantees at
//      most m_eff = Mout/B such runs, which is asserted;
//   C. merging — repeatedly pick the active run whose last-loaded element is
//      smallest and read its next block, until no run is active;
//   D. output — write OUT (sorted) to the destination, advance the global
//      consumption watermark, and advance b[i] past every block whose last
//      element was just output (at most one charged pointer update per
//      consumed block over the whole merge: the O(n) amortization of
//      Section 3.1).
//
// Consumption is defined by the watermark: an occurrence is consumed iff it
// is <= the largest occurrence written so far (total occurrence order, see
// occ.hpp).  Because each round outputs exactly the globally smallest
// unconsumed occurrences, the consumed set is always a prefix of every run,
// which keeps the b[i] invariant — b[i] is the block holding the run's first
// unconsumed element — without ever writing pointers mid-round.
#pragma once

#include <algorithm>
#include <cstddef>
#include <functional>
#include <optional>
#include <set>
#include <span>
#include <stdexcept>
#include <vector>

#include "core/ext_array.hpp"
#include "io/ext_pointer_array.hpp"
#include "sort/budget.hpp"
#include "sort/loser_tree.hpp"
#include "sort/occ.hpp"
#include "sort/sink.hpp"

namespace aem {

/// Observability: per-merge statistics, filled when a MergeStats* is passed
/// to merge_runs.  max_active_runs empirically witnesses Lemma 3.1 (it must
/// never exceed m_eff = Mout/B, which the merge also asserts).
struct MergeStats {
  std::size_t rounds = 0;
  std::size_t max_active_runs = 0;
};

namespace sort_detail {

template <class T, class Less, class Combine>
class MergeJob {
 public:
  MergeJob(const ExtArray<T>& src, std::span<const RunBounds> runs,
           ExtArray<T>& dst, std::size_t dst_begin, Less less, Combine combine)
      : mach_(src.machine()),
        src_(src),
        runs_(runs.begin(), runs.end()),
        budget_(SortBudget::from(mach_)),
        occ_less_(less),
        sink_(dst, dst_begin, dst_begin + total_length(runs), key_eq(),
              combine) {
    validate();
  }

  std::size_t run() {
    const std::size_t total = total_length(runs_);
    if (total == 0) return sink_.finish();

    // b[i]: absolute index of the block holding run i's first unconsumed
    // element.  Stored externally (Section 3.1's omega > B case) and
    // initialized by streaming: ceil(d/B) writes.
    ExtPointerArray bptr(mach_, runs_.size(), "merge.bptr",
                         [this](std::size_t r) {
                           return static_cast<std::uint64_t>(
                               runs_[r].begin / mach_.B());
                         });

    std::size_t consumed = 0;
    while (consumed < total) consumed += round(bptr);
    return sink_.finish();
  }

  void set_stats(MergeStats* stats) { stats_ = stats; }
  void set_kernel(MergeKernel kernel) { kernel_ = kernel; }

 private:
  struct Active {
    std::uint32_t run;
    Occ<T> last_loaded;       // the paper's s_i
    std::uint64_t next_block;  // absolute block index of the next unread block
  };

  using OutSet = std::set<Occ<T>, OccLess<T, Less>>;

  static std::size_t total_length(std::span<const RunBounds> runs) {
    std::size_t t = 0;
    for (const auto& r : runs) t += r.length();
    return t;
  }

  auto key_eq() const {
    return [ol = occ_less_](const T& a, const T& b) { return ol.equiv(a, b); };
  }

  void validate() const {
    if (runs_.size() > (std::size_t{1} << 31))
      throw std::invalid_argument("merge: too many runs");
    for (const auto& r : runs_) {
      if (r.begin % mach_.B() != 0)
        throw std::invalid_argument("merge: run begin must be block-aligned");
      if (r.end < r.begin || r.end > src_.size())
        throw std::invalid_argument("merge: bad run bounds");
    }
  }

  std::uint64_t run_end_block(std::uint32_t r) const {
    return (runs_[r].end + mach_.B() - 1) / mach_.B();
  }

  bool exhausted(std::uint32_t r, std::uint64_t b) const {
    return b >= run_end_block(r) || runs_[r].length() == 0;
  }

  /// Reads absolute block `abs_block`, folds its in-range unconsumed
  /// occurrences into `out`, and returns the last in-range occurrence.
  Occ<T> read_into(std::uint32_t r, std::uint64_t abs_block, OutSet& out,
                   Buffer<T>& blockbuf) {
    BlockIo io = src_.read_block(abs_block, blockbuf.span());
    const std::size_t lo = static_cast<std::size_t>(abs_block) * mach_.B();
    Occ<T> last{};
    bool any = false;
    for (std::size_t i = 0; i < io.count; ++i) {
      const std::size_t pos = lo + i;
      if (pos < runs_[r].begin || pos >= runs_[r].end) continue;
      Occ<T> o{blockbuf[i], r, pos, io.ticket};
      try_insert(o, out);
      last = o;
      any = true;
    }
    if (!any)
      throw std::logic_error("merge: read a block with no in-range elements");
    return last;
  }

  void try_insert(const Occ<T>& o, OutSet& out) {
    if (watermark_.has_value() && !occ_less_(*watermark_, o)) return;  // consumed
    if (out.size() < budget_.out_batch) {
      out.insert(o);
      return;
    }
    auto largest = std::prev(out.end());
    if (occ_less_(o, *largest)) {
      out.erase(largest);
      out.insert(o);
    }
  }

  /// One round: returns the number of source occurrences consumed.
  std::size_t round(ExtPointerArray& bptr) {
    MemoryReservation out_res(mach_.ledger(), budget_.out_batch);
    OutSet out(occ_less_);
    Buffer<T> blockbuf(mach_, mach_.B());

    // Phase A: initialization — up to two blocks per non-exhausted run.
    bptr.for_each(0, runs_.size(), [&](std::size_t r, std::uint64_t b) {
      const auto run = static_cast<std::uint32_t>(r);
      if (exhausted(run, b)) return;
      read_into(run, b, out, blockbuf);
      if (b + 1 < run_end_block(run)) read_into(run, b + 1, out, blockbuf);
    });

    if (out.empty())
      throw std::logic_error("merge: no progress (pointer invariant broken)");

    // Phase B: identify active runs by re-reading the initialization blocks
    // (the paper's memory-frugal recomputation of s_i).  Lemma 3.1: at most
    // m_eff runs can be active; enforced below.
    // One ledger element per active run: each active entry stands for the
    // run's resident boundary element s_i; its O(1) auxiliary words are the
    // constant-per-element allowance of Section 3.1 (same convention as the
    // occurrences in OUT).
    std::vector<Active> actives;
    MemoryReservation actives_res(mach_.ledger(), budget_.m_eff);
    bptr.for_each(0, runs_.size(), [&](std::size_t r, std::uint64_t b) {
      const auto run = static_cast<std::uint32_t>(r);
      if (exhausted(run, b)) return;
      std::uint64_t last_block = b;
      if (b + 1 < run_end_block(run)) last_block = b + 1;
      // Re-read (charged) to recover s_i without per-run resident state.
      Occ<T> s{};
      {
        BlockIo io = src_.read_block(last_block, blockbuf.span());
        const std::size_t lo = static_cast<std::size_t>(last_block) * mach_.B();
        for (std::size_t i = 0; i < io.count; ++i) {
          const std::size_t pos = lo + i;
          if (pos < runs_[run].begin || pos >= runs_[run].end) continue;
          s = Occ<T>{blockbuf[i], run, pos};
        }
      }
      const std::uint64_t next = last_block + 1;
      const bool more_blocks = next < run_end_block(run);
      if (!more_blocks) return;  // everything loaded: never active again
      const bool among_smallest =
          out.size() < budget_.out_batch || occ_less_(s, *out.rbegin());
      if (among_smallest) actives.push_back(Active{run, s, next});
    });
    if (actives.size() > budget_.m_eff)
      throw std::logic_error("merge: Lemma 3.1 violated (active runs > m_eff)");
    if (stats_ != nullptr) {
      ++stats_->rounds;
      stats_->max_active_runs =
          std::max(stats_->max_active_runs, actives.size());
    }

    // Phase C: classical m_eff-way merging from the active runs.  Both
    // kernels read the same blocks in the same order (asserted by the
    // invariance tests): max(OUT) only shrinks as smaller occurrences
    // arrive, so a run whose s_i ever falls out of OUT's range stays out —
    // dropping it eagerly (scan kernel) and checking only the current
    // minimum (loser tree) reject exactly the same reads, and when the
    // MINIMUM s_i is out of range every active run is, ending the phase.
    if (kernel_ == MergeKernel::kLoserTree) {
      // Host-side selection state only: the tree mirrors the <= m_eff
      // resident boundary elements actives_res already reserves, so the
      // simulated footprint is unchanged (see loser_tree.hpp).
      using Tree = LoserTree<Occ<T>, OccLess<T, Less>>;
      Tree tree(actives.size(), occ_less_);
      for (std::size_t i = 0; i < actives.size(); ++i)
        tree.set_key(i, actives[i].last_loaded);
      tree.rebuild();
      for (std::size_t j = tree.winner(); j != Tree::npos; j = tree.winner()) {
        Active& a = actives[j];
        if (out.size() == budget_.out_batch &&
            !occ_less_(a.last_loaded, *out.rbegin()))
          break;  // the smallest s_i is out of range, so every s_i is
        a.last_loaded = read_into(a.run, a.next_block, out, blockbuf);
        ++a.next_block;
        if (a.next_block >= run_end_block(a.run)) {
          tree.set_exhausted(j);
        } else {
          tree.set_key(j, a.last_loaded);
        }
        tree.update(j);
      }
    } else {
      while (!actives.empty()) {
        // Lazily drop runs whose last-loaded element fell out of OUT's range.
        std::erase_if(actives, [&](const Active& a) {
          return out.size() == budget_.out_batch &&
                 !occ_less_(a.last_loaded, *out.rbegin());
        });
        if (actives.empty()) break;
        auto j = std::min_element(actives.begin(), actives.end(),
                                  [&](const Active& a, const Active& b) {
                                    return occ_less_(a.last_loaded,
                                                     b.last_loaded);
                                  });
        j->last_loaded = read_into(j->run, j->next_block, out, blockbuf);
        ++j->next_block;
        if (j->next_block >= run_end_block(j->run)) actives.erase(j);
      }
    }

    // Phase D: output the batch, advance the watermark, and advance b[i]
    // past fully consumed blocks (their last element is in this batch).
    const std::size_t batch = out.size();
    const std::size_t B = mach_.B();
    const bool mark = mach_.tracing() && src_.has_atom_extractor();
    for (const Occ<T>& o : out) {
      // Lemma 4.3 use-sets: the read whose copy reached the output batch is
      // the one that consumes the atom from its block.
      if (mark && o.ticket.valid())
        mach_.trace()->mark_used(o.ticket, src_.atom_id(o.val));
      sink_.push(o.val);
      const bool block_last =
          (o.pos % B == B - 1) || (o.pos == runs_[o.run].end - 1);
      if (block_last) bptr.set(o.run, o.pos / B + 1);
    }
    watermark_ = *out.rbegin();
    return batch;
  }

  Machine& mach_;
  const ExtArray<T>& src_;
  std::vector<RunBounds> runs_;
  SortBudget budget_;
  OccLess<T, Less> occ_less_;
  CombineSink<T, std::function<bool(const T&, const T&)>, Combine> sink_;
  std::optional<Occ<T>> watermark_;
  MergeStats* stats_ = nullptr;
  MergeKernel kernel_ = MergeKernel::kLoserTree;
};

}  // namespace sort_detail

/// Merges sorted `runs` of `src` into dst[dst_begin, ...).  Each run must be
/// sorted under `less` and begin at a block-aligned offset; dst must be a
/// different array with room for the merged output.  With a Combine
/// callable, adjacent key-equal elements are folded; returns the number of
/// elements written (the total input length when not combining).
///
/// Cost (Theorem 3.2, for d <= omega * m runs totalling N elements):
/// O(omega(n + m)) reads and O(n + m) writes — for EITHER kernel; the
/// kernel choice moves host CPU time only (loser tree: ceil(log2 k)
/// comparisons per selection instead of the scan's O(k)), never a charged
/// I/O, which tests/test_loser_tree.cpp asserts exactly.
template <class T, class Less, class Combine = std::nullptr_t>
std::size_t merge_runs(const ExtArray<T>& src, std::span<const RunBounds> runs,
                       ExtArray<T>& dst, std::size_t dst_begin, Less less,
                       Combine combine = {}, MergeStats* stats = nullptr,
                       MergeKernel kernel = MergeKernel::kLoserTree) {
  sort_detail::MergeJob<T, Less, Combine> job(src, runs, dst, dst_begin, less,
                                              combine);
  job.set_stats(stats);
  job.set_kernel(kernel);
  return job.run();
}

}  // namespace aem
