// Loser-tree selection for k-way merging (classic external-sorting
// technique; cf. Knuth vol. 3 section 5.4.1 and the k-way merges of the
// external-memory sorting literature).
//
// A tournament tree over k contestants, padded to the next power of two.
// Internal node i holds the LOSER of the match played there; the overall
// winner sits above the root.  Selecting the minimum is O(1); replacing the
// winner's key (after consuming its element) replays exactly one
// leaf-to-root path: ceil(log2 k) comparisons, no sift-down branching and
// no per-level two-child probing like a binary heap.
//
// Exhausted contestants are SENTINELS: instead of requiring a +infinity key
// (impossible for a generic T), a per-leaf alive flag makes dead leaves
// lose every match.  Padding leaves start dead, so non-power-of-two k costs
// nothing per output element.
//
// Ties are broken by contestant index (lower wins), which makes selection
// order identical to a stable linear scan ("first strictly-smallest head")
// and therefore keeps merge output — and, in the AEM simulator, the exact
// sequence of charged block I/Os — byte-identical to the scan kernel.
// tests/test_loser_tree.cpp asserts that Q/Qr/Qw invariance.
//
// Host-side only: the tree holds copies of the <= k resident head elements
// that the merge's MemoryReservation already accounts for, plus O(k) index
// words (the constant-per-element auxiliary allowance of Section 3.1).  It
// changes which comparisons the HOST executes, never what the simulated
// machine reads or writes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace aem {

/// Which selection kernel a k-way merge uses.  kScanSelect is the
/// pre-loser-tree reference (O(k) per selection); it is kept callable so
/// tests and bench_m0_overhead can assert I/O invariance and measure the
/// host-time speedup against it.
enum class MergeKernel { kLoserTree, kScanSelect };

template <class Key, class Less>
class LoserTree {
 public:
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  explicit LoserTree(std::size_t k, Less less = {})
      : k_(k), pow2_(1), less_(less) {
    while (pow2_ < k_) pow2_ <<= 1;
    keys_.resize(pow2_);
    alive_.assign(pow2_, 0);
    losers_.assign(pow2_, 0);  // losers_[0] holds the overall winner
  }

  std::size_t size() const { return k_; }

  /// Stages contestant `i`'s current key (no tree update; call rebuild()
  /// once after staging all leaves, or update(i) after a single change).
  void set_key(std::size_t i, const Key& key) {
    keys_[i] = key;
    alive_[i] = 1;
  }

  /// Marks contestant `i` exhausted: it now loses every match.
  void set_exhausted(std::size_t i) { alive_[i] = 0; }

  /// Recomputes every match bottom-up.  O(k); used once at start-up (and
  /// after bulk restaging), not per element.
  void rebuild() {
    if (pow2_ == 1) {
      losers_[0] = 0;
      return;
    }
    std::vector<std::size_t> win(2 * pow2_);
    for (std::size_t i = 0; i < pow2_; ++i) win[pow2_ + i] = i;
    for (std::size_t node = pow2_ - 1; node >= 1; --node) {
      const std::size_t a = win[2 * node], b = win[2 * node + 1];
      const bool a_wins = beats(a, b);
      win[node] = a_wins ? a : b;
      losers_[node] = a_wins ? b : a;
    }
    losers_[0] = win[1];
  }

  /// Replays the winner's leaf-to-root path after its key changed (set_key)
  /// or it was exhausted (set_exhausted).  `i` must be the current winner.
  void update(std::size_t i) {
    std::size_t contender = i;
    for (std::size_t node = (pow2_ + i) >> 1; node >= 1; node >>= 1) {
      if (beats(losers_[node], contender)) {
        const std::size_t tmp = losers_[node];
        losers_[node] = contender;
        contender = tmp;
      }
    }
    losers_[0] = contender;
  }

  /// The contestant holding the smallest live key (ties: lowest index), or
  /// npos when every contestant is exhausted.
  std::size_t winner() const {
    const std::size_t w = losers_[0];
    return alive_[w] ? w : npos;
  }

  /// The winner's key; only meaningful while winner() != npos.
  const Key& winner_key() const { return keys_[losers_[0]]; }

 private:
  /// Does contestant a beat (rank strictly before) contestant b?
  /// Alive beats dead; between two alive, smaller key wins and ties go to
  /// the lower index; between two dead, lower index (arbitrary but total).
  bool beats(std::size_t a, std::size_t b) const {
    if (!alive_[a] || !alive_[b]) return alive_[a] || (!alive_[b] && a < b);
    if (less_(keys_[a], keys_[b])) return true;
    if (less_(keys_[b], keys_[a])) return false;
    return a < b;
  }

  std::size_t k_;
  std::size_t pow2_;
  Less less_;
  std::vector<Key> keys_;
  std::vector<std::uint8_t> alive_;
  std::vector<std::size_t> losers_;
};

}  // namespace aem
