// The omega-OBLIVIOUS baseline: Aggarwal & Vitter's classic m-way external
// mergesort, run unchanged on the asymmetric machine.
//
// It performs Theta(n log_m n) reads AND Theta(n log_m n) writes, so its AEM
// cost is (1 + omega) * n log_m n — asymptotically worse than Section 3's
// omega-aware mergesort by the factor
//
//   ((1 + omega)/omega) * log(omega m)/log(m)
//
// (bounds::predicted_oblivious_penalty).  Experiment E3 measures exactly
// this gap, which is the paper's motivation for omega-aware sorting.
#pragma once

#include <algorithm>
#include <cstddef>
#include <functional>
#include <optional>
#include <stdexcept>
#include <vector>

#include "core/ext_array.hpp"
#include "io/scanner.hpp"
#include "io/writer.hpp"
#include "sort/budget.hpp"
#include "sort/loser_tree.hpp"
#include "sort/mergesort.hpp"
#include "util/math.hpp"

namespace aem {

namespace sort_detail {

/// Classic k-way merge: one Scanner (one block) per run plus one Writer.
/// Requires (k + 1) * B + O(k) <= M, which em_merge_fanout guarantees.
///
/// Selection kernel (host CPU only — the element consumption order, and
/// therefore every charged block I/O, is identical for both):
///  * kLoserTree (default): ceil(log2 k) comparisons per output element
///    along one leaf-to-root path (sort/loser_tree.hpp);
///  * kScanSelect: the reference O(k) linear scan over run heads, kept for
///    the I/O-invariance tests and the bench_m0_overhead speedup section.
/// Both break ties by run index (runs are in input order), so the merge is
/// stable either way.
template <class T, class Less>
void em_merge_group(const ExtArray<T>& src, std::span<const RunBounds> runs,
                    ExtArray<T>& dst, std::size_t dst_begin, Less less,
                    MergeKernel kernel = MergeKernel::kLoserTree) {
  Machine& mach = src.machine();
  std::vector<Scanner<T>> heads;
  heads.reserve(runs.size());
  std::size_t total = 0;
  for (const RunBounds& r : runs) {
    heads.emplace_back(src, r.begin, r.end);
    total += r.length();
  }
  MemoryReservation head_state(mach.ledger(), 2 * runs.size());
  Writer<T> out(dst, dst_begin, dst_begin + total);

  if (kernel == MergeKernel::kLoserTree) {
    // Note on peek(): loading run i's first block is charged when leaf i is
    // staged — the same moment the scan kernel's first selection pass would
    // charge it, and every later refill happens right after the element
    // that exposes it is consumed in both kernels, so read order matches.
    LoserTree<T, Less> tree(heads.size(), less);
    for (std::size_t i = 0; i < heads.size(); ++i) {
      if (heads[i].done()) {
        tree.set_exhausted(i);
      } else {
        tree.set_key(i, heads[i].peek());
      }
    }
    tree.rebuild();
    for (std::size_t i = tree.winner(); i != LoserTree<T, Less>::npos;
         i = tree.winner()) {
      out.push(heads[i].next());
      if (heads[i].done()) {
        tree.set_exhausted(i);
      } else {
        tree.set_key(i, heads[i].peek());
      }
      tree.update(i);
    }
  } else {
    // Stable selection: ties broken by run index (runs are in input order).
    while (true) {
      std::optional<std::size_t> best;
      for (std::size_t i = 0; i < heads.size(); ++i) {
        if (heads[i].done()) continue;
        if (!best.has_value() || less(heads[i].peek(), heads[*best].peek()))
          best = i;
      }
      if (!best.has_value()) break;
      out.push(heads[*best].next());
    }
  }
  out.finish();
}

}  // namespace sort_detail

/// Merge fanout of the symmetric mergesort: as many runs as one block each
/// fits alongside the output block, capped at half of memory for headroom.
inline std::size_t em_merge_fanout(const Machine& mach) {
  const std::size_t k = mach.m() / 2;
  return k < 2 ? 2 : k;
}

/// Sorts `in` into `out` with the symmetric (omega-oblivious) EM mergesort:
/// in-memory run formation over chunks of ~M/2, then m/2-way merge passes.
/// Stable for distinct keys; ties broken by position (stable overall).
///
/// Stability is load-bearing for consumers, not a nicety: the KV store
/// (store/kv_store.hpp) sorts its record headers with this routine and
/// derives get()'s last-insert-wins semantics from duplicate keys staying
/// in input order.  Weakening the tie-break silently changes which version
/// of an upserted key a store serves.
template <class T, class Less = std::less<T>>
void em_merge_sort(const ExtArray<T>& in, ExtArray<T>& out, Less less = {}) {
  if (in.size() != out.size())
    throw std::invalid_argument("em_merge_sort: size mismatch");
  const std::size_t n = in.size();
  if (n == 0) return;

  Machine& mach = in.machine();
  const std::size_t B = mach.B();
  std::size_t run_len = (mach.M() / 2 / B) * B;
  if (run_len < B) run_len = B;
  const std::size_t fanout = em_merge_fanout(mach);

  auto runs = make_chunks(n, run_len);
  const unsigned levels = util::ilog_base_ceil(runs.size(), fanout);

  ExtArray<T> scratch(mach, n, "em_mergesort.scratch");
  ExtArray<T>* first = (levels % 2 == 1) ? &scratch : &out;
  ExtArray<T>* other = (levels % 2 == 1) ? &out : &scratch;

  {
    // Run formation: read a chunk, sort in memory, write it back out.
    auto phase = mach.phase("em_sort.runs");
    Buffer<T> chunk(mach, run_len);
    for (const RunBounds& r : runs) {
      std::size_t fill = 0;
      Scanner<T> scan(in, r.begin, r.end);
      while (!scan.done()) chunk[fill++] = scan.next();
      std::stable_sort(chunk.data(), chunk.data() + fill, less);
      Writer<T> w(*first, r.begin, r.end);
      for (std::size_t i = 0; i < fill; ++i) w.push(chunk[i]);
      w.finish();
    }
  }

  auto phase = mach.phase("em_sort.merge");
  ExtArray<T>* cur = first;
  ExtArray<T>* next = other;
  while (runs.size() > 1) {
    std::vector<RunBounds> merged;
    merged.reserve((runs.size() + fanout - 1) / fanout);
    for (std::size_t g = 0; g < runs.size(); g += fanout) {
      const std::size_t count = std::min(fanout, runs.size() - g);
      sort_detail::em_merge_group(
          *cur, std::span<const RunBounds>(runs).subspan(g, count), *next,
          runs[g].begin, less);
      merged.push_back(RunBounds{runs[g].begin, runs[g + count - 1].end});
    }
    runs = std::move(merged);
    std::swap(cur, next);
  }
  if (cur != &out)
    throw std::logic_error("em_merge_sort: parity bookkeeping error");
}

}  // namespace aem
