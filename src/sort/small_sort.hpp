// The base-case sort of Blelloch et al. [7, Lemma 4.2], as used by the
// paper's Section 3 recursion: sort N' <= omega*M elements with O(omega*n')
// reads and O(n') writes.
//
// Strategy: multi-pass selection.  Each round scans the whole input range,
// keeps the Mout smallest not-yet-output occurrences in internal memory
// (evicting larger ones as smaller ones arrive), then writes that batch to
// the output in sorted order and advances the consumption watermark.  With
// R' = ceil(N'/Mout) rounds this costs R' * n' <= (4*omega + 1) * n' reads
// and n' (+ R') writes — the Lemma 4.2 budget, since N' <= omega*M =
// 4*omega*Mout implies R' <= 4*omega.
//
// Internal memory: Mout staged occurrences + one scan block + one write
// block, within the SortBudget split (see budget.hpp).
#pragma once

#include <cstddef>
#include <optional>
#include <set>
#include <stdexcept>

#include "core/ext_array.hpp"
#include "io/scanner.hpp"
#include "sort/budget.hpp"
#include "sort/occ.hpp"
#include "sort/sink.hpp"

namespace aem {

/// Sorts src[begin, end) into dst starting at dst_begin.
///
/// With a Combine callable, adjacent key-equal elements (under `less`) are
/// folded into one; the return value is the number of elements written
/// (== end - begin when not combining).  The sort is stable.
///
/// Intended for ranges of at most SortBudget::base elements (the paper's
/// N' <= omega*M); larger ranges still sort correctly but the cost grows as
/// ceil(N'/Mout) passes over the input.
template <class T, class Less, class Combine = std::nullptr_t>
std::size_t small_sort(const ExtArray<T>& src, std::size_t begin,
                       std::size_t end, ExtArray<T>& dst,
                       std::size_t dst_begin, Less less, Combine combine = {}) {
  if (end < begin || end > src.size())
    throw std::invalid_argument("small_sort: bad range");
  const std::size_t total = end - begin;

  Machine& mach = src.machine();
  const SortBudget budget = SortBudget::from(mach);
  using Occ = sort_detail::Occ<T>;
  using OccLess = sort_detail::OccLess<T, Less>;
  const OccLess occ_less(less);
  auto key_eq = [occ_less](const T& a, const T& b) {
    return occ_less.equiv(a, b);
  };
  sort_detail::CombineSink<T, decltype(key_eq), Combine> sink(
      dst, dst_begin, dst_begin + total, key_eq, combine);

  std::optional<Occ> watermark;
  std::size_t consumed = 0;
  while (consumed < total) {
    // The staged batch: the Mout smallest unconsumed occurrences.
    MemoryReservation out_res(mach.ledger(), budget.small_batch);
    std::set<Occ, OccLess> out(occ_less);

    Scanner<T> scan(src, begin, end);
    while (!scan.done()) {
      const std::size_t pos = scan.position();
      const T val = scan.next();
      Occ o{val, /*run=*/0, pos, scan.last_ticket()};
      if (watermark.has_value() && !occ_less(*watermark, o)) continue;
      if (out.size() < budget.small_batch) {
        out.insert(o);
      } else {
        auto last = std::prev(out.end());
        if (occ_less(o, *last)) {
          out.erase(last);
          out.insert(o);
        }
      }
    }

    if (out.empty())
      throw std::logic_error("small_sort: no progress (corrupt watermark)");
    const bool mark = mach.tracing() && src.has_atom_extractor();
    for (const Occ& o : out) {
      if (mark && o.ticket.valid())
        mach.trace()->mark_used(o.ticket, src.atom_id(o.val));
      sink.push(o.val);
    }
    watermark = *out.rbegin();
    consumed += out.size();
  }
  return sink.finish();
}

}  // namespace aem
