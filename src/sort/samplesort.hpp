// AEM sample sort, following Blelloch et al. [7] (the paper's second
// comparator), with a deterministic splitter rule for reproducibility.
//
// Each level classifies the input against d_s - 1 splitters and distributes
// it into d_s buckets.  Write-efficiency comes from distributing in
// ceil(d_s / m_eff) sub-passes: each sub-pass re-scans the input (reads are
// cheap) but keeps only m_eff one-block bucket buffers resident, so every
// element is WRITTEN exactly once per level.  With d_s ~ omega * m_eff this
// gives O(omega n) reads + O(n) writes per level and
// O(omega n log_{omega m} n) total — the [7] bound.
//
// Honest deviation (documented in DESIGN.md): the splitter set must fit in
// internal memory while classifying, so the fanout is capped at Mout/4.
// For omega <= B the cap is never hit and the [7] bound holds exactly; for
// omega >> B sample sort degrades gracefully (fanout M instead of omega*m)
// while the paper's Section 3 mergesort — which needs no splitters — keeps
// the full bound.  Experiment E3 shows precisely this separation.
#pragma once

#include <algorithm>
#include <cstddef>
#include <functional>
#include <stdexcept>
#include <vector>

#include "core/ext_array.hpp"
#include "io/cursor.hpp"
#include "io/scanner.hpp"
#include "io/writer.hpp"
#include "sort/budget.hpp"
#include "sort/small_sort.hpp"

namespace aem {

namespace sort_detail {

template <class T, class Less>
class SampleSortJob {
 public:
  SampleSortJob(const ExtArray<T>& in, ExtArray<T>& out, Less less)
      : mach_(in.machine()),
        in_(in),
        out_(out),
        less_(less),
        budget_(SortBudget::from(mach_)) {
    // Splitters and bucket counters must fit in a quarter of memory.
    fanout_ = std::min<std::size_t>(budget_.fanout,
                                    std::max<std::size_t>(2, budget_.out_batch / 4));
  }

  void run() {
    const std::size_t n = in_.size();
    if (n == 0) return;
    if (n <= budget_.base) {
      small_sort(in_, 0, n, out_, 0, less_);
      return;
    }
    ExtArray<T> a(mach_, n, "samplesort.a");
    ExtArray<T> b(mach_, n, "samplesort.b");
    auto buckets = distribute(in_, RunBounds{0, n}, a);
    for (const RunBounds& bkt : buckets) recurse(a, b, bkt, /*depth=*/1);
  }

 private:
  static constexpr unsigned kMaxDepth = 64;

  /// Sorts cur[range] into out_[range]; `other` is the sibling scratch.
  void recurse(ExtArray<T>& cur, ExtArray<T>& other, RunBounds range,
               unsigned depth) {
    if (range.length() == 0) return;
    if (range.length() <= budget_.base || depth >= kMaxDepth) {
      // Depth guard: pathological splitter degeneration (e.g. all-equal
      // keys) falls back to the multi-pass base sort, which is always
      // correct (just costlier for oversized ranges).
      small_sort(cur, range.begin, range.end, out_, range.begin, less_);
      return;
    }
    auto buckets = distribute(cur, range, other);
    for (const RunBounds& bkt : buckets) recurse(other, cur, bkt, depth + 1);
  }

  /// Splits src[range] into buckets written contiguously to dst[range].
  /// Returns the bucket bounds.  Guarantees >= 2 buckets, each strictly
  /// smaller than the range when the splitters are non-degenerate.
  std::vector<RunBounds> distribute(const ExtArray<T>& src, RunBounds range,
                                    ExtArray<T>& dst) {
    const std::size_t len = range.length();

    // 1. Sample ~4 evenly spaced elements per splitter and sort in memory.
    const std::size_t want = std::min(len, 4 * fanout_);
    std::vector<T> sample;
    MemoryReservation sample_res(mach_.ledger(), want);
    {
      sample.reserve(want);
      BlockCursor<T> cursor(src);
      for (std::size_t i = 0; i < want; ++i) {
        const std::size_t pos =
            range.begin + (i * len + len / 2) / want;  // even spread
        sample.push_back(cursor.at(std::min(pos, range.end - 1)));
      }
      std::sort(sample.begin(), sample.end(), less_);
    }

    // 2. Distinct splitters (duplicate-heavy inputs collapse them).
    std::vector<T> splitters;
    MemoryReservation split_res(mach_.ledger(), fanout_);
    for (std::size_t i = 1; i < fanout_ && i < sample.size(); ++i) {
      const T& cand = sample[i * sample.size() / fanout_];
      if (splitters.empty() || less_(splitters.back(), cand))
        splitters.push_back(cand);
    }
    sample.clear();
    sample_res.reset();
    if (splitters.empty()) {
      // Fully degenerate sample: copy through (the recursion's depth guard
      // will hand the range to small_sort).
      copy_range(src, range, dst);
      return {range};
    }
    const std::size_t buckets = splitters.size() + 1;
    auto bucket_of = [&](const T& v) {
      return static_cast<std::size_t>(
          std::upper_bound(splitters.begin(), splitters.end(), v, less_) -
          splitters.begin());
    };

    // 3. Counting pass: one scan, bucket sizes in memory.
    std::vector<std::size_t> count(buckets, 0);
    MemoryReservation count_res(mach_.ledger(), buckets);
    {
      Scanner<T> scan(src, range.begin, range.end);
      while (!scan.done()) ++count[bucket_of(scan.next())];
    }
    std::vector<RunBounds> bounds(buckets);
    std::size_t offset = range.begin;
    for (std::size_t i = 0; i < buckets; ++i) {
      bounds[i] = RunBounds{offset, offset + count[i]};
      offset += count[i];
    }

    // 4. Distribution in sub-passes of m_eff buckets each: every element is
    // written exactly once; the input is re-scanned once per sub-pass.
    const std::size_t group = std::max<std::size_t>(1, budget_.m_eff);
    for (std::size_t lo = 0; lo < buckets; lo += group) {
      const std::size_t hi = std::min(buckets, lo + group);
      std::vector<Writer<T>> writers;
      writers.reserve(hi - lo);
      for (std::size_t i = lo; i < hi; ++i)
        writers.emplace_back(dst, bounds[i].begin, bounds[i].end);
      Scanner<T> scan(src, range.begin, range.end);
      while (!scan.done()) {
        const T v = scan.next();
        const std::size_t bkt = bucket_of(v);
        if (bkt >= lo && bkt < hi) writers[bkt - lo].push(v);
      }
      for (auto& w : writers) w.finish();
    }
    return bounds;
  }

  void copy_range(const ExtArray<T>& src, RunBounds range, ExtArray<T>& dst) {
    Scanner<T> scan(src, range.begin, range.end);
    Writer<T> w(dst, range.begin, range.end);
    while (!scan.done()) w.push(scan.next());
    w.finish();
  }

  Machine& mach_;
  const ExtArray<T>& in_;
  ExtArray<T>& out_;
  Less less_;
  SortBudget budget_;
  std::size_t fanout_;
};

}  // namespace sort_detail

/// Sorts `in` into `out` with AEM sample sort (see header comment for the
/// cost discussion).  NOT stable (bucket classification ignores provenance).
template <class T, class Less = std::less<T>>
void aem_sample_sort(const ExtArray<T>& in, ExtArray<T>& out, Less less = {}) {
  if (in.size() != out.size())
    throw std::invalid_argument("aem_sample_sort: size mismatch");
  sort_detail::SampleSortJob<T, Less> job(in, out, less);
  job.run();
}

}  // namespace aem
