// The paper's Section 3 AEM multi-way mergesort:
//
//   * split the input into chunks of base = omega*Mout elements and sort
//     each with the Lemma 4.2 base case (small_sort);
//   * repeatedly merge groups of d = omega*m_eff runs (merge_runs) until one
//     run remains.
//
// Cost: the recurrence of Section 3 — O(omega * n * log_{omega m} n) total,
// split as O(omega n log n / log(omega m)) reads and O(n log n / log(omega m))
// writes.  No assumption relating omega and B (the paper's improvement over
// the earlier mergesort of Blelloch et al., which required omega < B).
//
// merge_level / merge_all_runs are also the engine of the sorting-based
// SpMxV algorithm (Section 5), which starts from pre-sorted column runs and
// folds key-equal partial sums via a Combine callable.
#pragma once

#include <cstddef>
#include <span>
#include <stdexcept>
#include <utility>
#include <vector>

#include "core/ext_array.hpp"
#include "sort/budget.hpp"
#include "sort/merge.hpp"
#include "sort/small_sort.hpp"
#include "util/math.hpp"

namespace aem {

/// Merges one level: groups `runs` into batches of at most `fanout` and
/// merges each batch from src into dst.  Each output run starts at the
/// block-aligned offset of its batch's first input run (safe because
/// combining only shrinks runs).  Returns the new run bounds.
template <class T, class Less, class Combine = std::nullptr_t>
std::vector<RunBounds> merge_level(const ExtArray<T>& src,
                                   std::span<const RunBounds> runs,
                                   ExtArray<T>& dst, std::size_t fanout,
                                   Less less, Combine combine = {}) {
  if (fanout < 2) throw std::invalid_argument("merge_level: fanout < 2");
  std::vector<RunBounds> next;
  next.reserve((runs.size() + fanout - 1) / fanout);
  for (std::size_t g = 0; g < runs.size(); g += fanout) {
    const std::size_t count = std::min(fanout, runs.size() - g);
    const std::size_t out_begin = runs[g].begin;
    const std::size_t written = merge_runs(src, runs.subspan(g, count), dst,
                                           out_begin, less, combine);
    next.push_back(RunBounds{out_begin, out_begin + written});
  }
  return next;
}

/// Bottom-up merging of pre-sorted `runs` (living in *start) until a single
/// run remains, ping-ponging between bufs a and b.  Both buffers must be at
/// least as large as the largest source offset used; `start` must be one of
/// {a, b} or a third array (used for the first level only).
/// Returns {final array, final bounds}.
template <class T, class Less, class Combine = std::nullptr_t>
std::pair<const ExtArray<T>*, RunBounds> merge_all_runs(
    const ExtArray<T>* start, std::vector<RunBounds> runs, ExtArray<T>* a,
    ExtArray<T>* b, Less less, Combine combine = {}) {
  if (runs.empty()) return {start, RunBounds{0, 0}};
  const SortBudget budget = SortBudget::from(start->machine());
  const ExtArray<T>* cur = start;
  ExtArray<T>* next = (cur == a) ? b : a;
  while (runs.size() > 1) {
    runs = merge_level(*cur, std::span<const RunBounds>(runs), *next,
                       budget.fanout, less, combine);
    cur = next;
    next = (cur == a) ? b : a;
  }
  return {cur, runs.front()};
}

/// Chunks [0, n) into block-aligned runs of `chunk` elements.
inline std::vector<RunBounds> make_chunks(std::size_t n, std::size_t chunk) {
  std::vector<RunBounds> runs;
  for (std::size_t begin = 0; begin < n; begin += chunk)
    runs.push_back(RunBounds{begin, std::min(n, begin + chunk)});
  return runs;
}

/// Sorts `in` into `out` (same size, distinct arrays) with the Section 3
/// AEM mergesort.  Stable.  Allocates one scratch array of the same size.
template <class T, class Less = std::less<T>>
void aem_merge_sort(const ExtArray<T>& in, ExtArray<T>& out, Less less = {}) {
  if (in.size() != out.size())
    throw std::invalid_argument("aem_merge_sort: size mismatch");
  const std::size_t n = in.size();
  if (n == 0) return;

  Machine& mach = in.machine();
  const SortBudget budget = SortBudget::from(mach);

  // Propagate atom tracking (Lemma 4.3 instrumentation) to the outputs so
  // traced runs record which atoms every written block holds.
  if (in.has_atom_extractor() && !out.has_atom_extractor())
    out.set_atom_extractor(in.atom_extractor());

  // Base case: the whole input fits one small-sort chunk.
  if (n <= budget.base) {
    small_sort(in, 0, n, out, 0, less);
    return;
  }

  ExtArray<T> scratch(mach, n, "mergesort.scratch");
  if (in.has_atom_extractor())
    scratch.set_atom_extractor(in.atom_extractor());
  auto runs = make_chunks(n, budget.base);
  const unsigned levels = util::ilog_base_ceil(runs.size(), budget.fanout);

  // Choose the base-pass target so the final level lands in `out`:
  // levels alternate first -> other -> first -> ...
  ExtArray<T>* first = (levels % 2 == 1) ? &scratch : &out;
  ExtArray<T>* other = (levels % 2 == 1) ? &out : &scratch;

  {
    auto base_phase = mach.phase("sort.base");
    for (const RunBounds& r : runs)
      small_sort(in, r.begin, r.end, *first, r.begin, less);
  }

  auto merge_phase = mach.phase("sort.merge");
  ExtArray<T>* cur = first;
  ExtArray<T>* next = other;
  while (runs.size() > 1) {
    runs = merge_level(*cur, std::span<const RunBounds>(runs), *next,
                       budget.fanout, less);
    std::swap(cur, next);
  }
  if (cur != &out)
    throw std::logic_error("aem_merge_sort: parity bookkeeping error");
}

}  // namespace aem
