// Output sink shared by small_sort and merge_runs: a sequential Writer with
// an optional combiner that folds adjacent key-equal elements into one
// (the semiring accumulation the SpMxV algorithms need, Section 5).
//
// The combiner holds back one pending element so that equal keys meeting at
// a round boundary still combine; finish() flushes it.
#pragma once

#include <cstddef>
#include <optional>
#include <type_traits>

#include "core/ext_array.hpp"
#include "io/writer.hpp"

namespace aem::sort_detail {

/// Combine = std::nullptr_t disables combining (plain pass-through).
/// Otherwise Combine is callable as combine(T& accumulator, const T& next)
/// and KeyEq as eq(a, b) for key equivalence.
template <class T, class KeyEq, class Combine>
class CombineSink {
 public:
  static constexpr bool kCombining = !std::is_same_v<Combine, std::nullptr_t>;

  CombineSink(ExtArray<T>& dst, std::size_t begin, std::size_t end,
              KeyEq eq, Combine combine)
      : writer_(dst, begin, end), eq_(eq), combine_(combine) {}

  void push(const T& v) {
    if constexpr (kCombining) {
      if (!pending_.has_value()) {
        pending_ = v;
      } else if (eq_(*pending_, v)) {
        combine_(*pending_, v);
      } else {
        writer_.push(*pending_);
        ++written_;
        pending_ = v;
      }
    } else {
      writer_.push(v);
      ++written_;
    }
  }

  /// Flushes the pending element and the final partial block; returns the
  /// number of elements written.
  std::size_t finish() {
    if constexpr (kCombining) {
      if (pending_.has_value()) {
        writer_.push(*pending_);
        ++written_;
        pending_.reset();
      }
    }
    writer_.finish();
    return written_;
  }

  std::size_t written() const { return written_; }

 private:
  Writer<T> writer_;
  KeyEq eq_;
  Combine combine_;
  std::optional<T> pending_;
  std::size_t written_ = 0;
};

}  // namespace aem::sort_detail
