#include "harness/parallel_sweep.hpp"

#include <atomic>
#include <cassert>
#include <exception>
#include <thread>
#include <unordered_map>
#include <utility>

#include "core/machine.hpp"

namespace aem::harness {

namespace {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace

std::uint64_t derive_seed(std::uint64_t base_seed, std::uint64_t index) {
  // The base seed goes through a full SplitMix64 avalanche BEFORE the index
  // is folded in.  A linear fold (`base ^ index * K`) admits structural
  // collisions under two's-complement wraparound — for odd K,
  //   (-n) ^ (n*K) == n ^ ((-n)*K)   whenever n*K is odd,
  // so e.g. derive_seed(-1, 1) == derive_seed(1, -1), which is exactly the
  // swapped-argument family seed_streams_independent() audits (a --seed near
  // 0 wraps into that range).  Mixing the base first destroys every such
  // XOR-linear identity; a second round then separates adjacent indices.
  // util::Rng re-expands the result through its own SplitMix64 seeding, so
  // even residual collisions across sweeps cannot correlate beyond the
  // first word.
  std::uint64_t state = base_seed;
  state = splitmix64(state) ^ index;
  return splitmix64(state);
}

bool seed_streams_independent(std::uint64_t base_seed, std::size_t points,
                              std::uint64_t base_radius) {
  // Map each derived seed back to the arguments that produced it; a repeat
  // from DIFFERENT arguments is a collision.  (The same (base, index) pair
  // reached twice — e.g. via the swapped family when base == index — is of
  // course the same stream, not a collision.)
  using Args = std::pair<std::uint64_t, std::uint64_t>;
  std::unordered_map<std::uint64_t, Args> seen;
  seen.reserve(points * (2 * static_cast<std::size_t>(base_radius) + 1) * 2);
  auto probe = [&](std::uint64_t base, std::uint64_t index) {
    const std::uint64_t seed = derive_seed(base, index);
    auto [it, inserted] = seen.emplace(seed, Args{base, index});
    return inserted || it->second == Args{base, index};
  };
  for (std::uint64_t off = 0; off <= 2 * base_radius; ++off) {
    const std::uint64_t base = base_seed - base_radius + off;  // wraps; fine
    for (std::uint64_t i = 0; i < points; ++i) {
      if (!probe(base, i)) return false;
      if (!probe(i, base)) return false;  // the swapped-argument family
    }
  }
  return true;
}

std::size_t resolve_jobs(std::size_t requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

void PointContext::metrics(const Machine& mach, std::string label) {
  out_->snapshots.push_back(snapshot_metrics(mach, std::move(label)));
}

std::vector<PointResult> run_sweep(
    std::size_t points, const SweepConfig& cfg,
    const std::function<void(PointContext&)>& fn) {
  std::vector<PointResult> results(points);
  if (points == 0) return results;

  // Debug builds audit the exact seed family this grid will draw from:
  // per-point streams must be pairwise independent, also against adjacent
  // bases and swapped (base, index) pairs (see seed_streams_independent).
  assert(seed_streams_independent(cfg.base_seed, points) &&
         "derive_seed collision inside the sweep's seed family");

  // One slot per point for results and failures: workers touch only their
  // claimed indices, so no cross-thread synchronization is needed beyond
  // the claim counter and the joins.
  std::vector<std::exception_ptr> errors(points);

  auto run_point = [&](std::size_t i) {
    PointContext ctx(i, derive_seed(cfg.base_seed, i), results[i]);
    try {
      fn(ctx);
    } catch (...) {
      errors[i] = std::current_exception();
    }
  };

  std::size_t workers = resolve_jobs(cfg.jobs);
  if (workers > points) workers = points;

  if (workers <= 1) {
    // Reference serial execution: same claiming order, no pool.
    for (std::size_t i = 0; i < points; ++i) run_point(i);
  } else {
    std::atomic<std::size_t> next{0};
    auto drain = [&] {
      for (std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
           i < points; i = next.fetch_add(1, std::memory_order_relaxed))
        run_point(i);
    };
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t t = 0; t < workers; ++t) pool.emplace_back(drain);
    for (std::thread& t : pool) t.join();
  }

  // Deterministic failure: the lowest-indexed error wins regardless of
  // which worker hit it first.
  for (std::size_t i = 0; i < points; ++i)
    if (errors[i]) std::rethrow_exception(errors[i]);
  return results;
}

}  // namespace aem::harness
