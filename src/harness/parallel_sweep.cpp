#include "harness/parallel_sweep.hpp"

#include <atomic>
#include <exception>
#include <thread>
#include <utility>

#include "core/machine.hpp"

namespace aem::harness {

namespace {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace

std::uint64_t derive_seed(std::uint64_t base_seed, std::uint64_t index) {
  // Two rounds over a state that folds in both words: the first round mixes
  // the base seed, the second separates adjacent indices.  util::Rng then
  // re-expands the result through its own SplitMix64 seeding, so even
  // seed collisions across sweeps cannot correlate beyond the first word.
  std::uint64_t state = base_seed ^ (index * 0xBF58476D1CE4E5B9ull);
  (void)splitmix64(state);
  return splitmix64(state);
}

std::size_t resolve_jobs(std::size_t requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

void PointContext::metrics(const Machine& mach, std::string label) {
  out_->snapshots.push_back(snapshot_metrics(mach, std::move(label)));
}

std::vector<PointResult> run_sweep(
    std::size_t points, const SweepConfig& cfg,
    const std::function<void(PointContext&)>& fn) {
  std::vector<PointResult> results(points);
  if (points == 0) return results;

  // One slot per point for results and failures: workers touch only their
  // claimed indices, so no cross-thread synchronization is needed beyond
  // the claim counter and the joins.
  std::vector<std::exception_ptr> errors(points);

  auto run_point = [&](std::size_t i) {
    PointContext ctx(i, derive_seed(cfg.base_seed, i), results[i]);
    try {
      fn(ctx);
    } catch (...) {
      errors[i] = std::current_exception();
    }
  };

  std::size_t workers = resolve_jobs(cfg.jobs);
  if (workers > points) workers = points;

  if (workers <= 1) {
    // Reference serial execution: same claiming order, no pool.
    for (std::size_t i = 0; i < points; ++i) run_point(i);
  } else {
    std::atomic<std::size_t> next{0};
    auto drain = [&] {
      for (std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
           i < points; i = next.fetch_add(1, std::memory_order_relaxed))
        run_point(i);
    };
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t t = 0; t < workers; ++t) pool.emplace_back(drain);
    for (std::thread& t : pool) t.join();
  }

  // Deterministic failure: the lowest-indexed error wins regardless of
  // which worker hit it first.
  for (std::size_t i = 0; i < points; ++i)
    if (errors[i]) std::rethrow_exception(errors[i]);
  return results;
}

}  // namespace aem::harness
