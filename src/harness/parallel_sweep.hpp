// Deterministic parallel sweep execution for the experiment binaries.
//
// Every experiment walks a (policy x omega x M x B x N) grid where each
// point is an independent, deterministic `aem::Machine` simulation.  The
// harness runs those points on a worker pool while keeping every observable
// output BYTE-IDENTICAL to the serial run:
//
//  * each point gets its own util::Rng, seeded from the sweep's base seed
//    and the point's index (derive_seed) — never from a shared generator,
//    so results cannot depend on execution order;
//  * workers never touch shared sinks; each point captures its table rows
//    and metrics snapshots into a slot indexed by point, and the caller
//    replays the slots in index order after the pool drains;
//  * threads parallelize ACROSS simulated machines, never within one (see
//    docs/MODEL.md section 12), so Q accounting is untouched.
//
// The contract every bench relies on: for any grid and any fn, the
// returned vector of PointResults is identical for every jobs value,
// including jobs = 1.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/metrics.hpp"
#include "util/rng.hpp"

namespace aem::harness {

/// SplitMix64-derived seed for sweep point `index` under `base_seed`.
/// Mixes both words through two SplitMix64 rounds so adjacent indices give
/// statistically unrelated xoshiro streams.  Stable across platforms and
/// documented here because reseeding is part of each bench's output
/// contract: results depend on (base seed, point index) only, never on
/// iteration order.
std::uint64_t derive_seed(std::uint64_t base_seed, std::uint64_t index);

/// Collision audit for the per-point seed streams.  Returns true iff
/// derive_seed is injective over every (base, index) pair with base within
/// `base_radius` of `base_seed` and index < points — INCLUDING the
/// swapped-argument pairs derive_seed(index, base), which belong to other
/// sweeps whose base seed happens to equal this sweep's point index.  A
/// collision anywhere in that family would correlate two "independent"
/// point RNG streams.  run_sweep asserts this in debug builds for the grid
/// it is about to run; tests/test_harness.cpp sweeps the bases the benches
/// actually use.
bool seed_streams_independent(std::uint64_t base_seed, std::size_t points,
                              std::uint64_t base_radius = 1);

/// Resolves a requested worker count: 0 means "one per hardware thread"
/// (at least 1); anything else is taken literally.
std::size_t resolve_jobs(std::size_t requested);

struct SweepConfig {
  std::size_t jobs = 1;        ///< worker threads; 0 = hardware concurrency
  std::uint64_t base_seed = 0; ///< per-point seeds derive from this
};

/// Everything one sweep point emitted, captured in its slot.  Plain data;
/// the caller replays rows/snapshots in point order.
struct PointResult {
  std::vector<std::vector<std::string>> rows;
  std::vector<MetricsSnapshot> snapshots;
};

/// Handed to the point closure: the point's identity, its private RNG, and
/// deferred emission into the point's slot.  NOT thread-safe across points
/// (each point owns its context) — which is the point.
class PointContext {
 public:
  PointContext(std::size_t index, std::uint64_t seed, PointResult& out)
      : index_(index), seed_(seed), rng_(seed), out_(&out) {}

  std::size_t index() const { return index_; }
  std::uint64_t seed() const { return seed_; }

  /// The point's private generator (seeded with derive_seed(base, index)).
  util::Rng& rng() { return rng_; }

  /// Captures one table row; replayed into the bound table in point order.
  void row(std::vector<std::string> cells) {
    out_->rows.push_back(std::move(cells));
  }

  /// Snapshots `mach` now; the caller serializes snapshots in point order.
  void metrics(const Machine& mach, std::string label);

  /// Captures a snapshot the point built (or amended — e.g. attached a
  /// `store` section) itself; serialized in point order like metrics().
  void snapshot(MetricsSnapshot s) { out_->snapshots.push_back(std::move(s)); }

 private:
  std::size_t index_;
  std::uint64_t seed_;
  util::Rng rng_;
  PointResult* out_;
};

/// Runs fn over points [0, points) on min(jobs, points) workers and returns
/// the per-point results, indexed by point.  Exceptions thrown by fn are
/// captured and the lowest-indexed one is rethrown here after all workers
/// drain, so failures are deterministic too.  jobs == 1 runs inline on the
/// calling thread (no pool), which is the reference serial execution.
std::vector<PointResult> run_sweep(
    std::size_t points, const SweepConfig& cfg,
    const std::function<void(PointContext&)>& fn);

}  // namespace aem::harness
