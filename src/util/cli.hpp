// Minimal command-line flag parsing for the bench and example binaries.
//
// Supports "--name=value" and "--name value" forms plus boolean switches.
// Unknown flags are an error, so typos in sweep scripts fail loudly.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace aem::util {

/// Strict base-10 unsigned parser used for every integer flag and the
/// AEM_JOBS environment variable: the whole string must be plain decimal
/// digits and the value must fit in 64 bits.  Rejects what std::stoull
/// quietly accepts — leading whitespace, '+'/'-' signs (a negative count
/// would wrap to a huge unsigned), hex, and trailing garbage ("123abc").
/// Returns nullopt instead of throwing so callers own the error message.
std::optional<std::uint64_t> parse_u64(std::string_view s);

class Cli {
 public:
  /// Parses argv; throws std::invalid_argument on malformed input.
  Cli(int argc, char** argv);

  /// Value lookups with defaults.  Throw std::invalid_argument if a flag is
  /// present but not parseable at the requested type.
  std::uint64_t u64(const std::string& name, std::uint64_t def) const;
  double f64(const std::string& name, double def) const;
  std::string str(const std::string& name, const std::string& def) const;
  bool flag(const std::string& name) const;

  /// Comma-separated list of integers, e.g. --omega=1,4,16.
  std::vector<std::uint64_t> u64_list(const std::string& name,
                                      std::vector<std::uint64_t> def) const;

  bool has(const std::string& name) const;
  const std::string& program() const { return program_; }

  /// Worker-thread count for sweep parallelism (see harness/parallel_sweep):
  /// `--jobs=N` if given, else the AEM_JOBS environment variable, else 1.
  /// 0 means "one worker per hardware thread".  Parallelism never changes
  /// results (MODEL.md section 12), so 1 is always a safe default.
  /// A malformed value (in either source) throws std::invalid_argument with
  /// a one-line actionable message; bench mains catch it and exit nonzero.
  std::size_t jobs() const;

 private:
  std::string program_;
  std::map<std::string, std::string> values_;
};

}  // namespace aem::util
