#include "util/cli.hpp"

#include <charconv>
#include <cstdlib>
#include <stdexcept>
#include <system_error>

namespace aem::util {

namespace {

bool starts_with(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() && s.compare(0, prefix.size(), prefix) == 0;
}

}  // namespace

std::optional<std::uint64_t> parse_u64(std::string_view s) {
  if (s.empty()) return std::nullopt;
  // from_chars with an explicit base 10 never skips whitespace and never
  // accepts a sign or a 0x prefix; requiring full consumption rejects
  // trailing garbage, and ec reports overflow past 2^64-1.
  std::uint64_t value = 0;
  const char* first = s.data();
  const char* last = s.data() + s.size();
  const auto [ptr, ec] = std::from_chars(first, last, value, 10);
  if (ec != std::errc() || ptr != last) return std::nullopt;
  return value;
}

Cli::Cli(int argc, char** argv) {
  program_ = argc > 0 ? argv[0] : "";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (!starts_with(arg, "--")) {
      throw std::invalid_argument("unexpected positional argument: " + arg);
    }
    arg = arg.substr(2);
    auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && !starts_with(argv[i + 1], "--")) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "true";  // boolean switch
    }
  }
}

bool Cli::has(const std::string& name) const { return values_.count(name) > 0; }

std::uint64_t Cli::u64(const std::string& name, std::uint64_t def) const {
  auto it = values_.find(name);
  if (it == values_.end()) return def;
  if (auto v = parse_u64(it->second)) return *v;
  throw std::invalid_argument("flag --" + name +
                              " expects a non-negative base-10 integer < 2^64"
                              ", got '" +
                              it->second + "'");
}

double Cli::f64(const std::string& name, double def) const {
  auto it = values_.find(name);
  if (it == values_.end()) return def;
  try {
    return std::stod(it->second);
  } catch (const std::exception&) {
    throw std::invalid_argument("flag --" + name + " expects a number, got '" +
                                it->second + "'");
  }
}

std::string Cli::str(const std::string& name, const std::string& def) const {
  auto it = values_.find(name);
  return it == values_.end() ? def : it->second;
}

bool Cli::flag(const std::string& name) const {
  auto it = values_.find(name);
  if (it == values_.end()) return false;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

std::size_t Cli::jobs() const {
  if (has("jobs")) return static_cast<std::size_t>(u64("jobs", 1));
  if (const char* env = std::getenv("AEM_JOBS"); env != nullptr && *env != '\0') {
    if (auto v = parse_u64(env)) return static_cast<std::size_t>(*v);
    throw std::invalid_argument(
        std::string("AEM_JOBS expects a non-negative base-10 integer "
                    "(0 = one worker per hardware thread), got '") +
        env + "' — unset it or export AEM_JOBS=<count>");
  }
  return 1;
}

std::vector<std::uint64_t> Cli::u64_list(
    const std::string& name, std::vector<std::uint64_t> def) const {
  auto it = values_.find(name);
  if (it == values_.end()) return def;
  std::vector<std::uint64_t> out;
  const std::string& s = it->second;
  std::size_t pos = 0;
  while (pos < s.size()) {
    auto comma = s.find(',', pos);
    if (comma == std::string::npos) comma = s.size();
    auto v = parse_u64(std::string_view(s).substr(pos, comma - pos));
    if (!v) {
      throw std::invalid_argument(
          "flag --" + name +
          " expects comma-separated non-negative base-10 integers, got '" + s +
          "'");
    }
    out.push_back(*v);
    pos = comma + 1;
  }
  if (out.empty()) {
    throw std::invalid_argument("flag --" + name + " expects at least one value");
  }
  return out;
}

}  // namespace aem::util
