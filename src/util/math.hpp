// Small integer-math helpers shared across aemlib.
//
// All functions are constexpr-friendly and defined for the value ranges the
// simulator uses (element counts and block counts that fit in 64 bits).
#pragma once

#include <cstdint>
#include <cstddef>
#include <stdexcept>

namespace aem::util {

/// Ceiling division for non-negative integers: ceil(a / b).  b must be > 0.
/// Overflow-safe (no a + b intermediate).
constexpr std::uint64_t ceil_div(std::uint64_t a, std::uint64_t b) {
  return a == 0 ? 0 : (a - 1) / b + 1;
}

/// Round `a` up to the next multiple of `b`.  b must be > 0.  Throws
/// std::overflow_error when the next multiple exceeds UINT64_MAX — the
/// naive ceil_div(a, b) * b would silently wrap there, and a wrapped size
/// or offset is far worse than a loud failure.  (In a constant expression
/// the throw is a compile error, which is exactly right.)
constexpr std::uint64_t round_up(std::uint64_t a, std::uint64_t b) {
  const std::uint64_t q = ceil_div(a, b);
  if (q > UINT64_MAX / b)
    throw std::overflow_error("round_up: next multiple overflows uint64");
  return q * b;
}

/// Floor of log2(x).  x must be > 0.
constexpr unsigned ilog2(std::uint64_t x) {
  unsigned r = 0;
  while (x >>= 1) ++r;
  return r;
}

/// Ceiling of log2(x).  x must be > 0.
constexpr unsigned ilog2_ceil(std::uint64_t x) {
  return (x <= 1) ? 0 : ilog2(x - 1) + 1;
}

/// True if x is a power of two (x > 0).
constexpr bool is_pow2(std::uint64_t x) { return x != 0 && (x & (x - 1)) == 0; }

/// Saturating multiply: a * b, clamped to UINT64_MAX instead of wrapping.
/// Omega-scaled parameters (fanout = omega * m_eff, base = omega * M/2) are
/// products of two values the caller controls independently, so the product
/// can exceed 64 bits even when each factor is reasonable; a wrapped fanout
/// of 0 or 1 would silently break every d >= 2 precondition downstream.
constexpr std::uint64_t mul_sat(std::uint64_t a, std::uint64_t b) {
  if (a != 0 && b > UINT64_MAX / a) return UINT64_MAX;
  return a * b;
}

/// Integer power: base^exp, saturating at uint64 max.
constexpr std::uint64_t ipow_sat(std::uint64_t base, unsigned exp) {
  std::uint64_t r = 1;
  for (unsigned i = 0; i < exp; ++i) {
    if (base != 0 && r > UINT64_MAX / base) return UINT64_MAX;
    r *= base;
  }
  return r;
}

/// ceil(log_d(x)): number of d-ary merge levels needed to go from x runs to 1.
/// Defined as 0 for x <= 1.  d must be >= 2.
constexpr unsigned ilog_base_ceil(std::uint64_t x, std::uint64_t d) {
  unsigned levels = 0;
  std::uint64_t runs = x;
  while (runs > 1) {
    runs = ceil_div(runs, d);
    ++levels;
  }
  return levels;
}

/// Division by a runtime-constant divisor without a hardware divide:
/// precomputes the Granlund–Montgomery magic number once, then each
/// div/divmod is a high multiply plus shifts.  Exact for EVERY uint64
/// numerator (the round-up-reciprocal scheme of Hacker's Delight 10-10 /
/// "Division by Invariant Integers using Multiplication", Figure 4.2 with
/// the (n - t)/2 + t correction).  Powers of two reduce to a shift and
/// divisor 1 to the identity, so hot paths pay nothing for the easy cases.
class FastDiv64 {
 public:
  // __int128 is a GCC/Clang extension; __extension__ keeps -Wpedantic quiet.
  __extension__ typedef unsigned __int128 u128;

  FastDiv64() = default;  // divisor 1 (identity)

  explicit FastDiv64(std::uint64_t divisor) : d_(divisor) {
    if (d_ == 0) throw std::invalid_argument("FastDiv64: divisor must be > 0");
    if (d_ == 1) return;
    if (is_pow2(d_)) {
      shift_ = ilog2(d_);
      return;
    }
    // ceil(2^(64+l) / d) - 2^64 with l = ceil(log2 d); the result fits in 64
    // bits because 2^(l-1) < d < 2^l implies the quotient lies in
    // [2^64, 2^65).
    const unsigned l = ilog2_ceil(d_);
    u128 m;
    if (l == 64) {
      // 2^(64+l) = 2^128 overflows u128.  d is not a power of two, so it
      // never divides 2^128 and ceil(2^128 / d) = floor((2^128 - 1) / d) + 1.
      m = ~static_cast<u128>(0) / d_ + 1;
    } else {
      const u128 num = static_cast<u128>(1) << (64 + l);
      m = num / d_ + (num % d_ != 0 ? 1 : 0);
    }
    magic_ = static_cast<std::uint64_t>(m);  // low 64 bits = m - 2^64
    shift_ = l - 1;                          // >= 1: d is not a power of two
  }

  std::uint64_t divisor() const { return d_; }

  std::uint64_t div(std::uint64_t n) const {
    if (d_ == 1) return n;
    if (magic_ == 0) return n >> shift_;  // power of two
    const std::uint64_t t =
        static_cast<std::uint64_t>((static_cast<u128>(magic_) * n) >> 64);
    return (t + ((n - t) >> 1)) >> shift_;
  }

  std::uint64_t mod(std::uint64_t n) const { return n - div(n) * d_; }

  struct DivMod {
    std::uint64_t quot = 0;
    std::uint64_t rem = 0;
  };
  DivMod divmod(std::uint64_t n) const {
    const std::uint64_t q = div(n);
    return DivMod{q, n - q * d_};
  }

 private:
  std::uint64_t d_ = 1;
  std::uint64_t magic_ = 0;  // 0 = identity or power-of-two fast path
  unsigned shift_ = 0;
};

}  // namespace aem::util
