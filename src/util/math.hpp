// Small integer-math helpers shared across aemlib.
//
// All functions are constexpr-friendly and defined for the value ranges the
// simulator uses (element counts and block counts that fit in 64 bits).
#pragma once

#include <cstdint>
#include <cstddef>
#include <stdexcept>

namespace aem::util {

/// Ceiling division for non-negative integers: ceil(a / b).  b must be > 0.
/// Overflow-safe (no a + b intermediate).
constexpr std::uint64_t ceil_div(std::uint64_t a, std::uint64_t b) {
  return a == 0 ? 0 : (a - 1) / b + 1;
}

/// Round `a` up to the next multiple of `b`.  b must be > 0.  Throws
/// std::overflow_error when the next multiple exceeds UINT64_MAX — the
/// naive ceil_div(a, b) * b would silently wrap there, and a wrapped size
/// or offset is far worse than a loud failure.  (In a constant expression
/// the throw is a compile error, which is exactly right.)
constexpr std::uint64_t round_up(std::uint64_t a, std::uint64_t b) {
  const std::uint64_t q = ceil_div(a, b);
  if (q > UINT64_MAX / b)
    throw std::overflow_error("round_up: next multiple overflows uint64");
  return q * b;
}

/// Floor of log2(x).  x must be > 0.
constexpr unsigned ilog2(std::uint64_t x) {
  unsigned r = 0;
  while (x >>= 1) ++r;
  return r;
}

/// Ceiling of log2(x).  x must be > 0.
constexpr unsigned ilog2_ceil(std::uint64_t x) {
  return (x <= 1) ? 0 : ilog2(x - 1) + 1;
}

/// True if x is a power of two (x > 0).
constexpr bool is_pow2(std::uint64_t x) { return x != 0 && (x & (x - 1)) == 0; }

/// Integer power: base^exp, saturating at uint64 max.
constexpr std::uint64_t ipow_sat(std::uint64_t base, unsigned exp) {
  std::uint64_t r = 1;
  for (unsigned i = 0; i < exp; ++i) {
    if (base != 0 && r > UINT64_MAX / base) return UINT64_MAX;
    r *= base;
  }
  return r;
}

/// ceil(log_d(x)): number of d-ary merge levels needed to go from x runs to 1.
/// Defined as 0 for x <= 1.  d must be >= 2.
constexpr unsigned ilog_base_ceil(std::uint64_t x, std::uint64_t d) {
  unsigned levels = 0;
  std::uint64_t runs = x;
  while (runs > 1) {
    runs = ceil_div(runs, d);
    ++levels;
  }
  return levels;
}

}  // namespace aem::util
