#include "util/rng.hpp"

#include <numeric>

namespace aem::util {

namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t bound) {
  // Lemire's multiply-shift rejection method: unbiased for any bound.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  std::uint64_t l = static_cast<std::uint64_t>(m);
  if (l < bound) {
    std::uint64_t threshold = -bound % bound;
    while (l < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::uint64_t Rng::range(std::uint64_t lo, std::uint64_t hi) {
  return lo + below(hi - lo + 1);
}

double Rng::uniform01() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

std::vector<std::uint64_t> random_permutation(std::uint64_t n, Rng& rng) {
  std::vector<std::uint64_t> p(n);
  std::iota(p.begin(), p.end(), std::uint64_t{0});
  rng.shuffle(p);
  return p;
}

std::vector<std::uint64_t> random_keys(std::uint64_t n, Rng& rng) {
  std::vector<std::uint64_t> k(n);
  for (auto& x : k) x = rng.next();
  return k;
}

std::vector<std::uint64_t> distinct_keys(std::uint64_t n, Rng& rng,
                                         std::uint64_t stride) {
  std::vector<std::uint64_t> k(n);
  for (std::uint64_t i = 0; i < n; ++i) k[i] = i * stride;
  rng.shuffle(k);
  return k;
}

}  // namespace aem::util
