// Deterministic pseudo-random generation for workloads and tests.
//
// The simulator's experiments must be exactly reproducible across runs and
// platforms, so we ship our own small generator (xoshiro256** seeded via
// SplitMix64) rather than relying on implementation-defined std::
// distributions.  All distribution helpers here are fully specified.
#pragma once

#include <cstdint>
#include <vector>

namespace aem::util {

/// xoshiro256** 1.0 by Blackman & Vigna (public domain), seeded with
/// SplitMix64 so that any 64-bit seed yields a well-mixed state.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

  /// Uniform 64-bit value.
  std::uint64_t next();

  /// Uniform value in [0, bound) using Lemire's unbiased reduction.
  /// bound must be > 0.
  std::uint64_t below(std::uint64_t bound);

  /// Uniform value in [lo, hi] inclusive.  Requires lo <= hi.
  std::uint64_t range(std::uint64_t lo, std::uint64_t hi);

  /// Uniform double in [0, 1).
  double uniform01();

  /// Fisher-Yates shuffle of `v`.
  template <class T>
  void shuffle(std::vector<T>& v) {
    for (std::uint64_t i = v.size(); i > 1; --i) {
      std::uint64_t j = below(i);
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

 private:
  std::uint64_t s_[4];
};

/// A uniformly random permutation of {0, ..., n-1}.
std::vector<std::uint64_t> random_permutation(std::uint64_t n, Rng& rng);

/// n uniform 64-bit keys (duplicates possible).
std::vector<std::uint64_t> random_keys(std::uint64_t n, Rng& rng);

/// n distinct keys: a shuffled range [0, n) scaled by `stride`.
std::vector<std::uint64_t> distinct_keys(std::uint64_t n, Rng& rng,
                                         std::uint64_t stride = 1);

}  // namespace aem::util
