// Branchless in-memory search kernels (host-side only — nothing here is a
// charged block transfer; callers use these on ledger-accounted index
// structures such as KvStore's fence keys).
//
// The workhorse is an Eytzinger (BFS) layout: the sorted keys are permuted
// so that the binary-search tree's root sits at index 1 and node k's
// children at 2k and 2k+1.  A descent then touches a contiguous prefix of
// the array (the first few levels stay in one or two cache lines no matter
// how large the array is), and the comparison result feeds the next index
// arithmetically — no branch for the predictor to miss.  bench_m0_overhead
// reports the measured speedup over std::upper_bound on the same keys.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "util/math.hpp"

namespace aem::util {

/// Reference kernel: rank of the first element > key in a sorted array
/// (std::upper_bound distance — equivalently, the number of elements
/// <= key).  The baseline the Eytzinger layout is measured against.
inline std::size_t sorted_rank_upper(std::span<const std::uint64_t> sorted,
                                     std::uint64_t key) {
  return static_cast<std::size_t>(
      std::upper_bound(sorted.begin(), sorted.end(), key) - sorted.begin());
}

/// Branchless successor search over an Eytzinger-permuted copy of a sorted
/// key array.  rank_upper(key) returns the number of stored keys <= key —
/// the same answer as sorted_rank_upper on the source array, computed from
/// the BFS layout with a fixed-depth, branch-free descent.
///
/// The keys are padded to a PERFECT tree of 2^L - 1 nodes (L =
/// ceil(log2(n+1))) with UINT64_MAX sentinels, which sit past every real
/// key in the tree's in-order sequence.  The descent then needs no bounds
/// check, and the landing leaf index encodes the rank directly: after L
/// levels the cursor k lies in [2^L, 2^(L+1)) and rank = k - 2^L, because
/// each right-turn (node key <= query) shifts the in-order landing gap
/// past that node's left subtree.  Sentinels are only counted when the
/// query itself is UINT64_MAX, which the final clamp to n corrects.
///
/// footprint() reports the PADDED size (< 2n + 1) — that is the number a
/// ledger reservation must cover for the accounting to stay honest.
class EytzingerSearch {
 public:
  EytzingerSearch() = default;

  /// Builds the BFS permutation of `sorted` (ascending; duplicates allowed).
  explicit EytzingerSearch(std::span<const std::uint64_t> sorted)
      : n_(sorted.size()), levels_(levels_for(sorted.size())) {
    tree_.assign((static_cast<std::size_t>(1) << levels_) - 1, UINT64_MAX);
    std::size_t next = 0;
    fill(sorted, 1, next);
  }

  /// Number of real (non-sentinel) keys.
  std::size_t size() const { return n_; }
  bool empty() const { return n_ == 0; }
  /// Stored elements including sentinel padding (ledger-relevant size).
  std::size_t footprint() const { return tree_.size(); }

  /// The BFS-ordered keys (node k of the tree is layout()[k-1]).
  const std::vector<std::uint64_t>& layout() const { return tree_; }

  /// Number of stored keys <= key (== sorted_rank_upper on the source).
  std::size_t rank_upper(std::uint64_t key) const {
    if (n_ == 0) return 0;
    const std::uint64_t* e = tree_.data();
    std::size_t k = 1;
    for (unsigned level = 0; level < levels_; ++level)
      k = 2 * k + (e[k - 1] <= key ? 1 : 0);
    const std::size_t rank = k - (static_cast<std::size_t>(1) << levels_);
    return std::min(rank, n_);
  }

 private:
  static unsigned levels_for(std::size_t n) {
    // Smallest L with 2^L - 1 >= n.
    return ilog2_ceil(static_cast<std::uint64_t>(n) + 1);
  }

  /// In-order recursion placing sorted[next++] at tree node k; nodes past
  /// the source keep their sentinel.
  void fill(std::span<const std::uint64_t> sorted, std::size_t k,
            std::size_t& next) {
    if (k > tree_.size() || next >= sorted.size()) return;
    fill(sorted, 2 * k, next);
    if (next < sorted.size()) tree_[k - 1] = sorted[next++];
    fill(sorted, 2 * k + 1, next);
  }

  std::vector<std::uint64_t> tree_;
  std::size_t n_ = 0;
  unsigned levels_ = 0;
};

}  // namespace aem::util
