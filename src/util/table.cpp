#include "util/table.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <ostream>

namespace aem::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> cells) {
  assert(cells.size() == header_.size());
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << "  ";
      for (std::size_t pad = row[c].size(); pad < width[c]; ++pad) os << ' ';
      os << row[c];
    }
    os << '\n';
  };

  emit(header_);
  std::size_t total = 0;
  for (auto w : width) total += w + 2;
  os << "  ";
  for (std::size_t i = 2; i < total; ++i) os << '-';
  os << '\n';
  for (const auto& row : rows_) emit(row);
}

void Table::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << row[c];
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
}

std::string fmt(std::uint64_t v) { return std::to_string(v); }

std::string fmt(std::int64_t v) { return std::to_string(v); }

std::string fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string fmt_ratio(double a, double b, int precision) {
  if (b == 0.0) return "inf";
  return fmt(a / b, precision);
}

std::string fmt_sep(std::uint64_t v) {
  std::string raw = std::to_string(v);
  std::string out;
  out.reserve(raw.size() + raw.size() / 3);
  std::size_t lead = raw.size() % 3;
  if (lead == 0) lead = 3;
  for (std::size_t i = 0; i < raw.size(); ++i) {
    if (i != 0 && (i - lead) % 3 == 0 && i >= lead) out += ',';
    out += raw[i];
  }
  return out;
}

}  // namespace aem::util
