// Plain-text table printing for the benchmark harness.
//
// Every bench binary prints one or more tables in the style a paper's
// evaluation section would: a header row, aligned numeric columns, and an
// optional CSV duplicate for downstream plotting.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace aem::util {

/// A simple right-aligned text table with string cells.
///
/// Usage:
///   Table t({"N", "omega", "Q", "bound", "ratio"});
///   t.add_row({fmt(n), fmt(w), fmt(q), fmt(b), fmt_ratio(q, b)});
///   t.print(std::cout);
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  /// Pretty-print with column alignment and a separator under the header.
  void print(std::ostream& os) const;

  /// Comma-separated dump (same cells, no alignment).
  void print_csv(std::ostream& os) const;

  std::size_t rows() const { return rows_.size(); }
  std::size_t cols() const { return header_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format an unsigned integer.
std::string fmt(std::uint64_t v);
/// Format a signed integer.
std::string fmt(std::int64_t v);
/// Format a double with the given precision (default 3 digits).
std::string fmt(double v, int precision = 3);
/// Format a / b as a fixed-point ratio; "inf" if b == 0.
std::string fmt_ratio(double a, double b, int precision = 3);
/// Format v with thousands separators ("1,234,567").
std::string fmt_sep(std::uint64_t v);

}  // namespace aem::util
