// The unit-cost flash memory model of Ajwani et al. [2], as used by the
// paper's Section 4.1 reduction.
//
// The model is an external memory with two block granularities: writes move
// big blocks (here B elements, matching the AEM block) and reads move small
// blocks (here B/omega elements).  Cost is proportional to the number of
// elements transferred — "unit cost per element" — so a big-block write
// costs B and a small-block read costs B/omega, reproducing the AEM's
// omega:1 write:read cost ratio per block.
//
// FlashMachine is pure accounting: Lemma 4.3's simulation (simulate.hpp)
// decides which transfers happen; the machine totals their volume.
#pragma once

#include <cstdint>
#include <stdexcept>

namespace aem::flash {

struct FlashConfig {
  std::uint64_t read_block = 1;   // small block: B / omega elements
  std::uint64_t write_block = 1;  // big block: B elements

  /// Lemma 4.3's assumptions: B > omega and B a multiple of omega translate
  /// to read_block >= 1 and write_block a multiple of read_block.
  void validate() const {
    if (read_block == 0 || write_block == 0)
      throw std::invalid_argument("flash: block sizes must be positive");
    if (write_block % read_block != 0)
      throw std::invalid_argument(
          "flash: write block must be a multiple of the read block");
  }

  /// Small blocks per big block (the omega of the corresponding AEM).
  std::uint64_t ratio() const { return write_block / read_block; }

  /// The flash config matching an (M,B,omega)-AEM.  Requires B a positive
  /// multiple of omega (the Lemma 4.3 precondition).
  static FlashConfig for_aem(std::uint64_t B, std::uint64_t omega) {
    if (omega == 0 || B % omega != 0 || B / omega == 0)
      throw std::invalid_argument(
          "flash: Lemma 4.3 requires B to be a positive multiple of omega");
    return FlashConfig{B / omega, B};
  }
};

class FlashMachine {
 public:
  explicit FlashMachine(FlashConfig cfg) : cfg_(cfg) { cfg_.validate(); }

  const FlashConfig& config() const { return cfg_; }

  /// Charges one small-block read.
  void read_small() {
    ++read_ops_;
    read_volume_ += cfg_.read_block;
  }
  /// Charges `count` small-block reads.
  void read_small(std::uint64_t count) {
    read_ops_ += count;
    read_volume_ += count * cfg_.read_block;
  }
  /// Charges one big-block write.
  void write_big() {
    ++write_ops_;
    write_volume_ += cfg_.write_block;
  }
  /// Charges `elems` elements of sequential scan volume (the normalization
  /// pre-pass reads and rewrites the input once: 2N elements).
  void scan(std::uint64_t elems) { scan_volume_ += elems; }

  std::uint64_t read_ops() const { return read_ops_; }
  std::uint64_t write_ops() const { return write_ops_; }
  std::uint64_t read_volume() const { return read_volume_; }
  std::uint64_t write_volume() const { return write_volume_; }
  std::uint64_t scan_volume() const { return scan_volume_; }
  /// Total I/O volume in elements — the quantity Lemma 4.3 bounds.
  std::uint64_t total_volume() const {
    return read_volume_ + write_volume_ + scan_volume_;
  }

 private:
  FlashConfig cfg_;
  std::uint64_t read_ops_ = 0;
  std::uint64_t write_ops_ = 0;
  std::uint64_t read_volume_ = 0;
  std::uint64_t write_volume_ = 0;
  std::uint64_t scan_volume_ = 0;
};

}  // namespace aem::flash
