// Lemma 4.3: simulating an AEM permutation program in the unit-cost flash
// model, with the paper's I/O-volume accounting.
//
// Given a trace of a permutation program — writes annotated with the atoms
// placed in each block, reads annotated with the atoms they consume (the
// copies that eventually reach the output) — the simulation
//
//   1. replays the trace to attach a *removal time* to every atom of every
//      written block instance (the index of the read op that consumes it);
//   2. normalizes each block: atoms ordered by removal time.  For blocks
//      the program writes this is free (a program knows its future, so it
//      can write in normalized order); for the INPUT blocks the paper's
//      P'_A prepends one read+write scan of volume 2N;
//   3. replays each read as just enough small-block (B/omega) reads to
//      cover the contiguous interval of atoms it removes — contiguity is
//      guaranteed by normalization and verified;
//   4. replays each write as one big-block (B) write.
//
// The resulting total volume is measured against the paper's bound
// 2N + 2QB/omega (Lemma 4.3), and against the classical permuting lower
// bound in the flash model (Corollary 4.4).  Experiment E7 reports both.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "core/trace.hpp"
#include "flash/flash_machine.hpp"

namespace aem::flash {

struct FlashSimResult {
  std::uint64_t N = 0;           // permutation size
  std::uint64_t aem_cost = 0;    // Q of the original AEM program
  std::uint64_t read_ops = 0;    // small-block reads issued
  std::uint64_t write_ops = 0;   // big-block writes issued
  std::uint64_t read_volume = 0;
  std::uint64_t write_volume = 0;
  std::uint64_t scan_volume = 0;  // the 2N normalization pre-pass
  /// Atoms that were overwritten while never consumed (0 for a correct
  /// permutation program; non-zero flags a destroyed-atom bug).
  std::uint64_t destroyed_atoms = 0;

  std::uint64_t total_volume() const {
    return read_volume + write_volume + scan_volume;
  }
  /// The Lemma 4.3 bound on the volume: 2N + 2*Q*B/omega.
  double volume_bound(std::uint64_t B, std::uint64_t omega) const {
    return 2.0 * static_cast<double>(N) +
           2.0 * static_cast<double>(aem_cost) * static_cast<double>(B) /
               static_cast<double>(omega);
  }
};

/// Simulates the traced AEM permutation program in the flash model.
///
/// `input_atoms[i]` is the atom initially at position i of the input array
/// (array id `input_array`); blocks of the input are seeded from it.
/// Throws std::logic_error if the trace is inconsistent (a read consumes an
/// atom its block does not hold, or a used-interval is not contiguous after
/// normalization — either means the use-set instrumentation is broken).
FlashSimResult simulate_permutation_trace(
    const Trace& trace, std::span<const std::uint64_t> input_atoms,
    std::uint32_t input_array, std::uint64_t B, std::uint64_t omega);

}  // namespace aem::flash
