#include "flash/simulate.hpp"

#include <algorithm>
#include <limits>
#include <map>
#include <stdexcept>
#include <unordered_map>
#include <utility>

namespace aem::flash {

namespace {

constexpr std::uint64_t kNever = std::numeric_limits<std::uint64_t>::max();

/// One written (or initial) image of an external block: its atoms and, for
/// each, the index of the read op that consumes it.
struct BlockInstance {
  std::vector<std::uint64_t> atoms;
  std::vector<std::uint64_t> removal;  // per atom; kNever if unconsumed

  explicit BlockInstance(std::vector<std::uint64_t> a)
      : atoms(std::move(a)), removal(atoms.size(), kNever) {}
};

using BlockKey = std::pair<std::uint32_t, std::uint64_t>;

struct KeyHash {
  std::size_t operator()(const BlockKey& k) const {
    return std::hash<std::uint64_t>()(
        (static_cast<std::uint64_t>(k.first) << 40) ^ k.second);
  }
};

}  // namespace

FlashSimResult simulate_permutation_trace(
    const Trace& trace, std::span<const std::uint64_t> input_atoms,
    std::uint32_t input_array, std::uint64_t B, std::uint64_t omega) {
  const FlashConfig cfg = FlashConfig::for_aem(B, omega);
  FlashMachine flash(cfg);
  FlashSimResult result;
  result.N = input_atoms.size();
  result.aem_cost = trace.cost(omega);

  // Pass 1: replay the trace, building block instances and removal times.
  // A read op belongs to the most recent instance of its (array, block).
  std::unordered_map<BlockKey, std::vector<BlockInstance>, KeyHash> history;
  // For each op index: which instance (key + index) it operates on.
  std::vector<std::pair<BlockKey, std::size_t>> op_instance(trace.size(),
                                                            {{0, 0}, SIZE_MAX});

  // Seed the input array's initial blocks.
  for (std::uint64_t b = 0; b * B < input_atoms.size(); ++b) {
    const std::uint64_t lo = b * B;
    const std::uint64_t hi =
        std::min<std::uint64_t>(input_atoms.size(), lo + B);
    history[{input_array, b}].emplace_back(std::vector<std::uint64_t>(
        input_atoms.begin() + lo, input_atoms.begin() + hi));
  }

  for (std::size_t i = 0; i < trace.size(); ++i) {
    const TraceOp& op = trace.op(i);
    const BlockKey key{op.array, op.block};
    auto& chain = history[key];
    if (op.kind == OpKind::kWrite) {
      if (!op.atoms.empty() && !chain.empty()) {
        // Atoms of the previous image that never got consumed and do not
        // reappear are destroyed (should be none in a permutation program).
        const BlockInstance& prev = chain.back();
        for (std::size_t a = 0; a < prev.atoms.size(); ++a) {
          if (prev.removal[a] != kNever) continue;
          if (std::find(op.atoms.begin(), op.atoms.end(), prev.atoms[a]) ==
              op.atoms.end())
            ++result.destroyed_atoms;
        }
      }
      chain.emplace_back(op.atoms);
      op_instance[i] = {key, chain.size() - 1};
    } else {
      if (op.used.empty()) continue;  // bookkeeping read: no atoms move
      if (chain.empty())
        throw std::logic_error(
            "flash sim: read with use-set from a never-written block");
      BlockInstance& inst = chain.back();
      op_instance[i] = {key, chain.size() - 1};
      for (std::uint64_t id : op.used) {
        bool found = false;
        for (std::size_t a = 0; a < inst.atoms.size(); ++a) {
          if (inst.atoms[a] == id && inst.removal[a] == kNever) {
            inst.removal[a] = i;
            found = true;
            break;
          }
        }
        if (!found)
          throw std::logic_error(
              "flash sim: read consumes an atom its block does not hold");
      }
    }
  }

  // Pass 2: normalize every instance — atom positions sorted by removal
  // time (program writes are free to order this way; the input costs the
  // 2N scan).  Then replay each op against the flash machine.
  for (auto& [key, chain] : history) {
    for (auto& inst : chain) {
      std::vector<std::size_t> order(inst.atoms.size());
      for (std::size_t a = 0; a < order.size(); ++a) order[a] = a;
      std::stable_sort(order.begin(), order.end(),
                       [&](std::size_t x, std::size_t y) {
                         return inst.removal[x] < inst.removal[y];
                       });
      std::vector<std::uint64_t> atoms(order.size());
      std::vector<std::uint64_t> removal(order.size());
      for (std::size_t a = 0; a < order.size(); ++a) {
        atoms[a] = inst.atoms[order[a]];
        removal[a] = inst.removal[order[a]];
      }
      inst.atoms = std::move(atoms);
      inst.removal = std::move(removal);
    }
  }

  flash.scan(2 * result.N);  // the P'_A input-normalization pre-pass

  for (std::size_t i = 0; i < trace.size(); ++i) {
    const TraceOp& op = trace.op(i);
    if (op.kind == OpKind::kWrite) {
      flash.write_big();
      continue;
    }
    if (op.used.empty()) continue;
    const auto [key, idx] = op_instance[i];
    if (idx == SIZE_MAX) continue;
    const BlockInstance& inst = history[key][idx];
    // The atoms removed by op i occupy a contiguous normalized interval.
    std::size_t lo = inst.atoms.size(), hi = 0;
    for (std::size_t a = 0; a < inst.atoms.size(); ++a) {
      if (inst.removal[a] == i) {
        lo = std::min(lo, a);
        hi = std::max(hi, a + 1);
      }
    }
    if (hi <= lo)
      throw std::logic_error("flash sim: lost removal interval");
    if (hi - lo != op.used.size())
      throw std::logic_error(
          "flash sim: used atoms not contiguous after normalization");
    // Cover [lo, hi) with small blocks of size B/omega.
    const std::uint64_t rb = cfg.read_block;
    const std::uint64_t first = lo / rb;
    const std::uint64_t last = (hi + rb - 1) / rb;
    flash.read_small(last - first);
  }

  result.read_ops = flash.read_ops();
  result.write_ops = flash.write_ops();
  result.read_volume = flash.read_volume();
  result.write_volume = flash.write_volume();
  result.scan_volume = flash.scan_volume();
  return result;
}

}  // namespace aem::flash
