// Typed external-memory arrays and internal-memory buffers.
//
// ExtArray<T> owns a region of external memory holding `size()` elements in
// blocks of B.  All access is by whole-block reads and writes, each charged
// to the owning Machine.  Host code can never touch the stored elements
// except through these charged transfers — that discipline is what makes the
// machine's counters a faithful implementation of the AEM cost measure.
//
// When the machine has a FaultPolicy installed (core/faults.hpp), ExtArray
// is also the device's recovery layer: blocks carry checksums, reads verify
// and retry on corruption, writes verify-after-write and rewrite on failure
// (every retry charged through the normal accounting), retired blocks are
// transparently migrated to spares via a wear-leveling RemapTable
// (core/remap.hpp).  Algorithms run unmodified; they only see the extra
// charged I/Os.  With no policy installed, the code path is byte-identical
// to the perfect device.
//
// When the machine has a BlockCache installed (core/cache.hpp), ExtArray
// routes every transfer through it: hits are served from the pool (no
// charge, no trace op, no wear), writes dirty their block instead of paying
// omega, and eviction/flush write-backs re-enter the charged device path —
// including the full fault/recovery machinery — via the Sink interface.
// With no cache installed (capacity 0), the path is again byte-identical.
//
// Buffer<T> is the internal-memory counterpart: an RAII allocation
// registered with the machine's MemoryLedger, so the ledger's high-water
// mark bounds the algorithm's true internal-memory footprint.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "core/cache.hpp"
#include "core/faults.hpp"
#include "core/machine.hpp"
#include "core/remap.hpp"

namespace aem {

/// Result of a block transfer: element count plus the trace ticket (invalid
/// when tracing is off).  The ticket lets atom-tracking algorithms annotate
/// the recorded op (Lemma 4.3 needs per-read use-sets).  Under fault
/// injection the ticket is that of the final (successful) attempt.
struct BlockIo {
  std::size_t count = 0;
  IoTicket ticket;
};

template <class T>
class ExtArray : private BlockCache::Sink {
  /// Checksums hash object representations, so they are only sound for
  /// types whose value determines every byte (no padding, no NaN aliasing).
  /// For other types the recovery layer falls back to per-block
  /// known-corrupt flags — the simulator knows what it corrupted, which
  /// models a perfect device-side ECC without hashing indeterminate bytes.
  static constexpr bool kChecksummable =
      std::has_unique_object_representations_v<T>;

 public:
  /// An empty, machine-less array (useful as a moved-from placeholder).
  /// Any block operation on it throws std::logic_error.
  ExtArray() = default;

  /// Allocates external storage for `elems` elements.  Allocation itself is
  /// free in the model (external memory is unbounded); only transfers cost.
  ExtArray(Machine& mach, std::size_t elems, std::string name)
      : mach_(&mach),
        id_(mach.register_array(std::move(name))),
        data_(elems) {}

  /// Moved-from arrays become machine-less placeholders (operations throw
  /// std::logic_error) instead of silently aliasing the old machine.  The
  /// machine's block cache (if any) is re-pointed at the new object, so
  /// pending write-backs of this array's blocks keep working.
  ExtArray(ExtArray&& o) noexcept
      : mach_(std::exchange(o.mach_, nullptr)),
        id_(std::exchange(o.id_, 0)),
        data_(std::move(o.data_)),
        atom_of_(std::move(o.atom_of_)),
        rec_(std::move(o.rec_)) {
    repoint_cache_sink();
  }

  ExtArray& operator=(ExtArray&& o) noexcept {
    if (this != &o) {
      drop_cache_entries();  // this object's storage is being replaced
      mach_ = std::exchange(o.mach_, nullptr);
      id_ = std::exchange(o.id_, 0);
      data_ = std::move(o.data_);
      atom_of_ = std::move(o.atom_of_);
      rec_ = std::move(o.rec_);
      repoint_cache_sink();
    }
    return *this;
  }

  /// Dirty cached blocks of a dying array are dropped WITHOUT write-backs
  /// (there is no storage left to persist to); the drop is counted in
  /// CacheStats::invalidated_dirty.  Flush the machine's cache first if
  /// full Q accounting matters.  Arrays must not outlive their machine.
  ~ExtArray() { drop_cache_entries(); }

  ExtArray(const ExtArray&) = delete;
  ExtArray& operator=(const ExtArray&) = delete;

  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }
  std::size_t blocks() const {
    return mach_ == nullptr ? 0 : mach_->n_of(data_.size());
  }
  std::uint32_t id() const { return id_; }
  Machine& machine() const {
    check_attached();
    return *mach_;
  }

  /// Number of elements in block `bi` (the last block may be partial).
  std::size_t block_elems(std::uint64_t bi) const {
    check_block(bi);
    const std::size_t B = mach_->B();
    const std::size_t begin = static_cast<std::size_t>(bi) * B;
    return std::min(B, data_.size() - begin);
  }

  /// Reads block `bi` into `dst` (which must hold >= block_elems(bi)
  /// elements).  Charges one read I/O — plus, under fault injection, one
  /// read per checksum-triggered retry.  A block-cache hit charges nothing.
  BlockIo read_block(std::uint64_t bi, std::span<T> dst) const {
    const std::size_t count = block_elems(bi);
    if (dst.size() < count)
      throw std::invalid_argument("read_block: destination too small");
    if (BlockCache* bc = mach_->cache()) return cached_read(*bc, bi, dst, count);
    FaultPolicy* fp = mach_->faults();
    if (fp == nullptr || !fp->injects_faults()) {
      const std::size_t begin = static_cast<std::size_t>(bi) * mach_->B();
      for (std::size_t i = 0; i < count; ++i) dst[i] = data_[begin + i];
      IoTicket t = mach_->on_read(id_, bi);
      return BlockIo{count, t};
    }
    return faulty_read(*fp, bi, dst, count);
  }

  /// Overwrites block `bi` with `src` (which must hold exactly
  /// block_elems(bi) elements).  Charges one write I/O (cost omega) — plus,
  /// under fault injection, omega per rewrite and one read per
  /// verify-after-write attempt.  With a block cache the write only dirties
  /// the resident block; the (single) device write is charged at eviction
  /// or flush, however many times the block was rewritten meanwhile.
  BlockIo write_block(std::uint64_t bi, std::span<const T> src) {
    const std::size_t count = block_elems(bi);
    if (src.size() != count)
      throw std::invalid_argument("write_block: source size mismatch");
    if (BlockCache* bc = mach_->cache()) return cached_write(*bc, bi, src, count);
    FaultPolicy* fp = mach_->faults();
    if (fp == nullptr || !fp->injects_faults()) {
      const std::size_t begin = static_cast<std::size_t>(bi) * mach_->B();
      for (std::size_t i = 0; i < count; ++i) data_[begin + i] = src[i];
      IoTicket t = mach_->on_write(id_, bi);
      annotate_atoms(t, src, count);
      return BlockIo{count, t};
    }
    return faulty_write(*fp, bi, src, count);
  }

  /// Reads blocks [first, first+nblocks) into `dst` (which must hold the
  /// combined element count; the last block may be partial).  Exactly
  /// equivalent to nblocks read_block calls in ascending order — same
  /// counters, wear, phase attribution, and trace op sequence.  On a plain
  /// uncached device (no pool, no injected-fault path) the charges land as
  /// ONE batched Machine::submit (docs/MODEL.md section 17), amortizing the
  /// per-op dispatch; under a cache or fault injection it degrades to the
  /// per-block loop so hit/retry/remap semantics stay untouched.  Returns
  /// the element count read.
  std::size_t read_blocks(std::uint64_t first, std::size_t nblocks,
                          std::span<T> dst) const {
    if (nblocks == 0) return 0;
    check_block(first + nblocks - 1);
    const std::size_t B = mach_->B();
    const std::size_t begin = static_cast<std::size_t>(first) * B;
    const std::size_t total =
        std::min(data_.size(), begin + nblocks * B) - begin;
    if (dst.size() < total)
      throw std::invalid_argument("read_blocks: destination too small");
    FaultPolicy* fp = mach_->faults();
    if (mach_->cache() == nullptr && (fp == nullptr || !fp->injects_faults())) {
      for (std::size_t i = 0; i < total; ++i) dst[i] = data_[begin + i];
      batch_ops_.clear();
      for (std::size_t j = 0; j < nblocks; ++j)
        batch_ops_.push_back(BlockOp{OpKind::kRead, id_, first + j});
      mach_->submit(batch_ops_);
      return total;
    }
    std::size_t off = 0;
    for (std::size_t j = 0; j < nblocks; ++j)
      off += read_block(first + j, dst.subspan(off)).count;
    return off;
  }

  /// Writes blocks [first, first+nblocks) from `src` (which must hold
  /// exactly the combined element count).  Exactly equivalent to nblocks
  /// write_block calls in ascending order; on a plain uncached device with
  /// NO fault policy at all (even a crash-only schedule takes the per-block
  /// loop, so the crash discipline — data persisted before its charge,
  /// nothing past the cut — is preserved verbatim) the charges land as ONE
  /// batched Machine::submit.  Returns the element count written.
  std::size_t write_blocks(std::uint64_t first, std::size_t nblocks,
                           std::span<const T> src) {
    if (nblocks == 0) return 0;
    check_block(first + nblocks - 1);
    const std::size_t B = mach_->B();
    const std::size_t begin = static_cast<std::size_t>(first) * B;
    const std::size_t total =
        std::min(data_.size(), begin + nblocks * B) - begin;
    if (src.size() != total)
      throw std::invalid_argument("write_blocks: source size mismatch");
    if (mach_->cache() == nullptr && mach_->faults() == nullptr) {
      for (std::size_t i = 0; i < total; ++i) data_[begin + i] = src[i];
      batch_ops_.clear();
      for (std::size_t j = 0; j < nblocks; ++j)
        batch_ops_.push_back(BlockOp{OpKind::kWrite, id_, first + j});
      if (mach_->tracing() && atom_of_) {
        batch_tickets_.assign(nblocks, IoTicket{});
        mach_->submit(batch_ops_, batch_tickets_);
        std::size_t off = 0;
        for (std::size_t j = 0; j < nblocks; ++j) {
          const std::size_t count = std::min(B, total - off);
          annotate_atoms(batch_tickets_[j], src.subspan(off, count), count);
          off += count;
        }
      } else {
        mach_->submit(batch_ops_);
      }
      return total;
    }
    std::size_t off = 0;
    for (std::size_t j = 0; j < nblocks; ++j) {
      const std::size_t count = block_elems(first + j);
      write_block(first + j, src.subspan(off, count));
      off += count;
    }
    return off;
  }

  /// Grows the array to `elems` elements (new space default-initialized).
  /// Free in the model: this only reserves external address space.
  void grow_to(std::size_t elems) {
    if (elems <= data_.size()) return;
    const std::size_t old_blocks = blocks();
    data_.resize(elems);
    if (rec_ != nullptr) {
      if (!rec_->remap.empty() && blocks() > rec_->spare_base)
        throw std::logic_error(
            "ExtArray::grow_to: cannot grow past the spare region after "
            "blocks were remapped");
      if (rec_->remap.empty()) rec_->spare_base = blocks();
      // Re-stamp from the previously-last block: growth turns a partial
      // block into a full one (its checksum changes) and appends fresh
      // default-initialized blocks.
      refresh_block_meta(old_blocks == 0 ? 0 : old_blocks - 1);
    }
  }

  /// Registers an atom-id extractor used to annotate traced writes
  /// (Lemma 4.3 machinery).  Pass nullptr to disable.
  void set_atom_extractor(std::function<std::uint64_t(const T&)> fn) {
    atom_of_ = std::move(fn);
  }

  bool has_atom_extractor() const { return static_cast<bool>(atom_of_); }
  const std::function<std::uint64_t(const T&)>& atom_extractor() const {
    return atom_of_;
  }
  /// Atom id of a value under this array's extractor (which must be set).
  std::uint64_t atom_id(const T& v) const { return atom_of_(v); }

  /// Debug/verification access to the raw contents.  NOT charged — only for
  /// test assertions and host-side conformation metadata, never inside a
  /// measured algorithm.  Under fault injection this is the *native* block
  /// region; remapped blocks live in the spare region, so measured reads
  /// remain the one honest access path.
  const std::vector<T>& unsafe_host_view() const { return data_; }

  /// Uncharged bulk initialization, used to stage problem inputs before a
  /// measured run begins (the input's presence in external memory is the
  /// problem statement, not part of the algorithm's cost).  Restaging drops
  /// any cached blocks of this array (uncharged — it replaces them).
  void unsafe_host_fill(std::span<const T> src) {
    if (src.size() != data_.size())
      throw std::invalid_argument("unsafe_host_fill: size mismatch");
    drop_cache_entries();
    for (std::size_t i = 0; i < src.size(); ++i) data_[i] = src[i];
    if (rec_ != nullptr) refresh_block_meta(0);
  }

  // --- fault-injection observability --------------------------------------
  /// Logical blocks currently redirected to spares (0 when no faults).
  std::size_t remapped_blocks() const {
    return rec_ == nullptr ? 0 : rec_->remap.active();
  }
  std::size_t spares_used() const {
    return rec_ == nullptr ? 0 : rec_->remap.spares_used();
  }

 private:
  /// Per-array device-side recovery state, created lazily on the first
  /// transfer under an installed FaultPolicy.
  struct Recovery {
    explicit Recovery(std::size_t spare_capacity) : remap(spare_capacity) {}
    RemapTable remap;
    std::vector<T> spare;         // spare-block storage, B elements per slot
    std::size_t spare_base = 0;   // physical id of spare slot 0
    std::vector<std::uint64_t> sums;   // per-logical-block checksums
    std::vector<std::uint8_t> dirty;   // fallback: known-corrupt blocks
  };

  /// Physical location backing logical block `bi`: the charge id the
  /// machine sees and the storage the data actually lives in.
  struct PhysLoc {
    std::uint64_t charge;
    T* data;
  };

  void check_attached() const {
    if (mach_ == nullptr)
      throw std::logic_error(
          "ExtArray: no machine attached (default-constructed or moved-from "
          "array)");
  }

  void check_block(std::uint64_t bi) const {
    check_attached();
    if (bi >= blocks())
      throw std::out_of_range("ExtArray: block index " + std::to_string(bi) +
                              " out of range (array has " +
                              std::to_string(blocks()) + " blocks)");
  }

  void annotate_atoms(IoTicket t, std::span<const T> src, std::size_t count) {
    if (t.valid() && atom_of_) {
      std::vector<std::uint64_t> atoms(count);
      for (std::size_t i = 0; i < count; ++i) atoms[i] = atom_of_(src[i]);
      mach_->trace()->set_atoms(t, std::move(atoms));
    }
  }

  // --- block-cache plumbing ------------------------------------------------
  // The cached bytes live in the NATIVE region of data_ (the pool's RAM
  // copy); the cache itself holds only metadata.  Invariant: while a block
  // is resident, data_'s native region holds its current contents — reads
  // copy delivered (verified) data there on insertion, writes store their
  // payload there, and write-backs read it back out.  For remapped blocks
  // the device copy lives in the spare region, so the native region is
  // exactly the pool frame.

  T* native(std::uint64_t bi) const {
    return const_cast<T*>(data_.data()) +
           static_cast<std::size_t>(bi) * mach_->B();
  }

  void drop_cache_entries() {
    if (mach_ == nullptr) return;
    if (BlockCache* bc = mach_->cache()) bc->invalidate_array(id_);
  }

  void repoint_cache_sink() {
    if (mach_ == nullptr) return;
    if (BlockCache* bc = mach_->cache()) bc->move_sink(id_, this);
  }

  BlockIo cached_read(BlockCache& bc, std::uint64_t bi, std::span<T> dst,
                      std::size_t count) const {
    T* base = native(bi);
    if (bc.find_read(id_, bi)) {
      for (std::size_t i = 0; i < count; ++i) dst[i] = base[i];
      return BlockIo{count, IoTicket{}};  // pool hit: no device I/O
    }
    // Miss: one charged device read, then adopt the block into the pool.
    FaultPolicy* fp = mach_->faults();
    BlockIo io;
    if (fp == nullptr || !fp->injects_faults()) {
      for (std::size_t i = 0; i < count; ++i) dst[i] = base[i];
      io = BlockIo{count, mach_->on_read(id_, bi)};
    } else {
      io = faulty_read(*fp, bi, dst, count);
      // The delivered (checksum-verified) copy becomes the pool frame; for
      // a remapped block the native region held stale pre-remap bytes.
      for (std::size_t i = 0; i < count; ++i) base[i] = dst[i];
    }
    // May evict (and write back) a victim; on a write-back exception the
    // read stands — delivered and charged — and the block is just not
    // cached.
    bc.insert(id_, bi, /*dirty=*/false,
              const_cast<ExtArray*>(this));
    return io;
  }

  BlockIo cached_write(BlockCache& bc, std::uint64_t bi,
                       std::span<const T> src, std::size_t count) {
    T* base = native(bi);
    if (bc.find_write(id_, bi)) {
      for (std::size_t i = 0; i < count; ++i) base[i] = src[i];
      return BlockIo{count, IoTicket{}};  // rewrite of a resident block
    }
    // Write-allocate without fetching: the whole block is overwritten, so
    // no device read is needed and no device write happens yet.  Insert
    // first — if the eviction's write-back throws, the stored data is
    // untouched.
    bc.insert(id_, bi, /*dirty=*/true, this);
    for (std::size_t i = 0; i < count; ++i) base[i] = src[i];
    return BlockIo{count, IoTicket{}};
  }

  /// BlockCache::Sink: push a dirty pool frame back to the device through
  /// the normal charged write path (including fault injection / recovery /
  /// remap when a policy is installed).
  void cache_write_back(std::uint64_t bi) override {
    const std::size_t count = block_elems(bi);
    FaultPolicy* fp = mach_->faults();
    if (fp == nullptr || !fp->injects_faults()) {
      // Payload already sits in the native region; just charge the write.
      IoTicket t = mach_->on_write(id_, bi);
      annotate_atoms(t, std::span<const T>(native(bi), count), count);
      return;
    }
    // The faulty write path mutates the located device region in place, so
    // stage the intended payload out of the (aliasing) native region.
    const std::vector<T> tmp(native(bi), native(bi) + count);
    faulty_write(*fp, bi, std::span<const T>(tmp), count);
  }

  /// BlockCache::Sink batch write-back: on a plain device the whole run is
  /// charged as ONE Machine::submit (payloads already sit in the native
  /// region, and with no policy installed no per-block throw can strand a
  /// partially-flushed run).  Any installed fault policy — including a
  /// crash-only or ceiling-only one, whose throws must land between the
  /// exact per-block charges — takes the per-block recovery loop.
  void cache_write_back_batch(std::span<const std::uint64_t> blocks,
                              std::size_t& done) override {
    if (mach_->faults() != nullptr || blocks.size() < 2) {
      for (std::uint64_t bi : blocks) {
        cache_write_back(bi);
        ++done;
      }
      return;
    }
    batch_ops_.clear();
    for (std::uint64_t bi : blocks)
      batch_ops_.push_back(BlockOp{OpKind::kWrite, id_, bi});
    if (mach_->tracing() && atom_of_) {
      batch_tickets_.assign(blocks.size(), IoTicket{});
      mach_->submit(batch_ops_, batch_tickets_);
      for (std::size_t j = 0; j < blocks.size(); ++j) {
        const std::size_t count = block_elems(blocks[j]);
        annotate_atoms(batch_tickets_[j],
                       std::span<const T>(native(blocks[j]), count), count);
      }
    } else {
      mach_->submit(batch_ops_);
    }
    done = blocks.size();
  }

  Recovery& recovery(const FaultPolicy& fp) const {
    if (rec_ == nullptr) {
      rec_ = std::make_unique<Recovery>(fp.config().spare_blocks);
      rec_->spare_base = blocks();
      refresh_block_meta(0);
    }
    return *rec_;
  }

  /// (Re)computes checksum / dirty metadata for blocks [first, blocks()).
  /// Host-side bookkeeping of the device's ECC metadata — uncharged.
  void refresh_block_meta(std::size_t first) const {
    const std::size_t n = blocks();
    if constexpr (kChecksummable) {
      rec_->sums.resize(n);
      const std::size_t B = mach_->B();
      for (std::size_t bi = first; bi < n; ++bi) {
        const std::size_t begin = bi * B;
        const std::size_t count = std::min(B, data_.size() - begin);
        rec_->sums[bi] =
            fault_checksum(data_.data() + begin, count * sizeof(T));
      }
    } else {
      rec_->dirty.assign(n, 0);
    }
  }

  PhysLoc locate(std::uint64_t bi) const {
    if (rec_ != nullptr && !rec_->remap.empty()) {
      const std::uint64_t slot = rec_->remap.slot_of(bi);
      if (slot != RemapTable::npos)
        return PhysLoc{rec_->spare_base + slot,
                       rec_->spare.data() +
                           static_cast<std::size_t>(slot) * mach_->B()};
    }
    return PhysLoc{bi, const_cast<T*>(data_.data()) +
                           static_cast<std::size_t>(bi) * mach_->B()};
  }

  /// Flips one byte of the block's object representation (the simulated bit
  /// rot).  The mask is drawn from the fault schedule, so corruption is as
  /// reproducible as the faults themselves.
  static void corrupt(T* elems, std::size_t count, std::uint64_t r) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "fault injection requires trivially copyable elements");
    auto* bytes = reinterpret_cast<unsigned char*>(elems);
    const std::size_t nbytes = count * sizeof(T);
    bytes[r % nbytes] ^=
        static_cast<unsigned char>(1 | ((r >> 8) & 0xff));
  }

  /// True if the delivered copy in `dst` passes the device's read check.
  bool delivered_clean(const Recovery& rec, std::uint64_t bi, const T* dst,
                       std::size_t count, bool injected_corrupt) const {
    if constexpr (kChecksummable) {
      (void)injected_corrupt;  // the checksum catches it for real
      return fault_checksum(dst, count * sizeof(T)) == rec.sums[bi];
    } else {
      return !injected_corrupt && rec.dirty[bi] == 0;
    }
  }

  /// Deterministic backoff before retry `attempt` (RetryPolicy::backoff,
  /// 1-based): each poll is one charged read through the normal machine
  /// path — waiting out a flaky device costs real I/O time.  With
  /// backoff_base 0 (the default) this is a no-op and retry charges stay
  /// byte-identical to the pre-reliability-layer library.
  void charge_backoff(FaultPolicy& fp, const RetryPolicy& retry,
                      std::uint64_t charge_block, std::size_t attempt) const {
    const std::uint64_t polls = retry.backoff(attempt);
    if (polls == 0) return;
    fp.note_backoff(polls);
    for (std::uint64_t i = 0; i < polls; ++i) mach_->on_read(id_, charge_block);
  }

  BlockIo faulty_read(FaultPolicy& fp, std::uint64_t bi, std::span<T> dst,
                      std::size_t count) const {
    const Recovery& rec = recovery(fp);
    const RetryPolicy retry = fp.retry();
    std::size_t attempt = 0;
    for (;;) {
      const PhysLoc loc = locate(bi);
      const IoTicket t = mach_->on_read(id_, loc.charge);
      for (std::size_t i = 0; i < count; ++i) dst[i] = loc.data[i];
      bool injected = false;
      if (fp.draw_read_fault()) {
        corrupt(dst.data(), count, fp.draw_u64());
        injected = true;
      }
      if (!fp.config().checksum_reads ||
          delivered_clean(rec, bi, dst.data(), count, injected))
        return BlockIo{count, t};
      fp.note_checksum_failure();
      if (retry.exhausted(attempt))
        throw FaultError(/*is_write=*/false, id_, bi, attempt + 1,
                         "checksum mismatch persists (stored block corrupt "
                         "or fault rate too high for the retry budget)");
      ++attempt;
      fp.note_read_retry();
      charge_backoff(fp, retry, loc.charge, attempt);
    }
  }

  BlockIo faulty_write(FaultPolicy& fp, std::uint64_t bi,
                       std::span<const T> src, std::size_t count) {
    Recovery& rec = recovery(fp);
    const std::size_t B = mach_->B();
    const RetryPolicy retry = fp.retry();
    std::size_t attempt = 0;  // failures on the current physical block
    for (;;) {
      const PhysLoc loc = locate(bi);
      const IoTicket t = mach_->on_write(id_, loc.charge);
      annotate_atoms(t, src, count);
      const bool on_retired = fp.record_write(id_, loc.charge);
      const FaultKind fault =
          on_retired ? FaultKind::kRetiredBlock : fp.draw_write_fault();

      // Apply the attempt to the stored bytes.
      bool stored_ok = false;
      switch (fault) {
        case FaultKind::kNone:
          for (std::size_t i = 0; i < count; ++i) loc.data[i] = src[i];
          stored_ok = true;
          break;
        case FaultKind::kSilentWrite:
          for (std::size_t i = 0; i < count; ++i) loc.data[i] = src[i];
          corrupt(loc.data, count, fp.draw_u64());
          break;
        case FaultKind::kTornWrite: {
          // Only a prefix persists; the tail keeps its old contents.
          const std::size_t torn = fp.draw_u64() % count;
          for (std::size_t i = 0; i < torn; ++i) loc.data[i] = src[i];
          break;
        }
        default:  // kRetiredBlock: the write does not take at all
          break;
      }
      // Device ECC metadata is computed from the *intended* payload, so a
      // later read of a corrupt block fails its check.
      if constexpr (kChecksummable) {
        rec.sums[bi] = fault_checksum(src.data(), count * sizeof(T));
      } else {
        rec.dirty[bi] = stored_ok ? 0 : 1;
      }

      if (!fp.config().verify_writes) return BlockIo{count, t};

      // Verify-after-write: one charged read-back, itself subject to
      // transient read faults.
      mach_->on_read(id_, loc.charge);
      const bool readback_corrupt = fp.draw_read_fault();
      if (stored_ok && !readback_corrupt) return BlockIo{count, t};
      fp.note_verify_failure();

      if (fp.retired(id_, loc.charge)) {
        // Permanent failure: migrate this logical block to a spare and
        // retry there with a fresh retry budget.
        const std::uint64_t slot = rec.remap.remap(bi);
        rec.spare.resize((static_cast<std::size_t>(slot) + 1) * B);
        fp.note_remap();
        attempt = 0;
        continue;
      }
      if (retry.exhausted(attempt))
        throw FaultError(/*is_write=*/true, id_, bi, attempt + 1,
                         "verify-after-write keeps failing (fault rate too "
                         "high for the retry budget)");
      ++attempt;
      fp.note_write_retry();
      charge_backoff(fp, retry, loc.charge, attempt);
    }
  }

  Machine* mach_ = nullptr;
  std::uint32_t id_ = 0;
  std::vector<T> data_;
  std::function<std::uint64_t(const T&)> atom_of_;
  // Mutable: reads must be able to lazily create recovery state and retry.
  mutable std::unique_ptr<Recovery> rec_;
  // Scratch for the batched submit paths (reused across calls; mutable so
  // read_blocks stays const like read_block).
  mutable std::vector<BlockOp> batch_ops_;
  mutable std::vector<IoTicket> batch_tickets_;
};

/// An internal-memory allocation of `elems` elements, registered with the
/// machine's ledger for the buffer's lifetime.
template <class T>
class Buffer {
 public:
  Buffer() = default;

  Buffer(Machine& mach, std::size_t elems)
      : reservation_(mach.ledger(), elems), data_(elems) {}

  Buffer(Buffer&&) noexcept = default;
  Buffer& operator=(Buffer&&) noexcept = default;

  std::size_t size() const { return data_.size(); }
  std::span<T> span() { return std::span<T>(data_); }
  std::span<const T> span() const { return std::span<const T>(data_); }
  T* data() { return data_.data(); }
  const T* data() const { return data_.data(); }
  T& operator[](std::size_t i) { return data_[i]; }
  const T& operator[](std::size_t i) const { return data_[i]; }

  /// Resizes the buffer, adjusting the ledger registration.  On a
  /// default-constructed or moved-from buffer (no ledger) this is a
  /// programming error: the elements would evade the memory accounting.
  void resize(std::size_t elems) {
    if (!reservation_.attached() && elems != 0)
      throw std::logic_error(
          "Buffer: resize on a default-constructed or moved-from buffer "
          "(no ledger to account the allocation)");
    reservation_.resize(elems);
    data_.resize(elems);
  }

 private:
  MemoryReservation reservation_;
  std::vector<T> data_;
};

}  // namespace aem
