// Typed external-memory arrays and internal-memory buffers.
//
// ExtArray<T> owns a region of external memory holding `size()` elements in
// blocks of B.  All access is by whole-block reads and writes, each charged
// to the owning Machine.  Host code can never touch the stored elements
// except through these charged transfers — that discipline is what makes the
// machine's counters a faithful implementation of the AEM cost measure.
//
// Buffer<T> is the internal-memory counterpart: an RAII allocation
// registered with the machine's MemoryLedger, so the ledger's high-water
// mark bounds the algorithm's true internal-memory footprint.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "core/machine.hpp"

namespace aem {

/// Result of a block transfer: element count plus the trace ticket (invalid
/// when tracing is off).  The ticket lets atom-tracking algorithms annotate
/// the recorded op (Lemma 4.3 needs per-read use-sets).
struct BlockIo {
  std::size_t count = 0;
  IoTicket ticket;
};

template <class T>
class ExtArray {
 public:
  /// An empty, machine-less array (useful as a moved-from placeholder).
  ExtArray() = default;

  /// Allocates external storage for `elems` elements.  Allocation itself is
  /// free in the model (external memory is unbounded); only transfers cost.
  ExtArray(Machine& mach, std::size_t elems, std::string name)
      : mach_(&mach),
        id_(mach.register_array(std::move(name))),
        data_(elems) {}

  ExtArray(ExtArray&&) noexcept = default;
  ExtArray& operator=(ExtArray&&) noexcept = default;
  ExtArray(const ExtArray&) = delete;
  ExtArray& operator=(const ExtArray&) = delete;

  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }
  std::size_t blocks() const {
    return mach_ == nullptr ? 0 : mach_->n_of(data_.size());
  }
  std::uint32_t id() const { return id_; }
  Machine& machine() const {
    assert(mach_ != nullptr);
    return *mach_;
  }

  /// Number of elements in block `bi` (the last block may be partial).
  std::size_t block_elems(std::uint64_t bi) const {
    check_block(bi);
    const std::size_t B = mach_->B();
    const std::size_t begin = static_cast<std::size_t>(bi) * B;
    return std::min(B, data_.size() - begin);
  }

  /// Reads block `bi` into `dst` (which must hold >= block_elems(bi)
  /// elements).  Charges one read I/O.
  BlockIo read_block(std::uint64_t bi, std::span<T> dst) const {
    const std::size_t count = block_elems(bi);
    if (dst.size() < count)
      throw std::invalid_argument("read_block: destination too small");
    const std::size_t begin = static_cast<std::size_t>(bi) * mach_->B();
    for (std::size_t i = 0; i < count; ++i) dst[i] = data_[begin + i];
    IoTicket t = mach_->on_read(id_, bi);
    return BlockIo{count, t};
  }

  /// Overwrites block `bi` with `src` (which must hold exactly
  /// block_elems(bi) elements).  Charges one write I/O (cost omega).
  BlockIo write_block(std::uint64_t bi, std::span<const T> src) {
    const std::size_t count = block_elems(bi);
    if (src.size() != count)
      throw std::invalid_argument("write_block: source size mismatch");
    const std::size_t begin = static_cast<std::size_t>(bi) * mach_->B();
    for (std::size_t i = 0; i < count; ++i) data_[begin + i] = src[i];
    IoTicket t = mach_->on_write(id_, bi);
    if (t.valid() && atom_of_) {
      std::vector<std::uint64_t> atoms(count);
      for (std::size_t i = 0; i < count; ++i) atoms[i] = atom_of_(src[i]);
      mach_->trace()->set_atoms(t, std::move(atoms));
    }
    return BlockIo{count, t};
  }

  /// Grows the array to `elems` elements (new space default-initialized).
  /// Free in the model: this only reserves external address space.
  void grow_to(std::size_t elems) {
    if (elems > data_.size()) data_.resize(elems);
  }

  /// Registers an atom-id extractor used to annotate traced writes
  /// (Lemma 4.3 machinery).  Pass nullptr to disable.
  void set_atom_extractor(std::function<std::uint64_t(const T&)> fn) {
    atom_of_ = std::move(fn);
  }

  bool has_atom_extractor() const { return static_cast<bool>(atom_of_); }
  const std::function<std::uint64_t(const T&)>& atom_extractor() const {
    return atom_of_;
  }
  /// Atom id of a value under this array's extractor (which must be set).
  std::uint64_t atom_id(const T& v) const { return atom_of_(v); }

  /// Debug/verification access to the raw contents.  NOT charged — only for
  /// test assertions and host-side conformation metadata, never inside a
  /// measured algorithm.
  const std::vector<T>& unsafe_host_view() const { return data_; }

  /// Uncharged bulk initialization, used to stage problem inputs before a
  /// measured run begins (the input's presence in external memory is the
  /// problem statement, not part of the algorithm's cost).
  void unsafe_host_fill(std::span<const T> src) {
    if (src.size() != data_.size())
      throw std::invalid_argument("unsafe_host_fill: size mismatch");
    for (std::size_t i = 0; i < src.size(); ++i) data_[i] = src[i];
  }

 private:
  void check_block(std::uint64_t bi) const {
    if (mach_ == nullptr) throw std::logic_error("empty ExtArray");
    if (bi >= blocks()) throw std::out_of_range("block index out of range");
  }

  Machine* mach_ = nullptr;
  std::uint32_t id_ = 0;
  std::vector<T> data_;
  std::function<std::uint64_t(const T&)> atom_of_;
};

/// An internal-memory allocation of `elems` elements, registered with the
/// machine's ledger for the buffer's lifetime.
template <class T>
class Buffer {
 public:
  Buffer() = default;

  Buffer(Machine& mach, std::size_t elems)
      : reservation_(mach.ledger(), elems), data_(elems) {}

  Buffer(Buffer&&) noexcept = default;
  Buffer& operator=(Buffer&&) noexcept = default;

  std::size_t size() const { return data_.size(); }
  std::span<T> span() { return std::span<T>(data_); }
  std::span<const T> span() const { return std::span<const T>(data_); }
  T* data() { return data_.data(); }
  const T* data() const { return data_.data(); }
  T& operator[](std::size_t i) { return data_[i]; }
  const T& operator[](std::size_t i) const { return data_[i]; }

  /// Resizes the buffer, adjusting the ledger registration.
  void resize(std::size_t elems) {
    reservation_.resize(elems);
    data_.resize(elems);
  }

 private:
  MemoryReservation reservation_;
  std::vector<T> data_;
};

}  // namespace aem
